// W1 -- host wall-clock microbenchmarks (google-benchmark).
//
// These measure the *reproduction's* own performance on the host CPU
// (primitive skeleton overheads, mailbox throughput, topology
// construction), complementing the modeled T800 times the table
// benches report.  Run with --benchmark_filter=... to select.
#include <benchmark/benchmark.h>

#include "dpfl/dpfl.h"
#include "parix/collectives.h"
#include "parix/runtime.h"
#include "skil/skil.h"

namespace {

using namespace skil;

void BM_SpmdLaunch(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  parix::RunConfig config{p, parix::CostModel::t800()};
  for (auto _ : state) {
    auto result = parix::spmd_run(config, [](parix::Proc&) {});
    benchmark::DoNotOptimize(result.vtime_us);
  }
}
BENCHMARK(BM_SpmdLaunch)->Arg(1)->Arg(4)->Arg(16);

void BM_MailboxPingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  parix::RunConfig config{2, parix::CostModel::t800()};
  for (auto _ : state) {
    parix::spmd_run(config, [rounds](parix::Proc& proc) {
      for (int i = 0; i < rounds; ++i) {
        if (proc.id() == 0) {
          proc.send<int>(1, 1, i);
          benchmark::DoNotOptimize(proc.recv<int>(1, 2));
        } else {
          benchmark::DoNotOptimize(proc.recv<int>(0, 1));
          proc.send<int>(0, 2, i);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_MailboxPingPong)->Arg(64)->Arg(512);

void BM_ArrayMapTemplate(benchmark::State& state) {
  const int elems = static_cast<int>(state.range(0));
  parix::RunConfig config{2, parix::CostModel::t800()};
  for (auto _ : state) {
    parix::spmd_run(config, [elems](parix::Proc& proc) {
      auto a = array_create<double>(proc, 1, Size{elems},
                                    [](Index ix) { return ix[0] * 1.0; });
      for (int r = 0; r < 16; ++r)
        array_map([](double v) { return v * 1.0000001; }, a, a);
    });
  }
  state.SetItemsProcessed(state.iterations() * elems * 16);
}
BENCHMARK(BM_ArrayMapTemplate)->Arg(1 << 12)->Arg(1 << 16);

void BM_DpflMapClosure(benchmark::State& state) {
  const int elems = static_cast<int>(state.range(0));
  parix::RunConfig config{2, parix::CostModel::t800()};
  for (auto _ : state) {
    parix::spmd_run(config, [elems](parix::Proc& proc) {
      const dpfl::Closure<double(Index)> init(
          proc, [](Index ix) { return ix[0] * 1.0; });
      auto a = dpfl::fa_create<double>(proc, 1, Size{elems}, init);
      const dpfl::Closure<double(double, Index)> f(
          proc, [](double v, Index) { return v * 1.0000001; });
      for (int r = 0; r < 16; ++r) a = dpfl::fa_map(f, a);
    });
  }
  state.SetItemsProcessed(state.iterations() * elems * 16);
}
BENCHMARK(BM_DpflMapClosure)->Arg(1 << 12)->Arg(1 << 16);

void BM_ArrayFold(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  parix::RunConfig config{p, parix::CostModel::t800()};
  for (auto _ : state) {
    parix::spmd_run(config, [](parix::Proc& proc) {
      auto a = array_create<double>(proc, 1, Size{1 << 14},
                                    [](Index ix) { return ix[0] * 1.0; });
      for (int r = 0; r < 8; ++r)
        benchmark::DoNotOptimize(
            array_fold([](double v, Index) { return v; }, fn::plus, a));
    });
  }
}
BENCHMARK(BM_ArrayFold)->Arg(2)->Arg(8);

void BM_GenMult(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  parix::RunConfig config{4, parix::CostModel::t800()};
  for (auto _ : state) {
    parix::spmd_run(config, [n](parix::Proc& proc) {
      auto a = array_create<double>(proc, 2, Size{n, n},
                                    [](Index ix) { return ix[0] * 0.25; },
                                    parix::Distr::kTorus2D);
      auto b = array_create<double>(proc, 2, Size{n, n},
                                    [](Index ix) { return ix[1] * 0.5; },
                                    parix::Distr::kTorus2D);
      auto c = array_create<double>(proc, 2, Size{n, n},
                                    [](Index) { return 0.0; },
                                    parix::Distr::kTorus2D);
      array_gen_mult(a, b, fn::plus, fn::times, c);
    });
  }
}
BENCHMARK(BM_GenMult)->Arg(32)->Arg(64);

void BM_TopologyConstruction(benchmark::State& state) {
  parix::Machine machine(64, parix::CostModel::t800());
  for (auto _ : state) {
    parix::Topology topo(machine, parix::Distr::kTorus2D);
    benchmark::DoNotOptimize(topo.hw_of(63));
  }
}
BENCHMARK(BM_TopologyConstruction);

void BM_PermuteRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  parix::RunConfig config{4, parix::CostModel::t800()};
  for (auto _ : state) {
    parix::spmd_run(config, [n](parix::Proc& proc) {
      auto a = array_create<double>(proc, 2, Size{n, n},
                                    [](Index ix) { return ix[0] * 1.0; });
      auto b = array_create<double>(proc, 2, Size{n, n},
                                    [](Index) { return 0.0; });
      array_permute_rows(a, [n](int row) { return n - 1 - row; }, b);
    });
  }
}
BENCHMARK(BM_PermuteRows)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
