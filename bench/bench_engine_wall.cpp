// Execution-engine wall-clock comparison on the Table 2 grid.
//
// Runs the full Gaussian-elimination sweep (Skil + DPFL + Parix-C, no
// pivoting) once under the legacy one-OS-thread-per-virtual-processor
// engine and once under the pooled fiber engine, reports host wall
// seconds for each, and checks that the *virtual* times -- the
// scientific artefact -- are bit-identical across engines.
//
// Usage: bench_engine_wall [--quick] [--json=path] [--out-dir=dir]
//                          [--baseline=secs] [--baseline-note=text]
//                          [--reps=N] [--jobs=N|auto]
//                          [--carriers=N|auto] [--charge=interp|tape]
//                          [--settle=gang|closed|auto] [--fuse=off|on]
//                          [--prof=off|counters|sampled]
//                          [--coll=tree|ring|rd|auto]
//                          [--engine=threads|pooled|both] [--trace-out=dir]
//
// --engine restricts the sweep to one engine (default: both).  With a
// single engine there is no cross-engine vtime comparison, so the
// report's vtimes_identical_across_engines is trivially true.
//
// --jobs forks one worker process per (p, n) cell, up to N at a time
// (virtual times are per-cell deterministic, so the assembled grid is
// identical); --jobs=auto resolves to the host's hardware
// concurrency.  --carriers pins the pooled engine's carrier-thread
// count (exported as SKIL_CARRIERS so forked cell workers inherit
// it); 'auto' resolves to hardware concurrency, >1 enables gang
// settlement.  --charge selects the accounting path of the skeleton
// hot loops (default: the process default, i.e. SKIL_CHARGE or tape).
// --settle selects the ledger settlement strategy (charge_tape.h;
// default: the process default, i.e. SKIL_SETTLE or auto) -- every
// mode retires the identical add chain, so it moves wall time only.
// --fuse selects the skeleton fusion mode (charge_tape.h; default:
// the process default, i.e. SKIL_FUSE or off) -- 'on' runs the fused
// one-pass compositions, which lowers the *virtual* times too (the
// fused schedule is the artefact; see EXPERIMENTS.md W6 for the
// same-build off/on A/B methodology).
// --prof selects the host scheduler profiler (prof.h; default: the
// process default, i.e. SKIL_PROF or off) -- profiling reads host
// clocks and counters only, so the *virtual* times stay bit-identical
// in every mode; the wall times include the (small) profiling
// overhead, which EXPERIMENTS.md W7 quantifies.
// --coll selects the collective-algorithm family (parix/coll.h;
// default: the process default, i.e. SKIL_COLL or auto) -- like
// --fuse this legitimately moves the *virtual* times (the non-tree
// algorithms change the communication schedule) while the array
// results stay bit-identical; EXPERIMENTS.md W8 records the
// same-build tree/auto A/B.
// --trace-out runs one representative cell again under full tracing
// (after the timed sweep, so the timings stay untraced) and writes its
// Chrome trace + metrics JSON (parix/metrics.h) into the directory;
// under --prof=sampled the trace also carries the host carrier lanes.
//
// The JSON report (default BENCH_engine.json, schema_version 8)
// records the run configuration (reps, jobs, nproc, charge path,
// settle mode) and per-cell wall seconds + virtual times alongside
// both engines' totals, so EXPERIMENTS.md can cite the engine speedup
// from a committed artefact; scripts/bench_trajectory.sh appends runs
// to it.  --baseline records an externally measured wall time of the
// same workload (e.g. a pre-refactor build) so the improvement over
// that build is part of the record; --baseline-note says *which*
// build/config produced that number (written as
// "baseline_provenance"), because a bare float invites misleading
// comparisons -- a 1-carrier run scored against a 4-carrier baseline
// reads as a slowdown unless the provenance travels with it.
//
// Schema history:
//   v8: adds "coll" (collective-algorithm family, SKIL_COLL) and
//       per-engine "coll_counters" (per-op calls by resolved
//       algorithm, bytes, hop sums, rounds, order fallbacks, summed
//       over the best rep's cells).  Always written, like
//       fusion_counters -- a tree-mode report proves the zoo stayed
//       off by showing zero non-tree picks (the validator enforces
//       this conservation).
//   v7: adds "prof" (host profiler mode) and, when prof != off,
//       per-engine "scheduler" (host scheduler counter totals summed
//       over the best rep's cells: dispatches, steals, parks,
//       settle-queue pressure, gang lane occupancy, buffer-pool hits),
//       so an engine report documents *how* the pooled runtime spent
//       the wall it reports.  prof == off writes no scheduler block --
//       the off path must stay observably free.
//   v6: adds "fuse" (skeleton fusion mode) and per-engine
//       "fusion_counters" (composition outcomes summed over the best
//       rep's cells), so an off/on A/B pair of reports documents both
//       the wall and vtime effect of fusion and proves the fused path
//       actually engaged.
//   v5: adds "settle" (settlement mode), per-engine
//       "median_wall_seconds" (median of rep_wall_seconds, reported
//       alongside the min because min-of-1 records say nothing about
//       spread), per-engine "settle_counters" (closed-form coverage
//       accounting, summed over the best rep's cells), per-cell
//       virtual times at full precision (skil_vtime_s / dpfl_vtime_s /
//       c_vtime_s, %.17g -- lets two report files be diffed for
//       bit-identical science without rerunning), and
//       "baseline_provenance" whenever baseline_wall_seconds is
//       present.
//   v4: adds "carriers" (the pooled engine's effective carrier-thread
//       count for this run) and records the *resolved* jobs value
//       (--jobs=auto is written as the number it resolved to).
//   v3: adds per-engine "rep_wall_seconds" (every repetition's wall,
//       not just the reported minimum) and, when --trace-out is given,
//       a "trace" object naming the traced cell and the exported
//       trace/metrics files.
//   v2: adds reps/jobs/nproc/charge configuration and per-cell walls.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/gauss.h"
#include "bench_common.h"
#include "gauss_sweep.h"
#include "parix/charge_tape.h"
#include "parix/executor.h"
#include "parix/metrics.h"
#include "parix/runtime.h"
#include "parix/trace.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv,
                         {"quick", "json", "out-dir", "baseline",
                          "baseline-note", "reps", "jobs", "carriers",
                          "charge", "settle", "fuse", "prof", "coll",
                          "engine", "trace-out"});
  const bool quick = cli.get_bool("quick");
  const double baseline_s = std::atof(cli.get("baseline", "0").c_str());
  const std::string baseline_note = cli.get("baseline-note", "unspecified");
  // The host timer is noisy (shared machine); the minimum over reps is
  // the standard robust estimator of the undisturbed wall time.
  const int reps = std::max(1, std::atoi(cli.get("reps", "1").c_str()));
  const std::string jobs_arg = cli.get("jobs", "1");
  const int jobs =
      jobs_arg == "auto"
          ? static_cast<int>(std::max(1u, std::thread::hardware_concurrency()))
          : std::max(1, std::atoi(jobs_arg.c_str()));
  if (cli.has("carriers")) {
    // Exported instead of set in-process only: forked cell workers
    // must resolve the same carrier count.  Invalid values fail
    // loudly inside executor_carriers() below.
    ::setenv("SKIL_CARRIERS", cli.get("carriers", "auto").c_str(), 1);
    parix::executor_set_carriers(0);
  }
  const int carriers = parix::executor_carriers();
  if (cli.has("charge"))
    parix::set_default_charge_path(
        parix::parse_charge_path(cli.get("charge", "tape")));
  const char* charge_name =
      parix::default_charge_path() == parix::ChargePath::kTape ? "tape"
                                                               : "interp";
  if (cli.has("settle")) {
    // Exported as well as set in-process: the in-process slot is
    // inherited across fork by the cell workers, and the env var keeps
    // any tooling that re-execs (trace viewers, wrapper scripts) on
    // the same configuration.
    const std::string settle_arg = cli.get("settle", "auto");
    parix::set_default_settle_mode(parix::parse_settle_mode(settle_arg));
    ::setenv("SKIL_SETTLE", settle_arg.c_str(), 1);
  }
  const std::string settle_name(
      parix::settle_mode_name(parix::default_settle_mode()));
  if (cli.has("fuse")) {
    // In-process slot for this process, env var for anything that
    // re-execs (same pattern as --settle; forked cell workers inherit
    // the in-process slot).
    const std::string fuse_arg = cli.get("fuse", "off");
    parix::set_default_fuse_mode(parix::parse_fuse_mode(fuse_arg));
    ::setenv("SKIL_FUSE", fuse_arg.c_str(), 1);
  }
  const std::string fuse_name(
      parix::fuse_mode_name(parix::default_fuse_mode()));
  if (cli.has("prof")) {
    // In-process slot for this process, env var for the forked cell
    // workers and anything that re-execs (same pattern as --settle).
    const std::string prof_arg = cli.get("prof", "off");
    parix::set_default_prof_mode(parix::parse_prof_mode(prof_arg));
    ::setenv("SKIL_PROF", prof_arg.c_str(), 1);
  }
  const parix::ProfMode prof_mode = parix::default_prof_mode();
  const std::string prof_name(parix::prof_mode_name(prof_mode));
  if (cli.has("coll")) {
    // In-process slot for this process, env var for the forked cell
    // workers and anything that re-execs (same pattern as --settle).
    const std::string coll_arg = cli.get("coll", "auto");
    parix::set_default_coll_mode(parix::parse_coll_mode(coll_arg));
    ::setenv("SKIL_COLL", coll_arg.c_str(), 1);
  }
  const std::string coll_name(
      parix::coll_mode_name(parix::default_coll_mode()));
  const std::uint64_t seed = 19960528;
  const auto ns = paper_ns(quick);
  const auto ps = paper_ps();

  banner("Execution engines -- wall clock on the Table 2 grid");
  std::printf("grid: n in {%d..%d}, p in {4, 16, 32, 64}; host threads: %u; "
              "jobs: %d; carriers: %d; charge path: %s; settle: %s; "
              "fuse: %s; prof: %s; coll: %s\n\n",
              ns.front(), ns.back(), std::thread::hardware_concurrency(),
              jobs, carriers, charge_name, settle_name.c_str(),
              fuse_name.c_str(), prof_name.c_str(), coll_name.c_str());

  struct EngineRun {
    const char* name;
    parix::ExecutionEngine engine;
    double wall_s = 0.0;
    std::vector<double> rep_walls;  // every repetition, in run order
    std::vector<GaussCell> cells;
  };
  std::vector<EngineRun> runs = {
      {"threads", parix::ExecutionEngine::kThreads, 0.0, {}, {}},
      {"pooled", parix::ExecutionEngine::kPooled, 0.0, {}, {}},
  };
  const std::string engine_filter = cli.get("engine", "both");
  if (engine_filter != "both") {
    std::erase_if(runs, [&](const EngineRun& run) {
      return engine_filter != run.name;
    });
    if (runs.empty()) {
      std::fprintf(stderr,
                   "bench_engine_wall: --engine must be threads, pooled or "
                   "both, got '%s'\n",
                   engine_filter.c_str());
      return 2;
    }
  }

  const parix::ExecutionEngine saved = parix::default_execution_engine();
  for (int rep = 0; rep < reps; ++rep) {
    for (auto& run : runs) {
      parix::set_default_execution_engine(run.engine);
      std::fprintf(stderr, "engine %s (rep %d):\n", run.name, rep + 1);
      const auto gang_before = parix::gang_counters();
      const auto start = std::chrono::steady_clock::now();
      auto cells = run_gauss_grid_jobs(ns, ps, seed, jobs);
      const auto stop = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(stop - start).count();
      const auto gang_after = parix::gang_counters();
      const auto batches = gang_after.batches - gang_before.batches;
      const auto gadds = gang_after.gang_adds - gang_before.gang_adds;
      const auto iadds = gang_after.inline_adds - gang_before.inline_adds;
      if (batches > 0 || iadds > 0)
        std::fprintf(
            stderr,
            "  gang: %llu batches, %.2f lanes/batch, %llu M adds ganged, "
            "%llu M adds inline\n",
            static_cast<unsigned long long>(batches),
            batches > 0 ? static_cast<double>(gang_after.lanes -
                                              gang_before.lanes) /
                              static_cast<double>(batches)
                        : 0.0,
            static_cast<unsigned long long>(gadds / 1000000),
            static_cast<unsigned long long>(iadds / 1000000));
      if (batches > 0)
        std::fprintf(
            stderr, "  gang rounds: %llu uniform, %llu padded (%llu M "
            "pad slots)\n",
            static_cast<unsigned long long>(gang_after.uniform_rounds -
                                            gang_before.uniform_rounds),
            static_cast<unsigned long long>(gang_after.divergent_rounds -
                                            gang_before.divergent_rounds),
            static_cast<unsigned long long>(
                (gang_after.padded_slots - gang_before.padded_slots) /
                1000000));
      const SweepSettleTotals totals = sum_settle_totals(cells);
      if (totals.total_adds() > 0)
        std::fprintf(
            stderr,
            "  settle: %llu M adds closed (%llu M memoized, %llu M "
            "probed), %llu M chained, %llu M ganged, %llu M inline; "
            "closed-form coverage %.1f%%\n",
            static_cast<unsigned long long>(
                (totals.settle.closed_adds + totals.settle.memo_adds) /
                1000000),
            static_cast<unsigned long long>(totals.settle.memo_adds /
                                            1000000),
            static_cast<unsigned long long>(totals.settle.probe_adds /
                                            1000000),
            static_cast<unsigned long long>(totals.settle.chain_adds /
                                            1000000),
            static_cast<unsigned long long>(totals.gang_adds / 1000000),
            static_cast<unsigned long long>(totals.inline_adds / 1000000),
            100.0 * totals.closed_coverage());
      if (totals.fusion.seen > 0)
        std::fprintf(
            stderr,
            "  fusion: %llu compositions seen, %llu fused, %llu rejected; "
            "%llu barriers + %llu tape passes eliminated\n",
            static_cast<unsigned long long>(totals.fusion.seen),
            static_cast<unsigned long long>(totals.fusion.fused),
            static_cast<unsigned long long>(totals.fusion.rejected()),
            static_cast<unsigned long long>(totals.fusion.barriers_eliminated),
            static_cast<unsigned long long>(totals.fusion.tapes_eliminated));
      run.rep_walls.push_back(wall);
      if (rep == 0 || wall < run.wall_s) {
        run.wall_s = wall;
        run.cells = std::move(cells);
      }
    }
  }
  parix::set_default_execution_engine(saved);
  // Median of the repetition walls: reported alongside the min because
  // a min-of-1 says nothing about spread (satellite of ISSUE 6).
  const auto median_of = [](std::vector<double> walls) {
    std::sort(walls.begin(), walls.end());
    const std::size_t mid = walls.size() / 2;
    return walls.size() % 2 == 1 ? walls[mid]
                                 : 0.5 * (walls[mid - 1] + walls[mid]);
  };
  for (const auto& run : runs)
    std::printf("  %-8s engine: %8.2f s wall (min of %d, median %.2f)\n",
                run.name, run.wall_s, reps, median_of(run.rep_walls));

  // The engines must agree on every virtual time to the last bit --
  // virtual time derives only from charge sequences and message
  // timestamps, never from host scheduling.
  bool identical = true;
  if (runs.size() == 2) {
    identical = runs[0].cells.size() == runs[1].cells.size();
    for (std::size_t i = 0; identical && i < runs[0].cells.size(); ++i) {
      const GaussCell& lhs = runs[0].cells[i];
      const GaussCell& rhs = runs[1].cells[i];
      identical = lhs.skil_s == rhs.skil_s && lhs.dpfl_s == rhs.dpfl_s &&
                  lhs.c_s == rhs.c_s;
    }
  }

  // One representative cell re-run under full tracing: the exported
  // Chrome trace + metrics JSON let a run's virtual timeline be
  // inspected in Perfetto without perturbing the timings above.
  std::string trace_path, metrics_path;
  int trace_p = 0, trace_n = 0;
  if (cli.has("trace-out")) {
    const std::string dir = cli.get("trace-out", ".");
    std::filesystem::create_directories(dir);
    trace_p = quick ? 4 : 16;
    trace_n = quick ? 64 : 128;
    const parix::TraceMode saved_trace = parix::default_trace_mode();
    parix::set_default_trace_mode(parix::TraceMode::kFull);
    const apps::GaussResult traced =
        apps::gauss_skil(trace_p, trace_n, seed, /*pivoting=*/false);
    parix::set_default_trace_mode(saved_trace);
    const std::string cell = "gauss_p" + std::to_string(trace_p) + "_n" +
                             std::to_string(trace_n);
    trace_path = dir + "/trace_" + cell + ".json";
    metrics_path = dir + "/metrics_" + cell + ".json";
    {
      // Under --prof=sampled the run carries a host timeline; the
      // merged export shows carrier lanes next to the virtual ones.
      std::ofstream os(trace_path);
      parix::write_chrome_trace(*traced.run.trace, traced.run.prof.get(), os);
    }
    {
      std::ofstream os(metrics_path);
      parix::write_metrics_json(traced.run, os);
    }
    std::printf("wrote %s\nwrote %s\n", trace_path.c_str(),
                metrics_path.c_str());
  }

  const double speedup =
      runs.size() == 2 ? runs[0].wall_s / runs[1].wall_s : 0.0;
  if (runs.size() == 2)
    std::printf("\npooled speedup over threads: %.2fx\n", speedup);
  if (baseline_s > 0.0)
    std::printf("%s speedup over baseline (%.1f s): %.2fx\n",
                runs.back().name, baseline_s, baseline_s / runs.back().wall_s);
  shape_check("virtual times bit-identical across engines", identical);

  const std::string path = out_path(cli, "json", "BENCH_engine.json");
  if (FILE* out = std::fopen(path.c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"schema_version\": 8,\n"
                 "  \"benchmark\": \"bench_engine_wall\",\n"
                 "  \"grid\": \"table2_gauss%s\",\n"
                 "  \"reps\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"carriers\": %d,\n"
                 "  \"nproc\": %u,\n"
                 "  \"charge\": \"%s\",\n"
                 "  \"settle\": \"%s\",\n"
                 "  \"fuse\": \"%s\",\n"
                 "  \"prof\": \"%s\",\n"
                 "  \"coll\": \"%s\",\n"
                 "  \"engines\": [\n",
                 quick ? "_quick" : "", reps, jobs, carriers,
                 std::thread::hardware_concurrency(), charge_name,
                 settle_name.c_str(), fuse_name.c_str(), prof_name.c_str(),
                 coll_name.c_str());
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const EngineRun& run = runs[r];
      std::fprintf(out,
                   "    {\"engine\": \"%s\", \"wall_seconds\": %.3f, "
                   "\"median_wall_seconds\": %.3f, "
                   "\"rep_wall_seconds\": [",
                   run.name, run.wall_s, median_of(run.rep_walls));
      for (std::size_t i = 0; i < run.rep_walls.size(); ++i)
        std::fprintf(out, "%s%.3f", i == 0 ? "" : ", ", run.rep_walls[i]);
      std::fprintf(out, "], \"cells\": [");
      for (std::size_t i = 0; i < run.cells.size(); ++i) {
        const GaussCell& cell = run.cells[i];
        // Virtual times at %.17g: full double round-trip precision, so
        // two report files diff bit-identically (the CI settlement
        // smoke compares gang vs auto reports this way).
        std::fprintf(out,
                     "%s{\"p\": %d, \"n\": %d, \"wall_seconds\": %.3f, "
                     "\"skil_vtime_s\": %.17g, \"dpfl_vtime_s\": %.17g, "
                     "\"c_vtime_s\": %.17g}",
                     i == 0 ? "" : ", ", cell.p, cell.n, cell.wall_s,
                     cell.skil_s, cell.dpfl_s, cell.c_s);
      }
      const SweepSettleTotals totals = sum_settle_totals(run.cells);
      std::fprintf(
          out,
          "], \"settle_counters\": {"
          "\"closed_runs\": %llu, \"closed_adds\": %llu, "
          "\"memo_hits\": %llu, \"memo_misses\": %llu, "
          "\"memo_adds\": %llu, \"probe_adds\": %llu, "
          "\"chain_records\": %llu, \"chain_adds\": %llu, "
          "\"gang_parks\": %llu, \"gang_adds\": %llu, "
          "\"inline_adds\": %llu, \"closed_coverage\": %.6f}, "
          "\"fusion_counters\": {"
          "\"seen\": %llu, \"fused\": %llu, "
          "\"rejected_shape\": %llu, \"rejected_order\": %llu, "
          "\"rejected_path\": %llu, \"barriers_eliminated\": %llu, "
          "\"tapes_eliminated\": %llu}",
          static_cast<unsigned long long>(totals.settle.closed_runs),
          static_cast<unsigned long long>(totals.settle.closed_adds),
          static_cast<unsigned long long>(totals.settle.memo_hits),
          static_cast<unsigned long long>(totals.settle.memo_misses),
          static_cast<unsigned long long>(totals.settle.memo_adds),
          static_cast<unsigned long long>(totals.settle.probe_adds),
          static_cast<unsigned long long>(totals.settle.chain_records),
          static_cast<unsigned long long>(totals.settle.chain_adds),
          static_cast<unsigned long long>(totals.settle.gang_parks),
          static_cast<unsigned long long>(totals.gang_adds),
          static_cast<unsigned long long>(totals.inline_adds),
          totals.closed_coverage(),
          static_cast<unsigned long long>(totals.fusion.seen),
          static_cast<unsigned long long>(totals.fusion.fused),
          static_cast<unsigned long long>(totals.fusion.rejected_shape),
          static_cast<unsigned long long>(totals.fusion.rejected_order),
          static_cast<unsigned long long>(totals.fusion.rejected_path),
          static_cast<unsigned long long>(totals.fusion.barriers_eliminated),
          static_cast<unsigned long long>(totals.fusion.tapes_eliminated));
      // Collective-zoo counters (coll.h), summed over the best rep's
      // cells.  Always written (like fusion_counters): a tree-mode
      // report documents the zoo stayed off by showing zero non-tree
      // picks.
      std::fprintf(out, ", \"coll_counters\": {");
      for (int op = 0; op < parix::kNumCollOps; ++op) {
        const std::string op_name(
            parix::coll_op_name(static_cast<parix::CollOp>(op)));
        std::fprintf(out, "%s\"%s\": {\"calls\": {", op == 0 ? "" : ", ",
                     op_name.c_str());
        for (int a = 0; a < parix::kNumCollAlgos; ++a) {
          const std::string algo_name(
              parix::coll_algo_name(static_cast<parix::CollAlgo>(a)));
          std::fprintf(out, "%s\"%s\": %llu", a == 0 ? "" : ", ",
                       algo_name.c_str(),
                       static_cast<unsigned long long>(
                           totals.coll.calls[op][a]));
        }
        std::fprintf(
            out, "}, \"bytes\": %llu, \"hops\": %llu, \"steps\": %llu}",
            static_cast<unsigned long long>(totals.coll.bytes[op]),
            static_cast<unsigned long long>(totals.coll.hops[op]),
            static_cast<unsigned long long>(totals.coll.steps[op]));
      }
      std::fprintf(out, ", \"order_fallbacks\": %llu}",
                   static_cast<unsigned long long>(
                       totals.coll.order_fallbacks));
      // Host scheduler totals (prof.h), summed over the best rep's
      // cells.  Written only when profiling was on: an off-mode report
      // must be indistinguishable from a pre-v7 run's (the validator
      // enforces absence).
      if (prof_mode != parix::ProfMode::kOff) {
        const parix::SchedulerTotals sched = sum_sched_totals(run.cells);
        std::fprintf(
            out,
            ", \"scheduler\": {"
            "\"fibers_run\": %llu, \"fibers_resumed\": %llu, "
            "\"steal_attempts\": %llu, \"steal_successes\": %llu, "
            "\"steal_failed_rounds\": %llu, \"settle_enqueues\": %llu, "
            "\"parks\": %llu, \"unparks\": %llu, "
            "\"run_ns\": %llu, \"settle_ns\": %llu, "
            "\"gang_batches\": %llu, \"gang_lane_hist\": [",
            static_cast<unsigned long long>(sched.fibers_run),
            static_cast<unsigned long long>(sched.fibers_resumed),
            static_cast<unsigned long long>(sched.steal_attempts),
            static_cast<unsigned long long>(sched.steal_successes),
            static_cast<unsigned long long>(sched.steal_failed_rounds),
            static_cast<unsigned long long>(sched.settle_enqueues),
            static_cast<unsigned long long>(sched.parks),
            static_cast<unsigned long long>(sched.unparks),
            static_cast<unsigned long long>(sched.run_ns),
            static_cast<unsigned long long>(sched.settle_ns),
            static_cast<unsigned long long>(sched.gang_batches));
        for (int k = 0; k < parix::kProfGangLanes; ++k)
          std::fprintf(out, "%s%llu", k == 0 ? "" : ", ",
                       static_cast<unsigned long long>(
                           sched.gang_lane_hist[k]));
        std::fprintf(
            out,
            "], \"settle_queue_max\": %llu, "
            "\"pool_acquires\": %llu, \"pool_hits\": %llu, "
            "\"pool_misses\": %llu, \"pool_bytes\": %llu}",
            static_cast<unsigned long long>(sched.settle_queue_max),
            static_cast<unsigned long long>(sched.pool_acquires),
            static_cast<unsigned long long>(sched.pool_hits),
            static_cast<unsigned long long>(sched.pool_misses),
            static_cast<unsigned long long>(sched.pool_bytes));
      }
      std::fprintf(out, "}%s\n", r + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    if (runs.size() == 2)
      std::fprintf(out, "  \"pooled_speedup_over_threads\": %.3f,\n", speedup);
    if (baseline_s > 0.0)
      std::fprintf(out,
                   "  \"baseline_wall_seconds\": %.3f,\n"
                   "  \"baseline_provenance\": \"%s\",\n"
                   "  \"pooled_speedup_over_baseline\": %.3f,\n",
                   baseline_s, baseline_note.c_str(),
                   baseline_s / runs.back().wall_s);
    if (!trace_path.empty())
      std::fprintf(out,
                   "  \"trace\": {\"app\": \"gauss_skil\", \"p\": %d, "
                   "\"n\": %d, \"trace_json\": \"%s\", "
                   "\"metrics_json\": \"%s\"},\n",
                   trace_p, trace_n, trace_path.c_str(),
                   metrics_path.c_str());
    std::fprintf(out,
                 "  \"vtimes_identical_across_engines\": %s\n"
                 "}\n",
                 identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  }
  return identical ? 0 : 1;
}
