// Reproduces the section 5.1 claim (ref [3]): "We have done the
// comparison between equally optimized C and Skil versions of the
// matrix multiplication algorithm, and obtained Skil times around 20%
// slower than direct C times."
//
// Usage: bench_s1_matmul_opt [--quick] [--csv=path] [--out-dir=dir]
#include <cstdio>

#include "apps/matmul.h"
#include "bench_common.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"quick", "csv", "out-dir"});
  const bool quick = cli.get_bool("quick");
  const std::uint64_t seed = 31337;

  banner("S1 -- equally optimized C vs Skil, classical matrix "
         "multiplication (paper: Skil ~20% slower)");

  const std::vector<int> ns = quick ? std::vector<int>{64, 128}
                                    : std::vector<int>{64, 128, 256, 384};
  const std::vector<int> ps = {4, 16, 64};

  support::Table table({"p", "n", "Skil [s]", "opt C [s]", "Skil/C"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_s1_matmul.csv"),
                         {"p", "n", "skil_s", "c_s", "skil_over_c"});
  bool in_band = true;
  double worst = 0.0;
  for (int p : ps)
    for (int n : ns) {
      std::fprintf(stderr, "  running matmul p=%d n=%d ...\n", p, n);
      const double skil = apps::matmul_skil(p, n, seed).run.vtime_seconds();
      const double c = apps::matmul_c(p, n, seed).run.vtime_seconds();
      const double ratio = skil / c;
      worst = std::max(worst, ratio);
      if (ratio < 1.0 || ratio > 1.6) in_band = false;
      table.add_row({std::to_string(p), std::to_string(n),
                     support::fmt_fixed(skil, 3), support::fmt_fixed(c, 3),
                     support::fmt_fixed(ratio, 3)});
      csv.add_row({std::to_string(p), std::to_string(n),
                   support::fmt_fixed(skil, 5), support::fmt_fixed(c, 5),
                   support::fmt_fixed(ratio, 4)});
    }
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("Skil is slower than equally optimized C but by less than "
              "60% (paper: around 20%)",
              in_band);
  shape_check("worst observed slow-down stays below 1.6x", worst < 1.6);
  return 0;
}
