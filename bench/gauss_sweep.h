// The Gaussian-elimination measurement grid shared by bench_table2 and
// bench_figure1 (paper Table 2 / Figure 1: n in {64..640}, p in
// {4, 16, 32, 64}, no-pivot variant, all three languages).
#pragma once

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/gauss.h"
#include "parix/charge_tape.h"
#include "parix/coll.h"
#include "parix/prof.h"
#include "support/error.h"

namespace skil::bench {

struct GaussCell {
  int p = 0;
  int n = 0;
  double skil_s = 0.0;
  double dpfl_s = 0.0;
  double c_s = 0.0;
  /// Host wall seconds this cell took (all three variants).
  double wall_s = 0.0;
  /// Settlement/gang counter deltas over this cell's three runs
  /// (charge_tape.h).  Exact when the cell ran in its own forked
  /// worker; in-process sequential sweeps accumulate them per cell
  /// from the process-wide counters, which is equally exact there.
  parix::SettleCounters settle;
  std::uint64_t gang_adds = 0;
  std::uint64_t inline_adds = 0;
  /// Skeleton fusion outcome deltas over this cell's three runs
  /// (charge_tape.h): all zero under SKIL_FUSE=off.
  parix::FusionCounters fusion;
  /// Host scheduler counter deltas over this cell's three runs
  /// (prof.h): all zero under SKIL_PROF=off.
  parix::SchedulerTotals sched;
  /// Collective-algorithm counters over this cell's three runs
  /// (coll.h): which algorithm family every collective resolved to.
  parix::CollectiveCounters coll;
  double dpfl_over_skil() const { return dpfl_s / skil_s; }
  double skil_over_c() const { return skil_s / c_s; }
};

/// Sums the settlement-relevant counters of a finished grid, for
/// coverage reports (bench_engine_wall, the CI settlement smoke).
struct SweepSettleTotals {
  parix::SettleCounters settle;
  std::uint64_t gang_adds = 0;
  std::uint64_t inline_adds = 0;
  parix::FusionCounters fusion;
  parix::CollectiveCounters coll;

  /// All chain adds settlement accounted for, however retired.
  std::uint64_t total_adds() const {
    return settle.closed_adds + settle.memo_adds + settle.probe_adds +
           settle.chain_adds + gang_adds + inline_adds;
  }
  /// Fraction of chain adds retired closed-form (freshly probed or
  /// memoized) -- the ISSUE 6 coverage metric.
  double closed_coverage() const {
    const std::uint64_t total = total_adds();
    if (total == 0) return 0.0;
    return static_cast<double>(settle.closed_adds + settle.memo_adds) /
           static_cast<double>(total);
  }
};

/// Sums the host scheduler counters of a finished grid (prof.h) --
/// all zero unless the sweep ran under SKIL_PROF=counters|sampled.
inline parix::SchedulerTotals sum_sched_totals(
    const std::vector<GaussCell>& cells) {
  parix::SchedulerTotals t;
  for (const GaussCell& cell : cells) t.add(cell.sched);
  return t;
}

inline SweepSettleTotals sum_settle_totals(const std::vector<GaussCell>& cells) {
  SweepSettleTotals t;
  for (const GaussCell& cell : cells) {
    t.settle.closed_runs += cell.settle.closed_runs;
    t.settle.closed_adds += cell.settle.closed_adds;
    t.settle.memo_hits += cell.settle.memo_hits;
    t.settle.memo_misses += cell.settle.memo_misses;
    t.settle.memo_adds += cell.settle.memo_adds;
    t.settle.probe_adds += cell.settle.probe_adds;
    t.settle.chain_records += cell.settle.chain_records;
    t.settle.chain_adds += cell.settle.chain_adds;
    t.settle.gang_parks += cell.settle.gang_parks;
    t.gang_adds += cell.gang_adds;
    t.inline_adds += cell.inline_adds;
    t.fusion.seen += cell.fusion.seen;
    t.fusion.fused += cell.fusion.fused;
    t.fusion.rejected_shape += cell.fusion.rejected_shape;
    t.fusion.rejected_order += cell.fusion.rejected_order;
    t.fusion.rejected_path += cell.fusion.rejected_path;
    t.fusion.barriers_eliminated += cell.fusion.barriers_eliminated;
    t.fusion.tapes_eliminated += cell.fusion.tapes_eliminated;
    t.coll += cell.coll;
  }
  return t;
}

/// Paper Table 2 reference values: Skil absolute seconds (bold),
/// DPFL/Skil (roman), Skil/Parix-C (italics).  Negative = the paper
/// does not report the cell (p = 4 ran out of the 1 MB/node memory
/// beyond n = 384; DPFL was not reported for every cell).
struct PaperGaussCell {
  int p;
  int n;
  double skil_s;
  double dpfl_over_skil;
  double skil_over_c;
};

inline const std::vector<PaperGaussCell>& paper_table2() {
  static const std::vector<PaperGaussCell> rows = {
      {4, 64, 2.06, 6.17, 2.40},     {4, 128, 14.77, 6.52, 2.51},
      {4, 256, 113.29, 6.65, 2.60},  {4, 384, 377.62, 6.69, 2.64},
      {4, 512, -1, -1, -1},          {4, 640, -1, -1, -1},
      {16, 64, 0.91, -1, 1.57},      {16, 128, 4.83, 4.82, 1.73},
      {16, 256, 32.06, 5.73, 2.02},  {16, 384, 102.16, 6.22, 2.20},
      {16, 512, 236.13, 6.40, 2.31}, {16, 640, 453.86, 6.48, 2.38},
      {32, 64, 0.85, 3.87, 1.25},    {32, 128, 3.49, 4.88, 1.24},
      {32, 256, 19.42, 5.62, 1.45},  {32, 384, 58.03, 5.96, 1.65},
      {32, 512, 129.89, 6.12, 1.78}, {32, 640, 244.77, 6.24, 1.90},
      {64, 64, 0.85, 3.48, 1.04},    {64, 128, 2.94, 4.17, 0.94},
      {64, 256, 13.57, 4.78, 1.03},  {64, 384, 37.03, 5.21, 1.15},
      {64, 512, 78.71, 5.47, 1.26},  {64, 640, 143.28, 5.68, 1.37},
  };
  return rows;
}

inline std::vector<int> paper_ns(bool quick) {
  if (quick) return {64, 128};
  return {64, 128, 256, 384, 512, 640};
}

inline std::vector<int> paper_ps() { return {4, 16, 32, 64}; }

/// Runs one (p, n) cell: all three variants, with the host wall time
/// recorded on the cell.
inline GaussCell run_gauss_cell(int p, int n, std::uint64_t seed) {
  GaussCell cell;
  cell.p = p;
  cell.n = n;
  const auto start = std::chrono::steady_clock::now();
  const auto account = [&cell](const parix::RunResult& run, double* out_s) {
    *out_s = run.vtime_seconds();
    cell.settle.closed_runs += run.settle.closed_runs;
    cell.settle.closed_adds += run.settle.closed_adds;
    cell.settle.memo_hits += run.settle.memo_hits;
    cell.settle.memo_misses += run.settle.memo_misses;
    cell.settle.memo_adds += run.settle.memo_adds;
    cell.settle.probe_adds += run.settle.probe_adds;
    cell.settle.chain_records += run.settle.chain_records;
    cell.settle.chain_adds += run.settle.chain_adds;
    cell.settle.gang_parks += run.settle.gang_parks;
    cell.gang_adds += run.gang.gang_adds;
    cell.inline_adds += run.gang.inline_adds;
    cell.fusion.seen += run.fusion.seen;
    cell.fusion.fused += run.fusion.fused;
    cell.fusion.rejected_shape += run.fusion.rejected_shape;
    cell.fusion.rejected_order += run.fusion.rejected_order;
    cell.fusion.rejected_path += run.fusion.rejected_path;
    cell.fusion.barriers_eliminated += run.fusion.barriers_eliminated;
    cell.fusion.tapes_eliminated += run.fusion.tapes_eliminated;
    cell.sched.add(run.scheduler);
    cell.coll += run.coll;
  };
  account(apps::gauss_skil(p, n, seed, /*pivoting=*/false).run, &cell.skil_s);
  account(apps::gauss_dpfl(p, n, seed).run, &cell.dpfl_s);
  account(apps::gauss_c(p, n, seed).run, &cell.c_s);
  cell.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return cell;
}

/// Runs the full grid (Skil + DPFL + C, no pivoting) and returns one
/// cell per (p, n).  Progress goes to stderr so table output stays
/// clean.
inline std::vector<GaussCell> run_gauss_grid(const std::vector<int>& ns,
                                             const std::vector<int>& ps,
                                             std::uint64_t seed) {
  std::vector<GaussCell> cells;
  for (int p : ps)
    for (int n : ns) {
      std::fprintf(stderr, "  running gauss p=%d n=%d ...\n", p, n);
      cells.push_back(run_gauss_cell(p, n, seed));
    }
  return cells;
}

/// Process-per-cell parallel grid: forks up to `jobs` workers, each
/// computing one (p, n) cell and shipping its result doubles back
/// through a pipe.  Virtual times are deterministic per cell, so the
/// assembled grid is identical to run_gauss_grid's no matter how the
/// host schedules the workers.
///
/// Fork safety: the parent process must not have executed an SPMD run
/// before calling this (the pooled engine's worker threads are created
/// lazily on first use and would not survive fork).  The bench mains
/// satisfy this by forking before any in-process sweep.
inline std::vector<GaussCell> run_gauss_grid_jobs(const std::vector<int>& ns,
                                                  const std::vector<int>& ps,
                                                  std::uint64_t seed,
                                                  int jobs) {
  if (jobs <= 1) return run_gauss_grid(ns, ps, seed);

  std::vector<GaussCell> cells;
  for (int p : ps)
    for (int n : ns) {
      GaussCell cell;
      cell.p = p;
      cell.n = n;
      cells.push_back(cell);
    }

  // Wire format cell -> parent: the four timing doubles followed by
  // the settlement/gang/scheduler/collective counters, fixed-width so
  // a single read drains the pipe atomically (600 bytes, well under
  // PIPE_BUF's 4096).
  struct CellWire {
    double d[4];
    std::uint64_t u[71];
  };
  static_assert(sizeof(CellWire) < 1024, "CellWire must stay one pipe write");
  auto pack = [](const GaussCell& cell) {
    CellWire w;
    w.d[0] = cell.skil_s;
    w.d[1] = cell.dpfl_s;
    w.d[2] = cell.c_s;
    w.d[3] = cell.wall_s;
    w.u[0] = cell.settle.closed_runs;
    w.u[1] = cell.settle.closed_adds;
    w.u[2] = cell.settle.memo_hits;
    w.u[3] = cell.settle.memo_misses;
    w.u[4] = cell.settle.memo_adds;
    w.u[5] = cell.settle.probe_adds;
    w.u[6] = cell.settle.chain_records;
    w.u[7] = cell.settle.chain_adds;
    w.u[8] = cell.settle.gang_parks;
    w.u[9] = cell.gang_adds;
    w.u[10] = cell.inline_adds;
    w.u[11] = cell.fusion.seen;
    w.u[12] = cell.fusion.fused;
    w.u[13] = cell.fusion.rejected_shape;
    w.u[14] = cell.fusion.rejected_order;
    w.u[15] = cell.fusion.rejected_path;
    w.u[16] = cell.fusion.barriers_eliminated;
    w.u[17] = cell.fusion.tapes_eliminated;
    w.u[18] = cell.sched.fibers_run;
    w.u[19] = cell.sched.fibers_resumed;
    w.u[20] = cell.sched.steal_attempts;
    w.u[21] = cell.sched.steal_successes;
    w.u[22] = cell.sched.steal_failed_rounds;
    w.u[23] = cell.sched.settle_enqueues;
    w.u[24] = cell.sched.parks;
    w.u[25] = cell.sched.unparks;
    w.u[26] = cell.sched.run_ns;
    w.u[27] = cell.sched.settle_ns;
    w.u[28] = cell.sched.gang_batches;
    for (int k = 0; k < parix::kProfGangLanes; ++k)
      w.u[29 + k] = cell.sched.gang_lane_hist[k];
    w.u[37] = cell.sched.settle_queue_max;
    w.u[38] = cell.sched.pool_acquires;
    w.u[39] = cell.sched.pool_hits;
    w.u[40] = cell.sched.pool_misses;
    w.u[41] = cell.sched.pool_bytes;
    int slot = 42;
    for (int op = 0; op < parix::kNumCollOps; ++op)
      for (int a = 0; a < parix::kNumCollAlgos; ++a)
        w.u[slot++] = cell.coll.calls[op][a];
    for (int op = 0; op < parix::kNumCollOps; ++op)
      w.u[slot++] = cell.coll.bytes[op];
    for (int op = 0; op < parix::kNumCollOps; ++op)
      w.u[slot++] = cell.coll.hops[op];
    for (int op = 0; op < parix::kNumCollOps; ++op)
      w.u[slot++] = cell.coll.steps[op];
    w.u[slot++] = cell.coll.order_fallbacks;
    return w;
  };
  auto unpack = [](const CellWire& w, GaussCell& cell) {
    cell.skil_s = w.d[0];
    cell.dpfl_s = w.d[1];
    cell.c_s = w.d[2];
    cell.wall_s = w.d[3];
    cell.settle.closed_runs = w.u[0];
    cell.settle.closed_adds = w.u[1];
    cell.settle.memo_hits = w.u[2];
    cell.settle.memo_misses = w.u[3];
    cell.settle.memo_adds = w.u[4];
    cell.settle.probe_adds = w.u[5];
    cell.settle.chain_records = w.u[6];
    cell.settle.chain_adds = w.u[7];
    cell.settle.gang_parks = w.u[8];
    cell.gang_adds = w.u[9];
    cell.inline_adds = w.u[10];
    cell.fusion.seen = w.u[11];
    cell.fusion.fused = w.u[12];
    cell.fusion.rejected_shape = w.u[13];
    cell.fusion.rejected_order = w.u[14];
    cell.fusion.rejected_path = w.u[15];
    cell.fusion.barriers_eliminated = w.u[16];
    cell.fusion.tapes_eliminated = w.u[17];
    cell.sched.fibers_run = w.u[18];
    cell.sched.fibers_resumed = w.u[19];
    cell.sched.steal_attempts = w.u[20];
    cell.sched.steal_successes = w.u[21];
    cell.sched.steal_failed_rounds = w.u[22];
    cell.sched.settle_enqueues = w.u[23];
    cell.sched.parks = w.u[24];
    cell.sched.unparks = w.u[25];
    cell.sched.run_ns = w.u[26];
    cell.sched.settle_ns = w.u[27];
    cell.sched.gang_batches = w.u[28];
    for (int k = 0; k < parix::kProfGangLanes; ++k)
      cell.sched.gang_lane_hist[k] = w.u[29 + k];
    cell.sched.settle_queue_max = w.u[37];
    cell.sched.pool_acquires = w.u[38];
    cell.sched.pool_hits = w.u[39];
    cell.sched.pool_misses = w.u[40];
    cell.sched.pool_bytes = w.u[41];
    int slot = 42;
    for (int op = 0; op < parix::kNumCollOps; ++op)
      for (int a = 0; a < parix::kNumCollAlgos; ++a)
        cell.coll.calls[op][a] = w.u[slot++];
    for (int op = 0; op < parix::kNumCollOps; ++op)
      cell.coll.bytes[op] = w.u[slot++];
    for (int op = 0; op < parix::kNumCollOps; ++op)
      cell.coll.hops[op] = w.u[slot++];
    for (int op = 0; op < parix::kNumCollOps; ++op)
      cell.coll.steps[op] = w.u[slot++];
    cell.coll.order_fallbacks = w.u[slot++];
  };

  struct Worker {
    pid_t pid = -1;
    int read_fd = -1;
    std::size_t cell = 0;
  };
  std::vector<Worker> active;

  auto reap_one = [&cells, &active, &unpack]() {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    SKIL_ASSERT(pid > 0, "run_gauss_grid_jobs: waitpid failed");
    for (std::size_t w = 0; w < active.size(); ++w) {
      if (active[w].pid != pid) continue;
      SKIL_ASSERT(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                  "run_gauss_grid_jobs: worker failed for cell p=" +
                      std::to_string(cells[active[w].cell].p) +
                      " n=" + std::to_string(cells[active[w].cell].n));
      CellWire wire{};
      const ssize_t got = ::read(active[w].read_fd, &wire, sizeof(wire));
      ::close(active[w].read_fd);
      SKIL_ASSERT(got == static_cast<ssize_t>(sizeof(wire)),
                  "run_gauss_grid_jobs: short read from worker");
      unpack(wire, cells[active[w].cell]);
      active.erase(active.begin() + static_cast<long>(w));
      return;
    }
    // An unrelated child (none are spawned here); ignore it.
  };

  for (std::size_t i = 0; i < cells.size(); ++i) {
    while (active.size() >= static_cast<std::size_t>(jobs)) reap_one();
    int fds[2];
    SKIL_ASSERT(::pipe(fds) == 0, "run_gauss_grid_jobs: pipe failed");
    std::fprintf(stderr, "  running gauss p=%d n=%d ...\n", cells[i].p,
                 cells[i].n);
    const pid_t pid = ::fork();
    SKIL_ASSERT(pid >= 0, "run_gauss_grid_jobs: fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      const GaussCell cell = run_gauss_cell(cells[i].p, cells[i].n, seed);
      const CellWire wire = pack(cell);
      const ssize_t wrote = ::write(fds[1], &wire, sizeof(wire));
      ::_exit(wrote == static_cast<ssize_t>(sizeof(wire)) ? 0 : 1);
    }
    ::close(fds[1]);
    active.push_back(Worker{pid, fds[0], i});
  }
  while (!active.empty()) reap_one();
  return cells;
}

/// Paper reference for a (p, n) cell, if reported.
inline const PaperGaussCell* paper_cell(int p, int n) {
  for (const auto& row : paper_table2())
    if (row.p == p && row.n == n) return &row;
  return nullptr;
}

}  // namespace skil::bench
