// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints (a) the paper's reported values, (b) the
// reproduced values from the virtual-time model, and (c) the shape
// checks that EXPERIMENTS.md records; it also writes a CSV next to the
// binary's working directory for replotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "support/cli.h"
#include "support/table.h"

namespace skil::bench {

/// Output path for a bench artefact.  An explicit `--<flag>=path`
/// wins verbatim; otherwise the default file name lands in
/// `--out-dir` (default: the working directory).  Benches passing
/// their outputs through this accept both flags.
inline std::string out_path(const support::Cli& cli, const std::string& flag,
                            const std::string& default_name) {
  if (cli.has(flag)) return cli.get(flag, default_name);
  const std::string dir = cli.get("out-dir", "");
  if (dir.empty()) return default_name;
  return dir.back() == '/' ? dir + default_name : dir + "/" + default_name;
}

/// Seconds of modeled time, formatted like the paper's tables.
inline std::string secs(double vtime_us, int digits = 2) {
  return support::fmt_fixed(vtime_us * 1e-6, digits);
}

/// Label "2x2".."8x8" for a square processor grid.
inline std::string grid_label(int nprocs) {
  int q = 1;
  while ((q + 1) * (q + 1) <= nprocs) ++q;
  if (q * q == nprocs) return std::to_string(q) + "x" + std::to_string(q);
  return std::to_string(nprocs);
}

/// Prints a section header.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Prints one shape-check line: the qualitative property the paper's
/// data shows, and whether the reproduction satisfies it.
inline bool shape_check(const std::string& name, bool holds) {
  std::printf("  [%s] %s\n", holds ? "OK" : "MISS", name.c_str());
  return holds;
}

}  // namespace skil::bench
