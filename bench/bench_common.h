// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints (a) the paper's reported values, (b) the
// reproduced values from the virtual-time model, and (c) the shape
// checks that EXPERIMENTS.md records; it also writes a CSV next to the
// binary's working directory for replotting.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "parix/metrics.h"
#include "parix/runtime.h"
#include "parix/trace.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/table.h"

namespace skil::bench {

/// Output path for a bench artefact.  An explicit `--<flag>=path`
/// wins verbatim; otherwise the default file name lands in
/// `--out-dir` (default: the working directory).  Benches passing
/// their outputs through this accept both flags.
inline std::string out_path(const support::Cli& cli, const std::string& flag,
                            const std::string& default_name) {
  if (cli.has(flag)) return cli.get(flag, default_name);
  const std::string dir = cli.get("out-dir", "");
  if (dir.empty()) return default_name;
  return dir.back() == '/' ? dir + default_name : dir + "/" + default_name;
}

/// Seconds of modeled time, formatted like the paper's tables.
inline std::string secs(double vtime_us, int digits = 2) {
  return support::fmt_fixed(vtime_us * 1e-6, digits);
}

/// Label "2x2".."8x8" for a square processor grid.
inline std::string grid_label(int nprocs) {
  int q = 1;
  while ((q + 1) * (q + 1) <= nprocs) ++q;
  if (q * q == nprocs) return std::to_string(q) + "x" + std::to_string(q);
  return std::to_string(nprocs);
}

/// True when the bench should re-run its representative configuration
/// under full tracing for the artefact exports below.  Keyed on the
/// artefact flags, not --out-dir, so a plain `--out-dir=...` CSV run
/// stays untraced.
inline bool wants_run_artifacts(const support::Cli& cli) {
  return cli.has("metrics-out") || cli.has("trace-out");
}

/// Re-runs `fn` under full tracing (saving and restoring the process
/// default trace mode) and returns its result.  Benches call this
/// *after* their timed sweeps so the recorded timings stay untraced.
template <typename Fn>
auto traced_rerun(Fn&& fn) {
  const parix::TraceMode saved = parix::default_trace_mode();
  parix::set_default_trace_mode(parix::TraceMode::kFull);
  auto result = fn();
  parix::set_default_trace_mode(saved);
  return result;
}

/// Writes the Chrome trace (--trace-out) and/or metrics JSON
/// (--metrics-out) for a completed traced run.  An explicit flag value
/// is a verbatim file path; a bare default name lands in --out-dir via
/// out_path.  The Chrome export merges the SKIL_PROF=sampled host
/// timeline (RunResult::prof) when the run carried one.
inline void write_run_artifacts(const support::Cli& cli,
                                const parix::RunResult& run,
                                const std::string& stem) {
  // A bare `--trace-out` parses as the boolean value "true" (cli.h);
  // treat it like an absent value so the default name lands in
  // --out-dir, same as the CSV outputs.
  const auto artefact_path = [&](const std::string& flag,
                                 const std::string& default_name) {
    const std::string v = cli.get(flag, "true");
    if (v != "true") return v;
    const std::string dir = cli.get("out-dir", "");
    if (dir.empty()) return default_name;
    return dir.back() == '/' ? dir + default_name : dir + "/" + default_name;
  };
  if (cli.has("trace-out") && run.trace != nullptr) {
    const std::string path = artefact_path("trace-out",
                                           "trace_" + stem + ".json");
    std::ofstream os(path);
    SKIL_ASSERT(os.good(), "cannot open trace output file: " + path);
    parix::write_chrome_trace(*run.trace, run.prof.get(), os);
    SKIL_ASSERT(os.good(), "failed writing trace output file: " + path);
    std::printf("wrote %s\n", path.c_str());
  }
  if (cli.has("metrics-out")) {
    const std::string path = artefact_path("metrics-out",
                                           "metrics_" + stem + ".json");
    std::ofstream os(path);
    SKIL_ASSERT(os.good(), "cannot open metrics output file: " + path);
    parix::write_metrics_json(run, os);
    SKIL_ASSERT(os.good(), "failed writing metrics output file: " + path);
    std::printf("wrote %s\n", path.c_str());
  }
}

/// Prints a section header.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Prints one shape-check line: the qualitative property the paper's
/// data shows, and whether the reproduction satisfies it.
inline bool shape_check(const std::string& name, bool holds) {
  std::printf("  [%s] %s\n", holds ? "OK" : "MISS", name.c_str());
  return holds;
}

}  // namespace skil::bench
