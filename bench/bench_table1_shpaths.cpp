// Reproduces Table 1: shortest paths for graphs with n = 200 nodes
// (rounded up to a multiple of the grid side) on sqrt(p) x sqrt(p)
// processor networks.
//
// Paper columns: DPFL absolute seconds, Skil absolute seconds, the
// DPFL/Skil speedup (around 6), and the old message-passing C version
// (no virtual topologies, no asynchronous communication) which Skil
// *beats*.  The paper measured DPFL on the even grids only.
//
// Usage: bench_table1_shpaths [--n=200] [--quick] [--csv=path] [--out-dir=dir]
//                             [--metrics-out[=path]] [--trace-out[=path]]
//
// --metrics-out / --trace-out re-run the representative Skil cell
// (p = 16) once under full tracing after the table sweep and export
// its metrics / Chrome trace JSON (parix/metrics.h); bare flags drop
// the default file names into --out-dir.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/shortest_paths.h"
#include "bench_common.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

namespace {

using namespace skil;
using namespace skil::bench;

struct PaperRow {
  int p;
  double dpfl;    // negative: not reported
  double skil;
  double ratio;   // DPFL / Skil
  double old_c;   // negative: not reported
};

// Table 1 of the paper (seconds on the 64-transputer Parsytec MC).
const std::vector<PaperRow> kPaper = {
    {4, 1524.22, 234.29, 6.51, 259.49},  {9, -1, 107.69, -1, -1},
    {16, 387.23, 60.78, 6.37, 65.79},    {25, -1, 39.56, -1, -1},
    {36, 185.13, 29.70, 6.23, 31.53},    {49, -1, 21.83, -1, -1},
    {64, 98.76, 16.34, 6.04, 16.92},
};

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv, {"n", "quick", "csv", "out-dir",
                                      "metrics-out", "trace-out"});
  const int n = cli.get_int("n", cli.get_bool("quick") ? 60 : 200);
  const std::uint64_t seed = 20260704;

  banner("Table 1 -- shortest paths, n = " + std::to_string(n) +
         " (Skil vs DPFL vs old Parix-C)");
  std::printf("paper reference values shown in brackets; '-' = not "
              "reported in the paper\n\n");

  support::Table table({"p", "n used", "DPFL [s]", "Skil [s]", "DPFL/Skil",
                        "old C [s]", "Skil/old C"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_table1_shpaths.csv"),
                         {"p", "n", "dpfl_s", "skil_s", "dpfl_over_skil",
                          "oldc_s", "skil_over_oldc", "paper_dpfl_s",
                          "paper_skil_s", "paper_oldc_s"});

  bool all_ratios_in_band = true;
  bool skil_beats_old_c = true;
  std::vector<double> measured_ratios;

  for (const PaperRow& row : kPaper) {
    const int p = row.p;
    const int n_used = apps::shpaths_round_up(n, p);
    const bool run_dpfl = row.dpfl > 0;  // the paper measured even grids

    const auto skil = apps::shpaths_skil(p, n, seed);
    const auto old_c = apps::shpaths_c(p, n, seed, /*optimized=*/false);
    double dpfl_s = -1, ratio = -1;
    if (run_dpfl) {
      const auto dpfl = apps::shpaths_dpfl(p, n, seed);
      dpfl_s = dpfl.run.vtime_seconds();
      ratio = dpfl_s / skil.run.vtime_seconds();
      measured_ratios.push_back(ratio);
      if (ratio < 3.0 || ratio > 10.0) all_ratios_in_band = false;
    }
    const double skil_s = skil.run.vtime_seconds();
    const double oldc_s = old_c.run.vtime_seconds();
    if (skil_s >= oldc_s) skil_beats_old_c = false;

    auto cell = [](double v, double paper, int digits = 2) {
      std::string s = v < 0 ? "-" : support::fmt_fixed(v, digits);
      s += "  [" + (paper < 0 ? std::string("-")
                              : support::fmt_fixed(paper, digits)) +
           "]";
      return s;
    };
    table.add_row({grid_label(p), std::to_string(n_used),
                   cell(dpfl_s, row.dpfl), cell(skil_s, row.skil),
                   cell(ratio, row.ratio),
                   cell(oldc_s, row.old_c),
                   support::fmt_ratio(skil_s / oldc_s)});
    csv.add_row({std::to_string(p), std::to_string(n_used),
                 support::fmt_ratio(dpfl_s, 4), support::fmt_ratio(skil_s, 4),
                 support::fmt_ratio(ratio, 4), support::fmt_ratio(oldc_s, 4),
                 support::fmt_ratio(skil_s / oldc_s, 4),
                 support::fmt_ratio(row.dpfl), support::fmt_ratio(row.skil),
                 support::fmt_ratio(row.old_c)});
  }
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("Skil beats the old Parix-C version at every p "
              "(the paper's headline observation)",
              skil_beats_old_c);
  shape_check("DPFL/Skil speedup stays in the 3..10 band the paper "
              "reports (around 6)",
              all_ratios_in_band);
  bool decreasing = true;
  for (std::size_t i = 1; i < measured_ratios.size(); ++i)
    if (measured_ratios[i] > measured_ratios[i - 1] + 0.75)
      decreasing = false;
  shape_check("DPFL/Skil ratio does not grow with p (communication "
              "evens the languages out)",
              decreasing);

  if (wants_run_artifacts(cli)) {
    const int p = 16;
    const auto traced =
        traced_rerun([&] { return apps::shpaths_skil(p, n, seed); });
    write_run_artifacts(cli, traced.run,
                        "shpaths_skil_p" + std::to_string(p) + "_n" +
                            std::to_string(n));
  }
  return 0;
}
