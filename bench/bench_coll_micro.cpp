// Collective-zoo microbench: per-(collective, algorithm, p, payload)
// virtual times for the size-adaptive collectives in parix/coll.h.
//
// The zoo's claim is twofold: (a) every algorithm family returns
// bit-identical array results (the adaptive selection is free to pick
// any of them), and (b) SKIL_COLL=auto never loses to the fixed tree
// baseline and wins big where the theory says it should -- large
// payloads at large p, where reduce-scatter pipelines beat the
// 2 log p store-and-forward tree.  Both claims are shape-checked here
// per cell.
//
// Usage: bench_coll_micro [--elems=65536] [--csv=path] [--out-dir=dir]
//                         [--metrics-out[=path]] [--trace-out[=path]]
//
// --metrics-out / --trace-out re-run the headline cell (allreduce of
// --elems doubles at p = 64 under SKIL_COLL=auto) traced and export
// its metrics / Chrome trace JSON, including the per-op collective
// counter block.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "parix/collectives.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

namespace {

using namespace skil;

struct Cell {
  double vtime_us = 0.0;
  std::vector<std::uint64_t> bits;  ///< per-proc result fingerprint
  parix::RunResult run;
};

std::uint64_t fp_bits(std::uint64_t acc, double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return (acc * 1099511628211ULL) ^ u;
}

/// One microbench cell: `op` on p processors under `mode`.
Cell run_cell(const std::string& op, int p, parix::CollMode mode, int elems,
              parix::TraceMode trace = parix::TraceMode::kOff) {
  Cell cell;
  cell.bits.assign(p, 0);
  parix::RunConfig config{p, parix::CostModel::t800()};
  config.coll = mode;
  config.trace = trace;
  cell.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    parix::Topology topo(proc.machine(), parix::Distr::kDefault);
    std::uint64_t fp = 0;
    if (op == "allreduce-elems") {
      // Integer-valued doubles: their sums are exact in FP, so the
      // CollOrder::kExact reassociation contract holds bit-for-bit.
      std::vector<double> v(elems);
      for (int i = 0; i < elems; ++i)
        v[i] = static_cast<double>((proc.id() + 1) * (i % 1021));
      const std::vector<double> out = parix::allreduce_elems(
          proc, topo, std::move(v), [](double a, double b) { return a + b; },
          parix::CollOrder::kExact);
      for (double x : out) fp = fp_bits(fp, x);
    } else if (op == "allreduce-scalar") {
      double v = proc.id() + 1.0;
      for (int i = 0; i < 8; ++i)
        v = parix::allreduce(proc, topo, v,
                             [](double a, double b) { return a + b; });
      fp = fp_bits(fp, v);
    } else if (op == "allgather-scalar") {
      for (int i = 0; i < 8; ++i) {
        const std::vector<double> all =
            parix::allgather(proc, topo, proc.id() + i * 0.5);
        for (double x : all) fp = fp_bits(fp, x);
      }
    } else if (op == "bcast-large") {
      std::vector<double> v;
      if (proc.id() == 0) {
        v.resize(elems);
        for (int i = 0; i < elems; ++i) v[i] = i * 1e-3;
      }
      parix::broadcast(proc, topo, 0, v,
                       static_cast<std::size_t>(elems) * sizeof(double));
      for (double x : v) fp = fp_bits(fp, x);
    } else {
      SKIL_REQUIRE(false, "unknown microbench op: " + op);
    }
    cell.bits[proc.id()] = fp;  // per-proc slot, no race
  });
  cell.vtime_us = cell.run.vtime_us;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"elems", "csv", "out-dir",
                                      "metrics-out", "trace-out"});
  const int elems = cli.get_int("elems", 65536);

  banner("collective zoo -- vtime per (op, algorithm, p); payload " +
         std::to_string(elems) + " doubles where applicable");

  const parix::CollMode kModes[] = {
      parix::CollMode::kTree, parix::CollMode::kRing, parix::CollMode::kRd,
      parix::CollMode::kAuto};
  const std::string kOps[] = {"allreduce-elems", "allreduce-scalar",
                              "allgather-scalar", "bcast-large"};
  const int kProcs[] = {16, 48, 64};

  support::Table table({"op", "p", "tree [s]", "ring [s]", "rd [s]",
                        "auto [s]", "tree/auto"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_coll_micro.csv"),
                         {"op", "p", "mode", "seconds", "speedup_vs_tree"});

  bool auto_never_loses = true;
  bool bits_identical = true;
  double headline_ratio = 0.0;
  for (const std::string& op : kOps) {
    for (int p : kProcs) {
      double vtimes[4] = {};
      std::vector<std::uint64_t> baseline_bits;
      for (int m = 0; m < 4; ++m) {
        const Cell cell = run_cell(op, p, kModes[m], elems);
        vtimes[m] = cell.vtime_us;
        if (m == 0)
          baseline_bits = cell.bits;
        else if (cell.bits != baseline_bits)
          bits_identical = false;
        csv.add_row({op, std::to_string(p),
                     std::string(parix::coll_mode_name(kModes[m])),
                     support::fmt_fixed(cell.vtime_us * 1e-6, 5),
                     support::fmt_fixed(vtimes[0] / cell.vtime_us, 4)});
      }
      const double ratio = vtimes[0] / vtimes[3];
      if (vtimes[3] > vtimes[0] * 1.0001) auto_never_loses = false;
      if (op == "allreduce-elems" && p == 64) headline_ratio = ratio;
      table.add_row({op, std::to_string(p), secs(vtimes[0], 3),
                     secs(vtimes[1], 3), secs(vtimes[2], 3),
                     secs(vtimes[3], 3), support::fmt_fixed(ratio, 2)});
    }
    table.add_separator();
  }
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("array results bit-identical across all SKIL_COLL modes",
              bits_identical);
  shape_check("auto never loses to the tree baseline", auto_never_loses);
  shape_check("auto >= 1.5x faster than tree for the large allreduce at "
              "p = 64 (measured " +
                  support::fmt_fixed(headline_ratio, 2) + "x)",
              headline_ratio >= 1.5);

  if (wants_run_artifacts(cli)) {
    const Cell traced = run_cell("allreduce-elems", 64, parix::CollMode::kAuto,
                                 elems, parix::TraceMode::kFull);
    write_run_artifacts(cli, traced.run, "coll_allreduce_p64_auto");
  }
  return 0;
}
