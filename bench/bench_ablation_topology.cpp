// Ablation A1: *why* does Skil beat the older C version in Table 1?
// The paper credits "virtual topologies" and "asynchronous
// communication".  This bench toggles the two ingredients (plus the
// hand-tuned inner loop) independently on the hand-written C shortest
// paths and shows each one's contribution.
//
// Usage: bench_ablation_topology [--n=120] [--p=16] [--csv=path]
//                                [--coll-csv=path] [--out-dir=dir]
//                                [--metrics-out[=path]] [--trace-out[=path]]
//
// Besides the paper's A1 ablation this bench also A/Bs the collective
// zoo (SKIL_COLL=tree vs auto) across every virtual-topology
// embedding, since the embeddings' hop distances drive the adaptive
// algorithm choice (--coll-csv).
//
// --metrics-out / --trace-out re-run the fully optimized C variant
// once under full tracing after the sweep and export its metrics /
// Chrome trace JSON (bench_common.h).
#include <cstdio>

#include "apps/shortest_paths.h"
#include "bench_common.h"
#include "parix/collectives.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"n", "p", "csv", "coll-csv", "out-dir",
                                      "metrics-out", "trace-out"});
  const int n = cli.get_int("n", 120);
  const int p = cli.get_int("p", 16);
  const std::uint64_t seed = 555;

  banner("A1 -- ablation: virtual topology / asynchronous overlap / "
         "tuned loop (hand-written C shortest paths, p = " +
         std::to_string(p) + ", n = " + std::to_string(n) + ")");

  struct Variant {
    const char* name;
    apps::CImplOptions options;
  };
  const Variant variants[] = {
      {"old C (none)", {false, false, false}},
      {"+ virtual topology", {true, false, false}},
      {"+ async overlap", {false, true, false}},
      {"+ tuned loop", {false, false, true}},
      {"topology + async", {true, true, false}},
      {"fully optimized", {true, true, true}},
  };

  support::Table table({"variant", "time [s]", "vs old C", "comm share"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_ablation_topology.csv"),
                         {"variant", "seconds", "speedup_vs_old",
                          "comm_share"});
  double old_time = 0.0;
  double skil_time = apps::shpaths_skil(p, n, seed).run.vtime_seconds();
  bool each_helps = true;
  double prev_combined = 1e300;
  for (const Variant& variant : variants) {
    const auto result = apps::shpaths_c_custom(p, n, seed, variant.options);
    const double secs_v = result.run.vtime_seconds();
    if (old_time == 0.0) old_time = secs_v;
    const double comm_share =
        result.run.total.comm_us /
        (result.run.total.comm_us + result.run.total.compute_us);
    table.add_row({variant.name, support::fmt_fixed(secs_v, 3),
                   support::fmt_fixed(old_time / secs_v, 3),
                   support::fmt_fixed(comm_share, 3)});
    csv.add_row({variant.name, support::fmt_fixed(secs_v, 5),
                 support::fmt_fixed(old_time / secs_v, 4),
                 support::fmt_fixed(comm_share, 4)});
    if (secs_v > old_time * 1.0001) each_helps = false;
    prev_combined = secs_v;
  }
  table.add_separator();
  table.add_row({"Skil (skeletons)", support::fmt_fixed(skil_time, 3),
                 support::fmt_fixed(old_time / skil_time, 3), ""});
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("every single ingredient improves on the old version",
              each_helps);
  shape_check("Skil sits between the old and the fully optimized C "
              "(Table 1's observation)",
              skil_time < old_time && skil_time > prev_combined);

  // A2 -- the same embedding question for the collective zoo: each
  // virtual topology changes the hop distances the cost model charges,
  // so the size-adaptive selection (SKIL_COLL=auto) can pick a
  // different algorithm per embedding.  A/B tree vs auto on a
  // collective-heavy kernel over every embedding.
  banner("A2 -- collective algorithm vs embedding (allreduce of " +
         std::to_string(4096) + " doubles, p = " + std::to_string(p) + ")");
  const parix::Distr kEmbeddings[] = {
      parix::Distr::kDefault, parix::Distr::kRing, parix::Distr::kTorus2D,
      parix::Distr::kHypercube};
  support::Table coll_table({"embedding", "tree [s]", "auto [s]",
                             "tree/auto"});
  support::CsvWriter coll_csv(
      out_path(cli, "coll-csv", "bench_ablation_topology_coll.csv"),
      {"embedding", "mode", "seconds"});
  bool coll_auto_never_loses = true;
  for (parix::Distr embedding : kEmbeddings) {
    double vtimes[2] = {};
    const parix::CollMode modes[2] = {parix::CollMode::kTree,
                                      parix::CollMode::kAuto};
    for (int m = 0; m < 2; ++m) {
      parix::RunConfig config{p, parix::CostModel::t800()};
      config.coll = modes[m];
      const parix::RunResult run =
          parix::spmd_run(config, [&](parix::Proc& proc) {
            parix::Topology topo(proc.machine(), embedding);
            std::vector<double> v(4096, proc.id() + 1.0);
            (void)parix::allreduce_elems(
                proc, topo, std::move(v),
                [](double a, double b) { return a + b; },
                parix::CollOrder::kExact);
          });
      vtimes[m] = run.vtime_us;
      coll_csv.add_row({parix::distr_name(embedding),
                        std::string(parix::coll_mode_name(modes[m])),
                        support::fmt_fixed(run.vtime_us * 1e-6, 5)});
    }
    if (vtimes[1] > vtimes[0] * 1.0001) coll_auto_never_loses = false;
    coll_table.add_row({parix::distr_name(embedding), secs(vtimes[0], 3),
                        secs(vtimes[1], 3),
                        support::fmt_fixed(vtimes[0] / vtimes[1], 2)});
  }
  coll_table.print();
  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("auto never loses to tree on any embedding",
              coll_auto_never_loses);

  if (wants_run_artifacts(cli)) {
    const auto traced = traced_rerun([&] {
      return apps::shpaths_c_custom(p, n, seed, {true, true, true});
    });
    write_run_artifacts(cli, traced.run,
                        "shpaths_c_opt_p" + std::to_string(p) + "_n" +
                            std::to_string(n));
  }
  return 0;
}
