// Ablation A1: *why* does Skil beat the older C version in Table 1?
// The paper credits "virtual topologies" and "asynchronous
// communication".  This bench toggles the two ingredients (plus the
// hand-tuned inner loop) independently on the hand-written C shortest
// paths and shows each one's contribution.
//
// Usage: bench_ablation_topology [--n=120] [--p=16] [--csv=path] [--out-dir=dir]
//                                [--metrics-out[=path]] [--trace-out[=path]]
//
// --metrics-out / --trace-out re-run the fully optimized C variant
// once under full tracing after the sweep and export its metrics /
// Chrome trace JSON (bench_common.h).
#include <cstdio>

#include "apps/shortest_paths.h"
#include "bench_common.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"n", "p", "csv", "out-dir",
                                      "metrics-out", "trace-out"});
  const int n = cli.get_int("n", 120);
  const int p = cli.get_int("p", 16);
  const std::uint64_t seed = 555;

  banner("A1 -- ablation: virtual topology / asynchronous overlap / "
         "tuned loop (hand-written C shortest paths, p = " +
         std::to_string(p) + ", n = " + std::to_string(n) + ")");

  struct Variant {
    const char* name;
    apps::CImplOptions options;
  };
  const Variant variants[] = {
      {"old C (none)", {false, false, false}},
      {"+ virtual topology", {true, false, false}},
      {"+ async overlap", {false, true, false}},
      {"+ tuned loop", {false, false, true}},
      {"topology + async", {true, true, false}},
      {"fully optimized", {true, true, true}},
  };

  support::Table table({"variant", "time [s]", "vs old C", "comm share"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_ablation_topology.csv"),
                         {"variant", "seconds", "speedup_vs_old",
                          "comm_share"});
  double old_time = 0.0;
  double skil_time = apps::shpaths_skil(p, n, seed).run.vtime_seconds();
  bool each_helps = true;
  double prev_combined = 1e300;
  for (const Variant& variant : variants) {
    const auto result = apps::shpaths_c_custom(p, n, seed, variant.options);
    const double secs_v = result.run.vtime_seconds();
    if (old_time == 0.0) old_time = secs_v;
    const double comm_share =
        result.run.total.comm_us /
        (result.run.total.comm_us + result.run.total.compute_us);
    table.add_row({variant.name, support::fmt_fixed(secs_v, 3),
                   support::fmt_fixed(old_time / secs_v, 3),
                   support::fmt_fixed(comm_share, 3)});
    csv.add_row({variant.name, support::fmt_fixed(secs_v, 5),
                 support::fmt_fixed(old_time / secs_v, 4),
                 support::fmt_fixed(comm_share, 4)});
    if (secs_v > old_time * 1.0001) each_helps = false;
    prev_combined = secs_v;
  }
  table.add_separator();
  table.add_row({"Skil (skeletons)", support::fmt_fixed(skil_time, 3),
                 support::fmt_fixed(old_time / skil_time, 3), ""});
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("every single ingredient improves on the old version",
              each_helps);
  shape_check("Skil sits between the old and the fully optimized C "
              "(Table 1's observation)",
              skil_time < old_time && skil_time > prev_combined);

  if (wants_run_artifacts(cli)) {
    const auto traced = traced_rerun([&] {
      return apps::shpaths_c_custom(p, n, seed, {true, true, true});
    });
    write_run_artifacts(cli, traced.run,
                        "shpaths_c_opt_p" + std::to_string(p) + "_n" +
                            std::to_string(n));
  }
  return 0;
}
