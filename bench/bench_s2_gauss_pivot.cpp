// Reproduces the section 5.2 claim: "The second version of gauss we
// tested was the complete one [with pivot search and row exchange].
// The run-times were here about twice as long as in the first
// version, which is satisfactory, since ... this brings considerable
// communication overhead."
//
// Usage: bench_s2_gauss_pivot [--quick] [--csv=path] [--out-dir=dir]
#include <cstdio>

#include "apps/gauss.h"
#include "bench_common.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"quick", "csv", "out-dir"});
  const bool quick = cli.get_bool("quick");
  const std::uint64_t seed = 29972;

  banner("S2 -- complete Gaussian elimination (pivot search + row "
         "exchange) vs the pivot-free version (paper: about 2x)");

  const std::vector<int> ns = quick ? std::vector<int>{64, 128}
                                    : std::vector<int>{64, 128, 256};
  const std::vector<int> ps = {4, 16, 64};

  support::Table table(
      {"p", "n", "no pivot [s]", "with pivot [s]", "factor"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_s2_gauss_pivot.csv"),
                         {"p", "n", "nopivot_s", "pivot_s", "factor"});
  bool in_band = true;
  for (int p : ps)
    for (int n : ns) {
      std::fprintf(stderr, "  running gauss pivot sweep p=%d n=%d ...\n", p,
                   n);
      const double plain =
          apps::gauss_skil(p, n, seed, /*pivoting=*/false).run.vtime_seconds();
      const double pivot =
          apps::gauss_skil(p, n, seed, /*pivoting=*/true).run.vtime_seconds();
      const double factor = pivot / plain;
      // "About twice"; the extreme small-partition corner (one row per
      // processor) pays the fold's communication on top and lands
      // somewhat higher.
      if (factor < 1.2 || factor > 3.8) in_band = false;
      table.add_row({std::to_string(p), std::to_string(n),
                     support::fmt_fixed(plain, 3),
                     support::fmt_fixed(pivot, 3),
                     support::fmt_fixed(factor, 2)});
      csv.add_row({std::to_string(p), std::to_string(n),
                   support::fmt_fixed(plain, 5), support::fmt_fixed(pivot, 5),
                   support::fmt_fixed(factor, 4)});
    }
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("pivoting costs roughly 2x (band 1.2..3.5): the fold over "
              "the whole matrix plus the row exchange per step",
              in_band);
  return 0;
}
