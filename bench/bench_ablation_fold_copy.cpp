// Ablation A3: two implementation choices the paper motivates in
// section 3:
//  * array_fold combines partition results "along the edges of a
//    virtual tree topology" -- versus a naive linear (sequential
//    gather) combination;
//  * array_copy copies contiguous partitions wholesale -- versus a
//    "correspondingly parameterized array_map".
//
// Usage: bench_ablation_fold_copy [--elems=100000] [--csv=path] [--out-dir=dir]
//                                 [--metrics-out[=path]] [--trace-out[=path]]
//
// --metrics-out / --trace-out re-run the p = 16 tree fold once under
// full tracing after the sweeps and export its metrics / Chrome trace
// JSON (bench_common.h).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "parix/collectives.h"
#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

namespace {

using namespace skil;

/// Linear fold: every processor sends its partial to the root in rank
/// order, the root combines sequentially and broadcasts back.
template <class T, class BinOp>
T linear_allreduce(parix::Proc& proc, const parix::Topology& topo, T local,
                   BinOp op) {
  std::vector<T> all = parix::gather(proc, topo, topo.hw_of(0), local);
  T result = local;
  if (proc.id() == topo.hw_of(0)) {
    result = all[0];
    for (std::size_t i = 1; i < all.size(); ++i)
      result = op(result, all[i]);
  }
  parix::broadcast(proc, topo, topo.hw_of(0), result);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skil::bench;
  const support::Cli cli(argc, argv, {"elems", "csv", "out-dir",
                                      "metrics-out", "trace-out"});
  const int elems = cli.get_int("elems", 100000);

  banner("A3 -- tree fold vs linear fold; memcpy copy vs map copy");

  support::Table fold_table(
      {"p", "tree fold [ms]", "linear fold [ms]", "linear/tree"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_ablation_fold_copy.csv"),
                         {"experiment", "p", "fast_ms", "slow_ms", "ratio"});

  bool tree_wins_large = true;
  for (int p : {4, 16, 64}) {
    parix::RunConfig config{p, parix::CostModel::t800()};
    // Fold a tiny per-processor value many times so the collective's
    // communication structure dominates.
    const int rounds = 64;
    const auto tree = parix::spmd_run(config, [&](parix::Proc& proc) {
      const parix::Topology topo(proc.machine(), parix::Distr::kDefault);
      double acc = proc.id();
      for (int r = 0; r < rounds; ++r)
        acc = parix::allreduce(proc, topo, acc,
                               [](double a, double b) { return a + b; });
    });
    const auto linear = parix::spmd_run(config, [&](parix::Proc& proc) {
      const parix::Topology topo(proc.machine(), parix::Distr::kDefault);
      double acc = proc.id();
      for (int r = 0; r < rounds; ++r)
        acc = linear_allreduce(proc, topo, acc,
                               [](double a, double b) { return a + b; });
    });
    const double ratio = linear.vtime_us / tree.vtime_us;
    if (p >= 16 && ratio < 1.2) tree_wins_large = false;
    fold_table.add_row({std::to_string(p),
                        support::fmt_fixed(tree.vtime_us / 1e3, 2),
                        support::fmt_fixed(linear.vtime_us / 1e3, 2),
                        support::fmt_fixed(ratio, 2)});
    csv.add_row({"fold", std::to_string(p),
                 support::fmt_fixed(tree.vtime_us / 1e3, 4),
                 support::fmt_fixed(linear.vtime_us / 1e3, 4),
                 support::fmt_fixed(ratio, 4)});
  }
  fold_table.print();

  support::Table copy_table(
      {"elems", "array_copy [ms]", "map copy [ms]", "map/copy"});
  bool copy_wins = true;
  for (int size : {elems / 10, elems}) {
    parix::RunConfig config{4, parix::CostModel::t800()};
    const auto fast = parix::spmd_run(config, [&](parix::Proc& proc) {
      auto a = array_create<double>(proc, 1, Size{size},
                                    [](Index ix) { return ix[0] * 1.0; });
      auto b = array_create<double>(proc, 1, Size{size},
                                    [](Index) { return 0.0; });
      for (int r = 0; r < 8; ++r) array_copy(a, b);
    });
    const auto slow = parix::spmd_run(config, [&](parix::Proc& proc) {
      auto a = array_create<double>(proc, 1, Size{size},
                                    [](Index ix) { return ix[0] * 1.0; });
      auto b = array_create<double>(proc, 1, Size{size},
                                    [](Index) { return 0.0; });
      for (int r = 0; r < 8; ++r) array_map(fn::identity, a, b);
    });
    const double ratio = slow.vtime_us / fast.vtime_us;
    if (ratio < 1.5) copy_wins = false;
    copy_table.add_row({std::to_string(size),
                        support::fmt_fixed(fast.vtime_us / 1e3, 2),
                        support::fmt_fixed(slow.vtime_us / 1e3, 2),
                        support::fmt_fixed(ratio, 2)});
    csv.add_row({"copy", std::to_string(size),
                 support::fmt_fixed(fast.vtime_us / 1e3, 4),
                 support::fmt_fixed(slow.vtime_us / 1e3, 4),
                 support::fmt_fixed(ratio, 4)});
  }
  copy_table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("the tree fold beats the linear fold on larger networks",
              tree_wins_large);
  shape_check("contiguous array_copy beats the equivalent array_map",
              copy_wins);

  if (wants_run_artifacts(cli)) {
    const int p = 16;
    parix::RunConfig config{p, parix::CostModel::t800()};
    const auto traced = traced_rerun([&] {
      return parix::spmd_run(config, [&](parix::Proc& proc) {
        const parix::Topology topo(proc.machine(), parix::Distr::kDefault);
        double acc = proc.id();
        for (int r = 0; r < 64; ++r)
          acc = parix::allreduce(proc, topo, acc,
                                 [](double a, double b) { return a + b; });
      });
    });
    write_run_artifacts(cli, traced, "fold_tree_p" + std::to_string(p));
  }
  return 0;
}
