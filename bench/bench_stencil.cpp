// Jacobi halo-exchange stencil (apps/stencil_jacobi.h).
//
// Per step the stencil exchanges one halo row per neighbour and, at
// the end, folds two global reductions -- the classic
// nearest-neighbour + collective mix.  The bench sweeps processors
// and rod sizes, A/Bs SKIL_COLL=tree vs auto, and checks heat
// conservation plus cross-mode bit-identity of the final profile.
//
// Usage: bench_stencil [--cells=1024] [--steps=50] [--csv=path]
//                      [--out-dir=dir] [--metrics-out[=path]]
//                      [--trace-out[=path]]
//
// --metrics-out / --trace-out re-run the largest auto cell traced and
// export its metrics (collective counters + critical-path summary) /
// Chrome trace JSON.
#include <cmath>
#include <cstdio>
#include <string>

#include "apps/stencil_jacobi.h"
#include "bench_common.h"
#include "parix/coll.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

namespace {

template <typename Fn>
auto with_mode(skil::parix::CollMode mode, Fn&& fn) {
  const skil::parix::CollMode saved = skil::parix::default_coll_mode();
  skil::parix::set_default_coll_mode(mode);
  auto result = fn();
  skil::parix::set_default_coll_mode(saved);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"cells", "steps", "csv", "out-dir",
                                      "metrics-out", "trace-out"});
  const int cells = cli.get_int("cells", 1024);
  const int steps = cli.get_int("steps", 50);

  banner("Jacobi halo-exchange stencil, " + std::to_string(cells) +
         " cells, " + std::to_string(steps) + " steps");

  support::Table table({"p", "tree [s]", "auto [s]", "tree/auto",
                        "halo msgs", "peak"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_stencil.csv"),
                         {"p", "mode", "seconds", "messages", "peak"});

  bool conserved = true;
  bool bits_identical = true;
  bool auto_never_loses = true;
  for (int p : {8, 16, 64}) {
    const auto tree = with_mode(parix::CollMode::kTree, [&] {
      return apps::stencil_jacobi(p, cells, steps);
    });
    const auto adaptive = with_mode(parix::CollMode::kAuto, [&] {
      return apps::stencil_jacobi(p, cells, steps);
    });

    // The three-point kernel's weights sum to 1 with reflecting
    // boundaries, so total heat is invariant up to FP rounding.
    const int padded = apps::stencil_round_up(cells, p);
    const double expected =
        100.0 * (2 * padded / 3 - padded / 3);
    if (std::fabs(tree.total - expected) > 1e-6 * expected)
      conserved = false;
    if (tree.temps != adaptive.temps || tree.total != adaptive.total ||
        tree.peak != adaptive.peak)
      bits_identical = false;
    // The stencil's critical path is halo traffic; the two end-of-run
    // folds start at staggered per-proc times, where a dissemination
    // allreduce can finish the *last* processor marginally later than
    // the tree even though its synchronized-entry cost is lower.  The
    // zoo only promises wins on collective-dominated paths, so allow
    // that scheduling jitter a 2% band here.
    if (adaptive.run.vtime_us > tree.run.vtime_us * 1.02)
      auto_never_loses = false;

    const double ratio = tree.run.vtime_us / adaptive.run.vtime_us;
    table.add_row({std::to_string(p), secs(tree.run.vtime_us, 3),
                   secs(adaptive.run.vtime_us, 3),
                   support::fmt_fixed(ratio, 2),
                   std::to_string(tree.run.total.messages_sent),
                   support::fmt_fixed(tree.peak, 3)});
    csv.add_row({std::to_string(p), "tree",
                 support::fmt_fixed(tree.run.vtime_us * 1e-6, 5),
                 std::to_string(tree.run.total.messages_sent),
                 support::fmt_fixed(tree.peak, 5)});
    csv.add_row({std::to_string(p), "auto",
                 support::fmt_fixed(adaptive.run.vtime_us * 1e-6, 5),
                 std::to_string(adaptive.run.total.messages_sent),
                 support::fmt_fixed(adaptive.peak, 5)});
  }
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("total heat conserved across all steps", conserved);
  shape_check("profile and folds bit-identical under tree and auto",
              bits_identical);
  shape_check("auto stays within 2% of the tree baseline (halo traffic, "
              "not collectives, dominates here)",
              auto_never_loses);

  if (wants_run_artifacts(cli)) {
    const auto traced = traced_rerun([&] {
      return with_mode(parix::CollMode::kAuto, [&] {
        return apps::stencil_jacobi(64, cells, steps);
      });
    });
    write_run_artifacts(cli, traced.run,
                        "stencil_p64_c" + std::to_string(cells));
  }
  return 0;
}
