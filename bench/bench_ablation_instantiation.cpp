// Ablation A2: the paper's section 2.4 argues that translating
// higher-order functions by *instantiation* (inlining + lifting +
// monomorphisation) beats the classical closure-based implementation,
// whose "run-time overheads ... lead to efficiency losses".
//
// This bench runs the same map/fold workload through three dispatch
// mechanisms and reports both the modeled (T800) time and the *host*
// wall time, showing that the effect is real on modern hardware too:
//   1. instantiated   -- skil::array_map with a template-inlined lambda;
//   2. closure        -- the same skeleton invoked through
//                        std::function (the mechanism Skil's compiler
//                        avoids), modeled with indirect-call prices;
//   3. graph reduction-- the DPFL baseline (closures + boxing).
//
// Usage: bench_ablation_instantiation [--elems=200000] [--csv=path] [--out-dir=dir]
//                                     [--metrics-out[=path]] [--trace-out[=path]]
//
// --metrics-out / --trace-out re-run the instantiated variant once
// under full tracing after the timed comparisons and export its
// metrics / Chrome trace JSON (bench_common.h).
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "dpfl/dpfl.h"
#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

namespace {

using namespace skil;

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skil::bench;
  const support::Cli cli(argc, argv, {"elems", "csv", "out-dir",
                                      "metrics-out", "trace-out"});
  const int elems = cli.get_int("elems", 200000);
  const int p = 4;

  banner("A2 -- instantiation vs closures for skeleton arguments "
         "(map + fold over " + std::to_string(elems) + " doubles)");

  parix::RunConfig config{p, parix::CostModel::t800()};
  double modeled[3] = {0, 0, 0};
  double wall[3] = {0, 0, 0};

  // 1. Instantiated: the template skeleton inlines the lambda.
  wall[0] = wall_seconds([&] {
    const auto run = parix::spmd_run(config, [&](parix::Proc& proc) {
      auto a = array_create<double>(proc, 1, Size{elems},
                                    [](Index ix) { return ix[0] * 0.5; });
      array_map([](double v) { return v * 1.0001 + 1.0; }, a, a);
      array_fold([](double v, Index) { return v; }, fn::plus, a);
    });
    modeled[0] = run.vtime_seconds();
  });

  // 2. Closure-based: same skeleton, but the functional argument is a
  // std::function and each application additionally pays the
  // indirect-call price the instantiation procedure eliminates.
  wall[1] = wall_seconds([&] {
    const auto run = parix::spmd_run(config, [&](parix::Proc& proc) {
      auto a = array_create<double>(proc, 1, Size{elems},
                                    [](Index ix) { return ix[0] * 0.5; });
      const std::function<double(double)> f = [](double v) {
        return v * 1.0001 + 1.0;
      };
      array_map([&proc, &f](double v) {
        proc.charge(parix::Op::kIndirectCall);
        return f(v);
      }, a, a);
      const std::function<double(double, double)> add =
          [](double x, double y) { return x + y; };
      array_fold([](double v, Index) { return v; },
                 [&proc, &add](double x, double y) {
                   proc.charge(parix::Op::kIndirectCall);
                   return add(x, y);
                 },
                 a);
    });
    modeled[1] = run.vtime_seconds();
  });

  // 3. DPFL: closures plus boxing/immutability.
  wall[2] = wall_seconds([&] {
    const auto run = parix::spmd_run(config, [&](parix::Proc& proc) {
      const dpfl::Closure<double(Index)> init(
          proc, [](Index ix) { return ix[0] * 0.5; });
      auto a = dpfl::fa_create<double>(proc, 1, Size{elems}, init);
      const dpfl::Closure<double(double, Index)> f(
          proc, [](double v, Index) { return v * 1.0001 + 1.0; });
      a = dpfl::fa_map(f, a);
      const dpfl::Closure<double(double, Index)> conv(
          proc, [](double v, Index) { return v; });
      const dpfl::Closure<double(double, double)> add(
          proc, [](double x, double y) { return x + y; });
      dpfl::fa_fold(conv, add, a);
    });
    modeled[2] = run.vtime_seconds();
  });

  const char* names[3] = {"instantiated (Skil)", "closures (std::function)",
                          "graph reduction (DPFL)"};
  support::Table table({"mechanism", "modeled T800 [s]", "vs instantiated",
                        "host wall [ms]", "host ratio"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_ablation_instantiation.csv"),
                         {"mechanism", "modeled_s", "modeled_ratio",
                          "wall_ms", "wall_ratio"});
  for (int i = 0; i < 3; ++i) {
    table.add_row({names[i], support::fmt_fixed(modeled[i], 3),
                   support::fmt_fixed(modeled[i] / modeled[0], 2),
                   support::fmt_fixed(wall[i] * 1e3, 1),
                   support::fmt_fixed(wall[i] / wall[0], 2)});
    csv.add_row({names[i], support::fmt_fixed(modeled[i], 5),
                 support::fmt_fixed(modeled[i] / modeled[0], 4),
                 support::fmt_fixed(wall[i] * 1e3, 3),
                 support::fmt_fixed(wall[i] / wall[0], 4)});
  }
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("closures cost more than instantiation in the model",
              modeled[1] > modeled[0] * 1.2);
  shape_check("graph reduction costs the most", modeled[2] > modeled[1]);

  if (wants_run_artifacts(cli)) {
    const auto traced = traced_rerun([&] {
      return parix::spmd_run(config, [&](parix::Proc& proc) {
        auto a = array_create<double>(proc, 1, Size{elems},
                                      [](Index ix) { return ix[0] * 0.5; });
        array_map([](double v) { return v * 1.0001 + 1.0; }, a, a);
        array_fold([](double v, Index) { return v; }, skil::fn::plus, a);
      });
    });
    write_run_artifacts(cli, traced,
                        "instantiation_p" + std::to_string(p) + "_e" +
                            std::to_string(elems));
  }
  return 0;
}
