// SUMMA matrix multiplication on split row/column communicators.
//
// SUMMA replaces Cannon's skewed rotations with one panel broadcast
// per k step along each grid row and column -- the workload the
// communicator-splitting API (Topology::split_rows/split_cols) and
// the size-adaptive broadcast exist for.  The bench sweeps the
// processor grid, compares against the equally optimized Cannon
// implementation (matmul_c), and A/Bs SKIL_COLL=tree vs auto on the
// same build.
//
// Usage: bench_summa [--n=256] [--csv=path] [--out-dir=dir]
//                    [--metrics-out[=path]] [--trace-out[=path]]
//
// --metrics-out / --trace-out re-run the largest auto cell traced and
// export its metrics (with the collective-counter block and
// critical-path summary) / Chrome trace JSON.
#include <cmath>
#include <cstdio>
#include <string>

#include "apps/matmul.h"
#include "bench_common.h"
#include "parix/coll.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

namespace {

/// Runs fn under the given process-default collective mode.
template <typename Fn>
auto with_mode(skil::parix::CollMode mode, Fn&& fn) {
  const skil::parix::CollMode saved = skil::parix::default_coll_mode();
  skil::parix::set_default_coll_mode(mode);
  auto result = fn();
  skil::parix::set_default_coll_mode(saved);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"n", "csv", "out-dir",
                                      "metrics-out", "trace-out"});
  // Panels must be a few KB before the chunk-pipelined ring beats the
  // binomial tree; n = 256 gives 8 KB panels on the 8x8 grid.
  const int n = cli.get_int("n", 256);
  const std::uint64_t seed = 20260808;

  banner("SUMMA on split communicators vs Cannon rotations, n = " +
         std::to_string(n));

  support::Table table({"grid", "cannon [s]", "summa tree [s]",
                        "summa auto [s]", "tree/auto"});
  support::CsvWriter csv(out_path(cli, "csv", "bench_summa.csv"),
                         {"p", "variant", "seconds"});

  bool products_match = true;
  bool bits_identical = true;
  bool auto_never_loses = true;
  for (int p : {4, 16, 64}) {
    const auto cannon = apps::matmul_c(p, n, seed);
    const auto tree = with_mode(parix::CollMode::kTree,
                                [&] { return apps::matmul_summa(p, n, seed); });
    const auto adaptive = with_mode(parix::CollMode::kAuto, [&] {
      return apps::matmul_summa(p, n, seed);
    });

    const int size = apps::matmul_round_up(n, p);
    for (int i = 0; i < size; ++i)
      for (int j = 0; j < size; ++j) {
        if (std::fabs(cannon.product(i, j) - tree.product(i, j)) >
            1e-9 * (1.0 + std::fabs(cannon.product(i, j))))
          products_match = false;
        if (tree.product(i, j) != adaptive.product(i, j))
          bits_identical = false;
      }
    if (adaptive.run.vtime_us > tree.run.vtime_us * 1.0001)
      auto_never_loses = false;

    const double ratio = tree.run.vtime_us / adaptive.run.vtime_us;
    table.add_row({grid_label(p), secs(cannon.run.vtime_us, 3),
                   secs(tree.run.vtime_us, 3), secs(adaptive.run.vtime_us, 3),
                   support::fmt_fixed(ratio, 2)});
    csv.add_row({std::to_string(p), "cannon",
                 support::fmt_fixed(cannon.run.vtime_us * 1e-6, 5)});
    csv.add_row({std::to_string(p), "summa_tree",
                 support::fmt_fixed(tree.run.vtime_us * 1e-6, 5)});
    csv.add_row({std::to_string(p), "summa_auto",
                 support::fmt_fixed(adaptive.run.vtime_us * 1e-6, 5)});
  }
  table.print();

  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("SUMMA product matches Cannon (up to FP summation order)",
              products_match);
  shape_check("SUMMA product bit-identical under tree and auto",
              bits_identical);
  shape_check("auto never loses to the tree baseline", auto_never_loses);

  if (wants_run_artifacts(cli)) {
    const auto traced = traced_rerun([&] {
      return with_mode(parix::CollMode::kAuto,
                       [&] { return apps::matmul_summa(64, n, seed); });
    });
    write_run_artifacts(cli, traced.run, "summa_p64_n" + std::to_string(n));
  }
  return 0;
}
