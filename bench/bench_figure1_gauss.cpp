// Reproduces Figure 1: the Gaussian-elimination speedups of Skil over
// DPFL (left graphic) and slow-downs of Skil versus Parix-C (right
// graphic), plotted against the number of processors for every matrix
// size.
//
// Output: the two series printed as tables, ASCII renderings of both
// plots, a CSV of the series, and the paper's qualitative shape
// checks ("most of the speedups relative to DPFL are grouped around
// the factor 6, while only a few go below 5 ... small partitions ...
// communication overhead gains more importance"; "the slow-downs
// relative to C are mainly grouped around 2, in some cases (generally,
// for large networks) going down to 1").
//
// Usage: bench_figure1_gauss [--quick] [--csv=path] [--out-dir=dir]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gauss_sweep.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"quick", "csv", "out-dir"});
  const bool quick = cli.get_bool("quick");
  const std::uint64_t seed = 19960528;

  banner("Figure 1 -- Skil vs DPFL (left) and Skil vs Parix-C (right), "
         "Gaussian elimination");

  const auto ns = paper_ns(quick);
  const auto ps = paper_ps();
  const auto cells = run_gauss_grid(ns, ps, seed);

  auto find = [&](int p, int n) -> const GaussCell& {
    for (const auto& c : cells)
      if (c.p == p && c.n == n) return c;
    throw std::logic_error("missing cell");
  };

  // Series per n, x axis = processors.
  std::vector<std::string> labels;
  std::vector<double> xs(ps.begin(), ps.end());
  std::vector<std::vector<double>> speedups, slowdowns;
  for (int n : ns) {
    labels.push_back("n = " + std::to_string(n));
    std::vector<double> su, sd;
    for (int p : ps) {
      su.push_back(find(p, n).dpfl_over_skil());
      sd.push_back(find(p, n).skil_over_c());
    }
    speedups.push_back(su);
    slowdowns.push_back(sd);
  }

  std::vector<std::string> header{"n \\ p"};
  for (int p : ps) header.push_back(std::to_string(p));
  support::Table left(header);
  support::Table right(header);
  support::CsvWriter csv(out_path(cli, "csv", "bench_figure1_gauss.csv"),
                         {"n", "p", "speedup_vs_dpfl", "slowdown_vs_c"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    std::vector<std::string> lrow{std::to_string(ns[i])};
    std::vector<std::string> rrow{std::to_string(ns[i])};
    for (std::size_t j = 0; j < ps.size(); ++j) {
      lrow.push_back(support::fmt_fixed(speedups[i][j], 2));
      rrow.push_back(support::fmt_fixed(slowdowns[i][j], 2));
      csv.add_row({std::to_string(ns[i]), std::to_string(ps[j]),
                   support::fmt_fixed(speedups[i][j], 4),
                   support::fmt_fixed(slowdowns[i][j], 4)});
    }
    left.add_row(lrow);
    right.add_row(rrow);
  }

  std::printf("Relative speed-ups Skil vs. DPFL (left graphic):\n");
  left.print();
  std::printf("%s\n",
              support::ascii_plot(labels, xs, speedups, "processors",
                                  "speedup Skil vs DPFL")
                  .c_str());
  std::printf("Relative slow-downs Skil vs. C (right graphic):\n");
  right.print();
  std::printf("%s\n",
              support::ascii_plot(labels, xs, slowdowns, "processors",
                                  "slowdown Skil vs C")
                  .c_str());

  // Shape checks.
  std::printf("shape checks (see EXPERIMENTS.md):\n");
  int around6 = 0, total = 0, below_floor = 0;
  for (const auto& series : speedups)
    for (double v : series) {
      ++total;
      if (v >= 4.5) ++around6;
      if (v < 2.0) ++below_floor;
    }
  shape_check("most DPFL speedups are 'grouped around 6' (here: >= 4.5 "
              "for the majority of cells)",
              around6 * 2 >= total && below_floor == 0);

  // Small arrays on large networks lose efficiency: for the smallest
  // n, the speedup at the largest p must be below the speedup of the
  // largest n at the same p.
  const double small_n_large_p = speedups.front().back();
  const double large_n_large_p = speedups.back().back();
  shape_check("small partitions drop the DPFL speedup (smallest n at "
              "p=64 below largest n at p=64)",
              small_n_large_p < large_n_large_p);

  int near2 = 0, ctotal = 0;
  for (const auto& series : slowdowns)
    for (double v : series) {
      ++ctotal;
      if (v >= 0.8 && v <= 3.2) ++near2;
    }
  shape_check("Skil/C slow-downs lie in the paper's band (mainly "
              "around 2, down to ~1 for large networks)",
              near2 == ctotal);
  const double c_small_p = slowdowns.back().front();
  const double c_large_p = slowdowns.back().back();
  shape_check("for the largest n the slow-down falls from p=4 to p=64",
              c_large_p < c_small_p);
  return 0;
}
