// Reproduces Table 2: Gaussian elimination (no pivot search) for
// n x n systems, n in {64..640}, on p in {4, 16, 32, 64} processors.
//
// Paper cell format: absolute Skil seconds (bold), the DPFL/Skil
// speedup (roman), and the Skil/Parix-C slow-down (italics).
//
// Usage: bench_table2_gauss [--quick] [--csv=path] [--out-dir=dir]
//                           [--jobs=N]
//
// --jobs forks one worker process per (p, n) cell, up to N at a time;
// virtual times are per-cell deterministic, so the table is identical.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "gauss_sweep.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace skil;
  using namespace skil::bench;

  const support::Cli cli(argc, argv, {"quick", "csv", "out-dir", "jobs"});
  const bool quick = cli.get_bool("quick");
  const int jobs = std::max(1, std::atoi(cli.get("jobs", "1").c_str()));
  const std::uint64_t seed = 19960528;

  banner("Table 2 -- Gaussian elimination (no pivoting)");
  std::printf("cells: Skil seconds / DPFL-over-Skil / Skil-over-C;\n"
              "paper reference in brackets; '-' = not reported "
              "(p = 4 exceeded the 1 MB/node memory beyond n = 384)\n\n");

  const auto ns = paper_ns(quick);
  const auto cells = run_gauss_grid_jobs(ns, paper_ps(), seed, jobs);

  std::vector<std::string> header{"p \\ n"};
  for (int n : ns) header.push_back(std::to_string(n));
  support::Table table(header);
  support::CsvWriter csv(out_path(cli, "csv", "bench_table2_gauss.csv"),
                         {"p", "n", "skil_s", "dpfl_s", "c_s",
                          "dpfl_over_skil", "skil_over_c", "paper_skil_s",
                          "paper_dpfl_over_skil", "paper_skil_over_c"});

  bool dpfl_band = true, c_band = true, c_falls_with_p = true;
  for (int p : paper_ps()) {
    std::vector<std::string> abs_row{std::to_string(p) + "  skil s"};
    std::vector<std::string> dpfl_row{"   DPFL/Skil"};
    std::vector<std::string> c_row{"   Skil/C"};
    for (int n : ns) {
      const GaussCell* cell = nullptr;
      for (const auto& c : cells)
        if (c.p == p && c.n == n) cell = &c;
      const PaperGaussCell* paper = paper_cell(p, n);
      auto bracket = [](double v, double ref) {
        return support::fmt_fixed(v, 2) + " [" +
               (ref > 0 ? support::fmt_fixed(ref, 2) : std::string("-")) +
               "]";
      };
      abs_row.push_back(bracket(cell->skil_s, paper ? paper->skil_s : -1));
      dpfl_row.push_back(
          bracket(cell->dpfl_over_skil(), paper ? paper->dpfl_over_skil : -1));
      c_row.push_back(
          bracket(cell->skil_over_c(), paper ? paper->skil_over_c : -1));
      if (cell->dpfl_over_skil() < 2.5 || cell->dpfl_over_skil() > 10.0)
        dpfl_band = false;
      if (cell->skil_over_c() < 0.8 || cell->skil_over_c() > 3.5)
        c_band = false;
      csv.add_row({std::to_string(p), std::to_string(n),
                   support::fmt_fixed(cell->skil_s, 4),
                   support::fmt_fixed(cell->dpfl_s, 4),
                   support::fmt_fixed(cell->c_s, 4),
                   support::fmt_fixed(cell->dpfl_over_skil(), 4),
                   support::fmt_fixed(cell->skil_over_c(), 4),
                   paper ? support::fmt_ratio(paper->skil_s) : "-",
                   paper ? support::fmt_ratio(paper->dpfl_over_skil) : "-",
                   paper ? support::fmt_ratio(paper->skil_over_c) : "-"});
    }
    table.add_row(abs_row);
    table.add_row(dpfl_row);
    table.add_row(c_row);
    table.add_separator();
  }
  table.print();

  // Shape checks against the paper's qualitative findings.
  std::printf("\nshape checks (see EXPERIMENTS.md):\n");
  shape_check("DPFL/Skil speedups sit in the 2.5..10 band (paper: "
              "3.48..6.69, 'on the average 6 times faster')",
              dpfl_band);
  shape_check("Skil/C slow-downs sit in the 0.8..3.5 band (paper: "
              "0.94..2.64, 'between 1 and 2.5')",
              c_band);
  for (std::size_t i = 0; i + 1 < paper_ps().size(); ++i) {
    const int p_small = paper_ps()[i], p_large = paper_ps()[i + 1];
    const int n = ns.back();
    double small_ratio = 0, large_ratio = 0;
    for (const auto& c : cells) {
      if (c.p == p_small && c.n == n) small_ratio = c.skil_over_c();
      if (c.p == p_large && c.n == n) large_ratio = c.skil_over_c();
    }
    if (large_ratio > small_ratio + 0.15) c_falls_with_p = false;
  }
  shape_check("Skil/C slow-down falls as p grows (communication "
              "dominates on large networks; paper: 2.64 -> 1.37 at "
              "the largest n)",
              c_falls_with_p);
  return 0;
}
