// Tests for the translation by instantiation (paper section 2.4),
// including the paper's worked array_map / above_thresh example as a
// golden test.
#include <gtest/gtest.h>

#include "skilc/compiler.h"
#include "skilc/instantiate.h"
#include "skilc/typecheck.h"

namespace {

using namespace skil::skilc;

// The paper's section 2.4 program: the map skeleton (with the paper's
// SPMD body sketched via partition-bound prototypes), the customizing
// function above_thresh, and the call
//     array_map (above_thresh (t), A, B);
const char* kPaperExample = R"(
pardata array <$t> implementation_hidden;

Index mk_index(int i);
int part_lower(array <$t> a);
int part_upper(array <$t> a);

void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {
  int i;
  for (i = part_lower(a); i < part_upper(a); i = i + 1)
    b[i] = map_f(a[i], mk_index(i));
}

int above_thresh (float thresh, float elem, Index ix) {
  return elem >= thresh;
}

void threshold_all (float t, array <float> A, array <int> B) {
  array_map(above_thresh(t), A, B);
}
)";

TEST(Instantiate, ThePaperSection24Example) {
  const CompileResult result = compile(kPaperExample);

  // "the compiler generates the following instance of this skeleton,
  // in which the functional argument above_thresh has been inlined,
  // its argument t has been lifted and the polymorphic types $t1 and
  // $t2 have been instantiated"
  const Function* instance = result.instantiated.find_function("array_map_1");
  ASSERT_NE(instance, nullptr);
  EXPECT_FALSE(instance->is_hof());
  EXPECT_FALSE(instance->is_polymorphic());
  ASSERT_EQ(instance->params.size(), 3u);
  EXPECT_EQ(type_to_string(instance->params[0].type), "float");  // lifted t
  EXPECT_EQ(type_to_string(instance->params[1].type), "array <float>");
  EXPECT_EQ(type_to_string(instance->params[2].type), "array <int>");

  // "the skeleton call is transformed to array_map_1 (t, A, B)"
  EXPECT_NE(result.c_code.find("array_map_1(t, A, B)"), std::string::npos);

  // The body inlines above_thresh with the lifted argument first, and
  // the emitted types are the paper's floatarray / intarray manglings.
  EXPECT_NE(result.c_code.find(
                "void array_map_1(float map_f_0, floatarray a, intarray b)"),
            std::string::npos);
  EXPECT_NE(result.c_code.find("above_thresh(map_f_0, a[i]"),
            std::string::npos);

  // The polymorphic partition-bound helpers were monomorphised too.
  EXPECT_NE(result.c_code.find("int part_lower_1(floatarray a);"),
            std::string::npos);
}

TEST(Instantiate, OutputIsFirstOrderAndMonomorphic) {
  const CompileResult result = compile(kPaperExample);
  for (const Function& fn : result.instantiated.functions) {
    EXPECT_FALSE(fn.is_hof()) << fn.name;
    EXPECT_FALSE(fn.is_polymorphic()) << fn.name;
  }
}

TEST(Instantiate, InstancesAreMemoisedAcrossCallSites) {
  // Two calls with the same functional argument shape (different bound
  // *values*) share one instance; a different element type makes a
  // second instance.
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b);
    int above (float t, float e, Index ix) { return e >= t; }
    float scale (float f, float e, Index ix) { return f * e; }
    void use (float t1, float t2, array <float> A, array <int> B,
              array <float> C) {
      array_map(above(t1), A, B);
      array_map(above(t2), A, B);
      array_map(scale(2.5), A, C);
    }
  )");
  EXPECT_NE(result.instantiated.find_function("array_map_1"), nullptr);
  EXPECT_NE(result.instantiated.find_function("array_map_2"), nullptr);
  EXPECT_EQ(result.instantiated.find_function("array_map_3"), nullptr);
  EXPECT_NE(result.c_code.find("array_map_1(t1, A, B)"), std::string::npos);
  EXPECT_NE(result.c_code.find("array_map_1(t2, A, B)"), std::string::npos);
}

TEST(Instantiate, OperatorSectionsInlineAsOperators) {
  // fold((+), l) : the section becomes a genuine '+' in the instance.
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    int len(array <$t> a);
    $t2 fold ($t2 f ($t2, $t2), array <$t2> a) {
      $t2 acc = a[0];
      int i;
      for (i = 1; i < len(a); i = i + 1)
        acc = f(acc, a[i]);
      return acc;
    }
    int sum (array <int> l) { return fold((+), l); }
  )");
  const Function* instance = result.instantiated.find_function("fold_1");
  ASSERT_NE(instance, nullptr);
  EXPECT_NE(result.c_code.find("acc = acc + a[i];"), std::string::npos);
  EXPECT_NE(result.c_code.find("return fold_1(l);"), std::string::npos);
}

TEST(Instantiate, PartiallyAppliedSections) {
  // map((*)(2), l): the bound 2 is lifted and the body multiplies.
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    int len(array <$t> a);
    void map ($t2 f ($t1), array <$t1> a, array <$t2> b) {
      int i;
      for (i = 0; i < len(a); i = i + 1)
        b[i] = f(a[i]);
    }
    void doubled (array <int> l, array <int> out) { map((*)(2), l, out); }
  )");
  EXPECT_NE(result.c_code.find("b[i] = f_0 * a[i];"), std::string::npos);
  EXPECT_NE(result.c_code.find("map_1(2, l, out)"), std::string::npos);
}

TEST(Instantiate, SelfRecursiveHofTerminatesViaMemoisation) {
  // A d&c-style skeleton that recurses on itself with the same
  // customizing functions: the recursive call must resolve to the same
  // instance (the paper's translation terminates on this pattern).
  const CompileResult result = compile(R"(
    int reduce (int f (int, int), int solve (int), int n) {
      if (n <= 1) return solve(n);
      return f(reduce(f, solve, n - 1), solve(n));
    }
    int add (int a, int b) { return a + b; }
    int id (int x) { return x; }
    int total (int n) { return reduce(add, id, n); }
  )");
  const Function* instance = result.instantiated.find_function("reduce_1");
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(result.instantiated.find_function("reduce_2"), nullptr);
  EXPECT_NE(result.c_code.find("add(reduce_1(n - 1), id(n))"),
            std::string::npos);
}

TEST(Instantiate, DirectCurriedApplicationCollapses) {
  const CompileResult result = compile(
      "int add (int a, int b) { return a + b; }"
      "int f () { return add(1)(2); }");
  EXPECT_NE(result.c_code.find("return add(1, 2);"), std::string::npos);
}

TEST(Instantiate, PolymorphicFirstOrderFunctionsAreMonomorphised) {
  const CompileResult result = compile(
      "$t id ($t x) { return x; }"
      "int f () { return id(7); }"
      "float g () { return id(2.5); }");
  EXPECT_NE(result.instantiated.find_function("id_1"), nullptr);
  EXPECT_NE(result.instantiated.find_function("id_2"), nullptr);
  for (const Function& fn : result.instantiated.functions)
    EXPECT_FALSE(fn.is_polymorphic()) << fn.name;
}

TEST(Instantiate, ThePapersRestrictionIsDiagnosed) {
  // Passing a partially applied *higher-order* function as a
  // functional argument is the "special class of recursively-defined
  // HOFs" the paper's restriction excludes.
  EXPECT_THROW(compile(R"(
                 int apply (int f (int), int x) { return f(x); }
                 int twice (int g (int), int x) { return g(g(x)); }
                 int inc (int x) { return x + 1; }
                 int use (int x) { return apply(twice(inc), x); }
               )"),
               InstantiationError);
}

TEST(Instantiate, GaussStylePartialApplicationLiftsArrayAndIndex) {
  // Paper section 4.2: "copy_pivot was partially applied to the array
  // b and the row number k in the procedure gauss.  Partial
  // applications thus allow passing additional parameters to functions
  // called from within skeletons."
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    $t get_elem (array <$t> a, Index ix);
    void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b);
    float copy_pivot (array <float> b, int k, float v, Index ix) {
      return get_elem(b, ix) / v;
    }
    void gauss_step (array <float> b, array <float> piv, int k) {
      array_map(copy_pivot(b, k), piv, piv);
    }
  )");
  // The lifted parameters are the bound array and the bound int, in
  // order, ahead of the skeleton's own array arguments.
  EXPECT_NE(result.c_code.find(
                "void array_map_1(floatarray map_f_0, int map_f_1, "
                "floatarray a, floatarray b);"),
            std::string::npos)
      << result.c_code;
  EXPECT_NE(result.c_code.find("array_map_1(b, k, piv, piv);"),
            std::string::npos);
  // The polymorphic element access was monomorphised along the way.
  const Function* get_instance =
      result.instantiated.find_function("get_elem_1");
  ASSERT_NE(get_instance, nullptr);
  EXPECT_EQ(type_to_string(get_instance->ret), "float");
}

TEST(Instantiate, EmittedCodeIsStable) {
  // Compiling twice yields identical output (determinism).
  EXPECT_EQ(compile(kPaperExample).c_code, compile(kPaperExample).c_code);
}

}  // namespace
