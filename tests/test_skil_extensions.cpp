// Tests for the future-work extensions: border exchange / stencil map,
// scan, gather / I-O.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/error.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;

TEST(Borders, ExchangeDeliversNeighbourRows) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{8, 3}, Size{2, 3},
                               Index{-1, -1},
                               [](Index ix) { return ix[0] * 10 + ix[1]; },
                               Distr::kDefault);
    const Borders<int> borders = array_exchange_borders(a, 1);
    const Bounds mine = a.part_bounds();
    if (mine.lower[0] > 0) {
      ASSERT_EQ(borders.top_rows, 1);
      EXPECT_EQ(borders.top[0], (mine.lower[0] - 1) * 10);
      EXPECT_EQ(borders.top[2], (mine.lower[0] - 1) * 10 + 2);
    } else {
      EXPECT_EQ(borders.top_rows, 0);
    }
    if (mine.upper[0] < 8) {
      ASSERT_EQ(borders.bottom_rows, 1);
      EXPECT_EQ(borders.bottom[1], mine.upper[0] * 10 + 1);
    } else {
      EXPECT_EQ(borders.bottom_rows, 0);
    }
  });
}

TEST(Borders, WideHaloUpToPartitionHeight) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{8, 2}, Size{4, 2},
                               Index{-1, -1},
                               [](Index ix) { return ix[0]; },
                               Distr::kDefault);
    const Borders<int> borders = array_exchange_borders(a, 3);
    if (proc.id() == 0) {
      EXPECT_EQ(borders.bottom_rows, 3);
      EXPECT_EQ(borders.bottom[0], 4);  // rows 4,5,6
      EXPECT_EQ(borders.bottom[4], 6);
    } else {
      EXPECT_EQ(borders.top_rows, 3);
      EXPECT_EQ(borders.top[0], 1);  // rows 1,2,3
    }
    EXPECT_THROW(array_exchange_borders(a, 5),
                 skil::support::ContractError);
  });
}

TEST(Stencil, ThreePointAverageMatchesSequential) {
  const int n = 16, cols = 4, p = 4;
  // Sequential reference: x'(i,j) = mean of row-neighbours (clamped).
  std::vector<double> init(n * cols), expected(n * cols);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < cols; ++j)
      init[i * cols + j] = i * 1.25 + j * 0.5;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < cols; ++j) {
      const double up = init[(i > 0 ? i - 1 : i) * cols + j];
      const double down = init[(i < n - 1 ? i + 1 : i) * cols + j];
      expected[i * cols + j] = (up + init[i * cols + j] + down) / 3.0;
    }

  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<double>(
        proc, 2, Size{n, cols}, Size{n / p, cols}, Index{-1, -1},
        [&](Index ix) { return init[ix[0] * cols + ix[1]]; },
        Distr::kDefault);
    auto b = array_create<double>(proc, 2, Size{n, cols}, Size{n / p, cols},
                                  Index{-1, -1}, [](Index) { return 0.0; },
                                  Distr::kDefault);
    array_map_stencil(
        [n](const StencilView<double>& view, Index ix) {
          const int i = ix[0], j = ix[1];
          const double up = view.get(i > 0 ? i - 1 : i, j);
          const double down = view.get(i < n - 1 ? i + 1 : i, j);
          return (up + view.get(i, j) + down) / 3.0;
        },
        a, b, 1);
    const auto global = array_gather_all(b);
    for (int k = 0; k < n * cols; ++k)
      EXPECT_NEAR(global[k], expected[k], 1e-12) << k;
  });
}

TEST(Stencil, RepeatedSmoothingConverges) {
  // Heat-equation-style relaxation must monotonically shrink the range.
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 16;
    auto a = array_create<double>(
        proc, 2, Size{n, 2}, Size{n / 4, 2}, Index{-1, -1},
        [n](Index ix) { return ix[0] == 0 ? 100.0 : 0.0; }, Distr::kDefault);
    auto b = array_create<double>(proc, 2, Size{n, 2}, Size{n / 4, 2},
                                  Index{-1, -1}, [](Index) { return 0.0; },
                                  Distr::kDefault);
    auto smooth = [n](const StencilView<double>& view, Index ix) {
      const int i = ix[0];
      const double up = view.get(i > 0 ? i - 1 : i, ix[1]);
      const double down = view.get(i < n - 1 ? i + 1 : i, ix[1]);
      return 0.25 * up + 0.5 * view.get(i, ix[1]) + 0.25 * down;
    };
    for (int step = 0; step < 8; ++step) {
      array_map_stencil(smooth, a, b, 1);
      array_copy(b, a);
    }
    const double total = array_fold([](double v, Index) { return v; },
                                    fn::plus, a);
    EXPECT_NEAR(total, 200.0, 1e-9);  // heat is conserved away from edges?
    const double maximum = array_fold([](double v, Index) { return v; },
                                      fn::max, a);
    EXPECT_LT(maximum, 100.0);  // and the peak has diffused
    EXPECT_GT(maximum, 0.0);
  });
}

TEST(Stencil, RejectsAliasedArrays) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<double>(proc, 2, Size{4, 2}, Size{2, 2},
                                  Index{-1, -1}, [](Index) { return 0.0; },
                                  Distr::kDefault);
    EXPECT_THROW(
        array_map_stencil(
            [](const StencilView<double>& v, Index ix) { return v.get(ix[0], ix[1]); },
            a, a, 1),
        skil::support::ContractError);
  });
}

class ScanSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ScanSizes, InclusivePrefixSumMatchesSequential) {
  const auto [p, n] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{n},
                               [](Index ix) { return ix[0] + 1; });
    auto out = array_create<long>(proc, 1, Size{n}, [](Index) { return 0L; });
    array_scan([](int v, Index) { return static_cast<long>(v); },
               fn::plus, a, out);
    const auto global = array_gather_all(out);
    long running = 0;
    for (int i = 0; i < n; ++i) {
      running += i + 1;
      EXPECT_EQ(global[i], running) << "at " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScanSizes,
                         ::testing::Values(std::pair{1, 7}, std::pair{2, 8},
                                           std::pair{3, 9}, std::pair{4, 4},
                                           std::pair{4, 19},
                                           std::pair{8, 64}));

TEST(Scan, MaxScanIsMonotone) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{16}, [](Index ix) {
      return (ix[0] * 7919) % 23;  // scrambled values
    });
    auto out = array_create<int>(proc, 1, Size{16}, [](Index) { return 0; });
    array_scan([](int v, Index) { return v; }, fn::max, a, out);
    const auto global = array_gather_all(out);
    for (std::size_t i = 1; i < global.size(); ++i)
      EXPECT_GE(global[i], global[i - 1]);
  });
}

TEST(GatherAll, ReassemblesTorusBlocks) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{6, 6},
                               [](Index ix) { return ix[0] * 6 + ix[1]; },
                               Distr::kTorus2D);
    const auto global = array_gather_all(a);
    for (int k = 0; k < 36; ++k) EXPECT_EQ(global[k], k);
  });
}

TEST(ArrayWrite, PrintsRowsFromProcessorZero) {
  RunConfig config{2, CostModel::t800()};
  std::ostringstream out;
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{2, 3},
                               [](Index ix) { return ix[0] * 3 + ix[1]; });
    array_write(a, out);
  });
  EXPECT_EQ(out.str(), "0 1 2\n3 4 5\n");
}

}  // namespace
