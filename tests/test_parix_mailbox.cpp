// Direct tests of the mailbox, message payloads and failure paths.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "parix/mailbox.h"
#include "parix/message.h"
#include "parix/runtime.h"
#include "support/error.h"

namespace {

using namespace skil::parix;

TEST(PayloadBytes, TrivialAndVectorSizes) {
  EXPECT_EQ(payload_bytes(42), sizeof(int));
  EXPECT_EQ(payload_bytes(3.14), sizeof(double));
  struct Rec {
    double a;
    int b;
  };
  EXPECT_EQ(payload_bytes(Rec{1.0, 2}), sizeof(Rec));
  std::vector<double> v(10);
  EXPECT_EQ(payload_bytes(v), 10 * sizeof(double) + 8);
  std::vector<std::vector<int>> vv{{1, 2}, {3}};
  EXPECT_EQ(payload_bytes(vv), 8 + (2 * sizeof(int) + 8) + (sizeof(int) + 8));
  EXPECT_EQ(payload_bytes(std::string("abc")), 3 + 8);
}

TEST(PayloadBytes, VectorOfStringsSumsElementPayloads) {
  // The generic non-trivial-element overload must sum the elements'
  // own payload_bytes (it used to fall through to the sizeof-based
  // formula, pricing a vector<string> by the string header size).
  std::vector<std::string> names{"ab", "", "cdef"};
  EXPECT_EQ(payload_bytes(names), 8 + (2 + 8) + (0 + 8) + (4 + 8));
  std::vector<std::vector<std::string>> nested{{"x"}, {"yz", "w"}};
  EXPECT_EQ(payload_bytes(nested),
            8 + (8 + (1 + 8)) + (8 + (2 + 8) + (1 + 8)));
}

TEST(PayloadBytes, VectorOfStringsTravelsWithSummedSize) {
  Message msg = make_message<std::vector<std::string>>(
      0, 1, {"hello", "world"}, 0.0);
  EXPECT_EQ(msg.bytes, 8 + (5 + 8) + (5 + 8));
  const auto payload = take_payload<std::vector<std::string>>(msg);
  EXPECT_EQ(payload, (std::vector<std::string>{"hello", "world"}));
}

TEST(Message, RoundTripPreservesPayload) {
  Message msg = make_message<std::vector<int>>(3, 7, {1, 2, 3}, 99.0);
  EXPECT_EQ(msg.src, 3);
  EXPECT_EQ(msg.tag, 7);
  EXPECT_DOUBLE_EQ(msg.arrival_vtime, 99.0);
  EXPECT_TRUE(*msg.type == typeid(std::vector<int>));
  const auto payload = take_payload<std::vector<int>>(msg);
  EXPECT_EQ(payload, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, MatchesOnSourceAndTag) {
  Mailbox box;
  box.put(make_message<int>(0, 1, 100, 0.0));
  box.put(make_message<int>(1, 1, 200, 0.0));
  box.put(make_message<int>(0, 2, 300, 0.0));
  Message m = box.get(1, 1);
  EXPECT_EQ(take_payload<int>(m), 200);
  m = box.get(0, 2);
  EXPECT_EQ(take_payload<int>(m), 300);
  m = box.get(0, 1);
  EXPECT_EQ(take_payload<int>(m), 100);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, FifoPerSourceAndTag) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) box.put(make_message<int>(0, 9, i, 0.0));
  for (int i = 0; i < 5; ++i) {
    Message m = box.get(0, 9);
    EXPECT_EQ(take_payload<int>(m), i);
  }
}

TEST(Mailbox, GetTimesOutWhenNothingMatches) {
  Mailbox box;
  box.put(make_message<int>(0, 1, 7, 0.0));
  EXPECT_THROW(box.get(0, 2, std::chrono::milliseconds(50)),
               skil::support::RuntimeFault);
  EXPECT_EQ(box.pending(), 1u);  // the non-matching message stays queued
}

TEST(Mailbox, PoisonWakesBlockedReceiver) {
  Mailbox box;
  std::thread poisoner([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.poison("test poison");
  });
  try {
    box.get(0, 1, std::chrono::seconds(10));
    FAIL() << "expected RuntimeFault";
  } catch (const skil::support::RuntimeFault& e) {
    EXPECT_NE(std::string(e.what()).find("test poison"), std::string::npos);
  }
  poisoner.join();
}

TEST(Mailbox, BlockedGetWakesWhenMessageArrives) {
  Mailbox box;
  std::thread sender([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.put(make_message<int>(2, 5, 77, 1.0));
  });
  Message m = box.get(2, 5, std::chrono::seconds(10));
  EXPECT_EQ(take_payload<int>(m), 77);
  sender.join();
}

TEST(SelfSend, ProcessorCanMessageItself) {
  RunConfig config{2, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    proc.send<int>(proc.id(), 4, proc.id() * 10);
    EXPECT_EQ(proc.recv<int>(proc.id(), 4), proc.id() * 10);
  });
}

TEST(LinkOccupancy, BackToBackArrivalsSerialise) {
  // Two large messages sent "simultaneously" to one processor cannot
  // both finish arriving at the same instant: the second is delayed by
  // its own transfer time on the receiver's links.
  const CostModel cm = CostModel::t800();
  RunConfig config{3, cm};
  spmd_run(config, [&](Proc& proc) {
    const std::size_t bytes = 100000;
    if (proc.id() != 0) {
      proc.send<std::vector<char>>(0, 1, std::vector<char>(bytes));
    } else {
      proc.recv<std::vector<char>>(1, 1);
      const double after_first = proc.vtime();
      proc.recv<std::vector<char>>(2, 1);
      EXPECT_GE(proc.vtime() - after_first,
                cm.msg_per_byte_us * static_cast<double>(bytes));
    }
  });
}

TEST(SendModes, AsyncBeatsSyncForTheSender) {
  const CostModel cm = CostModel::t800();
  RunConfig config{2, cm};
  spmd_run(config, [&](Proc& proc) {
    if (proc.id() == 0) {
      std::vector<char> big(50000);
      proc.send_mode<std::vector<char>>(1, 1, big, SendMode::kAsync);
      const double async_done = proc.vtime();
      proc.send_mode<std::vector<char>>(1, 2, big, SendMode::kSync);
      const double sync_cost = proc.vtime() - async_done;
      EXPECT_GT(sync_cost, 10 * async_done);
    } else {
      proc.recv<std::vector<char>>(0, 1);
      proc.recv<std::vector<char>>(0, 2);
    }
  });
}

}  // namespace
