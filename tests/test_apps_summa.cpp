// Integration and golden tests for SUMMA on split communicators
// (apps/matmul.h, matmul_summa).
//
// SUMMA walks the k panels in the same fixed order on every processor,
// so unlike Cannon's rotations its product must be bit-identical
// across every SKIL_COLL mode -- the panel broadcasts may change
// algorithm, never data.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/matmul.h"
#include "parix_golden_cases.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using skil::testing::with_coll_mode;

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

struct MCase {
  int p;
  int n;
};

class Summa : public ::testing::TestWithParam<MCase> {};

TEST_P(Summa, MatchesCannonUpToSummationOrder) {
  const auto [p, n] = GetParam();
  const auto cannon = apps::matmul_c(p, n, 31);
  const auto summa = apps::matmul_summa(p, n, 31);
  const int size = apps::matmul_round_up(n, p);
  ASSERT_EQ(summa.product.rows(), size);
  for (int i = 0; i < size; ++i)
    for (int j = 0; j < size; ++j)
      EXPECT_NEAR(summa.product(i, j), cannon.product(i, j),
                  1e-9 * (1.0 + std::fabs(cannon.product(i, j))));
}

TEST_P(Summa, MatchesSequentialOracle) {
  const auto [p, n] = GetParam();
  const int size = apps::matmul_round_up(n, p);
  const auto result = apps::matmul_summa(p, n, 31);
  support::Matrix<double> a(size, size, 0.0), b(size, size, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = support::dense_entry(31, i, j);
      b(i, j) = support::dense_entry(31 ^ 0x5a5a5a5aULL, i, j);
    }
  const auto expected = support::seq_matmul(a, b);
  for (int i = 0; i < size; ++i)
    for (int j = 0; j < size; ++j)
      EXPECT_NEAR(result.product(i, j), expected(i, j), 1e-9);
}

TEST_P(Summa, ProductBitIdenticalAcrossAllCollModes) {
  const auto [p, n] = GetParam();
  const auto tree = with_coll_mode(parix::CollMode::kTree, [&, p = p, n = n] {
    return apps::matmul_summa(p, n, 31);
  });
  const int size = apps::matmul_round_up(n, p);
  for (parix::CollMode mode :
       {parix::CollMode::kRing, parix::CollMode::kRd, parix::CollMode::kAuto}) {
    const auto other = with_coll_mode(mode, [&, p = p, n = n] {
      return apps::matmul_summa(p, n, 31);
    });
    for (int i = 0; i < size; ++i)
      for (int j = 0; j < size; ++j)
        EXPECT_EQ(other.product(i, j), tree.product(i, j))
            << parix::coll_mode_name(mode) << " at (" << i << "," << j << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Summa,
                         ::testing::Values(MCase{1, 8}, MCase{4, 24},
                                           MCase{4, 30}, MCase{9, 36},
                                           MCase{16, 64}),
                         [](const ::testing::TestParamInfo<MCase>& info) {
                           return "p" + std::to_string(info.param.p) + "_n" +
                                  std::to_string(info.param.n);
                         });

// Pinned vtimes: tree mode pins the binomial panel-broadcast schedule,
// auto mode pins the adaptive selection (which at these panel sizes
// may pick the pipelined ring on the larger grid).
TEST(SummaGoldens, VtimesArePinnedPerMode) {
  struct Golden {
    const char* name;
    parix::CollMode mode;
    int p, n;
    double vtime_us;
  };
  const Golden kGoldens[] = {
      {"summa_tree_p4_n64", parix::CollMode::kTree, 4, 64,
       0x1.2ab1p+20},
      {"summa_auto_p4_n64", parix::CollMode::kAuto, 4, 64,
       0x1.2ab1p+20},
      {"summa_tree_p16_n96", parix::CollMode::kTree, 16, 96,
       0x1.0aa94ccccccccp+20},
      {"summa_auto_p16_n96", parix::CollMode::kAuto, 16, 96,
       0x1.0aa94ccccccccp+20},
  };
  for (const Golden& g : kGoldens) {
    const auto result = with_coll_mode(g.mode, [&] {
      return apps::matmul_summa(g.p, g.n, skil::testing::kGoldenSeed);
    });
    EXPECT_EQ(result.run.vtime_us, g.vtime_us)
        << g.name << ": actual " << hex(result.run.vtime_us);
  }
}

TEST(SummaGoldens, VtimeIsDeterministicAcrossRuns) {
  const auto a = apps::matmul_summa(16, 48, 7);
  const auto b = apps::matmul_summa(16, 48, 7);
  EXPECT_EQ(a.run.vtime_us, b.run.vtime_us);
  EXPECT_EQ(a.run.total.messages_sent, b.run.total.messages_sent);
  EXPECT_EQ(a.run.total.bytes_sent, b.run.total.bytes_sent);
}

}  // namespace
