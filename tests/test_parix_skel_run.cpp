// Differential tests for the auto-skeletonization rewrite (DESIGN.md
// section 16): a rewritten program must compute bit-identical results
// to its sequential original.  Three oracles agree here:
//
//   1. the reference interpreter runs the original and the rewritten
//      instantiation of each seq_* program and compares bits;
//   2. the runtime library executes the same computation through the
//      real skeletons (array_map / array_fold / array_gen_mult) on
//      BOTH execution engines, and the gathered results must match
//      the interpreter bits exactly;
//   3. a fuzzer generates random pure element-wise and accumulation
//      bodies and checks the rewrite never changes a single bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "parix/runtime.h"
#include "parix_golden_cases.h"
#include "skil/skil.h"
#include "skilc/compiler.h"
#include "skilc/interp.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::ExecutionEngine;
using parix::Proc;
using parix::RunConfig;
using skilc::CompileOptions;
using skilc::CompileResult;
using skilc::Value;
using skil::testing::with_engine;

const char* kSeqMap = R"(int len (array <float> a);

void scale (array <float> xs, array <float> ys, float w) {
  int i;
  for (i = 0; i < len(xs); i = i + 1) {
    ys[i] = w * xs[i] + 1.0;
  }
}
)";

const char* kSeqDot = R"(int len (array <int> a);

int dot (array <int> xs) {
  int total = 0;
  int i;
  for (i = 0; i < len(xs); i = i + 1) {
    total = total + xs[i] * xs[i];
  }
  return total;
}
)";

const char* kSeqMatmul = R"(int len (array <array <int> > a);

void matmul (array <array <int> > a, array <array <int> > b,
             array <array <int> > c) {
  int i;
  int j;
  int k;
  for (i = 0; i < len(a); i = i + 1) {
    for (j = 0; j < len(b); j = j + 1) {
      for (k = 0; k < len(b); k = k + 1) {
        c[i][j] = c[i][j] + a[i][k] * b[k][j];
      }
    }
  }
}
)";

CompileResult compile_plain(const std::string& source) {
  return skilc::compile(source, CompileOptions{});
}

CompileResult compile_skeletonized(const std::string& source) {
  CompileOptions options;
  options.skeletonize = true;
  return skilc::compile(source, options);
}

Value int_array(const std::vector<long>& values) {
  std::vector<Value> elems;
  elems.reserve(values.size());
  for (long v : values) elems.push_back(Value::of_int(v));
  return Value::of_array(elems);
}

Value float_array(const std::vector<double>& values) {
  std::vector<Value> elems;
  elems.reserve(values.size());
  for (double v : values) elems.push_back(Value::of_float(v));
  return Value::of_array(elems);
}

// --- interpreter differentials: original vs rewritten ----------------------

TEST(SkelRunDifferential, MapRewriteIsBitIdentical) {
  const CompileResult plain = compile_plain(kSeqMap);
  const CompileResult rewritten = compile_skeletonized(kSeqMap);
  EXPECT_EQ(rewritten.skeletonize.recognized_map, 1);

  const std::vector<double> xs = {0.5, -1.25, 3.75, 0.1, -0.0, 100.625};
  const Value w = Value::of_float(2.5);
  Value ys_plain = float_array(std::vector<double>(xs.size(), 0.0));
  Value ys_rewritten = float_array(std::vector<double>(xs.size(), 0.0));
  skilc::run_function(plain.instantiated, "scale",
                      {float_array(xs), ys_plain, w});
  skilc::run_function(rewritten.instantiated, "scale",
                      {float_array(xs), ys_rewritten, w});
  EXPECT_TRUE(skilc::value_bits_equal(ys_plain, ys_rewritten));
}

TEST(SkelRunDifferential, FoldRewriteIsBitIdentical) {
  const CompileResult plain = compile_plain(kSeqDot);
  const CompileResult rewritten = compile_skeletonized(kSeqDot);
  EXPECT_EQ(rewritten.skeletonize.recognized_fold, 1);

  const std::vector<long> xs = {3, -1, 4, 1, -5, 9, 2, -6};
  const Value a =
      skilc::run_function(plain.instantiated, "dot", {int_array(xs)});
  const Value b =
      skilc::run_function(rewritten.instantiated, "dot", {int_array(xs)});
  EXPECT_TRUE(skilc::value_bits_equal(a, b));
  EXPECT_EQ(a.i, 3 * 3 + 1 + 16 + 1 + 25 + 81 + 4 + 36);
}

TEST(SkelRunDifferential, GenMultRewriteIsBitIdentical) {
  const CompileResult plain = compile_plain(kSeqMatmul);
  const CompileResult rewritten = compile_skeletonized(kSeqMatmul);
  EXPECT_EQ(rewritten.skeletonize.recognized_gen_mult, 1);

  const int n = 5;
  auto make_matrix = [&](long scale, long shift) {
    std::vector<Value> rows;
    for (int i = 0; i < n; ++i) {
      std::vector<long> row;
      for (int j = 0; j < n; ++j)
        row.push_back(scale * (i + 1) + shift * j - 3);
      rows.push_back(int_array(row));
    }
    return Value::of_array(rows);
  };
  const Value a = make_matrix(2, 1);
  const Value b = make_matrix(-1, 3);
  Value c_plain = make_matrix(0, 0);
  Value c_rewritten = make_matrix(0, 0);
  skilc::run_function(plain.instantiated, "matmul", {a, b, c_plain});
  skilc::run_function(rewritten.instantiated, "matmul", {a, b, c_rewritten});
  EXPECT_TRUE(skilc::value_bits_equal(c_plain, c_rewritten));
}

TEST(SkelRunDifferential, FoldRewriteIsBitIdenticalOnTheEmptyArray) {
  // The sequential loop runs zero times and the accumulator keeps its
  // seed; the rewritten form must not reach the canonical fold's
  // unconditional a[part_lower(a)] read.
  const CompileResult plain = compile_plain(kSeqDot);
  const CompileResult rewritten = compile_skeletonized(kSeqDot);
  ASSERT_EQ(rewritten.skeletonize.recognized_fold, 1);

  const Value a = skilc::run_function(plain.instantiated, "dot", {int_array({})});
  const Value b =
      skilc::run_function(rewritten.instantiated, "dot", {int_array({})});
  EXPECT_TRUE(skilc::value_bits_equal(a, b));
  EXPECT_EQ(b.i, 0);
}

TEST(SkelRunDifferential, MapRewriteIsBitIdenticalOnTheEmptyArray) {
  const CompileResult plain = compile_plain(kSeqMap);
  const CompileResult rewritten = compile_skeletonized(kSeqMap);
  ASSERT_EQ(rewritten.skeletonize.recognized_map, 1);

  Value ys_plain = float_array({});
  Value ys_rewritten = float_array({});
  skilc::run_function(plain.instantiated, "scale",
                      {float_array({}), ys_plain, Value::of_float(2.5)});
  skilc::run_function(rewritten.instantiated, "scale",
                      {float_array({}), ys_rewritten, Value::of_float(2.5)});
  EXPECT_TRUE(skilc::value_bits_equal(ys_plain, ys_rewritten));
}

TEST(SkelRunDifferential, MapBoundedByTheDestinationIsNotRewritten) {
  // `b[i] = a[i] * 2` bounded by len(b): the skeleton would traverse
  // `a`, so with len(b) < len(a) a rewrite would change the trip
  // count.  Recognition must refuse, and the untouched program keeps
  // its sequential semantics.
  const char* source = R"(int len (array <int> a);

void double_into (array <int> a, array <int> b) {
  int i;
  for (i = 0; i < len(b); i = i + 1) {
    b[i] = a[i] * 2;
  }
}
)";
  const CompileResult plain = compile_plain(source);
  const CompileResult rewritten = compile_skeletonized(source);
  EXPECT_EQ(rewritten.skeletonize.recognized(), 0);
  EXPECT_EQ(rewritten.skeletonize.rejected_bounds, 1);

  const std::vector<long> a = {1, 2, 3, 4, 5, 6};
  Value b_plain = int_array({0, 0, 0});
  Value b_rewritten = int_array({0, 0, 0});
  skilc::run_function(plain.instantiated, "double_into",
                      {int_array(a), b_plain});
  skilc::run_function(rewritten.instantiated, "double_into",
                      {int_array(a), b_rewritten});
  EXPECT_TRUE(skilc::value_bits_equal(b_plain, b_rewritten));
  EXPECT_EQ((*b_rewritten.array)[2].i, 6);
}

TEST(SkelRunDifferential, RectangularNestIsNotRewritten) {
  // A valid 2x3 * 3x2 product iterates j over len(c), which differs
  // from len(b): the skeleton's j dimension spans len(b), so the nest
  // must stay sequential.
  const char* source = R"(int len (array <array <int> > a);

void matmul_rect (array <array <int> > a, array <array <int> > b,
                  array <array <int> > c) {
  int i;
  int j;
  int k;
  for (i = 0; i < len(a); i = i + 1) {
    for (j = 0; j < len(c); j = j + 1) {
      for (k = 0; k < len(b); k = k + 1) {
        c[i][j] = c[i][j] + a[i][k] * b[k][j];
      }
    }
  }
}
)";
  const CompileResult plain = compile_plain(source);
  const CompileResult rewritten = compile_skeletonized(source);
  EXPECT_EQ(rewritten.skeletonize.recognized(), 0);
  EXPECT_EQ(rewritten.skeletonize.rejected_bounds, 1);

  // a: 2x3, b: 3x2, c: 2x2 -- len(c) == 2 != len(b) == 3.
  const Value a = Value::of_array(
      {int_array({1, 2, 3}), int_array({4, 5, 6})});
  const Value b = Value::of_array(
      {int_array({7, 8}), int_array({9, 10}), int_array({11, 12})});
  Value c_plain = Value::of_array({int_array({0, 0}), int_array({0, 0})});
  Value c_rewritten = Value::of_array({int_array({0, 0}), int_array({0, 0})});
  skilc::run_function(plain.instantiated, "matmul_rect", {a, b, c_plain});
  skilc::run_function(rewritten.instantiated, "matmul_rect",
                      {a, b, c_rewritten});
  EXPECT_TRUE(skilc::value_bits_equal(c_plain, c_rewritten));
  EXPECT_EQ((*c_rewritten.array)[0].array->at(0).i, 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_EQ((*c_rewritten.array)[1].array->at(1).i, 4 * 8 + 5 * 10 + 6 * 12);
}

// --- engine cross-checks: rewritten program vs the real skeletons ----------

class SkelRunEngines : public ::testing::TestWithParam<ExecutionEngine> {};

TEST_P(SkelRunEngines, MapMatchesLibrarySkeleton) {
  const CompileResult rewritten = compile_skeletonized(kSeqMap);
  ASSERT_EQ(rewritten.skeletonize.recognized_map, 1);

  const int n = 24;
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) xs[i] = 0.37 * i - 2.5;
  const double w = 1.625;

  Value ys_interp = float_array(std::vector<double>(n, 0.0));
  skilc::run_function(rewritten.instantiated, "scale",
                      {float_array(xs), ys_interp, Value::of_float(w)});

  std::vector<double> ys_engine;
  with_engine(GetParam(), [&] {
    RunConfig config{4, CostModel::t800()};
    return parix::spmd_run(config, [&](Proc& proc) {
      auto a = array_create<double>(
          proc, 1, Size{n},
          [&](Index ix) { return xs[static_cast<std::size_t>(ix[0])]; });
      auto b = array_create<double>(proc, 1, Size{n},
                                    [](Index) { return 0.0; });
      array_map([w](double v, Index) { return w * v + 1.0; }, a, b);
      ys_engine = array_gather_all(b);
    });
  });

  ASSERT_EQ(ys_engine.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(skilc::value_bits_equal(ys_interp, float_array(ys_engine)));
}

TEST_P(SkelRunEngines, FoldMatchesLibrarySkeleton) {
  const CompileResult rewritten = compile_skeletonized(kSeqDot);
  ASSERT_EQ(rewritten.skeletonize.recognized_fold, 1);

  const int n = 32;
  std::vector<long> xs(n);
  for (int i = 0; i < n; ++i) xs[i] = 7 * i - 40;

  const Value interp =
      skilc::run_function(rewritten.instantiated, "dot", {int_array(xs)});

  long engine_sum = 0;
  with_engine(GetParam(), [&] {
    RunConfig config{4, CostModel::t800()};
    return parix::spmd_run(config, [&](Proc& proc) {
      auto a = array_create<long>(
          proc, 1, Size{n},
          [&](Index ix) { return xs[static_cast<std::size_t>(ix[0])]; });
      engine_sum = array_fold([](long v, Index) { return v * v; },
                              [](long x, long y) { return x + y; }, a);
    });
  });

  EXPECT_EQ(interp.i, engine_sum);
}

TEST_P(SkelRunEngines, GenMultMatchesLibrarySkeleton) {
  const CompileResult rewritten = compile_skeletonized(kSeqMatmul);
  ASSERT_EQ(rewritten.skeletonize.recognized_gen_mult, 1);

  const int n = 8;
  auto elem_a = [](int i, int j) { return static_cast<long>(3 * i - j + 1); };
  auto elem_b = [](int i, int j) { return static_cast<long>(i + 2 * j - 5); };

  std::vector<Value> rows_a, rows_b, rows_c;
  for (int i = 0; i < n; ++i) {
    std::vector<long> ra, rb, rc;
    for (int j = 0; j < n; ++j) {
      ra.push_back(elem_a(i, j));
      rb.push_back(elem_b(i, j));
      rc.push_back(0);
    }
    rows_a.push_back(int_array(ra));
    rows_b.push_back(int_array(rb));
    rows_c.push_back(int_array(rc));
  }
  const Value c_interp = Value::of_array(rows_c);
  skilc::run_function(rewritten.instantiated, "matmul",
                      {Value::of_array(rows_a), Value::of_array(rows_b),
                       c_interp});

  support::Matrix<long> engine_c;
  with_engine(GetParam(), [&] {
    RunConfig config{4, CostModel::t800()};
    return parix::spmd_run(config, [&](Proc& proc) {
      auto a = array_create<long>(
          proc, 2, Size{n, n},
          [&](Index ix) { return elem_a(ix[0], ix[1]); }, Distr::kTorus2D);
      auto b = array_create<long>(
          proc, 2, Size{n, n},
          [&](Index ix) { return elem_b(ix[0], ix[1]); }, Distr::kTorus2D);
      auto c = array_create<long>(proc, 2, Size{n, n},
                                  [](Index) { return 0L; }, Distr::kTorus2D);
      array_gen_mult(a, b,
                     [](long x, long y) { return x + y; },
                     [](long x, long y) { return x * y; }, c);
      engine_c = array_gather_matrix(c);
    });
  });

  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_EQ(engine_c(i, j),
                (*c_interp.array)[static_cast<std::size_t>(i)]
                    .array->at(static_cast<std::size_t>(j))
                    .i)
          << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SkelRunEngines,
                         ::testing::Values(ExecutionEngine::kThreads,
                                           ExecutionEngine::kPooled),
                         [](const auto& info) {
                           return info.param == ExecutionEngine::kThreads
                                      ? "threads"
                                      : "pooled";
                         });

// --- fuzz: random pure bodies never change a bit ---------------------------

/// A random pure int expression over `xs[i]`, the free scalar `w` and
/// small literals, with +, - and * (all wrapping, all associative or
/// not -- irrelevant: the rewrite must preserve bits either way).
std::string random_elem_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick_leaf(0, 2);
  std::uniform_int_distribution<int> pick_op(0, 2);
  std::uniform_int_distribution<int> pick_lit(0, 9);
  if (depth <= 0) {
    switch (pick_leaf(rng)) {
      case 0: return "xs[i]";
      case 1: return "w";
      default: return std::to_string(pick_lit(rng));
    }
  }
  const char* ops[] = {"+", "-", "*"};
  return "(" + random_elem_expr(rng, depth - 1) + " " + ops[pick_op(rng)] +
         " " + random_elem_expr(rng, depth - 1) + ")";
}

/// As random_elem_expr, but guaranteed to read the source array (a
/// body with no element read is a constant fill for map and a
/// rejection for fold -- both out of scope for this fuzz).
std::string random_sourced_expr(std::mt19937& rng, int depth) {
  const std::string body = random_elem_expr(rng, depth);
  if (body.find("xs[i]") != std::string::npos) return body;
  return "(xs[i] + " + body + ")";
}

TEST(SkelRunFuzz, RandomMapBodiesAreBitIdentical) {
  std::mt19937 rng(19960528);
  std::uniform_int_distribution<int> pick_depth(1, 3);
  std::uniform_int_distribution<long> pick_val(-1000, 1000);
  std::uniform_int_distribution<std::size_t> pick_len(0, 17);
  for (int round = 0; round < 30; ++round) {
    const std::string body = random_sourced_expr(rng, pick_depth(rng));
    const std::string source = "int len (array <int> a);\n\n"
                               "void f (array <int> xs, array <int> ys, "
                               "int w) {\n"
                               "  int i;\n"
                               "  for (i = 0; i < len(xs); i = i + 1) {\n"
                               "    ys[i] = " + body + ";\n"
                               "  }\n"
                               "}\n";
    const CompileResult plain = compile_plain(source);
    const CompileResult rewritten = compile_skeletonized(source);
    ASSERT_EQ(rewritten.skeletonize.recognized_map, 1) << source;

    std::vector<long> xs(pick_len(rng));
    for (long& v : xs) v = pick_val(rng);
    const Value w = Value::of_int(pick_val(rng));
    Value ys_plain = int_array(std::vector<long>(xs.size(), 0));
    Value ys_rewritten = int_array(std::vector<long>(xs.size(), 0));
    skilc::run_function(plain.instantiated, "f",
                        {int_array(xs), ys_plain, w});
    skilc::run_function(rewritten.instantiated, "f",
                        {int_array(xs), ys_rewritten, w});
    EXPECT_TRUE(skilc::value_bits_equal(ys_plain, ys_rewritten)) << source;
  }
}

TEST(SkelRunFuzz, RandomFoldBodiesAreBitIdentical) {
  std::mt19937 rng(777);
  std::uniform_int_distribution<int> pick_depth(0, 2);
  std::uniform_int_distribution<int> pick_op(0, 1);
  std::uniform_int_distribution<long> pick_val(-50, 50);
  std::uniform_int_distribution<std::size_t> pick_len(0, 11);
  for (int round = 0; round < 30; ++round) {
    const bool mult = pick_op(rng) == 1;
    const std::string op = mult ? "*" : "+";
    const std::string seed = mult ? "1" : "0";
    const std::string body = random_sourced_expr(rng, pick_depth(rng));
    const std::string source = "int len (array <int> a);\n\n"
                               "int f (array <int> xs, int w) {\n"
                               "  int total = " + seed + ";\n"
                               "  int i;\n"
                               "  for (i = 0; i < len(xs); i = i + 1) {\n"
                               "    total = total " + op + " " + body + ";\n"
                               "  }\n"
                               "  return total;\n"
                               "}\n";
    const CompileResult plain = compile_plain(source);
    const CompileResult rewritten = compile_skeletonized(source);
    ASSERT_EQ(rewritten.skeletonize.recognized_fold, 1) << source;

    std::vector<long> xs(pick_len(rng));
    for (long& v : xs) v = pick_val(rng);
    const Value w = Value::of_int(pick_val(rng));
    const Value a = skilc::run_function(plain.instantiated, "f",
                                        {int_array(xs), w});
    const Value b = skilc::run_function(rewritten.instantiated, "f",
                                        {int_array(xs), w});
    EXPECT_TRUE(skilc::value_bits_equal(a, b)) << source;
  }
}

}  // namespace
