// Tests for virtual topology embeddings and their dilation properties.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "parix/machine.h"
#include "parix/topology.h"
#include "support/error.h"

namespace {

using namespace skil::parix;

class TopologyBijections : public ::testing::TestWithParam<int> {};

TEST_P(TopologyBijections, VrankMappingIsABijection) {
  const int p = GetParam();
  Machine machine(p, CostModel::t800());
  for (Distr kind : {Distr::kDefault, Distr::kRing, Distr::kTorus2D}) {
    Topology topo(machine, kind);
    std::set<int> vranks;
    for (int hw = 0; hw < p; ++hw) {
      const int v = topo.vrank_of(hw);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, p);
      EXPECT_EQ(topo.hw_of(v), hw);
      vranks.insert(v);
    }
    EXPECT_EQ(static_cast<int>(vranks.size()), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyBijections,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 9, 12, 16, 25,
                                           32, 36, 49, 64));

TEST(Topology, DefaultIsIdentity) {
  Machine machine(16, CostModel::t800());
  Topology topo(machine, Distr::kDefault);
  for (int hw = 0; hw < 16; ++hw) EXPECT_EQ(topo.vrank_of(hw), hw);
}

TEST(Topology, RingStepsAreSingleHopExceptWrap) {
  Machine machine(16, CostModel::t800());  // 4x4 mesh
  Topology topo(machine, Distr::kRing);
  int long_edges = 0;
  for (int hw = 0; hw < 16; ++hw) {
    const int next = topo.ring_next(hw);
    EXPECT_EQ(topo.ring_prev(next), hw);
    if (topo.hops(hw, next) > 1) ++long_edges;
  }
  EXPECT_EQ(long_edges, 1);  // only the wrap-around edge is long
}

TEST(Topology, DefaultRingHasManyLongEdges) {
  // Without the snake embedding, row-major rank order wraps across the
  // mesh every row; this is the difference the paper's "virtual
  // topologies" remark in Table 1 is about.
  Machine machine(16, CostModel::t800());
  Topology topo(machine, Distr::kDefault);
  int long_edges = 0;
  for (int hw = 0; hw < 16; ++hw)
    if (topo.hops(hw, topo.ring_next(hw)) > 1) ++long_edges;
  EXPECT_GE(long_edges, 3);
}

TEST(Topology, TorusLinksHaveDilationAtMostTwo) {
  for (int p : {4, 16, 36, 64}) {
    Machine machine(p, CostModel::t800());
    Topology topo(machine, Distr::kTorus2D);
    for (int hw = 0; hw < p; ++hw) {
      for (auto [dr, dc] :
           {std::pair{0, 1}, {0, -1}, {1, 0}, {-1, 0}}) {
        const int nb = topo.torus_neighbor(hw, dr, dc);
        EXPECT_LE(topo.hops(hw, nb), 2)
            << "p=" << p << " hw=" << hw << " d=(" << dr << "," << dc << ")";
      }
    }
  }
}

TEST(Topology, DefaultTorusWrapIsLong) {
  Machine machine(64, CostModel::t800());  // 8x8
  Topology topo(machine, Distr::kDefault);
  // Wrap-around neighbour of grid position (0,7) is (0,0): 7 hops on
  // the raw mesh.
  const int right_edge = topo.at_grid(0, 7);
  const int wrapped = topo.torus_neighbor(right_edge, 0, 1);
  EXPECT_EQ(topo.hops(right_edge, wrapped), 7);
}

TEST(Topology, TorusNeighborsAreConsistentInverse) {
  Machine machine(36, CostModel::t800());
  Topology topo(machine, Distr::kTorus2D);
  for (int hw = 0; hw < 36; ++hw) {
    EXPECT_EQ(topo.torus_neighbor(topo.torus_neighbor(hw, 0, 1), 0, -1), hw);
    EXPECT_EQ(topo.torus_neighbor(topo.torus_neighbor(hw, 1, 0), -1, 0), hw);
  }
}

TEST(Topology, GridCoordinatesRoundTrip) {
  Machine machine(24, CostModel::t800());
  Topology topo(machine, Distr::kTorus2D);
  for (int hw = 0; hw < 24; ++hw)
    EXPECT_EQ(topo.at_grid(topo.grid_row(hw), topo.grid_col(hw)), hw);
}

TEST(Topology, HypercubeNeighborsDifferInOneBit) {
  Machine machine(16, CostModel::t800());
  Topology topo(machine, Distr::kHypercube);
  EXPECT_EQ(topo.cube_dims(), 4);
  for (int hw = 0; hw < 16; ++hw)
    for (int d = 0; d < 4; ++d) {
      const int nb = topo.cube_neighbor(hw, d);
      EXPECT_EQ(topo.vrank_of(hw) ^ topo.vrank_of(nb), 1 << d);
      EXPECT_EQ(topo.cube_neighbor(nb, d), hw);
    }
}

TEST(Topology, HypercubeRejectsNonPowerOfTwo) {
  Machine machine(12, CostModel::t800());
  EXPECT_THROW(Topology(machine, Distr::kHypercube),
               skil::support::ContractError);
}

TEST(Topology, HypercubeRejectsBadDimension) {
  Machine machine(8, CostModel::t800());
  Topology topo(machine, Distr::kHypercube);
  EXPECT_THROW(topo.cube_neighbor(0, 3), skil::support::ContractError);
  EXPECT_THROW(Topology(machine, Distr::kRing).cube_neighbor(0, 0),
               skil::support::ContractError);
}

TEST(Topology, DistrNamesAreStable) {
  EXPECT_STREQ(distr_name(Distr::kDefault), "DISTR_DEFAULT");
  EXPECT_STREQ(distr_name(Distr::kRing), "DISTR_RING");
  EXPECT_STREQ(distr_name(Distr::kTorus2D), "DISTR_TORUS2D");
  EXPECT_STREQ(distr_name(Distr::kHypercube), "DISTR_HYPERCUBE");
}

TEST(Topology, SingleProcessorDegenerates) {
  Machine machine(1, CostModel::t800());
  Topology topo(machine, Distr::kTorus2D);
  EXPECT_EQ(topo.ring_next(0), 0);
  EXPECT_EQ(topo.torus_neighbor(0, 1, 0), 0);
}

}  // namespace
