// Unit and property tests for the sequential matrices and oracles.
#include <gtest/gtest.h>

#include <cmath>

#include "support/matrix.h"

namespace {

using namespace skil::support;

TEST(Matrix, StoresAndRetrieves) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m(2, 3), 7);
  m(1, 2) = 42;
  EXPECT_EQ(m(1, 2), 42);
}

TEST(Matrix, EqualityComparesShapeAndData) {
  Matrix<int> a(2, 2, 1), b(2, 2, 1), c(2, 2, 2), d(2, 3, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(DistAdd, SaturatesAtInfinity) {
  EXPECT_EQ(dist_add(kDistInf, 5), kDistInf);
  EXPECT_EQ(dist_add(5, kDistInf), kDistInf);
  EXPECT_EQ(dist_add(kDistInf, kDistInf), kDistInf);
  EXPECT_EQ(dist_add(3, 4), 7u);
  EXPECT_EQ(dist_add(kDistInf - 1, 1), kDistInf);  // saturation, no wrap
}

TEST(DistanceMatrix, DiagonalIsZeroAndDeterministic) {
  const auto m1 = random_distance_matrix(20, 99);
  const auto m2 = random_distance_matrix(20, 99);
  EXPECT_EQ(m1, m2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(m1(i, i), 0u);
}

TEST(DistanceMatrix, EntryFunctionMatchesMatrix) {
  const auto m = random_distance_matrix(15, 5);
  for (int i = 0; i < 15; ++i)
    for (int j = 0; j < 15; ++j)
      EXPECT_EQ(m(i, j), distance_entry(15, 5, i, j));
}

TEST(DistanceMatrix, DensityControlsEdges) {
  const auto dense = random_distance_matrix(40, 3, 0.9);
  const auto sparse = random_distance_matrix(40, 3, 0.05);
  int dense_edges = 0, sparse_edges = 0;
  for (int i = 0; i < 40; ++i)
    for (int j = 0; j < 40; ++j) {
      if (i == j) continue;
      if (dense(i, j) != kDistInf) ++dense_edges;
      if (sparse(i, j) != kDistInf) ++sparse_edges;
    }
  EXPECT_GT(dense_edges, sparse_edges * 4);
}

TEST(LinearSystem, IsDiagonallyDominant) {
  const auto ab = random_linear_system(30, 11);
  for (int i = 0; i < 30; ++i) {
    double off = 0.0;
    for (int j = 0; j < 30; ++j)
      if (j != i) off += std::abs(ab(i, j));
    EXPECT_GT(std::abs(ab(i, i)), off);
  }
}

TEST(LinearSystem, EntryFunctionMatchesMatrix) {
  const auto ab = random_linear_system(12, 21);
  for (int i = 0; i < 12; ++i)
    for (int j = 0; j <= 12; ++j)
      EXPECT_EQ(ab(i, j), linear_system_entry(12, 21, i, j));
}

TEST(PivotingSystem, IsRowRotationOfDominantSystem) {
  const int n = 14;
  const auto piv = random_pivoting_system(n, 33);
  const auto dom = random_linear_system(n, 33);
  // Every pivoting-system row must equal some dominant-system row, and
  // all rows must be used exactly once (bijectivity).
  std::vector<bool> used(n, false);
  for (int i = 0; i < n; ++i) {
    int match = -1;
    for (int r = 0; r < n; ++r) {
      bool equal = true;
      for (int j = 0; j <= n; ++j)
        if (piv(i, j) != dom(r, j)) {
          equal = false;
          break;
        }
      if (equal) {
        match = r;
        break;
      }
    }
    ASSERT_GE(match, 0) << "row " << i << " not found";
    EXPECT_FALSE(used[match]);
    used[match] = true;
  }
}

TEST(SeqMatmul, MatchesHandComputedProduct) {
  Matrix<double> a(2, 3);
  Matrix<double> b(3, 2);
  int v = 1;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) a(i, j) = v++;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) b(i, j) = v++;
  const auto c = seq_matmul(a, b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(SeqMinplus, IdentityOfTrivialGraph) {
  // Two nodes joined by weight 5: the min-plus square equals the input.
  Matrix<std::uint32_t> a(2, 2, kDistInf);
  a(0, 0) = a(1, 1) = 0;
  a(0, 1) = a(1, 0) = 5;
  const auto sq = seq_minplus(a, a);
  EXPECT_EQ(sq, a);
}

TEST(SeqShortestPaths, FindsMultiHopPath) {
  // Path graph 0-1-2-3 with weights 1, 2, 3: d(0,3) = 6.
  Matrix<std::uint32_t> a(4, 4, kDistInf);
  for (int i = 0; i < 4; ++i) a(i, i) = 0;
  a(0, 1) = a(1, 0) = 1;
  a(1, 2) = a(2, 1) = 2;
  a(2, 3) = a(3, 2) = 3;
  const auto d = seq_shortest_paths(a);
  EXPECT_EQ(d(0, 3), 6u);
  EXPECT_EQ(d(3, 0), 6u);
  EXPECT_EQ(d(0, 2), 3u);
}

TEST(SeqShortestPaths, DisconnectedStaysInfinite) {
  Matrix<std::uint32_t> a(4, 4, kDistInf);
  for (int i = 0; i < 4; ++i) a(i, i) = 0;
  a(0, 1) = a(1, 0) = 1;  // component {0,1}; {2,3} isolated
  const auto d = seq_shortest_paths(a);
  EXPECT_EQ(d(0, 2), kDistInf);
  EXPECT_EQ(d(2, 3), kDistInf);
}

TEST(SeqGauss, SolvesDominantSystem) {
  const auto ab = random_linear_system(25, 7);
  const auto x = seq_gauss_nopivot(ab);
  EXPECT_LT(residual_inf(ab, x), 1e-9);
}

TEST(SeqGauss, PivotVariantAgreesOnDominantSystem) {
  const auto ab = random_linear_system(20, 8);
  const auto x1 = seq_gauss_nopivot(ab);
  const auto x2 = seq_gauss_pivot(ab);
  EXPECT_LT(max_abs_diff(x1, x2), 1e-9);
}

TEST(SeqGauss, PivotVariantSolvesRotatedSystem) {
  const auto ab = random_pivoting_system(18, 9);
  const auto x = seq_gauss_pivot(ab);
  EXPECT_LT(residual_inf(ab, x), 1e-9);
}

TEST(SeqGauss, SingularMatrixRaisesThePapersError) {
  Matrix<double> ab(2, 3, 0.0);
  ab(0, 0) = 1.0;  // second row entirely zero
  try {
    seq_gauss_nopivot(ab);
    FAIL() << "expected AppError";
  } catch (const AppError& e) {
    EXPECT_STREQ(e.what(), "Matrix is singular");
  }
  EXPECT_THROW(seq_gauss_pivot(ab), AppError);
}

class GaussRandomSizes : public ::testing::TestWithParam<int> {};

TEST_P(GaussRandomSizes, ResidualSmallForBothVariants) {
  const int n = GetParam();
  const auto ab = random_linear_system(n, 1000 + n);
  EXPECT_LT(residual_inf(ab, seq_gauss_nopivot(ab)), 1e-8);
  const auto piv = random_pivoting_system(n, 2000 + n);
  EXPECT_LT(residual_inf(piv, seq_gauss_pivot(piv)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GaussRandomSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

}  // namespace
