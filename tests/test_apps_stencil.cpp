// Integration and golden tests for the Jacobi halo-exchange stencil
// (apps/stencil_jacobi.h).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/stencil_jacobi.h"
#include "parix_golden_cases.h"

namespace {

using namespace skil;
using skil::testing::with_coll_mode;

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

struct SCase {
  int p;
  int cells;
  int steps;
};

class Stencil : public ::testing::TestWithParam<SCase> {};

TEST_P(Stencil, ConservesTotalHeat) {
  const auto [p, cells, steps] = GetParam();
  const auto result = apps::stencil_jacobi(p, cells, steps);
  // The three-point kernel's weights sum to 1 and the boundaries
  // reflect, so total heat is invariant up to FP rounding.  The hot
  // band is the middle third at 100 degrees.
  const int padded = apps::stencil_round_up(cells, p);
  const double expected = 100.0 * (2 * padded / 3 - padded / 3);
  EXPECT_NEAR(result.total, expected, 1e-9 * expected);
  EXPECT_GT(result.peak, 0.0);
  EXPECT_LE(result.peak, 100.0);
  ASSERT_EQ(static_cast<int>(result.temps.size()), padded);
}

TEST_P(Stencil, DiffusionOnlyFlattensTheProfile) {
  const auto [p, cells, steps] = GetParam();
  const auto one = apps::stencil_jacobi(p, cells, 1);
  const auto many = apps::stencil_jacobi(p, cells, steps);
  if (steps > 1) EXPECT_LE(many.peak, one.peak);
}

TEST_P(Stencil, ResultBitIdenticalAcrossAllCollModes) {
  const auto [p, cells, steps] = GetParam();
  const auto tree = with_coll_mode(parix::CollMode::kTree, [&] {
    return apps::stencil_jacobi(p, cells, steps);
  });
  for (parix::CollMode mode :
       {parix::CollMode::kRing, parix::CollMode::kRd, parix::CollMode::kAuto}) {
    const auto other = with_coll_mode(mode, [&] {
      return apps::stencil_jacobi(p, cells, steps);
    });
    EXPECT_EQ(other.temps, tree.temps) << parix::coll_mode_name(mode);
    EXPECT_EQ(other.total, tree.total) << parix::coll_mode_name(mode);
    EXPECT_EQ(other.peak, tree.peak) << parix::coll_mode_name(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Stencil,
    ::testing::Values(SCase{1, 24, 4}, SCase{3, 50, 8}, SCase{4, 128, 10},
                      SCase{8, 96, 12}, SCase{16, 256, 6}),
    [](const ::testing::TestParamInfo<SCase>& info) {
      return "p" + std::to_string(info.param.p) + "_c" +
             std::to_string(info.param.cells) + "_s" +
             std::to_string(info.param.steps);
    });

TEST(StencilGoldens, VtimesArePinnedPerMode) {
  struct Golden {
    const char* name;
    parix::CollMode mode;
    int p, cells, steps;
    double vtime_us;
  };
  const Golden kGoldens[] = {
      // At these sizes the adaptive mode already wins: the end-of-step
      // folds pick the dissemination allreduce over the 2 log p tree.
      {"stencil_tree_p8", parix::CollMode::kTree, 8, 256, 16,
       0x1.19f0ccccccccep+15},
      {"stencil_auto_p8", parix::CollMode::kAuto, 8, 256, 16,
       0x1.0fd8ccccccccep+15},
      {"stencil_tree_p16", parix::CollMode::kTree, 16, 512, 16,
       0x1.395e000000002p+15},
      {"stencil_auto_p16", parix::CollMode::kAuto, 16, 512, 16,
       0x1.2d9266666666cp+15},
  };
  for (const Golden& g : kGoldens) {
    const auto result = with_coll_mode(g.mode, [&] {
      return apps::stencil_jacobi(g.p, g.cells, g.steps);
    });
    EXPECT_EQ(result.run.vtime_us, g.vtime_us)
        << g.name << ": actual " << hex(result.run.vtime_us);
  }
}

TEST(StencilGoldens, VtimeIsDeterministicAcrossRuns) {
  const auto a = apps::stencil_jacobi(8, 128, 8);
  const auto b = apps::stencil_jacobi(8, 128, 8);
  EXPECT_EQ(a.run.vtime_us, b.run.vtime_us);
  EXPECT_EQ(a.run.total.messages_sent, b.run.total.messages_sent);
  EXPECT_EQ(a.temps, b.temps);
}

}  // namespace
