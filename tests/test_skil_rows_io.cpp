// Tests for the row skeletons (fold_rows, rotate_rows) and the I/O
// skeletons (scatter, read, write round trips).
#include <gtest/gtest.h>

#include <sstream>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/error.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;

TEST(FoldRows, RowSumsMatchSequential) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 8, cols = 5;
    auto a = array_create<int>(proc, 2, Size{n, cols}, Size{n / 4, cols},
                               Index{-1, -1},
                               [](Index ix) { return ix[0] * 10 + ix[1]; },
                               Distr::kDefault);
    auto sums = array_create<long>(proc, 1, Size{n}, [](Index) { return 0L; });
    array_fold_rows([](int v, Index) { return static_cast<long>(v); },
                    fn::plus, a, sums);
    const auto global = array_gather_all(sums);
    for (int i = 0; i < n; ++i) {
      long expected = 0;
      for (int j = 0; j < cols; ++j) expected += i * 10 + j;
      EXPECT_EQ(global[i], expected);
    }
  });
}

TEST(FoldRows, RowMaximaAndIndexAwareConversion) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 6, cols = 4;
    auto a = array_create<double>(
        proc, 2, Size{n, cols}, Size{n / 2, cols}, Index{-1, -1},
        [](Index ix) { return (ix[0] == ix[1]) ? 100.0 : ix[1] * 1.0; },
        Distr::kDefault);
    auto maxima =
        array_create<double>(proc, 1, Size{n}, [](Index) { return 0.0; });
    array_fold_rows([](double v, Index) { return v; }, fn::max, a, maxima);
    const auto global = array_gather_all(maxima);
    for (int i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(global[i], i < cols ? 100.0 : 3.0);
  });
}

TEST(FoldRows, RejectsColumnSplitDistributions) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{8, 8}, [](Index) { return 0; },
                               Distr::kTorus2D);  // 2x2 block grid
    auto sums = array_create<int>(proc, 1, Size{8}, [](Index) { return 0; });
    EXPECT_THROW(array_fold_rows([](int v, Index) { return v; }, fn::plus,
                                 a, sums),
                 skil::support::ContractError);
  });
}

TEST(RotateRows, ShiftForwardAndBackward) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 8;
    auto a = array_create<int>(proc, 2, Size{n, 3},
                               [](Index ix) { return ix[0]; });
    auto b = array_create<int>(proc, 2, Size{n, 3}, [](Index) { return -1; });
    array_rotate_rows(a, 3, b);
    auto gb = array_gather_all(b);
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(gb[static_cast<std::size_t>(i) * 3], ((i - 3) + n) % n);

    // Negative shifts and full-cycle shifts.
    array_rotate_rows(a, -1, b);
    gb = array_gather_all(b);
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(gb[static_cast<std::size_t>(i) * 3], (i + 1) % n);

    array_rotate_rows(a, n, b);
    EXPECT_EQ(array_gather_all(b), array_gather_all(a));
    array_rotate_rows(a, -3 * n + 1, b);
    gb = array_gather_all(b);
    EXPECT_EQ(gb[0], n - 1);
  });
}

TEST(Scatter, InverseOfGather) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{6, 6},
                               [](Index ix) { return ix[0] * 6 + ix[1]; },
                               Distr::kTorus2D);
    auto b = array_create<int>(proc, 2, Size{6, 6}, [](Index) { return 0; },
                               Distr::kTorus2D);
    // Gather on the root, scatter into b: b must equal a everywhere.
    std::vector<int> global = array_gather_root(a);
    array_scatter_root(global, b);
    EXPECT_EQ(array_gather_all(a), array_gather_all(b));
  });
}

TEST(Scatter, RootSizeMismatchIsRejected) {
  RunConfig config{2, CostModel::t800()};
  EXPECT_THROW(
      parix::spmd_run(config,
                      [](Proc& proc) {
                        auto a = array_create<int>(proc, 1, Size{8},
                                                   [](Index) { return 0; });
                        std::vector<int> wrong(3);
                        array_scatter_root(wrong, a);
                      }),
      skil::support::Error);
}

TEST(ReadWrite, RoundTripThroughStreams) {
  RunConfig config{4, CostModel::t800()};
  std::stringstream stream;
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{4, 4},
                               [](Index ix) { return ix[0] * 4 + ix[1] + 1; });
    array_write(a, stream);
  });
  parix::spmd_run(config, [&](Proc& proc) {
    auto b = array_create<int>(proc, 2, Size{4, 4}, [](Index) { return 0; });
    array_read(stream, b);
    const auto global = array_gather_all(b);
    for (int k = 0; k < 16; ++k) EXPECT_EQ(global[k], k + 1);
  });
}

TEST(ReadWrite, TruncatedStreamIsRejected) {
  RunConfig config{2, CostModel::t800()};
  std::istringstream stream("1 2 3");  // array needs 8 values
  EXPECT_THROW(
      parix::spmd_run(config,
                      [&](Proc& proc) {
                        auto a = array_create<int>(proc, 1, Size{8},
                                                   [](Index) { return 0; });
                        array_read(stream, a);
                      }),
      skil::support::Error);
}

TEST(ReadWrite, FloatRoundTripKeepsPrecision) {
  RunConfig config{2, CostModel::t800()};
  std::stringstream stream;
  stream.precision(17);
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<double>(proc, 1, Size{6},
                                  [](Index ix) { return ix[0] / 7.0; });
    array_write(a, stream);
    auto b = array_create<double>(proc, 1, Size{6},
                                  [](Index) { return 0.0; });
    array_read(stream, b);
    const auto ga = array_gather_all(a);
    const auto gb = array_gather_all(b);
    for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(ga[i], gb[i]);
  });
}

}  // namespace
