// Tests for array_gen_mult: correctness over arbitrary semirings,
// preservation of the operand arrays, and the paper's preconditions.
#include <gtest/gtest.h>

#include <cstdint>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/error.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;
using skil::support::ContractError;

class GenMult : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GenMult, ClassicalProductMatchesOracle) {
  const auto [p, n] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto init_a = [](Index ix) {
      return support::dense_entry(1, ix[0], ix[1]);
    };
    auto init_b = [](Index ix) {
      return support::dense_entry(2, ix[0], ix[1]);
    };
    auto a = array_create<double>(proc, 2, Size{n, n}, init_a,
                                  Distr::kTorus2D);
    auto b = array_create<double>(proc, 2, Size{n, n}, init_b,
                                  Distr::kTorus2D);
    auto c = array_create<double>(proc, 2, Size{n, n},
                                  [](Index) { return 0.0; }, Distr::kTorus2D);
    array_gen_mult(a, b, fn::plus, fn::times, c);

    const auto got = array_gather_matrix(c);
    const auto ma = array_gather_matrix(a);
    const auto mb = array_gather_matrix(b);
    const auto expected = support::seq_matmul(ma, mb);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_NEAR(got(i, j), expected(i, j), 1e-9) << i << "," << j;
  });
}

TEST_P(GenMult, MinPlusSemiring) {
  const auto [p, n] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto init = [n = n](Index ix) {
      return support::distance_entry(n, 77, ix[0], ix[1]);
    };
    auto a = array_create<std::uint32_t>(proc, 2, Size{n, n}, init,
                                         Distr::kTorus2D);
    auto b = array_create<std::uint32_t>(proc, 2, Size{n, n}, init,
                                         Distr::kTorus2D);
    auto c = array_create<std::uint32_t>(
        proc, 2, Size{n, n}, [](Index) { return support::kDistInf; },
        Distr::kTorus2D);
    array_gen_mult(
        a, b, fn::min,
        [](std::uint32_t x, std::uint32_t y) { return support::dist_add(x, y); },
        c);

    const auto got = array_gather_matrix(c);
    const auto expected = support::seq_minplus(
        support::random_distance_matrix(n, 77),
        support::random_distance_matrix(n, 77));
    EXPECT_EQ(got, expected);
  });
}

TEST_P(GenMult, OperandsAreRestoredAfterTheCall) {
  const auto [p, n] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<double>(
        proc, 2, Size{n, n},
        [](Index ix) { return ix[0] * 31.0 + ix[1]; }, Distr::kTorus2D);
    auto b = array_create<double>(
        proc, 2, Size{n, n},
        [](Index ix) { return ix[0] * 1.5 - ix[1]; }, Distr::kTorus2D);
    auto c = array_create<double>(proc, 2, Size{n, n},
                                  [](Index) { return 0.0; }, Distr::kTorus2D);
    const auto a_before = array_gather_all(a);
    const auto b_before = array_gather_all(b);
    array_gen_mult(a, b, fn::plus, fn::times, c);
    EXPECT_EQ(array_gather_all(a), a_before);
    EXPECT_EQ(array_gather_all(b), b_before);
  });
}

TEST_P(GenMult, AccumulatesOntoInitialC) {
  // The result is folded together with c's initial contents, so
  // seeding c with the fold identity (0 for +) gives the plain
  // product, and seeding with something else offsets it.
  const auto [p, n] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto one = [](Index) { return 1.0; };
    auto a = array_create<double>(proc, 2, Size{n, n},
                                  [](Index ix) { return ix[0] == ix[1] ? 1.0 : 0.0; },
                                  Distr::kTorus2D);
    auto b = array_create<double>(proc, 2, Size{n, n},
                                  [](Index ix) { return ix[0] * 2.0 + ix[1]; },
                                  Distr::kTorus2D);
    auto c = array_create<double>(proc, 2, Size{n, n}, one, Distr::kTorus2D);
    array_gen_mult(a, b, fn::plus, fn::times, c);  // identity * b + 1
    const auto got = array_gather_matrix(c);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_NEAR(got(i, j), i * 2.0 + j + 1.0, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(GridsAndSizes, GenMult,
                         ::testing::Values(std::pair{1, 4}, std::pair{1, 6},
                                           std::pair{4, 8}, std::pair{4, 12},
                                           std::pair{9, 9}, std::pair{9, 18},
                                           std::pair{16, 16}));

TEST(GenMultContract, AliasedArgumentsAreRejected) {
  // "calls of the form array_gen_mult(a, a, ...) and
  // array_gen_mult(a, ..., a) are not allowed"
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<double>(proc, 2, Size{4, 4},
                                  [](Index) { return 1.0; }, Distr::kTorus2D);
    auto b = array_create<double>(proc, 2, Size{4, 4},
                                  [](Index) { return 1.0; }, Distr::kTorus2D);
    auto c = array_create<double>(proc, 2, Size{4, 4},
                                  [](Index) { return 0.0; }, Distr::kTorus2D);
    EXPECT_THROW(array_gen_mult(a, a, fn::plus, fn::times, c), ContractError);
    EXPECT_THROW(array_gen_mult(a, b, fn::plus, fn::times, a), ContractError);
    EXPECT_THROW(array_gen_mult(a, b, fn::plus, fn::times, b), ContractError);
  });
}

TEST(GenMultContract, RequiresTorusMapping) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<double>(proc, 2, Size{4, 4},
                                  [](Index) { return 1.0; }, Distr::kDefault);
    auto b = array_create<double>(proc, 2, Size{4, 4},
                                  [](Index) { return 1.0; }, Distr::kDefault);
    auto c = array_create<double>(proc, 2, Size{4, 4},
                                  [](Index) { return 0.0; }, Distr::kDefault);
    EXPECT_THROW(array_gen_mult(a, b, fn::plus, fn::times, c), ContractError);
  });
}

TEST(GenMultContract, RequiresSquareGridAndDivisibleSize) {
  RunConfig config{8, CostModel::t800()};  // 2x4 grid: not square
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<double>(proc, 2, Size{8, 8},
                                  [](Index) { return 1.0; }, Distr::kTorus2D);
    auto b = array_create<double>(proc, 2, Size{8, 8},
                                  [](Index) { return 1.0; }, Distr::kTorus2D);
    auto c = array_create<double>(proc, 2, Size{8, 8},
                                  [](Index) { return 0.0; }, Distr::kTorus2D);
    EXPECT_THROW(array_gen_mult(a, b, fn::plus, fn::times, c), ContractError);
  });
}

}  // namespace
