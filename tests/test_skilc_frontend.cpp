// Tests for the skilc front end: lexer, parser, and type rendering.
#include <gtest/gtest.h>

#include "skilc/emit.h"
#include "skilc/lexer.h"
#include "skilc/parser.h"
#include "support/error.h"

namespace {

using namespace skil::skilc;
using skil::support::ContractError;

TEST(Lexer, TokenisesTheBasics) {
  const auto tokens = lex("int f($t x) { return x + 1.5; }");
  std::vector<Tok> kinds;
  for (const Token& token : tokens) kinds.push_back(token.kind);
  const std::vector<Tok> expected = {
      Tok::kInt,    Tok::kName,     Tok::kLParen, Tok::kTypeVar,
      Tok::kName,   Tok::kRParen,   Tok::kLBrace, Tok::kReturn,
      Tok::kName,   Tok::kPlus,     Tok::kFloatLit, Tok::kSemicolon,
      Tok::kRBrace, Tok::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, NumbersAndOperators) {
  const auto tokens = lex("42 3.25 == != <= >= && || -> - !");
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.25);
  EXPECT_EQ(tokens[2].kind, Tok::kEq);
  EXPECT_EQ(tokens[3].kind, Tok::kNe);
  EXPECT_EQ(tokens[4].kind, Tok::kLe);
  EXPECT_EQ(tokens[5].kind, Tok::kGe);
  EXPECT_EQ(tokens[6].kind, Tok::kAndAnd);
  EXPECT_EQ(tokens[7].kind, Tok::kOrOr);
  EXPECT_EQ(tokens[8].kind, Tok::kArrow);
  EXPECT_EQ(tokens[9].kind, Tok::kMinus);
  EXPECT_EQ(tokens[10].kind, Tok::kNot);
}

TEST(Lexer, SkipsBothCommentStyles) {
  const auto tokens = lex("a // line\n b /* block\n still */ c");
  ASSERT_EQ(tokens.size(), 4u);  // a b c end
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, TracksLineNumbersAndRejectsGarbage) {
  const auto tokens = lex("a\nb");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_THROW(lex("a # b"), ContractError);
  EXPECT_THROW(lex("$ x"), ContractError);
  EXPECT_THROW(lex("/* open"), ContractError);
}

TEST(Parser, FunctionWithFunctionalParameter) {
  // The paper's array_map header.
  const Program program = parse(
      "void array_map ($t2 map_f ($t1, Index), array <$t1> a, "
      "array <$t2> b);");
  ASSERT_EQ(program.functions.size(), 1u);
  const Function& fn = program.functions[0];
  EXPECT_TRUE(fn.is_prototype);
  EXPECT_TRUE(fn.is_hof());
  EXPECT_TRUE(fn.is_polymorphic());
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_TRUE(fn.params[0].is_function());
  EXPECT_EQ(type_to_string(fn.params[0].type), "$t2 ($t1, Index)");
  EXPECT_EQ(type_to_string(fn.params[1].type), "array <$t1>");
}

TEST(Parser, PardataDeclarationHidesTheImplementation) {
  const Program program =
      parse("pardata array <$t> some hidden implem stuff;");
  ASSERT_EQ(program.pardatas.size(), 1u);
  EXPECT_EQ(program.pardatas[0].name, "array");
  EXPECT_EQ(program.pardatas[0].type_params,
            (std::vector<std::string>{"$t"}));
}

TEST(Parser, OperatorSectionsAndPartialApplication) {
  // fold((+), lst) and map((*)(2), lst) from section 2.1.
  const Program program = parse(
      "void g(int lst) { fold((+), lst); map((*)(2), lst); }");
  const auto& body = program.functions[0].body;
  ASSERT_EQ(body.size(), 2u);
  const Expr& fold_call = *body[0]->expr;
  ASSERT_EQ(fold_call.kind, Expr::Kind::kCall);
  EXPECT_EQ(fold_call.args[0]->kind, Expr::Kind::kSection);
  EXPECT_EQ(fold_call.args[0]->name, "+");
  const Expr& map_call = *body[1]->expr;
  const Expr& section_app = *map_call.args[0];
  ASSERT_EQ(section_app.kind, Expr::Kind::kCall);
  EXPECT_EQ(section_app.callee->kind, Expr::Kind::kSection);
  EXPECT_EQ(section_app.callee->name, "*");
  EXPECT_EQ(section_app.args[0]->int_value, 2);
}

TEST(Parser, SectionVersusParenthesisedExpression) {
  const Program program = parse("int f(int x) { return (-x) + (-) (1, x); }");
  const Expr& sum = *program.functions[0].body[0]->expr;
  EXPECT_EQ(sum.lhs->kind, Expr::Kind::kUnary);       // (-x)
  EXPECT_EQ(sum.rhs->kind, Expr::Kind::kCall);        // (-)(1, x)
  EXPECT_EQ(sum.rhs->callee->kind, Expr::Kind::kSection);
}

TEST(Parser, StatementsRoundTripThroughTheEmitter) {
  const std::string source =
      "int fib(int n) {\n"
      "  int a = 0;\n"
      "  int b = 1;\n"
      "  int i;\n"
      "  for (i = 0; i < n; i = i + 1) {\n"
      "    int t = a + b;\n"
      "    a = b;\n"
      "    b = t;\n"
      "  }\n"
      "  if (n <= 0) return 0; else return a;\n"
      "}\n";
  const Program program = parse(source);
  const std::string emitted = emit_program(program);
  // Emitted text must re-parse to a structurally equivalent program.
  const Program reparsed = parse(emitted);
  EXPECT_EQ(emit_program(reparsed), emitted);
  EXPECT_NE(emitted.find("for (i = 0; i < n; i = i + 1)"),
            std::string::npos);
}

TEST(Parser, ReportsSyntaxErrorsWithLocation) {
  try {
    parse("int f( { }");
    FAIL() << "expected a syntax error";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(parse("int f() { return 1 }"), ContractError);
  EXPECT_THROW(parse("pardata x;"), ContractError);
}

TEST(Types, UnificationBindsVariables) {
  Subst subst;
  const auto var = Type::make_var("$t");
  const auto arr_var = Type::make_named("array", {var});
  const auto arr_int = Type::make_named("array", {Type::make_int()});
  EXPECT_TRUE(unify(arr_var, arr_int, subst, {}));
  EXPECT_EQ(type_to_string(substitute(var, subst)), "int");
}

TEST(Types, UnificationRejectsMismatchesAndOccurs) {
  Subst subst;
  EXPECT_FALSE(unify(Type::make_int(), Type::make_float(), subst, {}));
  const auto var = Type::make_var("$t");
  const auto wrapped = Type::make_named("list", {var});
  Subst subst2;
  EXPECT_FALSE(unify(var, wrapped, subst2, {}));  // occurs check
}

TEST(Types, PardataComponentRestriction) {
  // "type variables appearing as components of other data types may
  // not be instantiated with types introduced by the pardata
  // construct" -- list<$t> cannot unify with list<array<int>>.
  const std::set<std::string> pardatas = {"array"};
  const auto var = Type::make_var("$t");
  const auto list_var = Type::make_named("list", {var});
  const auto arr = Type::make_named("array", {Type::make_int()});
  const auto list_arr = Type::make_named("list", {arr});
  Subst subst;
  EXPECT_FALSE(unify(list_var, list_arr, subst, pardatas));
  // At top level the binding is allowed (an array-typed parameter).
  Subst subst2;
  EXPECT_TRUE(unify(var, arr, subst2, pardatas));
}

TEST(Types, MangledNamesMatchThePaper) {
  // "floatarray and intarray stand for the implementations of
  // array <float> and array <int>".
  EXPECT_EQ(mangle_type(Type::make_named("array", {Type::make_float()})),
            "floatarray");
  EXPECT_EQ(mangle_type(Type::make_named("array", {Type::make_int()})),
            "intarray");
  EXPECT_EQ(mangle_type(Type::make_pointer(Type::make_int())), "int *");
}

}  // namespace
