// Tests for array_broadcast_part and array_permute_rows.
#include <gtest/gtest.h>

#include <vector>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/error.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;
using skil::support::ContractError;

TEST(BroadcastPart, EveryPartitionBecomesTheRootPartition) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    // One row per processor (the paper's piv array layout).
    auto piv = array_create<double>(
        proc, 2, Size{4, 5}, Size{1, 5}, Index{-1, -1},
        [](Index ix) { return ix[0] * 100.0 + ix[1]; }, Distr::kDefault);
    array_broadcast_part(piv, Index{2, 0});  // partition of row 2
    const int my_row = piv.part_bounds().lower[0];
    for (int j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(piv.get_elem(Index{my_row, j}), 200.0 + j);
  });
}

TEST(BroadcastPart, WorksFromEveryOwner2D) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    for (int owner_row : {0, 5}) {
      for (int owner_col : {0, 5}) {
        auto a = array_create<int>(
            proc, 2, Size{8, 8},
            [](Index ix) { return ix[0] * 8 + ix[1]; }, Distr::kTorus2D);
        array_broadcast_part(a, Index{owner_row, owner_col});
        // After the broadcast every partition holds the owner's block,
        // so the local element at the same *relative* position equals
        // the owner's original value.
        const Bounds mine = a.part_bounds();
        const int owner_base_row = owner_row < 4 ? 0 : 4;
        const int owner_base_col = owner_col < 4 ? 0 : 4;
        const int v = a.get_elem(Index{mine.lower[0], mine.lower[1]});
        EXPECT_EQ(v, owner_base_row * 8 + owner_base_col);
      }
    }
  });
}

TEST(BroadcastPart, RequiresUniformPartitions) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{5}, [](Index) { return 0; });
    EXPECT_THROW(array_broadcast_part(a, Index{0}), ContractError);
  });
}

struct PermCase {
  int p;
  int rows;
  int cols;
  Distr distr;
};

class PermuteRows : public ::testing::TestWithParam<PermCase> {};

TEST_P(PermuteRows, ReversalPermutation) {
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index ix) { return ix[0] * 1000 + ix[1]; },
                               c.distr);
    auto b = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index) { return -1; }, c.distr);
    const int n = c.rows;
    array_permute_rows(a, [n](int row) { return n - 1 - row; }, b);
    const auto global = array_gather_all(b);
    for (int i = 0; i < c.rows; ++i)
      for (int j = 0; j < c.cols; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * c.cols + j],
                  (n - 1 - i) * 1000 + j);
  });
}

TEST_P(PermuteRows, RotationPermutation) {
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index ix) { return ix[0] * 37 + ix[1]; },
                               c.distr);
    auto b = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index) { return -1; }, c.distr);
    const int n = c.rows;
    array_permute_rows(a, [n](int row) { return (row + 3) % n; }, b);
    const auto global = array_gather_all(b);
    for (int i = 0; i < c.rows; ++i) {
      const int source = ((i - 3) % n + n) % n;
      for (int j = 0; j < c.cols; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * c.cols + j],
                  source * 37 + j);
    }
  });
}

TEST_P(PermuteRows, SwapTwoRowsLikeThePivotExchange) {
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index ix) { return ix[0]; }, c.distr);
    auto b = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index) { return -1; }, c.distr);
    auto switch_rows = [](int r1, int r2, int row) {
      if (row == r1) return r2;
      if (row == r2) return r1;
      return row;
    };
    const int r1 = 0, r2 = c.rows - 1;
    array_permute_rows(a, partial(switch_rows, r1, r2), b);
    const auto global = array_gather_all(b);
    for (int i = 0; i < c.rows; ++i) {
      const int expect = i == r1 ? r2 : (i == r2 ? r1 : i);
      EXPECT_EQ(global[static_cast<std::size_t>(i) * c.cols], expect);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PermuteRows,
    ::testing::Values(PermCase{1, 6, 3, Distr::kDefault},
                      PermCase{2, 8, 5, Distr::kDefault},
                      PermCase{4, 8, 8, Distr::kTorus2D},
                      PermCase{4, 8, 5, Distr::kRing},
                      PermCase{6, 12, 6, Distr::kDefault},
                      PermCase{9, 9, 9, Distr::kTorus2D}));

TEST(PermuteRows, IdentityPermutationEqualsCopy) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{8, 4},
                               [](Index ix) { return ix[0] ^ ix[1]; });
    auto b = array_create<int>(proc, 2, Size{8, 4}, [](Index) { return 0; });
    array_permute_rows(a, [](int row) { return row; }, b);
    EXPECT_EQ(array_gather_all(a), array_gather_all(b));
  });
}

TEST(PermuteRows, NonBijectiveFunctionRaisesRuntimeError) {
  // "The user must provide a bijective function ... otherwise a
  // run-time error occurs."
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{4, 2}, [](Index) { return 0; });
    auto b = array_create<int>(proc, 2, Size{4, 2}, [](Index) { return 0; });
    EXPECT_THROW(array_permute_rows(a, [](int) { return 0; }, b),
                 ContractError);
    EXPECT_THROW(array_permute_rows(a, [](int row) { return row + 1; }, b),
                 ContractError);
    EXPECT_THROW(array_permute_rows(a, [](int row) { return -row; }, b),
                 ContractError);
  });
}

TEST(PermuteRows, RejectsOneDimensionalArrays) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{8}, [](Index) { return 0; });
    auto b = array_create<int>(proc, 1, Size{8}, [](Index) { return 0; });
    EXPECT_THROW(array_permute_rows(a, [](int r) { return r; }, b),
                 ContractError);
  });
}

TEST(PermuteRows, RejectsAliasedArrays) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{4, 2}, [](Index) { return 0; });
    EXPECT_THROW(array_permute_rows(a, [](int r) { return r; }, a),
                 ContractError);
  });
}

TEST(PermuteRows, RandomPermutationsRoundTrip) {
  // Applying a permutation and then its inverse restores the array.
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 16;
    // A fixed "random" bijection built from modular arithmetic.
    auto perm = [n](int row) { return (row * 5 + 3) % n; };  // gcd(5,16)=1
    std::vector<int> inverse(n);
    for (int r = 0; r < n; ++r) inverse[perm(r)] = r;
    auto inv = [inverse](int row) { return inverse[row]; };

    auto a = array_create<int>(proc, 2, Size{n, 4},
                               [](Index ix) { return ix[0] * 11 + ix[1]; });
    auto b = array_create<int>(proc, 2, Size{n, 4}, [](Index) { return 0; });
    auto c = array_create<int>(proc, 2, Size{n, 4}, [](Index) { return 0; });
    array_permute_rows(a, perm, b);
    array_permute_rows(b, inv, c);
    EXPECT_EQ(array_gather_all(a), array_gather_all(c));
  });
}

}  // namespace
