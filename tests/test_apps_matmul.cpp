// Integration tests for the matrix multiplication implementations.
#include <gtest/gtest.h>

#include "apps/matmul.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using apps::matmul_c;
using apps::matmul_dpfl;
using apps::matmul_round_up;
using apps::matmul_skil;

struct MCase {
  int p;
  int n;
};

class Matmul : public ::testing::TestWithParam<MCase> {};

TEST_P(Matmul, AllThreeImplementationsAgree) {
  const auto [p, n] = GetParam();
  const auto skil = matmul_skil(p, n, 31);
  const auto dpfl = matmul_dpfl(p, n, 31);
  const auto c = matmul_c(p, n, 31);
  const int size = matmul_round_up(n, p);
  ASSERT_EQ(skil.product.rows(), size);
  for (int i = 0; i < size; ++i)
    for (int j = 0; j < size; ++j) {
      EXPECT_NEAR(skil.product(i, j), c.product(i, j), 1e-9);
      EXPECT_NEAR(skil.product(i, j), dpfl.product(i, j), 1e-9);
    }
}

TEST_P(Matmul, SkilMatchesSequentialOracle) {
  const auto [p, n] = GetParam();
  const int size = matmul_round_up(n, p);
  const auto result = matmul_skil(p, n, 31);
  // Build padded operands exactly as the app does.
  support::Matrix<double> a(size, size, 0.0), b(size, size, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = support::dense_entry(31, i, j);
      b(i, j) = support::dense_entry(31 ^ 0x5a5a5a5aULL, i, j);
    }
  const auto expected = support::seq_matmul(a, b);
  for (int i = 0; i < size; ++i)
    for (int j = 0; j < size; ++j)
      EXPECT_NEAR(result.product(i, j), expected(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Matmul,
                         ::testing::Values(MCase{1, 6}, MCase{4, 8},
                                           MCase{4, 10}, MCase{9, 12},
                                           MCase{16, 16}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.p) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(MatmulCost, SkilIsModeratelySlowerThanOptimizedC) {
  // Paper section 5.1: equally optimized C is ~20% faster than Skil.
  const int p = 4, n = 48;
  const double skil = matmul_skil(p, n, 3).run.vtime_us;
  const double c = matmul_c(p, n, 3).run.vtime_us;
  const double slowdown = skil / c;
  EXPECT_GT(slowdown, 1.0);
  EXPECT_LT(slowdown, 1.8);
}

TEST(MatmulCost, DpflIsMuchSlower) {
  const int p = 4, n = 32;
  const double skil = matmul_skil(p, n, 3).run.vtime_us;
  const double dpfl = matmul_dpfl(p, n, 3).run.vtime_us;
  EXPECT_GT(dpfl / skil, 2.0);
}

}  // namespace
