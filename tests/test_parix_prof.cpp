// Host scheduler observatory (parix/prof.h, SKIL_PROF).
//
// The two contracts this suite pins:
//
//  1. Profiling never moves virtual time.  The golden vtimes are
//     bit-identical under SKIL_PROF=off, counters and sampled, across
//     engines, carrier counts and charge paths -- the profiler reads
//     host clocks and host counters only.
//
//  2. The counters are conserved.  Steal successes cannot exceed
//     attempts, pool hits + misses must equal acquires, the gang lane
//     histogram must sum to the batch count, and resumes cannot exceed
//     dispatches.  A violated invariant means an instrumentation site
//     dropped or double-counted an event.
//
// Plus the exporter surface: the metrics JSON scheduler block appears
// exactly when profiling is on, the merged Chrome trace carries the
// host carrier lanes, and the skil-prof dashboard renders a pinned
// fixture byte-for-byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/gauss.h"
#include "parix/executor.h"
#include "parix/metrics.h"
#include "parix/prof.h"
#include "parix/prof_report.h"
#include "parix/runtime.h"
#include "parix/trace.h"
#include "parix_golden_cases.h"
#include "support/error.h"
#include "support/json.h"

namespace {

using namespace skil;
using namespace skil::testing;

/// Runs `fn` with `mode` as the process-wide default profiler mode,
/// restoring the previous default afterwards.
template <class Fn>
auto with_prof_mode(parix::ProfMode mode, Fn&& fn) {
  const parix::ProfMode saved = parix::default_prof_mode();
  parix::set_default_prof_mode(mode);
  auto result = fn();
  parix::set_default_prof_mode(saved);
  return result;
}

/// Runs `fn` with the pooled engine pinned to `n` carriers, restoring
/// the env-resolved default afterwards.
template <class Fn>
auto with_carriers(int n, Fn&& fn) {
  parix::executor_set_carriers(n);
  auto result = fn();
  parix::executor_set_carriers(0);
  return result;
}

/// Runs `fn` with `mode` as the process-wide default trace mode,
/// restoring the previous default afterwards.
template <class Fn>
auto with_trace_mode(parix::TraceMode mode, Fn&& fn) {
  const parix::TraceMode saved = parix::default_trace_mode();
  parix::set_default_trace_mode(mode);
  auto result = fn();
  parix::set_default_trace_mode(saved);
  return result;
}

TEST(ProfMode, ParsesAcceptedNames) {
  EXPECT_EQ(parix::parse_prof_mode("off"), parix::ProfMode::kOff);
  EXPECT_EQ(parix::parse_prof_mode("counters"), parix::ProfMode::kCounters);
  EXPECT_EQ(parix::parse_prof_mode("sampled"), parix::ProfMode::kSampled);
  EXPECT_EQ(parix::prof_mode_name(parix::ProfMode::kOff), "off");
  EXPECT_EQ(parix::prof_mode_name(parix::ProfMode::kCounters), "counters");
  EXPECT_EQ(parix::prof_mode_name(parix::ProfMode::kSampled), "sampled");
}

TEST(ProfMode, RejectsUnknownNameWithCanonicalMessage) {
  try {
    parix::parse_prof_mode("trace");
    FAIL() << "parse_prof_mode accepted 'trace'";
  } catch (const support::ContractError& err) {
    EXPECT_NE(std::string(err.what())
                  .find("SKIL_PROF: unknown profiler mode 'trace' "
                        "(accepted values: off, counters, sampled)"),
              std::string::npos)
        << err.what();
  }
}

// The SKIL_ENGINE parser was migrated onto the same knob helper; its
// rejection must carry the identical canonical shape (satellite 1).
TEST(ProfMode, EngineKnobSharesCanonicalMessageShape) {
  try {
    parix::parse_execution_engine("fibers");
    FAIL() << "parse_execution_engine accepted 'fibers'";
  } catch (const support::ContractError& err) {
    EXPECT_NE(std::string(err.what())
                  .find("SKIL_ENGINE: unknown execution engine 'fibers' "
                        "(accepted values: threads, pooled)"),
              std::string::npos)
        << err.what();
  }
}

// Contract 1: bit-identical golden vtimes in every profiler mode.
// Every golden case runs profiled on both engines; the pooled engine
// (the instrumented one) additionally under the sampler.
TEST(ProfGoldenIdentity, AllCasesBothEnginesCountersAndSampled) {
  for (const GoldenCase& golden : golden_cases()) {
    for (const parix::ExecutionEngine engine :
         {parix::ExecutionEngine::kThreads, parix::ExecutionEngine::kPooled}) {
      for (const parix::ProfMode mode :
           {parix::ProfMode::kCounters, parix::ProfMode::kSampled}) {
        const parix::RunResult run = with_engine(engine, [&] {
          return with_prof_mode(mode, [&] { return golden.run(); });
        });
        EXPECT_EQ(run.vtime_us, golden.vtime_us)
            << golden.name << " engine " << static_cast<int>(engine)
            << " prof " << parix::prof_mode_name(mode);
        ASSERT_EQ(run.proc_vtimes.size(), golden.proc_vtimes.size())
            << golden.name;
        for (std::size_t p = 0; p < golden.proc_vtimes.size(); ++p)
          EXPECT_EQ(run.proc_vtimes[p], golden.proc_vtimes[p])
              << golden.name << " proc " << p;
      }
    }
  }
}

// Same contract across carrier counts and charge paths: the sampler
// and the per-carrier counters must not perturb the virtual times no
// matter how the host work is spread.
TEST(ProfGoldenIdentity, SampledAcrossCarriersAndChargePaths) {
  const GoldenCase& golden = golden_cases()[3];  // gauss_skil_p16_n64
  for (const int carriers : {1, 4}) {
    for (const parix::ChargePath path :
         {parix::ChargePath::kInterp, parix::ChargePath::kTape}) {
      const parix::RunResult run = with_carriers(carriers, [&] {
        return with_engine(parix::ExecutionEngine::kPooled, [&] {
          return with_charge_path(path, [&] {
            return with_prof_mode(parix::ProfMode::kSampled,
                                  [&] { return golden.run(); });
          });
        });
      });
      EXPECT_EQ(run.vtime_us, golden.vtime_us)
          << "carriers " << carriers << " path " << static_cast<int>(path);
      for (std::size_t p = 0; p < golden.proc_vtimes.size(); ++p)
        EXPECT_EQ(run.proc_vtimes[p], golden.proc_vtimes[p]) << p;
    }
  }
}

// Contract 2: counter conservation on a profiled pooled run.
TEST(ProfCounters, ConservationInvariants) {
  const parix::RunResult run = with_carriers(4, [&] {
    return with_engine(parix::ExecutionEngine::kPooled, [&] {
      return with_prof_mode(parix::ProfMode::kCounters, [&] {
        return apps::gauss_skil(16, 64, kGoldenSeed, false).run;
      });
    });
  });
  const parix::SchedulerReport& sched = run.scheduler;
  EXPECT_EQ(sched.mode, parix::ProfMode::kCounters);
  EXPECT_EQ(sched.carriers, 4);
  ASSERT_EQ(sched.per_carrier.size(), 4u);
  EXPECT_GT(sched.wall_ns, 0u);

  std::uint64_t fibers_run = 0, resumed = 0, attempts = 0, successes = 0;
  std::uint64_t parks = 0, unparks = 0;
  for (const parix::CarrierReport& lane : sched.per_carrier) {
    EXPECT_LE(lane.steal_successes, lane.steal_attempts);
    fibers_run += lane.fibers_run;
    resumed += lane.fibers_resumed;
    attempts += lane.steal_attempts;
    successes += lane.steal_successes;
    parks += lane.parks;
    unparks += lane.unparks;
  }
  // Every virtual processor's fiber is dispatched at least once.
  EXPECT_GE(fibers_run, 16u);
  // A resume is a re-dispatch of a fiber that ran before: strictly
  // fewer than the dispatches (the first dispatch of each fiber).
  EXPECT_LT(resumed, fibers_run);
  EXPECT_LE(successes, attempts);
  // Unparking is the only way out of a park this engine has.
  EXPECT_LE(unparks, parks);

  // The pool ledger and the gang histogram must balance exactly.
  EXPECT_EQ(sched.pool.hits + sched.pool.misses, sched.pool.acquires);
  std::uint64_t hist_sum = 0;
  for (int k = 0; k < parix::kProfGangLanes; ++k)
    hist_sum += sched.gang_lane_hist[k];
  EXPECT_EQ(hist_sum, sched.gang_batches);

  // The memo counters are surfaced from the settlement result 1:1.
  EXPECT_EQ(sched.memo_hits, run.settle.memo_hits);
  EXPECT_EQ(sched.memo_misses, run.settle.memo_misses);
}

TEST(ProfCounters, OffModeRecordsNothing) {
  const parix::RunResult run = with_engine(
      parix::ExecutionEngine::kPooled, [&] {
        return with_prof_mode(parix::ProfMode::kOff, [&] {
          return apps::gauss_skil(4, 64, kGoldenSeed, false).run;
        });
      });
  EXPECT_EQ(run.scheduler.mode, parix::ProfMode::kOff);
  EXPECT_TRUE(run.scheduler.per_carrier.empty());
  EXPECT_EQ(run.prof, nullptr);
}

TEST(ProfSampler, SampledRunCarriesTimeline) {
  const parix::RunResult run = with_carriers(4, [&] {
    return with_engine(parix::ExecutionEngine::kPooled, [&] {
      return with_prof_mode(parix::ProfMode::kSampled, [&] {
        return apps::gauss_skil(16, 64, kGoldenSeed, false).run;
      });
    });
  });
  ASSERT_NE(run.prof, nullptr);
  EXPECT_EQ(run.prof->carriers, 4);
  // The sampler takes one tick synchronously at start and one at stop,
  // so even the shortest run yields at least two ticks per carrier.
  EXPECT_GE(run.prof->samples.size(), 8u);
  EXPECT_EQ(run.prof->samples.size() % 4, 0u);
  EXPECT_EQ(run.scheduler.samples, run.prof->samples.size());
  // Tick-major order: sample i observes carrier i % carriers, with
  // wall clocks monotone within a lane.
  for (std::size_t i = 0; i < run.prof->samples.size(); ++i)
    EXPECT_EQ(run.prof->samples[i].carrier, static_cast<int>(i % 4)) << i;
  for (std::size_t i = 4; i < run.prof->samples.size(); ++i)
    EXPECT_GE(run.prof->samples[i].wall_ns, run.prof->samples[i - 4].wall_ns);
}

// The counters path must not allocate a timeline (only sampled does).
TEST(ProfSampler, CountersModeHasNoTimeline) {
  const parix::RunResult run = with_engine(
      parix::ExecutionEngine::kPooled, [&] {
        return with_prof_mode(parix::ProfMode::kCounters, [&] {
          return apps::gauss_skil(4, 64, kGoldenSeed, false).run;
        });
      });
  EXPECT_EQ(run.prof, nullptr);
  EXPECT_EQ(run.scheduler.samples, 0u);
}

TEST(ProfMetricsJson, SchedulerBlockPresentExactlyWhenProfiled) {
  const auto metrics_for = [&](parix::ProfMode mode) {
    const parix::RunResult run = with_engine(
        parix::ExecutionEngine::kPooled, [&] {
          return with_prof_mode(
              mode, [&] { return apps::gauss_skil(4, 64, kGoldenSeed,
                                                  false).run; });
        });
    std::ostringstream os;
    parix::write_metrics_json(run, os);
    return support::json::parse(os.str());
  };

  const support::json::Value off = metrics_for(parix::ProfMode::kOff);
  EXPECT_EQ(off.find("scheduler"), nullptr);

  const support::json::Value on = metrics_for(parix::ProfMode::kCounters);
  const support::json::Value* sched = on.find("scheduler");
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->at("prof").string, "counters");
  const support::json::Value& lanes = sched->at("per_carrier");
  ASSERT_TRUE(lanes.is_array());
  ASSERT_FALSE(lanes.array.empty());
  std::uint64_t fibers = 0;
  for (const support::json::Value& lane : lanes.array)
    fibers += static_cast<std::uint64_t>(lane.at("fibers_run").number);
  EXPECT_GE(fibers, 4u);
  ASSERT_TRUE(sched->at("gang_lane_hist").is_array());
  EXPECT_EQ(sched->at("gang_lane_hist").array.size(), 8u);
  EXPECT_GE(sched->at("pool").at("acquires").number, 0.0);
}

TEST(ProfChromeTrace, MergedExportCarriesHostLanes) {
  const parix::RunResult run = with_carriers(4, [&] {
    return with_engine(parix::ExecutionEngine::kPooled, [&] {
      return with_prof_mode(parix::ProfMode::kSampled, [&] {
        return with_trace_mode(parix::TraceMode::kFull, [&] {
          return apps::gauss_skil(4, 64, kGoldenSeed, false).run;
        });
      });
    });
  });
  ASSERT_NE(run.trace, nullptr);
  ASSERT_NE(run.prof, nullptr);
  std::ostringstream os;
  parix::write_chrome_trace(*run.trace, run.prof.get(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"host carriers\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"settle queue\""), std::string::npos);

  const support::json::Value doc = support::json::parse(text);
  const support::json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  int host_events = 0, counter_events = 0;
  for (const support::json::Value& event : events.array) {
    if (event.num("pid", 0.0) == 1.0) ++host_events;
    const support::json::Value* ph = event.find("ph");
    if (ph != nullptr && ph->string == "C") ++counter_events;
  }
  EXPECT_GT(host_events, 0);
  EXPECT_GT(counter_events, 0);

  // The same trace without a timeline must carry no host process.
  std::ostringstream plain;
  parix::write_chrome_trace(*run.trace, plain);
  EXPECT_EQ(plain.str().find("\"host carriers\""), std::string::npos);
}

TEST(ProfReport, RendersPinnedFixtureByteExact) {
  const std::string dir = SKIL_PROF_FIXTURE_DIR;
  std::ifstream fixture(dir + "/metrics_4carriers.json");
  ASSERT_TRUE(fixture.good());
  std::ostringstream fixture_text;
  fixture_text << fixture.rdbuf();

  std::ostringstream rendered;
  parix::render_prof_report(support::json::parse(fixture_text.str()),
                            rendered, /*top_n=*/3);

  std::ifstream golden(dir + "/report_4carriers.golden.txt");
  ASSERT_TRUE(golden.good());
  std::ostringstream golden_text;
  golden_text << golden.rdbuf();
  EXPECT_EQ(rendered.str(), golden_text.str());
}

TEST(ProfReport, RefusesMetricsWithoutSchedulerBlock) {
  const parix::RunResult run = with_prof_mode(
      parix::ProfMode::kOff,
      [&] { return apps::gauss_skil(4, 64, kGoldenSeed, false).run; });
  std::ostringstream metrics;
  parix::write_metrics_json(run, metrics);
  std::ostringstream out;
  EXPECT_THROW(
      parix::render_prof_report(support::json::parse(metrics.str()), out),
      support::ContractError);
}

}  // namespace
