// Tests for the collective operations over every topology kind.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parix/collectives.h"
#include "parix/runtime.h"

namespace {

using namespace skil::parix;

struct Case {
  int nprocs;
  Distr distr;
};

class Collectives : public ::testing::TestWithParam<Case> {};

TEST_P(Collectives, BroadcastReachesEveryProcessorFromEveryRoot) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    for (int root = 0; root < proc.nprocs(); ++root) {
      int value = proc.id() == root ? 1000 + root : -1;
      broadcast(proc, topo, root, value);
      EXPECT_EQ(value, 1000 + root);
    }
  });
}

TEST_P(Collectives, ReduceSumsToRoot) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const int expected = p * (p - 1) / 2;
    for (int root = 0; root < std::min(p, 4); ++root) {
      const int result = reduce(proc, topo, root, proc.id(),
                                [](int a, int b) { return a + b; });
      if (proc.id() == root) {
        EXPECT_EQ(result, expected);
      }
    }
  });
}

TEST_P(Collectives, AllreduceGivesEveryoneTheResult) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const int maxed = allreduce(proc, topo, proc.id() * 3,
                                [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(maxed, (p - 1) * 3);
  });
}

TEST_P(Collectives, ScanComputesInclusivePrefixInVrankOrder) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const int vrank = topo.vrank_of(proc.id());
    const int prefix = scan_inclusive(proc, topo, vrank + 1,
                                      [](int a, int b) { return a + b; });
    EXPECT_EQ(prefix, (vrank + 1) * (vrank + 2) / 2);
  });
}

TEST_P(Collectives, GatherCollectsInVrankOrder) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const int root = topo.hw_of(p - 1);
    const auto all =
        gather(proc, topo, root, 100 + topo.vrank_of(proc.id()));
    if (proc.id() == root) {
      ASSERT_EQ(static_cast<int>(all.size()), p);
      for (int v = 0; v < p; ++v) EXPECT_EQ(all[v], 100 + v);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(Collectives, AllgatherGivesEveryoneEverything) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const auto all = allgather(proc, topo, topo.vrank_of(proc.id()) * 2);
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int v = 0; v < p; ++v) EXPECT_EQ(all[v], 2 * v);
  });
}

TEST_P(Collectives, AllToAllDeliversPersonalisedPayloads) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const int me = topo.vrank_of(proc.id());
    std::vector<int> outgoing(p);
    for (int v = 0; v < p; ++v) outgoing[v] = me * 1000 + v;
    const auto incoming = all_to_all(proc, topo, std::move(outgoing));
    ASSERT_EQ(static_cast<int>(incoming.size()), p);
    for (int v = 0; v < p; ++v) EXPECT_EQ(incoming[v], v * 1000 + me);
  });
}

TEST_P(Collectives, RingShiftMovesPayloadOneStep) {
  const auto [p, distr] = GetParam();
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const int vrank = topo.vrank_of(proc.id());
    const int received = ring_shift(proc, topo, vrank);
    EXPECT_EQ(received, (vrank + p - 1) % p);
  });
}

TEST_P(Collectives, BarrierSynchronisesVirtualClocks) {
  const auto [p, distr] = GetParam();
  if (p == 1) return;
  RunConfig config{p, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    const double straggler = 1e6;  // one slow processor
    if (proc.id() == p / 2) proc.charge_us(straggler);
    barrier(proc, topo);
    EXPECT_GE(proc.vtime(), straggler);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Collectives,
    ::testing::Values(Case{1, Distr::kDefault}, Case{2, Distr::kRing},
                      Case{3, Distr::kDefault}, Case{4, Distr::kTorus2D},
                      Case{5, Distr::kRing}, Case{6, Distr::kTorus2D},
                      Case{7, Distr::kDefault}, Case{8, Distr::kHypercube},
                      Case{9, Distr::kTorus2D}, Case{12, Distr::kRing},
                      Case{16, Distr::kTorus2D}, Case{16, Distr::kHypercube},
                      Case{25, Distr::kTorus2D}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "p" + std::to_string(info.param.nprocs) + "_" +
             std::string(distr_name(info.param.distr)).substr(6);
    });

TEST(TorusRotate, FullCycleRestoresPayloads) {
  RunConfig config{9, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    const Topology topo(proc.machine(), Distr::kTorus2D);
    int payload = proc.id();
    for (int step = 0; step < topo.grid_cols(); ++step)
      payload = torus_rotate(proc, topo, payload, 0, 1);
    EXPECT_EQ(payload, proc.id());  // went all the way around the row
  });
}

TEST(TorusRotate, SingleStepMovesAlongGridRow) {
  RunConfig config{4, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    const Topology topo(proc.machine(), Distr::kTorus2D);
    const int received = torus_rotate(proc, topo, proc.id(), 0, 1);
    // We sent to the right neighbour, so we received from the left one.
    EXPECT_EQ(received, topo.torus_neighbor(proc.id(), 0, -1));
  });
}

TEST(Collectives, VtimeIsDeterministicUnderContention) {
  auto run_once = [] {
    RunConfig config{16, CostModel::t800()};
    return spmd_run(config, [](Proc& proc) {
      const Topology topo(proc.machine(), Distr::kTorus2D);
      int value = allreduce(proc, topo, proc.id(),
                            [](int a, int b) { return a + b; });
      broadcast(proc, topo, 3, value);
      gather(proc, topo, 0, value);
    });
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.vtime_us, b.vtime_us);
  EXPECT_EQ(a.total.messages_sent, b.total.messages_sent);
  EXPECT_EQ(a.total.bytes_sent, b.total.bytes_sent);
}

}  // namespace
