// Tests for array_map, array_zip, array_copy and array_fold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/error.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;

struct GridCase {
  int p;
  int rows;
  int cols;
  Distr distr;
};

class MapFold : public ::testing::TestWithParam<GridCase> {};

TEST_P(MapFold, MapComputesEveryElement) {
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index ix) { return ix[0] + ix[1]; },
                               c.distr);
    auto b = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index) { return 0; }, c.distr);
    array_map([](int v, Index ix) { return v * 2 + ix[0]; }, a, b);
    const auto global = array_gather_all(b);
    for (int i = 0; i < c.rows; ++i)
      for (int j = 0; j < c.cols; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * c.cols + j],
                  (i + j) * 2 + i);
  });
}

TEST_P(MapFold, MapInSituReplacement) {
  // "the two arrays can be identical; in this case the skeleton does
  // an in-situ replacement"
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index ix) { return ix[0] * 100 + ix[1]; },
                               c.distr);
    array_map([](int v) { return v + 1; }, a, a);
    const auto global = array_gather_all(a);
    for (int i = 0; i < c.rows; ++i)
      for (int j = 0; j < c.cols; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * c.cols + j],
                  i * 100 + j + 1);
  });
}

TEST_P(MapFold, MapChangesElementType) {
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<float>(proc, 2, Size{c.rows, c.cols},
                                 [](Index ix) { return ix[0] * 1.0f; },
                                 c.distr);
    auto b = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index) { return -1; }, c.distr);
    array_map([](float v, Index) { return v >= 2.0f ? 1 : 0; }, a, b);
    const auto global = array_gather_all(b);
    for (int i = 0; i < c.rows; ++i)
      for (int j = 0; j < c.cols; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * c.cols + j],
                  i >= 2 ? 1 : 0);
  });
}

TEST_P(MapFold, FoldEqualsSequentialFold) {
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index ix) { return ix[0] * 7 + ix[1]; },
                               c.distr);
    const long sum = array_fold(
        [](int v, Index) { return static_cast<long>(v); },
        [](long x, long y) { return x + y; }, a);
    long expected = 0;
    for (int i = 0; i < c.rows; ++i)
      for (int j = 0; j < c.cols; ++j) expected += i * 7 + j;
    EXPECT_EQ(sum, expected);
  });
}

TEST_P(MapFold, FoldResultIsKnownToAllProcessors) {
  // "In order to make the result known to all processors, it is
  // broadcasted from the root ... to all other processors."
  const auto c = GetParam();
  RunConfig config{c.p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{c.rows, c.cols},
                               [](Index ix) { return ix[0] - ix[1]; },
                               c.distr);
    const int maximum = array_fold([](int v, Index) { return v; },
                                   fn::max, a);
    EXPECT_EQ(maximum, c.rows - 1);  // max at (rows-1, 0)
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, MapFold,
    ::testing::Values(GridCase{1, 4, 4, Distr::kDefault},
                      GridCase{2, 4, 4, Distr::kDefault},
                      GridCase{4, 8, 8, Distr::kTorus2D},
                      GridCase{4, 6, 10, Distr::kRing},
                      GridCase{6, 6, 6, Distr::kDefault},
                      GridCase{9, 9, 9, Distr::kTorus2D},
                      GridCase{8, 8, 4, Distr::kHypercube}));

TEST(Map, WorksOnCyclicDistributions) {
  RunConfig config{3, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create_cyclic<int>(proc, 2, Size{10, 4},
                                      [](Index ix) { return ix[0]; });
    array_map([](int v) { return v * v; }, a, a);
    const long sum = array_fold([](int v, Index) { return (long)v; },
                                [](long x, long y) { return x + y; }, a);
    long expected = 0;
    for (int i = 0; i < 10; ++i) expected += 4L * i * i;
    EXPECT_EQ(sum, expected);
  });
}

TEST(Map, BlockCyclicRoundTrip) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create_block_cyclic<int>(proc, 1, Size{12}, 2,
                                            [](Index ix) { return ix[0]; });
    const int maximum =
        array_fold([](int v, Index) { return v; }, fn::max, a);
    EXPECT_EQ(maximum, 11);
  });
}

TEST(Map, MismatchedDistributionsAreRejected) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{8}, [](Index) { return 0; });
    auto b = array_create<int>(proc, 1, Size{9}, [](Index) { return 0; });
    EXPECT_THROW(array_map([](int v) { return v; }, a, b),
                 skil::support::ContractError);
  });
}

TEST(Fold, EmptyPartitionsAreHandled) {
  // 3 elements on 4 processors: one partition is empty, the fold must
  // still produce the global result everywhere.
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{3},
                               [](Index ix) { return ix[0] + 1; });
    const int sum = array_fold([](int v, Index) { return v; },
                               fn::plus, a);
    EXPECT_EQ(sum, 6);
  });
}

TEST(Fold, ConvFunctionSeesIndices) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{4, 4},
                               [](Index) { return 1; });
    // Count diagonal elements via the index-aware conversion.
    const int diag = array_fold(
        [](int v, Index ix) { return ix[0] == ix[1] ? v : 0; },
        fn::plus, a);
    EXPECT_EQ(diag, 4);
  });
}

TEST(Zip, CombinesTwoArrays) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{8, 8},
                               [](Index ix) { return ix[0]; });
    auto b = array_create<int>(proc, 2, Size{8, 8},
                               [](Index ix) { return ix[1]; });
    auto c = array_create<int>(proc, 2, Size{8, 8}, [](Index) { return 0; });
    array_zip(fn::plus, a, b, c);
    const auto global = array_gather_all(c);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * 8 + j], i + j);
  });
}

TEST(Copy, CopiesWholePartitions) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<std::uint32_t>(
        proc, 2, Size{8, 8}, [](Index ix) {
          return static_cast<std::uint32_t>(ix[0] * 8 + ix[1]);
        });
    auto b = array_create<std::uint32_t>(proc, 2, Size{8, 8},
                                         [](Index) { return 0u; });
    array_copy(a, b);
    EXPECT_EQ(array_gather_all(a), array_gather_all(b));
  });
}

TEST(Copy, SelfCopyIsANoOp) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{8},
                               [](Index ix) { return ix[0]; });
    array_copy(a, a);
    EXPECT_EQ(a.get_elem(Index{a.part_bounds().lower[0]}),
              a.part_bounds().lower[0]);
  });
}

TEST(Copy, IsCheaperThanEquivalentMap) {
  // The paper implemented array_copy "instead of using a
  // correspondingly parameterized array_map for this purpose" because
  // contiguous copying is more efficient; the cost model must agree.
  RunConfig config{2, CostModel::t800()};
  auto copy_time = parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{4096},
                               [](Index ix) { return ix[0]; });
    auto b = array_create<int>(proc, 1, Size{4096}, [](Index) { return 0; });
    array_copy(a, b);
    array_copy(a, b);
  });
  auto map_time = parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{4096},
                               [](Index ix) { return ix[0]; });
    auto b = array_create<int>(proc, 1, Size{4096}, [](Index) { return 0; });
    array_map([](int v) { return v; }, a, b);
    array_map([](int v) { return v; }, a, b);
  });
  EXPECT_LT(copy_time.vtime_us, map_time.vtime_us);
}

}  // namespace
