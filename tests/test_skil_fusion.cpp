// Skeleton fusion (DESIGN.md section 13): golden fused virtual times,
// off-mode bit-identity with the seed goldens, differential
// result-bit-equality between SKIL_FUSE=off and SKIL_FUSE=on, and the
// fusion counters' accounting.
//
// The contract under test:
//   * off (the default): every cell reproduces the seed golden vtimes
//     bit-exactly and the fusion counters stay at zero -- fusion
//     support must be invisible when disabled.
//   * on: array *results* stay bit-identical to off on every cell
//     while virtual times land on their own pinned goldens
//     (fused_vtime_us), strictly no higher than the seed values, and
//     engine-invariant like the seed values.
//   * every fusible composition is accounted for: seen = fused +
//     rejected, with kShape rejections on the pivoting Gauss cell and
//     kPath rejections when the interpretive charge path is active.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/gauss.h"
#include "apps/matmul.h"
#include "apps/shortest_paths.h"
#include "parix/charge_tape.h"
#include "parix/runtime.h"
#include "parix_golden_cases.h"
#include "support/error.h"

namespace {

using namespace skil;
using namespace skil::parix;

using skil::testing::GoldenCase;
using skil::testing::golden_cases;
using skil::testing::kGoldenSeed;
using skil::testing::with_charge_path;
using skil::testing::with_engine;
using skil::testing::with_fuse_mode;

template <class T>
bool bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

// --- mode parsing -----------------------------------------------------------

TEST(FuseMode, StrictParsingAndNames) {
  EXPECT_EQ(parse_fuse_mode("off"), FuseMode::kOff);
  EXPECT_EQ(parse_fuse_mode("on"), FuseMode::kOn);
  EXPECT_THROW(parse_fuse_mode("ON"), support::ContractError);
  EXPECT_THROW(parse_fuse_mode("yes"), support::ContractError);
  EXPECT_THROW(parse_fuse_mode(""), support::ContractError);
  EXPECT_EQ(fuse_mode_name(FuseMode::kOff), "off");
  EXPECT_EQ(fuse_mode_name(FuseMode::kOn), "on");
}

// --- off: invisible ---------------------------------------------------------

TEST(FusionGolden, OffReproducesSeedVirtualTimesWithZeroCounters) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult r = with_fuse_mode(FuseMode::kOff, [&] { return c.run(); });
    EXPECT_EQ(r.vtime_us, c.vtime_us);
    EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
    EXPECT_EQ(r.fusion.seen, 0u);
    EXPECT_EQ(r.fusion.fused, 0u);
    EXPECT_EQ(r.fusion.rejected(), 0u);
    EXPECT_EQ(r.fusion.barriers_eliminated, 0u);
    EXPECT_EQ(r.fusion.tapes_eliminated, 0u);
  }
}

// --- on: pinned fused goldens ----------------------------------------------

TEST(FusionGolden, OnReproducesFusedVirtualTimes) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult r = with_fuse_mode(FuseMode::kOn, [&] { return c.run(); });
    EXPECT_EQ(r.vtime_us, c.fused_vtime_us);
    // Fusion can only remove passes and barriers, never add charges.
    EXPECT_LE(r.vtime_us, c.vtime_us);
    // Every composition the fused paths saw is accounted for.
    EXPECT_EQ(r.fusion.seen, r.fusion.fused + r.fusion.rejected());
    if (c.fused_vtime_us < c.vtime_us) {
      EXPECT_GT(r.fusion.fused, 0u) << "vtime moved without a fused composition";
    } else {
      // The hand-written C programs have no fusible composition.
      EXPECT_EQ(r.fusion.seen, 0u);
    }
  }
}

TEST(FusionGolden, FusedVirtualTimesAreEngineInvariant) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult threads = with_fuse_mode(FuseMode::kOn, [&] {
      return with_engine(ExecutionEngine::kThreads, [&] { return c.run(); });
    });
    const RunResult pooled = with_fuse_mode(FuseMode::kOn, [&] {
      return with_engine(ExecutionEngine::kPooled, [&] { return c.run(); });
    });
    EXPECT_EQ(threads.vtime_us, c.fused_vtime_us);
    EXPECT_EQ(pooled.vtime_us, c.fused_vtime_us);
    EXPECT_EQ(threads.proc_vtimes, pooled.proc_vtimes);
  }
}

TEST(FusionGolden, PivotingGaussRejectsPermutedStepsByShape) {
  const RunResult r = with_fuse_mode(FuseMode::kOn, [] {
    return apps::gauss_skil(4, 32, kGoldenSeed, /*pivoting=*/true).run;
  });
  // Steps whose pivot search permutes rows cannot fuse the in-place
  // elimination (it would read moved data); the rest fuse normally.
  EXPECT_GT(r.fusion.rejected_shape, 0u);
  EXPECT_GT(r.fusion.fused, 0u);
  EXPECT_EQ(r.fusion.rejected_order, 0u);
  EXPECT_EQ(r.fusion.rejected_path, 0u);
}

// --- interpretive charge path keeps the oracle unfused ----------------------

TEST(FusionGolden, InterpChargePathRejectsFusionBitIdentically) {
  // Fused variants are taped; under SKIL_CHARGE=interp the fused-mode
  // run must execute exactly the interpretive oracle (kPath
  // rejections, no fused composition, bit-identical vtimes to
  // interp + off).
  const GoldenCase& c = golden_cases().front();  // gauss_skil_p4_n64
  const RunResult off = with_charge_path(ChargePath::kInterp, [&] {
    return with_fuse_mode(FuseMode::kOff, [&] { return c.run(); });
  });
  const RunResult on = with_charge_path(ChargePath::kInterp, [&] {
    return with_fuse_mode(FuseMode::kOn, [&] { return c.run(); });
  });
  EXPECT_EQ(on.vtime_us, off.vtime_us);
  EXPECT_EQ(on.proc_vtimes, off.proc_vtimes);
  EXPECT_EQ(on.fusion.fused, 0u);
  EXPECT_GT(on.fusion.rejected_path, 0u);
  EXPECT_EQ(off.fusion.seen, 0u);
}

// --- differential: results bit-identical off vs on --------------------------

TEST(FusionDifferential, GaussSolutionsBitIdentical) {
  const auto off = with_fuse_mode(FuseMode::kOff, [] {
    return apps::gauss_skil(4, 64, kGoldenSeed, false);
  });
  const auto on = with_fuse_mode(FuseMode::kOn, [] {
    return apps::gauss_skil(4, 64, kGoldenSeed, false);
  });
  EXPECT_TRUE(bits_equal(off.x, on.x));
  EXPECT_LT(on.run.vtime_us, off.run.vtime_us);
}

TEST(FusionDifferential, GaussPivotingSolutionsBitIdentical) {
  const auto off = with_fuse_mode(FuseMode::kOff, [] {
    return apps::gauss_skil(4, 32, kGoldenSeed, true);
  });
  const auto on = with_fuse_mode(FuseMode::kOn, [] {
    return apps::gauss_skil(4, 32, kGoldenSeed, true);
  });
  EXPECT_TRUE(bits_equal(off.x, on.x));
  EXPECT_LE(on.run.vtime_us, off.run.vtime_us);
}

TEST(FusionDifferential, GaussDpflSolutionsBitIdentical) {
  const auto off = with_fuse_mode(FuseMode::kOff, [] {
    return apps::gauss_dpfl(4, 64, kGoldenSeed);
  });
  const auto on = with_fuse_mode(FuseMode::kOn, [] {
    return apps::gauss_dpfl(4, 64, kGoldenSeed);
  });
  EXPECT_TRUE(bits_equal(off.x, on.x));
  EXPECT_LT(on.run.vtime_us, off.run.vtime_us);
}

TEST(FusionDifferential, MatmulProductsBitIdentical) {
  const auto off = with_fuse_mode(FuseMode::kOff, [] {
    return apps::matmul_skil(4, 64, kGoldenSeed);
  });
  const auto on = with_fuse_mode(FuseMode::kOn, [] {
    return apps::matmul_skil(4, 64, kGoldenSeed);
  });
  EXPECT_TRUE(bits_equal(off.product.storage(), on.product.storage()));
  EXPECT_LT(on.run.vtime_us, off.run.vtime_us);

  const auto doff = with_fuse_mode(FuseMode::kOff, [] {
    return apps::matmul_dpfl(4, 64, kGoldenSeed);
  });
  const auto don = with_fuse_mode(FuseMode::kOn, [] {
    return apps::matmul_dpfl(4, 64, kGoldenSeed);
  });
  EXPECT_TRUE(bits_equal(doff.product.storage(), don.product.storage()));
  EXPECT_LT(don.run.vtime_us, doff.run.vtime_us);
}

TEST(FusionDifferential, ShortestPathsDistancesBitIdentical) {
  const auto off = with_fuse_mode(FuseMode::kOff, [] {
    return apps::shpaths_skil(4, 32, kGoldenSeed);
  });
  const auto on = with_fuse_mode(FuseMode::kOn, [] {
    return apps::shpaths_skil(4, 32, kGoldenSeed);
  });
  EXPECT_TRUE(bits_equal(off.distances.storage(), on.distances.storage()));
  EXPECT_LT(on.run.vtime_us, off.run.vtime_us);

  const auto doff = with_fuse_mode(FuseMode::kOff, [] {
    return apps::shpaths_dpfl(4, 32, kGoldenSeed);
  });
  const auto don = with_fuse_mode(FuseMode::kOn, [] {
    return apps::shpaths_dpfl(4, 32, kGoldenSeed);
  });
  EXPECT_TRUE(
      bits_equal(doff.distances.storage(), don.distances.storage()));
  EXPECT_LT(don.run.vtime_us, doff.run.vtime_us);

  // The hand-written C program has no fusible composition: identical
  // vtimes, zero counters.
  const auto coff = with_fuse_mode(FuseMode::kOff, [] {
    return apps::shpaths_c(4, 32, kGoldenSeed, true);
  });
  const auto con = with_fuse_mode(FuseMode::kOn, [] {
    return apps::shpaths_c(4, 32, kGoldenSeed, true);
  });
  EXPECT_TRUE(
      bits_equal(coff.distances.storage(), con.distances.storage()));
  EXPECT_EQ(con.run.vtime_us, coff.run.vtime_us);
  EXPECT_EQ(con.run.fusion.seen, 0u);
}

}  // namespace
