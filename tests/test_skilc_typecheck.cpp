// Tests for the polymorphic type checker (paper section 2.2).
#include <gtest/gtest.h>

#include "skilc/parser.h"
#include "skilc/typecheck.h"

namespace {

using namespace skil::skilc;

Program check(const std::string& source) {
  Program program = parse(source);
  typecheck(program);
  return program;
}

TEST(Typecheck, AcceptsSimpleMonomorphicCode) {
  EXPECT_NO_THROW(check("int add(int a, int b) { return a + b; }"
                        "int use() { return add(1, 2); }"));
}

TEST(Typecheck, RejectsWrongArgumentType) {
  EXPECT_THROW(check("int id(int a) { return a; }"
                     "float g() { return 1.5; }"
                     "int use() { return id(g()); }"),
               TypeError);
}

TEST(Typecheck, RejectsWrongReturnType) {
  EXPECT_THROW(check("float g() { return 1.5; }"
                     "int f() { return g(); }"),
               TypeError);
}

TEST(Typecheck, RejectsUnknownNamesAndNonFunctions) {
  EXPECT_THROW(check("int f() { return missing(1); }"), TypeError);
  EXPECT_THROW(check("int f(int x) { return x(1); }"), TypeError);
}

TEST(Typecheck, RejectsTooManyArguments) {
  EXPECT_THROW(check("int id(int a) { return a; }"
                     "int f() { return id(1, 2); }"),
               TypeError);
}

TEST(Typecheck, PolymorphicIdentityInstantiatesPerUse) {
  const Program program =
      check("$t id($t x) { return x; }"
            "int f() { return id(1); }"
            "float g() { return id(1.5); }");
  (void)program;  // both uses type check with different instantiations
}

TEST(Typecheck, PartialApplicationYieldsFunctionType) {
  const Program program =
      check("int at(float thresh, float elem, Index ix) "
            "{ return elem >= thresh; }"
            "void apply(int f (float, Index));"
            "void use(float t) { apply(at(t)); }");
  // The argument of apply is typed as a function over the remaining
  // parameters.
  const Function* use = program.find_function("use");
  const Expr& call = *use->body[0]->expr;
  EXPECT_EQ(type_to_string(call.args[0]->type), "int (float, Index)");
}

TEST(Typecheck, PartialApplicationWithWrongBoundTypeFails) {
  EXPECT_THROW(
      check("int at(float thresh, float elem) { return 1; }"
            "void apply(int f (float));"
            "void use(Index i) { apply(at(i)); }"),
      TypeError);
}

TEST(Typecheck, HigherOrderUnificationBindsTypeVariables) {
  const Program program = check(
      "pardata array <$t> impl;"
      "void array_map ($t2 map_f ($t1, Index), array <$t1> a, "
      "array <$t2> b);"
      "int at(float thresh, float elem, Index ix) { return 1; }"
      "void use(float t, array <float> A, array <int> B) "
      "{ array_map(at(t), A, B); }");
  const Function* use = program.find_function("use");
  ASSERT_NE(use, nullptr);
}

TEST(Typecheck, HigherOrderMismatchIsRejected) {
  // B has the wrong element type for the map result.
  EXPECT_THROW(
      check("pardata array <$t> impl;"
            "void array_map ($t2 map_f ($t1, Index), array <$t1> a, "
            "array <$t2> b);"
            "int at(float thresh, float elem, Index ix) { return 1; }"
            "void use(float t, array <float> A, array <float> B) "
            "{ array_map(at(t), A, B); }"),
      TypeError);
}

TEST(Typecheck, SectionsActAsPolymorphicOperators) {
  EXPECT_NO_THROW(
      check("$t fold($t f ($t, $t), $t init);"
            "int use() { return fold((+), 0); }"));
  EXPECT_NO_THROW(
      check("$t fold($t f ($t, $t), $t init);"
            "float use() { return fold((*), 1.5); }"));
}

TEST(Typecheck, ComparisonSectionsReturnInt) {
  EXPECT_NO_THROW(
      check("int fold2(int f (float, float), float init);"
            "int use() { return fold2((<=), 0.5); }"));
}

TEST(Typecheck, IndexingArraysAndPointers) {
  EXPECT_NO_THROW(
      check("pardata array <$t> impl;"
            "float first(array <float> a) { return a[0]; }"
            "int deref(int * p) { return p[1]; }"));
  EXPECT_THROW(check("int f(int x) { return x[0]; }"), TypeError);
}

TEST(Typecheck, AssignmentAndDeclarationsMustAgree) {
  EXPECT_NO_THROW(check("int f() { int x = 1; x = x + 1; return x; }"));
  EXPECT_THROW(check("float g() { return 1.5; } "
                     "int f() { int x = g(); return x; }"),
               TypeError);
  EXPECT_THROW(check("float g() { return 1.5; } "
                     "int f() { int x = 0; x = g(); return x; }"),
               TypeError);
}

TEST(Typecheck, VoidFunctionsMayNotReturnValuesImplicitly) {
  EXPECT_NO_THROW(check("void f() { return; }"));
  EXPECT_THROW(check("int f() { return; }"), TypeError);
}

TEST(Typecheck, CurriedDirectApplication) {
  // add(1)(2): the first application yields int(int), the second int.
  EXPECT_NO_THROW(check("int add(int a, int b) { return a + b; }"
                        "int f() { return add(1)(2); }"));
}

}  // namespace
