// Tests for the SPMD runtime: messaging, virtual time, determinism,
// failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "parix/runtime.h"
#include "support/error.h"

namespace {

using namespace skil::parix;

TEST(Machine, NearSquareMeshShapes) {
  EXPECT_EQ(near_square_mesh(1).rows, 1);
  EXPECT_EQ(near_square_mesh(64).rows, 8);
  EXPECT_EQ(near_square_mesh(64).cols, 8);
  EXPECT_EQ(near_square_mesh(32).rows, 4);
  EXPECT_EQ(near_square_mesh(32).cols, 8);
  EXPECT_EQ(near_square_mesh(7).rows, 1);
  EXPECT_EQ(near_square_mesh(7).cols, 7);
  EXPECT_EQ(near_square_mesh(12).rows, 3);
  EXPECT_EQ(near_square_mesh(12).cols, 4);
}

TEST(Machine, ManhattanHops) {
  Machine m(16, CostModel::t800());  // 4x4 mesh
  EXPECT_EQ(m.hops(0, 0), 0);
  EXPECT_EQ(m.hops(0, 1), 1);
  EXPECT_EQ(m.hops(0, 4), 1);
  EXPECT_EQ(m.hops(0, 5), 2);
  EXPECT_EQ(m.hops(0, 15), 6);
  EXPECT_EQ(m.hops(15, 0), 6);
}

TEST(SpmdRun, RunsBodyOnEveryProcessor) {
  std::vector<std::atomic<int>> hits(8);
  RunConfig config{8, CostModel::t800()};
  spmd_run(config, [&](Proc& proc) { hits[proc.id()].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SpmdRun, PingPongDeliversPayloads) {
  RunConfig config{2, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    if (proc.id() == 0) {
      proc.send<int>(1, 7, 12345);
      EXPECT_EQ(proc.recv<int>(1, 8), 54321);
    } else {
      EXPECT_EQ(proc.recv<int>(0, 7), 12345);
      proc.send<int>(0, 8, 54321);
    }
  });
}

TEST(SpmdRun, VectorPayloadsMoveIntact) {
  RunConfig config{2, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    if (proc.id() == 0) {
      std::vector<double> v{1.5, 2.5, 3.5};
      proc.send<std::vector<double>>(1, 1, std::move(v));
    } else {
      const auto v = proc.recv<std::vector<double>>(0, 1);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_DOUBLE_EQ(v[1], 2.5);
    }
  });
}

TEST(SpmdRun, MessagesWithSameTagKeepFifoOrderPerSender) {
  RunConfig config{2, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    if (proc.id() == 0) {
      for (int i = 0; i < 10; ++i) proc.send<int>(1, 3, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(proc.recv<int>(0, 3), i);
    }
  });
}

TEST(SpmdRun, TagsDisambiguateOutOfOrderReceives) {
  RunConfig config{2, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    if (proc.id() == 0) {
      proc.send<int>(1, 100, 1);
      proc.send<int>(1, 200, 2);
    } else {
      EXPECT_EQ(proc.recv<int>(0, 200), 2);  // later tag first
      EXPECT_EQ(proc.recv<int>(0, 100), 1);
    }
  });
}

TEST(SpmdRun, TypeMismatchOnReceiveFaults) {
  RunConfig config{2, CostModel::t800()};
  EXPECT_THROW(spmd_run(config,
                        [](Proc& proc) {
                          if (proc.id() == 0) {
                            proc.send<int>(1, 5, 1);
                          } else {
                            proc.recv<double>(0, 5);  // wrong type
                          }
                        }),
               skil::support::RuntimeFault);
}

TEST(SpmdRun, ExceptionInOneProcessorUnblocksPeers) {
  RunConfig config{4, CostModel::t800()};
  try {
    spmd_run(config, [](Proc& proc) {
      if (proc.id() == 3) throw skil::support::AppError("boom");
      // Peers block on a receive that will never be satisfied; the
      // poison mechanism must wake them so the run terminates.
      proc.recv<int>((proc.id() + 1) % 4, 9999);
    });
    FAIL() << "expected an exception";
  } catch (const skil::support::Error& e) {
    // The first recorded failure may be the AppError or a poisoned
    // receive, depending on scheduling; both carry the poison reason
    // or the original message.
    SUCCEED() << e.what();
  }
}

// --- virtual time ---------------------------------------------------------

TEST(VirtualTime, ChargeAccumulatesModelUnits) {
  RunConfig config{1, CostModel::t800()};
  const auto result = spmd_run(config, [](Proc& proc) {
    proc.charge(Op::kIntOp, 100);
    proc.charge(Op::kFloatOp, 10);
  });
  const CostModel cm = CostModel::t800();
  EXPECT_DOUBLE_EQ(result.vtime_us, 100 * cm.int_op_us + 10 * cm.float_op_us);
}

TEST(VirtualTime, ReceiveWaitsForArrival) {
  const CostModel cm = CostModel::t800();
  RunConfig config{2, cm};
  const auto result = spmd_run(config, [&](Proc& proc) {
    if (proc.id() == 0) {
      proc.charge(Op::kIntOp, 1000);  // sender is busy first
      proc.send<int>(1, 1, 7);
    } else {
      proc.recv<int>(0, 1);
      // Receiver idles until the message arrives: its clock must be at
      // least the sender's send time plus the transfer.
      EXPECT_GE(proc.vtime(),
                1000 * cm.int_op_us + cm.transfer_us(sizeof(int), 1));
    }
  });
  EXPECT_GT(result.vtime_us, 1000 * cm.int_op_us);
}

TEST(VirtualTime, AsyncSenderOnlyPaysStartup) {
  const CostModel cm = CostModel::t800();
  RunConfig config{2, cm};
  spmd_run(config, [&](Proc& proc) {
    if (proc.id() == 0) {
      std::vector<char> big(100000);
      proc.send_mode<std::vector<char>>(1, 1, std::move(big),
                                        SendMode::kAsync);
      EXPECT_DOUBLE_EQ(proc.vtime(), cm.msg_startup_us);
    } else {
      proc.recv<std::vector<char>>(0, 1);
    }
  });
}

TEST(VirtualTime, SyncSenderWaitsForDelivery) {
  const CostModel cm = CostModel::t800();
  RunConfig config{2, cm};
  spmd_run(config, [&](Proc& proc) {
    if (proc.id() == 0) {
      std::vector<char> big(100000);
      const std::size_t bytes = big.size() + 8;
      proc.send_mode<std::vector<char>>(1, 1, std::move(big), SendMode::kSync);
      EXPECT_DOUBLE_EQ(proc.vtime(), cm.transfer_us(bytes, 1));
      EXPECT_GT(proc.vtime(), cm.msg_startup_us * 100);
    } else {
      proc.recv<std::vector<char>>(0, 1);
    }
  });
}

TEST(VirtualTime, DeterministicAcrossRuns) {
  // The virtual time must not depend on host thread scheduling.
  auto run_once = [] {
    RunConfig config{8, CostModel::t800()};
    return spmd_run(config, [](Proc& proc) {
      // Irregular computation plus a ring of messages.
      proc.charge(Op::kIntOp, 100 * (proc.id() + 1));
      const int next = (proc.id() + 1) % proc.nprocs();
      const int prev = (proc.id() + proc.nprocs() - 1) % proc.nprocs();
      proc.send<int>(next, 1, proc.id());
      EXPECT_EQ(proc.recv<int>(prev, 1), prev);
      proc.charge(Op::kFloatOp, 7 * proc.id());
      proc.send<int>(prev, 2, proc.id());
      EXPECT_EQ(proc.recv<int>(next, 2), next);
    });
  };
  const auto first = run_once();
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto again = run_once();
    EXPECT_EQ(first.vtime_us, again.vtime_us);
    EXPECT_EQ(first.proc_vtimes, again.proc_vtimes);
  }
}

TEST(Stats, CountsMessagesAndOps) {
  RunConfig config{2, CostModel::t800()};
  const auto result = spmd_run(config, [](Proc& proc) {
    proc.charge(Op::kAlloc, 3);
    if (proc.id() == 0) proc.send<int>(1, 1, 5);
    if (proc.id() == 1) proc.recv<int>(0, 1);
  });
  EXPECT_EQ(result.total.messages_sent, 1u);
  EXPECT_EQ(result.total.messages_received, 1u);
  EXPECT_EQ(result.total.ops[static_cast<int>(Op::kAlloc)], 6u);
  EXPECT_GT(result.total.bytes_sent, 0u);
  EXPECT_GT(result.total.compute_us, 0.0);
  EXPECT_GT(result.total.comm_us, 0.0);
}

TEST(Stats, WallClockIsMeasured) {
  RunConfig config{2, CostModel::t800()};
  const auto result = spmd_run(config, [](Proc&) {});
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(CostModelDefaults, SyncVariantDiffersOnlyInSendMode) {
  const CostModel async = CostModel::t800();
  const CostModel sync = CostModel::t800_sync();
  EXPECT_EQ(async.default_send_mode, SendMode::kAsync);
  EXPECT_EQ(sync.default_send_mode, SendMode::kSync);
  EXPECT_DOUBLE_EQ(async.msg_startup_us, sync.msg_startup_us);
}

}  // namespace
