// Differential fuzz for the deferred charge ledger and gang settlement.
//
// Random compositions of taped skeletons (skil array_map_taped, dpfl
// fa_map_taped / fa_fold_taped) interleaved with eager skeletons
// (array_zip, array_fold, array_copy -- each an extra settlement
// point) run over random processor counts and array shapes, three
// ways:
//
//   1. interpretive charging on the threads engine,
//   2. taped charging on the pooled engine with one carrier
//      (deferred ledgers, inline settlement, gang off),
//   3. taped charging on the pooled engine with four carriers
//      (gang settlement on).
//
// All three must produce bit-identical per-processor virtual times and
// operation statistics: the taped variants are chain-identical to the
// interpretive ones by construction (DESIGN.md section 8), deferral
// only moves *when* the same adds execute (section 10), and the gang
// kernel performs per-lane IEEE adds in the scalar settle order.  The
// shapes deliberately mix ragged small grids (empty partitions, odd
// remainders) with partitions large enough to push ledgers past the
// gang batching threshold, and the gang counters assert the batched
// path really ran.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "dpfl/dpfl.h"
#include "parix/charge_tape.h"
#include "parix/executor.h"
#include "parix/runtime.h"
#include "skil/skil.h"

namespace {

using namespace skil;

struct TapeEntrySpec {
  parix::Op kind;
  std::uint64_t count;
};

enum StepKind {
  kSkilMap = 0,
  kSkilZip,
  kSkilFold,
  kSkilCopy,
  kDpflMap,
  kDpflFold,
  kStepKinds
};

struct StepSpec {
  int kind = kSkilMap;
  std::vector<TapeEntrySpec> tape;  // used by the taped step kinds
};

struct ProgramSpec {
  int p = 2;
  int rows = 1;
  int cols = 1;
  std::vector<StepSpec> steps;
};

/// Derives a random program from a seed.  The generator is the only
/// source of randomness: the same spec then drives all three runs.
ProgramSpec make_program(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  static constexpr parix::Op kOps[] = {
      parix::Op::kIntOp,        parix::Op::kFloatOp, parix::Op::kCall,
      parix::Op::kIndirectCall, parix::Op::kAlloc,   parix::Op::kCopyWord,
  };
  ProgramSpec prog;
  static constexpr int kProcs[] = {2, 4, 8};
  prog.p = kProcs[rng() % 3];
  if (rng() % 2 == 0) {
    // Ragged: remainders and empty partitions.
    prog.rows = 1 + static_cast<int>(rng() % 13);
    prog.cols = 1 + static_cast<int>(rng() % 9);
  } else {
    // Large enough that a deferred map over the local partition
    // crosses the gang batching threshold (~2048 chain adds).
    prog.rows = prog.p * (24 + static_cast<int>(rng() % 20));
    prog.cols = 17 + static_cast<int>(rng() % 16);
  }
  const int nsteps = 3 + static_cast<int>(rng() % 6);
  for (int s = 0; s < nsteps; ++s) {
    StepSpec step;
    step.kind = static_cast<int>(rng() % kStepKinds);
    const int len = 1 + static_cast<int>(rng() % 5);
    for (int i = 0; i < len; ++i)
      step.tape.push_back(
          TapeEntrySpec{kOps[rng() % 6], 1 + rng() % 4});
    prog.steps.push_back(std::move(step));
  }
  return prog;
}

/// Executes the program.  `taped` selects the tape-specialized
/// skeleton variants (deferred ledger / gang settlement path); the
/// interpretive variants charge the identical sequences eagerly
/// per element.
parix::RunResult run_program(const ProgramSpec& prog, bool taped) {
  parix::RunConfig config{prog.p, parix::CostModel::t800()};
  return parix::spmd_run(config, [&](parix::Proc& proc) {
    const auto charge_eager = [&proc](const std::vector<TapeEntrySpec>& t) {
      for (const TapeEntrySpec& e : t) proc.charge(e.kind, e.count);
    };
    const auto build_tape = [](const std::vector<TapeEntrySpec>& t) {
      parix::ChargeTape tape;
      for (const TapeEntrySpec& e : t) tape.charge(e.kind, e.count);
      return tape;
    };

    const Size shape{prog.rows, prog.cols};
    auto a = array_create<double>(
        proc, 2, shape,
        [](Index ix) { return 1.0 + 0.25 * ix[0] - 0.125 * ix[1]; });
    auto b = array_create<double>(proc, 2, shape, [](Index) { return 0.0; });
    const dpfl::Closure<double(Index)> finit(
        proc, [](Index ix) { return 0.5 * ix[0] + ix[1]; });
    auto f = dpfl::fa_create<double>(proc, 2, shape, finit);

    for (const StepSpec& step : prog.steps) {
      switch (step.kind) {
        case kSkilMap: {
          // One tape drives two consecutive map calls (a -> b, then
          // b -> a): the second replay settles against the memo entry
          // the first one probed, giving the closed/auto settlement
          // fuzz its cross-replay cache hit/miss interleavings.
          if (taped) {
            const parix::ChargeTape tape = build_tape(step.tape);
            array_map_taped(
                [](const double& v, Index ix, std::uint64_t& tapped) {
                  ++tapped;
                  return v * 0.5 + 0.0625 * ix[0] - 0.03125 * ix[1];
                },
                tape, a, b);
            array_map_taped(
                [](const double& v, Index ix, std::uint64_t& tapped) {
                  ++tapped;
                  return v * 0.5 + 0.0625 * ix[0] - 0.03125 * ix[1];
                },
                tape, b, a);
          } else {
            const auto map_fn = [&](const double& v, Index ix) {
              charge_eager(step.tape);
              return v * 0.5 + 0.0625 * ix[0] - 0.03125 * ix[1];
            };
            array_map(map_fn, a, b);
            array_map(map_fn, b, a);
          }
          break;
        }
        case kSkilZip:
          array_zip([](double x, double y) { return 0.5 * (x + y); }, a, b, b);
          std::swap(a, b);
          break;
        case kSkilFold:
          (void)array_fold([](double v) { return v; },
                           [](double x, double y) { return x + y; }, a);
          break;
        case kSkilCopy:
          array_copy(a, b);
          std::swap(a, b);
          break;
        case kDpflMap: {
          if (taped) {
            // Mirror the closure record the interpretive path
            // allocates when it constructs map_f.
            proc.charge(parix::Op::kAlloc);
            const parix::ChargeTape tape = build_tape(step.tape);
            f = dpfl::fa_map_taped(
                [](const double& v, Index ix, std::uint64_t& tapped) {
                  ++tapped;
                  return v * 0.5 + 0.015625 * ix[1];
                },
                tape, f);
          } else {
            const dpfl::Closure<double(double, Index)> map_f(
                proc, [&](double v, Index ix) {
                  charge_eager(step.tape);
                  return v * 0.5 + 0.015625 * ix[1];
                });
            f = dpfl::fa_map(map_f, f);
          }
          break;
        }
        case kDpflFold: {
          if (taped) {
            // Two closure records: conv_f and fold_f.
            proc.charge(parix::Op::kAlloc);
            proc.charge(parix::Op::kAlloc);
            const parix::ChargeTape tape = build_tape(step.tape);
            (void)dpfl::fa_fold_taped(
                [](const double& v, Index ix, std::uint64_t& tapped) {
                  ++tapped;
                  return v + 0.25 * ix[0];
                },
                [](double x, double y) { return x + y; }, tape, f);
          } else {
            const dpfl::Closure<double(double, Index)> conv(
                proc, [&](double v, Index ix) {
                  charge_eager(step.tape);
                  return v + 0.25 * ix[0];
                });
            const dpfl::Closure<double(double, double)> fold(
                proc, [](double x, double y) { return x + y; });
            (void)dpfl::fa_fold(conv, fold, f);
          }
          break;
        }
        default:
          FAIL() << "unknown step kind " << step.kind;
      }
    }
  });
}

template <class Fn>
parix::RunResult with_engine(parix::ExecutionEngine engine, Fn&& fn) {
  const parix::ExecutionEngine saved = parix::default_execution_engine();
  parix::set_default_execution_engine(engine);
  parix::RunResult result = fn();
  parix::set_default_execution_engine(saved);
  return result;
}

TEST(GangFuzz, RandomTapedCompositionsBitIdenticalAcrossPaths) {
  // Pinned to SettleMode::kGang: under the kAuto default the
  // algebraic engine would retire the replays closed-form and the
  // gang-batch assertion at the end would be vacuous (closed/auto
  // coverage is the next test).
  const parix::SettleMode saved_settle = parix::default_settle_mode();
  parix::set_default_settle_mode(parix::SettleMode::kGang);
  const parix::GangCounters before = parix::gang_counters();
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const ProgramSpec prog = make_program(seed * 0x9E3779B97F4A7C15ull + 1);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " p=" << prog.p << " " << prog.rows
                 << "x" << prog.cols << " steps=" << prog.steps.size());

    const parix::RunResult interp = with_engine(
        parix::ExecutionEngine::kThreads,
        [&] { return run_program(prog, /*taped=*/false); });

    parix::executor_set_carriers(1);
    const parix::RunResult tape_one = with_engine(
        parix::ExecutionEngine::kPooled,
        [&] { return run_program(prog, /*taped=*/true); });

    parix::executor_set_carriers(4);
    const parix::RunResult tape_gang = with_engine(
        parix::ExecutionEngine::kPooled,
        [&] { return run_program(prog, /*taped=*/true); });
    parix::executor_set_carriers(0);

    ASSERT_EQ(interp.proc_vtimes.size(), static_cast<std::size_t>(prog.p));
    ASSERT_EQ(tape_one.proc_vtimes.size(), interp.proc_vtimes.size());
    ASSERT_EQ(tape_gang.proc_vtimes.size(), interp.proc_vtimes.size());
    for (int pid = 0; pid < prog.p; ++pid) {
      SCOPED_TRACE(::testing::Message() << "proc " << pid);
      EXPECT_EQ(interp.proc_vtimes[pid], tape_one.proc_vtimes[pid]);
      EXPECT_EQ(interp.proc_vtimes[pid], tape_gang.proc_vtimes[pid]);
      EXPECT_EQ(interp.proc_stats[pid], tape_one.proc_stats[pid]);
      EXPECT_EQ(interp.proc_stats[pid], tape_gang.proc_stats[pid]);
    }
  }
  // The large shapes must have driven real gang batches in the
  // four-carrier runs; otherwise this test only exercised the inline
  // settle path and the three-way identity would be vacuous for the
  // gang kernel.
  const parix::GangCounters after = parix::gang_counters();
  EXPECT_GT(after.batches, before.batches);
  parix::set_default_settle_mode(saved_settle);
}

TEST(GangFuzz, ClosedAndAutoSettlementBitIdenticalVsInterp) {
  // The same random compositions under the PR 6 settlement modes:
  // interpretive charging (threads engine) vs taped charging settled
  // algebraically (kClosed, one carrier -- every record walks or
  // chains inline) vs taped charging under kAuto with four carriers
  // (closed-form walks with gang escalation available for chain-bound
  // residues).  The programs mix walkable replay records with eager
  // steps whose append_charge records are chain-bound, and reuse each
  // step's tape across processors and map calls, so one run exercises
  // probe (memo miss), memo hit, plain-chain and mixed interleavings
  // of all three.  All paths must agree with interp to the last bit.
  const parix::SettleMode saved_settle = parix::default_settle_mode();
  const parix::SettleCounters before = parix::settle_counters();
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const ProgramSpec prog = make_program(seed * 0xD1B54A32D192ED03ull + 5);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " p=" << prog.p << " " << prog.rows
                 << "x" << prog.cols << " steps=" << prog.steps.size());

    parix::set_default_settle_mode(saved_settle);
    const parix::RunResult interp = with_engine(
        parix::ExecutionEngine::kThreads,
        [&] { return run_program(prog, /*taped=*/false); });

    parix::set_default_settle_mode(parix::SettleMode::kClosed);
    parix::executor_set_carriers(1);
    const parix::RunResult tape_closed = with_engine(
        parix::ExecutionEngine::kPooled,
        [&] { return run_program(prog, /*taped=*/true); });

    parix::set_default_settle_mode(parix::SettleMode::kAuto);
    parix::executor_set_carriers(4);
    const parix::RunResult tape_auto = with_engine(
        parix::ExecutionEngine::kPooled,
        [&] { return run_program(prog, /*taped=*/true); });
    parix::executor_set_carriers(0);

    ASSERT_EQ(interp.proc_vtimes.size(), static_cast<std::size_t>(prog.p));
    ASSERT_EQ(tape_closed.proc_vtimes.size(), interp.proc_vtimes.size());
    ASSERT_EQ(tape_auto.proc_vtimes.size(), interp.proc_vtimes.size());
    for (int pid = 0; pid < prog.p; ++pid) {
      SCOPED_TRACE(::testing::Message() << "proc " << pid);
      EXPECT_EQ(interp.proc_vtimes[pid], tape_closed.proc_vtimes[pid]);
      EXPECT_EQ(interp.proc_vtimes[pid], tape_auto.proc_vtimes[pid]);
      EXPECT_EQ(interp.proc_stats[pid], tape_closed.proc_stats[pid]);
      EXPECT_EQ(interp.proc_stats[pid], tape_auto.proc_stats[pid]);
    }
  }
  parix::set_default_settle_mode(saved_settle);
  // The identities above would be vacuous if the algebraic engine had
  // declined every record: the counters must show closed-form walks,
  // cross-replay memo traffic (the same tape settles once per
  // processor and map call), and chain-bound records all really ran.
  const parix::SettleCounters after = parix::settle_counters();
  EXPECT_GT(after.closed_runs, before.closed_runs);
  EXPECT_GT(after.memo_hits, before.memo_hits);
  EXPECT_GT(after.closed_adds + after.memo_adds,
            before.closed_adds + before.memo_adds);
  EXPECT_GT(after.chain_records, before.chain_records);
}

}  // namespace
