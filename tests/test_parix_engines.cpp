// Tests for the execution engines: golden virtual times pinned from
// the original one-thread-per-processor implementation, differential
// determinism between the threads and pooled engines, bulk-charge
// identity, deadlock detection, and the templated spmd_run overload.
//
// The golden values (hexfloat, bit-exact) were captured from the seed
// implementation; any engine or skeleton change that moves one of them
// has changed the scientific artefact, not just the host performance.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "apps/gauss.h"
#include "apps/shortest_paths.h"
#include "parix/runtime.h"
#include "parix_golden_cases.h"
#include "support/error.h"

namespace {

using namespace skil;
using namespace skil::parix;

using skil::testing::GoldenCase;
using skil::testing::golden_cases;
using skil::testing::with_engine;

// --- golden virtual times -------------------------------------------------

TEST(EngineGolden, PooledEngineReproducesSeedVirtualTimes) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult r =
        with_engine(ExecutionEngine::kPooled, [&] { return c.run(); });
    EXPECT_EQ(r.vtime_us, c.vtime_us);
    EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
    EXPECT_EQ(r.total.messages_sent, c.messages_sent);
    EXPECT_EQ(r.total.bytes_sent, c.bytes_sent);
    EXPECT_EQ(r.total.compute_us, c.compute_us);
    EXPECT_EQ(r.total.comm_us, c.comm_us);
  }
}

TEST(EngineGolden, ThreadsEngineReproducesSeedVirtualTimes) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult r =
        with_engine(ExecutionEngine::kThreads, [&] { return c.run(); });
    EXPECT_EQ(r.vtime_us, c.vtime_us);
    EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
  }
}

// --- differential determinism ---------------------------------------------

TEST(EngineDifferential, EnginesAgreeBitForBitOnAllApps) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult threads =
        with_engine(ExecutionEngine::kThreads, [&] { return c.run(); });
    const RunResult pooled =
        with_engine(ExecutionEngine::kPooled, [&] { return c.run(); });
    EXPECT_EQ(threads.vtime_us, pooled.vtime_us);
    EXPECT_EQ(threads.proc_vtimes, pooled.proc_vtimes);
    ASSERT_EQ(threads.proc_stats.size(), pooled.proc_stats.size());
    for (std::size_t p = 0; p < threads.proc_stats.size(); ++p)
      EXPECT_EQ(threads.proc_stats[p], pooled.proc_stats[p]);
  }
}

TEST(EngineDifferential, ExplicitRunConfigEngineOverridesDefault) {
  auto body = [](Proc& proc) {
    proc.charge(Op::kFloatOp, 100 * (proc.id() + 1));
    const int next = (proc.id() + 1) % proc.nprocs();
    const int prev = (proc.id() + proc.nprocs() - 1) % proc.nprocs();
    proc.send<double>(next, 1, proc.id() * 1.5);
    proc.recv<double>(prev, 1);
  };
  RunConfig threads_config{6, CostModel::t800(), ExecutionEngine::kThreads};
  RunConfig pooled_config{6, CostModel::t800(), ExecutionEngine::kPooled};
  const RunResult threads = spmd_run(threads_config, body);
  const RunResult pooled = spmd_run(pooled_config, body);
  EXPECT_EQ(threads.proc_vtimes, pooled.proc_vtimes);
}

// --- bulk cost accounting -------------------------------------------------

TEST(ChargeElems, BitIdenticalToPlainCharge) {
  // charge_elems(kind, elems, ops) must equal charge(kind, elems * ops)
  // to the last bit: one multiply, one addition, same order.
  RunConfig config{1, CostModel::t800()};
  const RunResult plain = spmd_run(config, [](Proc& proc) {
    proc.charge(Op::kFloatOp, 37 * 19);
    proc.charge(Op::kIntOp, 1001);
    proc.charge(Op::kCopyWord, 2 * 12345);
  });
  const RunResult bulk = spmd_run(config, [](Proc& proc) {
    proc.charge_elems(Op::kFloatOp, 37, 19);
    proc.charge_elems(Op::kIntOp, 1001);
    proc.charge_elems(Op::kCopyWord, 12345, 2);
  });
  EXPECT_EQ(plain.vtime_us, bulk.vtime_us);
  EXPECT_EQ(plain.total.ops, bulk.total.ops);
  EXPECT_EQ(plain.total.compute_us, bulk.total.compute_us);
}

// --- pooled-engine specifics ----------------------------------------------

TEST(PooledEngine, DetectsAllProcessorsBlockedAsDeadlock) {
  // Both processors wait for a message nobody sends.  The pooled
  // scheduler sees every live fiber parked and poisons the machine
  // instead of hanging until the mailbox timeout.
  RunConfig config{2, CostModel::t800(), ExecutionEngine::kPooled};
  EXPECT_THROW(spmd_run(config,
                        [](Proc& proc) {
                          proc.recv<int>(1 - proc.id(), 42);
                        }),
               support::RuntimeFault);
}

TEST(PooledEngine, SurvivesManyMoreProcessorsThanHostThreads) {
  RunConfig config{64, CostModel::t800(), ExecutionEngine::kPooled};
  const RunResult r = spmd_run(config, [](Proc& proc) {
    const int next = (proc.id() + 1) % proc.nprocs();
    const int prev = (proc.id() + proc.nprocs() - 1) % proc.nprocs();
    proc.send<int>(next, 1, proc.id());
    EXPECT_EQ(proc.recv<int>(prev, 1), prev);
  });
  EXPECT_EQ(r.proc_vtimes.size(), 64u);
}

TEST(PooledEngine, NestedSpmdRunFallsBackToThreads) {
  // A body that itself calls spmd_run must not deadlock the pool.
  RunConfig outer{2, CostModel::t800(), ExecutionEngine::kPooled};
  const RunResult r = spmd_run(outer, [](Proc& proc) {
    RunConfig inner{2, CostModel::t800(), ExecutionEngine::kPooled};
    const RunResult nested = spmd_run(inner, [](Proc& inner_proc) {
      inner_proc.charge(Op::kIntOp, 10);
    });
    proc.charge_us(nested.vtime_us);
  });
  EXPECT_GT(r.vtime_us, 0.0);
}

TEST(PooledEngine, RepeatedRunsReuseThePool) {
  // Many small runs exercise fiber recycling; vtimes stay identical.
  RunConfig config{8, CostModel::t800(), ExecutionEngine::kPooled};
  auto body = [](Proc& proc) {
    const int next = (proc.id() + 1) % proc.nprocs();
    const int prev = (proc.id() + proc.nprocs() - 1) % proc.nprocs();
    proc.send<int>(next, 1, proc.id());
    proc.recv<int>(prev, 1);
  };
  const RunResult first = spmd_run(config, body);
  for (int i = 0; i < 20; ++i) {
    const RunResult again = spmd_run(config, body);
    ASSERT_EQ(first.proc_vtimes, again.proc_vtimes);
  }
}

// --- templated spmd_run ---------------------------------------------------

TEST(SpmdRunTemplated, InvokesArbitraryCallablesWithoutStdFunction) {
  struct Body {
    std::atomic<int>* count;
    void operator()(Proc& proc) const {
      count->fetch_add(proc.id() + 1);
    }
  };
  std::atomic<int> count{0};
  RunConfig config{4, CostModel::t800()};
  spmd_run(config, Body{&count});
  EXPECT_EQ(count.load(), 1 + 2 + 3 + 4);
}

TEST(SpmdRunTemplated, MutableLambdaStateIsPerCallNotPerProc) {
  // The templated overload passes one callable object shared by all
  // processors (same as the std::function path) -- captures must be
  // read-only or synchronised.
  std::atomic<int> hits{0};
  RunConfig config{3, CostModel::t800()};
  const RunResult r = spmd_run(config, [&hits](Proc& proc) {
    hits.fetch_add(1);
    proc.charge(Op::kIntOp, 5);
  });
  EXPECT_EQ(hits.load(), 3);
  EXPECT_EQ(r.proc_vtimes.size(), 3u);
}

}  // namespace
