// Tests for the execution engines: golden virtual times pinned from
// the original one-thread-per-processor implementation, differential
// determinism between the threads and pooled engines, bulk-charge
// identity, deadlock detection, and the templated spmd_run overload.
//
// The golden values (hexfloat, bit-exact) were captured from the seed
// implementation; any engine or skeleton change that moves one of them
// has changed the scientific artefact, not just the host performance.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "apps/gauss.h"
#include "apps/shortest_paths.h"
#include "parix/runtime.h"
#include "support/error.h"

namespace {

using namespace skil;
using namespace skil::parix;

constexpr std::uint64_t kSeed = 19960528;

struct GoldenCase {
  const char* name;
  RunResult (*run)();
  double vtime_us;
  std::vector<double> proc_vtimes;
  std::uint64_t messages_sent;
  std::uint64_t bytes_sent;
  double compute_us;
  double comm_us;
};

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = {
      {"gauss_skil_p4_n64",
       [] { return apps::gauss_skil(4, 64, kSeed, false).run; },
       0x1.0245ad999999bp+21,
       {0x1.0245ad999999bp+21, 0x1.0092dcp+21, 0x1.00b035999999ap+21,
        0x1.00850f3333334p+21},
       195, 126360, 0x1.ecdaba6666666p+22, 0x1.52c2ccccccce1p+18},
      {"gauss_dpfl_p4_n64",
       [] { return apps::gauss_dpfl(4, 64, kSeed).run; },
       0x1.b9b7abfffe8afp+23,
       {0x1.b9b7abfffe8afp+23, 0x1.b961326664f14p+23, 0x1.b96888cccb57ap+23,
        0x1.b95b059998249p+23},
       195, 126360, 0x1.b1ea5b999864bp+25, 0x1.e32fe66657a76p+19},
      {"gauss_c_p4_n64",
       [] { return apps::gauss_c(4, 64, kSeed).run; },
       0x1.f6404cccccccbp+19,
       {0x1.f6404cccccccbp+19, 0x1.f5a5fffffffffp+19, 0x1.f61b666666665p+19,
        0x1.f577cccccccccp+19},
       195, 101784, 0x1.cd88p+21, 0x1.42b2ffffffff7p+18},
      {"gauss_skil_p16_n64",
       [] { return apps::gauss_skil(16, 64, kSeed, false).run; },
       0x1.5de7766666664p+19,
       {0x1.5de7766666664p+19, 0x1.585d7cccccccbp+19, 0x1.588bafffffffep+19,
        0x1.57cf166666665p+19, 0x1.58d2e33333332p+19, 0x1.588baffffffffp+19,
        0x1.58b9e33333332p+19, 0x1.5787e33333331p+19, 0x1.588bafffffffep+19,
        0x1.58447cccccccbp+19, 0x1.5872afffffffep+19, 0x1.57b6166666664p+19,
        0x1.58b9e33333331p+19, 0x1.5872afffffffep+19, 0x1.58a0e33333331p+19,
        0x1.57097cccccccbp+19},
       975, 538200, 0x1.06a8b13333333p+23, 0x1.47e1399999993p+21},
      {"gauss_dpfl_p16_n64",
       [] { return apps::gauss_dpfl(16, 64, kSeed).run; },
       0x1.069fb99999fbap+22,
       {0x1.069fb99999fbap+22, 0x1.06157ccccd2eep+22, 0x1.061b433333954p+22,
        0x1.0603b00000621p+22, 0x1.0624299999fbbp+22, 0x1.061b433333954p+22,
        0x1.0621099999fbap+22, 0x1.05fac99999fbbp+22, 0x1.061b433333955p+22,
        0x1.06125ccccd2eep+22, 0x1.0618233333954p+22, 0x1.0600900000621p+22,
        0x1.0621099999fbbp+22, 0x1.0618233333954p+22, 0x1.061de99999fbap+22,
        0x1.05e5899999fbap+22},
       975, 538200, 0x1.d940680000607p+25, 0x1.97af1ccccf598p+22},
      {"gauss_c_p16_n64",
       [] { return apps::gauss_c(16, 64, kSeed).run; },
       0x1.7e1dffffffffep+18,
       {0x1.7e1dffffffffep+18, 0x1.7af7999999998p+18, 0x1.7b53ffffffffep+18,
        0x1.79daccccccccbp+18, 0x1.7be2666666665p+18, 0x1.7b53ffffffffep+18,
        0x1.7bb0666666664p+18, 0x1.794c666666665p+18, 0x1.7b53fffffffffp+18,
        0x1.7ac5999999998p+18, 0x1.7b21ffffffffep+18, 0x1.79a8ccccccccbp+18,
        0x1.7bb0666666665p+18, 0x1.7b21ffffffffep+18, 0x1.7b7e666666664p+18,
        0x1.7861999999998p+18},
       975, 507480, 0x1.cd88p+21, 0x1.2879cccccccc9p+21},
      {"gauss_skil_p4_n128",
       [] { return apps::gauss_skil(4, 128, kSeed, false).run; },
       0x1.e2bc44999999ap+23,
       {0x1.e2bc44999999ap+23, 0x1.e10a436666666p+23, 0x1.e117336666666p+23,
        0x1.e104036666666p+23},
       387, 498456, 0x1.da53674ccccccp+25, 0x1.c94219999999ep+19},
      {"gauss_dpfl_p4_n128",
       [] { return apps::gauss_dpfl(4, 128, kSeed).run; },
       0x1.a4779cb342478p+26,
       {0x1.a4779cb342478p+26, 0x1.a44b60b342479p+26, 0x1.a44cfeb342479p+26,
        0x1.a44a41800f145p+26},
       387, 498456, 0x1.a109add9a816ap+28, 0x1.a670c666b1133p+21},
      {"gauss_c_p4_n128",
       [] { return apps::gauss_c(4, 128, kSeed).run; },
       0x1.cc2f233333333p+22,
       {0x1.cc2f233333333p+22, 0x1.cc0f4p+22, 0x1.cc292p+22, 0x1.cc03ep+22},
       387, 400152, 0x1.beb2p+24, 0x1.ad1b199999998p+19},
      {"shpaths_skil_p4_n32",
       [] { return apps::shpaths_skil(4, 32, kSeed).run; },
       0x1.3ab5a00000001p+19,
       {0x1.3ab5a00000001p+19, 0x1.3a02d9999999ap+19, 0x1.39804p+19,
        0x1.39c18cccccccdp+19},
       123, 126936, 0x1.2c5244cccccccp+21, 0x1.b5899999999c2p+16},
      {"shpaths_dpfl_p4_n32",
       [] { return apps::shpaths_dpfl(4, 32, kSeed).run; },
       0x1.d870fccccccccp+21,
       {0x1.d870fccccccccp+21, 0x1.d840033333333p+21, 0x1.d82d433333333p+21,
        0x1.d83d966666666p+21},
       103, 106296, 0x1.d5c49p+23, 0x1.41333333332f2p+16},
      {"shpaths_c_opt_p4_n32",
       [] { return apps::shpaths_c(4, 32, kSeed, true).run; },
       0x1.0d55333333334p+19,
       {0x1.0d55333333334p+19, 0x1.0c914cccccccdp+19, 0x1.0c464ccccccccp+19,
        0x1.0c8799999999ap+19},
       63, 65016, 0x1.05918p+21, 0x1.c6e6666666687p+15},
      {"shpaths_skil_p16_n48",
       [] { return apps::shpaths_skil(16, 48, kSeed).run; },
       0x1.4f94acccccccep+19,
       {0x1.4f94acccccccep+19, 0x1.497ae66666665p+19, 0x1.48fcccccccccdp+19,
        0x1.4d2de66666667p+19, 0x1.48957fffffffep+19, 0x1.4894666666665p+19,
        0x1.4946b33333331p+19, 0x1.48fa999999998p+19, 0x1.4898ccccccccbp+19,
        0x1.4914b33333332p+19, 0x1.48e3cccccccccp+19, 0x1.4914b33333332p+19,
        0x1.4ce2e66666667p+19, 0x1.48fa999999998p+19, 0x1.48e07fffffffep+19,
        0x1.4ce2e66666667p+19},
       1071, 625464, 0x1.2ed1813333333p+23, 0x1.b4d44ccccccdp+19},
      {"shpaths_dpfl_p16_n48",
       [] { return apps::shpaths_dpfl(16, 48, kSeed).run; },
       0x1.e11abccccccccp+21,
       {0x1.e11abccccccccp+21, 0x1.e00af66666667p+21, 0x1.e004700000001p+21,
        0x1.e096a99999999p+21, 0x1.dff8366666667p+21, 0x1.e004700000001p+21,
        0x1.dfdea9999999bp+21, 0x1.dff8366666667p+21, 0x1.dff1b00000001p+21,
        0x1.dff8366666667p+21, 0x1.dff7fp+21, 0x1.dff1b00000001p+21,
        0x1.e083e99999999p+21, 0x1.dfeae33333334p+21, 0x1.dff8366666668p+21,
        0x1.e083e99999999p+21},
       927, 541368, 0x1.daf8dp+25, 0x1.4b171999999b6p+19},
      {"shpaths_c_opt_p16_n48",
       [] { return apps::shpaths_c(16, 48, kSeed, true).run; },
       0x1.1da67ffffffffp+19,
       {0x1.1da67ffffffffp+19, 0x1.1980666666664p+19, 0x1.19664cccccccbp+19,
        0x1.1baf333333332p+19, 0x1.1935666666664p+19, 0x1.19664cccccccbp+19,
        0x1.18cf333333331p+19, 0x1.1935666666663p+19, 0x1.191b4cccccccbp+19,
        0x1.1935666666663p+19, 0x1.19344cccccccbp+19, 0x1.191b4cccccccap+19,
        0x1.1b64333333332p+19, 0x1.1900199999997p+19, 0x1.1935666666664p+19,
        0x1.1b64333333332p+19},
       735, 429240, 0x1.08bbccccccccap+23, 0x1.12be199999997p+19},
      {"gauss_skil_pivot_p4_n32",
       [] { return apps::gauss_skil(4, 32, kSeed, true).run; },
       0x1.ee1b866666666p+18,
       {0x1.ee1b866666666p+18, 0x1.eaa6933333333p+18, 0x1.eb37c66666666p+18,
        0x1.ea64f99999999p+18},
       339, 50712, 0x1.69eab6666666dp+20, 0x1.0359ffffffffp+19},
  };
  return cases;
}

/// Runs `fn` with `engine` as the process-wide default, restoring the
/// previous default afterwards.
template <class Fn>
auto with_engine(ExecutionEngine engine, Fn&& fn) {
  const ExecutionEngine saved = default_execution_engine();
  set_default_execution_engine(engine);
  auto result = fn();
  set_default_execution_engine(saved);
  return result;
}

// --- golden virtual times -------------------------------------------------

TEST(EngineGolden, PooledEngineReproducesSeedVirtualTimes) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult r =
        with_engine(ExecutionEngine::kPooled, [&] { return c.run(); });
    EXPECT_EQ(r.vtime_us, c.vtime_us);
    EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
    EXPECT_EQ(r.total.messages_sent, c.messages_sent);
    EXPECT_EQ(r.total.bytes_sent, c.bytes_sent);
    EXPECT_EQ(r.total.compute_us, c.compute_us);
    EXPECT_EQ(r.total.comm_us, c.comm_us);
  }
}

TEST(EngineGolden, ThreadsEngineReproducesSeedVirtualTimes) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult r =
        with_engine(ExecutionEngine::kThreads, [&] { return c.run(); });
    EXPECT_EQ(r.vtime_us, c.vtime_us);
    EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
  }
}

// --- differential determinism ---------------------------------------------

TEST(EngineDifferential, EnginesAgreeBitForBitOnAllApps) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult threads =
        with_engine(ExecutionEngine::kThreads, [&] { return c.run(); });
    const RunResult pooled =
        with_engine(ExecutionEngine::kPooled, [&] { return c.run(); });
    EXPECT_EQ(threads.vtime_us, pooled.vtime_us);
    EXPECT_EQ(threads.proc_vtimes, pooled.proc_vtimes);
    ASSERT_EQ(threads.proc_stats.size(), pooled.proc_stats.size());
    for (std::size_t p = 0; p < threads.proc_stats.size(); ++p)
      EXPECT_EQ(threads.proc_stats[p], pooled.proc_stats[p]);
  }
}

TEST(EngineDifferential, ExplicitRunConfigEngineOverridesDefault) {
  auto body = [](Proc& proc) {
    proc.charge(Op::kFloatOp, 100 * (proc.id() + 1));
    const int next = (proc.id() + 1) % proc.nprocs();
    const int prev = (proc.id() + proc.nprocs() - 1) % proc.nprocs();
    proc.send<double>(next, 1, proc.id() * 1.5);
    proc.recv<double>(prev, 1);
  };
  RunConfig threads_config{6, CostModel::t800(), ExecutionEngine::kThreads};
  RunConfig pooled_config{6, CostModel::t800(), ExecutionEngine::kPooled};
  const RunResult threads = spmd_run(threads_config, body);
  const RunResult pooled = spmd_run(pooled_config, body);
  EXPECT_EQ(threads.proc_vtimes, pooled.proc_vtimes);
}

// --- bulk cost accounting -------------------------------------------------

TEST(ChargeElems, BitIdenticalToPlainCharge) {
  // charge_elems(kind, elems, ops) must equal charge(kind, elems * ops)
  // to the last bit: one multiply, one addition, same order.
  RunConfig config{1, CostModel::t800()};
  const RunResult plain = spmd_run(config, [](Proc& proc) {
    proc.charge(Op::kFloatOp, 37 * 19);
    proc.charge(Op::kIntOp, 1001);
    proc.charge(Op::kCopyWord, 2 * 12345);
  });
  const RunResult bulk = spmd_run(config, [](Proc& proc) {
    proc.charge_elems(Op::kFloatOp, 37, 19);
    proc.charge_elems(Op::kIntOp, 1001);
    proc.charge_elems(Op::kCopyWord, 12345, 2);
  });
  EXPECT_EQ(plain.vtime_us, bulk.vtime_us);
  EXPECT_EQ(plain.total.ops, bulk.total.ops);
  EXPECT_EQ(plain.total.compute_us, bulk.total.compute_us);
}

// --- pooled-engine specifics ----------------------------------------------

TEST(PooledEngine, DetectsAllProcessorsBlockedAsDeadlock) {
  // Both processors wait for a message nobody sends.  The pooled
  // scheduler sees every live fiber parked and poisons the machine
  // instead of hanging until the mailbox timeout.
  RunConfig config{2, CostModel::t800(), ExecutionEngine::kPooled};
  EXPECT_THROW(spmd_run(config,
                        [](Proc& proc) {
                          proc.recv<int>(1 - proc.id(), 42);
                        }),
               support::RuntimeFault);
}

TEST(PooledEngine, SurvivesManyMoreProcessorsThanHostThreads) {
  RunConfig config{64, CostModel::t800(), ExecutionEngine::kPooled};
  const RunResult r = spmd_run(config, [](Proc& proc) {
    const int next = (proc.id() + 1) % proc.nprocs();
    const int prev = (proc.id() + proc.nprocs() - 1) % proc.nprocs();
    proc.send<int>(next, 1, proc.id());
    EXPECT_EQ(proc.recv<int>(prev, 1), prev);
  });
  EXPECT_EQ(r.proc_vtimes.size(), 64u);
}

TEST(PooledEngine, NestedSpmdRunFallsBackToThreads) {
  // A body that itself calls spmd_run must not deadlock the pool.
  RunConfig outer{2, CostModel::t800(), ExecutionEngine::kPooled};
  const RunResult r = spmd_run(outer, [](Proc& proc) {
    RunConfig inner{2, CostModel::t800(), ExecutionEngine::kPooled};
    const RunResult nested = spmd_run(inner, [](Proc& inner_proc) {
      inner_proc.charge(Op::kIntOp, 10);
    });
    proc.charge_us(nested.vtime_us);
  });
  EXPECT_GT(r.vtime_us, 0.0);
}

TEST(PooledEngine, RepeatedRunsReuseThePool) {
  // Many small runs exercise fiber recycling; vtimes stay identical.
  RunConfig config{8, CostModel::t800(), ExecutionEngine::kPooled};
  auto body = [](Proc& proc) {
    const int next = (proc.id() + 1) % proc.nprocs();
    const int prev = (proc.id() + proc.nprocs() - 1) % proc.nprocs();
    proc.send<int>(next, 1, proc.id());
    proc.recv<int>(prev, 1);
  };
  const RunResult first = spmd_run(config, body);
  for (int i = 0; i < 20; ++i) {
    const RunResult again = spmd_run(config, body);
    ASSERT_EQ(first.proc_vtimes, again.proc_vtimes);
  }
}

// --- templated spmd_run ---------------------------------------------------

TEST(SpmdRunTemplated, InvokesArbitraryCallablesWithoutStdFunction) {
  struct Body {
    std::atomic<int>* count;
    void operator()(Proc& proc) const {
      count->fetch_add(proc.id() + 1);
    }
  };
  std::atomic<int> count{0};
  RunConfig config{4, CostModel::t800()};
  spmd_run(config, Body{&count});
  EXPECT_EQ(count.load(), 1 + 2 + 3 + 4);
}

TEST(SpmdRunTemplated, MutableLambdaStateIsPerCallNotPerProc) {
  // The templated overload passes one callable object shared by all
  // processors (same as the std::function path) -- captures must be
  // read-only or synchronised.
  std::atomic<int> hits{0};
  RunConfig config{3, CostModel::t800()};
  const RunResult r = spmd_run(config, [&hits](Proc& proc) {
    hits.fetch_add(1);
    proc.charge(Op::kIntOp, 5);
  });
  EXPECT_EQ(hits.load(), 3);
  EXPECT_EQ(r.proc_vtimes.size(), 3u);
}

}  // namespace
