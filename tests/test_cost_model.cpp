// Tests pinning down the cost model's structural properties (the
// calibration constants themselves are documented in DESIGN.md; these
// tests check relationships, not absolute values).
#include <gtest/gtest.h>

#include "parix/cost_model.h"

namespace {

using namespace skil::parix;

TEST(CostModel, UnitLookupMatchesFields) {
  const CostModel cm = CostModel::t800();
  EXPECT_DOUBLE_EQ(cm.unit(Op::kIntOp), cm.int_op_us);
  EXPECT_DOUBLE_EQ(cm.unit(Op::kFloatOp), cm.float_op_us);
  EXPECT_DOUBLE_EQ(cm.unit(Op::kCall), cm.call_us);
  EXPECT_DOUBLE_EQ(cm.unit(Op::kIndirectCall), cm.indirect_call_us);
  EXPECT_DOUBLE_EQ(cm.unit(Op::kAlloc), cm.alloc_us);
  EXPECT_DOUBLE_EQ(cm.unit(Op::kCopyWord), cm.copy_word_us);
}

TEST(CostModel, TransferGrowsWithBytesAndHops) {
  const CostModel cm = CostModel::t800();
  EXPECT_LT(cm.transfer_us(8, 1), cm.transfer_us(8000, 1));
  EXPECT_LT(cm.transfer_us(8, 1), cm.transfer_us(8, 5));
  // One hop carries no store-and-forward penalty beyond startup.
  EXPECT_DOUBLE_EQ(cm.transfer_us(0, 1), cm.msg_startup_us);
  EXPECT_DOUBLE_EQ(cm.transfer_us(0, 0), cm.msg_startup_us);
  EXPECT_DOUBLE_EQ(cm.transfer_us(0, 3), cm.msg_startup_us +
                                             2 * cm.msg_per_hop_us);
}

TEST(CostModel, MechanismOrdering) {
  // The language-mechanism hierarchy the reproduction relies on:
  // instantiated-call residual < plain element ops < graph-reduction
  // apply; a nursery cell allocation is cheap, a reducer application
  // is not.
  const CostModel cm = CostModel::t800();
  EXPECT_LT(cm.call_us, cm.int_op_us);
  EXPECT_LT(cm.int_op_us, cm.float_op_us + 1e-12);
  EXPECT_LT(cm.float_op_us, cm.indirect_call_us + 1e-12);
  EXPECT_LT(cm.alloc_us, cm.indirect_call_us);
  EXPECT_LT(cm.copy_word_us, cm.call_us);
}

TEST(CostModel, MessageStartupDominatesSmallMessages) {
  // Parix software overhead: a small message is almost all startup --
  // the regime in which small partitions on large networks lose
  // efficiency (paper section 5.2's discussion of Figure 1).
  const CostModel cm = CostModel::t800();
  EXPECT_GT(cm.msg_startup_us, 100 * cm.msg_per_byte_us);
}

TEST(Stats, AggregationSums) {
  Stats a, b;
  a.ops[0] = 5;
  a.messages_sent = 2;
  a.bytes_sent = 100;
  a.compute_us = 1.5;
  b.ops[0] = 7;
  b.messages_received = 3;
  b.comm_us = 2.5;
  a += b;
  EXPECT_EQ(a.ops[0], 12u);
  EXPECT_EQ(a.messages_sent, 2u);
  EXPECT_EQ(a.messages_received, 3u);
  EXPECT_EQ(a.bytes_sent, 100u);
  EXPECT_DOUBLE_EQ(a.compute_us, 1.5);
  EXPECT_DOUBLE_EQ(a.comm_us, 2.5);
}

}  // namespace
