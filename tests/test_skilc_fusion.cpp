// Tests for the compiler-side skeleton fusion pass (DESIGN.md section
// 13): the advisory lint pass (byte-exact fixture goldens, JSON
// report), the compile()-time rewrite (synthesized __fused_ wrappers,
// intermediate elimination, re-typecheck), and every rejection reason
// (impure stage naming the offending site, partial application,
// intermediate with another reader, unresolved stages).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "skilc/analyze.h"
#include "skilc/compiler.h"
#include "skilc/diagnostics.h"
#include "skilc/fusion.h"
#include "skilc/parser.h"
#include "skilc/typecheck.h"

namespace {

using namespace skil::skilc;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string fixture_source(const std::string& name) {
  const std::string dir = SKIL_LINT_FIXTURE_DIR;
  return read_file(dir + "/" + name + ".skil");
}

std::string lint_fixture(const std::string& name,
                         const AnalyzeOptions& options = {}) {
  DiagnosticSink sink;
  lint_source(fixture_source(name), sink, options);
  return sink.render(name + ".skil");
}

std::string golden(const std::string& name) {
  const std::string dir = SKIL_LINT_FIXTURE_DIR;
  return read_file(dir + "/" + name + ".expected");
}

/// Occurrences of `needle` in `haystack`.
std::size_t count_in(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + 1))
    ++count;
  return count;
}

// --- the advisory pass against the fixture goldens -------------------------

TEST(FusionFixtures, MapMapAdvisoryMatchesGolden) {
  EXPECT_EQ(lint_fixture("fuse_map_map"), golden("fuse_map_map"));
}

TEST(FusionFixtures, MapFoldAdvisoryMatchesGolden) {
  EXPECT_EQ(lint_fixture("fuse_map_fold"), golden("fuse_map_fold"));
}

TEST(FusionFixtures, ImpureCompositionRejectionMatchesGolden) {
  EXPECT_EQ(lint_fixture("fuse_impure_reject"), golden("fuse_impure_reject"));
}

TEST(FusionFixtures, GoldensAreNonEmptyAndNameTheDecision) {
  EXPECT_NE(golden("fuse_map_map").find("can fuse"), std::string::npos);
  EXPECT_NE(golden("fuse_map_fold").find("can fuse"), std::string::npos);
  EXPECT_NE(golden("fuse_impure_reject").find("not fused"),
            std::string::npos);
  // The rejection must name the offending site inside the stage.
  EXPECT_NE(golden("fuse_impure_reject")
                .find("calls the impure builtin 'rand' at line 19:49"),
            std::string::npos);
}

TEST(FusionFixtures, NoFusionOptionSilencesTheAdvisory) {
  AnalyzeOptions options;
  options.fusion = false;
  EXPECT_EQ(lint_fixture("fuse_map_map", options), "");
}

TEST(FusionFixtures, JsonReportMatchesGolden) {
  DiagnosticSink sink;
  lint_source(fixture_source("fuse_map_map"), sink);
  EXPECT_EQ(sink.render_json("fuse_map_map.skil"),
            golden("fuse_map_map.json"));
}

// --- the compile()-time rewrite --------------------------------------------

CompileOptions fuse_options() {
  CompileOptions options;
  options.fuse = true;
  return options;
}

TEST(FusionRewrite, MapMapComposesIntoOneCallThroughAWrapper) {
  const CompileResult result =
      compile(fixture_source("fuse_map_map"), fuse_options());
  EXPECT_EQ(result.fusion.seen, 1);
  EXPECT_EQ(result.fusion.fused_map_map, 1);
  EXPECT_EQ(result.fusion.rejected(), 0);
  ASSERT_NE(result.typed.find_function("__fused_shift_scale"), nullptr);
  ASSERT_NE(result.typed.find_function("run"), nullptr);
  // The two map statements collapsed into one.
  EXPECT_EQ(result.typed.find_function("run")->body.size(), 1u);
  EXPECT_NE(result.c_code.find("__fused_shift_scale"), std::string::npos);
  // One decision note, marked as an actual rewrite.
  bool saw_note = false;
  for (const Diagnostic& diag : result.diagnostics) {
    if (diag.pass != "fusion") continue;
    saw_note = true;
    EXPECT_EQ(diag.severity, Severity::kNote);
    EXPECT_NE(diag.message.find("fused 'array_map'"), std::string::npos);
    EXPECT_NE(diag.message.find("eliminates the intermediate 'T'"),
              std::string::npos);
  }
  EXPECT_TRUE(saw_note);
}

TEST(FusionRewrite, MapFoldComposesIntoTheConversion) {
  const CompileResult result =
      compile(fixture_source("fuse_map_fold"), fuse_options());
  EXPECT_EQ(result.fusion.seen, 1);
  EXPECT_EQ(result.fusion.fused_map_fold, 1);
  ASSERT_NE(result.typed.find_function("__fused_ident_square"), nullptr);
  ASSERT_NE(result.typed.find_function("sum_of_squares"), nullptr);
  // The map statement is gone; only the return remains and the fold
  // now reads the original input A.
  EXPECT_EQ(result.typed.find_function("sum_of_squares")->body.size(), 1u);
  EXPECT_NE(result.c_code.find("__fused_ident_square"), std::string::npos);
}

TEST(FusionRewrite, ChainOfThreeMapsFusesToASingleCall) {
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    Index mk_index(int i);
    int part_lower(array <$t> a);
    int part_upper(array <$t> a);

    void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {
      int i;
      for (i = part_lower(a); i < part_upper(a); i = i + 1)
        b[i] = map_f(a[i], mk_index(i));
    }

    float f (float elem, Index ix) { return elem * 2.0; }
    float g (float elem, Index ix) { return elem + 1.0; }
    float h (float elem, Index ix) { return elem * elem; }

    void run (array <float> A, array <float> T1, array <float> T2,
              array <float> B) {
      array_map(f, A, T1);
      array_map(g, T1, T2);
      array_map(h, T2, B);
    }
  )",
                                       fuse_options());
  EXPECT_EQ(result.fusion.seen, 2);
  EXPECT_EQ(result.fusion.fused_map_map, 2);
  ASSERT_NE(result.typed.find_function("run"), nullptr);
  EXPECT_EQ(result.typed.find_function("run")->body.size(), 1u);
  // The second wrapper composes h after the first wrapper.
  EXPECT_NE(result.typed.find_function("__fused_g_f"), nullptr);
  EXPECT_NE(result.typed.find_function("__fused_h___fused_g_f"), nullptr);
}

TEST(FusionRewrite, ImpureStageIsRejectedNamingTheOffendingSite) {
  // With the skeleton-purity gate on, compile() refuses the program
  // outright -- the gate precedes the rewrite.
  EXPECT_THROW(compile(fixture_source("fuse_impure_reject"), fuse_options()),
               AnalysisError);

  // With the gate off, the fusion pass still defends itself: the
  // composition is recognised but rejected, naming the impure call.
  CompileOptions options = fuse_options();
  options.analyze.skeleton_purity = false;
  const CompileResult result =
      compile(fixture_source("fuse_impure_reject"), options);
  EXPECT_EQ(result.fusion.seen, 1);
  EXPECT_EQ(result.fusion.rejected_impure, 1);
  EXPECT_EQ(result.fusion.fused(), 0);
  EXPECT_EQ(result.typed.find_function("__fused_jitter_scale"), nullptr);
  bool saw_rejection = false;
  for (const Diagnostic& diag : result.diagnostics) {
    if (diag.pass != "fusion") continue;
    saw_rejection = true;
    EXPECT_NE(diag.message.find("not fused: customizing function 'jitter' "
                                "calls the impure builtin 'rand' at line "
                                "19:49"),
              std::string::npos)
        << diag.message;
  }
  EXPECT_TRUE(saw_rejection);
  // No wrapper was synthesized; both map passes survive (instantiated
  // once per customizing function).
  EXPECT_EQ(result.c_code.find("__fused_"), std::string::npos);
  EXPECT_EQ(count_in(result.c_code, "void array_map_"), 2u);
}

TEST(FusionRewrite, PartiallyAppliedStageIsRejected) {
  // addk writes nothing, so the program passes the purity gate; the
  // fusion pass still refuses to compose through a bound argument.
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    Index mk_index(int i);
    int part_lower(array <$t> a);
    int part_upper(array <$t> a);

    void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {
      int i;
      for (i = part_lower(a); i < part_upper(a); i = i + 1)
        b[i] = map_f(a[i], mk_index(i));
    }

    float dbl (float elem, Index ix) { return elem * 2.0; }
    float addk (float k, float elem, Index ix) { return elem + k; }

    void run (float k, array <float> A, array <float> T, array <float> B) {
      array_map(dbl, A, T);
      array_map(addk(k), T, B);
    }
  )",
                                       fuse_options());
  EXPECT_EQ(result.fusion.seen, 1);
  EXPECT_EQ(result.fusion.rejected_partial, 1);
  EXPECT_EQ(result.fusion.fused(), 0);
  bool saw_rejection = false;
  for (const Diagnostic& diag : result.diagnostics) {
    if (diag.pass != "fusion") continue;
    saw_rejection = true;
    EXPECT_NE(diag.message.find("'addk' is partially applied"),
              std::string::npos)
        << diag.message;
  }
  EXPECT_TRUE(saw_rejection);
}

TEST(FusionRewrite, IntermediateWithAnotherReaderIsRejected) {
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    Index mk_index(int i);
    int part_lower(array <$t> a);
    int part_upper(array <$t> a);

    void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {
      int i;
      for (i = part_lower(a); i < part_upper(a); i = i + 1)
        b[i] = map_f(a[i], mk_index(i));
    }

    float dbl (float elem, Index ix) { return elem * 2.0; }
    float inc (float elem, Index ix) { return elem + 1.0; }

    void run (array <float> A, array <float> T, array <float> B,
              array <float> C) {
      array_map(dbl, A, T);
      array_map(inc, T, B);
      array_map(inc, T, C);
    }
  )",
                                       fuse_options());
  EXPECT_EQ(result.fusion.seen, 1);
  EXPECT_EQ(result.fusion.rejected_intermediate, 1);
  EXPECT_EQ(result.fusion.fused(), 0);
  bool saw_rejection = false;
  for (const Diagnostic& diag : result.diagnostics) {
    if (diag.pass != "fusion") continue;
    saw_rejection = true;
    EXPECT_NE(
        diag.message.find("the intermediate 'T' has another reader at line"),
        std::string::npos)
        << diag.message;
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_EQ(result.c_code.find("__fused_"), std::string::npos);
}

TEST(FusionRewrite, UnresolvedStageIsRejected) {
  // The fold's conversion is a functional parameter, not a defined
  // function: nothing to compose with, so the matcher must reject the
  // composition rather than crash or mis-fuse it.
  const CompileResult result = compile(R"(
    pardata array <$t> impl;
    Index mk_index(int i);
    int part_lower(array <$t> a);
    int part_upper(array <$t> a);

    void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {
      int i;
      for (i = part_lower(a); i < part_upper(a); i = i + 1)
        b[i] = map_f(a[i], mk_index(i));
    }

    $t2 array_fold ($t2 conv_f ($t1, Index), $t2 fold_f ($t2, $t2),
                    array <$t1> a) {
      $t2 acc = conv_f(a[part_lower(a)], mk_index(part_lower(a)));
      int i;
      for (i = part_lower(a) + 1; i < part_upper(a); i = i + 1)
        acc = fold_f(acc, conv_f(a[i], mk_index(i)));
      return acc;
    }

    float dbl (float elem, Index ix) { return elem * 2.0; }

    float run (float conv_p (float, Index), array <float> A,
               array <float> T) {
      array_map(dbl, A, T);
      return array_fold(conv_p, (+), T);
    }
  )",
                                       fuse_options());
  EXPECT_EQ(result.fusion.seen, 1);
  EXPECT_EQ(result.fusion.rejected_shape, 1);
  EXPECT_EQ(result.fusion.fused(), 0);
}

TEST(FusionRewrite, OffByDefaultAndAdvisoryNeverMutates) {
  // compile() without CompileOptions::fuse performs no rewrite.
  const CompileResult plain = compile(fixture_source("fuse_map_map"));
  EXPECT_EQ(plain.fusion.seen, 0);
  EXPECT_EQ(plain.fusion.fused(), 0);
  EXPECT_EQ(plain.typed.find_function("__fused_shift_scale"), nullptr);
  EXPECT_EQ(plain.c_code.find("__fused_"), std::string::npos);
  EXPECT_EQ(plain.typed.find_function("run")->body.size(), 2u);

  // analyze_fusion() reports but leaves the program untouched.
  Program program = parse(fixture_source("fuse_map_map"));
  typecheck(program);
  const std::size_t functions_before = program.functions.size();
  const std::size_t stmts_before =
      program.find_function("run")->body.size();
  DiagnosticSink sink;
  const FusionStats stats = analyze_fusion(program, sink);
  EXPECT_EQ(stats.fused_map_map, 1);
  EXPECT_EQ(program.functions.size(), functions_before);
  EXPECT_EQ(program.find_function("run")->body.size(), stmts_before);
}

}  // namespace
