// Tests for the semantic analysis layer: the CFG builder, the
// dataflow passes, the span-carrying diagnostics of every pipeline
// stage, and the lint_source front door used by skil-lint.
//
// The fixture corpus under tests/lint_fixtures/ is asserted
// byte-exactly against its golden .expected renderings: the clean
// fixtures (including the paper's section 2.4 example) must produce
// zero findings, the seeded-defect fixtures exactly their goldens.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "skilc/analyze.h"
#include "skilc/cfg.h"
#include "skilc/compiler.h"
#include "skilc/dataflow.h"
#include "skilc/diagnostics.h"
#include "skilc/instantiate.h"
#include "skilc/parser.h"
#include "skilc/typecheck.h"
#include "support/error.h"

namespace {

using namespace skil::skilc;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string lint_fixture(const std::string& name) {
  const std::string dir = SKIL_LINT_FIXTURE_DIR;
  DiagnosticSink sink;
  lint_source(read_file(dir + "/" + name + ".skil"), sink);
  return sink.render(name + ".skil");
}

std::string golden(const std::string& name) {
  const std::string dir = SKIL_LINT_FIXTURE_DIR;
  return read_file(dir + "/" + name + ".expected");
}

// --- golden fixtures -------------------------------------------------------

TEST(LintFixtures, CleanPaperMapHasNoFindings) {
  EXPECT_EQ(lint_fixture("clean_paper_map"), "");
}

TEST(LintFixtures, CleanFoldHasNoFindings) {
  EXPECT_EQ(lint_fixture("clean_fold"), "");
}

TEST(LintFixtures, CleanControlHasNoFindings) {
  EXPECT_EQ(lint_fixture("clean_control"), "");
}

TEST(LintFixtures, UseBeforeInit) {
  EXPECT_EQ(lint_fixture("use_before_init"), golden("use_before_init"));
}

TEST(LintFixtures, UseBeforeInitBranch) {
  EXPECT_EQ(lint_fixture("use_before_init_branch"),
            golden("use_before_init_branch"));
}

TEST(LintFixtures, DeadStore) {
  EXPECT_EQ(lint_fixture("dead_store"), golden("dead_store"));
}

TEST(LintFixtures, UnusedVar) {
  EXPECT_EQ(lint_fixture("unused_var"), golden("unused_var"));
}

TEST(LintFixtures, UnreachableReturn) {
  EXPECT_EQ(lint_fixture("unreachable_return"), golden("unreachable_return"));
}

TEST(LintFixtures, UnreachableLoop) {
  EXPECT_EQ(lint_fixture("unreachable_loop"), golden("unreachable_loop"));
}

TEST(LintFixtures, ImpureMapArg) {
  EXPECT_EQ(lint_fixture("impure_map_arg"), golden("impure_map_arg"));
}

TEST(LintFixtures, ImpureFoldBuiltin) {
  EXPECT_EQ(lint_fixture("impure_fold_builtin"),
            golden("impure_fold_builtin"));
}

TEST(LintFixtures, ShadowPardata) {
  EXPECT_EQ(lint_fixture("shadow_pardata"), golden("shadow_pardata"));
}

TEST(LintFixtures, GoldenDefectFixturesAreNonEmpty) {
  // Guards against a regression that silences every pass at once: the
  // byte-exact comparisons above would all trivially hold if both
  // sides were empty.
  for (const char* name :
       {"use_before_init", "dead_store", "unused_var", "unreachable_return",
        "impure_map_arg", "shadow_pardata"}) {
    EXPECT_FALSE(golden(name).empty()) << name;
  }
}

// --- the compile() gate ----------------------------------------------------

TEST(AnalyzeGate, CompileRejectsImpureMapArgumentNamingTheWrite) {
  const std::string dir = SKIL_LINT_FIXTURE_DIR;
  const std::string source = read_file(dir + "/impure_map_arg.skil");
  try {
    compile(source);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("skil analysis:"), std::string::npos) << what;
    EXPECT_NE(what.find("free variable 'base'"), std::string::npos) << what;
    EXPECT_NE(what.find("assigns 'base'"), std::string::npos) << what;
    EXPECT_GT(error.line(), 0);
    EXPECT_GT(error.column(), 0);
  }
}

TEST(AnalyzeGate, CompileRejectsUseBeforeInit) {
  EXPECT_THROW(compile(R"(
    int f (int n) {
      int x;
      return x + n;
    }
  )"),
               AnalysisError);
}

TEST(AnalyzeGate, DisabledPassLetsTheProgramCompile) {
  AnalyzeOptions options;
  options.init = false;
  const CompileResult result = compile(R"(
    int f (int n) {
      int x;
      return x + n;
    }
  )",
                                       options);
  EXPECT_NE(result.c_code.find("int f(int n)"), std::string::npos);
}

TEST(AnalyzeGate, WarningsDoNotBlockCompilationAndAreReturned) {
  const CompileResult result = compile(R"(
    int f (int n, int unused) { return n; }
  )");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].pass, "unused");
  EXPECT_EQ(result.diagnostics[0].severity, Severity::kWarning);
}

// --- span-carrying errors from the earlier pipeline stages -----------------

TEST(SpanErrors, LexerErrorCarriesLineAndColumn) {
  try {
    parse("int f (int x) { return x @ 1; }");
    FAIL() << "expected ContractError";
  } catch (const skil::support::ContractError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 1:"), std::string::npos) << what;
    EXPECT_EQ(error.line(), 1);
    EXPECT_GT(error.column(), 0);
  }
}

TEST(SpanErrors, MalformedSectionIsASpannedParseError) {
  try {
    parse("int f (int x) { return (+ x; }");
    FAIL() << "expected ContractError";
  } catch (const skil::support::ContractError& error) {
    EXPECT_EQ(error.line(), 1);
    EXPECT_GT(error.column(), 0);
  }
}

TEST(SpanErrors, UnboundNameIsASpannedTypeError) {
  try {
    Program program = parse("int f (int x) {\n  return x + missing;\n}");
    typecheck(program);
    FAIL() << "expected TypeError";
  } catch (const TypeError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 2:"), std::string::npos) << what;
    EXPECT_EQ(error.line(), 2);
    EXPECT_GT(error.column(), 0);
    EXPECT_NE(std::string(error.bare()).find("missing"), std::string::npos);
  }
}

TEST(SpanErrors, ArityMismatchedPartialApplicationIsSpanned) {
  // above(1.0, 2.0, mk_index(0), 9) applies one argument too many.
  try {
    Program program = parse(R"(
      Index mk_index(int i);
      int above (float t, float e, Index ix) { return e >= t; }
      int use (float a, float b) {
        return above(a, b, mk_index(0), 9);
      }
    )");
    typecheck(program);
    FAIL() << "expected TypeError";
  } catch (const TypeError& error) {
    EXPECT_EQ(error.line(), 5);
    EXPECT_GT(error.column(), 0);
  }
}

TEST(SpanErrors, TypeCollectGathersMultipleFunctions) {
  Program program = parse(R"(
    int f (int x) { return unknown_one; }
    int g (int y) { return unknown_two; }
  )");
  DiagnosticSink sink;
  EXPECT_FALSE(typecheck_collect(program, sink));
  ASSERT_EQ(sink.diagnostics().size(), 2u);
  EXPECT_EQ(sink.diagnostics()[0].pass, "type");
  EXPECT_EQ(sink.diagnostics()[0].span.line, 2);
  EXPECT_EQ(sink.diagnostics()[1].span.line, 3);
}

TEST(SpanErrors, LintSourceTurnsParseErrorsIntoDiagnostics) {
  DiagnosticSink sink;
  lint_source("int f (int x) { return x + ; }", sink);
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(sink.diagnostics()[0].pass, "parse");
  EXPECT_EQ(sink.diagnostics()[0].span.line, 1);
}

TEST(SpanErrors, InstantiationErrorCarriesTheCallSiteSpan) {
  try {
    compile(R"(
      int apply (int f (int), int x) { return f(x); }
      int twice (int g (int), int x) { return g(g(x)); }
      int inc (int x) { return x + 1; }
      int use (int x) { return apply(twice(inc), x); }
    )");
    FAIL() << "expected InstantiationError";
  } catch (const InstantiationError& error) {
    EXPECT_EQ(error.line(), 5);
    EXPECT_GT(error.column(), 0);
  }
}

// --- CFG and dataflow unit coverage ---------------------------------------

TEST(Cfg, WhileOneHasNoExitEdgeAndTrailingCodeIsUnreachable) {
  Program program = parse(R"(
    int spin (int x) {
      while (1) { x = x + 1; }
      return x;
    }
  )");
  typecheck(program);
  const Cfg cfg = build_cfg(program.functions[0]);
  const std::vector<bool> reachable = cfg.reachable();
  bool found_unreachable_action = false;
  for (const BasicBlock& block : cfg.blocks)
    if (!reachable[block.id] && !block.actions.empty())
      found_unreachable_action = true;
  EXPECT_TRUE(found_unreachable_action);
}

TEST(Cfg, ParamsAndLocalsAreNumberedParamsFirst) {
  Program program = parse(R"(
    int f (int a, int b) {
      int c = a + b;
      return c;
    }
  )");
  typecheck(program);
  const Cfg cfg = build_cfg(program.functions[0]);
  ASSERT_EQ(cfg.num_locals(), 3u);
  EXPECT_TRUE(cfg.locals[0].is_param);
  EXPECT_TRUE(cfg.locals[1].is_param);
  EXPECT_FALSE(cfg.locals[2].is_param);
  EXPECT_EQ(cfg.locals[2].name, "c");
}

TEST(Dataflow, BitVecBasics) {
  BitVec bits(70);
  bits.set(0);
  bits.set(69);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(69));
  EXPECT_FALSE(bits.test(35));
  BitVec ones(70, true);
  ones.subtract(bits);
  EXPECT_FALSE(ones.test(69));
  EXPECT_TRUE(ones.test(35));
}

}  // namespace
