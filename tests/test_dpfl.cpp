// Tests for the DPFL functional baseline: same semantics as the Skil
// skeletons, higher modeled cost.
#include <gtest/gtest.h>

#include <cstdint>

#include "dpfl/dpfl.h"
#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using dpfl::Closure;
using dpfl::FArray;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;

TEST(FArray, CreateAndGather) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<int(Index)> init(proc,
                                   [](Index ix) { return ix[0] * 8 + ix[1]; });
    const auto a = dpfl::fa_create<int>(proc, 2, Size{8, 8}, init);
    const auto global = dpfl::fa_gather_all(a);
    for (int k = 0; k < 64; ++k) EXPECT_EQ(global[k], k);
  });
}

TEST(FArray, MapReturnsFreshArrayAndPreservesSource) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<int(Index)> init(proc, [](Index ix) { return ix[0]; });
    const auto a = dpfl::fa_create<int>(proc, 1, Size{8}, init);
    const Closure<int(int, Index)> doubler(
        proc, [](int v, Index) { return v * 2; });
    const auto b = dpfl::fa_map(doubler, a);
    // Immutability: the source is unchanged, the result is new.
    const auto ga = dpfl::fa_gather_all(a);
    const auto gb = dpfl::fa_gather_all(b);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(ga[i], i);
      EXPECT_EQ(gb[i], 2 * i);
    }
  });
}

TEST(FArray, FoldMatchesSequential) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<int(Index)> init(proc,
                                   [](Index ix) { return ix[0] + ix[1]; });
    const auto a = dpfl::fa_create<int>(proc, 2, Size{6, 6}, init);
    const Closure<long(int, Index)> conv(
        proc, [](int v, Index) { return static_cast<long>(v); });
    const Closure<long(long, long)> add(
        proc, [](long x, long y) { return x + y; });
    const long sum = dpfl::fa_fold(conv, add, a);
    long expected = 0;
    for (int i = 0; i < 6; ++i)
      for (int j = 0; j < 6; ++j) expected += i + j;
    EXPECT_EQ(sum, expected);
  });
}

TEST(FArray, BroadcastPartMatchesSkilSemantics) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<double(Index)> init(
        proc, [](Index ix) { return ix[0] * 100.0 + ix[1]; });
    auto piv = dpfl::fa_create<double>(proc, 2, Size{4, 5}, init,
                                       Distr::kDefault, Size{1, 5});
    piv = dpfl::fa_broadcast_part(piv, Index{2, 0});
    const int my_row = piv.part_bounds().lower[0];
    EXPECT_DOUBLE_EQ(piv.get_elem(Index{my_row, 3}), 203.0);
  });
}

TEST(FArray, PermuteRowsMatchesSkilSkeleton) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<int(Index)> init(
        proc, [](Index ix) { return ix[0] * 50 + ix[1]; });
    const auto a = dpfl::fa_create<int>(proc, 2, Size{8, 4}, init,
                                        Distr::kDefault, Size{2, 4});
    const Closure<int(int)> reverse(proc, [](int row) { return 7 - row; });
    const auto b = dpfl::fa_permute_rows(a, reverse);
    const auto global = dpfl::fa_gather_all(b);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 4; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * 4 + j],
                  (7 - i) * 50 + j);
  });
}

TEST(FArray, PermuteRejectsNonBijection) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<int(Index)> init(proc, [](Index) { return 0; });
    const auto a = dpfl::fa_create<int>(proc, 2, Size{4, 2}, init,
                                        Distr::kDefault, Size{2, 2});
    const Closure<int(int)> collapse(proc, [](int) { return 1; });
    EXPECT_THROW(dpfl::fa_permute_rows(a, collapse),
                 skil::support::ContractError);
  });
}

TEST(FArray, GenMultMatchesOracle) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<double(Index)> init_a(
        proc, [](Index ix) { return support::dense_entry(5, ix[0], ix[1]); });
    const Closure<double(Index)> init_b(
        proc, [](Index ix) { return support::dense_entry(6, ix[0], ix[1]); });
    const Closure<double(double, double)> add(
        proc, [](double x, double y) { return x + y; });
    const Closure<double(double, double)> mult(
        proc, [](double x, double y) { return x * y; });
    const auto a = dpfl::fa_create<double>(proc, 2, Size{8, 8}, init_a,
                                           Distr::kTorus2D);
    const auto b = dpfl::fa_create<double>(proc, 2, Size{8, 8}, init_b,
                                           Distr::kTorus2D);
    const auto c = dpfl::fa_gen_mult(a, b, add, mult);
    const auto got = dpfl::fa_gather_all(c);
    const auto expected = support::seq_matmul(support::random_dense(8, 8, 5),
                                              support::random_dense(8, 8, 6));
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        EXPECT_NEAR(got[static_cast<std::size_t>(i) * 8 + j], expected(i, j),
                    1e-9);
  });
}

TEST(FArray, GetElemRejectsNonLocal) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const Closure<int(Index)> init(proc, [](Index ix) { return ix[0]; });
    const auto a = dpfl::fa_create<int>(proc, 1, Size{8}, init);
    const int foreign = proc.id() == 0 ? 7 : 0;
    EXPECT_THROW(a.get_elem(Index{foreign}), skil::support::ContractError);
  });
}

TEST(CostComparison, DpflMapCostsMoreThanSkilMap) {
  // The whole point of the baseline: identical semantics, closure and
  // boxing overheads in the virtual time.
  RunConfig config{2, CostModel::t800()};
  const auto skil_run = parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<double>(proc, 1, Size{1000},
                                  [](Index ix) { return ix[0] * 1.0; });
    array_map([](double v) { return v + 1.0; }, a, a);
  });
  const auto dpfl_run = parix::spmd_run(config, [](Proc& proc) {
    const Closure<double(Index)> init(proc,
                                      [](Index ix) { return ix[0] * 1.0; });
    auto a = dpfl::fa_create<double>(proc, 1, Size{1000}, init);
    const Closure<double(double, Index)> inc(
        proc, [](double v, Index) { return v + 1.0; });
    a = dpfl::fa_map(inc, a);
  });
  EXPECT_GT(dpfl_run.vtime_us, 3.0 * skil_run.vtime_us);
}

TEST(BaselineName, MentionsDPFL) {
  EXPECT_NE(std::string(dpfl::baseline_name()).find("DPFL"),
            std::string::npos);
}

}  // namespace
