// Unit tests for the deterministic RNG and stateless hash.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/rng.h"

namespace {

using skil::support::hash_mix;
using skil::support::Rng;
using skil::support::splitmix64;

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LE(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values should appear in 2000 draws
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DoubleRangeRespected) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng rng(17);
  int trues = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.next_bool(0.25)) ++trues;
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

TEST(Rng, MeanOfUniformIsHalf) {
  Rng rng(19);
  double sum = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(SplitMix, AdvancesState) {
  std::uint64_t state = 5;
  const auto v1 = splitmix64(state);
  const auto v2 = splitmix64(state);
  EXPECT_NE(v1, v2);
  EXPECT_NE(state, 5u);
}

TEST(HashMix, IsDeterministic) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
}

TEST(HashMix, SensitiveToEveryArgument) {
  const auto base = hash_mix(1, 2, 3);
  EXPECT_NE(base, hash_mix(2, 2, 3));
  EXPECT_NE(base, hash_mix(1, 3, 3));
  EXPECT_NE(base, hash_mix(1, 2, 4));
}

TEST(HashMix, LowCollisionOnGrid) {
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i)
    for (int j = 0; j < 100; ++j) values.insert(hash_mix(77, i, j));
  EXPECT_EQ(values.size(), 10000u);
}

}  // namespace
