// Differential and golden tests for the collective algorithm zoo
// (parix/coll.h, parix/collectives.h; DESIGN.md section 15).
//
// The zoo's contract has three legs, each pinned here:
//   1. Results: every (collective, algorithm family, embedding, p)
//      combination returns exactly what a naive oracle computes --
//      bit-identical across SKIL_COLL modes, including order-sensitive
//      FP operators (scalar allreduce replays the binomial-tree
//      bracketing; elementwise allreduce falls back to the tree unless
//      the caller declares CollOrder::kExact).
//   2. Virtual times: each algorithm's communication schedule is a
//      deterministic artefact, pinned by hexfloat goldens per
//      (op, algorithm, p).
//   3. Sub-communicators: split_rows/split_cols renumber ranks, keep
//      disjoint tag streams, and never cross-match concurrent row and
//      column collectives.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "parix/collectives.h"
#include "parix/runtime.h"

namespace {

using namespace skil::parix;

constexpr CollMode kAllModes[] = {CollMode::kTree, CollMode::kRing,
                                  CollMode::kRd, CollMode::kAuto};

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// An order-sensitive double per virtual rank: summing these in a
/// different bracketing changes the rounding, so bitwise agreement
/// across algorithm families proves they replay the same combine
/// order, not just "roughly the same sum".
double fuzz_value(int vrank, int salt) {
  const double x = 1.0 + 0.1 * vrank + 1e-4 * vrank * vrank;
  return x + 1e-9 * salt * (vrank % 7);
}

struct Case {
  int nprocs;
  Distr distr;
};

// Non-powers-of-two are first-class: the ring and Bruck algorithms
// must handle them, and Rabenseifner must fall back to the tree.
const Case kCases[] = {
    {2, Distr::kRing},      {3, Distr::kDefault},  {5, Distr::kRing},
    {7, Distr::kDefault},   {8, Distr::kHypercube}, {12, Distr::kTorus2D},
    {16, Distr::kTorus2D},  {31, Distr::kDefault}, {32, Distr::kHypercube},
    {48, Distr::kTorus2D},  {64, Distr::kHypercube},
};

class CollAlgos : public ::testing::TestWithParam<Case> {};

TEST_P(CollAlgos, ScalarAllreduceBitIdenticalAcrossModesForAnyOperator) {
  const auto [p, distr] = GetParam();
  const auto op = [](double a, double b) { return a + b; };
  // Naive oracle: the documented combine order is the binomial-tree
  // bracketing over virtual ranks, replayed here sequentially.
  std::vector<double> contributions(p);
  for (int v = 0; v < p; ++v) contributions[v] = fuzz_value(v, 1);
  const double expected =
      coll_detail::fold_tree_bracketing(contributions, op);

  for (CollMode mode : kAllModes) {
    std::vector<double> results(p);
    RunConfig config{p, CostModel::t800()};
    config.coll = mode;
    spmd_run(config, [&](Proc& proc) {
      const Topology topo(proc.machine(), distr);
      const double local = fuzz_value(topo.vrank_of(proc.id()), 1);
      results[proc.id()] = allreduce(proc, topo, local, op);
    });
    for (int id = 0; id < p; ++id)
      EXPECT_EQ(results[id], expected)
          << "mode " << coll_mode_name(mode) << " proc " << id;
  }
}

TEST_P(CollAlgos, AllgatherMatchesVrankOrderOracleInEveryMode) {
  const auto [p, distr] = GetParam();
  std::vector<double> oracle(p);
  for (int v = 0; v < p; ++v) oracle[v] = fuzz_value(v, 2);

  for (CollMode mode : kAllModes) {
    RunConfig config{p, CostModel::t800()};
    config.coll = mode;
    spmd_run(config, [&](Proc& proc) {
      const Topology topo(proc.machine(), distr);
      const auto all = allgather(
          proc, topo, fuzz_value(topo.vrank_of(proc.id()), 2));
      ASSERT_EQ(all.size(), oracle.size());
      for (int v = 0; v < p; ++v)
        EXPECT_EQ(all[v], oracle[v])
            << "mode " << coll_mode_name(mode) << " vrank " << v;
    });
  }
}

TEST_P(CollAlgos, HintedBroadcastDeliversRootBufferInEveryMode) {
  const auto [p, distr] = GetParam();
  const int n = 1000;  // not divisible by the chunk count
  std::vector<double> oracle(n);
  for (int i = 0; i < n; ++i) oracle[i] = fuzz_value(i % 97, 3);

  for (CollMode mode : kAllModes) {
    RunConfig config{p, CostModel::t800()};
    config.coll = mode;
    spmd_run(config, [&](Proc& proc) {
      const Topology topo(proc.machine(), distr);
      const int root = topo.hw_of(p / 2);
      std::vector<double> v;
      if (proc.id() == root) v = oracle;
      broadcast(proc, topo, root, v, n * sizeof(double));
      EXPECT_EQ(v, oracle) << "mode " << coll_mode_name(mode);
    });
  }
}

TEST_P(CollAlgos, ExactElementwiseAllreduceMatchesOracleInEveryMode) {
  const auto [p, distr] = GetParam();
  const int n = 513;  // not divisible by p, exercises ragged segments
  // Integer-valued doubles: the elementwise sums are exact in FP, so
  // the CollOrder::kExact reassociation contract holds bit-for-bit.
  std::vector<double> oracle(n, 0.0);
  for (int v = 0; v < p; ++v)
    for (int i = 0; i < n; ++i)
      oracle[i] += static_cast<double>((v + 1) * (i % 251));

  for (CollMode mode : kAllModes) {
    RunConfig config{p, CostModel::t800()};
    config.coll = mode;
    spmd_run(config, [&](Proc& proc) {
      const Topology topo(proc.machine(), distr);
      std::vector<double> local(n);
      const int v = topo.vrank_of(proc.id());
      for (int i = 0; i < n; ++i)
        local[i] = static_cast<double>((v + 1) * (i % 251));
      const auto out = allreduce_elems(
          proc, topo, std::move(local),
          [](double a, double b) { return a + b; }, CollOrder::kExact);
      EXPECT_EQ(out, oracle) << "mode " << coll_mode_name(mode);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CollAlgos, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "p" + std::to_string(info.param.nprocs) + "_" +
             std::string(distr_name(info.param.distr)).substr(6);
    });

// --- commutativity-sensitive fuzz -----------------------------------

TEST(CollOrderContract, ChainOnlyForcesTreeAndCountsFallbacks) {
  const int p = 16;
  const int n = 4096;  // large enough that kAuto would reassociate
  std::vector<double> tree_result;
  for (CollMode mode : kAllModes) {
    std::vector<double> result;
    RunConfig config{p, CostModel::t800()};
    config.coll = mode;
    const RunResult run = spmd_run(config, [&](Proc& proc) {
      const Topology topo(proc.machine(), Distr::kDefault);
      std::vector<double> local(n);
      for (int i = 0; i < n; ++i)
        local[i] = fuzz_value(topo.vrank_of(proc.id()), i % 31);
      // Default order: kChainOnly.  The FP rounding of the tree's
      // combine bracketing is part of the result.
      const auto out = allreduce_elems(
          proc, topo, std::move(local),
          [](double a, double b) { return a + b; });
      if (proc.id() == 0) result = out;
    });
    const int t = static_cast<int>(CollAlgo::kTree);
    const int ar = static_cast<int>(CollOp::kAllreduce);
    EXPECT_EQ(run.coll.calls[ar][t], static_cast<std::uint64_t>(p))
        << coll_mode_name(mode);
    for (int a = 1; a < kNumCollAlgos; ++a)
      EXPECT_EQ(run.coll.calls[ar][a], 0u)
          << coll_mode_name(mode) << " picked "
          << coll_algo_name(static_cast<CollAlgo>(a));
    // One counted fallback per processor whenever a reassociating
    // family was asked for but the operator forbids it.
    const std::uint64_t expected_fallbacks =
        mode == CollMode::kTree ? 0u : static_cast<std::uint64_t>(p);
    EXPECT_EQ(run.coll.order_fallbacks, expected_fallbacks)
        << coll_mode_name(mode);
    if (mode == CollMode::kTree)
      tree_result = result;
    else
      EXPECT_EQ(result, tree_result) << coll_mode_name(mode);
  }
}

// --- counters --------------------------------------------------------

TEST(CollCounters, AttributeCallsBytesHopsAndStepsPerAlgorithm) {
  const int p = 8;
  const int ag = static_cast<int>(CollOp::kAllgather);
  struct Expect {
    CollMode mode;
    CollAlgo algo;
  };
  for (const auto& [mode, algo] : {Expect{CollMode::kTree, CollAlgo::kTree},
                                   Expect{CollMode::kRing, CollAlgo::kRing},
                                   Expect{CollMode::kRd,
                                          CollAlgo::kRecDouble}}) {
    RunConfig config{p, CostModel::t800()};
    config.coll = mode;
    const RunResult run = spmd_run(config, [&](Proc& proc) {
      const Topology topo(proc.machine(), Distr::kRing);
      (void)allgather(proc, topo, proc.id() * 1.5);
    });
    EXPECT_EQ(run.coll.calls[ag][static_cast<int>(algo)],
              static_cast<std::uint64_t>(p))
        << coll_mode_name(mode);
    EXPECT_EQ(run.coll.calls_for(algo), run.coll.total_calls())
        << coll_mode_name(mode) << ": every call should resolve to "
        << coll_algo_name(algo);
    if (mode == CollMode::kRing) {
      // p-1 pass-around steps per processor, one payload per step.
      EXPECT_EQ(run.coll.steps[ag], static_cast<std::uint64_t>(p * (p - 1)));
      EXPECT_GT(run.coll.bytes[ag], 0u);
      // Every counted edge is at least one physical hop.
      EXPECT_GE(run.coll.hops[ag], run.coll.steps[ag]);
    }
  }
}

// --- per-algorithm vtime goldens -------------------------------------
//
// Captured from this implementation (hexfloat, bit-exact).  A change
// to any of them means the algorithm's communication schedule -- the
// artefact the cost model prices -- moved, not just host performance.

RunResult run_elems(CollMode mode, int p, Distr distr) {
  RunConfig config{p, CostModel::t800()};
  config.coll = mode;
  return spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    std::vector<double> v(4096);
    const int vr = topo.vrank_of(proc.id());
    for (int i = 0; i < 4096; ++i)
      v[i] = static_cast<double>((vr + 1) * (i % 1021));
    (void)allreduce_elems(proc, topo, std::move(v),
                          [](double a, double b) { return a + b; },
                          CollOrder::kExact);
  });
}

RunResult run_allgather(CollMode mode, int p, Distr distr) {
  RunConfig config{p, CostModel::t800()};
  config.coll = mode;
  return spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    (void)allgather(proc, topo, proc.id() + 0.5);
  });
}

RunResult run_bcast(CollMode mode, int p, Distr distr) {
  RunConfig config{p, CostModel::t800()};
  config.coll = mode;
  return spmd_run(config, [&](Proc& proc) {
    const Topology topo(proc.machine(), distr);
    std::vector<double> v;
    if (proc.id() == 0) v.assign(8192, 1.25);
    broadcast(proc, topo, 0, v, 8192 * sizeof(double));
  });
}

struct AlgoGolden {
  const char* name;
  RunResult (*run)();
  double vtime_us;
  std::uint64_t messages_sent;
};

const AlgoGolden kAlgoGoldens[] = {
    {"elems_tree_p16",
     [] { return run_elems(CollMode::kTree, 16, Distr::kDefault); },
     0x1.a0c5999999999p+18, 30},
    {"elems_ring_p16",
     [] { return run_elems(CollMode::kRing, 16, Distr::kDefault); },
     0x1.08e8cccccccccp+17, 480},
    {"elems_raben_p16",
     [] { return run_elems(CollMode::kRd, 16, Distr::kDefault); },
     0x1.aee3333333333p+16, 128},
    {"allgather_tree_p16",
     [] { return run_allgather(CollMode::kTree, 16, Distr::kRing); },
     0x1.a173333333333p+12, 30},
    {"allgather_ring_p16",
     [] { return run_allgather(CollMode::kRing, 16, Distr::kRing); },
     0x1.2006666666666p+13, 240},
    {"allgather_bruck_p12",
     [] { return run_allgather(CollMode::kRd, 12, Distr::kDefault); },
     0x1.8933333333333p+11, 48},
    {"bcast_tree_p16",
     [] { return run_bcast(CollMode::kTree, 16, Distr::kDefault); },
     0x1.0ec9333333333p+18, 15},
    {"bcast_ringpipe_p16",
     [] { return run_bcast(CollMode::kRing, 16, Distr::kDefault); },
     0x1.547d99999999bp+16, 240},
};

TEST(CollAlgoGoldens, VtimesAndScheduleArePinnedPerAlgorithm) {
  for (const AlgoGolden& g : kAlgoGoldens) {
    const RunResult run = g.run();
    EXPECT_EQ(run.vtime_us, g.vtime_us)
        << g.name << ": actual " << hex(run.vtime_us);
    EXPECT_EQ(run.total.messages_sent, g.messages_sent) << g.name;
  }
}

TEST(CollAlgoGoldens, ReassociatingFamiliesBeatTheTreeAtThisSize) {
  // The reason the zoo exists: at 32 KB payloads on 16 processors the
  // reduce-scatter pipelines are well under the 2 log p tree.
  const double tree = run_elems(CollMode::kTree, 16, Distr::kDefault).vtime_us;
  const double ring = run_elems(CollMode::kRing, 16, Distr::kDefault).vtime_us;
  const double raben = run_elems(CollMode::kRd, 16, Distr::kDefault).vtime_us;
  const double adaptive =
      run_elems(CollMode::kAuto, 16, Distr::kDefault).vtime_us;
  EXPECT_LT(ring, tree);
  EXPECT_LT(raben, tree);
  // auto picks the best of the three estimates.
  EXPECT_LE(adaptive, std::min({tree, ring, raben}) * 1.0001);
}

TEST(CollAlgoGoldens, VtimeIsDeterministicPerMode) {
  for (CollMode mode : kAllModes) {
    const RunResult a = run_elems(mode, 12, Distr::kTorus2D);
    const RunResult b = run_elems(mode, 12, Distr::kTorus2D);
    EXPECT_EQ(a.vtime_us, b.vtime_us) << coll_mode_name(mode);
    EXPECT_EQ(a.total.messages_sent, b.total.messages_sent);
    EXPECT_EQ(a.total.bytes_sent, b.total.bytes_sent);
  }
}

// --- sub-communicators ----------------------------------------------

TEST(SplitComm, RowsAndColumnsRenumberRanksAndKeepDistinctIds) {
  RunConfig config{16, CostModel::t800()};
  spmd_run(config, [](Proc& proc) {
    const Topology topo(proc.machine(), Distr::kTorus2D);
    const Topology row = topo.split_rows(proc.id());
    const Topology col = topo.split_cols(proc.id());
    const int my_row = topo.vrank_of(proc.id()) / topo.grid_cols();
    const int my_col = topo.vrank_of(proc.id()) % topo.grid_cols();

    EXPECT_EQ(row.nprocs(), topo.grid_cols());
    EXPECT_EQ(col.nprocs(), topo.grid_rows());
    EXPECT_EQ(row.vrank_of(proc.id()), my_col);
    EXPECT_EQ(col.vrank_of(proc.id()), my_row);
    EXPECT_TRUE(row.is_subgroup());
    EXPECT_NE(row.comm_id(), col.comm_id());
    EXPECT_EQ(row.comm_id(), 1 + my_row);
    EXPECT_EQ(col.comm_id(), 1 + topo.grid_rows() + my_col);
    for (int hw = 0; hw < 16; ++hw) {
      const int r = topo.vrank_of(hw) / topo.grid_cols();
      EXPECT_EQ(row.contains(hw), r == my_row) << "hw " << hw;
    }
  });
}

TEST(SplitComm, ConcurrentRowAndColumnCollectivesNeverCrossMatch) {
  // Every processor interleaves collectives on its row and column
  // subgroups.  The disjoint per-communicator tag streams are what
  // keeps a row message from satisfying a column recv -- under every
  // algorithm family, including the multi-step ring/Bruck schedules.
  for (CollMode mode : kAllModes) {
    RunConfig config{16, CostModel::t800()};
    config.coll = mode;
    spmd_run(config, [&](Proc& proc) {
      const Topology topo(proc.machine(), Distr::kTorus2D);
      const Topology row = topo.split_rows(proc.id());
      const Topology col = topo.split_cols(proc.id());
      const int my_row = topo.vrank_of(proc.id()) / topo.grid_cols();
      const int my_col = topo.vrank_of(proc.id()) % topo.grid_cols();

      const int row_sum = allreduce(proc, row, 1 << topo.vrank_of(proc.id()),
                                    [](int a, int b) { return a + b; });
      const int col_sum = allreduce(proc, col, 1 << topo.vrank_of(proc.id()),
                                    [](int a, int b) { return a + b; });
      // Expected: sum of 2^vrank over the row (resp. column) members.
      int expect_row = 0, expect_col = 0;
      for (int c = 0; c < topo.grid_cols(); ++c)
        expect_row += 1 << (my_row * topo.grid_cols() + c);
      for (int r = 0; r < topo.grid_rows(); ++r)
        expect_col += 1 << (r * topo.grid_cols() + my_col);
      EXPECT_EQ(row_sum, expect_row) << coll_mode_name(mode);
      EXPECT_EQ(col_sum, expect_col) << coll_mode_name(mode);

      // A hinted panel broadcast on each, SUMMA-style, from the
      // diagonal member.
      std::vector<double> panel;
      if (my_col == my_row) panel.assign(256, 10.0 * my_row + 1.0);
      broadcast(proc, row, topo.at_grid(my_row, my_row), panel,
                256 * sizeof(double));
      ASSERT_EQ(panel.size(), 256u);
      EXPECT_EQ(panel[0], 10.0 * my_row + 1.0) << coll_mode_name(mode);

      const auto col_ids = allgather(proc, col, proc.id());
      ASSERT_EQ(static_cast<int>(col_ids.size()), topo.grid_rows());
      for (int r = 0; r < topo.grid_rows(); ++r)
        EXPECT_EQ(col_ids[r], topo.at_grid(r, my_col));
    });
  }
}

TEST(SplitComm, SubgroupVtimeIsDeterministicAcrossRuns) {
  auto run_once = [] {
    RunConfig config{16, CostModel::t800()};
    config.coll = CollMode::kAuto;
    return spmd_run(config, [](Proc& proc) {
      const Topology topo(proc.machine(), Distr::kTorus2D);
      const Topology row = topo.split_rows(proc.id());
      const Topology col = topo.split_cols(proc.id());
      std::vector<double> v(512, proc.id() + 1.0);
      v = allreduce_elems(proc, row, std::move(v),
                          [](double a, double b) { return a + b; },
                          CollOrder::kExact);
      v = allreduce_elems(proc, col, std::move(v),
                          [](double a, double b) { return a + b; },
                          CollOrder::kExact);
    });
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.vtime_us, b.vtime_us);
  EXPECT_EQ(a.total.messages_sent, b.total.messages_sent);
}

}  // namespace
