// Tests for the table renderer, CSV writer and CLI parser.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/cli.h"
#include "support/csv.h"
#include "support/error.h"
#include "support/table.h"

namespace {

using namespace skil::support;

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.render().find("| x |   |   |"), std::string::npos);
}

TEST(Table, SeparatorEmitsRule) {
  Table t({"h"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + separator + bottom = 4 horizontal lines
  int rules = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line))
    if (!line.empty() && line[0] == '+') ++rules;
  EXPECT_EQ(rules, 4);
}

TEST(Fmt, FixedAndRatio) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_ratio(6.514, 2), "6.51");
  EXPECT_EQ(fmt_ratio(std::nan(""), 2), "-");
}

TEST(AsciiPlot, MentionsSeriesAndAxes) {
  const std::string plot = ascii_plot({"skil", "dpfl"}, {1, 2, 3},
                                      {{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}},
                                      "processors", "speedup");
  EXPECT_NE(plot.find("speedup"), std::string::npos);
  EXPECT_NE(plot.find("* = skil"), std::string::npos);
  EXPECT_NE(plot.find("o = dpfl"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/skil_csv_test.csv";
  {
    CsvWriter csv(path, {"n", "time"});
    csv.add_row({"64", "2.06"});
    csv.add_row({"128", "14.77"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "n,time");
  std::getline(in, line);
  EXPECT_EQ(line, "64,2.06");
  std::getline(in, line);
  EXPECT_EQ(line, "128,14.77");
  std::remove(path.c_str());
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=128", "--procs", "16", "--quick"};
  Cli cli(5, const_cast<char**>(argv), {"n", "procs", "quick"});
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_EQ(cli.get_int("procs", 0), 16);
  EXPECT_TRUE(cli.get_bool("quick"));
  EXPECT_EQ(cli.get_int("absent", 7), 7);
}

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv), {"n"}), ContractError);
}

TEST(Cli, CollectsPositionalArguments) {
  const char* argv[] = {"prog", "first", "--n=1", "second"};
  Cli cli(4, const_cast<char**>(argv), {"n"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Error, MacrosRaiseTypedExceptions) {
  EXPECT_THROW(SKIL_REQUIRE(false, "contract"), ContractError);
  EXPECT_THROW(SKIL_ASSERT(false, "fault"), RuntimeFault);
  EXPECT_NO_THROW(SKIL_REQUIRE(true, "ok"));
}

TEST(Error, MessageCarriesLocationAndText) {
  try {
    SKIL_REQUIRE(false, "the message");
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_support_table_csv_cli.cpp"), std::string::npos);
  }
}

}  // namespace
