// Differential fuzz for lazy skeleton composition (skil::fuse and
// skil::dpfl stage pipelines, DESIGN.md section 13).
//
// Random map/fold/scan pipelines over random processor counts and
// (deliberately ragged) array lengths run twice -- SKIL_FUSE=off and
// SKIL_FUSE=on -- and must agree bit-for-bit on every array element
// and every fold/scan result: fusion composes the same per-element
// calls and the same combine order, it only removes passes.  Virtual
// times must be strictly lower under fusion whenever a composition
// fused (the eliminated charge tails), deterministic across repeated
// fused runs, and the fusion counters must account for exactly the
// compositions each pipeline presents: one fused note per processor
// per composition, a kOrder rejection for the floating-point
// scan|total (only order-exact integral domains may drop the unfused
// allreduce), and zero counters under off.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "dpfl/dpfl.h"
#include "parix/charge_tape.h"
#include "parix/runtime.h"
#include "parix_golden_cases.h"
#include "skil/skil.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::FuseMode;
using parix::Proc;
using parix::RunConfig;
using parix::RunResult;
using skil::testing::with_fuse_mode;

struct TrialParams {
  int p;
  int n;
  double c1, c2, c3;  // map-stage coefficients
  int m1, m2;         // integer-domain coefficients
};

struct TrialOutcome {
  RunResult run;
  std::vector<double> map_map;
  std::vector<double> map_map_map;
  double map_fold = 0.0;
  std::vector<long> int_prefix;
  long int_total = 0;
  std::vector<double> fp_prefix;
  double fp_total = 0.0;
  std::vector<double> fa_map_map;
  double fa_map_fold = 0.0;
};

// Number of fusible compositions one trial body presents per
// processor: map|map, map|map|map, map|fold, int scan|total,
// fa_map|fa_map, fa_map|fa_fold fuse; the FP scan|total is rejected
// (kOrder).
constexpr std::uint64_t kFusibleCompositions = 6;
constexpr std::uint64_t kOrderRejections = 1;
// Tape passes the fused forms eliminate: 1 (map|map) + 2 (map|map|map)
// + 1 (map|fold) + 1 (int scan|total) + 1 (fa map|map) + 1 (fa
// map|fold).
constexpr std::uint64_t kTapesEliminated = 7;
// Collective rounds eliminated: the int scan|total's allreduce.
constexpr std::uint64_t kBarriersEliminated = 1;

TrialOutcome run_trial(const TrialParams& t) {
  TrialOutcome out;
  RunConfig config{t.p, CostModel::t800()};
  out.run = parix::spmd_run(config, [&](Proc& proc) {
    const double c1 = t.c1, c2 = t.c2, c3 = t.c3;
    const int m1 = t.m1, m2 = t.m2;
    auto a = array_create<double>(proc, 1, Size{t.n}, [c1](Index ix) {
      return c1 * ix[0] + 0.25;
    });

    // map | map.
    auto mm = array_create<double>(proc, 1, Size{t.n}, [](Index) { return 0.0; });
    fuse::force(fuse::map([c2](double x) { return c2 * x + 1.0; }) |
                    fuse::map([c3](double x, Index ix) {
                      return x - c3 * ix[0];
                    }),
                a, mm);

    // map | map | map (left-associated chain).
    auto mmm =
        array_create<double>(proc, 1, Size{t.n}, [](Index) { return 0.0; });
    fuse::force(fuse::map([c2](double x) { return x * c2; }) |
                    fuse::map([c3](double x) { return x + c3; }) |
                    fuse::map([](double x) { return x * 0.5; }),
                a, mmm);

    // map | fold (FP fold: fused keeps the exact combine order, so
    // the result stays bit-identical across modes).
    auto scratch =
        array_create<double>(proc, 1, Size{t.n}, [](Index) { return 0.0; });
    const double folded =
        fuse::force(fuse::map([c2](double x) { return x * c2 + 0.125; }) |
                        fuse::fold([](double x, Index) { return x; }, fn::plus),
                    a, scratch);

    // scan | total over an integral domain: fusible (order-exact).
    auto ia = array_create<int>(proc, 1, Size{t.n}, [m1, m2](Index ix) {
      return (ix[0] * m1 + m2) % 17 - 3;
    });
    auto iprefix =
        array_create<long>(proc, 1, Size{t.n}, [](Index) { return 0L; });
    const long itotal = fuse::force(
        fuse::scan([](int v, Index) { return static_cast<long>(v); },
                   fn::plus) |
            fuse::total(),
        ia, iprefix);

    // scan | total over doubles: rejected (kOrder), runs unfused
    // either way -- results and vtimes must not move at all.
    auto dprefix =
        array_create<double>(proc, 1, Size{t.n}, [](Index) { return 0.0; });
    const double dtotal = fuse::force(
        fuse::scan([](double v, Index) { return v; }, fn::plus) |
            fuse::total(),
        a, dprefix);

    // DPFL pipelines.
    const dpfl::Closure<double(Index)> init(
        proc, [c1](Index ix) { return c1 * (ix[0] + 1); });
    const auto fa = dpfl::fa_create<double>(proc, 1, Size{t.n}, init);
    const dpfl::Closure<double(double, Index)> f(
        proc, [c2](double x, Index) { return x * c2 - 0.5; });
    const dpfl::Closure<double(double, Index)> g(
        proc, [c3](double x, Index ix) { return x + c3 * ix[0]; });
    const auto famm = dpfl::fa_force(dpfl::fa_map(f) | dpfl::fa_map(g), fa);
    const dpfl::Closure<double(double, Index)> conv(
        proc, [](double x, Index) { return x; });
    const dpfl::Closure<double(double, double)> add(
        proc, [](double x, double y) { return x + y; });
    const double fafolded =
        dpfl::fa_force(dpfl::fa_map(f) | dpfl::fa_fold(conv, add), fa);

    const auto g_mm = array_gather_all(mm);
    const auto g_mmm = array_gather_all(mmm);
    const auto g_iprefix = array_gather_all(iprefix);
    const auto g_dprefix = array_gather_all(dprefix);
    const auto g_famm = dpfl::fa_gather_all(famm);
    if (proc.id() == 0) {
      out.map_map = g_mm;
      out.map_map_map = g_mmm;
      out.map_fold = folded;
      out.int_prefix = g_iprefix;
      out.int_total = itotal;
      out.fp_prefix = g_dprefix;
      out.fp_total = dtotal;
      out.fa_map_map = g_famm;
      out.fa_map_fold = fafolded;
    }
  });
  return out;
}

TEST(FusionFuzz, RandomPipelinesAgreeBitForBitAcrossModes) {
  std::mt19937 rng(19960528u);
  std::uniform_int_distribution<int> pick_p(0, 5);
  const int procs[] = {1, 2, 3, 4, 6, 8};
  std::uniform_int_distribution<int> pick_n(1, 64);
  std::uniform_real_distribution<double> pick_c(-2.0, 2.0);
  std::uniform_int_distribution<int> pick_m(1, 9);

  for (int trial = 0; trial < 8; ++trial) {
    TrialParams t{procs[pick_p(rng)], pick_n(rng), pick_c(rng),
                  pick_c(rng),        pick_c(rng), pick_m(rng),
                  pick_m(rng)};
    SCOPED_TRACE(::testing::Message() << "trial " << trial << " p=" << t.p
                                      << " n=" << t.n);

    const TrialOutcome off =
        with_fuse_mode(FuseMode::kOff, [&] { return run_trial(t); });
    const TrialOutcome on =
        with_fuse_mode(FuseMode::kOn, [&] { return run_trial(t); });

    // Results: bit-identical everywhere.
    EXPECT_EQ(off.map_map, on.map_map);
    EXPECT_EQ(off.map_map_map, on.map_map_map);
    EXPECT_EQ(off.map_fold, on.map_fold);
    EXPECT_EQ(off.int_prefix, on.int_prefix);
    EXPECT_EQ(off.int_total, on.int_total);
    EXPECT_EQ(off.fp_prefix, on.fp_prefix);
    EXPECT_EQ(off.fp_total, on.fp_total);
    EXPECT_EQ(off.fa_map_map, on.fa_map_map);
    EXPECT_EQ(off.fa_map_fold, on.fa_map_fold);

    // Virtual time: strictly lower under fusion (charge tails and a
    // collective round were eliminated), deterministic across modes
    // otherwise untouched.
    EXPECT_LT(on.run.vtime_us, off.run.vtime_us);

    // Counter accounting: per processor, every composition either
    // fused or was rejected for the FP fold order.
    const std::uint64_t p = static_cast<std::uint64_t>(t.p);
    EXPECT_EQ(on.run.fusion.fused, kFusibleCompositions * p);
    EXPECT_EQ(on.run.fusion.rejected_order, kOrderRejections * p);
    EXPECT_EQ(on.run.fusion.rejected_shape, 0u);
    EXPECT_EQ(on.run.fusion.rejected_path, 0u);
    EXPECT_EQ(on.run.fusion.seen,
              (kFusibleCompositions + kOrderRejections) * p);
    EXPECT_EQ(on.run.fusion.tapes_eliminated, kTapesEliminated * p);
    EXPECT_EQ(on.run.fusion.barriers_eliminated, kBarriersEliminated * p);
    EXPECT_EQ(off.run.fusion.seen, 0u);
    EXPECT_EQ(off.run.fusion.fused, 0u);
    EXPECT_EQ(off.run.fusion.rejected(), 0u);

    // Fused runs are deterministic: an immediate repeat lands on the
    // same bits.
    const TrialOutcome again =
        with_fuse_mode(FuseMode::kOn, [&] { return run_trial(t); });
    EXPECT_EQ(again.run.vtime_us, on.run.vtime_us);
    EXPECT_EQ(again.run.proc_vtimes, on.run.proc_vtimes);
    EXPECT_EQ(again.map_map, on.map_map);
    EXPECT_EQ(again.int_total, on.int_total);
  }
}

}  // namespace
