// Integration tests for the Gaussian elimination implementations.
#include <gtest/gtest.h>

#include "apps/gauss.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using apps::gauss_c;
using apps::gauss_dpfl;
using apps::gauss_round_up;
using apps::gauss_skil;

std::vector<double> first_n(const std::vector<double>& x, int n) {
  return std::vector<double>(x.begin(), x.begin() + n);
}

TEST(RoundUp, MultiplesOfP) {
  EXPECT_EQ(gauss_round_up(64, 4), 64);
  EXPECT_EQ(gauss_round_up(65, 4), 68);
  EXPECT_EQ(gauss_round_up(1, 8), 8);
}

struct GCase {
  int p;
  int n;
};

class Gauss : public ::testing::TestWithParam<GCase> {};

TEST_P(Gauss, SkilNoPivotSolvesTheSystem) {
  const auto [p, n] = GetParam();
  const auto result = gauss_skil(p, n, 11, /*pivoting=*/false);
  const auto oracle =
      support::seq_gauss_nopivot(support::random_linear_system(n, 11));
  ASSERT_GE(static_cast<int>(result.x.size()), n);
  EXPECT_LT(support::max_abs_diff(first_n(result.x, n), oracle), 1e-8);
}

TEST_P(Gauss, SkilPivotSolvesARotatedSystem) {
  const auto [p, n] = GetParam();
  const auto result = gauss_skil(p, n, 13, /*pivoting=*/true);
  const auto oracle =
      support::seq_gauss_pivot(support::random_pivoting_system(n, 13));
  ASSERT_GE(static_cast<int>(result.x.size()), n);
  EXPECT_LT(support::max_abs_diff(first_n(result.x, n), oracle), 1e-8);
}

TEST_P(Gauss, DpflMatchesSkil) {
  const auto [p, n] = GetParam();
  const auto skil_x = gauss_skil(p, n, 17, false).x;
  const auto dpfl_x = gauss_dpfl(p, n, 17).x;
  ASSERT_EQ(skil_x.size(), dpfl_x.size());
  EXPECT_LT(support::max_abs_diff(skil_x, dpfl_x), 1e-10);
}

TEST_P(Gauss, HandWrittenCMatchesOracle) {
  const auto [p, n] = GetParam();
  const auto result = gauss_c(p, n, 19);
  const auto oracle =
      support::seq_gauss_nopivot(support::random_linear_system(n, 19));
  EXPECT_LT(support::max_abs_diff(first_n(result.x, n), oracle), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Gauss,
                         ::testing::Values(GCase{1, 8}, GCase{2, 12},
                                           GCase{4, 16}, GCase{4, 18},
                                           GCase{8, 24}, GCase{6, 17}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.p) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(GaussCost, DpflSlowerThanSkilSlowerThanC) {
  const int p = 4, n = 32;
  const double skil = gauss_skil(p, n, 5, false).run.vtime_us;
  const double dpfl = gauss_dpfl(p, n, 5).run.vtime_us;
  const double c = gauss_c(p, n, 5).run.vtime_us;
  EXPECT_GT(dpfl, skil);
  EXPECT_GT(skil, c);
}

TEST(GaussCost, PivotingRoughlyDoublesTheRuntime) {
  // Paper section 5.2: "The run-times were here about twice as long as
  // in the first version".
  const int p = 4, n = 48;
  const double nopivot = gauss_skil(p, n, 5, false).run.vtime_us;
  const double pivot = gauss_skil(p, n, 5, true).run.vtime_us;
  const double factor = pivot / nopivot;
  EXPECT_GT(factor, 1.3);
  EXPECT_LT(factor, 4.0);
}

TEST(GaussCost, VirtualTimeDeterministic) {
  EXPECT_EQ(gauss_skil(4, 20, 9, false).run.vtime_us,
            gauss_skil(4, 20, 9, false).run.vtime_us);
  EXPECT_EQ(gauss_c(4, 20, 9).run.vtime_us, gauss_c(4, 20, 9).run.vtime_us);
}

TEST(GaussSingular, DistributedPivotSearchRaisesThePapersError) {
  // "if (e.val == 0.0) error ('Matrix is singular');" -- the fold's
  // column maximum is zero on a matrix with an all-zero column, and
  // the error must propagate out of the SPMD run.
  const int n = 8;
  support::Matrix<double> ab = support::random_linear_system(n, 4);
  for (int i = 0; i < n; ++i) ab(i, 2) = 0.0;  // kill column 2
  try {
    skil::apps::gauss_skil_matrix(4, ab, /*pivoting=*/true);
    FAIL() << "expected AppError";
  } catch (const support::AppError& e) {
    EXPECT_STREQ(e.what(), "Matrix is singular");
  }
}

TEST(GaussSingular, ExplicitMatrixVariantAgreesWithSeededVariant) {
  const int n = 16, p = 4;
  const auto ab = support::random_linear_system(n, 21);
  const auto via_matrix = skil::apps::gauss_skil_matrix(p, ab, false);
  const auto oracle = support::seq_gauss_nopivot(ab);
  EXPECT_LT(support::max_abs_diff(via_matrix.x, oracle), 1e-8);
}

TEST(GaussPadding, NonDivisibleSizesArePadded) {
  // n = 10 on 4 processors pads to 12; the first 10 components still
  // solve the original system.
  const auto result = gauss_skil(4, 10, 23, false);
  EXPECT_EQ(result.x.size(), 12u);
  const auto oracle =
      support::seq_gauss_nopivot(support::random_linear_system(10, 23));
  EXPECT_LT(support::max_abs_diff(first_n(result.x, 10), oracle), 1e-8);
  // Padded identity rows solve to zero.
  EXPECT_NEAR(result.x[10], 0.0, 1e-12);
  EXPECT_NEAR(result.x[11], 0.0, 1e-12);
}

}  // namespace
