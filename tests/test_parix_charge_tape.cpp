// Tests for the charge-tape specialization layer (parix/charge_tape.h,
// Proc::replay, DESIGN.md section 8).
//
// The load-bearing property: for every golden application cell, the
// tape path must reproduce the interpretive path's virtual times
// BIT-FOR-BIT -- same vtime, same per-processor vtimes, same per-op
// counters -- under both execution engines.  A tape that merely lands
// "close" has reassociated the dependent FP-add chain and changed the
// scientific artefact.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "parix/charge_tape.h"
#include "parix/runtime.h"
#include "parix_golden_cases.h"
#include "support/error.h"

namespace {

using namespace skil;
using namespace skil::parix;

using skil::testing::GoldenCase;
using skil::testing::golden_cases;
using skil::testing::with_charge_path;
using skil::testing::with_engine;

// --- differential: interp vs tape on every golden cell --------------------

void expect_paths_identical(ExecutionEngine engine) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult interp = with_engine(engine, [&] {
      return with_charge_path(ChargePath::kInterp, [&] { return c.run(); });
    });
    const RunResult tape = with_engine(engine, [&] {
      return with_charge_path(ChargePath::kTape, [&] { return c.run(); });
    });
    EXPECT_EQ(interp.vtime_us, tape.vtime_us);
    EXPECT_EQ(interp.proc_vtimes, tape.proc_vtimes);
    EXPECT_EQ(interp.total.compute_us, tape.total.compute_us);
    EXPECT_EQ(interp.total.comm_us, tape.total.comm_us);
    ASSERT_EQ(interp.proc_stats.size(), tape.proc_stats.size());
    for (std::size_t p = 0; p < interp.proc_stats.size(); ++p) {
      SCOPED_TRACE(p);
      // Stats::operator== covers compute_us, comm_us, messages, bytes
      // and the full per-op counter array.
      EXPECT_EQ(interp.proc_stats[p], tape.proc_stats[p]);
    }
  }
}

TEST(ChargeTapeDifferential, InterpAndTapeAgreeBitForBitPooled) {
  expect_paths_identical(ExecutionEngine::kPooled);
}

TEST(ChargeTapeDifferential, InterpAndTapeAgreeBitForBitThreads) {
  expect_paths_identical(ExecutionEngine::kThreads);
}

TEST(ChargeTapeDifferential, BothPathsReproduceTheGoldenValues) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    for (ChargePath path : {ChargePath::kInterp, ChargePath::kTape}) {
      SCOPED_TRACE(path == ChargePath::kInterp ? "interp" : "tape");
      const RunResult r =
          with_charge_path(path, [&] { return c.run(); });
      EXPECT_EQ(r.vtime_us, c.vtime_us);
      EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
      EXPECT_EQ(r.total.compute_us, c.compute_us);
      EXPECT_EQ(r.total.comm_us, c.comm_us);
    }
  }
}

// --- replay identity ------------------------------------------------------

TEST(ChargeTapeReplay, IdenticalToPerElementChargeSequence) {
  // replay(tape, times) must equal the hand-rolled charge loop to the
  // last bit: same multiplies, same adds, same order.
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kFloatOp);
  tape.charge(Op::kIndirectCall);
  tape.charge(Op::kAlloc, 2);
  tape.charge(Op::kCopyWord, 4);

  RunConfig config{1, CostModel::t800()};
  const RunResult interp = spmd_run(config, [&](Proc& proc) {
    for (int t = 0; t < 12345; ++t)
      for (const ChargeTape::Entry& e : tape.entries())
        proc.charge(e.kind, e.count);
  });
  const RunResult taped = spmd_run(config, [&](Proc& proc) {
    proc.replay(tape, 12345);
  });
  EXPECT_EQ(interp.vtime_us, taped.vtime_us);
  EXPECT_EQ(interp.total.compute_us, taped.total.compute_us);
  EXPECT_EQ(interp.total.ops, taped.total.ops);
}

TEST(ChargeTapeReplay, InterleavedReplaysExtendTheSameChain) {
  // Splitting one loop's replays (as data-dependent skeleton loops do:
  // replay(tape, tapped) per map call) must still walk one chain.
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kFloatOp);

  RunConfig config{1, CostModel::t800()};
  const RunResult whole = spmd_run(config, [&](Proc& proc) {
    proc.replay(tape, 1000);
  });
  const RunResult split = spmd_run(config, [&](Proc& proc) {
    proc.replay(tape, 1);
    proc.replay(tape, 998);
    proc.replay(tape, 1);
  });
  EXPECT_EQ(whole.vtime_us, split.vtime_us);
  EXPECT_EQ(whole.total.ops, split.total.ops);
}

TEST(ChargeTapeReplay, ZeroTimesAndEmptyTapeAreNoOps) {
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 3);
  ChargeTape empty;

  RunConfig config{1, CostModel::t800()};
  const RunResult r = spmd_run(config, [&](Proc& proc) {
    proc.charge(Op::kIntOp, 7);
    proc.replay(tape, 0);
    proc.replay(empty, 12345);
  });
  const RunResult plain = spmd_run(config, [](Proc& proc) {
    proc.charge(Op::kIntOp, 7);
  });
  EXPECT_EQ(r.vtime_us, plain.vtime_us);
  EXPECT_EQ(r.total.ops, plain.total.ops);
}

TEST(ChargeTapeReplay, ChargeElemsEntryMatchesMultipliedCharge) {
  // ChargeTape::charge_elems must fold into one entry exactly like
  // Proc::charge_elems folds into one charge.
  ChargeTape bulk;
  bulk.charge_elems(Op::kCopyWord, 123, 2);
  ChargeTape plain;
  plain.charge(Op::kCopyWord, 246);
  ASSERT_EQ(bulk.size(), 1u);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(bulk.entries()[0].kind, plain.entries()[0].kind);
  EXPECT_EQ(bulk.entries()[0].count, plain.entries()[0].count);
}

// --- strict switch parsing ------------------------------------------------

TEST(ChargePathParsing, AcceptsTheTwoKnownNames) {
  EXPECT_EQ(parse_charge_path("interp"), ChargePath::kInterp);
  EXPECT_EQ(parse_charge_path("tape"), ChargePath::kTape);
}

TEST(ChargePathParsing, RejectsUnknownNamesListingAcceptedValues) {
  try {
    parse_charge_path("fast");
    FAIL() << "expected ContractError";
  } catch (const support::ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SKIL_CHARGE"), std::string::npos);
    EXPECT_NE(what.find("fast"), std::string::npos);
    EXPECT_NE(what.find("interp, tape"), std::string::npos);
  }
  EXPECT_THROW(parse_charge_path(""), support::ContractError);
  EXPECT_THROW(parse_charge_path("Tape"), support::ContractError);
}

TEST(EngineParsing, AcceptsTheTwoKnownNames) {
  EXPECT_EQ(parse_execution_engine("threads"), ExecutionEngine::kThreads);
  EXPECT_EQ(parse_execution_engine("pooled"), ExecutionEngine::kPooled);
}

TEST(EngineParsing, RejectsUnknownNamesListingAcceptedValues) {
  try {
    parse_execution_engine("fibers");
    FAIL() << "expected ContractError";
  } catch (const support::ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SKIL_ENGINE"), std::string::npos);
    EXPECT_NE(what.find("fibers"), std::string::npos);
    EXPECT_NE(what.find("threads, pooled"), std::string::npos);
  }
  EXPECT_THROW(parse_execution_engine(""), support::ContractError);
}

// --- default selection ----------------------------------------------------

TEST(ChargePathDefault, SetDefaultRoundTrips) {
  const ChargePath saved = default_charge_path();
  set_default_charge_path(ChargePath::kInterp);
  EXPECT_EQ(default_charge_path(), ChargePath::kInterp);
  set_default_charge_path(ChargePath::kTape);
  EXPECT_EQ(default_charge_path(), ChargePath::kTape);
  set_default_charge_path(saved);
}

}  // namespace
