// Tests for the charge-tape specialization layer (parix/charge_tape.h,
// Proc::replay, DESIGN.md section 8).
//
// The load-bearing property: for every golden application cell, the
// tape path must reproduce the interpretive path's virtual times
// BIT-FOR-BIT -- same vtime, same per-processor vtimes, same per-op
// counters -- under both execution engines.  A tape that merely lands
// "close" has reassociated the dependent FP-add chain and changed the
// scientific artefact.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "parix/charge_tape.h"
#include "parix/executor.h"
#include "parix/runtime.h"
#include "parix_golden_cases.h"
#include "support/error.h"

namespace {

using namespace skil;
using namespace skil::parix;

using skil::testing::GoldenCase;
using skil::testing::golden_cases;
using skil::testing::with_charge_path;
using skil::testing::with_engine;

// --- differential: interp vs tape on every golden cell --------------------

void expect_paths_identical(ExecutionEngine engine) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const RunResult interp = with_engine(engine, [&] {
      return with_charge_path(ChargePath::kInterp, [&] { return c.run(); });
    });
    const RunResult tape = with_engine(engine, [&] {
      return with_charge_path(ChargePath::kTape, [&] { return c.run(); });
    });
    EXPECT_EQ(interp.vtime_us, tape.vtime_us);
    EXPECT_EQ(interp.proc_vtimes, tape.proc_vtimes);
    EXPECT_EQ(interp.total.compute_us, tape.total.compute_us);
    EXPECT_EQ(interp.total.comm_us, tape.total.comm_us);
    ASSERT_EQ(interp.proc_stats.size(), tape.proc_stats.size());
    for (std::size_t p = 0; p < interp.proc_stats.size(); ++p) {
      SCOPED_TRACE(p);
      // Stats::operator== covers compute_us, comm_us, messages, bytes
      // and the full per-op counter array.
      EXPECT_EQ(interp.proc_stats[p], tape.proc_stats[p]);
    }
  }
}

TEST(ChargeTapeDifferential, InterpAndTapeAgreeBitForBitPooled) {
  expect_paths_identical(ExecutionEngine::kPooled);
}

TEST(ChargeTapeDifferential, InterpAndTapeAgreeBitForBitThreads) {
  expect_paths_identical(ExecutionEngine::kThreads);
}

TEST(ChargeTapeDifferential, BothPathsReproduceTheGoldenValues) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    for (ChargePath path : {ChargePath::kInterp, ChargePath::kTape}) {
      SCOPED_TRACE(path == ChargePath::kInterp ? "interp" : "tape");
      const RunResult r =
          with_charge_path(path, [&] { return c.run(); });
      EXPECT_EQ(r.vtime_us, c.vtime_us);
      EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
      EXPECT_EQ(r.total.compute_us, c.compute_us);
      EXPECT_EQ(r.total.comm_us, c.comm_us);
    }
  }
}

// --- replay identity ------------------------------------------------------

TEST(ChargeTapeReplay, IdenticalToPerElementChargeSequence) {
  // replay(tape, times) must equal the hand-rolled charge loop to the
  // last bit: same multiplies, same adds, same order.
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kFloatOp);
  tape.charge(Op::kIndirectCall);
  tape.charge(Op::kAlloc, 2);
  tape.charge(Op::kCopyWord, 4);

  RunConfig config{1, CostModel::t800()};
  const RunResult interp = spmd_run(config, [&](Proc& proc) {
    for (int t = 0; t < 12345; ++t)
      for (const ChargeTape::Entry& e : tape.entries())
        proc.charge(e.kind, e.count);
  });
  const RunResult taped = spmd_run(config, [&](Proc& proc) {
    proc.replay(tape, 12345);
  });
  EXPECT_EQ(interp.vtime_us, taped.vtime_us);
  EXPECT_EQ(interp.total.compute_us, taped.total.compute_us);
  EXPECT_EQ(interp.total.ops, taped.total.ops);
}

TEST(ChargeTapeReplay, InterleavedReplaysExtendTheSameChain) {
  // Splitting one loop's replays (as data-dependent skeleton loops do:
  // replay(tape, tapped) per map call) must still walk one chain.
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kFloatOp);

  RunConfig config{1, CostModel::t800()};
  const RunResult whole = spmd_run(config, [&](Proc& proc) {
    proc.replay(tape, 1000);
  });
  const RunResult split = spmd_run(config, [&](Proc& proc) {
    proc.replay(tape, 1);
    proc.replay(tape, 998);
    proc.replay(tape, 1);
  });
  EXPECT_EQ(whole.vtime_us, split.vtime_us);
  EXPECT_EQ(whole.total.ops, split.total.ops);
}

TEST(ChargeTapeReplay, ZeroTimesAndEmptyTapeAreNoOps) {
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 3);
  ChargeTape empty;

  RunConfig config{1, CostModel::t800()};
  const RunResult r = spmd_run(config, [&](Proc& proc) {
    proc.charge(Op::kIntOp, 7);
    proc.replay(tape, 0);
    proc.replay(empty, 12345);
  });
  const RunResult plain = spmd_run(config, [](Proc& proc) {
    proc.charge(Op::kIntOp, 7);
  });
  EXPECT_EQ(r.vtime_us, plain.vtime_us);
  EXPECT_EQ(r.total.ops, plain.total.ops);
}

TEST(ChargeTapeReplay, ChargeElemsEntryMatchesMultipliedCharge) {
  // ChargeTape::charge_elems must fold into one entry exactly like
  // Proc::charge_elems folds into one charge.
  ChargeTape bulk;
  bulk.charge_elems(Op::kCopyWord, 123, 2);
  ChargeTape plain;
  plain.charge(Op::kCopyWord, 246);
  ASSERT_EQ(bulk.size(), 1u);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(bulk.entries()[0].kind, plain.entries()[0].kind);
  EXPECT_EQ(bulk.entries()[0].count, plain.entries()[0].count);
}

// --- deferred ledger ------------------------------------------------------

TEST(DeferredLedger, SettlementPointsPreserveTheChain) {
  // replay() now defers; every observation point (charge, send, recv,
  // vtime read) must fold the pending records in exactly the order an
  // eager replay would have walked.
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kFloatOp);
  tape.charge(Op::kCall);

  RunConfig config{2, CostModel::t800()};
  auto deferred_body = [&](Proc& proc) {
    const int peer = 1 - proc.id();
    proc.replay(tape, 300);           // pending across the send
    proc.send<int>(peer, 7, proc.id());
    proc.replay(tape, 200);           // pending across the recv
    (void)proc.recv<int>(peer, 7);
    proc.replay(tape, 100);           // pending until the final read
  };
  auto eager_body = [&](Proc& proc) {
    const int peer = 1 - proc.id();
    for (int t = 0; t < 300; ++t)
      for (const ChargeTape::Entry& e : tape.entries())
        proc.charge(e.kind, e.count);
    proc.send<int>(peer, 7, proc.id());
    for (int t = 0; t < 200; ++t)
      for (const ChargeTape::Entry& e : tape.entries())
        proc.charge(e.kind, e.count);
    (void)proc.recv<int>(peer, 7);
    for (int t = 0; t < 100; ++t)
      for (const ChargeTape::Entry& e : tape.entries())
        proc.charge(e.kind, e.count);
  };
  const RunResult deferred = spmd_run(config, deferred_body);
  const RunResult eager = spmd_run(config, eager_body);
  EXPECT_EQ(deferred.proc_vtimes, eager.proc_vtimes);
  ASSERT_EQ(deferred.proc_stats.size(), eager.proc_stats.size());
  for (std::size_t p = 0; p < eager.proc_stats.size(); ++p)
    EXPECT_EQ(deferred.proc_stats[p], eager.proc_stats[p]);
}

TEST(DeferredLedger, DeferredChargesMatchEagerCharges) {
  // The DeferredCharges sink (taped skeleton tails) must settle to the
  // same chain as the eager charges it replaces, in order, including
  // when it coalesces into a pending replay's trailing record.
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 3);

  RunConfig config{1, CostModel::t800()};
  const RunResult deferred = spmd_run(config, [&](Proc& proc) {
    proc.replay(tape, 999);
    DeferredCharges sink(proc);
    sink.charge(Op::kIndirectCall, 50);
    sink.charge_elems(Op::kAlloc, 50, 2);
    sink.charge(Op::kCopyWord, 7);
  });
  const RunResult eager = spmd_run(config, [&](Proc& proc) {
    for (int t = 0; t < 999; ++t) proc.charge(Op::kFloatOp, 3);
    proc.charge(Op::kIndirectCall, 50);
    proc.charge_elems(Op::kAlloc, 50, 2);
    proc.charge(Op::kCopyWord, 7);
  });
  EXPECT_EQ(deferred.vtime_us, eager.vtime_us);
  EXPECT_EQ(deferred.total, eager.total);
}

// --- gang settlement kernel: lane vs scalar bit-equality ------------------

struct LaneFixture {
  std::array<ChargeLedger, kGangWidth> gang_ledgers;
  std::array<ChargeLedger, kGangWidth> scalar_ledgers;
  std::array<double, kGangWidth> gang_vt{};
  std::array<double, kGangWidth> scalar_vt{};
  std::array<Stats, kGangWidth> gang_stats{};
  std::array<Stats, kGangWidth> scalar_stats{};
  std::array<double, kOpKinds> unit{};

  LaneFixture() {
    const CostModel cost = CostModel::t800();
    for (int k = 0; k < kOpKinds; ++k)
      unit[k] = cost.unit(static_cast<Op>(k));
    for (int l = 0; l < kGangWidth; ++l) {
      // Distinct starting clocks and compute totals per lane so a
      // cross-lane mixup cannot cancel out.
      gang_vt[l] = scalar_vt[l] = 1000.0 + 3.125 * l;
      gang_stats[l].compute_us = scalar_stats[l].compute_us = 17.0 * l;
    }
  }

  void append(int lane, const ChargeTape& tape, std::uint64_t times) {
    gang_ledgers[lane].append_replay(tape, unit.data(), times);
    scalar_ledgers[lane].append_replay(tape, unit.data(), times);
  }

  /// Settles the scalar lanes one by one, the gang lanes in one fused
  /// call, and asserts every lane's vtime, compute_us and op counters
  /// are bit-identical (EXPECT_EQ on double is exact equality).
  void settle_and_compare(int k) {
    std::array<GangLane, kGangWidth> lanes;
    for (int l = 0; l < k; ++l)
      lanes[l] = GangLane{&gang_ledgers[l], &gang_vt[l], &gang_stats[l]};
    gang_settle(lanes.data(), k);
    for (int l = 0; l < k; ++l)
      scalar_ledgers[l].settle(scalar_vt[l], scalar_stats[l]);
    for (int l = 0; l < k; ++l) {
      SCOPED_TRACE(l);
      EXPECT_EQ(gang_vt[l], scalar_vt[l]);
      EXPECT_EQ(gang_stats[l], scalar_stats[l]);
      EXPECT_TRUE(gang_ledgers[l].empty());
    }
  }
};

TEST(GangSettle, UniformShapesLaneVsScalarBitIdentical) {
  // Every lane on the same tape shape with different repetition
  // counts: the kernel's vector lockstep path, chunked at the minimum
  // remaining count.  Per-lane IEEE vector adds must land every lane
  // exactly where its scalar chain lands.
  LaneFixture fx;
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kFloatOp);
  tape.charge(Op::kCall, 3);
  tape.charge(Op::kIntOp, 7);
  for (int l = 0; l < kGangWidth; ++l)
    fx.append(l, tape, 500 + 137 * static_cast<std::uint64_t>(l));
  fx.settle_and_compare(kGangWidth);
}

TEST(GangSettle, DivergentShapesLaneVsScalarBitIdentical) {
  // Different tape lengths per lane force the software-pipelined
  // scalar rounds; lanes retire at different times.
  LaneFixture fx;
  for (int l = 0; l < kGangWidth; ++l) {
    ChargeTape tape;
    for (int i = 0; i <= l; ++i)
      tape.charge(static_cast<Op>((l + i) % kOpKinds), 1 + i);
    fx.append(l, tape, 100 + 31 * static_cast<std::uint64_t>(l));
  }
  fx.settle_and_compare(kGangWidth);
}

TEST(GangSettle, MixedRecordsAndEarlyRetiringLanes) {
  // Multiple records per lane, uniform prefix then divergent tails,
  // one lane left empty: the kernel flips between its vector and
  // pipelined paths and peels lanes as their ledgers drain.
  LaneFixture fx;
  ChargeTape common;
  common.charge(Op::kFloatOp, 2);
  common.charge(Op::kAlloc);
  for (int l = 0; l < kGangWidth - 1; ++l) {
    fx.append(l, common, 200);
    if (l % 2 == 0) {
      ChargeTape extra;
      for (int i = 0; i < 3 + l; ++i) extra.charge(Op::kCopyWord, 1 + i);
      fx.append(l, extra, 40 + static_cast<std::uint64_t>(l));
    }
    if (l % 3 == 0) fx.append(l, common, 11);
  }
  fx.settle_and_compare(kGangWidth);  // last lane: empty ledger
}

TEST(GangSettle, SingleLaneMatchesScalar) {
  LaneFixture fx;
  ChargeTape tape;
  tape.charge(Op::kFloatOp);
  tape.charge(Op::kCall, 2);
  fx.append(0, tape, 12345);
  fx.settle_and_compare(1);
}

// --- multi-carrier golden equality ----------------------------------------

TEST(MultiCarrier, GoldenCellsBitIdenticalAcrossCarrierCounts) {
  // The pooled engine must reproduce every golden cell bit-for-bit
  // with gang settlement off (1 carrier) and on (4 carriers), under
  // both charge paths.  The dpfl cells' elimination replays exceed the
  // gang batching threshold, so the 4-carrier tape runs really do
  // settle through the fused kernel.  Pinned to SettleMode::kGang:
  // under the kAuto default the algebraic engine retires the replays
  // closed-form and the batch counter assertion below would see no
  // gang activity (kAuto coverage lives in SettleModeGolden).
  const SettleMode saved_settle = default_settle_mode();
  set_default_settle_mode(SettleMode::kGang);
  for (int carriers : {1, 4}) {
    SCOPED_TRACE(carriers);
    executor_set_carriers(carriers);
    const GangCounters before = gang_counters();
    for (const GoldenCase& c : golden_cases()) {
      SCOPED_TRACE(c.name);
      for (ChargePath path : {ChargePath::kInterp, ChargePath::kTape}) {
        SCOPED_TRACE(path == ChargePath::kInterp ? "interp" : "tape");
        const RunResult r = with_engine(ExecutionEngine::kPooled, [&] {
          return with_charge_path(path, [&] { return c.run(); });
        });
        EXPECT_EQ(r.vtime_us, c.vtime_us);
        EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
        EXPECT_EQ(r.total.compute_us, c.compute_us);
        EXPECT_EQ(r.total.comm_us, c.comm_us);
        EXPECT_EQ(r.total.messages_sent, c.messages_sent);
        EXPECT_EQ(r.total.bytes_sent, c.bytes_sent);
      }
    }
    const GangCounters after = gang_counters();
    if (carriers == 1) {
      // Gang settlement is gated on carriers > 1 so the single-carrier
      // pool reproduces the PR 3 behaviour exactly.
      EXPECT_EQ(after.batches, before.batches);
    } else {
      // The equality above would hold vacuously if the scheduler
      // always declined; the counters prove the fused path really ran.
      EXPECT_GT(after.batches, before.batches);
      EXPECT_GE(after.lanes, after.batches);
    }
  }
  executor_set_carriers(0);  // restore the SKIL_CARRIERS / hw default
  set_default_settle_mode(saved_settle);
}

TEST(MultiCarrier, SetCarriersRoundTripsAndRejectsBadCounts) {
  executor_set_carriers(3);
  EXPECT_EQ(executor_carriers(), 3);
  executor_set_carriers(0);
  EXPECT_GE(executor_carriers(), 1);
  EXPECT_THROW(executor_set_carriers(-1), support::ContractError);
  EXPECT_THROW(executor_set_carriers(257), support::ContractError);
}

// --- algebraic settlement: closed-form walk vs plain-chain oracle ---------

// Twin-ledger differential: appends the same records to two ledgers,
// settles one via settle_algebraic and the other via the plain-chain
// settle() oracle, and requires bit-identical clocks and stats
// (EXPECT_EQ on double is exact equality).  This is the load-bearing
// exactness predicate of DESIGN.md section 12: the ulp walk must land
// on the same bits as executing every dependent add.
struct SettleFixture {
  std::array<double, kOpKinds> unit{};

  SettleFixture() {
    const CostModel cost = CostModel::t800();
    for (int k = 0; k < kOpKinds; ++k)
      unit[k] = cost.unit(static_cast<Op>(k));
  }

  void expect_algebraic_matches_chain(const ChargeTape& tape,
                                      std::uint64_t times, double start_vt) {
    ChargeLedger alg, ora;
    alg.append_replay(tape, unit.data(), times);
    ora.append_replay(tape, unit.data(), times);
    double vt_a = start_vt, vt_o = start_vt;
    Stats st_a, st_o;
    alg.settle_algebraic(vt_a, st_a);
    ora.settle(vt_o, st_o);
    EXPECT_EQ(vt_a, vt_o);
    EXPECT_EQ(st_a, st_o);
    EXPECT_TRUE(alg.empty());
    EXPECT_TRUE(ora.empty());
  }
};

TEST(AlgebraicSettle, T800UnitsAcrossManyStartClocksAndCounts) {
  SettleFixture fx;
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kIntOp, 3);
  tape.charge(Op::kCall);
  for (double start : {0.0, 1.0, 1000.0, 1000.5, 123456.78125, 1e9}) {
    SCOPED_TRACE(start);
    for (std::uint64_t times : {1ull, 3ull, 4ull, 5ull, 1000ull, 65537ull}) {
      SCOPED_TRACE(times);
      fx.expect_algebraic_matches_chain(tape, times, start);
    }
  }
}

TEST(AlgebraicSettle, RepresentabilityBoundaryAtTwoPow53) {
  // Above 2^53 the clock's ulp exceeds 1.0 and small addends start
  // rounding; the walk must re-probe at the binade crossing and keep
  // matching the chain bit-for-bit through and beyond it.
  SettleFixture fx;
  fx.unit[static_cast<int>(Op::kFloatOp)] = 1.5;
  ChargeTape tape;
  tape.charge(Op::kFloatOp);
  const double two53 = 9007199254740992.0;  // 2^53
  for (double start : {two53 - 4096.0, two53 - 3.0, two53, two53 + 2.0,
                       9.9e15, 1e16}) {
    SCOPED_TRACE(start);
    fx.expect_algebraic_matches_chain(tape, 10000, start);
  }
}

TEST(AlgebraicSettle, RoundHalfEvenTieCases) {
  // Exact .5-ulp ties are the only data dependence of the period
  // delta; exercise both tie behaviours in the ulp-1.0 binade
  // [2^52, 2^53).
  SettleFixture fx;
  const double two52 = 4503599627370496.0;  // 2^52
  {
    // addend 0.5 = an exact half-ulp tie every add: even clocks are
    // fixed points (round-to-even stays), odd clocks take one step up
    // then stick.
    SettleFixture half = fx;
    half.unit[static_cast<int>(Op::kFloatOp)] = 0.5;
    ChargeTape tape;
    tape.charge(Op::kFloatOp);
    half.expect_algebraic_matches_chain(tape, 100000, two52 + 100.0);
    half.expect_algebraic_matches_chain(tape, 100000, two52 + 101.0);
  }
  {
    // addend 1.5: the fractional half ties on every add but the
    // resolution alternates with parity (even -> +2, odd -> +1), the
    // odd/odd paired-walk case.
    SettleFixture sesqui = fx;
    sesqui.unit[static_cast<int>(Op::kFloatOp)] = 1.5;
    ChargeTape tape;
    tape.charge(Op::kFloatOp);
    sesqui.expect_algebraic_matches_chain(tape, 100000, two52 + 100.0);
    sesqui.expect_algebraic_matches_chain(tape, 100000, two52 + 101.0);
  }
}

TEST(AlgebraicSettle, SubnormalAndZeroStartClocks) {
  // The walk's ulp domain extends down into the subnormals (ebits ==
  // 0 maps to m = raw bits); climbing out of the subnormal range into
  // the normal binades must stay exact.
  SettleFixture fx;
  fx.unit[static_cast<int>(Op::kFloatOp)] = 4.9406564584124654e-324;  // min subnormal
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 3);
  for (double start : {0.0, 4.9406564584124654e-324,
                       2.2250738585072014e-308 /* DBL_MIN */}) {
    SCOPED_TRACE(start);
    fx.expect_algebraic_matches_chain(tape, 50000, start);
  }
}

TEST(AlgebraicSettle, NegativeAndNonFiniteAddendsPinToTheChain) {
  // A negative or +inf addend breaks the monotone ulp model; the
  // record must be flagged chain_only at append time and settle
  // through the plain chain, still bit-identical to the oracle.
  SettleFixture neg;
  neg.unit[static_cast<int>(Op::kFloatOp)] = -2.5;
  ChargeTape tape;
  tape.charge(Op::kFloatOp);
  tape.charge(Op::kIntOp);
  {
    ChargeLedger led;
    led.append_replay(tape, neg.unit.data(), 100);
    ASSERT_EQ(led.records().size(), 1u);
    EXPECT_TRUE(led.records()[0].chain_only);
    EXPECT_EQ(led.pending_chain_adds(), led.pending_adds());
  }
  neg.expect_algebraic_matches_chain(tape, 1000, 1000.0);

  SettleFixture inf;
  inf.unit[static_cast<int>(Op::kFloatOp)] =
      std::numeric_limits<double>::infinity();
  inf.expect_algebraic_matches_chain(tape, 100, 1000.0);
}

TEST(AlgebraicSettle, FuzzRandomTapesClocksAndUnits) {
  // LCG-driven sweep over tape shapes, repetition counts, start clocks
  // and (positive, finite) unit tables, including fractional units
  // that tie frequently.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (int round = 0; round < 200; ++round) {
    SCOPED_TRACE(round);
    SettleFixture fx;
    for (int k = 0; k < kOpKinds; ++k)
      fx.unit[k] = static_cast<double>(next() % 4096) * 0.03125;  // 0..128, /32
    ChargeTape tape;
    const int entries = 1 + static_cast<int>(next() % 5);
    for (int i = 0; i < entries; ++i)
      tape.charge(static_cast<Op>(next() % kOpKinds), 1 + next() % 7);
    const std::uint64_t times = 1 + next() % 20000;
    const double start =
        static_cast<double>(next() % 2000000) * 0.5 +
        (round % 4 == 0 ? 9.007e15 : 0.0);  // sometimes near 2^53
    fx.expect_algebraic_matches_chain(tape, times, start);
  }
}

// --- cross-replay memo and tape identity ----------------------------------

TEST(SettleMemo, RepeatedReplaysOfOneTapeHitTheMemo) {
  // The same tape settled repeatedly (the sweep's per-element replay
  // pattern) must serve its period deltas from the memo after the
  // first probe -- and stay bit-identical to the chain oracle from
  // every distinct start clock.
  SettleFixture fx;
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 3);
  tape.charge(Op::kIntOp, 2);
  const SettleCounters before = settle_counters();
  for (int i = 0; i < 16; ++i) {
    SCOPED_TRACE(i);
    fx.expect_algebraic_matches_chain(tape, 5000, 1000.0 + 3.0 * i);
  }
  const SettleCounters after = settle_counters();
  EXPECT_GT(after.memo_hits, before.memo_hits);
  EXPECT_GT(after.closed_adds + after.memo_adds,
            before.closed_adds + before.memo_adds);
}

TEST(TapeIdentity, CopiesGetFreshIdsMovesTransferThem) {
  ChargeTape a;
  a.charge(Op::kFloatOp);
  const std::uint64_t id_a = a.id();
  EXPECT_NE(id_a, 0u);

  ChargeTape copy(a);
  EXPECT_NE(copy.id(), id_a);

  ChargeTape assigned;
  assigned = a;
  EXPECT_NE(assigned.id(), id_a);
  EXPECT_NE(assigned.id(), copy.id());

  ChargeTape moved(std::move(a));
  EXPECT_EQ(moved.id(), id_a);
  // The moved-from tape is re-armed with a fresh identity: its
  // (previously recorded) id must never be reusable for new content.
  EXPECT_NE(a.id(), id_a);  // NOLINT(bugprone-use-after-move)
}

TEST(TapeIdentity, CoalescedChargeRecordsDropTheTapeId) {
  // append_charge growing a times==1 replay record changes the entry
  // sequence behind the record's (tape_id, n) name; the identity must
  // be dropped so the memo can never serve deltas for the wrong
  // sequence.
  SettleFixture fx;
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  ChargeLedger led;
  led.append_replay(tape, fx.unit.data(), 1);
  ASSERT_EQ(led.records().size(), 1u);
  EXPECT_EQ(led.records()[0].tape_id, tape.id());
  led.append_charge(Op::kIntOp, 1, fx.unit[static_cast<int>(Op::kIntOp)]);
  ASSERT_EQ(led.records().size(), 1u);  // coalesced
  EXPECT_EQ(led.records()[0].tape_id, 0u);
}

TEST(SettlePrefix, WalkablePrefixSettlesAndChainResidueStaysPending) {
  SettleFixture fx;
  ChargeTape tape;
  tape.charge(Op::kFloatOp, 2);
  tape.charge(Op::kCall);

  ChargeLedger led, ora;
  for (ChargeLedger* l : {&led, &ora}) {
    l->append_replay(tape, fx.unit.data(), 100);      // walkable
    l->append_charge(Op::kIntOp, 1,
                     fx.unit[static_cast<int>(Op::kIntOp)]);  // chain-bound
    l->append_replay(tape, fx.unit.data(), 50);       // walkable again
  }
  ASSERT_EQ(led.records().size(), 3u);
  EXPECT_EQ(led.pending_adds(), 200u + 1u + 100u);

  double vt = 1000.0, vo = 1000.0;
  Stats st, so;
  led.settle_algebraic_prefix(vt, st);
  // Only the leading walkable record settles; the chain record and
  // everything after it stay pending behind the head cursor.
  EXPECT_EQ(led.head(), 1u);
  EXPECT_FALSE(led.empty());
  EXPECT_EQ(led.pending_adds(), 101u);
  led.settle(vt, st);  // retire the residue through the plain chain
  EXPECT_TRUE(led.empty());

  ora.settle(vo, so);
  EXPECT_EQ(vt, vo);
  EXPECT_EQ(st, so);
}

// --- settlement modes on the golden cells ---------------------------------

TEST(SettleModeGolden, AllModesReproduceGoldenValuesBitForBit) {
  // gang / closed / auto retire the identical dependent add chain, so
  // every golden cell must land on the golden values under each mode
  // (the per-run counters prove the closed-form path really engaged
  // rather than silently falling back to the chain).
  const SettleMode saved = default_settle_mode();
  for (SettleMode mode :
       {SettleMode::kGang, SettleMode::kClosed, SettleMode::kAuto}) {
    SCOPED_TRACE(settle_mode_name(mode));
    set_default_settle_mode(mode);
    const SettleCounters before = settle_counters();
    for (const GoldenCase& c : golden_cases()) {
      SCOPED_TRACE(c.name);
      const RunResult r = with_charge_path(ChargePath::kTape, [&] {
        return c.run();
      });
      EXPECT_EQ(r.vtime_us, c.vtime_us);
      EXPECT_EQ(r.proc_vtimes, c.proc_vtimes);
      EXPECT_EQ(r.total.compute_us, c.compute_us);
      EXPECT_EQ(r.total.comm_us, c.comm_us);
    }
    const SettleCounters after = settle_counters();
    if (mode != SettleMode::kGang)
      EXPECT_GT(after.closed_runs, before.closed_runs);
  }
  set_default_settle_mode(saved);
}

// --- strict switch parsing ------------------------------------------------

TEST(SettleModeParsing, AcceptsTheThreeKnownNames) {
  EXPECT_EQ(parse_settle_mode("gang"), SettleMode::kGang);
  EXPECT_EQ(parse_settle_mode("closed"), SettleMode::kClosed);
  EXPECT_EQ(parse_settle_mode("auto"), SettleMode::kAuto);
}

TEST(SettleModeParsing, RejectsUnknownNamesListingAcceptedValues) {
  try {
    parse_settle_mode("eager");
    FAIL() << "expected ContractError";
  } catch (const support::ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SKIL_SETTLE"), std::string::npos);
    EXPECT_NE(what.find("eager"), std::string::npos);
    EXPECT_NE(what.find("gang, closed, auto"), std::string::npos);
  }
  EXPECT_THROW(parse_settle_mode(""), support::ContractError);
  EXPECT_THROW(parse_settle_mode("Auto"), support::ContractError);
}

TEST(SettleModeParsing, NamesRoundTripThroughTheParser) {
  for (SettleMode mode :
       {SettleMode::kGang, SettleMode::kClosed, SettleMode::kAuto})
    EXPECT_EQ(parse_settle_mode(settle_mode_name(mode)), mode);
}

TEST(SettleModeDefault, SetDefaultRoundTrips) {
  const SettleMode saved = default_settle_mode();
  for (SettleMode mode :
       {SettleMode::kGang, SettleMode::kClosed, SettleMode::kAuto}) {
    set_default_settle_mode(mode);
    EXPECT_EQ(default_settle_mode(), mode);
  }
  set_default_settle_mode(saved);
}

TEST(ChargePathParsing, AcceptsTheTwoKnownNames) {
  EXPECT_EQ(parse_charge_path("interp"), ChargePath::kInterp);
  EXPECT_EQ(parse_charge_path("tape"), ChargePath::kTape);
}

TEST(ChargePathParsing, RejectsUnknownNamesListingAcceptedValues) {
  try {
    parse_charge_path("fast");
    FAIL() << "expected ContractError";
  } catch (const support::ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SKIL_CHARGE"), std::string::npos);
    EXPECT_NE(what.find("fast"), std::string::npos);
    EXPECT_NE(what.find("interp, tape"), std::string::npos);
  }
  EXPECT_THROW(parse_charge_path(""), support::ContractError);
  EXPECT_THROW(parse_charge_path("Tape"), support::ContractError);
}

TEST(EngineParsing, AcceptsTheTwoKnownNames) {
  EXPECT_EQ(parse_execution_engine("threads"), ExecutionEngine::kThreads);
  EXPECT_EQ(parse_execution_engine("pooled"), ExecutionEngine::kPooled);
}

TEST(EngineParsing, RejectsUnknownNamesListingAcceptedValues) {
  try {
    parse_execution_engine("fibers");
    FAIL() << "expected ContractError";
  } catch (const support::ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SKIL_ENGINE"), std::string::npos);
    EXPECT_NE(what.find("fibers"), std::string::npos);
    EXPECT_NE(what.find("threads, pooled"), std::string::npos);
  }
  EXPECT_THROW(parse_execution_engine(""), support::ContractError);
}

// --- default selection ----------------------------------------------------

TEST(ChargePathDefault, SetDefaultRoundTrips) {
  const ChargePath saved = default_charge_path();
  set_default_charge_path(ChargePath::kInterp);
  EXPECT_EQ(default_charge_path(), ChargePath::kInterp);
  set_default_charge_path(ChargePath::kTape);
  EXPECT_EQ(default_charge_path(), ChargePath::kTape);
  set_default_charge_path(saved);
}

}  // namespace
