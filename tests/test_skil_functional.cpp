// Tests for the functional features: currying, partial application,
// operator sections (paper section 2.1).
#include <gtest/gtest.h>

#include <string>

#include "skil/functional.h"

namespace {

using namespace skil;

int add3(int a, int b, int c) { return a + b + c; }

TEST(Partial, BindsLeadingArguments) {
  auto add_1_2 = partial(add3, 1, 2);
  EXPECT_EQ(add_1_2(3), 6);
  auto add_10 = partial(add3, 10);
  EXPECT_EQ(add_10(20, 30), 60);
}

TEST(Partial, WorksWithLambdasAndCaptures) {
  int base = 100;
  auto f = [base](int x, int y) { return base + x * y; };
  auto f6 = partial(f, 6);
  EXPECT_EQ(f6(7), 142);
}

TEST(Partial, ZeroBoundArgumentsIsIdentityWrapping) {
  auto f = partial(add3);
  EXPECT_EQ(f(1, 2, 3), 6);
}

TEST(Curry, OneArgumentAtATime) {
  auto curried = curry(add3);
  EXPECT_EQ(curried(1)(2)(3), 6);
}

TEST(Curry, SeveralArgumentsAtOnce) {
  auto curried = curry(add3);
  EXPECT_EQ(curried(1, 2)(3), 6);
  EXPECT_EQ(curried(1)(2, 3), 6);
  EXPECT_EQ(curried(1, 2, 3), 6);
}

TEST(Curry, PartialApplicationsAreReusable) {
  auto curried = curry(add3);
  auto plus_ten = curried(10);
  EXPECT_EQ(plus_ten(1)(2), 13);
  EXPECT_EQ(plus_ten(5)(5), 20);  // the partial application is a value
}

TEST(Curry, MirrorsThePapersDivideAndConquer) {
  // The d&c skeleton from the paper's introduction, curried like the
  // Skil call d&c(is_trivial, solve, split, join)(problem).
  std::function<int(std::function<bool(int)>, std::function<int(int)>,
                    int)>
      dc_impl = [&dc_impl](std::function<bool(int)> trivial,
                           std::function<int(int)> solve, int problem) -> int {
    if (trivial(problem)) return solve(problem);
    return dc_impl(trivial, solve, problem / 2) +
           dc_impl(trivial, solve, problem - problem / 2);
  };
  auto dc = curry(dc_impl);
  // Sum 1 for every unit: counts the leaves = problem size.
  auto count = dc([](int n) { return n <= 1; })([](int n) { return n; });
  EXPECT_EQ(count(10), 10);
  EXPECT_EQ(count(1), 1);
}

TEST(Sections, OperatorObjects) {
  EXPECT_EQ(fn::plus(2, 3), 5);
  EXPECT_EQ(fn::minus(2, 3), -1);
  EXPECT_EQ(fn::times(4, 5), 20);
  EXPECT_EQ(fn::divide(20, 5), 4);
  EXPECT_EQ(fn::min(2, 3), 2);
  EXPECT_EQ(fn::max(2, 3), 3);
  EXPECT_EQ(fn::identity(42), 42);
  EXPECT_DOUBLE_EQ(fn::plus(1.5, 2.25), 3.75);
}

TEST(Sections, LeftSectionLikeTimesTwo) {
  // The paper's map((*)(2), lst2).
  auto times2 = fn::section(fn::times, 2);
  EXPECT_EQ(times2(21), 42);
  auto hundred_minus = fn::section(fn::minus, 100);
  EXPECT_EQ(hundred_minus(1), 99);
}

TEST(Sections, ComposeWithPartial) {
  auto clamp = [](int lo, int hi, int v) {
    return fn::max(lo, fn::min(hi, v));
  };
  auto clamp01 = partial(clamp, 0, 1);
  EXPECT_EQ(clamp01(-5), 0);
  EXPECT_EQ(clamp01(5), 1);
  EXPECT_EQ(clamp01(1), 1);
}

TEST(Sections, StringConcatenationIsPolymorphic) {
  const std::string hello = "hello ";
  EXPECT_EQ(fn::plus(hello, std::string("world")), "hello world");
}

}  // namespace
