// Golden application runs shared by the engine and charge-path test
// suites (test_parix_engines.cpp, test_parix_charge_tape.cpp).
//
// The golden values (hexfloat, bit-exact) were captured from the seed
// implementation; any engine, charge-path or skeleton change that
// moves one of them has changed the scientific artefact, not just the
// host performance.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/gauss.h"
#include "apps/shortest_paths.h"
#include "parix/charge_tape.h"
#include "parix/runtime.h"

namespace skil::testing {

constexpr std::uint64_t kGoldenSeed = 19960528;

struct GoldenCase {
  const char* name;
  parix::RunResult (*run)();
  double vtime_us;
  std::vector<double> proc_vtimes;
  std::uint64_t messages_sent;
  std::uint64_t bytes_sent;
  double compute_us;
  double comm_us;
  /// Deterministic virtual time of the same cell under SKIL_FUSE=on
  /// (tape path; engine- and settle-invariant like vtime_us).  Equal
  /// to vtime_us for variants with no fusible composition (the
  /// hand-written C programs).  Captured with the seed goldens'
  /// procedure; test_skil_fusion.cpp pins them bit-exactly.
  double fused_vtime_us;
};

/// Runs `fn` with `mode` as the process-wide default collective mode,
/// restoring the previous default afterwards.  The golden cases below
/// pin SKIL_COLL=tree internally: their values capture the seed
/// binomial-tree communication schedule, and PR 9's zoo keeps that
/// schedule message-for-message identical under tree while the other
/// modes get their own goldens (tests/test_parix_coll_algos.cpp).
template <class Fn>
auto with_coll_mode(parix::CollMode mode, Fn&& fn) {
  const parix::CollMode saved = parix::default_coll_mode();
  parix::set_default_coll_mode(mode);
  auto result = fn();
  parix::set_default_coll_mode(saved);
  return result;
}

inline const std::vector<GoldenCase>& golden_cases() {
  constexpr std::uint64_t kSeed = kGoldenSeed;
  static const std::vector<GoldenCase> cases = {
      {"gauss_skil_p4_n64",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_skil(4, 64, kSeed, false).run; }); },
       0x1.0245ad999999bp+21,
       {0x1.0245ad999999bp+21, 0x1.0092dcp+21, 0x1.00b035999999ap+21,
        0x1.00850f3333334p+21},
       195, 126360, 0x1.ecdaba6666666p+22, 0x1.52c2ccccccce1p+18,
       0x1.a56bde6666667p+20},
      {"gauss_dpfl_p4_n64",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_dpfl(4, 64, kSeed).run; }); },
       0x1.b9b7abfffe8afp+23,
       {0x1.b9b7abfffe8afp+23, 0x1.b961326664f14p+23, 0x1.b96888cccb57ap+23,
        0x1.b95b059998249p+23},
       195, 126360, 0x1.b1ea5b999864bp+25, 0x1.e32fe66657a76p+19,
       0x1.200106000050dp+23},
      {"gauss_c_p4_n64",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_c(4, 64, kSeed).run; }); },
       0x1.f6404cccccccbp+19,
       {0x1.f6404cccccccbp+19, 0x1.f5a5fffffffffp+19, 0x1.f61b666666665p+19,
        0x1.f577cccccccccp+19},
       195, 101784, 0x1.cd88p+21, 0x1.42b2ffffffff7p+18,
       0x1.f6404cccccccbp+19},
      {"gauss_skil_p16_n64",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_skil(16, 64, kSeed, false).run; }); },
       0x1.5de7766666664p+19,
       {0x1.5de7766666664p+19, 0x1.585d7cccccccbp+19, 0x1.588bafffffffep+19,
        0x1.57cf166666665p+19, 0x1.58d2e33333332p+19, 0x1.588baffffffffp+19,
        0x1.58b9e33333332p+19, 0x1.5787e33333331p+19, 0x1.588bafffffffep+19,
        0x1.58447cccccccbp+19, 0x1.5872afffffffep+19, 0x1.57b6166666664p+19,
        0x1.58b9e33333331p+19, 0x1.5872afffffffep+19, 0x1.58a0e33333331p+19,
        0x1.57097cccccccbp+19},
       975, 538200, 0x1.06a8b13333333p+23, 0x1.47e1399999993p+21,
       0x1.28ebdcccccccbp+19},
      {"gauss_dpfl_p16_n64",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_dpfl(16, 64, kSeed).run; }); },
       0x1.069fb99999fbap+22,
       {0x1.069fb99999fbap+22, 0x1.06157ccccd2eep+22, 0x1.061b433333954p+22,
        0x1.0603b00000621p+22, 0x1.0624299999fbbp+22, 0x1.061b433333954p+22,
        0x1.0621099999fbap+22, 0x1.05fac99999fbbp+22, 0x1.061b433333955p+22,
        0x1.06125ccccd2eep+22, 0x1.0618233333954p+22, 0x1.0600900000621p+22,
        0x1.0621099999fbbp+22, 0x1.0618233333954p+22, 0x1.061de99999fbap+22,
        0x1.05e5899999fbap+22},
       975, 538200, 0x1.d940680000607p+25, 0x1.97af1ccccf598p+22,
       0x1.5b40c19999e54p+21},
      {"gauss_c_p16_n64",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_c(16, 64, kSeed).run; }); },
       0x1.7e1dffffffffep+18,
       {0x1.7e1dffffffffep+18, 0x1.7af7999999998p+18, 0x1.7b53ffffffffep+18,
        0x1.79daccccccccbp+18, 0x1.7be2666666665p+18, 0x1.7b53ffffffffep+18,
        0x1.7bb0666666664p+18, 0x1.794c666666665p+18, 0x1.7b53fffffffffp+18,
        0x1.7ac5999999998p+18, 0x1.7b21ffffffffep+18, 0x1.79a8ccccccccbp+18,
        0x1.7bb0666666665p+18, 0x1.7b21ffffffffep+18, 0x1.7b7e666666664p+18,
        0x1.7861999999998p+18},
       975, 507480, 0x1.cd88p+21, 0x1.2879cccccccc9p+21,
       0x1.7e1dffffffffep+18},
      {"gauss_skil_p4_n128",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_skil(4, 128, kSeed, false).run; }); },
       0x1.e2bc44999999ap+23,
       {0x1.e2bc44999999ap+23, 0x1.e10a436666666p+23, 0x1.e117336666666p+23,
        0x1.e104036666666p+23},
       387, 498456, 0x1.da53674ccccccp+25, 0x1.c94219999999ep+19,
       0x1.86bfa56666667p+23},
      {"gauss_dpfl_p4_n128",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_dpfl(4, 128, kSeed).run; }); },
       0x1.a4779cb342478p+26,
       {0x1.a4779cb342478p+26, 0x1.a44b60b342479p+26, 0x1.a44cfeb342479p+26,
        0x1.a44a41800f145p+26},
       387, 498456, 0x1.a109add9a816ap+28, 0x1.a670c666b1133p+21,
       0x1.112075f33f6b6p+26},
      {"gauss_c_p4_n128",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_c(4, 128, kSeed).run; }); },
       0x1.cc2f233333333p+22,
       {0x1.cc2f233333333p+22, 0x1.cc0f4p+22, 0x1.cc292p+22, 0x1.cc03ep+22},
       387, 400152, 0x1.beb2p+24, 0x1.ad1b199999998p+19,
       0x1.cc2f233333333p+22},
      {"shpaths_skil_p4_n32",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::shpaths_skil(4, 32, kSeed).run; }); },
       0x1.3ab5a00000001p+19,
       {0x1.3ab5a00000001p+19, 0x1.3a02d9999999ap+19, 0x1.39804p+19,
        0x1.39c18cccccccdp+19},
       123, 126936, 0x1.2c5244cccccccp+21, 0x1.b5899999999c2p+16,
       0x1.36c0d33333334p+19},
      {"shpaths_dpfl_p4_n32",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::shpaths_dpfl(4, 32, kSeed).run; }); },
       0x1.d870fccccccccp+21,
       {0x1.d870fccccccccp+21, 0x1.d840033333333p+21, 0x1.d82d433333333p+21,
        0x1.d83d966666666p+21},
       103, 106296, 0x1.d5c49p+23, 0x1.41333333332f2p+16,
       0x1.d780fccccccccp+21},
      {"shpaths_c_opt_p4_n32",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::shpaths_c(4, 32, kSeed, true).run; }); },
       0x1.0d55333333334p+19,
       {0x1.0d55333333334p+19, 0x1.0c914cccccccdp+19, 0x1.0c464ccccccccp+19,
        0x1.0c8799999999ap+19},
       63, 65016, 0x1.05918p+21, 0x1.c6e6666666687p+15,
       0x1.0d55333333334p+19},
      {"shpaths_skil_p16_n48",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::shpaths_skil(16, 48, kSeed).run; }); },
       0x1.4f94acccccccep+19,
       {0x1.4f94acccccccep+19, 0x1.497ae66666665p+19, 0x1.48fcccccccccdp+19,
        0x1.4d2de66666667p+19, 0x1.48957fffffffep+19, 0x1.4894666666665p+19,
        0x1.4946b33333331p+19, 0x1.48fa999999998p+19, 0x1.4898ccccccccbp+19,
        0x1.4914b33333332p+19, 0x1.48e3cccccccccp+19, 0x1.4914b33333332p+19,
        0x1.4ce2e66666667p+19, 0x1.48fa999999998p+19, 0x1.48e07fffffffep+19,
        0x1.4ce2e66666667p+19},
       1071, 625464, 0x1.2ed1813333333p+23, 0x1.b4d44ccccccdp+19,
       0x1.476979999999bp+19},
      {"shpaths_dpfl_p16_n48",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::shpaths_dpfl(16, 48, kSeed).run; }); },
       0x1.e11abccccccccp+21,
       {0x1.e11abccccccccp+21, 0x1.e00af66666667p+21, 0x1.e004700000001p+21,
        0x1.e096a99999999p+21, 0x1.dff8366666667p+21, 0x1.e004700000001p+21,
        0x1.dfdea9999999bp+21, 0x1.dff8366666667p+21, 0x1.dff1b00000001p+21,
        0x1.dff8366666667p+21, 0x1.dff7fp+21, 0x1.dff1b00000001p+21,
        0x1.e083e99999999p+21, 0x1.dfeae33333334p+21, 0x1.dff8366666668p+21,
        0x1.e083e99999999p+21},
       927, 541368, 0x1.daf8dp+25, 0x1.4b171999999b6p+19,
       0x1.df34bccccccccp+21},
      {"shpaths_c_opt_p16_n48",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::shpaths_c(16, 48, kSeed, true).run; }); },
       0x1.1da67ffffffffp+19,
       {0x1.1da67ffffffffp+19, 0x1.1980666666664p+19, 0x1.19664cccccccbp+19,
        0x1.1baf333333332p+19, 0x1.1935666666664p+19, 0x1.19664cccccccbp+19,
        0x1.18cf333333331p+19, 0x1.1935666666663p+19, 0x1.191b4cccccccbp+19,
        0x1.1935666666663p+19, 0x1.19344cccccccbp+19, 0x1.191b4cccccccap+19,
        0x1.1b64333333332p+19, 0x1.1900199999997p+19, 0x1.1935666666664p+19,
        0x1.1b64333333332p+19},
       735, 429240, 0x1.08bbccccccccap+23, 0x1.12be199999997p+19,
       0x1.1da67ffffffffp+19},
      {"gauss_skil_pivot_p4_n32",
       [] { return with_coll_mode(parix::CollMode::kTree, [] { return apps::gauss_skil(4, 32, kSeed, true).run; }); },
       0x1.ee1b866666666p+18,
       {0x1.ee1b866666666p+18, 0x1.eaa6933333333p+18, 0x1.eb37c66666666p+18,
        0x1.ea64f99999999p+18},
       339, 50712, 0x1.69eab6666666dp+20, 0x1.0359ffffffffp+19,
       0x1.e90f933333333p+18},
  };
  return cases;
}

/// Runs `fn` with `engine` as the process-wide default, restoring the
/// previous default afterwards.
template <class Fn>
auto with_engine(parix::ExecutionEngine engine, Fn&& fn) {
  const parix::ExecutionEngine saved = parix::default_execution_engine();
  parix::set_default_execution_engine(engine);
  auto result = fn();
  parix::set_default_execution_engine(saved);
  return result;
}

/// Runs `fn` with `path` as the process-wide default charge path,
/// restoring the previous default afterwards.
template <class Fn>
auto with_charge_path(parix::ChargePath path, Fn&& fn) {
  const parix::ChargePath saved = parix::default_charge_path();
  parix::set_default_charge_path(path);
  auto result = fn();
  parix::set_default_charge_path(saved);
  return result;
}

/// Runs `fn` with `mode` as the process-wide default fuse mode,
/// restoring the previous default afterwards.
template <class Fn>
auto with_fuse_mode(parix::FuseMode mode, Fn&& fn) {
  const parix::FuseMode saved = parix::default_fuse_mode();
  parix::set_default_fuse_mode(mode);
  auto result = fn();
  parix::set_default_fuse_mode(saved);
  return result;
}

}  // namespace skil::testing
