// Cross-skeleton integration properties: pipelines combining several
// skeletons must satisfy algebraic identities, across processor counts
// and topologies.
#include <gtest/gtest.h>

#include <cstdint>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;

class Pipelines : public ::testing::TestWithParam<int> {};

TEST_P(Pipelines, FoldAfterMapEqualsFoldWithConversion) {
  // fold(conv . f) == fold over map(f) -- the paper's footnote 3 says
  // the fused form is how array_fold is implemented; both must agree.
  const int p = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{12, 6},
                               [](Index ix) { return ix[0] * 3 - ix[1]; });
    auto b = array_create<long>(proc, 2, Size{12, 6},
                                [](Index) { return 0L; });
    array_map([](int v, Index) { return static_cast<long>(v) * v; }, a, b);
    const long mapped_then_folded =
        array_fold([](long v, Index) { return v; }, fn::plus, b);
    const long fused = array_fold(
        [](int v, Index) { return static_cast<long>(v) * v; }, fn::plus, a);
    EXPECT_EQ(mapped_then_folded, fused);
  });
}

TEST_P(Pipelines, ScanLastElementEqualsFold) {
  const int p = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    const int n = 24;
    auto a = array_create<int>(proc, 1, Size{n},
                               [](Index ix) { return (ix[0] * 7) % 11; });
    auto prefix = array_create<long>(proc, 1, Size{n},
                                     [](Index) { return 0L; });
    array_scan([](int v, Index) { return static_cast<long>(v); },
               fn::plus, a, prefix);
    const long total = array_fold(
        [](int v, Index) { return static_cast<long>(v); }, fn::plus, a);
    const auto global = array_gather_all(prefix);
    EXPECT_EQ(global.back(), total);
  });
}

TEST_P(Pipelines, FoldRowsThenFoldEqualsGlobalFold) {
  const int p = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    const int n = 4 * p, cols = 5;
    auto a = array_create<int>(proc, 2, Size{n, cols}, Size{n / p, cols},
                               Index{-1, -1},
                               [](Index ix) { return ix[0] ^ ix[1]; },
                               Distr::kDefault);
    auto rows = array_create<long>(proc, 1, Size{n}, [](Index) { return 0L; });
    array_fold_rows([](int v, Index) { return static_cast<long>(v); },
                    fn::plus, a, rows);
    const long via_rows =
        array_fold([](long v, Index) { return v; }, fn::plus, rows);
    const long direct = array_fold(
        [](int v, Index) { return static_cast<long>(v); }, fn::plus, a);
    EXPECT_EQ(via_rows, direct);
  });
}

TEST_P(Pipelines, PermutationPreservesFold) {
  const int p = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    const int n = 2 * p;
    auto a = array_create<int>(proc, 2, Size{n, 4},
                               [](Index ix) { return ix[0] * 13 + ix[1]; });
    auto b = array_create<int>(proc, 2, Size{n, 4}, [](Index) { return 0; });
    array_permute_rows(a, [n](int row) { return (row + 1) % n; }, b);
    const long sum_a = array_fold(
        [](int v, Index) { return static_cast<long>(v); }, fn::plus, a);
    const long sum_b = array_fold(
        [](int v, Index) { return static_cast<long>(v); }, fn::plus, b);
    EXPECT_EQ(sum_a, sum_b);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, Pipelines, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(Pipelines, MinPlusPowerViaGenMultEqualsOracleClosure) {
  // Three successive squarings through the skeleton equal the oracle's
  // shortest-paths closure for n = 8 (2^3 = 8 >= n).
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 8;
    auto init = [n](Index ix) {
      return support::distance_entry(n, 123, ix[0], ix[1]);
    };
    auto a = array_create<std::uint32_t>(proc, 2, Size{n, n}, init,
                                         Distr::kTorus2D);
    auto b = array_create<std::uint32_t>(
        proc, 2, Size{n, n}, [](Index) { return 0u; }, Distr::kTorus2D);
    auto c = array_create<std::uint32_t>(
        proc, 2, Size{n, n}, [](Index) { return support::kDistInf; },
        Distr::kTorus2D);
    for (int step = 0; step < 3; ++step) {
      array_copy(a, b);
      array_gen_mult(a, b, fn::min,
                     [](std::uint32_t x, std::uint32_t y) {
                       return support::dist_add(x, y);
                     },
                     c);
      array_copy(c, a);
    }
    const auto got = array_gather_matrix(a);
    const auto expected =
        support::seq_shortest_paths(support::random_distance_matrix(n, 123));
    EXPECT_EQ(got, expected);
  });
}

TEST(Pipelines, TransposeCommutesWithMap) {
  // map(f) . transpose == transpose . map(f) for index-free f.
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 8;
    auto a = array_create<double>(
        proc, 2, Size{n, n},
        [](Index ix) { return support::dense_entry(3, ix[0], ix[1]); },
        Distr::kTorus2D);
    auto left = array_create<double>(proc, 2, Size{n, n},
                                     [](Index) { return 0.0; },
                                     Distr::kTorus2D);
    auto right = array_create<double>(proc, 2, Size{n, n},
                                      [](Index) { return 0.0; },
                                      Distr::kTorus2D);
    auto tmp = array_create<double>(proc, 2, Size{n, n},
                                    [](Index) { return 0.0; },
                                    Distr::kTorus2D);
    auto f = [](double v) { return v * 2.0 + 1.0; };
    // left = transpose(map(f, a))
    array_map(f, a, tmp);
    array_transpose(tmp, left);
    // right = map(f, transpose(a))
    array_transpose(a, tmp);
    array_map(f, tmp, right);
    EXPECT_EQ(array_gather_all(left), array_gather_all(right));
  });
}

TEST(Pipelines, BroadcastPartThenFoldSeesOnlyTheRootPartition) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{4, 4}, Size{1, 4},
                               Index{-1, -1},
                               [](Index ix) { return ix[0] + 1; },
                               Distr::kDefault);
    array_broadcast_part(a, Index{2, 0});  // row 2 holds value 3
    const int total = array_fold([](int v, Index) { return v; },
                                 fn::plus, a);
    EXPECT_EQ(total, 3 * 16);  // every partition now holds four 3s
  });
}

}  // namespace
