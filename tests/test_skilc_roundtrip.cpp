// Property tests across the whole skilc pipeline: the emitted
// first-order code must itself be a valid, type-correct, already
// fully-instantiated Skil program (the compiler's output language is a
// subset of its input language -- Skil minus the functional features).
#include <gtest/gtest.h>

#include "skilc/compiler.h"
#include "skilc/emit.h"
#include "skilc/instantiate.h"
#include "skilc/parser.h"
#include "skilc/typecheck.h"

namespace {

using namespace skil::skilc;

const char* kPrograms[] = {
    // the paper's section 2.4 example
    R"(
      pardata array <$t> impl;
      Index mk_index(int i);
      int part_lower(array <$t> a);
      int part_upper(array <$t> a);
      void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {
        int i;
        for (i = part_lower(a); i < part_upper(a); i = i + 1)
          b[i] = map_f(a[i], mk_index(i));
      }
      int above_thresh (float thresh, float elem, Index ix) {
        return elem >= thresh;
      }
      void threshold_all (float t, array <float> A, array <int> B) {
        array_map(above_thresh(t), A, B);
      }
    )",
    // folds with sections over two element types
    R"(
      pardata array <$t> impl;
      int len(array <$t> a);
      $t2 fold ($t2 f ($t2, $t2), array <$t2> a) {
        $t2 acc = a[0];
        int i;
        for (i = 1; i < len(a); i = i + 1) acc = f(acc, a[i]);
        return acc;
      }
      int isum (array <int> l) { return fold((+), l); }
      float fprod (array <float> l) { return fold((*), l); }
      int imax2 (int a, int b) { if (a > b) return a; return b; }
      int imax (array <int> l) { return fold(imax2, l); }
    )",
    // self-recursive HOF + polymorphic identity + curried application
    R"(
      int reduce (int f (int, int), int solve (int), int n) {
        if (n <= 1) return solve(n);
        return f(reduce(f, solve, n - 1), solve(n));
      }
      int add (int a, int b) { return a + b; }
      $t id ($t x) { return x; }
      int total (int n) { return reduce(add, id, n) + add(1)(2); }
      float fid (float x) { return id(x); }
    )",
};

class Pipeline : public ::testing::TestWithParam<int> {};

TEST_P(Pipeline, EmittedCodeReparsesTypechecksAndIsAFixedPoint) {
  const CompileResult first = compile(kPrograms[GetParam()]);

  // Portable (unmangled) emission stays inside the Skil language:
  // 1. it parses,
  const std::string portable = emit_program(first.instantiated,
                                            /*mangle=*/false);
  Program reparsed = parse(portable);
  // 2. it type checks,
  EXPECT_NO_THROW(typecheck(reparsed));
  // 3. and it is already first-order and monomorphic, so a second
  //    instantiation is the identity up to emission.
  const Program again = instantiate(reparsed);
  EXPECT_EQ(emit_program(again, /*mangle=*/false), portable);
}

TEST_P(Pipeline, OutputContainsNoFunctionalFeatures) {
  const CompileResult result = compile(kPrograms[GetParam()]);
  for (const Function& fn : result.instantiated.functions) {
    EXPECT_FALSE(fn.is_hof()) << fn.name;
    for (const Param& param : fn.params)
      EXPECT_NE(param.type->kind, Type::Kind::kFunction) << fn.name;
    // No type variable survives anywhere in the emitted function (the
    // pardata *header* legitimately keeps its $t parameter).
    Program solo;
    solo.functions.push_back(fn.clone());
    EXPECT_EQ(emit_program(solo).find('$'), std::string::npos) << fn.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, Pipeline, ::testing::Values(0, 1, 2));

TEST(Pipeline, FoldInstancesPerElementType) {
  const CompileResult result = compile(kPrograms[1]);
  // int-fold with (+), float-fold with (*), int-fold with imax2:
  // three distinct instances (section signatures and element types
  // distinguish them).
  int fold_instances = 0;
  for (const Function& fn : result.instantiated.functions)
    if (fn.name.rfind("fold_", 0) == 0) ++fold_instances;
  EXPECT_EQ(fold_instances, 3);
}

TEST(Pipeline, PardataSurvivesUninstantiatedTypeVarHeader) {
  // The pardata declaration itself keeps its type parameter -- only
  // *uses* are monomorphised.
  const CompileResult result = compile(kPrograms[0]);
  ASSERT_EQ(result.instantiated.pardatas.size(), 1u);
  EXPECT_EQ(result.instantiated.pardatas[0].name, "array");
}

}  // namespace
