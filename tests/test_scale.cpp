// Full-machine-scale integration tests: the paper's 64-processor
// configuration, exercised end to end with verification against the
// sequential oracles.
#include <gtest/gtest.h>

#include "apps/gauss.h"
#include "apps/matmul.h"
#include "apps/shortest_paths.h"
#include "parix/collectives.h"
#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;

TEST(Scale64, ShortestPathsMatchesOracle) {
  const int p = 64, n = 40;
  const auto result = apps::shpaths_skil(p, n, 99);
  support::Matrix<std::uint32_t> dist(
      apps::shpaths_round_up(n, p), apps::shpaths_round_up(n, p));
  for (int i = 0; i < dist.rows(); ++i)
    for (int j = 0; j < dist.cols(); ++j) {
      if (i >= n || j >= n)
        dist(i, j) = i == j ? 0 : support::kDistInf;
      else
        dist(i, j) = support::distance_entry(n, 99, i, j);
    }
  EXPECT_EQ(result.distances, support::seq_shortest_paths(std::move(dist)));
}

TEST(Scale64, GaussSolvesWithOneRowPerProcessor) {
  const int p = 64, n = 64;  // exactly one matrix row per processor
  const auto result = apps::gauss_skil(p, n, 77, /*pivoting=*/false);
  const auto oracle =
      support::seq_gauss_nopivot(support::random_linear_system(n, 77));
  EXPECT_LT(support::max_abs_diff(
                std::vector<double>(result.x.begin(), result.x.begin() + n),
                oracle),
            1e-8);
}

TEST(Scale64, GaussWithPivotingAtScale) {
  const int p = 64, n = 64;
  const auto result = apps::gauss_skil(p, n, 78, /*pivoting=*/true);
  const auto oracle =
      support::seq_gauss_pivot(support::random_pivoting_system(n, 78));
  EXPECT_LT(support::max_abs_diff(
                std::vector<double>(result.x.begin(), result.x.begin() + n),
                oracle),
            1e-8);
}

TEST(Scale64, MatmulOnTheFullGrid) {
  const int p = 64, n = 32;
  const auto skil = apps::matmul_skil(p, n, 5);
  const auto c = apps::matmul_c(p, n, 5);
  for (int i = 0; i < skil.product.rows(); ++i)
    for (int j = 0; j < skil.product.cols(); ++j)
      EXPECT_NEAR(skil.product(i, j), c.product(i, j), 1e-9);
}

TEST(Scale64, CollectivesAcrossTheWholeMachine) {
  RunConfig config{64, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const parix::Topology topo(proc.machine(), Distr::kTorus2D);
    const long sum = parix::allreduce(
        proc, topo, static_cast<long>(proc.id()),
        [](long a, long b) { return a + b; });
    EXPECT_EQ(sum, 64L * 63 / 2);
    const auto all = parix::allgather(proc, topo, proc.id());
    for (int v = 0; v < 64; ++v)
      EXPECT_EQ(all[v], topo.hw_of(v));
    const int prefix = parix::scan_inclusive(
        proc, topo, 1, [](int a, int b) { return a + b; });
    EXPECT_EQ(prefix, topo.vrank_of(proc.id()) + 1);
  });
}

TEST(Scale64, SkeletonPipelineOnTinyArray) {
  // An array *smaller* than the machine: 48 of 64 partitions are
  // empty; map/fold/permute must all survive.
  RunConfig config{64, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{4, 4},
                               [](Index ix) { return ix[0] * 4 + ix[1]; });
    auto b = array_create<int>(proc, 2, Size{4, 4}, [](Index) { return 0; });
    array_map([](int v) { return v + 1; }, a, b);
    const int total = array_fold([](int v, Index) { return v; },
                                 fn::plus, b);
    EXPECT_EQ(total, 16 * 17 / 2);  // 1..16
    auto c = array_create<int>(proc, 2, Size{4, 4}, [](Index) { return 0; });
    array_permute_rows(b, [](int row) { return 3 - row; }, c);
    const int total_permuted = array_fold(
        [](int v, Index) { return v; }, fn::plus, c);
    EXPECT_EQ(total_permuted, total);
  });
}

TEST(Scale64, DeterministicTimingAtFullScale) {
  const double a = apps::gauss_skil(64, 64, 3, false).run.vtime_us;
  const double b = apps::gauss_skil(64, 64, 3, false).run.vtime_us;
  EXPECT_EQ(a, b);
}

}  // namespace
