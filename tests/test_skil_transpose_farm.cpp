// Tests for the transpose and farm extension skeletons.
#include <gtest/gtest.h>

#include <string>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/error.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;

class Transpose : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Transpose, MatchesSequentialTranspose) {
  const auto [p, n] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{n, n},
                               [](Index ix) { return ix[0] * 100 + ix[1]; },
                               Distr::kTorus2D);
    auto b = array_create<int>(proc, 2, Size{n, n}, [](Index) { return -1; },
                               Distr::kTorus2D);
    array_transpose(a, b);
    const auto global = array_gather_all(b);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(global[static_cast<std::size_t>(i) * n + j], j * 100 + i);
  });
}

TEST_P(Transpose, DoubleTransposeIsIdentity) {
  const auto [p, n] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    auto a = array_create<double>(
        proc, 2, Size{n, n},
        [](Index ix) { return support::dense_entry(9, ix[0], ix[1]); },
        Distr::kTorus2D);
    auto b = array_create<double>(proc, 2, Size{n, n},
                                  [](Index) { return 0.0; }, Distr::kTorus2D);
    auto c = array_create<double>(proc, 2, Size{n, n},
                                  [](Index) { return 0.0; }, Distr::kTorus2D);
    array_transpose(a, b);
    array_transpose(b, c);
    EXPECT_EQ(array_gather_all(a), array_gather_all(c));
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, Transpose,
                         ::testing::Values(std::pair{1, 4}, std::pair{4, 8},
                                           std::pair{4, 6}, std::pair{9, 9},
                                           std::pair{16, 8}));

TEST(TransposeContract, RejectsAliasAndNonSquare) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{4, 4}, [](Index) { return 0; },
                               Distr::kTorus2D);
    EXPECT_THROW(array_transpose(a, a), skil::support::ContractError);
    auto r = array_create<int>(proc, 2, Size{4, 6}, [](Index) { return 0; },
                               Distr::kTorus2D);
    auto r2 = array_create<int>(proc, 2, Size{4, 6}, [](Index) { return 0; },
                                Distr::kTorus2D);
    EXPECT_THROW(array_transpose(r, r2), skil::support::ContractError);
  });
}

TEST(TransposeWithGenMult, GramMatrixIsSymmetric) {
  // A^T * A must come out symmetric: transpose feeding gen_mult.
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    const int n = 8;
    auto a = array_create<double>(
        proc, 2, Size{n, n},
        [](Index ix) { return support::dense_entry(4, ix[0], ix[1]); },
        Distr::kTorus2D);
    auto at = array_create<double>(proc, 2, Size{n, n},
                                   [](Index) { return 0.0; },
                                   Distr::kTorus2D);
    auto gram = array_create<double>(proc, 2, Size{n, n},
                                     [](Index) { return 0.0; },
                                     Distr::kTorus2D);
    array_transpose(a, at);
    array_gen_mult(at, a, fn::plus, fn::times, gram);
    const auto g = array_gather_all(gram);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_NEAR(g[static_cast<std::size_t>(i) * n + j],
                    g[static_cast<std::size_t>(j) * n + i], 1e-9);
  });
}

class Farm : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Farm, ResultsComeBackInTaskOrder) {
  const auto [p, ntasks] = GetParam();
  RunConfig config{p, CostModel::t800()};
  parix::spmd_run(config, [&](Proc& proc) {
    const parix::Topology topo(proc.machine(), parix::Distr::kDefault);
    std::vector<int> tasks;
    if (topo.vrank_of(proc.id()) == 0)
      for (int t = 0; t < ntasks; ++t) tasks.push_back(t);
    const auto results =
        farm(proc, topo, [](int t) { return t * t + 1; }, tasks);
    if (proc.id() == topo.hw_of(0)) {
      ASSERT_EQ(static_cast<int>(results.size()), ntasks);
      for (int t = 0; t < ntasks; ++t) EXPECT_EQ(results[t], t * t + 1);
    } else {
      EXPECT_TRUE(results.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, Farm,
                         ::testing::Values(std::pair{1, 5}, std::pair{2, 0},
                                           std::pair{4, 3}, std::pair{4, 16},
                                           std::pair{8, 100},
                                           std::pair{16, 7}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) +
                                  "_t" + std::to_string(info.param.second);
                         });

TEST(Farm, WorkIsActuallyDistributed) {
  // With more tasks than processors, every processor must perform a
  // share of the worker calls (visible in the per-processor stats).
  RunConfig config{4, CostModel::t800()};
  const auto run = parix::spmd_run(config, [](Proc& proc) {
    const parix::Topology topo(proc.machine(), parix::Distr::kDefault);
    std::vector<int> tasks(16, 1);
    farm(proc, topo, [&proc](int t) {
      proc.charge(parix::Op::kIntOp, 100);
      return t;
    }, proc.id() == 0 ? tasks : std::vector<int>{});
  });
  for (const auto& stats : run.proc_stats)
    EXPECT_GE(stats.ops[static_cast<int>(parix::Op::kIntOp)], 400u);
}

TEST(Farm, SpeedsUpEmbarrassinglyParallelWork) {
  // The farm's modeled time must shrink as processors are added.
  auto run_with = [](int p) {
    RunConfig config{p, CostModel::t800()};
    return parix::spmd_run(config, [](Proc& proc) {
      const parix::Topology topo(proc.machine(), parix::Distr::kDefault);
      std::vector<int> tasks(64, 0);
      farm(proc, topo, [&proc](int t) {
        proc.charge(parix::Op::kFloatOp, 1000);  // a heavy task
        return t;
      }, proc.id() == 0 ? tasks : std::vector<int>{});
    });
  };
  const double t1 = run_with(1).vtime_us;
  const double t4 = run_with(4).vtime_us;
  const double t16 = run_with(16).vtime_us;
  EXPECT_GT(t1 / t4, 2.5);
  EXPECT_GT(t4 / t16, 2.0);
}

}  // namespace
