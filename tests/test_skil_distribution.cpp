// Tests for index types and distributions: partitioning must be an
// exhaustive, disjoint cover of the global index space, and the owner
// and local-offset arithmetic must agree with the run enumeration.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "parix/machine.h"
#include "skil/distribution.h"
#include "support/error.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Machine;
using parix::Topology;

std::shared_ptr<const Topology> make_topo(int p, Distr d = Distr::kDefault) {
  // Machines must outlive the topologies that reference them.
  static std::vector<std::shared_ptr<Machine>> keepalive;
  auto machine = std::make_shared<Machine>(p, CostModel::t800());
  keepalive.push_back(machine);
  return std::make_shared<const Topology>(*machine, d);
}

TEST(Index, ConstructionAndAccess) {
  Index one(5);
  EXPECT_EQ(one[0], 5);
  EXPECT_EQ(one[1], 0);
  Index two(3, 4);
  EXPECT_EQ(two[0], 3);
  EXPECT_EQ(two[1], 4);
  EXPECT_EQ(Index(1, 2), Index(1, 2));
  EXPECT_FALSE(Index(1, 2) == Index(2, 1));
}

TEST(Bounds, ContainsAndVolume) {
  Bounds b{Index{2, 3}, Index{5, 7}};
  EXPECT_TRUE(b.contains(Index{2, 3}, 2));
  EXPECT_TRUE(b.contains(Index{4, 6}, 2));
  EXPECT_FALSE(b.contains(Index{5, 3}, 2));
  EXPECT_FALSE(b.contains(Index{2, 7}, 2));
  EXPECT_EQ(b.extent(0), 3);
  EXPECT_EQ(b.extent(1), 4);
  EXPECT_EQ(b.volume(2), 12);
}

TEST(Bounds, ToStringIsReadable) {
  Bounds b{Index{0, 0}, Index{2, 3}};
  EXPECT_EQ(to_string(b, 2), "(0, 0)..(2, 3)");
}

struct DistCase {
  int p;
  int rows;
  int cols;  // 0 => 1-D array
  Layout layout;
  int cyclic_block;
};

class DistributionCover : public ::testing::TestWithParam<DistCase> {};

Distribution make_dist(const DistCase& c) {
  auto topo = make_topo(c.p);
  const int dims = c.cols > 0 ? 2 : 1;
  const Size size = c.cols > 0 ? Size{c.rows, c.cols} : Size{c.rows};
  switch (c.layout) {
    case Layout::kBlock:
      return Distribution::block(topo, dims, size);
    case Layout::kCyclic:
      return Distribution::cyclic(topo, dims, size);
    case Layout::kBlockCyclic:
      return Distribution::block_cyclic(topo, dims, size, c.cyclic_block);
  }
  throw std::logic_error("unreachable");
}

TEST_P(DistributionCover, RunsCoverIndexSpaceExactlyOnce) {
  const DistCase c = GetParam();
  const Distribution dist = make_dist(c);
  std::map<std::pair<int, int>, int> seen;
  long total = 0;
  for (int v = 0; v < c.p; ++v) {
    long count = 0;
    for (const RowRun& run : dist.local_runs(v))
      for (int cc = 0; cc < run.col_count; ++cc) {
        ++seen[{run.row, run.col_begin + cc}];
        ++count;
      }
    EXPECT_EQ(count, dist.local_count(v)) << "vrank " << v;
    total += count;
  }
  const int cols = c.cols > 0 ? c.cols : 1;
  EXPECT_EQ(total, static_cast<long>(c.rows) * cols);
  for (const auto& [pos, count] : seen) EXPECT_EQ(count, 1)
      << "(" << pos.first << "," << pos.second << ")";
}

TEST_P(DistributionCover, OwnerAgreesWithRunEnumeration) {
  const DistCase c = GetParam();
  const Distribution dist = make_dist(c);
  for (int v = 0; v < c.p; ++v)
    for (const RowRun& run : dist.local_runs(v))
      for (int cc = 0; cc < run.col_count; ++cc) {
        const Index ix = c.cols > 0 ? Index{run.row, run.col_begin + cc}
                                    : Index{run.row};
        EXPECT_EQ(dist.owner_vrank(ix), v);
      }
}

TEST_P(DistributionCover, LocalOffsetsAreDenseAndOrdered) {
  const DistCase c = GetParam();
  const Distribution dist = make_dist(c);
  for (int v = 0; v < c.p; ++v) {
    long expected = 0;
    for (const RowRun& run : dist.local_runs(v))
      for (int cc = 0; cc < run.col_count; ++cc) {
        const Index ix = c.cols > 0 ? Index{run.row, run.col_begin + cc}
                                    : Index{run.row};
        EXPECT_EQ(dist.local_offset(v, ix), expected) << to_string(ix, 2);
        ++expected;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributionCover,
    ::testing::Values(
        DistCase{1, 5, 5, Layout::kBlock, 0},
        DistCase{4, 8, 8, Layout::kBlock, 0},
        DistCase{4, 7, 9, Layout::kBlock, 0},    // uneven blocks
        DistCase{6, 12, 12, Layout::kBlock, 0},  // 2x3 grid
        DistCase{8, 16, 0, Layout::kBlock, 0},   // 1-D
        DistCase{5, 17, 0, Layout::kBlock, 0},   // 1-D uneven
        DistCase{4, 10, 3, Layout::kCyclic, 1},
        DistCase{3, 7, 2, Layout::kCyclic, 1},
        DistCase{4, 16, 4, Layout::kBlockCyclic, 2},
        DistCase{3, 10, 5, Layout::kBlockCyclic, 4},
        DistCase{2, 9, 0, Layout::kCyclic, 1}));

TEST(Distribution, BlockBoundsMatchRuns) {
  auto dist = Distribution::block(make_topo(4), 2, Size{8, 6});
  // 2x2 machine mesh -> 2x2 block grid: blocks of 4x3.
  for (int v = 0; v < 4; ++v) {
    const Bounds b = dist.partition_bounds(v);
    EXPECT_EQ(b.volume(2), dist.local_count(v));
  }
  EXPECT_EQ(dist.partition_bounds(0).lower, (Index{0, 0}));
  EXPECT_EQ(dist.partition_bounds(3).upper, (Index{8, 6}));
}

TEST(Distribution, ExplicitBlocksizeMakesRowBlocks) {
  auto dist = Distribution::block(make_topo(4), 2, Size{8, 5},
                                  Size{2, 5});
  EXPECT_EQ(dist.block_grid_rows(), 4);
  EXPECT_EQ(dist.block_grid_cols(), 1);
  EXPECT_EQ(dist.owner_vrank(Index{7, 4}), 3);
  EXPECT_EQ(dist.owner_vrank(Index{0, 0}), 0);
}

TEST(Distribution, RejectsBlocksizeNotMatchingProcessorCount) {
  // Explicit 2x4 blocks on an 8x8 array give 4x2 = 8 blocks != 4 procs.
  EXPECT_THROW(
      Distribution::block(make_topo(4), 2, Size{8, 8}, Size{2, 4}),
      skil::support::ContractError);
  // Explicit 3-row blocks on 8 rows give 3 blocks != 2 processors.
  EXPECT_THROW(Distribution::block(make_topo(2), 1, Size{8}, Size{3}),
               skil::support::ContractError);
}

TEST(Distribution, SmallArraysGetEmptyTrailingPartitions) {
  auto dist = Distribution::block(make_topo(4), 1, Size{3});
  EXPECT_EQ(dist.local_count(0), 1);
  EXPECT_EQ(dist.local_count(3), 0);
  EXPECT_EQ(dist.partition_bounds(3).volume(1), 0);
  long total = 0;
  for (int v = 0; v < 4; ++v) total += dist.local_count(v);
  EXPECT_EQ(total, 3);
}

TEST(Distribution, RejectsBadSizes) {
  EXPECT_THROW(Distribution::block(make_topo(2), 3, Size{2, 2}),
               skil::support::ContractError);
  EXPECT_THROW(Distribution::block(make_topo(2), 1, Size{0}),
               skil::support::ContractError);
  EXPECT_THROW(Distribution::block_cyclic(make_topo(2), 1, Size{4}, 0),
               skil::support::ContractError);
}

TEST(Distribution, ExplicitLowerBoundMustMatchDerivedPartitioning) {
  EXPECT_NO_THROW(Distribution::block(make_topo(4), 2, Size{8, 8},
                                      Size{0, 0}, Index{4, 4}));
  EXPECT_THROW(Distribution::block(make_topo(4), 2, Size{8, 8}, Size{0, 0},
                                   Index{3, 0}),
               skil::support::ContractError);
}

TEST(Distribution, OwnerRejectsOutOfRangeIndex) {
  auto dist = Distribution::block(make_topo(2), 2, Size{4, 4});
  EXPECT_THROW(dist.owner_vrank(Index{4, 0}), skil::support::ContractError);
  EXPECT_THROW(dist.owner_vrank(Index{0, -1}), skil::support::ContractError);
}

TEST(Distribution, UniformityDetection) {
  EXPECT_TRUE(
      Distribution::block(make_topo(4), 2, Size{8, 8}).uniform_partitions());
  EXPECT_FALSE(
      Distribution::block(make_topo(4), 2, Size{7, 8}).uniform_partitions());
}

TEST(Distribution, PartitionBoundsUndefinedForCyclic) {
  auto dist = Distribution::cyclic(make_topo(2), 1, Size{8});
  EXPECT_THROW(dist.partition_bounds(0), skil::support::ContractError);
}

TEST(Distribution, SamePlacementDistinguishesLayouts) {
  auto topo = make_topo(4);
  const auto block = Distribution::block(topo, 2, Size{8, 8});
  const auto block2 = Distribution::block(topo, 2, Size{8, 8});
  const auto cyclic = Distribution::cyclic(topo, 2, Size{8, 8});
  EXPECT_TRUE(block.same_placement(block2));
  EXPECT_FALSE(block.same_placement(cyclic));
}

TEST(Distribution, LayoutNames) {
  EXPECT_STREQ(layout_name(Layout::kBlock), "block");
  EXPECT_STREQ(layout_name(Layout::kCyclic), "cyclic");
  EXPECT_STREQ(layout_name(Layout::kBlockCyclic), "block-cyclic");
}

}  // namespace
