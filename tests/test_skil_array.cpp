// Tests for DistArray: creation, local access rules, bounds, destroy.
#include <gtest/gtest.h>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/error.h"

namespace {

using namespace skil;
using parix::CostModel;
using parix::Distr;
using parix::Proc;
using parix::RunConfig;
using skil::support::ContractError;
using skil::support::NonLocalAccessError;

TEST(ArrayCreate, InitialisesEveryElementFromItsIndex) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{8, 8},
                               [](Index ix) { return ix[0] * 10 + ix[1]; });
    const Bounds b = a.part_bounds();
    for (int i = b.lower[0]; i < b.upper[0]; ++i)
      for (int j = b.lower[1]; j < b.upper[1]; ++j)
        EXPECT_EQ(a.get_elem(Index{i, j}), i * 10 + j);
  });
}

TEST(ArrayCreate, OneDimensionalArrays) {
  RunConfig config{3, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<double>(proc, 1, Size{9},
                                  [](Index ix) { return ix[0] * 0.5; });
    const Bounds b = a.part_bounds();
    EXPECT_EQ(b.extent(0), 3);
    for (int i = b.lower[0]; i < b.upper[0]; ++i)
      EXPECT_DOUBLE_EQ(a.get_elem(Index{i}), i * 0.5);
  });
}

TEST(ArrayCreate, ThresholdExampleFromSection24) {
  // The paper's section 2.4 example: compare floats against a
  // threshold, booleans into an int array, via a partially applied
  // above_thresh.
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto above_thresh = [](float thresh, float elem, Index) {
      return elem >= thresh ? 1 : 0;
    };
    auto a = array_create<float>(proc, 1, Size{16},
                                 [](Index ix) { return ix[0] * 1.0f; });
    auto b = array_create<int>(proc, 1, Size{16}, [](Index) { return 0; });
    array_map(partial(above_thresh, 7.5f), a, b);
    const Bounds bounds = b.part_bounds();
    for (int i = bounds.lower[0]; i < bounds.upper[0]; ++i)
      EXPECT_EQ(b.get_elem(Index{i}), i >= 8 ? 1 : 0);
  });
}

TEST(ArrayAccess, PutThenGetRoundTrips) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{8}, [](Index) { return 0; });
    const Bounds b = a.part_bounds();
    a.put_elem(Index{b.lower[0]}, 99);
    EXPECT_EQ(a.get_elem(Index{b.lower[0]}), 99);
  });
}

TEST(ArrayAccess, NonLocalAccessIsRejected) {
  // "these macros can only be used to access local elements"
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{8}, [](Index ix) { return ix[0]; });
    const int foreign = proc.id() == 0 ? 7 : 0;  // other partition
    EXPECT_THROW(a.get_elem(Index{foreign}), NonLocalAccessError);
    EXPECT_THROW(a.put_elem(Index{foreign}, 1), NonLocalAccessError);
  });
}

TEST(ArrayAccess, CyclicLayoutChecksOwnership) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create_cyclic<int>(proc, 1, Size{8},
                                      [](Index ix) { return ix[0]; });
    // Cyclic: processor 0 owns even rows, processor 1 odd rows.
    const int mine = proc.id() == 0 ? 4 : 5;
    const int other = proc.id() == 0 ? 5 : 4;
    EXPECT_EQ(a.get_elem(Index{mine}), mine);
    EXPECT_THROW(a.get_elem(Index{other}), NonLocalAccessError);
  });
}

TEST(ArrayDestroy, InvalidatesTheHandle) {
  RunConfig config{2, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{4}, [](Index) { return 1; });
    array_destroy(a);
    EXPECT_FALSE(a.valid());
    EXPECT_THROW(a.get_elem(Index{0}), ContractError);
    EXPECT_THROW(a.part_bounds(), ContractError);
  });
}

TEST(ArrayCreate, PartBoundsCoverDisjointPartitions) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 2, Size{6, 6}, [](Index) { return 0; },
                               Distr::kTorus2D);
    const Bounds mine = a.part_bounds();
    EXPECT_EQ(mine.volume(2), 9);  // 6x6 over 2x2 grid
    EXPECT_EQ(mine.extent(0), 3);
    EXPECT_EQ(mine.extent(1), 3);
  });
}

TEST(ArrayCreate, ChargesCreationWork) {
  RunConfig config{2, CostModel::t800()};
  const auto result = parix::spmd_run(config, [](Proc& proc) {
    auto a = array_create<int>(proc, 1, Size{100}, [](Index) { return 1; });
    (void)a;
  });
  const CostModel cm = CostModel::t800();
  // 100 elements in total: one call + one int op each.
  EXPECT_GE(result.total.compute_us, 100 * (cm.call_us + cm.int_op_us));
}

TEST(Pardata, NestingIsRejectedAtCompileTime) {
  static_assert(!skil::detail::is_pardata<int>::value);
  static_assert(skil::detail::is_pardata<Pardata<int>>::value);
  // Pardata<Pardata<int>> fails the static_assert in pardata.h; the
  // trait itself is what we can check here.
  SUCCEED();
}

TEST(Pardata, FoldAndRingExchange) {
  RunConfig config{4, CostModel::t800()};
  parix::spmd_run(config, [](Proc& proc) {
    // A distributed multiset: each processor holds a few values.
    Pardata<std::vector<int>> bag(proc, Distr::kRing,
                                  [](int vrank, int) {
                                    return std::vector<int>{vrank, vrank * 2};
                                  });
    const int total = pardata_fold(
        [](const std::vector<int>& local, int) {
          int sum = 0;
          for (int v : local) sum += v;
          return sum;
        },
        [](int a, int b) { return a + b; }, bag);
    EXPECT_EQ(total, (0 + 0) + (1 + 2) + (2 + 4) + (3 + 6));

    // Rotate the smallest element around the ring.
    pardata_ring_exchange(
        [](const std::vector<int>& local) { return local.front(); },
        [](std::vector<int>& local, int incoming) {
          local.push_back(incoming);
        },
        bag);
    const int prev = (bag.my_vrank() + 3) % 4;
    EXPECT_EQ(bag.local().back(), prev);
  });
}

}  // namespace
