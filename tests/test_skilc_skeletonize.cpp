// Tests for the auto-skeletonization pass (DESIGN.md section 16):
// the advisory lint pass against byte-exact fixture goldens (one per
// recognition and per rejection reason), the compile()-time rewrite
// (injected canonical skeletons, synthesized customizing functions,
// partial application of free scalars, re-typecheck), the counters
// report, and the handoff into the fusion pass (a recognized map
// composing with a hand-written fold).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "skilc/analyze.h"
#include "skilc/compiler.h"
#include "skilc/diagnostics.h"
#include "skilc/emit.h"
#include "skilc/parser.h"
#include "skilc/skeletonize.h"
#include "skilc/typecheck.h"

namespace {

using namespace skil::skilc;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string fixture_source(const std::string& name) {
  const std::string dir = SKIL_LINT_FIXTURE_DIR;
  return read_file(dir + "/" + name + ".skil");
}

std::string lint_fixture(const std::string& name,
                         const AnalyzeOptions& options = {}) {
  DiagnosticSink sink;
  lint_source(fixture_source(name), sink, options);
  return sink.render(name + ".skil");
}

std::string golden(const std::string& name) {
  const std::string dir = SKIL_LINT_FIXTURE_DIR;
  return read_file(dir + "/" + name + ".expected");
}

CompileOptions skeletonize_options() {
  CompileOptions options;
  options.skeletonize = true;
  return options;
}

// --- the advisory pass against the fixture goldens -------------------------

TEST(SkeletonizeFixtures, RecognitionsMatchGoldens) {
  EXPECT_EQ(lint_fixture("skel_map"), golden("skel_map"));
  EXPECT_EQ(lint_fixture("skel_fold"), golden("skel_fold"));
  EXPECT_EQ(lint_fixture("skel_gen_mult"), golden("skel_gen_mult"));
  EXPECT_EQ(lint_fixture("skel_scalar_capture"),
            golden("skel_scalar_capture"));
}

TEST(SkeletonizeFixtures, RejectionsMatchGoldens) {
  EXPECT_EQ(lint_fixture("skel_carried"), golden("skel_carried"));
  EXPECT_EQ(lint_fixture("skel_impure"), golden("skel_impure"));
  EXPECT_EQ(lint_fixture("skel_stride"), golden("skel_stride"));
  EXPECT_EQ(lint_fixture("skel_indirect"), golden("skel_indirect"));
  EXPECT_EQ(lint_fixture("skel_two_sources"), golden("skel_two_sources"));
  EXPECT_EQ(lint_fixture("skel_float_fold"), golden("skel_float_fold"));
  EXPECT_EQ(lint_fixture("skel_bad_seed"), golden("skel_bad_seed"));
  EXPECT_EQ(lint_fixture("skel_live_induction"),
            golden("skel_live_induction"));
  EXPECT_EQ(lint_fixture("skel_bounds"), golden("skel_bounds"));
  EXPECT_EQ(lint_fixture("skel_map_dst_bound"),
            golden("skel_map_dst_bound"));
  EXPECT_EQ(lint_fixture("skel_gen_mult_bounds"),
            golden("skel_gen_mult_bounds"));
}

TEST(SkeletonizeFixtures, GoldensNameTheExactBlockingSite) {
  EXPECT_NE(golden("skel_carried").find("reads 'a[i - 1]' across iterations "
                                        "(line 8:12)"),
            std::string::npos);
  EXPECT_NE(golden("skel_impure").find("calls the impure builtin 'rand' at "
                                       "line 10:19"),
            std::string::npos);
  EXPECT_NE(golden("skel_indirect").find("'a[p[i]]'"), std::string::npos);
}

TEST(SkeletonizeFixtures, JsonReportsMatchGoldens) {
  for (const std::string name : {"skel_map", "skel_carried"}) {
    DiagnosticSink sink;
    lint_source(fixture_source(name), sink);
    EXPECT_EQ(sink.render_json(name + ".skil"), golden(name + ".json"));
  }
}

TEST(SkeletonizeFixtures, NoSkeletonizeOptionSilencesTheAdvisory) {
  AnalyzeOptions options;
  options.skeletonize = false;
  EXPECT_EQ(lint_fixture("skel_map", options), "");
  EXPECT_EQ(lint_fixture("skel_carried", options), "");
}

TEST(SkeletonizeFixtures, LintCountersReportEveryDecision) {
  DiagnosticSink sink;
  SkeletonizeCounters counters;
  lint_source(fixture_source("skel_map"), sink, {}, &counters);
  EXPECT_EQ(counters.loops_seen, 1);
  EXPECT_EQ(counters.recognized_map, 1);
  EXPECT_EQ(counters.rejected(), 0);

  lint_source(fixture_source("skel_stride"), sink, {}, &counters);
  EXPECT_EQ(counters.recognized(), 0);
  EXPECT_EQ(counters.rejected_stride, 1);

  // The out-parameter is zeroed when the pass is off.
  AnalyzeOptions off;
  off.skeletonize = false;
  lint_source(fixture_source("skel_map"), sink, off, &counters);
  EXPECT_EQ(counters.loops_seen, 0);
  EXPECT_EQ(counters.recognized(), 0);
}

// --- counters --------------------------------------------------------------

TEST(SkeletonizeCountersTest, RenderJsonUsesStableKeys) {
  SkeletonizeCounters counters;
  counters.loops_seen = 3;
  counters.recognized_map = 2;
  counters.rejected_carried = 1;
  const std::string json = counters.render_json();
  EXPECT_NE(json.find("\"loops_seen\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"recognized_map\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_carried\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"recognized\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rejected\": 1"), std::string::npos);
}

TEST(SkeletonizeCountersTest, SumAccumulatesFieldwise) {
  SkeletonizeCounters a;
  a.loops_seen = 2;
  a.recognized_fold = 1;
  SkeletonizeCounters b;
  b.loops_seen = 3;
  b.rejected_impure = 2;
  a += b;
  EXPECT_EQ(a.loops_seen, 5);
  EXPECT_EQ(a.recognized_fold, 1);
  EXPECT_EQ(a.rejected_impure, 2);
}

// --- the compile()-time rewrite --------------------------------------------

TEST(SkeletonizeRewrite, MapLoopBecomesAnArrayMapCall) {
  const CompileResult result =
      compile(fixture_source("skel_map"), skeletonize_options());
  EXPECT_EQ(result.skeletonize.recognized_map, 1);
  EXPECT_EQ(result.skeletonize.rejected(), 0);
  // The canonical skeleton definition and the synthesized customizing
  // function were injected and survive instantiation.
  ASSERT_NE(result.typed.find_function("array_map"), nullptr);
  ASSERT_NE(result.typed.find_function("__skel_map_0"), nullptr);
  EXPECT_NE(result.c_code.find("__skel_map_0"), std::string::npos);
  // The rewrite decision is a note naming the call.
  bool saw_note = false;
  for (const Diagnostic& diag : result.diagnostics) {
    if (diag.pass != "skeletonize") continue;
    saw_note = true;
    EXPECT_EQ(diag.severity, Severity::kNote);
    EXPECT_NE(
        diag.message.find("skeletonized loop over 'i' into "
                          "'array_map(__skel_map_0(w), xs, ys)'"),
        std::string::npos);
  }
  EXPECT_TRUE(saw_note);
}

TEST(SkeletonizeRewrite, FoldLoopBecomesAGuardedFoldCall) {
  const CompileResult result =
      compile(fixture_source("skel_fold"), skeletonize_options());
  EXPECT_EQ(result.skeletonize.recognized_fold, 1);
  ASSERT_NE(result.typed.find_function("array_fold"), nullptr);
  ASSERT_NE(result.typed.find_function("__skel_fold_0"), nullptr);
  // The loop is gone; the identity seed stays, and the fold call is
  // guarded on a non-empty partition (the canonical fold reads
  // a[part_lower(a)], which an empty array must never reach).
  const Function* dot = result.typed.find_function("dot");
  ASSERT_NE(dot, nullptr);
  bool saw_seed = false;
  const Stmt* guard = nullptr;
  for (const StmtPtr& stmt : dot->body) {
    EXPECT_NE(stmt->kind, Stmt::Kind::kFor);
    if (stmt->kind == Stmt::Kind::kVarDecl && stmt->decl_name == "total" &&
        stmt->init != nullptr && stmt->init->kind == Expr::Kind::kIntLit &&
        stmt->init->int_value == 0)
      saw_seed = true;
    if (stmt->kind == Stmt::Kind::kIf) guard = stmt.get();
  }
  EXPECT_TRUE(saw_seed);
  ASSERT_NE(guard, nullptr);
  // The guard compares the partition bounds...
  ASSERT_NE(guard->expr, nullptr);
  EXPECT_EQ(guard->expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(guard->expr->name, "<");
  // ...and its body assigns the fold call to the accumulator.
  ASSERT_EQ(guard->body.size(), 1u);
  const Stmt& assign = *guard->body.front();
  ASSERT_EQ(assign.kind, Stmt::Kind::kExpr);
  ASSERT_EQ(assign.expr->kind, Expr::Kind::kAssign);
  EXPECT_EQ(assign.expr->lhs->name, "total");
  EXPECT_EQ(assign.expr->rhs->kind, Expr::Kind::kCall);
  EXPECT_EQ(assign.expr->rhs->callee->name, "array_fold");
}

TEST(SkeletonizeRewrite, TripleNestBecomesGenMult) {
  const CompileResult result =
      compile(fixture_source("skel_gen_mult"), skeletonize_options());
  EXPECT_EQ(result.skeletonize.recognized_gen_mult, 1);
  ASSERT_NE(result.typed.find_function("array_gen_mult"), nullptr);
  const Function* matmul = result.typed.find_function("matmul");
  ASSERT_NE(matmul, nullptr);
  for (const StmtPtr& stmt : matmul->body)
    EXPECT_NE(stmt->kind, Stmt::Kind::kFor);
}

TEST(SkeletonizeRewrite, FreeScalarsBecomePartialApplicationArguments) {
  const CompileResult result =
      compile(fixture_source("skel_scalar_capture"), skeletonize_options());
  EXPECT_EQ(result.skeletonize.recognized_map, 1);
  const Function* stage = result.typed.find_function("__skel_map_0");
  ASSERT_NE(stage, nullptr);
  // m and c first (first-use order), then the element and the index.
  ASSERT_EQ(stage->params.size(), 4u);
  EXPECT_EQ(stage->params[0].name, "m");
  EXPECT_EQ(stage->params[1].name, "c");
}

TEST(SkeletonizeRewrite, RejectedLoopsAreLeftUntouched) {
  const CompileResult result =
      compile(fixture_source("skel_carried"), skeletonize_options());
  EXPECT_EQ(result.skeletonize.recognized(), 0);
  EXPECT_EQ(result.skeletonize.rejected_carried, 1);
  EXPECT_EQ(result.typed.find_function("array_map"), nullptr);
  bool saw_for = false;
  for (const StmtPtr& stmt : result.typed.find_function("shift")->body)
    if (stmt->kind == Stmt::Kind::kFor) saw_for = true;
  EXPECT_TRUE(saw_for);
}

TEST(SkeletonizeRewrite, OffByDefault) {
  const CompileResult result = compile(fixture_source("skel_map"));
  EXPECT_EQ(result.skeletonize.loops_seen, 0);
  EXPECT_EQ(result.skeletonize.recognized(), 0);
  EXPECT_EQ(result.typed.find_function("array_map"), nullptr);
}

TEST(SkeletonizeRewrite, AdvisoryFormNeverMutates) {
  Program program = parse(fixture_source("skel_map"));
  typecheck(program);
  const std::string before = emit_program(program);
  DiagnosticSink sink;
  const SkeletonizeCounters counters = analyze_skeletonize(program, sink);
  EXPECT_EQ(counters.recognized_map, 1);
  EXPECT_FALSE(sink.empty());
  EXPECT_EQ(emit_program(program), before);
}

// --- handoff into fusion ---------------------------------------------------

TEST(SkeletonizeFusionHandoff, RecognizedMapFusesWithHandWrittenFold) {
  // The map is a sequential loop; the fold is already a skeleton
  // call.  Skeletonize rewrites the loop, then fusion composes the
  // synthesized stage into the fold's conversion function and
  // eliminates the intermediate `tmp`.
  const char* source = R"(pardata array <$t> impl;
Index mk_index(int i);
int part_lower(array <$t> a);
int part_upper(array <$t> a);

$t2 array_fold ($t2 conv_f ($t1, Index), $t2 fold_f ($t2, $t2),
                array <$t1> a) {
  $t2 acc = conv_f(a[part_lower(a)], mk_index(part_lower(a)));
  int i;
  for (i = part_lower(a) + 1; i < part_upper(a); i = i + 1)
    acc = fold_f(acc, conv_f(a[i], mk_index(i)));
  return acc;
}

float ident (float elem, Index ix) { return elem; }

float sum_sq (array <float> xs, array <float> tmp) {
  int i;
  for (i = part_lower(xs); i < part_upper(xs); i = i + 1) {
    tmp[i] = xs[i] * xs[i];
  }
  return array_fold(ident, (+), tmp);
}
)";
  CompileOptions options;
  options.skeletonize = true;
  options.fuse = true;
  const CompileResult result = compile(source, options);
  EXPECT_EQ(result.skeletonize.recognized_map, 1);
  EXPECT_GT(result.fusion.fused(), 0);
  // One statement left: the fused fold reading xs directly.
  const Function* sum_sq = result.typed.find_function("sum_sq");
  ASSERT_NE(sum_sq, nullptr);
  EXPECT_NE(result.c_code.find("__fused"), std::string::npos);
}

}  // namespace
