// Tracing layer (parix/trace.h, parix/metrics.h).
//
// The load-bearing property is the two-timeline invariant: tracing in
// any mode must leave every golden virtual time bit-identical, under
// both execution engines and both charge paths, because the recorder
// only *reads* the virtual clock.  On top of that the suite pins the
// trace semantics themselves: full traces are deterministic in virtual
// time across runs, spans nest per processor, the exporters emit valid
// JSON, the metrics round-trip Proc::Stats bit-exactly, and the
// critical-path walk telescopes to the run's final max vtime.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "apps/gauss.h"
#include "parix/metrics.h"
#include "parix/runtime.h"
#include "parix/trace.h"
#include "parix_golden_cases.h"
#include "support/error.h"

namespace {

using skil::parix::analyze_critical_path;
using skil::parix::ChargePath;
using skil::parix::CriticalPath;
using skil::parix::ExecutionEngine;
using skil::parix::ProcTrace;
using skil::parix::RunResult;
using skil::parix::Trace;
using skil::parix::TraceEvent;
using skil::parix::TraceEventKind;
using skil::parix::TraceMode;
using skil::support::ContractError;
using skil::testing::GoldenCase;
using skil::testing::golden_cases;
using skil::testing::kGoldenSeed;
using skil::testing::with_charge_path;
using skil::testing::with_engine;

/// Runs `fn` with `mode` as the process-wide default trace mode,
/// restoring the previous default afterwards.
template <class Fn>
auto with_trace_mode(TraceMode mode, Fn&& fn) {
  const TraceMode saved = skil::parix::default_trace_mode();
  skil::parix::set_default_trace_mode(mode);
  auto result = fn();
  skil::parix::set_default_trace_mode(saved);
  return result;
}

RunResult traced_gauss(TraceMode mode) {
  return with_trace_mode(
      mode, [] { return skil::apps::gauss_skil(4, 32, kGoldenSeed, true).run; });
}

// ---------------------------------------------------------------------------
// Mode parsing (strict, like SKIL_ENGINE / SKIL_CHARGE).

TEST(TraceMode_, ParsesTheThreeAcceptedNames) {
  EXPECT_EQ(skil::parix::parse_trace_mode("off"), TraceMode::kOff);
  EXPECT_EQ(skil::parix::parse_trace_mode("spans"), TraceMode::kSpans);
  EXPECT_EQ(skil::parix::parse_trace_mode("full"), TraceMode::kFull);
}

TEST(TraceMode_, RejectsUnknownNamesLoudly) {
  EXPECT_THROW(skil::parix::parse_trace_mode("on"), ContractError);
  EXPECT_THROW(skil::parix::parse_trace_mode(""), ContractError);
  EXPECT_THROW(skil::parix::parse_trace_mode("FULL"), ContractError);
}

// ---------------------------------------------------------------------------
// The two-timeline invariant: tracing must not perturb virtual time.

void expect_golden_vtimes(const GoldenCase& c, const RunResult& run) {
  EXPECT_EQ(run.vtime_us, c.vtime_us) << c.name;
  ASSERT_EQ(run.proc_vtimes.size(), c.proc_vtimes.size()) << c.name;
  for (std::size_t p = 0; p < c.proc_vtimes.size(); ++p)
    EXPECT_EQ(run.proc_vtimes[p], c.proc_vtimes[p]) << c.name << " proc " << p;
  EXPECT_EQ(run.total.compute_us, c.compute_us) << c.name;
  EXPECT_EQ(run.total.comm_us, c.comm_us) << c.name;
}

void check_goldens_under(TraceMode mode, ExecutionEngine engine,
                         ChargePath charge) {
  for (const GoldenCase& c : golden_cases()) {
    const RunResult run = with_trace_mode(mode, [&] {
      return with_engine(engine, [&] {
        return with_charge_path(charge, [&] { return c.run(); });
      });
    });
    expect_golden_vtimes(c, run);
    EXPECT_EQ(run.trace == nullptr, mode == TraceMode::kOff) << c.name;
  }
}

TEST(TraceOff, GoldensBitIdenticalPooledInterp) {
  check_goldens_under(TraceMode::kOff, ExecutionEngine::kPooled,
                      ChargePath::kInterp);
}

TEST(TraceOff, GoldensBitIdenticalPooledTape) {
  check_goldens_under(TraceMode::kOff, ExecutionEngine::kPooled,
                      ChargePath::kTape);
}

TEST(TraceOff, GoldensBitIdenticalThreadsInterp) {
  check_goldens_under(TraceMode::kOff, ExecutionEngine::kThreads,
                      ChargePath::kInterp);
}

TEST(TraceOff, GoldensBitIdenticalThreadsTape) {
  check_goldens_under(TraceMode::kOff, ExecutionEngine::kThreads,
                      ChargePath::kTape);
}

// Full tracing must not move the clocks either -- the golden vtimes
// hold in every mode, not just off (one representative cell per
// engine; the off-mode sweeps above cover the full grid).
TEST(TraceFull, GoldenVtimesUnchangedUnderFullTracing) {
  const GoldenCase& c = golden_cases().front();
  for (const ExecutionEngine engine :
       {ExecutionEngine::kPooled, ExecutionEngine::kThreads}) {
    const RunResult run = with_trace_mode(TraceMode::kFull, [&] {
      return with_engine(engine, [&] { return c.run(); });
    });
    expect_golden_vtimes(c, run);
    ASSERT_NE(run.trace, nullptr);
    EXPECT_EQ(run.trace->mode, TraceMode::kFull);
  }
}

// ---------------------------------------------------------------------------
// Determinism: virtual-time content of a full trace is identical
// across runs (wall timestamps are the only nondeterministic field).

bool same_virtual_content(const TraceEvent& a, const TraceEvent& b) {
  return a.kind == b.kind && a.bound == b.bound && a.peer == b.peer &&
         a.tag == b.tag && a.vt0 == b.vt0 && a.vt1 == b.vt1 &&
         a.bytes == b.bytes && a.seq == b.seq && a.peer_seq == b.peer_seq &&
         a.arg == b.arg &&
         ((a.name == nullptr) == (b.name == nullptr)) &&
         (a.name == nullptr || std::string(a.name) == b.name);
}

TEST(TraceFull, DeterministicAcrossRunsInVirtualTime) {
  const RunResult first = traced_gauss(TraceMode::kFull);
  const RunResult second = traced_gauss(TraceMode::kFull);
  ASSERT_NE(first.trace, nullptr);
  ASSERT_NE(second.trace, nullptr);
  ASSERT_EQ(first.trace->procs.size(), second.trace->procs.size());
  for (std::size_t p = 0; p < first.trace->procs.size(); ++p) {
    const auto& ea = first.trace->procs[p].events();
    const auto& eb = second.trace->procs[p].events();
    ASSERT_EQ(ea.size(), eb.size()) << "proc " << p;
    for (std::size_t i = 0; i < ea.size(); ++i)
      EXPECT_TRUE(same_virtual_content(ea[i], eb[i]))
          << "proc " << p << " event " << i;
  }
}

// ---------------------------------------------------------------------------
// Span nesting and structure.

void expect_wellformed_spans(const Trace& trace) {
  for (const ProcTrace& proc : trace.procs) {
    int depth = 0;
    double last_vt = 0.0;
    for (const TraceEvent& e : proc.events()) {
      EXPECT_GE(e.vt0, last_vt) << "events out of virtual-time order";
      last_vt = e.vt1;
      if (e.kind == TraceEventKind::kSpanBegin) {
        EXPECT_NE(e.name, nullptr);
        ++depth;
      } else if (e.kind == TraceEventKind::kSpanEnd) {
        ASSERT_GT(depth, 0) << "span end without begin";
        --depth;
      }
    }
    EXPECT_EQ(depth, 0) << "unclosed span on proc " << proc.proc_id();
  }
}

TEST(TraceSpans, NestWellFormedPerProcInBothModes) {
  for (const TraceMode mode : {TraceMode::kSpans, TraceMode::kFull}) {
    const RunResult run = traced_gauss(mode);
    ASSERT_NE(run.trace, nullptr);
    expect_wellformed_spans(*run.trace);
  }
}

TEST(TraceSpans, SummaryCoversSkeletonsAndAppPhases) {
  const RunResult run = traced_gauss(TraceMode::kSpans);
  ASSERT_NE(run.trace, nullptr);
  const auto spans = skil::parix::span_summary(*run.trace);
  auto count_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& s : spans)
      if (name == s.name) return s.count;
    return 0;
  };
  // gauss n=32 p=4: 32 elimination rounds on each of 4 processors.
  EXPECT_EQ(count_of("gauss pivot round"), 32u * 4u);
  EXPECT_GT(count_of("array_map"), 0u);
  EXPECT_GT(count_of("array_broadcast_part"), 0u);
  EXPECT_GT(count_of("array_fold"), 0u);
  EXPECT_GT(count_of("broadcast"), 0u);
}

TEST(TraceSpans, SpansModeRecordsNoMessageEvents) {
  const RunResult run = traced_gauss(TraceMode::kSpans);
  ASSERT_NE(run.trace, nullptr);
  for (const ProcTrace& proc : run.trace->procs)
    for (const TraceEvent& e : proc.events())
      EXPECT_TRUE(e.kind == TraceEventKind::kSpanBegin ||
                  e.kind == TraceEventKind::kSpanEnd);
}

// ---------------------------------------------------------------------------
// Full-trace timeline structure: per-proc slices tile [0, final vtime].

TEST(TraceFull, SlicesTileEachProcTimeline) {
  const RunResult run = traced_gauss(TraceMode::kFull);
  ASSERT_NE(run.trace, nullptr);
  for (std::size_t p = 0; p < run.trace->procs.size(); ++p) {
    double cursor = 0.0;
    for (const TraceEvent& e : run.trace->procs[p].events()) {
      if (e.kind == TraceEventKind::kSpanBegin ||
          e.kind == TraceEventKind::kSpanEnd)
        continue;
      EXPECT_EQ(e.vt0, cursor) << "gap in proc " << p << " timeline";
      EXPECT_GE(e.vt1, e.vt0);
      cursor = e.vt1;
    }
    EXPECT_EQ(cursor, run.proc_vtimes[p])
        << "proc " << p << " timeline does not reach its final vtime";
  }
}

TEST(TraceFull, MessageEventCountsMatchStats) {
  const RunResult run = traced_gauss(TraceMode::kFull);
  ASSERT_NE(run.trace, nullptr);
  std::uint64_t sends = 0, recvs = 0, sent_bytes = 0, recv_bytes = 0;
  for (const ProcTrace& proc : run.trace->procs)
    for (const TraceEvent& e : proc.events()) {
      if (e.kind == TraceEventKind::kSend) {
        ++sends;
        sent_bytes += e.bytes;
      } else if (e.kind == TraceEventKind::kRecv) {
        ++recvs;
        recv_bytes += e.bytes;
      }
    }
  EXPECT_EQ(sends, run.total.messages_sent);
  EXPECT_EQ(recvs, run.total.messages_received);
  EXPECT_EQ(sent_bytes, run.total.bytes_sent);
  EXPECT_EQ(recv_bytes, run.total.bytes_received);
}

// Satellite: Stats now tracks received traffic symmetrically.
TEST(Stats, BytesReceivedMatchesBytesSentInAggregate) {
  const RunResult run =
      skil::apps::gauss_skil(4, 32, kGoldenSeed, false).run;
  EXPECT_EQ(run.total.bytes_received, run.total.bytes_sent);
  EXPECT_EQ(run.total.messages_received, run.total.messages_sent);
  std::uint64_t received = 0;
  for (const auto& stats : run.proc_stats) received += stats.bytes_received;
  EXPECT_EQ(received, run.total.bytes_received);
}

// ---------------------------------------------------------------------------
// Critical path.

TEST(CriticalPath_, LengthEqualsFinalMaxVtimeAndSegmentsTelescope) {
  const RunResult run = traced_gauss(TraceMode::kFull);
  ASSERT_NE(run.trace, nullptr);
  const CriticalPath path = analyze_critical_path(*run.trace);
  EXPECT_EQ(path.total_us, run.vtime_us);
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.front().vt0, 0.0);
  EXPECT_EQ(path.segments.back().vt1, path.total_us);
  for (std::size_t i = 1; i < path.segments.size(); ++i)
    EXPECT_EQ(path.segments[i].vt0, path.segments[i - 1].vt1)
        << "segment " << i << " does not abut its predecessor";
  // The per-kind totals partition the path.  Unlike the telescoped
  // endpoints (exact by identity), summing segment durations
  // re-associates the additions, so allow accumulated rounding.
  EXPECT_NEAR(path.compute_us + path.send_us + path.recv_us + path.wire_us,
              path.total_us, 1e-9 * path.total_us);
  // Slack: zero for the critical processor, nonnegative elsewhere.
  double min_slack = path.proc_slack_us.front();
  for (const double slack : path.proc_slack_us) {
    EXPECT_GE(slack, 0.0);
    min_slack = std::min(min_slack, slack);
  }
  EXPECT_EQ(min_slack, 0.0);
}

TEST(CriticalPath_, RequiresFullMode) {
  const RunResult run = traced_gauss(TraceMode::kSpans);
  ASSERT_NE(run.trace, nullptr);
  EXPECT_THROW(analyze_critical_path(*run.trace), ContractError);
}

// ---------------------------------------------------------------------------
// Exporters.  A minimal strict JSON validator keeps the test
// dependency-free (the repo has no JSON library, by design).

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(Exporters, ChromeTraceIsValidJsonInBothModes) {
  for (const TraceMode mode : {TraceMode::kSpans, TraceMode::kFull}) {
    const RunResult run = traced_gauss(mode);
    ASSERT_NE(run.trace, nullptr);
    std::ostringstream out;
    skil::parix::write_chrome_trace(*run.trace, out);
    const std::string text = out.str();
    EXPECT_TRUE(JsonValidator(text).valid())
        << "invalid Chrome trace JSON in mode "
        << skil::parix::trace_mode_name(mode);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"vproc 0\""), std::string::npos);
  }
}

TEST(Exporters, MetricsJsonIsValidAndRoundTripsStatsBitExactly) {
  const RunResult run = traced_gauss(TraceMode::kFull);
  ASSERT_NE(run.trace, nullptr);
  std::ostringstream out;
  skil::parix::write_metrics_json(run, out);
  const std::string text = out.str();
  ASSERT_TRUE(JsonValidator(text).valid()) << "invalid metrics JSON";

  // The per-proc breakdown must carry Proc::Stats verbatim: the %.17g
  // renderings of compute_us and comm_us appear exactly, so a consumer
  // re-parsing the file recovers bit-identical doubles.
  for (const auto& stats : run.proc_stats) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"compute_us\":%.17g", stats.compute_us);
    EXPECT_NE(text.find(buf), std::string::npos) << buf;
    std::snprintf(buf, sizeof buf, "\"comm_us\":%.17g", stats.comm_us);
    EXPECT_NE(text.find(buf), std::string::npos) << buf;
  }
  char total[64];
  std::snprintf(total, sizeof total, "\"total_us\":%.17g", run.vtime_us);
  EXPECT_NE(text.find(total), std::string::npos)
      << "critical-path total must equal the run's final max vtime";
  EXPECT_NE(text.find("\"bytes_received\""), std::string::npos);
  EXPECT_NE(text.find("\"messages_by_tag\""), std::string::npos);
  EXPECT_NE(text.find("\"bytes_by_link\""), std::string::npos);
}

TEST(Exporters, MetricsJsonWorksWithoutATrace) {
  const RunResult run = with_trace_mode(TraceMode::kOff, [] {
    return skil::apps::gauss_skil(4, 32, kGoldenSeed, false).run;
  });
  ASSERT_EQ(run.trace, nullptr);
  std::ostringstream out;
  skil::parix::write_metrics_json(run, out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonValidator(text).valid());
  EXPECT_NE(text.find("\"trace_mode\":\"off\""), std::string::npos);
  EXPECT_EQ(text.find("\"critical_path\""), std::string::npos);
}

}  // namespace
