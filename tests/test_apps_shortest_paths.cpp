// Integration tests: all three shortest-paths implementations must
// agree with the sequential oracle and with each other.
#include <gtest/gtest.h>

#include "apps/shortest_paths.h"
#include "support/matrix.h"

namespace {

using namespace skil;
using apps::shpaths_c;
using apps::shpaths_dpfl;
using apps::shpaths_round_up;
using apps::shpaths_skil;

support::Matrix<std::uint32_t> oracle(int n_padded, int n_orig,
                                      std::uint64_t seed) {
  support::Matrix<std::uint32_t> dist(n_padded, n_padded);
  for (int i = 0; i < n_padded; ++i)
    for (int j = 0; j < n_padded; ++j) {
      if (i >= n_orig || j >= n_orig)
        dist(i, j) = i == j ? 0 : support::kDistInf;
      else
        dist(i, j) = support::distance_entry(n_orig, seed, i, j);
    }
  return support::seq_shortest_paths(std::move(dist));
}

TEST(RoundUp, MatchesThePapersRule) {
  EXPECT_EQ(shpaths_round_up(200, 4), 200);
  EXPECT_EQ(shpaths_round_up(200, 9), 201);  // the paper's example
  EXPECT_EQ(shpaths_round_up(200, 36), 204);
  EXPECT_EQ(shpaths_round_up(200, 49), 203);
  EXPECT_EQ(shpaths_round_up(1, 16), 4);
}

struct SpCase {
  int p;
  int n;
};

class ShortestPaths : public ::testing::TestWithParam<SpCase> {};

TEST_P(ShortestPaths, SkilMatchesOracle) {
  const auto [p, n] = GetParam();
  const auto result = shpaths_skil(p, n, 42);
  EXPECT_EQ(result.distances, oracle(shpaths_round_up(n, p), n, 42));
  EXPECT_GT(result.run.vtime_us, 0.0);
}

TEST_P(ShortestPaths, DpflMatchesOracle) {
  const auto [p, n] = GetParam();
  const auto result = shpaths_dpfl(p, n, 42);
  EXPECT_EQ(result.distances, oracle(shpaths_round_up(n, p), n, 42));
}

TEST_P(ShortestPaths, HandWrittenCMatchesOracleBothVariants) {
  const auto [p, n] = GetParam();
  const auto expected = oracle(shpaths_round_up(n, p), n, 42);
  EXPECT_EQ(shpaths_c(p, n, 42, /*optimized=*/true).distances, expected);
  EXPECT_EQ(shpaths_c(p, n, 42, /*optimized=*/false).distances, expected);
}

INSTANTIATE_TEST_SUITE_P(Grids, ShortestPaths,
                         ::testing::Values(SpCase{1, 12}, SpCase{4, 16},
                                           SpCase{4, 15}, SpCase{9, 21},
                                           SpCase{16, 24}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.p) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(ShortestPathsCost, SkilBeatsOldCButNotOptimizedC) {
  // Table 1's headline shape: Skil < old C (no virtual topologies,
  // synchronous sends); optimized C < Skil.
  const int p = 16, n = 64;
  const double skil = shpaths_skil(p, n, 7).run.vtime_us;
  const double old_c = shpaths_c(p, n, 7, /*optimized=*/false).run.vtime_us;
  const double opt_c = shpaths_c(p, n, 7, /*optimized=*/true).run.vtime_us;
  EXPECT_LT(skil, old_c);
  EXPECT_LT(opt_c, skil);
}

TEST(ShortestPathsCost, DpflIsSeveralTimesSlowerThanSkil) {
  const int p = 4, n = 32;
  const double skil = shpaths_skil(p, n, 7).run.vtime_us;
  const double dpfl = shpaths_dpfl(p, n, 7).run.vtime_us;
  EXPECT_GT(dpfl / skil, 2.0);
  EXPECT_LT(dpfl / skil, 20.0);
}

TEST(ShortestPathsCost, VirtualTimeIsDeterministic) {
  const auto a = shpaths_skil(9, 18, 3).run.vtime_us;
  const auto b = shpaths_skil(9, 18, 3).run.vtime_us;
  EXPECT_EQ(a, b);
}

}  // namespace
