// skil-prof: text dashboard for SKIL_PROF scheduler reports.
//
//   skil-prof [--top=N] metrics.json
//
// Reads a metrics JSON file written by parix::write_metrics_json for a
// run with SKIL_PROF=counters or SKIL_PROF=sampled and renders the
// host-scheduler dashboard: per-carrier utilization, steal success
// rate, settlement coverage, buffer-pool hit rate, and the top-N
// widest gang batches (--top, default 3).
//
// Exit status: 0 ok, 2 usage/input failure (missing file, metrics
// without a scheduler object, malformed JSON).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "parix/prof_report.h"
#include "support/error.h"
#include "support/json.h"

int main(int argc, char** argv) {
  std::string path;
  int top_n = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      try {
        top_n = std::stoi(arg.substr(6));
      } catch (...) {
        std::cerr << "skil-prof: invalid --top value '" << arg.substr(6)
                  << "'\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "skil-prof: unknown flag '" << arg << "'\n";
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "skil-prof: more than one input file\n";
      return 2;
    }
  }
  if (path.empty() || top_n < 1) {
    std::cerr << "usage: skil-prof [--top=N] metrics.json\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "skil-prof: cannot open '" << path << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const skil::support::json::Value metrics =
        skil::support::json::parse(buffer.str());
    skil::parix::render_prof_report(metrics, std::cout, top_n);
  } catch (const std::exception& err) {
    std::cerr << "skil-prof: " << path << ": " << err.what() << '\n';
    return 2;
  }
  return 0;
}
