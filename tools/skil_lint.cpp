// skil-lint: analyze-only front end for the skilc semantic checks.
//
//   skil-lint [flags] file.skil...
//
//     --Werror                 exit non-zero on warnings too
//     --json=PATH              also write the findings as JSON to PATH
//                              (one object covering all input files:
//                              {"findings": [...], "skeletonize": {...}})
//     --no-<pass>              disable one analysis pass; the pass list
//                              is derived from analyze_passes(), so a
//                              newly registered pass gets its flag (and
//                              its line in --help) automatically
//
// Exit status: 0 clean, 1 findings (errors, or warnings under
// --Werror), 2 usage or I/O failure.  Nothing is compiled: the tool
// stops after the analysis passes, so defective programs still lint.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "skilc/analyze.h"
#include "skilc/diagnostics.h"
#include "skilc/skeletonize.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

void usage(const std::string& program) {
  std::cerr << "usage: " << program
            << " [--Werror] [--json=PATH] [--no-<pass>] file.skil...\n"
               "passes:";
  for (const skil::skilc::AnalyzePass& pass : skil::skilc::analyze_passes())
    std::cerr << " " << pass.name;
  std::cerr << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using skil::skilc::AnalyzeOptions;
  using skil::skilc::AnalyzePass;
  using skil::skilc::Diagnostic;
  using skil::skilc::DiagnosticSink;
  using skil::skilc::SkeletonizeCounters;

  // Flags are parsed by hand rather than through support::Cli: its
  // "--name value" form would make the boolean flags here swallow the
  // following file path.
  const std::string program = argc > 0 ? argv[0] : "skil-lint";
  AnalyzeOptions options;
  bool werror = false;
  std::string json_path;
  bool write_json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      files.push_back(arg);
      continue;
    }
    if (arg == "--help") {
      usage(program);
      return 0;
    }
    if (arg == "--Werror") {
      werror = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      write_json = true;
      continue;
    }
    bool known = false;
    if (arg.rfind("--no-", 0) == 0) {
      const std::string name = arg.substr(5);
      for (const AnalyzePass& pass : skil::skilc::analyze_passes()) {
        if (name != pass.name) continue;
        options.*(pass.flag) = false;
        known = true;
        break;
      }
    }
    if (!known) {
      std::cerr << "skil-lint: unknown flag '" << arg << "'\n";
      usage(program);
      return 2;
    }
  }
  if (files.empty()) {
    usage(program);
    return 2;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  SkeletonizeCounters totals;
  std::string findings_json = "[";
  bool json_first = true;

  for (const std::string& path : files) {
    std::string source;
    if (!read_file(path, source)) {
      std::cerr << "skil-lint: cannot read '" << path << "'\n";
      return 2;
    }
    DiagnosticSink sink;
    SkeletonizeCounters counters;
    skil::skilc::lint_source(source, sink, options, &counters);
    totals += counters;
    errors += sink.error_count();
    warnings += sink.warning_count();
    if (!sink.empty()) std::cout << sink.render(path);
    const std::string file_json = sink.render_json(path);
    // Splice this file's array into the combined one.
    if (file_json.size() > 2) {  // not "[]"
      if (!json_first) findings_json += ",";
      findings_json += file_json.substr(1, file_json.size() - 2);
      json_first = false;
    }
  }
  findings_json += "]";

  if (write_json) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "skil-lint: cannot write '" << json_path << "'\n";
      return 2;
    }
    out << "{\"findings\": " << findings_json
        << ", \"skeletonize\": " << totals.render_json() << "}\n";
  }

  if (errors + warnings > 0) {
    std::cerr << "skil-lint: " << errors << " error(s), " << warnings
              << " warning(s) across " << files.size() << " file(s)\n";
  }
  if (errors > 0) return 1;
  if (werror && warnings > 0) return 1;
  return 0;
}
