# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support_rng[1]_include.cmake")
include("/root/repo/build/tests/test_support_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_support_table_csv_cli[1]_include.cmake")
include("/root/repo/build/tests/test_parix_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_parix_mailbox[1]_include.cmake")
include("/root/repo/build/tests/test_parix_topology[1]_include.cmake")
include("/root/repo/build/tests/test_parix_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_skil_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_skil_array[1]_include.cmake")
include("/root/repo/build/tests/test_skil_map_fold[1]_include.cmake")
include("/root/repo/build/tests/test_skil_comm[1]_include.cmake")
include("/root/repo/build/tests/test_skil_gen_mult[1]_include.cmake")
include("/root/repo/build/tests/test_skil_functional[1]_include.cmake")
include("/root/repo/build/tests/test_skil_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_skil_rows_io[1]_include.cmake")
include("/root/repo/build/tests/test_skil_transpose_farm[1]_include.cmake")
include("/root/repo/build/tests/test_dpfl[1]_include.cmake")
include("/root/repo/build/tests/test_apps_shortest_paths[1]_include.cmake")
include("/root/repo/build/tests/test_apps_gauss[1]_include.cmake")
include("/root/repo/build/tests/test_apps_matmul[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_skilc_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_skilc_typecheck[1]_include.cmake")
include("/root/repo/build/tests/test_skilc_instantiate[1]_include.cmake")
include("/root/repo/build/tests/test_skilc_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_skil_pipelines[1]_include.cmake")
include("/root/repo/build/tests/test_scale[1]_include.cmake")
