# Empty compiler generated dependencies file for test_parix_runtime.
# This may be replaced when dependencies are built.
