file(REMOVE_RECURSE
  "CMakeFiles/test_parix_runtime.dir/test_parix_runtime.cpp.o"
  "CMakeFiles/test_parix_runtime.dir/test_parix_runtime.cpp.o.d"
  "test_parix_runtime"
  "test_parix_runtime.pdb"
  "test_parix_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parix_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
