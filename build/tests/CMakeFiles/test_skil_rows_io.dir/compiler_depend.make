# Empty compiler generated dependencies file for test_skil_rows_io.
# This may be replaced when dependencies are built.
