file(REMOVE_RECURSE
  "CMakeFiles/test_skil_rows_io.dir/test_skil_rows_io.cpp.o"
  "CMakeFiles/test_skil_rows_io.dir/test_skil_rows_io.cpp.o.d"
  "test_skil_rows_io"
  "test_skil_rows_io.pdb"
  "test_skil_rows_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_rows_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
