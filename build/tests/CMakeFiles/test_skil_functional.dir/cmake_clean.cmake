file(REMOVE_RECURSE
  "CMakeFiles/test_skil_functional.dir/test_skil_functional.cpp.o"
  "CMakeFiles/test_skil_functional.dir/test_skil_functional.cpp.o.d"
  "test_skil_functional"
  "test_skil_functional.pdb"
  "test_skil_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
