# Empty dependencies file for test_skil_functional.
# This may be replaced when dependencies are built.
