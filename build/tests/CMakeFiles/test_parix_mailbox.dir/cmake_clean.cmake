file(REMOVE_RECURSE
  "CMakeFiles/test_parix_mailbox.dir/test_parix_mailbox.cpp.o"
  "CMakeFiles/test_parix_mailbox.dir/test_parix_mailbox.cpp.o.d"
  "test_parix_mailbox"
  "test_parix_mailbox.pdb"
  "test_parix_mailbox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parix_mailbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
