# Empty dependencies file for test_parix_mailbox.
# This may be replaced when dependencies are built.
