
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_skil_map_fold.cpp" "tests/CMakeFiles/test_skil_map_fold.dir/test_skil_map_fold.cpp.o" "gcc" "tests/CMakeFiles/test_skil_map_fold.dir/test_skil_map_fold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/skil_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/skil/CMakeFiles/skil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpfl/CMakeFiles/skil_dpfl.dir/DependInfo.cmake"
  "/root/repo/build/src/parix/CMakeFiles/skil_parix.dir/DependInfo.cmake"
  "/root/repo/build/src/skilc/CMakeFiles/skil_skilc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/skil_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
