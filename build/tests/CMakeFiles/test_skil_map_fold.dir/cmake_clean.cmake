file(REMOVE_RECURSE
  "CMakeFiles/test_skil_map_fold.dir/test_skil_map_fold.cpp.o"
  "CMakeFiles/test_skil_map_fold.dir/test_skil_map_fold.cpp.o.d"
  "test_skil_map_fold"
  "test_skil_map_fold.pdb"
  "test_skil_map_fold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_map_fold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
