# Empty dependencies file for test_skil_map_fold.
# This may be replaced when dependencies are built.
