file(REMOVE_RECURSE
  "CMakeFiles/test_skilc_instantiate.dir/test_skilc_instantiate.cpp.o"
  "CMakeFiles/test_skilc_instantiate.dir/test_skilc_instantiate.cpp.o.d"
  "test_skilc_instantiate"
  "test_skilc_instantiate.pdb"
  "test_skilc_instantiate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skilc_instantiate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
