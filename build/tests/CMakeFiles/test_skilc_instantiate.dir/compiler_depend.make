# Empty compiler generated dependencies file for test_skilc_instantiate.
# This may be replaced when dependencies are built.
