# Empty compiler generated dependencies file for test_skil_pipelines.
# This may be replaced when dependencies are built.
