file(REMOVE_RECURSE
  "CMakeFiles/test_skil_pipelines.dir/test_skil_pipelines.cpp.o"
  "CMakeFiles/test_skil_pipelines.dir/test_skil_pipelines.cpp.o.d"
  "test_skil_pipelines"
  "test_skil_pipelines.pdb"
  "test_skil_pipelines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
