# Empty compiler generated dependencies file for test_parix_topology.
# This may be replaced when dependencies are built.
