file(REMOVE_RECURSE
  "CMakeFiles/test_parix_topology.dir/test_parix_topology.cpp.o"
  "CMakeFiles/test_parix_topology.dir/test_parix_topology.cpp.o.d"
  "test_parix_topology"
  "test_parix_topology.pdb"
  "test_parix_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parix_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
