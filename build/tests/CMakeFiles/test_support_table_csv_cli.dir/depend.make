# Empty dependencies file for test_support_table_csv_cli.
# This may be replaced when dependencies are built.
