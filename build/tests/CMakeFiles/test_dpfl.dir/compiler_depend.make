# Empty compiler generated dependencies file for test_dpfl.
# This may be replaced when dependencies are built.
