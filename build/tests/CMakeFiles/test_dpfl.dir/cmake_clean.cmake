file(REMOVE_RECURSE
  "CMakeFiles/test_dpfl.dir/test_dpfl.cpp.o"
  "CMakeFiles/test_dpfl.dir/test_dpfl.cpp.o.d"
  "test_dpfl"
  "test_dpfl.pdb"
  "test_dpfl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
