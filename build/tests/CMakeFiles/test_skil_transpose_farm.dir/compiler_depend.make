# Empty compiler generated dependencies file for test_skil_transpose_farm.
# This may be replaced when dependencies are built.
