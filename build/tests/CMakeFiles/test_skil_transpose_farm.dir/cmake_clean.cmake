file(REMOVE_RECURSE
  "CMakeFiles/test_skil_transpose_farm.dir/test_skil_transpose_farm.cpp.o"
  "CMakeFiles/test_skil_transpose_farm.dir/test_skil_transpose_farm.cpp.o.d"
  "test_skil_transpose_farm"
  "test_skil_transpose_farm.pdb"
  "test_skil_transpose_farm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_transpose_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
