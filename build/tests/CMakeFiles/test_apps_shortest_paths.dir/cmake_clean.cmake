file(REMOVE_RECURSE
  "CMakeFiles/test_apps_shortest_paths.dir/test_apps_shortest_paths.cpp.o"
  "CMakeFiles/test_apps_shortest_paths.dir/test_apps_shortest_paths.cpp.o.d"
  "test_apps_shortest_paths"
  "test_apps_shortest_paths.pdb"
  "test_apps_shortest_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_shortest_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
