# Empty dependencies file for test_skilc_typecheck.
# This may be replaced when dependencies are built.
