file(REMOVE_RECURSE
  "CMakeFiles/test_skilc_typecheck.dir/test_skilc_typecheck.cpp.o"
  "CMakeFiles/test_skilc_typecheck.dir/test_skilc_typecheck.cpp.o.d"
  "test_skilc_typecheck"
  "test_skilc_typecheck.pdb"
  "test_skilc_typecheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skilc_typecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
