# Empty dependencies file for test_skilc_roundtrip.
# This may be replaced when dependencies are built.
