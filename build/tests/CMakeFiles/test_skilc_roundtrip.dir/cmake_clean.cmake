file(REMOVE_RECURSE
  "CMakeFiles/test_skilc_roundtrip.dir/test_skilc_roundtrip.cpp.o"
  "CMakeFiles/test_skilc_roundtrip.dir/test_skilc_roundtrip.cpp.o.d"
  "test_skilc_roundtrip"
  "test_skilc_roundtrip.pdb"
  "test_skilc_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skilc_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
