file(REMOVE_RECURSE
  "CMakeFiles/test_parix_collectives.dir/test_parix_collectives.cpp.o"
  "CMakeFiles/test_parix_collectives.dir/test_parix_collectives.cpp.o.d"
  "test_parix_collectives"
  "test_parix_collectives.pdb"
  "test_parix_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parix_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
