# Empty compiler generated dependencies file for test_parix_collectives.
# This may be replaced when dependencies are built.
