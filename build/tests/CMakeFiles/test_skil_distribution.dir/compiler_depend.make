# Empty compiler generated dependencies file for test_skil_distribution.
# This may be replaced when dependencies are built.
