file(REMOVE_RECURSE
  "CMakeFiles/test_skil_distribution.dir/test_skil_distribution.cpp.o"
  "CMakeFiles/test_skil_distribution.dir/test_skil_distribution.cpp.o.d"
  "test_skil_distribution"
  "test_skil_distribution.pdb"
  "test_skil_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
