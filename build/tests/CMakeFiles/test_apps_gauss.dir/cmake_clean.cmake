file(REMOVE_RECURSE
  "CMakeFiles/test_apps_gauss.dir/test_apps_gauss.cpp.o"
  "CMakeFiles/test_apps_gauss.dir/test_apps_gauss.cpp.o.d"
  "test_apps_gauss"
  "test_apps_gauss.pdb"
  "test_apps_gauss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
