# Empty dependencies file for test_apps_gauss.
# This may be replaced when dependencies are built.
