file(REMOVE_RECURSE
  "CMakeFiles/test_skil_gen_mult.dir/test_skil_gen_mult.cpp.o"
  "CMakeFiles/test_skil_gen_mult.dir/test_skil_gen_mult.cpp.o.d"
  "test_skil_gen_mult"
  "test_skil_gen_mult.pdb"
  "test_skil_gen_mult[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_gen_mult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
