# Empty dependencies file for test_skil_gen_mult.
# This may be replaced when dependencies are built.
