file(REMOVE_RECURSE
  "CMakeFiles/test_skil_extensions.dir/test_skil_extensions.cpp.o"
  "CMakeFiles/test_skil_extensions.dir/test_skil_extensions.cpp.o.d"
  "test_skil_extensions"
  "test_skil_extensions.pdb"
  "test_skil_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
