# Empty dependencies file for test_skil_extensions.
# This may be replaced when dependencies are built.
