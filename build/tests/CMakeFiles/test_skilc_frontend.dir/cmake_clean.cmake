file(REMOVE_RECURSE
  "CMakeFiles/test_skilc_frontend.dir/test_skilc_frontend.cpp.o"
  "CMakeFiles/test_skilc_frontend.dir/test_skilc_frontend.cpp.o.d"
  "test_skilc_frontend"
  "test_skilc_frontend.pdb"
  "test_skilc_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skilc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
