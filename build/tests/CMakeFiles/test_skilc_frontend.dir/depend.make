# Empty dependencies file for test_skilc_frontend.
# This may be replaced when dependencies are built.
