file(REMOVE_RECURSE
  "CMakeFiles/test_skil_array.dir/test_skil_array.cpp.o"
  "CMakeFiles/test_skil_array.dir/test_skil_array.cpp.o.d"
  "test_skil_array"
  "test_skil_array.pdb"
  "test_skil_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
