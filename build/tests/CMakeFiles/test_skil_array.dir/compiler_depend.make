# Empty compiler generated dependencies file for test_skil_array.
# This may be replaced when dependencies are built.
