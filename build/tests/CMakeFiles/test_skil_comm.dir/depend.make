# Empty dependencies file for test_skil_comm.
# This may be replaced when dependencies are built.
