file(REMOVE_RECURSE
  "CMakeFiles/test_skil_comm.dir/test_skil_comm.cpp.o"
  "CMakeFiles/test_skil_comm.dir/test_skil_comm.cpp.o.d"
  "test_skil_comm"
  "test_skil_comm.pdb"
  "test_skil_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skil_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
