# Empty dependencies file for skilc_demo.
# This may be replaced when dependencies are built.
