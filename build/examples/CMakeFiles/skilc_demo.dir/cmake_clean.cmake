file(REMOVE_RECURSE
  "CMakeFiles/skilc_demo.dir/skilc_demo.cpp.o"
  "CMakeFiles/skilc_demo.dir/skilc_demo.cpp.o.d"
  "skilc_demo"
  "skilc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skilc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
