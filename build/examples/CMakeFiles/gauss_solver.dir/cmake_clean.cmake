file(REMOVE_RECURSE
  "CMakeFiles/gauss_solver.dir/gauss_solver.cpp.o"
  "CMakeFiles/gauss_solver.dir/gauss_solver.cpp.o.d"
  "gauss_solver"
  "gauss_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
