# Empty compiler generated dependencies file for quicksort_dc.
# This may be replaced when dependencies are built.
