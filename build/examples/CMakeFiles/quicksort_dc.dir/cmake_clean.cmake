file(REMOVE_RECURSE
  "CMakeFiles/quicksort_dc.dir/quicksort_dc.cpp.o"
  "CMakeFiles/quicksort_dc.dir/quicksort_dc.cpp.o.d"
  "quicksort_dc"
  "quicksort_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicksort_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
