# Empty compiler generated dependencies file for shortest_paths.
# This may be replaced when dependencies are built.
