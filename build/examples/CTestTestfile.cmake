# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--procs=4" "--elems=16")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shortest_paths "/root/repo/build/examples/shortest_paths" "--procs=4" "--nodes=8")
set_tests_properties(example_shortest_paths PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gauss_solver "/root/repo/build/examples/gauss_solver" "--procs=4" "--n=12")
set_tests_properties(example_gauss_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_stencil "/root/repo/build/examples/heat_stencil" "--procs=4" "--cells=32" "--steps=12")
set_tests_properties(example_heat_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quicksort_dc "/root/repo/build/examples/quicksort_dc" "--elems=16")
set_tests_properties(example_quicksort_dc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_skilc_demo "/root/repo/build/examples/skilc_demo")
set_tests_properties(example_skilc_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
