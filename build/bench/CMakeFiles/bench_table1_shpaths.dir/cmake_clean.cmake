file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_shpaths.dir/bench_table1_shpaths.cpp.o"
  "CMakeFiles/bench_table1_shpaths.dir/bench_table1_shpaths.cpp.o.d"
  "bench_table1_shpaths"
  "bench_table1_shpaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_shpaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
