file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_matmul_opt.dir/bench_s1_matmul_opt.cpp.o"
  "CMakeFiles/bench_s1_matmul_opt.dir/bench_s1_matmul_opt.cpp.o.d"
  "bench_s1_matmul_opt"
  "bench_s1_matmul_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_matmul_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
