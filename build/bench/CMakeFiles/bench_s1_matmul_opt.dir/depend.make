# Empty dependencies file for bench_s1_matmul_opt.
# This may be replaced when dependencies are built.
