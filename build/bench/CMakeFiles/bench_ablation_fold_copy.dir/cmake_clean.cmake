file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fold_copy.dir/bench_ablation_fold_copy.cpp.o"
  "CMakeFiles/bench_ablation_fold_copy.dir/bench_ablation_fold_copy.cpp.o.d"
  "bench_ablation_fold_copy"
  "bench_ablation_fold_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fold_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
