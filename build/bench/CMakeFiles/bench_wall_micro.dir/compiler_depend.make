# Empty compiler generated dependencies file for bench_wall_micro.
# This may be replaced when dependencies are built.
