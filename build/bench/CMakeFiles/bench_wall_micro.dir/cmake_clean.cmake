file(REMOVE_RECURSE
  "CMakeFiles/bench_wall_micro.dir/bench_wall_micro.cpp.o"
  "CMakeFiles/bench_wall_micro.dir/bench_wall_micro.cpp.o.d"
  "bench_wall_micro"
  "bench_wall_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wall_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
