file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_instantiation.dir/bench_ablation_instantiation.cpp.o"
  "CMakeFiles/bench_ablation_instantiation.dir/bench_ablation_instantiation.cpp.o.d"
  "bench_ablation_instantiation"
  "bench_ablation_instantiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_instantiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
