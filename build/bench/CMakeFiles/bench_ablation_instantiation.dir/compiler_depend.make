# Empty compiler generated dependencies file for bench_ablation_instantiation.
# This may be replaced when dependencies are built.
