# Empty dependencies file for bench_table2_gauss.
# This may be replaced when dependencies are built.
