file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gauss.dir/bench_table2_gauss.cpp.o"
  "CMakeFiles/bench_table2_gauss.dir/bench_table2_gauss.cpp.o.d"
  "bench_table2_gauss"
  "bench_table2_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
