# Empty compiler generated dependencies file for bench_s2_gauss_pivot.
# This may be replaced when dependencies are built.
