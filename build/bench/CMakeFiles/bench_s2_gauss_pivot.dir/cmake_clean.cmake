file(REMOVE_RECURSE
  "CMakeFiles/bench_s2_gauss_pivot.dir/bench_s2_gauss_pivot.cpp.o"
  "CMakeFiles/bench_s2_gauss_pivot.dir/bench_s2_gauss_pivot.cpp.o.d"
  "bench_s2_gauss_pivot"
  "bench_s2_gauss_pivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s2_gauss_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
