file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_gauss.dir/bench_figure1_gauss.cpp.o"
  "CMakeFiles/bench_figure1_gauss.dir/bench_figure1_gauss.cpp.o.d"
  "bench_figure1_gauss"
  "bench_figure1_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
