# Empty dependencies file for bench_figure1_gauss.
# This may be replaced when dependencies are built.
