file(REMOVE_RECURSE
  "CMakeFiles/skil_support.dir/cli.cpp.o"
  "CMakeFiles/skil_support.dir/cli.cpp.o.d"
  "CMakeFiles/skil_support.dir/csv.cpp.o"
  "CMakeFiles/skil_support.dir/csv.cpp.o.d"
  "CMakeFiles/skil_support.dir/error.cpp.o"
  "CMakeFiles/skil_support.dir/error.cpp.o.d"
  "CMakeFiles/skil_support.dir/matrix.cpp.o"
  "CMakeFiles/skil_support.dir/matrix.cpp.o.d"
  "CMakeFiles/skil_support.dir/rng.cpp.o"
  "CMakeFiles/skil_support.dir/rng.cpp.o.d"
  "CMakeFiles/skil_support.dir/table.cpp.o"
  "CMakeFiles/skil_support.dir/table.cpp.o.d"
  "libskil_support.a"
  "libskil_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skil_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
