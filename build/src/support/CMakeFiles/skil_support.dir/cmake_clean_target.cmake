file(REMOVE_RECURSE
  "libskil_support.a"
)
