# Empty compiler generated dependencies file for skil_support.
# This may be replaced when dependencies are built.
