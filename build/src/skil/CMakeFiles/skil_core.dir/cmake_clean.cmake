file(REMOVE_RECURSE
  "CMakeFiles/skil_core.dir/distribution.cpp.o"
  "CMakeFiles/skil_core.dir/distribution.cpp.o.d"
  "CMakeFiles/skil_core.dir/index.cpp.o"
  "CMakeFiles/skil_core.dir/index.cpp.o.d"
  "libskil_core.a"
  "libskil_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skil_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
