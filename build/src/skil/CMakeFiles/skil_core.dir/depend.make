# Empty dependencies file for skil_core.
# This may be replaced when dependencies are built.
