file(REMOVE_RECURSE
  "libskil_core.a"
)
