
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gauss.cpp" "src/apps/CMakeFiles/skil_apps.dir/gauss.cpp.o" "gcc" "src/apps/CMakeFiles/skil_apps.dir/gauss.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/apps/CMakeFiles/skil_apps.dir/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/skil_apps.dir/matmul.cpp.o.d"
  "/root/repo/src/apps/shortest_paths.cpp" "src/apps/CMakeFiles/skil_apps.dir/shortest_paths.cpp.o" "gcc" "src/apps/CMakeFiles/skil_apps.dir/shortest_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skil/CMakeFiles/skil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpfl/CMakeFiles/skil_dpfl.dir/DependInfo.cmake"
  "/root/repo/build/src/parix/CMakeFiles/skil_parix.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/skil_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
