# Empty compiler generated dependencies file for skil_apps.
# This may be replaced when dependencies are built.
