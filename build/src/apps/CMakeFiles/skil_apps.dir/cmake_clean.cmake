file(REMOVE_RECURSE
  "CMakeFiles/skil_apps.dir/gauss.cpp.o"
  "CMakeFiles/skil_apps.dir/gauss.cpp.o.d"
  "CMakeFiles/skil_apps.dir/matmul.cpp.o"
  "CMakeFiles/skil_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/skil_apps.dir/shortest_paths.cpp.o"
  "CMakeFiles/skil_apps.dir/shortest_paths.cpp.o.d"
  "libskil_apps.a"
  "libskil_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skil_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
