file(REMOVE_RECURSE
  "libskil_apps.a"
)
