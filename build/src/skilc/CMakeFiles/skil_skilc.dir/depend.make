# Empty dependencies file for skil_skilc.
# This may be replaced when dependencies are built.
