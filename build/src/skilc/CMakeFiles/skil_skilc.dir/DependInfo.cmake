
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skilc/ast.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/ast.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/ast.cpp.o.d"
  "/root/repo/src/skilc/compiler.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/compiler.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/compiler.cpp.o.d"
  "/root/repo/src/skilc/emit.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/emit.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/emit.cpp.o.d"
  "/root/repo/src/skilc/instantiate.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/instantiate.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/instantiate.cpp.o.d"
  "/root/repo/src/skilc/lexer.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/lexer.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/lexer.cpp.o.d"
  "/root/repo/src/skilc/parser.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/parser.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/parser.cpp.o.d"
  "/root/repo/src/skilc/typecheck.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/typecheck.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/typecheck.cpp.o.d"
  "/root/repo/src/skilc/types.cpp" "src/skilc/CMakeFiles/skil_skilc.dir/types.cpp.o" "gcc" "src/skilc/CMakeFiles/skil_skilc.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/skil_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
