file(REMOVE_RECURSE
  "libskil_skilc.a"
)
