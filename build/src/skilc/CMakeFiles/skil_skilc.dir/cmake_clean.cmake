file(REMOVE_RECURSE
  "CMakeFiles/skil_skilc.dir/ast.cpp.o"
  "CMakeFiles/skil_skilc.dir/ast.cpp.o.d"
  "CMakeFiles/skil_skilc.dir/compiler.cpp.o"
  "CMakeFiles/skil_skilc.dir/compiler.cpp.o.d"
  "CMakeFiles/skil_skilc.dir/emit.cpp.o"
  "CMakeFiles/skil_skilc.dir/emit.cpp.o.d"
  "CMakeFiles/skil_skilc.dir/instantiate.cpp.o"
  "CMakeFiles/skil_skilc.dir/instantiate.cpp.o.d"
  "CMakeFiles/skil_skilc.dir/lexer.cpp.o"
  "CMakeFiles/skil_skilc.dir/lexer.cpp.o.d"
  "CMakeFiles/skil_skilc.dir/parser.cpp.o"
  "CMakeFiles/skil_skilc.dir/parser.cpp.o.d"
  "CMakeFiles/skil_skilc.dir/typecheck.cpp.o"
  "CMakeFiles/skil_skilc.dir/typecheck.cpp.o.d"
  "CMakeFiles/skil_skilc.dir/types.cpp.o"
  "CMakeFiles/skil_skilc.dir/types.cpp.o.d"
  "libskil_skilc.a"
  "libskil_skilc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skil_skilc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
