# Empty dependencies file for skil_parix.
# This may be replaced when dependencies are built.
