file(REMOVE_RECURSE
  "CMakeFiles/skil_parix.dir/cost_model.cpp.o"
  "CMakeFiles/skil_parix.dir/cost_model.cpp.o.d"
  "CMakeFiles/skil_parix.dir/machine.cpp.o"
  "CMakeFiles/skil_parix.dir/machine.cpp.o.d"
  "CMakeFiles/skil_parix.dir/mailbox.cpp.o"
  "CMakeFiles/skil_parix.dir/mailbox.cpp.o.d"
  "CMakeFiles/skil_parix.dir/runtime.cpp.o"
  "CMakeFiles/skil_parix.dir/runtime.cpp.o.d"
  "CMakeFiles/skil_parix.dir/topology.cpp.o"
  "CMakeFiles/skil_parix.dir/topology.cpp.o.d"
  "libskil_parix.a"
  "libskil_parix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skil_parix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
