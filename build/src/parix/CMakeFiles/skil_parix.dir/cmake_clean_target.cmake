file(REMOVE_RECURSE
  "libskil_parix.a"
)
