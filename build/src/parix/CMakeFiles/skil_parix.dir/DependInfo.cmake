
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parix/cost_model.cpp" "src/parix/CMakeFiles/skil_parix.dir/cost_model.cpp.o" "gcc" "src/parix/CMakeFiles/skil_parix.dir/cost_model.cpp.o.d"
  "/root/repo/src/parix/machine.cpp" "src/parix/CMakeFiles/skil_parix.dir/machine.cpp.o" "gcc" "src/parix/CMakeFiles/skil_parix.dir/machine.cpp.o.d"
  "/root/repo/src/parix/mailbox.cpp" "src/parix/CMakeFiles/skil_parix.dir/mailbox.cpp.o" "gcc" "src/parix/CMakeFiles/skil_parix.dir/mailbox.cpp.o.d"
  "/root/repo/src/parix/runtime.cpp" "src/parix/CMakeFiles/skil_parix.dir/runtime.cpp.o" "gcc" "src/parix/CMakeFiles/skil_parix.dir/runtime.cpp.o.d"
  "/root/repo/src/parix/topology.cpp" "src/parix/CMakeFiles/skil_parix.dir/topology.cpp.o" "gcc" "src/parix/CMakeFiles/skil_parix.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/skil_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
