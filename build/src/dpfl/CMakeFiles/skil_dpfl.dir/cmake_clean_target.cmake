file(REMOVE_RECURSE
  "libskil_dpfl.a"
)
