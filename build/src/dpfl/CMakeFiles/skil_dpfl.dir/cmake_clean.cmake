file(REMOVE_RECURSE
  "CMakeFiles/skil_dpfl.dir/dpfl.cpp.o"
  "CMakeFiles/skil_dpfl.dir/dpfl.cpp.o.d"
  "libskil_dpfl.a"
  "libskil_dpfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skil_dpfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
