# Empty compiler generated dependencies file for skil_dpfl.
# This may be replaced when dependencies are built.
