#include "parix/trace.h"

#include <cstdlib>

#include "support/env.h"

namespace skil::parix {

namespace {

TraceMode initial_default_mode() {
  if (const char* env = std::getenv("SKIL_TRACE"))
    return parse_trace_mode(env);
  return TraceMode::kOff;
}

TraceMode& default_mode_slot() {
  static TraceMode mode = initial_default_mode();
  return mode;
}

}  // namespace

TraceMode parse_trace_mode(std::string_view name) {
  static constexpr std::string_view kNames[] = {"off", "spans", "full"};
  static_assert(static_cast<int>(TraceMode::kOff) == 0 &&
                static_cast<int>(TraceMode::kSpans) == 1 &&
                static_cast<int>(TraceMode::kFull) == 2);
  return support::parse_knob<TraceMode>("SKIL_TRACE", "trace mode", name,
                                        kNames);
}

std::string_view trace_mode_name(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff: return "off";
    case TraceMode::kSpans: return "spans";
    case TraceMode::kFull: return "full";
  }
  return "off";
}

TraceMode default_trace_mode() { return default_mode_slot(); }

void set_default_trace_mode(TraceMode mode) { default_mode_slot() = mode; }

}  // namespace skil::parix
