#include "parix/trace.h"

#include <cstdlib>
#include <string>

#include "support/error.h"

namespace skil::parix {

namespace {

TraceMode initial_default_mode() {
  if (const char* env = std::getenv("SKIL_TRACE"))
    return parse_trace_mode(env);
  return TraceMode::kOff;
}

TraceMode& default_mode_slot() {
  static TraceMode mode = initial_default_mode();
  return mode;
}

}  // namespace

TraceMode parse_trace_mode(std::string_view name) {
  if (name == "off") return TraceMode::kOff;
  if (name == "spans") return TraceMode::kSpans;
  if (name == "full") return TraceMode::kFull;
  SKIL_REQUIRE(false, "SKIL_TRACE: unknown trace mode '" + std::string(name) +
                          "' (accepted values: off, spans, full)");
  return TraceMode::kOff;  // unreachable
}

std::string_view trace_mode_name(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff: return "off";
    case TraceMode::kSpans: return "spans";
    case TraceMode::kFull: return "full";
  }
  return "off";
}

TraceMode default_trace_mode() { return default_mode_slot(); }

void set_default_trace_mode(TraceMode mode) { default_mode_slot() = mode; }

}  // namespace skil::parix
