// Host-timeline profiling for the pooled multi-carrier engine
// (SKIL_PROF=off|counters|sampled).
//
// The PR 3 trace layer made the *simulated* machine observable; this
// layer observes the *host* engine underneath it: what each carrier
// thread spent its wall time on (running fibers, stealing, settling,
// parked), how well the gang settlement batches filled, and how the
// BufferPool arena behaved.  Two hard rules, inherited from the trace
// layer's off-mode discipline:
//
//  1. Off mode costs one untaken branch per hot-path site and performs
//     no allocation.  Every site is gated on a single relaxed atomic
//     load (`prof_registry()` returning nullptr, or `prof_counting()`
//     being false).
//
//  2. Profiling reads the host clock and host counters only.  Nothing
//     here ever feeds back into virtual time: the golden vtimes are
//     bit-identical in every mode, and the tests pin that.
//
// Counters live in a per-carrier, cache-line-padded registry so two
// carriers never contend on a line.  The registry is process-global
// and append-only: when the carrier count grows, a larger array is
// published and the old one is retired into a keep-alive list instead
// of being freed, so a racing reader can never touch freed memory.
// Registries are tiny (a few KiB) and resizes are rare (explicit
// executor_set_carriers calls), so the retained memory is noise.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace skil::parix {

enum class ProfMode {
  kOff = 0,      ///< No profiling; one untaken branch per site.
  kCounters,     ///< Per-carrier counters, aggregated on RunResult.
  kSampled,      ///< Counters + a low-frequency host-timeline sampler.
};

ProfMode parse_prof_mode(std::string_view name);
std::string_view prof_mode_name(ProfMode mode);
ProfMode default_prof_mode();
void set_default_prof_mode(ProfMode mode);

/// Lane count of the gang settlement kernel (mirrors
/// charge_tape.h kGangWidth; pinned by a static_assert in prof.cpp so
/// the two cannot drift apart without a compile error).
inline constexpr int kProfGangLanes = 8;

/// One carrier thread's counters.  All fields are written by the
/// owning carrier (or under the scheduler mutex) with relaxed atomics
/// and read by the sampler/aggregator without synchronization: every
/// field is monotone (or a gauge), so a torn read across fields is
/// harmless and a per-field relaxed read is exact.
struct alignas(64) CarrierCounters {
  std::atomic<std::uint64_t> fibers_run{0};       ///< dispatches (first or resumed)
  std::atomic<std::uint64_t> fibers_resumed{0};   ///< dispatches of a fiber that ran before
  std::atomic<std::uint64_t> steal_attempts{0};   ///< probes of a non-home queue
  std::atomic<std::uint64_t> steal_successes{0};  ///< fibers taken from a non-home queue
  std::atomic<std::uint64_t> steal_failed_rounds{0};  ///< full sweeps that found nothing
  std::atomic<std::uint64_t> settle_enqueues{0};  ///< fibers parked into the gang settle queue
  std::atomic<std::uint64_t> parks{0};            ///< kParking -> kParked transitions
  std::atomic<std::uint64_t> unparks{0};          ///< kParked -> ready wakeups
  std::atomic<std::uint64_t> run_ns{0};           ///< host ns inside fiber context switches
  std::atomic<std::uint64_t> settle_ns{0};        ///< host ns inside gang settle batches
  // Gauges for the sampler (not part of the delta report).
  std::atomic<std::int32_t> running_proc{-1};     ///< vproc id on this carrier, -1 = idle
  std::atomic<std::int32_t> queue_depth{0};       ///< ready fibers homed on this carrier
};

/// Process-wide (not per-carrier) scheduler counters: gang batch shape
/// and the settle-queue high-water mark.  Writers hold the scheduler
/// mutex, so plain load/store max updates are race-free.
struct ProfGlobals {
  std::atomic<std::uint64_t> gang_batches{0};
  std::atomic<std::uint64_t> gang_lane_hist[kProfGangLanes] = {};
  std::atomic<std::uint64_t> settle_queue_max{0};   ///< high-water, reset per run
  std::atomic<std::int32_t> settle_queue_depth{0};  ///< gauge for the sampler
};

struct ProfRegistry {
  CarrierCounters* carriers = nullptr;
  int n = 0;
  ProfGlobals globals;
};

namespace prof_detail {
extern std::atomic<ProfRegistry*> g_registry;
extern std::atomic<int> g_active_runs;
}  // namespace prof_detail

/// The hot-path gate: nullptr whenever no profiled run is active, so
/// every instrumentation site is `if (prof) [[unlikely]] ...`.
inline ProfRegistry* prof_registry() {
  if (prof_detail::g_active_runs.load(std::memory_order_relaxed) == 0)
    return nullptr;
  return prof_detail::g_registry.load(std::memory_order_relaxed);
}

/// Gate for sites that have no registry pointer handy (BufferPool).
inline bool prof_counting() {
  return prof_detail::g_active_runs.load(std::memory_order_relaxed) > 0;
}

/// Grows the registry to cover at least `carriers` lanes (never
/// shrinks).  Called by the executor with its worker count before a
/// profiled run and whenever the pool is (re)spawned, so an active
/// registry always covers every live carrier index.
void prof_ensure_registry(int carriers);

/// Refcounted activation: sites count only while >= 1 run wants
/// profiling, so SKIL_PROF=off runs pay nothing even after a profiled
/// run has populated the registry.
void prof_activate();
void prof_deactivate();

/// RAII guard used by spmd_run_ref (exception-safe deactivation).
class ProfActivation {
 public:
  explicit ProfActivation(bool on) : on_(on) {
    if (on_) prof_activate();
  }
  ~ProfActivation() {
    if (on_) prof_deactivate();
  }
  ProfActivation(const ProfActivation&) = delete;
  ProfActivation& operator=(const ProfActivation&) = delete;

 private:
  bool on_;
};

/// BufferPool arena accounting (process-wide; the pool is shared by
/// all carriers and its own mutex serializes acquires).
struct PoolCounters {
  std::uint64_t acquires = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes = 0;  ///< payload bytes served (hits + misses)
};

/// Out-of-line so buffer_pool.h only pays a call on profiled runs.
void prof_note_pool_acquire(bool hit, std::uint64_t bytes);
PoolCounters prof_pool_counters();

/// Resets the per-run high-water marks (settle_queue_max).  Runs are
/// serialized by the executor, so a plain reset at run start is safe.
void prof_reset_watermarks();

/// A point-in-time copy of the registry, used for before/after deltas.
struct RegistrySnapshot {
  struct Lane {
    std::uint64_t fibers_run, fibers_resumed;
    std::uint64_t steal_attempts, steal_successes, steal_failed_rounds;
    std::uint64_t settle_enqueues, parks, unparks;
    std::uint64_t run_ns, settle_ns;
  };
  std::vector<Lane> lanes;
  std::uint64_t gang_batches = 0;
  std::uint64_t gang_lane_hist[kProfGangLanes] = {};
  std::uint64_t settle_queue_max = 0;
};
RegistrySnapshot prof_snapshot();

/// One carrier's activity during a run (delta of two snapshots).
struct CarrierReport {
  std::uint64_t fibers_run = 0;
  std::uint64_t fibers_resumed = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t steal_failed_rounds = 0;
  std::uint64_t settle_enqueues = 0;
  std::uint64_t parks = 0;
  std::uint64_t unparks = 0;
  std::uint64_t run_ns = 0;
  std::uint64_t settle_ns = 0;
};

/// The per-run scheduler report carried on RunResult and exported as
/// the `scheduler` object of the metrics JSON.  `carriers` is 0 for
/// the threads engine (no carrier pool), but pool and memo counters
/// are still reported there.
struct SchedulerReport {
  ProfMode mode = ProfMode::kOff;
  int carriers = 0;
  std::vector<CarrierReport> per_carrier;
  std::uint64_t gang_batches = 0;
  std::uint64_t gang_lane_hist[kProfGangLanes] = {};
  std::uint64_t settle_queue_max = 0;
  PoolCounters pool;
  std::uint64_t memo_hits = 0;    ///< tape-memo hits (from SettleCounters)
  std::uint64_t memo_misses = 0;
  std::uint64_t wall_ns = 0;      ///< host wall time of the run
  std::uint64_t samples = 0;      ///< sampler ticks (kSampled only)
};

/// Flat, carrier-summed totals -- the shape the bench sweeps ship over
/// the fork-pipe wire and aggregate across cells.
struct SchedulerTotals {
  std::uint64_t fibers_run = 0;
  std::uint64_t fibers_resumed = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t steal_failed_rounds = 0;
  std::uint64_t settle_enqueues = 0;
  std::uint64_t parks = 0;
  std::uint64_t unparks = 0;
  std::uint64_t run_ns = 0;
  std::uint64_t settle_ns = 0;
  std::uint64_t gang_batches = 0;
  std::uint64_t gang_lane_hist[kProfGangLanes] = {};
  std::uint64_t settle_queue_max = 0;  ///< max-combined, not summed
  std::uint64_t pool_acquires = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_bytes = 0;

  void add(const SchedulerReport& report);
  void add(const SchedulerTotals& other);
};

/// One sampler tick of one carrier.  `fibers_run` / `steal_successes`
/// are cumulative counter values at the tick (consumers diff adjacent
/// ticks for rates); the rest are instantaneous gauges.
struct ProfSample {
  std::uint64_t wall_ns = 0;  ///< ns since the run's wall epoch
  std::int32_t carrier = 0;
  std::int32_t running_proc = -1;
  std::int32_t queue_depth = 0;
  std::int32_t settle_queue_depth = 0;
  std::uint64_t fibers_run = 0;
  std::uint64_t steal_successes = 0;
};

/// The sampled host timeline of one run: tick-major, carrier-minor
/// (carriers*k samples for k ticks).
struct ProfTimeline {
  int carriers = 0;
  std::uint64_t period_ns = 0;
  std::vector<ProfSample> samples;
};

/// The low-frequency sampler thread (kSampled mode).  Takes one
/// snapshot immediately on construction -- so even a sub-period run
/// gets at least one tick per carrier -- then one every `period`.
/// The destructor stops and joins.
class ProfSampler {
 public:
  ProfSampler(std::chrono::steady_clock::time_point epoch, int carriers,
              std::chrono::nanoseconds period = std::chrono::milliseconds(1));
  ~ProfSampler();

  ProfSampler(const ProfSampler&) = delete;
  ProfSampler& operator=(const ProfSampler&) = delete;

  /// Stops the thread and hands over the collected timeline.
  std::shared_ptr<const ProfTimeline> stop();

 private:
  void sample_once(std::chrono::steady_clock::time_point now);

  friend class SamplerWorker;

  std::chrono::steady_clock::time_point epoch_;
  std::chrono::nanoseconds period_;
  std::shared_ptr<ProfTimeline> timeline_;
  bool stopped_ = false;
};

}  // namespace skil::parix
