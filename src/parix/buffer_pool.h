// Reusable buffer pool for zero-copy message payloads.
//
// share() wraps a vector in an immutable shared buffer suitable for
// Proc::send_buffer: the sender and any in-flight messages reference
// the same storage, so posting a rotation no longer copies a whole
// block per round.  When the last reference drops, the vector node
// returns to the pool's free list instead of the heap, so
// steady-state rotation loops stop allocating per message.  The free
// list is mutex-guarded because that last release happens on another
// processor's thread; the deleter shares ownership of the pool state,
// so buffers may safely outlive the pool (e.g. messages still queued
// in a mailbox after an exception).
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "parix/prof.h"

namespace skil::parix {

template <class T>
class BufferPool {
 public:
  using Buffer = std::vector<T>;

  /// Wraps `data` in a shared immutable buffer whose node recycles
  /// through this pool.
  std::shared_ptr<const Buffer> share(Buffer&& data) {
    std::unique_ptr<Buffer> node;
    {
      const std::scoped_lock lock(state_->mutex);
      if (!state_->free_nodes.empty()) {
        node = std::move(state_->free_nodes.back());
        state_->free_nodes.pop_back();
      }
    }
    if (prof_counting()) [[unlikely]]
      prof_note_pool_acquire(node != nullptr,
                             data.size() * sizeof(T));
    if (node) {
      *node = std::move(data);
    } else {
      node = std::make_unique<Buffer>(std::move(data));
    }
    const std::shared_ptr<State> state = state_;
    Buffer* raw = node.release();
    return std::shared_ptr<const Buffer>(raw, [state](const Buffer* buf) {
      std::unique_ptr<Buffer> owned(const_cast<Buffer*>(buf));
      const std::scoped_lock lock(state->mutex);
      state->free_nodes.push_back(std::move(owned));
    });
  }

 private:
  struct State {
    std::mutex mutex;
    std::vector<std::unique_ptr<Buffer>> free_nodes;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

/// The process-wide pool for element type T, shared by every skeleton
/// invocation in the process.  A sweep runs hundreds of cells; a
/// per-invocation pool drains back to the heap when its skeleton
/// returns, so every cell re-pays the allocation warm-up.  This arena
/// keeps the recycled nodes alive across cells (and across engines --
/// the free list is mutex-guarded, so pooled carriers share it
/// safely).  Buffers retain shared ownership of the pool state, so
/// even process teardown with in-flight messages stays safe.
template <class T>
BufferPool<T>& process_buffer_pool() {
  static BufferPool<T> pool;
  return pool;
}

/// Extracts the vector from a shared buffer by copying.  Like
/// take_payload, this must not move even when use_count() reads 1:
/// that relaxed observation of another owner's drop does not
/// synchronize with the dropping thread's final reads of the buffer,
/// so stealing the vector header would be a data race.  Callers hit
/// this once per skeleton invocation (unskew), not per round.
template <class T>
std::vector<T> take_buffer(std::shared_ptr<const std::vector<T>> buf) {
  return *buf;
}

}  // namespace skil::parix
