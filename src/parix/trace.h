// Two-timeline event tracing of the simulated machine.
//
// The runtime's accounting (Proc::Stats) reports end-of-run totals
// only; this layer records *where* virtual time accumulates.  Every
// virtual processor owns one ProcTrace buffer and appends events to it
// from its own fiber/thread -- no locks, no atomics, no sharing on the
// hot path.  Each event carries both timelines:
//
//  * virtual microseconds (from Proc's deterministic clock) -- the
//    scientific artefact, bit-identical across engines, charge paths
//    and trace modes;
//  * host wall nanoseconds since the run's epoch -- informational
//    (where the *host* spends its time), never fed back into any
//    virtual quantity.
//
// A trace reads at three altitudes: app-level phases (e.g. "gauss
// step" k) and skeleton invocations are span begin/end points;
// individual sends/receives are slices priced by the message layer;
// and the virtual time that accumulates between two recorded points is
// flushed as one "compute" slice when the next event arrives, so the
// trace stays compact no matter how many per-element charges the
// interpretive accounting path books.  charge()/charge_elems/replay
// themselves are NEVER instrumented: the clock-advancing hot loops run
// exactly the code they run untraced.
//
// Invariant (DESIGN.md section 9): tracing must not perturb virtual
// time.  The recorder only *reads* vtime; with SKIL_TRACE=off the only
// residual cost is one untaken pointer test per send/receive/span
// site, so golden virtual times stay bit-identical in every mode
// (tests/test_parix_trace.cpp pins this).
//
// Modes (SKIL_TRACE=off|spans|full, strict parsing like SKIL_ENGINE):
//   off    no recorder allocated; RunResult::trace is null.
//   spans  span begin/end points only (skeleton call counts + per-call
//          virtual durations; cheap enough for big sweeps).
//   full   spans + send/recv slices + compute gap slices + the
//          per-message sequence links the critical-path analyzer and
//          the Chrome exporter's flow arrows need.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

namespace skil::parix {

/// How much the per-proc recorders capture (see the header comment).
enum class TraceMode { kOff, kSpans, kFull };

/// Process-wide default trace mode: kOff, overridable with the
/// SKIL_TRACE environment variable ("off" / "spans" / "full") or
/// set_default_trace_mode.  Unknown SKIL_TRACE values fail loudly
/// (ContractError), like SKIL_ENGINE and SKIL_CHARGE.
TraceMode default_trace_mode();
void set_default_trace_mode(TraceMode mode);

/// Strict mode-name parser shared by the environment reader and the
/// unit tests: raises ContractError listing the accepted values on
/// anything but "off" / "spans" / "full".
TraceMode parse_trace_mode(std::string_view name);

/// Canonical name of a mode ("off" / "spans" / "full").
std::string_view trace_mode_name(TraceMode mode);

enum class TraceEventKind : std::uint8_t {
  kCompute,    ///< charged virtual time between two recorded points
  kSend,       ///< one Proc::send (startup / sync-delivery interval)
  kRecv,       ///< one Proc::recv (posting to ready interval)
  kSpanBegin,  ///< skeleton / app phase opens (point event)
  kSpanEnd,    ///< matching close (point event)
};

/// Which constraint determined a receive's ready time -- the edge the
/// critical-path analyzer walks.
enum class RecvBound : std::uint8_t {
  kLocal,    ///< local clock + receive overhead (message was waiting)
  kArrival,  ///< the message's arrival timestamp (sender-bound edge)
  kChannel,  ///< incoming-link serialisation (a previous delivery)
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kCompute;
  RecvBound bound = RecvBound::kLocal;  ///< kRecv only
  int peer = -1;                        ///< kSend: dst, kRecv: src
  long tag = 0;                         ///< kSend / kRecv
  double vt0 = 0.0;                     ///< virtual begin (us)
  double vt1 = 0.0;                     ///< virtual end (us); == vt0 for points
  std::int64_t wall_ns = 0;             ///< host ns since run epoch, at record
  std::uint64_t bytes = 0;              ///< kSend / kRecv wire bytes
  std::uint32_t seq = 0;        ///< kSend: per-proc send sequence number
  std::uint32_t peer_seq = 0;   ///< kRecv: matching send's seq on `peer`
  const char* name = nullptr;   ///< kSpanBegin/End: static-storage label
  std::int64_t arg = -1;        ///< span argument (e.g. round k), -1 = none
};

/// One virtual processor's event buffer.  Appended to only by the
/// owning processor's fiber/thread; read after the run completes.
class ProcTrace {
 public:
  void configure(int proc_id, bool full,
                 std::chrono::steady_clock::time_point epoch) {
    proc_id_ = proc_id;
    full_ = full;
    epoch_ = epoch;
    events_.reserve(full ? 4096 : 256);
  }

  bool full() const { return full_; }
  int proc_id() const { return proc_id_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Next send sequence number (stamped into the message so the
  /// receiver's event can name its exact causal predecessor).
  std::uint32_t alloc_send_seq() { return next_send_seq_++; }

  void record_send(double vt0, double vt1, int dst, long tag,
                   std::uint64_t bytes, std::uint32_t seq) {
    flush_compute(vt0);
    TraceEvent e;
    e.kind = TraceEventKind::kSend;
    e.peer = dst;
    e.tag = tag;
    e.vt0 = vt0;
    e.vt1 = vt1;
    e.wall_ns = wall_now();
    e.bytes = bytes;
    e.seq = seq;
    events_.push_back(e);
    last_vtime_ = vt1;
  }

  void record_recv(double vt0, double vt1, int src, long tag,
                   std::uint64_t bytes, std::uint32_t peer_seq,
                   RecvBound bound) {
    flush_compute(vt0);
    TraceEvent e;
    e.kind = TraceEventKind::kRecv;
    e.bound = bound;
    e.peer = src;
    e.tag = tag;
    e.vt0 = vt0;
    e.vt1 = vt1;
    e.wall_ns = wall_now();
    e.bytes = bytes;
    e.peer_seq = peer_seq;
    events_.push_back(e);
    last_vtime_ = vt1;
  }

  void span_begin(double vtime, const char* name, std::int64_t arg) {
    flush_compute(vtime);
    TraceEvent e;
    e.kind = TraceEventKind::kSpanBegin;
    e.vt0 = vtime;
    e.vt1 = vtime;
    e.wall_ns = wall_now();
    e.name = name;
    e.arg = arg;
    events_.push_back(e);
  }

  void span_end(double vtime) {
    flush_compute(vtime);
    TraceEvent e;
    e.kind = TraceEventKind::kSpanEnd;
    e.vt0 = vtime;
    e.vt1 = vtime;
    e.wall_ns = wall_now();
    events_.push_back(e);
  }

  /// Flushes the final compute slice up to the processor's final
  /// virtual time.  Called once per run, after the body returns, so
  /// the per-proc timeline covers [0, final vtime] completely (the
  /// critical-path walk relies on that coverage).
  void finalize(double vtime) { flush_compute(vtime); }

 private:
  /// Emits one compute slice covering the virtual time charged since
  /// the last recorded point (full mode only: in spans mode the gaps
  /// are implied by consecutive span timestamps).
  void flush_compute(double vtime) {
    if (!full_ || vtime <= last_vtime_) return;
    TraceEvent e;
    e.kind = TraceEventKind::kCompute;
    e.vt0 = last_vtime_;
    e.vt1 = vtime;
    e.wall_ns = wall_now();
    events_.push_back(e);
    last_vtime_ = vtime;
  }

  std::int64_t wall_now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_{};
  double last_vtime_ = 0.0;
  std::uint32_t next_send_seq_ = 0;
  int proc_id_ = -1;
  bool full_ = false;
};

/// A completed run's trace: one ProcTrace lane per virtual processor.
/// Owned by RunResult (shared_ptr) so callers can hand it to the
/// exporters (parix/metrics.h) after the run.
struct Trace {
  TraceMode mode = TraceMode::kOff;
  int nprocs = 0;
  std::chrono::steady_clock::time_point wall_epoch{};
  std::vector<ProcTrace> procs;
};

}  // namespace skil::parix
