#include "parix/machine.h"

#include <cmath>
#include <cstdlib>

#include "parix/executor.h"
#include "support/error.h"

namespace skil::parix {

MeshShape near_square_mesh(int nprocs) {
  SKIL_REQUIRE(nprocs >= 1, "machine needs at least one processor");
  int best_rows = 1;
  for (int r = 1; r * r <= nprocs; ++r)
    if (nprocs % r == 0) best_rows = r;
  return MeshShape{best_rows, nprocs / best_rows};
}

Machine::Machine(int nprocs, CostModel cost)
    : nprocs_(nprocs), cost_(cost), shape_(near_square_mesh(nprocs)) {
  mailboxes_.reserve(nprocs_);
  for (int p = 0; p < nprocs_; ++p)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

int Machine::hops(int a, int b) const {
  SKIL_ASSERT(a >= 0 && a < nprocs_ && b >= 0 && b < nprocs_,
              "hops: processor id out of range");
  return std::abs(mesh_row(a) - mesh_row(b)) +
         std::abs(mesh_col(a) - mesh_col(b));
}

Message Machine::blocking_get(int p, int src, long tag) {
  if (fiber_wait_) return executor_fiber_get(*mailboxes_[p], src, tag);
  return mailboxes_[p]->get(src, tag);
}

void Machine::poison_all(const std::string& reason) {
  for (auto& box : mailboxes_) box->poison(reason);
}

}  // namespace skil::parix
