// Messages exchanged between virtual processors.
//
// Payloads are moved into a type-erased shared pointer on send and
// checked against the expected type on receive; a mismatch indicates a
// program error (unmatched send/recv pair) and raises RuntimeFault.
// The payload size in "wire bytes" is computed by the payload_bytes
// customisation point below so the cost model can price the transfer.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

namespace skil::parix {

/// Wire-size estimate of a payload, used by the cost model.
/// Trivially copyable values cost their object size; vectors cost the
/// element data plus a small length header.  Other payload types must
/// overload payload_bytes in this namespace.
template <class T>
  requires std::is_trivially_copyable_v<T>
std::size_t payload_bytes(const T&) {
  return sizeof(T);
}

template <class T>
  requires std::is_trivially_copyable_v<T>
std::size_t payload_bytes(const std::vector<T>& v) {
  return v.size() * sizeof(T) + 8;
}

inline std::size_t payload_bytes(const std::string& s) {
  return s.size() + 8;
}

template <class T>
std::size_t payload_bytes(const std::vector<std::vector<T>>& vv) {
  std::size_t total = 8;
  for (const auto& v : vv) total += payload_bytes(v);
  return total;
}

/// A message in flight or queued in a mailbox.
struct Message {
  int src = -1;
  long tag = 0;
  std::shared_ptr<void> payload;       ///< points at a T
  const std::type_info* type = nullptr;
  std::size_t bytes = 0;               ///< modeled wire size
  double arrival_vtime = 0.0;          ///< virtual delivery timestamp
};

/// Builds a message from a payload value (moved in).
template <class T>
Message make_message(int src, long tag, T value, double arrival_vtime) {
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.bytes = payload_bytes(value);
  msg.type = &typeid(T);
  msg.payload = std::make_shared<T>(std::move(value));
  msg.arrival_vtime = arrival_vtime;
  return msg;
}

/// Extracts the payload, moving it out of the (uniquely owned) message.
template <class T>
T take_payload(Message& msg) {
  return std::move(*static_cast<T*>(msg.payload.get()));
}

}  // namespace skil::parix
