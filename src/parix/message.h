// Messages exchanged between virtual processors.
//
// Payloads are moved into a type-erased shared pointer on send and
// checked against the expected type on receive; a mismatch indicates a
// program error (unmatched send/recv pair) and raises RuntimeFault.
// The payload size in "wire bytes" is computed by the payload_bytes
// customisation point below so the cost model can price the transfer.
//
// Large payloads can also travel as *shared buffers*
// (make_shared_message): sender and message reference one immutable
// vector, so posting a send does not copy the data.  The receiver
// copies the buffer out (see take_payload for why it must not move) --
// the modeled wire cost is unchanged either way (the 1996 machine did
// copy into send buffers; only the sender-side host copy disappears).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

namespace skil::parix {

/// Wire-size estimate of a payload, used by the cost model.
/// Trivially copyable values cost their object size; vectors cost the
/// element data plus a small length header.  Other payload types must
/// overload payload_bytes in their own namespace (found by ADL).
template <class T>
  requires std::is_trivially_copyable_v<T>
std::size_t payload_bytes(const T&) {
  return sizeof(T);
}

template <class T>
  requires std::is_trivially_copyable_v<T>
std::size_t payload_bytes(const std::vector<T>& v) {
  return v.size() * sizeof(T) + 8;
}

inline std::size_t payload_bytes(const std::string& s) {
  return s.size() + 8;
}

/// Std-only element types the generic vector overload below supports.
/// They need this explicit list because a requires-clause cannot find
/// that overload recursively: unqualified lookup inside it predates
/// the overload's own declaration, and ADL for std types only reaches
/// namespace std.  User types rely on ADL instead (see below).
template <class T>
inline constexpr bool builtin_wire_element_v = false;
template <>
inline constexpr bool builtin_wire_element_v<std::string> = true;
template <class T>
inline constexpr bool builtin_wire_element_v<std::vector<T>> =
    std::is_trivially_copyable_v<T> || builtin_wire_element_v<T>;

/// Vectors of non-trivially-copyable elements (vector<string>,
/// vector<vector<T>>, vector of an ADL-priced user type, ...): a
/// length header plus the wire size of every element, recursively.
template <class T>
  requires(!std::is_trivially_copyable_v<T> &&
           (builtin_wire_element_v<T> ||
            requires(const T& t) {
              { payload_bytes(t) } -> std::convertible_to<std::size_t>;
            }))
std::size_t payload_bytes(const std::vector<T>& v) {
  std::size_t total = 8;
  for (const auto& elem : v) total += payload_bytes(elem);
  return total;
}

/// Satisfied by every type the message layer can price.  make_message
/// checks it so an unsupported payload fails with a readable
/// diagnostic instead of an overload-resolution dump.
template <class T>
concept WirePayload = requires(const T& t) {
  { payload_bytes(t) } -> std::convertible_to<std::size_t>;
};

/// A message in flight or queued in a mailbox.
struct Message {
  int src = -1;
  long tag = 0;
  std::shared_ptr<void> payload;       ///< points at a T
  const std::type_info* type = nullptr;
  std::size_t bytes = 0;               ///< modeled wire size
  double arrival_vtime = 0.0;          ///< virtual delivery timestamp
  bool shared = false;                 ///< payload may have other owners
  /// Sender-side trace sequence number (parix/trace.h): stamped only
  /// when full tracing is on, so the receiver's event can reference
  /// its exact causal predecessor.  Host-side bookkeeping only; the
  /// cost model never reads it.
  std::uint32_t trace_seq = 0;
};

/// Builds a message from a payload value (moved in).
template <class T>
Message make_message(int src, long tag, T value, double arrival_vtime) {
  static_assert(WirePayload<T>,
                "message payload type has no payload_bytes overload; "
                "define std::size_t payload_bytes(const T&) in the "
                "payload's namespace so the cost model can price it");
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.bytes = payload_bytes(value);
  msg.type = &typeid(T);
  msg.payload = std::make_shared<T>(std::move(value));
  msg.arrival_vtime = arrival_vtime;
  return msg;
}

/// Builds a message around an existing immutable buffer without
/// copying it.  The type_info is that of T itself, so the receiver's
/// recv<T> matches messages from make_message<T> interchangeably.
template <class T>
Message make_shared_message(int src, long tag, std::shared_ptr<const T> value,
                            double arrival_vtime) {
  static_assert(WirePayload<T>,
                "message payload type has no payload_bytes overload; "
                "define std::size_t payload_bytes(const T&) in the "
                "payload's namespace so the cost model can price it");
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.bytes = payload_bytes(*value);
  msg.type = &typeid(T);
  // The buffer is never mutated through this pointer (take_payload
  // copies shared buffers), so shedding the const for type-erased
  // storage is safe.
  msg.payload = std::const_pointer_cast<T>(std::move(value));
  msg.arrival_vtime = arrival_vtime;
  msg.shared = true;
  return msg;
}

/// Extracts the payload: moves it out of an exclusively owned message,
/// copies from a shared buffer.  Shared buffers must be copied even
/// when use_count() reads 1: the sender keeps reading the buffer
/// through its own reference after posting the async send, and a
/// relaxed use_count() observation of its drop does not synchronize
/// with those final reads -- moving the vector header here would be a
/// data race (caught by the TSan CI job).  Only the sender-side copy
/// is elided; the modeled wire cost already includes the copy.
template <class T>
T take_payload(Message& msg) {
  T* value = static_cast<T*>(msg.payload.get());
  if (msg.shared) return *value;
  return std::move(*value);
}

}  // namespace skil::parix
