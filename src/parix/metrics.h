// Trace exporters and post-run analysis (parix/trace.h consumers).
//
// Everything here runs after spmd_run returns, on the caller's thread,
// reading the completed per-proc event buffers.  Nothing feeds back
// into virtual time.
//
// Three consumers:
//
//  * write_chrome_trace: Chrome trace_event JSON ("JSON Array Format"
//    wrapped in an object), loadable in Perfetto / chrome://tracing.
//    One lane (tid) per virtual processor, timestamps in *virtual*
//    microseconds, span begin/end pairs as B/E events, compute /
//    send / recv slices as X events and (full mode) one flow arrow
//    per message from the send slice to its matching receive.
//
//  * write_metrics_json: compact machine-readable summary -- per-proc
//    virtual-time breakdown (compute_us / comm_us exactly equal to
//    Proc::Stats, printed with %.17g so they round-trip bit-exact),
//    per-skeleton span call counts and virtual durations, the message
//    histogram by tag and bytes by (src, dst) link, and (full mode)
//    the critical-path summary.
//
//  * analyze_critical_path: walks message-arrival dependencies
//    backwards from the processor that finished last.  The returned
//    segments tile [0, max vtime] with no gaps, so total_us equals
//    the run's final vtime exactly (tests pin this identity); the
//    per-proc slack vector (max vtime - own final vtime) quantifies
//    load imbalance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "parix/runtime.h"
#include "parix/trace.h"

namespace skil::parix {

/// Aggregate of all invocations of one span label (skeleton or app
/// phase).  Durations are inclusive: nested spans also accrue to their
/// parents, like any hierarchical profile.
struct SpanTotal {
  const char* name = nullptr;
  std::uint64_t count = 0;   ///< begin events across all processors
  double vtime_us = 0.0;     ///< summed virtual duration across all procs
};

/// Pairs span begin/end events per processor and aggregates by label.
/// Raises ContractError if any processor's span events do not nest
/// (an end without a begin, or an unclosed begin) -- the RAII
/// TraceSpan guarantees nesting, so a violation is a recorder bug.
std::vector<SpanTotal> span_summary(const Trace& trace);

/// One hop of the critical path, on some processor's timeline (or on
/// the wire between two processors for kWire).
struct CriticalSegment {
  enum class Kind : std::uint8_t {
    kCompute,  ///< charged computation
    kSend,     ///< sender-side send interval
    kRecv,     ///< receiver-side recv interval (local/channel bound)
    kWire,     ///< message in flight (arrival-bound recv edge)
  };
  Kind kind = Kind::kCompute;
  int proc = -1;   ///< timeline owner; receiver for kWire
  int peer = -1;   ///< kWire: the sending processor
  double vt0 = 0.0;
  double vt1 = 0.0;

  double duration_us() const { return vt1 - vt0; }
};

/// Critical path of one traced run (requires TraceMode::kFull).
struct CriticalPath {
  /// Telescoped path length; equals the run's final max vtime.
  double total_us = 0.0;
  double compute_us = 0.0;  ///< path time in charged computation
  double send_us = 0.0;     ///< path time in sender-side intervals
  double recv_us = 0.0;     ///< path time in receiver-side intervals
  double wire_us = 0.0;     ///< path time with the bound message in flight
  /// Segments in forward virtual-time order; consecutive segments abut
  /// exactly (next.vt0 == prev.vt1), tiling [0, total_us].
  std::vector<CriticalSegment> segments;
  /// Per processor: virtual time spent on the critical path.
  std::vector<double> proc_path_us;
  /// Per processor: max final vtime minus own final vtime (imbalance).
  std::vector<double> proc_slack_us;
};

/// Walks arrival dependencies backwards from the last-finishing
/// processor.  Requires trace.mode == TraceMode::kFull (the walk needs
/// compute gap slices and per-message sequence links).
CriticalPath analyze_critical_path(const Trace& trace);

/// Writes the Chrome trace_event JSON for `trace` to `out`.
void write_chrome_trace(const Trace& trace, std::ostream& out);

/// Same, merging the SKIL_PROF=sampled host timeline (RunResult::prof)
/// into the trace as a second process: one lane per carrier thread
/// carrying "vproc N" occupancy slices, plus Perfetto counter tracks
/// ("ph":"C") for ready-queue depth, dispatch/steal activity and the
/// global settle-queue depth.  `prof` may be null (plain export).
/// Host lanes use *wall* microseconds on the shared trace clock --
/// the sampler and the trace recorder share one wall epoch, so host
/// and virtual lanes line up in Perfetto.
void write_chrome_trace(const Trace& trace, const ProfTimeline* prof,
                        std::ostream& out);

/// Writes the compact metrics JSON for a completed run to `out`.
/// `result.trace` may be null (stats-only metrics) or in any mode;
/// span / message / critical-path sections appear when the trace
/// carries them.
void write_metrics_json(const RunResult& result, std::ostream& out);

}  // namespace skil::parix
