#include "parix/prof_report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "parix/prof.h"
#include "support/error.h"

namespace skil::parix {

namespace {

using support::json::Value;

std::uint64_t u64(const Value& obj, std::string_view key) {
  return static_cast<std::uint64_t>(obj.num(key, 0.0));
}

/// Percentage with a zero-denominator guard (reads "0.0" rather than
/// dividing by zero on degenerate inputs like an instant run).
double pct(double part, double whole) {
  return whole > 0.0 ? 100.0 * part / whole : 0.0;
}

void line(std::ostream& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  out << buffer << '\n';
}

}  // namespace

void render_prof_report(const Value& metrics, std::ostream& out, int top_n) {
  const Value* sched = metrics.find("scheduler");
  SKIL_REQUIRE(sched != nullptr,
               "skil-prof: metrics file has no 'scheduler' object -- "
               "re-run the workload with SKIL_PROF=counters or "
               "SKIL_PROF=sampled");
  const Value* prof_name = sched->find("prof");
  const int carriers = static_cast<int>(sched->num("carriers", 0.0));
  const double wall_ns = sched->num("wall_ns", 0.0);
  const std::uint64_t samples = u64(*sched, "samples");

  line(out, "skil-prof -- host scheduler observatory");
  line(out, "mode %s, %d carriers, run wall %.3f ms, %" PRIu64
            " sampler ticks",
       prof_name != nullptr ? prof_name->string.c_str() : "?", carriers,
       wall_ns * 1e-6, samples);
  out << '\n';

  // Per-carrier table, plus a summed totals row.
  line(out, "carrier   util%%   settle%%      fibers   resumed"
            "   steals ok/att    enq   parks/unparks");
  std::uint64_t t_run = 0, t_resumed = 0, t_ok = 0, t_att = 0, t_enq = 0;
  std::uint64_t t_parks = 0, t_unparks = 0;
  double t_run_ns = 0.0, t_settle_ns = 0.0;
  const Value* lanes = sched->find("per_carrier");
  if (lanes != nullptr && lanes->is_array()) {
    for (const Value& lane : lanes->array) {
      const std::uint64_t run = u64(lane, "fibers_run");
      const std::uint64_t resumed = u64(lane, "fibers_resumed");
      const std::uint64_t ok = u64(lane, "steal_successes");
      const std::uint64_t att = u64(lane, "steal_attempts");
      const std::uint64_t enq = u64(lane, "settle_enqueues");
      const std::uint64_t parks = u64(lane, "parks");
      const std::uint64_t unparks = u64(lane, "unparks");
      const double run_ns = lane.num("run_ns", 0.0);
      const double settle_ns = lane.num("settle_ns", 0.0);
      line(out, "%7d %7.1f %8.1f %11" PRIu64 " %9" PRIu64 " %10" PRIu64
                "/%-5" PRIu64 " %6" PRIu64 " %9" PRIu64 "/%-7" PRIu64,
           static_cast<int>(lane.num("carrier", 0.0)), pct(run_ns, wall_ns),
           pct(settle_ns, wall_ns), run, resumed, ok, att, enq, parks,
           unparks);
      t_run += run;
      t_resumed += resumed;
      t_ok += ok;
      t_att += att;
      t_enq += enq;
      t_parks += parks;
      t_unparks += unparks;
      t_run_ns += run_ns;
      t_settle_ns += settle_ns;
    }
    const double lanes_n = static_cast<double>(lanes->array.size());
    line(out, "%7s %7.1f %8.1f %11" PRIu64 " %9" PRIu64 " %10" PRIu64
              "/%-5" PRIu64 " %6" PRIu64 " %9" PRIu64 "/%-7" PRIu64,
         "total", pct(t_run_ns, wall_ns * lanes_n),
         pct(t_settle_ns, wall_ns * lanes_n), t_run, t_resumed, t_ok, t_att,
         t_enq, t_parks, t_unparks);
  }
  out << '\n';

  line(out, "steal success rate     %5.1f%%  (%" PRIu64 " of %" PRIu64
            " attempts)",
       pct(static_cast<double>(t_ok), static_cast<double>(t_att)), t_ok,
       t_att);

  const std::uint64_t memo_hits = u64(*sched, "memo_hits");
  const std::uint64_t memo_misses = u64(*sched, "memo_misses");
  if (const Value* settlement = metrics.find("settlement")) {
    line(out, "settlement coverage    %6.2f%% closed-form  (memo %" PRIu64
              " hits / %" PRIu64 " misses)",
         100.0 * settlement->num("closed_coverage", 0.0), memo_hits,
         memo_misses);
  } else {
    line(out, "settlement memo        %" PRIu64 " hits / %" PRIu64 " misses",
         memo_hits, memo_misses);
  }

  if (const Value* pool = sched->find("pool")) {
    const std::uint64_t acquires = u64(*pool, "acquires");
    const std::uint64_t hits = u64(*pool, "hits");
    line(out, "buffer pool hit rate   %5.1f%%  (%" PRIu64 " of %" PRIu64
              " acquires, %.2f MiB served)",
         pct(static_cast<double>(hits), static_cast<double>(acquires)), hits,
         acquires, pool->num("bytes", 0.0) / (1024.0 * 1024.0));
  }

  line(out, "settle queue high-water %" PRIu64, u64(*sched, "settle_queue_max"));

  const std::uint64_t batches = u64(*sched, "gang_batches");
  const Value* hist = sched->find("gang_lane_hist");
  if (batches > 0 && hist != nullptr && hist->is_array()) {
    out << '\n';
    line(out, "gang batches %" PRIu64 ", lane occupancy:", batches);
    std::string occupancy = " ";
    char cell[64];
    for (std::size_t i = 0; i < hist->array.size(); ++i) {
      std::snprintf(cell, sizeof cell, "  %zu:%" PRIu64, i + 1,
                    static_cast<std::uint64_t>(hist->array[i].number));
      occupancy += cell;
    }
    out << occupancy << '\n';
    // Top-N widest batch shapes, widest lane count first.
    std::vector<std::pair<std::size_t, std::uint64_t>> widest;
    for (std::size_t i = hist->array.size(); i-- > 0;) {
      const auto count = static_cast<std::uint64_t>(hist->array[i].number);
      if (count > 0 && static_cast<int>(widest.size()) < top_n)
        widest.emplace_back(i + 1, count);
    }
    std::string tops;
    for (const auto& [width, count] : widest) {
      if (!tops.empty()) tops += ", ";
      std::snprintf(cell, sizeof cell, "%zu lanes x%" PRIu64, width, count);
      tops += cell;
    }
    line(out, "top-%d widest: %s", top_n, tops.c_str());
  }
}

}  // namespace skil::parix
