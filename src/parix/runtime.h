// SPMD launcher: runs one program body on every virtual processor.
//
// The body executes real computation and real message exchange on the
// host; timing comes from the deterministic virtual clocks (see
// cost_model.h).  Two host execution engines are available:
//
//  * kPooled (default): a persistent worker pool (capped at the host's
//    hardware concurrency) multiplexes the virtual processors as
//    run-to-completion fibers that park on mailbox waits -- no thread
//    spawn/join per run, no kernel wakeups per message
//    (parix/executor.h).
//  * kThreads (legacy): one OS thread per virtual processor, kept as a
//    differential-testing oracle for the pooled engine.
//
// Virtual time is schedule-independent -- it derives from charged
// operation counts and exact (src, tag)-matched message timestamps --
// so both engines produce bit-identical results
// (tests/test_parix_engines.cpp enforces this).  If any processor's
// body throws, all mailboxes are poisoned so blocked peers terminate,
// and the first exception is rethrown to the caller.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

#include "parix/cost_model.h"
#include "parix/proc.h"
#include "parix/prof.h"
#include "parix/trace.h"

namespace skil::parix {

/// How spmd_run executes the virtual processors on the host.
enum class ExecutionEngine {
  kThreads,  ///< legacy: one OS thread per virtual processor
  kPooled,   ///< persistent worker pool, processors as parked fibers
};

/// Process-wide default engine: kPooled, overridable with the
/// SKIL_ENGINE environment variable ("threads" / "pooled") or
/// set_default_execution_engine.  Sanitizer builds default to
/// kThreads because fiber context switches confuse thread/address
/// sanitizers unless specially annotated.  Unknown SKIL_ENGINE values
/// fail loudly (ContractError) instead of silently running the
/// default configuration.
ExecutionEngine default_execution_engine();
void set_default_execution_engine(ExecutionEngine engine);

/// Strict engine-name parser shared by the environment reader and the
/// unit tests: raises ContractError listing the accepted values on
/// anything but "threads" / "pooled".
ExecutionEngine parse_execution_engine(std::string_view name);

/// Configuration of one SPMD run.
struct RunConfig {
  int nprocs = 4;
  CostModel cost = CostModel::t800();
  ExecutionEngine engine = default_execution_engine();
  /// Event tracing (parix/trace.h).  kOff allocates nothing and leaves
  /// a single untaken branch per communication/span site, so virtual
  /// times are bit-identical across all modes.
  TraceMode trace = default_trace_mode();
  /// Ledger settlement strategy (charge_tape.h, SKIL_SETTLE).  Every
  /// mode retires the identical dependent add chain, so virtual times
  /// are bit-identical across modes.
  SettleMode settle = default_settle_mode();
  /// Skeleton-composition fusion (charge_tape.h, SKIL_FUSE).  Unlike
  /// the knobs above this one legitimately moves virtual time: kOn
  /// runs recognised compositions as one fused pass (same array
  /// results, fewer charges and collective rounds -> lower vtimes).
  FuseMode fuse = default_fuse_mode();
  /// Host-timeline profiling (parix/prof.h, SKIL_PROF).  kOff costs
  /// one untaken branch per scheduler site; every mode reads host
  /// clocks/counters only and never feeds virtual time, so vtimes are
  /// bit-identical across modes.
  ProfMode prof = default_prof_mode();
  /// Collective-algorithm family (parix/coll.h, SKIL_COLL).  Like
  /// fusion this knob legitimately moves virtual time: array results
  /// stay bit-identical across modes, but the non-tree algorithms
  /// change the communication schedule (fewer/cheaper rounds), so
  /// each mode has its own pinned vtime goldens.
  CollMode coll = default_coll_mode();
};

/// Timing and accounting of a completed run.
struct RunResult {
  /// Modeled program runtime: the maximum final virtual time (us).
  double vtime_us = 0.0;
  /// Final virtual time of every processor.
  std::vector<double> proc_vtimes;
  /// Operation/message statistics per processor and aggregated.
  std::vector<Stats> proc_stats;
  Stats total;
  /// Host wall-clock seconds (informational only; the host is not the
  /// modeled machine).
  double wall_seconds = 0.0;
  /// Event trace (null unless RunConfig::trace != kOff).  Hand it to
  /// the exporters in parix/metrics.h.
  std::shared_ptr<const Trace> trace;
  /// Settlement-counter delta over this run (charge_tape.h).  The
  /// underlying counters are process-wide, so concurrent runs in one
  /// process see each other's activity; single-run processes (tests,
  /// the forked bench cells) read them as exact per-run numbers.
  SettleCounters settle;
  /// Gang-counter delta over this run, same caveat.
  GangCounters gang;
  /// Fusion-counter delta over this run, same caveat.  All zero under
  /// FuseMode::kOff (the off path never consults the fused variants).
  FusionCounters fusion;
  /// Collective counters summed over all processors (parix/coll.h):
  /// which algorithm every collective call resolved to, plus bytes,
  /// hop distances and rounds per op.  Per-proc, not process-wide, so
  /// these are exact even with concurrent runs in one process.
  CollectiveCounters coll;
  /// Host scheduler report (parix/prof.h).  mode == kOff when the run
  /// was unprofiled (then everything else in it is zero); carriers ==
  /// 0 under the threads engine, where pool/memo totals still apply.
  SchedulerReport scheduler;
  /// Sampled host timeline (null unless RunConfig::prof == kSampled
  /// on the pooled engine).  Hand it to write_chrome_trace alongside
  /// the virtual trace for a merged host+virtual view.
  std::shared_ptr<const ProfTimeline> prof;

  double vtime_seconds() const { return vtime_us * 1e-6; }
};

namespace detail {

/// Non-owning type-erased reference to the SPMD body: one indirect
/// call per processor instead of a std::function dispatch per call
/// level, and no copy of the body's captures.
struct BodyRef {
  void* obj = nullptr;
  void (*invoke)(void*, Proc&) = nullptr;

  void operator()(Proc& proc) const { invoke(obj, proc); }
};

}  // namespace detail

/// Runs `body` on `config.nprocs` virtual processors and returns the
/// accounting.  Rethrows the first exception raised by any processor.
/// `body` must outlive the call (it does: the call is synchronous).
RunResult spmd_run_ref(const RunConfig& config, const detail::BodyRef& body);

/// Type-erased entry point, kept as ABI surface for existing callers.
inline RunResult spmd_run(const RunConfig& config,
                          const std::function<void(Proc&)>& body) {
  detail::BodyRef ref;
  ref.obj = const_cast<void*>(static_cast<const void*>(&body));
  ref.invoke = [](void* obj, Proc& proc) {
    (*static_cast<const std::function<void(Proc&)>*>(obj))(proc);
  };
  return spmd_run_ref(config, ref);
}

/// Direct entry point for lambdas and other callables: invokes the
/// body through one flat function pointer without materialising a
/// std::function.
template <class Body>
  requires std::is_invocable_v<Body&, Proc&>
RunResult spmd_run(const RunConfig& config, Body&& body) {
  using Obj = std::remove_reference_t<Body>;
  detail::BodyRef ref;
  ref.obj = const_cast<void*>(
      static_cast<const void*>(std::addressof(body)));
  ref.invoke = [](void* obj, Proc& proc) {
    (*static_cast<Obj*>(obj))(proc);
  };
  return spmd_run_ref(config, ref);
}

}  // namespace skil::parix
