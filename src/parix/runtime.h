// SPMD launcher: runs one program body on every virtual processor.
//
// The body executes on real host threads (one per virtual processor),
// performing real computation and real message exchange; timing comes
// from the deterministic virtual clocks (see cost_model.h).  If any
// processor's body throws, all mailboxes are poisoned so blocked peers
// terminate, and the first exception is rethrown to the caller.
#pragma once

#include <functional>
#include <vector>

#include "parix/cost_model.h"
#include "parix/proc.h"

namespace skil::parix {

/// Configuration of one SPMD run.
struct RunConfig {
  int nprocs = 4;
  CostModel cost = CostModel::t800();
};

/// Timing and accounting of a completed run.
struct RunResult {
  /// Modeled program runtime: the maximum final virtual time (us).
  double vtime_us = 0.0;
  /// Final virtual time of every processor.
  std::vector<double> proc_vtimes;
  /// Operation/message statistics per processor and aggregated.
  std::vector<Stats> proc_stats;
  Stats total;
  /// Host wall-clock seconds (informational only; the host is not the
  /// modeled machine).
  double wall_seconds = 0.0;

  double vtime_seconds() const { return vtime_us * 1e-6; }
};

/// Runs `body` on `config.nprocs` virtual processors and returns the
/// accounting.  Rethrows the first exception raised by any processor.
RunResult spmd_run(const RunConfig& config,
                   const std::function<void(Proc&)>& body);

}  // namespace skil::parix
