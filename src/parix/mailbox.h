// Per-processor mailbox with (source, tag) matched receive.
//
// Messages are bucketed by their (src, tag) key, so matching a receive
// is one hash lookup instead of a linear scan of everything queued,
// and FIFO order per (src, tag) pair is the bucket's queue order.
//
// Receivers that find their bucket empty register a Waiter carrying
// the key they wait for; put() notifies only the waiter whose key
// matches the arriving message.  This kills the thundering-herd
// wakeups the old single condition_variable caused during tree folds
// and broadcasts on large processor counts.  Two waiter flavours plug
// into the same list: the blocking get() below parks on a per-call
// condition_variable (the `threads` engine), and the pooled engine's
// fibers park on the executor's scheduler (see parix/executor.h).
//
// Follows the C++ Core Guidelines concurrency rules: the mutex lives
// next to the data it guards, waits always use a predicate, and locks
// are scoped (CP.42, CP.44, CP.50).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "parix/message.h"

namespace skil::parix {

class Mailbox {
 public:
  /// A parked receiver waiting for one (src, tag) key.  notify() is
  /// called with the mailbox lock held and must not block; one-shot
  /// waiters are deregistered by the notifying side, persistent ones
  /// deregister themselves (the condition-variable path below).
  struct Waiter {
    int src = -1;
    long tag = 0;
    bool one_shot = false;
    virtual void notify() = 0;

   protected:
    ~Waiter() = default;
  };

  /// Enqueues a message (called from the sender's thread) and wakes
  /// the matching waiter, if any.
  void put(Message msg);

  /// Blocks until a message with matching (src, tag) is available and
  /// removes it.  FIFO order is preserved per (src, tag) pair because a
  /// sender's messages are enqueued in program order.
  ///
  /// Throws RuntimeFault if the mailbox is poisoned (another processor
  /// failed) or if `timeout` elapses (deadlock guard for the test
  /// suite).
  Message get(int src, long tag,
              std::chrono::milliseconds timeout = std::chrono::minutes(4));

  /// Non-blocking variant for schedulers that park the caller
  /// themselves: returns the matching message, or registers `waiter`
  /// and returns nullopt.  The caller must suspend until notified and
  /// then retry.  Throws RuntimeFault if the mailbox is poisoned.
  std::optional<Message> take_or_wait(int src, long tag, Waiter& waiter);

  /// Wakes all blocked receivers with an error; used when any SPMD
  /// processor terminates exceptionally so its peers do not hang
  /// forever.
  void poison(const std::string& reason);

  /// Number of queued messages (for tests/diagnostics).
  std::size_t pending() const;

 private:
  struct Key {
    int src;
    long tag;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style mix of the two fields; tags are sparse (the
      // collective tag space starts at 2^40) so mixing matters.
      std::uint64_t x = static_cast<std::uint64_t>(k.tag) * 0x9E3779B97F4A7C15u;
      x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.src)) +
           (x >> 29);
      return static_cast<std::size_t>(x ^ (x >> 32));
    }
  };

  /// Pops the front of the (src, tag) bucket, erasing emptied buckets
  /// so monotonically growing tag spaces do not accumulate tombstones.
  /// Requires the lock; returns nullopt when nothing matches.
  std::optional<Message> pop_match(int src, long tag);

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::deque<Message>, KeyHash> buckets_;
  std::vector<Waiter*> waiters_;
  std::size_t pending_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace skil::parix
