// Per-processor mailbox with (source, tag) matched receive.
//
// Follows the C++ Core Guidelines concurrency rules: the mutex lives
// next to the data it guards, waits always use a predicate, and locks
// are scoped (CP.42, CP.44, CP.50).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "parix/message.h"

namespace skil::parix {

class Mailbox {
 public:
  /// Enqueues a message (called from the sender's thread).
  void put(Message msg);

  /// Blocks until a message with matching (src, tag) is available and
  /// removes it.  FIFO order is preserved per (src, tag) pair because a
  /// sender's messages are enqueued in program order.
  ///
  /// Throws RuntimeFault if the mailbox is poisoned (another processor
  /// failed) or if `timeout` elapses (deadlock guard for the test
  /// suite).
  Message get(int src, long tag,
              std::chrono::milliseconds timeout = std::chrono::minutes(4));

  /// Wakes all blocked receivers with an error; used when any SPMD
  /// thread terminates exceptionally so its peers do not hang forever.
  void poison(const std::string& reason);

  /// Number of queued messages (for tests/diagnostics).
  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace skil::parix
