#include "parix/coll.h"

#include <cstdlib>

#include "support/env.h"

namespace skil::parix {

namespace {

CollMode initial_default_coll_mode() {
  if (const char* env = std::getenv("SKIL_COLL"))
    return parse_coll_mode(env);
  return CollMode::kAuto;
}

CollMode& default_coll_mode_slot() {
  static CollMode mode = initial_default_coll_mode();
  return mode;
}

}  // namespace

CollMode parse_coll_mode(std::string_view name) {
  static constexpr std::string_view kNames[] = {"tree", "ring", "rd", "auto"};
  static_assert(static_cast<int>(CollMode::kTree) == 0 &&
                static_cast<int>(CollMode::kRing) == 1 &&
                static_cast<int>(CollMode::kRd) == 2 &&
                static_cast<int>(CollMode::kAuto) == 3);
  return support::parse_knob<CollMode>("SKIL_COLL", "collective mode", name,
                                       kNames);
}

std::string_view coll_mode_name(CollMode mode) {
  switch (mode) {
    case CollMode::kTree: return "tree";
    case CollMode::kRing: return "ring";
    case CollMode::kRd: return "rd";
    case CollMode::kAuto: return "auto";
  }
  return "?";
}

CollMode default_coll_mode() { return default_coll_mode_slot(); }

void set_default_coll_mode(CollMode mode) { default_coll_mode_slot() = mode; }

std::string_view coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::kBroadcast: return "broadcast";
    case CollOp::kReduce: return "reduce";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAllgather: return "allgather";
  }
  return "?";
}

std::string_view coll_algo_name(CollAlgo algo) {
  switch (algo) {
    case CollAlgo::kTree: return "tree";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kRecDouble: return "rd";
    case CollAlgo::kRabenseifner: return "rabenseifner";
  }
  return "?";
}

}  // namespace skil::parix
