// The simulated hardware: a 2-D mesh of processors with one mailbox
// each, mirroring the Parsytec MC's transputer grid.
//
// The mesh shape is chosen as close to square as possible (the real
// machine was 8x8).  Hop counts between processors use the Manhattan
// metric; virtual topologies (parix/topology.h) are embedded into this
// mesh and inherit their link costs from it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "parix/cost_model.h"
#include "parix/mailbox.h"

namespace skil::parix {

/// Hardware mesh dimensions.
struct MeshShape {
  int rows = 0;
  int cols = 0;
};

/// Picks the most nearly square rows x cols factorisation of p
/// (rows <= cols), e.g. 64 -> 8x8, 32 -> 4x8, 6 -> 2x3, 7 -> 1x7.
MeshShape near_square_mesh(int nprocs);

class Machine {
 public:
  Machine(int nprocs, CostModel cost);

  int nprocs() const { return nprocs_; }
  const CostModel& cost() const { return cost_; }
  MeshShape shape() const { return shape_; }

  /// Mesh row/column of processor `p`.
  int mesh_row(int p) const { return p / shape_.cols; }
  int mesh_col(int p) const { return p % shape_.cols; }

  /// Manhattan hop distance between two processors.
  int hops(int a, int b) const;

  Mailbox& mailbox(int p) { return *mailboxes_[p]; }

  /// Engine-aware blocking receive for processor `p`: the threads
  /// engine blocks on the mailbox's condition variable, the pooled
  /// engine parks the calling fiber on the executor instead.
  Message blocking_get(int p, int src, long tag);

  /// Switches blocking_get to fiber parking (set by the pooled engine
  /// before the run starts; single-threaded at that point).
  void set_fiber_wait(bool on) { fiber_wait_ = on; }

  /// Aborts all pending and future receives; called when an SPMD thread
  /// terminates with an exception.
  void poison_all(const std::string& reason);

 private:
  int nprocs_;
  CostModel cost_;
  MeshShape shape_;
  bool fiber_wait_ = false;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace skil::parix
