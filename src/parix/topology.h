// Virtual (software) topologies embedded in the hardware mesh.
//
// The paper's array_create takes a `distr` argument selecting the
// virtual topology an array is mapped onto: DISTR_DEFAULT (the raw
// hardware topology), DISTR_RING, or DISTR_TORUS2D.  Virtual topologies
// matter because skeleton communication follows virtual neighbour
// links, and a good embedding keeps those links short on the physical
// mesh.  Table 1's footnote -- Skil beating an older C version that
// used no virtual topologies -- is reproduced exactly by this
// difference (see bench_ablation_topology).
//
// Embeddings used:
//  * kDefault:   virtual rank == hardware rank (row-major); ring-like
//                neighbour steps can wrap across a whole mesh row.
//  * kRing:      boustrophedon (snake) walk over the mesh; every ring
//                step is one hop except the single wrap-around edge.
//  * kTorus2D:   folded embedding in both grid dimensions, giving
//                dilation <= 2 for every torus link including the
//                wrap-around ones.
//  * kHypercube: binary-reflected Gray-code walk (requires a power of
//                two); neighbours along the lowest dimension are
//                adjacent in the snake order.
#pragma once

#include <vector>

#include "parix/machine.h"

namespace skil::parix {

/// Virtual topology kinds (paper: DISTR_DEFAULT / DISTR_RING /
/// DISTR_TORUS2D; the hypercube and tree are natural extensions).
enum class Distr {
  kDefault,
  kRing,
  kTorus2D,
  kHypercube,
};

const char* distr_name(Distr d);

class Topology {
 public:
  Topology(const Machine& machine, Distr kind);

  Distr kind() const { return kind_; }
  int nprocs() const { return nprocs_; }

  /// Virtual rank of a hardware processor, and its inverse.
  int vrank_of(int hw) const { return vrank_of_[hw]; }
  int hw_of(int vrank) const { return hw_of_[vrank]; }

  // --- ring view (defined for every kind; uses virtual rank order) ---
  int ring_next(int hw) const;
  int ring_prev(int hw) const;

  // --- 2-D grid view (valid for kTorus2D and kDefault) ---
  int grid_rows() const { return grid_rows_; }
  int grid_cols() const { return grid_cols_; }
  bool is_square_grid() const { return grid_rows_ == grid_cols_; }

  /// Virtual grid coordinates of a hardware processor.
  int grid_row(int hw) const { return vrank_of(hw) / grid_cols_; }
  int grid_col(int hw) const { return vrank_of(hw) % grid_cols_; }

  /// Hardware processor at virtual grid position (wrapping modulo the
  /// grid dimensions, i.e. torus semantics).
  int at_grid(int row, int col) const;

  /// Torus neighbour of `hw` displaced by (drow, dcol) with wrap.
  int torus_neighbor(int hw, int drow, int dcol) const;

  // --- hypercube view (valid for kHypercube) ---
  int cube_dims() const { return cube_dims_; }
  int cube_neighbor(int hw, int dim) const;

  /// Physical hop distance between two hardware processors (delegates
  /// to the machine's mesh metric); exposed for tests measuring the
  /// dilation of each embedding.
  int hops(int hw_a, int hw_b) const { return machine_->hops(hw_a, hw_b); }

 private:
  const Machine* machine_;
  Distr kind_;
  int nprocs_;
  int grid_rows_ = 1;
  int grid_cols_ = 1;
  int cube_dims_ = 0;
  std::vector<int> vrank_of_;
  std::vector<int> hw_of_;
};

}  // namespace skil::parix
