// Virtual (software) topologies embedded in the hardware mesh.
//
// The paper's array_create takes a `distr` argument selecting the
// virtual topology an array is mapped onto: DISTR_DEFAULT (the raw
// hardware topology), DISTR_RING, or DISTR_TORUS2D.  Virtual topologies
// matter because skeleton communication follows virtual neighbour
// links, and a good embedding keeps those links short on the physical
// mesh.  Table 1's footnote -- Skil beating an older C version that
// used no virtual topologies -- is reproduced exactly by this
// difference (see bench_ablation_topology).
//
// Embeddings used:
//  * kDefault:   virtual rank == hardware rank (row-major); ring-like
//                neighbour steps can wrap across a whole mesh row.
//  * kRing:      boustrophedon (snake) walk over the mesh; every ring
//                step is one hop except the single wrap-around edge.
//  * kTorus2D:   folded embedding in both grid dimensions, giving
//                dilation <= 2 for every torus link including the
//                wrap-around ones.
//  * kHypercube: binary-reflected Gray-code walk (requires a power of
//                two); neighbours along the lowest dimension are
//                adjacent in the snake order.
#pragma once

#include <vector>

#include "parix/machine.h"

namespace skil::parix {

class Proc;

/// Virtual topology kinds (paper: DISTR_DEFAULT / DISTR_RING /
/// DISTR_TORUS2D; the hypercube and tree are natural extensions).
enum class Distr {
  kDefault,
  kRing,
  kTorus2D,
  kHypercube,
};

const char* distr_name(Distr d);

class Topology {
 public:
  Topology(const Machine& machine, Distr kind);

  Distr kind() const { return kind_; }
  int nprocs() const { return nprocs_; }

  /// Virtual rank of a hardware processor, and its inverse.
  int vrank_of(int hw) const { return vrank_of_[hw]; }
  int hw_of(int vrank) const { return hw_of_[vrank]; }

  // --- ring view (defined for every kind; uses virtual rank order) ---
  int ring_next(int hw) const;
  int ring_prev(int hw) const;

  // --- 2-D grid view (valid for kTorus2D and kDefault) ---
  int grid_rows() const { return grid_rows_; }
  int grid_cols() const { return grid_cols_; }
  bool is_square_grid() const { return grid_rows_ == grid_cols_; }

  /// Virtual grid coordinates of a hardware processor.
  int grid_row(int hw) const { return vrank_of(hw) / grid_cols_; }
  int grid_col(int hw) const { return vrank_of(hw) % grid_cols_; }

  /// Hardware processor at virtual grid position (wrapping modulo the
  /// grid dimensions, i.e. torus semantics).
  int at_grid(int row, int col) const;

  /// Torus neighbour of `hw` displaced by (drow, dcol) with wrap.
  int torus_neighbor(int hw, int drow, int dcol) const;

  // --- hypercube view (valid for kHypercube) ---
  int cube_dims() const { return cube_dims_; }
  int cube_neighbor(int hw, int dim) const;

  // --- communicator splitting (DESIGN.md section 15) -----------------
  //
  // A split yields the row (or column) sub-group of the virtual grid
  // containing hardware processor `hw`, as a first-class Topology:
  // virtual ranks renumber 0..k-1 along the row/column, the ring and
  // grid views work on the subgroup, and collectives on it draw tags
  // from the subgroup's own tag stream (fresh_tag below), so row and
  // column collectives running concurrently can never match each
  // other's messages.  Splitting a subgroup again is not supported.

  /// Sub-communicator of the grid row containing `hw` (vrank = grid
  /// column).  Communicator ids: row r gets 1 + r.
  Topology split_rows(int hw) const;

  /// Sub-communicator of the grid column containing `hw` (vrank = grid
  /// row).  Communicator ids: column c gets 1 + grid_rows() + c.
  Topology split_cols(int hw) const;

  /// Communicator id: 0 for a full-machine topology, unique per
  /// row/column subgroup otherwise.  Selects the tag stream.
  int comm_id() const { return comm_id_; }
  bool is_subgroup() const { return comm_id_ != 0; }

  /// True when `hw` is a member of this (sub-)communicator.
  bool contains(int hw) const { return vrank_of_[hw] >= 0; }

  /// Fresh collective tag on this communicator's tag stream (defined
  /// in topology.cpp to avoid a circular include with proc.h).  All
  /// collectives below draw their tags through this.
  long fresh_tag(Proc& proc) const;

  /// Physical hop distance between two hardware processors (delegates
  /// to the machine's mesh metric); exposed for tests measuring the
  /// dilation of each embedding.
  int hops(int hw_a, int hw_b) const { return machine_->hops(hw_a, hw_b); }

 private:
  Topology() = default;  // subgroup builder (split_rows/split_cols)

  const Machine* machine_ = nullptr;
  Distr kind_ = Distr::kDefault;
  int nprocs_ = 0;
  int grid_rows_ = 1;
  int grid_cols_ = 1;
  int cube_dims_ = 0;
  int comm_id_ = 0;
  std::vector<int> vrank_of_;  ///< -1 for non-members of a subgroup
  std::vector<int> hw_of_;
};

}  // namespace skil::parix
