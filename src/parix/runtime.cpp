#include "parix/runtime.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "parix/machine.h"
#include "support/error.h"

namespace skil::parix {

RunResult spmd_run(const RunConfig& config,
                   const std::function<void(Proc&)>& body) {
  SKIL_REQUIRE(config.nprocs >= 1, "spmd_run: need at least one processor");
  Machine machine(config.nprocs, config.cost);

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(config.nprocs);
  for (int p = 0; p < config.nprocs; ++p)
    procs.push_back(std::make_unique<Proc>(machine, p));

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(config.nprocs);
    for (int p = 0; p < config.nprocs; ++p) {
      threads.emplace_back([&, p] {
        try {
          body(*procs[p]);
        } catch (...) {
          {
            const std::scoped_lock lock(failure_mutex);
            if (!first_failure) first_failure = std::current_exception();
          }
          machine.poison_all("processor " + std::to_string(p) +
                             " terminated with an error");
        }
      });
    }
  }  // jthreads join here
  const auto wall_end = std::chrono::steady_clock::now();

  if (first_failure) std::rethrow_exception(first_failure);

  RunResult result;
  result.proc_vtimes.reserve(config.nprocs);
  result.proc_stats.reserve(config.nprocs);
  for (const auto& proc : procs) {
    result.proc_vtimes.push_back(proc->vtime());
    result.proc_stats.push_back(proc->stats());
    result.total += proc->stats();
  }
  result.vtime_us =
      *std::max_element(result.proc_vtimes.begin(), result.proc_vtimes.end());
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

}  // namespace skil::parix
