#include "parix/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#ifdef __GLIBC__
#include <malloc.h>
#endif
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "parix/executor.h"
#include "parix/machine.h"
#include "support/env.h"
#include "support/error.h"

// Fiber context switches are invisible to thread/address sanitizers
// unless annotated, so sanitizer builds default to the threads engine
// (SKIL_ENGINE=pooled still forces the pool for targeted debugging).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SKIL_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SKIL_SANITIZED_BUILD 1
#endif
#endif

namespace skil::parix {

namespace {

ExecutionEngine initial_default_engine() {
  if (const char* env = std::getenv("SKIL_ENGINE"))
    return parse_execution_engine(env);
#ifdef SKIL_SANITIZED_BUILD
  return ExecutionEngine::kThreads;
#else
  return ExecutionEngine::kPooled;
#endif
}

ExecutionEngine& default_engine_slot() {
  static ExecutionEngine engine = initial_default_engine();
  return engine;
}

}  // namespace

ExecutionEngine parse_execution_engine(std::string_view name) {
  static constexpr std::string_view kNames[] = {"threads", "pooled"};
  static_assert(static_cast<int>(ExecutionEngine::kThreads) == 0 &&
                static_cast<int>(ExecutionEngine::kPooled) == 1);
  return support::parse_knob<ExecutionEngine>("SKIL_ENGINE",
                                              "execution engine", name, kNames);
}

namespace {

/// The per-step skeleton allocations (fresh FArray partitions, rotate
/// buffers) are a few MB each -- above glibc's default mmap threshold,
/// so every step would pay page faults on first touch and an munmap on
/// free.  Pinning the threshold keeps those blocks on the free lists,
/// where they recycle instantly.  Host-side only; virtual times do not
/// observe the allocator.
void tune_host_allocator() {
#ifdef __GLIBC__
  static const bool done = [] {
    mallopt(M_MMAP_THRESHOLD, 64 << 20);
    return true;
  }();
  (void)done;
#endif
}

/// Legacy engine: one OS thread per virtual processor.  Kept as the
/// differential-testing oracle for the pooled engine.
std::exception_ptr run_on_threads(Machine& machine,
                                  const std::vector<std::unique_ptr<Proc>>& procs,
                                  const detail::BodyRef& body) {
  std::mutex failure_mutex;
  std::exception_ptr first_failure;
  {
    std::vector<std::jthread> threads;
    threads.reserve(procs.size());
    for (const auto& proc_ptr : procs) {
      Proc* proc = proc_ptr.get();
      threads.emplace_back([&, proc] {
        try {
          body(*proc);
        } catch (...) {
          {
            const std::scoped_lock lock(failure_mutex);
            if (!first_failure) first_failure = std::current_exception();
          }
          machine.poison_all("processor " + std::to_string(proc->id()) +
                             " terminated with an error");
        }
      });
    }
  }  // jthreads join here
  return first_failure;
}

}  // namespace

ExecutionEngine default_execution_engine() { return default_engine_slot(); }

void set_default_execution_engine(ExecutionEngine engine) {
  default_engine_slot() = engine;
}

RunResult spmd_run_ref(const RunConfig& config, const detail::BodyRef& body) {
  SKIL_REQUIRE(config.nprocs >= 1, "spmd_run: need at least one processor");
  tune_host_allocator();
  Machine machine(config.nprocs, config.cost);

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(config.nprocs);
  for (int p = 0; p < config.nprocs; ++p) {
    procs.push_back(std::make_unique<Proc>(machine, p));
    procs.back()->set_settle_mode(config.settle);
    procs.back()->set_fuse_mode(config.fuse);
    procs.back()->set_coll_mode(config.coll);
  }

  ExecutionEngine engine = config.engine;
  // A body that itself calls spmd_run would deadlock the fiber pool
  // (the outer run holds it); nested runs drop to the threads engine.
  if (engine == ExecutionEngine::kPooled && executor_in_fiber())
    engine = ExecutionEngine::kThreads;

  // Trace recorders attach before any processor starts; each Proc's
  // buffer is then touched only by the fiber/thread driving that Proc.
  std::shared_ptr<Trace> trace;
  if (config.trace != TraceMode::kOff) {
    trace = std::make_shared<Trace>();
    trace->mode = config.trace;
    trace->nprocs = config.nprocs;
    trace->wall_epoch = std::chrono::steady_clock::now();
    trace->procs.resize(config.nprocs);
    const bool full = config.trace == TraceMode::kFull;
    for (int p = 0; p < config.nprocs; ++p) {
      trace->procs[p].configure(p, full, trace->wall_epoch);
      procs[p]->set_trace(&trace->procs[p]);
    }
  }

  // Host-timeline profiling (parix/prof.h): size the carrier registry
  // before the run so the scheduler's counter sites never index past
  // it, then activate the sites for the duration of the run (RAII --
  // the failure rethrow below must not leave them hot).  In sampled
  // mode the sampler thread shares the trace's wall epoch when one
  // exists, so host lanes and virtual lanes line up in a merged view.
  const bool prof_on = config.prof != ProfMode::kOff;
  const bool prof_pooled = prof_on && engine == ExecutionEngine::kPooled;
  if (prof_pooled) executor_prof_prepare();
  const ProfActivation prof_active(prof_on);
  if (prof_on) prof_reset_watermarks();
  const RegistrySnapshot prof_before =
      prof_on ? prof_snapshot() : RegistrySnapshot{};
  const PoolCounters pool_before =
      prof_on ? prof_pool_counters() : PoolCounters{};
  std::unique_ptr<ProfSampler> sampler;
  if (config.prof == ProfMode::kSampled && prof_pooled) {
    const auto prof_epoch =
        trace ? trace->wall_epoch : std::chrono::steady_clock::now();
    sampler = std::make_unique<ProfSampler>(prof_epoch, executor_carriers());
  }

  std::exception_ptr first_failure;
  const SettleCounters settle_before = settle_counters();
  const GangCounters gang_before = gang_counters();
  const FusionCounters fusion_before = fusion_counters();
  const auto wall_start = std::chrono::steady_clock::now();
  if (engine == ExecutionEngine::kPooled) {
    machine.set_fiber_wait(true);
    first_failure = executor_run(machine, procs, body);
  } else {
    first_failure = run_on_threads(machine, procs, body);
  }
  const auto wall_end = std::chrono::steady_clock::now();

  if (first_failure) std::rethrow_exception(first_failure);

  if (trace)
    for (int p = 0; p < config.nprocs; ++p)
      trace->procs[p].finalize(procs[p]->vtime());

  RunResult result;
  result.proc_vtimes.reserve(config.nprocs);
  result.proc_stats.reserve(config.nprocs);
  for (const auto& proc : procs) {
    result.proc_vtimes.push_back(proc->vtime());
    result.proc_stats.push_back(proc->stats());
    result.total += proc->stats();
    result.coll += proc->coll_counters();
  }
  result.vtime_us =
      *std::max_element(result.proc_vtimes.begin(), result.proc_vtimes.end());
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.trace = std::move(trace);
  // Counter deltas over the run window (process-wide atomics; see the
  // RunResult field comments for the concurrency caveat).
  {
    const SettleCounters s = settle_counters();
    result.settle.closed_runs = s.closed_runs - settle_before.closed_runs;
    result.settle.closed_adds = s.closed_adds - settle_before.closed_adds;
    result.settle.memo_hits = s.memo_hits - settle_before.memo_hits;
    result.settle.memo_misses = s.memo_misses - settle_before.memo_misses;
    result.settle.memo_adds = s.memo_adds - settle_before.memo_adds;
    result.settle.probe_adds = s.probe_adds - settle_before.probe_adds;
    result.settle.chain_records =
        s.chain_records - settle_before.chain_records;
    result.settle.chain_adds = s.chain_adds - settle_before.chain_adds;
    result.settle.gang_parks = s.gang_parks - settle_before.gang_parks;
    const GangCounters g = gang_counters();
    result.gang.batches = g.batches - gang_before.batches;
    result.gang.lanes = g.lanes - gang_before.lanes;
    result.gang.gang_adds = g.gang_adds - gang_before.gang_adds;
    result.gang.inline_adds = g.inline_adds - gang_before.inline_adds;
    result.gang.uniform_rounds = g.uniform_rounds - gang_before.uniform_rounds;
    result.gang.divergent_rounds =
        g.divergent_rounds - gang_before.divergent_rounds;
    result.gang.padded_slots = g.padded_slots - gang_before.padded_slots;
    const FusionCounters f = fusion_counters();
    result.fusion.seen = f.seen - fusion_before.seen;
    result.fusion.fused = f.fused - fusion_before.fused;
    result.fusion.rejected_shape =
        f.rejected_shape - fusion_before.rejected_shape;
    result.fusion.rejected_order =
        f.rejected_order - fusion_before.rejected_order;
    result.fusion.rejected_path =
        f.rejected_path - fusion_before.rejected_path;
    result.fusion.barriers_eliminated =
        f.barriers_eliminated - fusion_before.barriers_eliminated;
    result.fusion.tapes_eliminated =
        f.tapes_eliminated - fusion_before.tapes_eliminated;
  }
  if (prof_on) {
    if (sampler) result.prof = sampler->stop();
    SchedulerReport& sched = result.scheduler;
    sched.mode = config.prof;
    sched.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                             wall_start)
            .count());
    // Per-carrier deltas, trimmed to the carriers that actually ran
    // (the registry never shrinks, so stale wider lanes are all-zero).
    const int carriers = prof_pooled ? executor_carriers() : 0;
    sched.carriers = carriers;
    const RegistrySnapshot after = prof_snapshot();
    for (int i = 0;
         i < carriers && i < static_cast<int>(after.lanes.size()); ++i) {
      const RegistrySnapshot::Lane before =
          i < static_cast<int>(prof_before.lanes.size())
              ? prof_before.lanes[static_cast<std::size_t>(i)]
              : RegistrySnapshot::Lane{};
      const RegistrySnapshot::Lane& now =
          after.lanes[static_cast<std::size_t>(i)];
      CarrierReport lane;
      lane.fibers_run = now.fibers_run - before.fibers_run;
      lane.fibers_resumed = now.fibers_resumed - before.fibers_resumed;
      lane.steal_attempts = now.steal_attempts - before.steal_attempts;
      lane.steal_successes = now.steal_successes - before.steal_successes;
      lane.steal_failed_rounds =
          now.steal_failed_rounds - before.steal_failed_rounds;
      lane.settle_enqueues = now.settle_enqueues - before.settle_enqueues;
      lane.parks = now.parks - before.parks;
      lane.unparks = now.unparks - before.unparks;
      lane.run_ns = now.run_ns - before.run_ns;
      lane.settle_ns = now.settle_ns - before.settle_ns;
      sched.per_carrier.push_back(lane);
    }
    sched.gang_batches = after.gang_batches - prof_before.gang_batches;
    for (int i = 0; i < kProfGangLanes; ++i)
      sched.gang_lane_hist[i] =
          after.gang_lane_hist[i] - prof_before.gang_lane_hist[i];
    // High-water mark, not a counter: reset at run start above.
    sched.settle_queue_max = after.settle_queue_max;
    const PoolCounters pool_after = prof_pool_counters();
    sched.pool.acquires = pool_after.acquires - pool_before.acquires;
    sched.pool.hits = pool_after.hits - pool_before.hits;
    sched.pool.misses = pool_after.misses - pool_before.misses;
    sched.pool.bytes = pool_after.bytes - pool_before.bytes;
    // Tape-memo stats are already exact per-run deltas (SettleCounters
    // above); surfaced here so the scheduler report is self-contained.
    sched.memo_hits = result.settle.memo_hits;
    sched.memo_misses = result.settle.memo_misses;
    sched.samples =
        result.prof ? static_cast<std::uint64_t>(result.prof->samples.size())
                    : 0;
  }
  return result;
}

}  // namespace skil::parix
