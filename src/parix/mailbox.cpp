#include "parix/mailbox.h"

#include <algorithm>

#include "support/error.h"

namespace skil::parix {

namespace {

/// The threads engine's waiter: one condition variable per blocked
/// get() call, signalled only when its own key matches.
struct CvWaiter final : Mailbox::Waiter {
  std::condition_variable cv;
  void notify() override { cv.notify_one(); }
};

}  // namespace

std::optional<Message> Mailbox::pop_match(int src, long tag) {
  const auto it = buckets_.find(Key{src, tag});
  if (it == buckets_.end()) return std::nullopt;
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) buckets_.erase(it);
  --pending_;
  return msg;
}

void Mailbox::put(Message msg) {
  Waiter* to_wake = nullptr;
  {
    const std::scoped_lock lock(mutex_);
    const Key key{msg.src, msg.tag};
    buckets_[key].push_back(std::move(msg));
    ++pending_;
    const auto it = std::find_if(
        waiters_.begin(), waiters_.end(),
        [&](const Waiter* w) { return w->src == key.src && w->tag == key.tag; });
    if (it != waiters_.end()) {
      to_wake = *it;
      if (to_wake->one_shot) waiters_.erase(it);
      // Waking under the lock keeps the waiter alive: a CvWaiter lives
      // on the stack of a get() that cannot resume until we unlock,
      // and a fiber waiter is only retired by the executor after its
      // fiber reruns take_or_wait, which also needs this lock.
      to_wake->notify();
    }
  }
}

Message Mailbox::get(int src, long tag, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  CvWaiter self;
  self.src = src;
  self.tag = tag;
  bool registered = false;
  auto deregister = [&] {
    if (!registered) return;
    const auto it = std::find(waiters_.begin(), waiters_.end(), &self);
    if (it != waiters_.end()) waiters_.erase(it);
    registered = false;
  };
  for (;;) {
    if (poisoned_) {
      deregister();
      throw support::RuntimeFault("receive aborted: " + poison_reason_);
    }
    if (auto msg = pop_match(src, tag)) {
      deregister();
      return std::move(*msg);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      deregister();
      throw support::RuntimeFault(
          "receive timed out (possible deadlock): waiting for src=" +
          std::to_string(src) + " tag=" + std::to_string(tag));
    }
    if (!registered) {
      waiters_.push_back(&self);
      registered = true;
    }
    self.cv.wait_until(lock, deadline);
  }
}

std::optional<Message> Mailbox::take_or_wait(int src, long tag,
                                             Waiter& waiter) {
  const std::scoped_lock lock(mutex_);
  if (poisoned_)
    throw support::RuntimeFault("receive aborted: " + poison_reason_);
  if (auto msg = pop_match(src, tag)) return msg;
  waiter.src = src;
  waiter.tag = tag;
  waiter.one_shot = true;
  waiters_.push_back(&waiter);
  return std::nullopt;
}

void Mailbox::poison(const std::string& reason) {
  std::vector<Waiter*> to_wake;
  {
    const std::scoped_lock lock(mutex_);
    poisoned_ = true;
    poison_reason_ = reason;
    to_wake = waiters_;
    // One-shot (fiber) waiters are consumed by this notification;
    // persistent CvWaiters deregister themselves when they observe
    // the poison flag.
    std::erase_if(waiters_, [](const Waiter* w) { return w->one_shot; });
    for (Waiter* w : to_wake) w->notify();
  }
}

std::size_t Mailbox::pending() const {
  const std::scoped_lock lock(mutex_);
  return pending_;
}

}  // namespace skil::parix
