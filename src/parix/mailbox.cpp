#include "parix/mailbox.h"

#include "support/error.h"

namespace skil::parix {

void Mailbox::put(Message msg) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::get(int src, long tag, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  auto find_match = [&]() -> std::deque<Message>::iterator {
    for (auto it = queue_.begin(); it != queue_.end(); ++it)
      if (it->src == src && it->tag == tag) return it;
    return queue_.end();
  };
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    return poisoned_ || find_match() != queue_.end();
  });
  if (poisoned_)
    throw support::RuntimeFault("receive aborted: " + poison_reason_);
  if (!ok)
    throw support::RuntimeFault(
        "receive timed out (possible deadlock): waiting for src=" +
        std::to_string(src) + " tag=" + std::to_string(tag));
  auto it = find_match();
  Message msg = std::move(*it);
  queue_.erase(it);
  return msg;
}

void Mailbox::poison(const std::string& reason) {
  {
    const std::scoped_lock lock(mutex_);
    poisoned_ = true;
    poison_reason_ = reason;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  const std::scoped_lock lock(mutex_);
  return queue_.size();
}

}  // namespace skil::parix
