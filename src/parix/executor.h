// The pooled SPMD execution engine.
//
// A process-wide scheduler owns a small set of persistent worker
// threads (capped at the host's hardware concurrency) and multiplexes
// the virtual processors of an spmd_run as ucontext fibers: each
// processor is a run-to-completion task that *parks* (swaps back to
// its worker) when a receive finds its mailbox bucket empty and is
// *unparked* by the exact put() that satisfies it (see
// Mailbox::Waiter).  Compared with the legacy one-OS-thread-per-
// processor engine this removes the per-run thread spawn/join and the
// kernel-level sleep/wake per message -- a p=64 run context-switches
// in user space only.
//
// Blocked-forever programs cannot rely on the mailbox receive timeout
// here (a parked fiber consumes no thread), so the scheduler detects
// quiescence -- every live fiber parked, nothing ready, nothing
// running, nothing waiting to settle -- and poisons the machine's
// mailboxes, turning a deadlock into the same RuntimeFault the
// threads engine raises on timeout.
//
// The pool runs N *carrier* threads (SKIL_CARRIERS, default the
// host's hardware concurrency) with one run queue per carrier and
// work stealing between them; a fiber is driven by one carrier at a
// time, which preserves the trace layer's lock-free per-proc buffer
// invariant.  With more than one carrier the pool also gang-settles
// deferred charge ledgers: a fiber whose ledger is big enough parks
// into a settle queue, and a carrier folds up to kGangWidth
// processors' pending replay chains in one fused vectorized loop
// (charge_tape.h) before requeueing them.
//
// Virtual time is engine-independent by construction: it derives only
// from charged operation counts and (src, tag)-matched message
// timestamps, never from host scheduling.
#pragma once

#include <exception>
#include <memory>
#include <vector>

#include "parix/message.h"
#include "parix/runtime.h"

namespace skil::parix {

class Machine;
class Mailbox;

/// True when the calling code is running inside a pooled-engine fiber
/// (used to forbid nested pooled runs, which would deadlock the pool).
bool executor_in_fiber();

/// Number of carrier threads the pooled engine runs (or would run: if
/// the pool is not up yet, the count SKIL_CARRIERS / the hardware
/// would resolve to).
int executor_carriers();

/// Overrides the carrier count for subsequent pooled runs (0 restores
/// the SKIL_CARRIERS / hardware_concurrency default).  Tears down the
/// current pool -- the next run respawns it at the new width.  Gang
/// settlement is enabled exactly when the pool has more than one
/// carrier, so SKIL_CARRIERS=1 reproduces the PR 3 single-queue
/// behaviour.  Must not be called from inside a run.
void executor_set_carriers(int n);

/// Gang settlement hook for Proc::settle_pending -- see the
/// declaration in proc.h for the contract.
bool executor_gang_settle(Proc& proc);

/// Spawns the carrier pool if needed and sizes the SKIL_PROF counter
/// registry (prof.h) to cover every carrier.  The runtime calls this
/// before a profiled pooled run so the instrumentation sites never
/// index past the registry.
void executor_prof_prepare();

/// Runs `body` on every processor using the persistent pool; blocks
/// until all fibers finish.  Returns the first failure (or nullptr).
/// Concurrent calls from different host threads serialise.
std::exception_ptr executor_run(Machine& machine,
                                const std::vector<std::unique_ptr<Proc>>& procs,
                                const detail::BodyRef& body);

/// Fiber-parking receive: takes a matching message from `box` or
/// parks the current fiber until the matching put() (or poison) wakes
/// it.  Must be called from inside a pooled-engine fiber.
Message executor_fiber_get(Mailbox& box, int src, long tag);

}  // namespace skil::parix
