// The pooled SPMD execution engine.
//
// A process-wide scheduler owns a small set of persistent worker
// threads (capped at the host's hardware concurrency) and multiplexes
// the virtual processors of an spmd_run as ucontext fibers: each
// processor is a run-to-completion task that *parks* (swaps back to
// its worker) when a receive finds its mailbox bucket empty and is
// *unparked* by the exact put() that satisfies it (see
// Mailbox::Waiter).  Compared with the legacy one-OS-thread-per-
// processor engine this removes the per-run thread spawn/join and the
// kernel-level sleep/wake per message -- a p=64 run context-switches
// in user space only.
//
// Blocked-forever programs cannot rely on the mailbox receive timeout
// here (a parked fiber consumes no thread), so the scheduler detects
// quiescence -- every live fiber parked, nothing ready, nothing
// running -- and poisons the machine's mailboxes, turning a deadlock
// into the same RuntimeFault the threads engine raises on timeout.
//
// Virtual time is engine-independent by construction: it derives only
// from charged operation counts and (src, tag)-matched message
// timestamps, never from host scheduling.
#pragma once

#include <exception>
#include <memory>
#include <vector>

#include "parix/message.h"
#include "parix/runtime.h"

namespace skil::parix {

class Machine;
class Mailbox;

/// True when the calling code is running inside a pooled-engine fiber
/// (used to forbid nested pooled runs, which would deadlock the pool).
bool executor_in_fiber();

/// Runs `body` on every processor using the persistent pool; blocks
/// until all fibers finish.  Returns the first failure (or nullptr).
/// Concurrent calls from different host threads serialise.
std::exception_ptr executor_run(Machine& machine,
                                const std::vector<std::unique_ptr<Proc>>& procs,
                                const detail::BodyRef& body);

/// Fiber-parking receive: takes a matching message from `box` or
/// parks the current fiber until the matching put() (or poison) wakes
/// it.  Must be called from inside a pooled-engine fiber.
Message executor_fiber_get(Mailbox& box, int src, long tag);

}  // namespace skil::parix
