// Per-processor SPMD execution context.
//
// Every virtual processor runs the SPMD program body on its own thread
// with a Proc& handle giving it its identity, its virtual clock, the
// cost-charging interface and point-to-point messaging.  All virtual
// time is deterministic: it derives from charged operation counts and
// from message timestamps, never from host scheduling.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "parix/charge_tape.h"
#include "parix/coll.h"
#include "parix/machine.h"
#include "parix/trace.h"
#include "support/error.h"

namespace skil::parix {

class Proc;

/// Pooled-engine hook (executor.cpp): offers the processor's pending
/// charge ledger to the gang settlement scheduler.  Returns true when
/// the calling fiber parked, a carrier settled the ledger in a fused
/// multi-lane batch, and the fiber has been resumed; false when the
/// caller should settle inline (not in a fiber, gang disabled at one
/// carrier, or the ledger is too small to be worth a park).
bool executor_gang_settle(Proc& proc);

class Proc {
 public:
  Proc(Machine& machine, int id)
      : machine_(&machine), id_(id), nprocs_(machine.nprocs()) {
    // Unit costs are immutable per run; the flat table turns the
    // per-charge cost lookup into one indexed load (charge sits on
    // the per-element hot path of every skeleton).
    for (int k = 0; k < kOpKinds; ++k)
      unit_[k] = machine.cost().unit(static_cast<Op>(k));
  }

  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  int id() const { return id_; }
  int nprocs() const { return nprocs_; }
  Machine& machine() { return *machine_; }
  const CostModel& cost() const { return machine_->cost(); }

  /// Current virtual time in microseconds.  Observing the clock is a
  /// settlement point: any deferred replays fold in first (in append
  /// order, so the value is the one eager accounting would have
  /// produced).
  double vtime() {
    maybe_settle();
    return vtime_;
  }

  /// Charges `count` operations of the given kind to the virtual clock.
  /// Skeleton inner loops call this once per loop with the element
  /// count, keeping host-side overhead negligible.  Eager charges
  /// settle the deferred ledger first so the chain order stays the
  /// program's charge order.
  void charge(Op kind, std::uint64_t count = 1) {
    maybe_settle();
    const double us =
        unit_[static_cast<int>(kind)] * static_cast<double>(count);
    vtime_ += us;
    stats_.compute_us += us;
    stats_.ops[static_cast<int>(kind)] += count;
  }

  /// Bulk charge for skeleton loops: `elems` elements, each costing
  /// `ops_per_elem` operations of `kind`, booked as one clock tick.
  ///
  /// Invariant (DESIGN.md, "Execution engine"): this must be
  /// arithmetic-identical to charge(kind, elems * ops_per_elem) --
  /// both perform exactly one unit * count multiply and one vtime
  /// addition, so replacing a loop's charges with charge_elems never
  /// moves the virtual clock by even an ulp.
  void charge_elems(Op kind, std::uint64_t elems,
                    std::uint64_t ops_per_elem = 1) {
    charge(kind, elems * ops_per_elem);
  }

  /// Replays a recorded charge sequence `times` times, as if charge()
  /// had been called for every tape entry, per repetition, in order.
  ///
  /// Invariant (DESIGN.md sections 8 and 10): the settled result is
  /// arithmetic-identical to
  ///
  ///   for (t = 0; t < times; ++t)
  ///     for (entry : tape) charge(entry.kind, entry.count);
  ///
  /// Since PR 4 the replay is *deferred*: the entries and their
  /// precomputed unit * count addends are appended to the charge
  /// ledger and folded into the clock at the next settlement point
  /// (send, recv, eager charge, stats/vtime read, trace flush).
  /// Deferral cannot move the clock -- settlement walks the records in
  /// append order through the identical dependent FP-add chain -- but
  /// it lets the pooled engine settle many processors' independent
  /// chains in one fused gang batch (charge_tape.h).
  void replay(const ChargeTape& tape, std::uint64_t times) {
    SKIL_ASSERT(tape.size() <= ChargeTape::kMaxEntries,
                "replay: tape exceeds kMaxEntries");
    ledger_.append_replay(tape, unit_.data(), times);
  }

  /// Defers one charge(kind, count) behind any pending replays.  Taped
  /// skeletons book their bulk tail charges through this (via the
  /// DeferredCharges sink) so the deferral window survives past the
  /// skeleton boundary instead of collapsing at the first tail charge.
  void charge_deferred(Op kind, std::uint64_t count = 1) {
    ledger_.append_charge(
        kind, count,
        unit_[static_cast<int>(kind)] * static_cast<double>(count));
  }

  /// Bulk deferred charge, mirroring charge_elems.
  void charge_elems_deferred(Op kind, std::uint64_t elems,
                             std::uint64_t ops_per_elem = 1) {
    charge_deferred(kind, elems * ops_per_elem);
  }

  /// Folds any deferred replays into the clock.  One untaken branch on
  /// the hot interpretive path (the ledger stays empty there).
  void maybe_settle() {
    if (!ledger_.empty()) [[unlikely]] settle_pending();
  }

  /// The raw (ledger, clock, stats) triple the gang settlement kernel
  /// operates on; only meaningful while the owning fiber is parked for
  /// settlement (the scheduler guarantees exclusive access).
  GangLane gang_lane() { return GangLane{&ledger_, &vtime_, &stats_}; }

  /// Charges raw virtual microseconds of computation (used by tests and
  /// by code modelling costs outside the Op vocabulary).
  void charge_us(double us) {
    maybe_settle();
    vtime_ += us;
    stats_.compute_us += us;
  }

  /// Sends `value` to processor `dst` under `tag`.
  ///
  /// Asynchronous mode (Parix with virtual topologies, the mode Skil's
  /// skeletons use): the sender pays only the software startup cost and
  /// the transfer overlaps its further computation.  Synchronous mode
  /// (the "older C version" of paper section 5.1): the sender's clock
  /// advances to the delivery time.
  template <class T>
  void send(int dst, long tag, T value) {
    send_mode(dst, tag, std::move(value), cost().default_send_mode);
  }

  template <class T>
  void send_mode(int dst, long tag, T value, SendMode mode) {
    SKIL_ASSERT(dst >= 0 && dst < nprocs_, "send: bad destination " +
                                               std::to_string(dst));
    dispatch(make_message<T>(id_, tag, std::move(value), 0.0), dst, mode);
  }

  /// Sends a shared immutable buffer without copying the payload: the
  /// message references the caller's buffer, which the caller keeps
  /// reading while the message is in flight.  The receiver's
  /// recv<std::vector<T>> matches it like any other vector message.
  /// Host-side only the copy disappears; whatever send-buffer copy the
  /// modeled 1996 machine performed must still be charged by the
  /// caller (see skeleton_gen_mult.h).
  template <class T>
  void send_buffer(int dst, long tag,
                   std::shared_ptr<const std::vector<T>> buf, SendMode mode) {
    SKIL_ASSERT(dst >= 0 && dst < nprocs_, "send: bad destination " +
                                               std::to_string(dst));
    dispatch(make_shared_message<std::vector<T>>(id_, tag, std::move(buf), 0.0),
             dst, mode);
  }

  /// Receives a value of type T from `src` under `tag`.  The virtual
  /// clock advances to the later of (local time + receive overhead) and
  /// the message's delivery time.  Deliveries into one processor
  /// serialise on its incoming links: a message cannot finish arriving
  /// while a previous one is still streaming in, so back-to-back
  /// arrivals queue up (this is what makes flat gathers onto one root
  /// lose to the paper's tree folds on larger networks).
  template <class T>
  T recv(int src, long tag) {
    SKIL_ASSERT(src >= 0 && src < nprocs_,
                "recv: bad source " + std::to_string(src));
    Message msg = machine_->blocking_get(id_, src, tag);
    SKIL_ASSERT(msg.type != nullptr && *msg.type == typeid(T),
                std::string("recv: payload type mismatch for tag ") +
                    std::to_string(tag));
    // Settle *after* the blocking wait: the receive arithmetic below
    // observes the clock, and parking first maximizes how many
    // processors' pending ledgers a gang batch can fuse (awakened
    // receivers settle together).
    maybe_settle();
    const double last_hop_us =
        cost().msg_per_byte_us * static_cast<double>(msg.bytes);
    double& channel = earliest(in_links_);
    const double queued = channel + last_hop_us;
    const double delivered = std::max(msg.arrival_vtime, queued);
    channel = delivered;
    const double ready =
        std::max(vtime_ + cost().recv_overhead_us, delivered);
    if (trace_ != nullptr) [[unlikely]] {
      if (trace_->full()) {
        // Which constraint bound `ready` is the causal edge the
        // critical-path analyzer follows; ties prefer the local clock,
        // then the arrival (a tie means both paths are critical --
        // either choice yields a maximal chain).
        const RecvBound bound =
            vtime_ + cost().recv_overhead_us >= delivered ? RecvBound::kLocal
            : msg.arrival_vtime >= queued                 ? RecvBound::kArrival
                                                          : RecvBound::kChannel;
        trace_->record_recv(vtime_, ready, src, tag, msg.bytes,
                            msg.trace_seq, bound);
      }
    }
    stats_.comm_us += ready - vtime_;
    vtime_ = ready;
    stats_.messages_received += 1;
    stats_.bytes_received += msg.bytes;
    return take_payload<T>(msg);
  }

  /// Allocates a fresh tag from the collective tag space.  SPMD
  /// programs call collectives in identical order on every processor,
  /// so matching calls draw matching tags.  Skeletons draw exactly one
  /// tag per invocation and derive sub-tags from it.
  long fresh_tag() { return fresh_tag(0); }

  /// Fresh tag on communicator `comm`'s tag stream.  Each communicator
  /// (0 = the full machine, >0 = a Topology row/column subgroup) owns a
  /// disjoint kCommTagSpan-wide slice of the collective tag space, so
  /// collectives on different sub-communicators can never match each
  /// other's messages even when they run concurrently.  Stream 0 is
  /// bit-identical to the pre-subgroup formula.
  long fresh_tag(int comm) {
    return kCollectiveTagBase + static_cast<long>(comm) * kCommTagSpan +
           kTagStride * next_collective_seq_++;
  }

  /// Number of sub-tags a skeleton may derive from one fresh_tag().
  static constexpr long kTagStride = 16;

  /// Width of one communicator's tag stream (fresh_tag(comm)).
  static constexpr long kCommTagSpan = 1L << 32;

  /// First tag of the collective tag space (public so the metrics
  /// exporter can classify app vs collective tags in histograms).
  static constexpr long kCollectiveTagBase = 1L << 40;

  /// Reading the stats is a settlement point, like vtime().
  Stats& stats() {
    maybe_settle();
    return stats_;
  }

  /// Attaches a per-proc trace recorder (parix/trace.h); nullptr turns
  /// tracing off.  Set by spmd_run before the body starts; single
  /// threaded at that point.
  void set_trace(ProcTrace* trace) { trace_ = trace; }
  ProcTrace* trace() { return trace_; }

  /// Selects how settle_pending retires the deferred chain (gang
  /// batches, algebraic closed form, or auto -- charge_tape.h).  Set
  /// by spmd_run from RunConfig::settle before the body starts; every
  /// mode settles the identical add chain, so vtimes are bit-identical
  /// across modes (asserted in tests/test_parix_charge_tape.cpp).
  void set_settle_mode(SettleMode mode) { settle_mode_ = mode; }
  SettleMode settle_mode() const { return settle_mode_; }

  /// Selects whether skeleton compositions may run fused
  /// (charge_tape.h FuseMode; DESIGN.md section 13).  Set by spmd_run
  /// from RunConfig::fuse before the body starts.  kOff executes every
  /// composition exactly as PR 6 did (vtimes bit-identical to the seed
  /// goldens); kOn lets the apps/combinators take the one-pass fused
  /// taped variants (same array results, lower vtimes).
  void set_fuse_mode(FuseMode mode) { fuse_mode_ = mode; }
  FuseMode fuse_mode() const { return fuse_mode_; }

  /// Selects which collective-algorithm family this processor's
  /// collectives use (parix/coll.h; DESIGN.md section 15).  Set by
  /// spmd_run from RunConfig::coll before the body starts.  kTree
  /// replays the seed algorithms message for message; the other modes
  /// keep array results bit-identical while changing virtual time.
  void set_coll_mode(CollMode mode) { coll_mode_ = mode; }
  CollMode coll_mode() const { return coll_mode_; }

  /// Per-proc collective statistics (parix/coll.h).  Host-side
  /// diagnostics only; summed into RunResult::coll after the run.
  CollectiveCounters& coll_counters() { return coll_counters_; }
  const CollectiveCounters& coll_counters() const { return coll_counters_; }

  /// True when a fused taped variant may run: fusion is requested AND
  /// the taped charge path is active.  The fused loops replay fused
  /// tapes, so the interpretive oracle (SKIL_CHARGE=interp) always
  /// runs unfused -- callers seeing fuse-on with interp should count
  /// a FusionReject::kPath instead.
  bool fusing() const {
    return fuse_mode_ == FuseMode::kOn &&
           default_charge_path() == ChargePath::kTape;
  }

  /// Opens an app/skeleton-level trace span (a point event on both
  /// timelines; see TraceSpan for the RAII pairing).  With tracing off
  /// this is one untaken branch -- it must stay cheap enough to sit in
  /// every skeleton entry point.
  void span_begin(const char* name, std::int64_t arg = -1) {
    if (trace_ != nullptr) [[unlikely]] {
      // Span timestamps observe the clock, so tracing settles here;
      // with tracing off the deferral window runs through skeleton
      // boundaries untouched.  Settlement order is the same either
      // way, so vtimes stay bit-identical in every trace mode.
      maybe_settle();
      trace_->span_begin(vtime_, name, arg);
    }
  }
  void span_end() {
    if (trace_ != nullptr) [[unlikely]] {
      maybe_settle();
      trace_->span_end(vtime_);
    }
  }

 private:
  /// Out-of-line slow path of maybe_settle (proc.cpp): offers the
  /// ledger to the pooled engine's gang scheduler, falling back to an
  /// inline scalar settle.
  void settle_pending();

  /// Timestamping and accounting shared by every send flavour.  The
  /// arithmetic sequence here is the vtime artefact -- do not reorder.
  void dispatch(Message msg, int dst, SendMode mode) {
    // Sending observes the clock (the startup charge below): settle.
    maybe_settle();
    const int hops = machine_->hops(id_, dst);
    // Software startup on the sender, then the first hop occupies one
    // of the node's four outgoing link channels: a burst of sends from
    // one processor serialises once all channels are streaming (this
    // is what makes a flat "send to everyone" broadcast degrade on
    // large networks, unlike the skeletons' trees).
    const double ready = vtime_ + cost().msg_startup_us;
    const double first_hop_us =
        cost().msg_per_byte_us * static_cast<double>(msg.bytes);
    double& channel = earliest(out_links_);
    const double link_start = std::max(ready, channel);
    channel = link_start + first_hop_us;
    // Remaining hops: store-and-forward through intermediate nodes.
    const double arrival = link_start +
                           cost().transfer_us(msg.bytes, hops) -
                           cost().msg_startup_us;
    msg.arrival_vtime = arrival;
    const double sender_done = mode == SendMode::kSync ? arrival : ready;
    if (trace_ != nullptr) [[unlikely]] {
      if (trace_->full()) {
        msg.trace_seq = trace_->alloc_send_seq();
        trace_->record_send(vtime_, sender_done, dst, msg.tag, msg.bytes,
                            msg.trace_seq);
      }
    }
    stats_.comm_us += sender_done - vtime_;
    vtime_ = sender_done;
    stats_.messages_sent += 1;
    stats_.bytes_sent += msg.bytes;
    machine_->mailbox(dst).put(std::move(msg));
  }

  Machine* machine_;
  int id_;
  int nprocs_;
  /// Earliest-free link channel (the T800 had four bidirectional
  /// links; we model four independent channels per direction).
  static double& earliest(std::array<double, 4>& channels) {
    double* best = &channels[0];
    for (double& ch : channels)
      if (ch < *best) best = &ch;
    return *best;
  }

  double vtime_ = 0.0;
  std::array<double, kOpKinds> unit_{};
  std::array<double, 4> out_links_{};
  std::array<double, 4> in_links_{};
  long next_collective_seq_ = 0;
  Stats stats_;
  /// Deferred replays/charges pending settlement (charge_tape.h).
  ChargeLedger ledger_;
  /// Settlement strategy for settle_pending (charge_tape.h).
  SettleMode settle_mode_ = default_settle_mode();
  /// Skeleton-composition fusion switch (charge_tape.h).
  FuseMode fuse_mode_ = default_fuse_mode();
  /// Collective-algorithm family switch (parix/coll.h).
  CollMode coll_mode_ = default_coll_mode();
  /// Collective statistics (parix/coll.h); never read by the cost
  /// model, so recording them cannot perturb virtual time.
  CollectiveCounters coll_counters_;
  /// Per-proc trace recorder; nullptr (the default) keeps every trace
  /// hook down to one untaken branch so vtimes stay bit-identical.
  ProcTrace* trace_ = nullptr;
};

/// Charge sink that defers into the processor's ledger instead of
/// settling.  Same interface as Proc and ChargeTape, so the shared
/// charge helpers (fn.h, farray.h) can book a taped skeleton's bulk
/// tail charges without closing the deferral window -- the sequence
/// settles later in exactly this order.
class DeferredCharges {
 public:
  explicit DeferredCharges(Proc& proc) : proc_(&proc) {}

  void charge(Op kind, std::uint64_t count = 1) {
    proc_->charge_deferred(kind, count);
  }
  void charge_elems(Op kind, std::uint64_t elems,
                    std::uint64_t ops_per_elem = 1) {
    proc_->charge_elems_deferred(kind, elems, ops_per_elem);
  }

 private:
  Proc* proc_;
};

/// RAII pairing for Proc::span_begin/span_end.  Skeletons and apps open
/// one per logical phase; spans nest per processor and the recorder
/// checks the pairing when traces are exported.
class TraceSpan {
 public:
  TraceSpan(Proc& proc, const char* name, std::int64_t arg = -1)
      : proc_(&proc) {
    proc.span_begin(name, arg);
  }
  ~TraceSpan() { proc_->span_end(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Proc* proc_;
};

}  // namespace skil::parix
