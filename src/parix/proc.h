// Per-processor SPMD execution context.
//
// Every virtual processor runs the SPMD program body on its own thread
// with a Proc& handle giving it its identity, its virtual clock, the
// cost-charging interface and point-to-point messaging.  All virtual
// time is deterministic: it derives from charged operation counts and
// from message timestamps, never from host scheduling.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "parix/machine.h"
#include "support/error.h"

namespace skil::parix {

class Proc {
 public:
  Proc(Machine& machine, int id)
      : machine_(&machine), id_(id), nprocs_(machine.nprocs()) {}

  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  int id() const { return id_; }
  int nprocs() const { return nprocs_; }
  Machine& machine() { return *machine_; }
  const CostModel& cost() const { return machine_->cost(); }

  /// Current virtual time in microseconds.
  double vtime() const { return vtime_; }

  /// Charges `count` operations of the given kind to the virtual clock.
  /// Skeleton inner loops call this once per loop with the element
  /// count, keeping host-side overhead negligible.
  void charge(Op kind, std::uint64_t count = 1) {
    const double us = cost().unit(kind) * static_cast<double>(count);
    vtime_ += us;
    stats_.compute_us += us;
    stats_.ops[static_cast<int>(kind)] += count;
  }

  /// Charges raw virtual microseconds of computation (used by tests and
  /// by code modelling costs outside the Op vocabulary).
  void charge_us(double us) {
    vtime_ += us;
    stats_.compute_us += us;
  }

  /// Sends `value` to processor `dst` under `tag`.
  ///
  /// Asynchronous mode (Parix with virtual topologies, the mode Skil's
  /// skeletons use): the sender pays only the software startup cost and
  /// the transfer overlaps its further computation.  Synchronous mode
  /// (the "older C version" of paper section 5.1): the sender's clock
  /// advances to the delivery time.
  template <class T>
  void send(int dst, long tag, T value) {
    send_mode(dst, tag, std::move(value), cost().default_send_mode);
  }

  template <class T>
  void send_mode(int dst, long tag, T value, SendMode mode) {
    SKIL_ASSERT(dst >= 0 && dst < nprocs_, "send: bad destination " +
                                               std::to_string(dst));
    const int hops = machine_->hops(id_, dst);
    Message msg = make_message<T>(id_, tag, std::move(value), 0.0);
    // Software startup on the sender, then the first hop occupies one
    // of the node's four outgoing link channels: a burst of sends from
    // one processor serialises once all channels are streaming (this
    // is what makes a flat "send to everyone" broadcast degrade on
    // large networks, unlike the skeletons' trees).
    const double ready = vtime_ + cost().msg_startup_us;
    const double first_hop_us =
        cost().msg_per_byte_us * static_cast<double>(msg.bytes);
    double& channel = earliest(out_links_);
    const double link_start = std::max(ready, channel);
    channel = link_start + first_hop_us;
    // Remaining hops: store-and-forward through intermediate nodes.
    const double arrival = link_start +
                           cost().transfer_us(msg.bytes, hops) -
                           cost().msg_startup_us;
    msg.arrival_vtime = arrival;
    const double sender_done = mode == SendMode::kSync ? arrival : ready;
    stats_.comm_us += sender_done - vtime_;
    vtime_ = sender_done;
    stats_.messages_sent += 1;
    stats_.bytes_sent += msg.bytes;
    machine_->mailbox(dst).put(std::move(msg));
  }

  /// Receives a value of type T from `src` under `tag`.  The virtual
  /// clock advances to the later of (local time + receive overhead) and
  /// the message's delivery time.  Deliveries into one processor
  /// serialise on its incoming links: a message cannot finish arriving
  /// while a previous one is still streaming in, so back-to-back
  /// arrivals queue up (this is what makes flat gathers onto one root
  /// lose to the paper's tree folds on larger networks).
  template <class T>
  T recv(int src, long tag) {
    SKIL_ASSERT(src >= 0 && src < nprocs_,
                "recv: bad source " + std::to_string(src));
    Message msg = machine_->mailbox(id_).get(src, tag);
    SKIL_ASSERT(msg.type != nullptr && *msg.type == typeid(T),
                std::string("recv: payload type mismatch for tag ") +
                    std::to_string(tag));
    const double last_hop_us =
        cost().msg_per_byte_us * static_cast<double>(msg.bytes);
    double& channel = earliest(in_links_);
    const double delivered =
        std::max(msg.arrival_vtime, channel + last_hop_us);
    channel = delivered;
    const double ready =
        std::max(vtime_ + cost().recv_overhead_us, delivered);
    stats_.comm_us += ready - vtime_;
    vtime_ = ready;
    stats_.messages_received += 1;
    return take_payload<T>(msg);
  }

  /// Allocates a fresh tag from the collective tag space.  SPMD
  /// programs call collectives in identical order on every processor,
  /// so matching calls draw matching tags.  Skeletons draw exactly one
  /// tag per invocation and derive sub-tags from it.
  long fresh_tag() { return kCollectiveTagBase + 16 * next_collective_seq_++; }

  /// Number of sub-tags a skeleton may derive from one fresh_tag().
  static constexpr long kTagStride = 16;

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr long kCollectiveTagBase = 1L << 40;

  Machine* machine_;
  int id_;
  int nprocs_;
  /// Earliest-free link channel (the T800 had four bidirectional
  /// links; we model four independent channels per direction).
  static double& earliest(std::array<double, 4>& channels) {
    double* best = &channels[0];
    for (double& ch : channels)
      if (ch < *best) best = &ch;
    return *best;
  }

  double vtime_ = 0.0;
  std::array<double, 4> out_links_{};
  std::array<double, 4> in_links_{};
  long next_collective_seq_ = 0;
  Stats stats_;
};

}  // namespace skil::parix
