// Collective-algorithm selection (the "zoo") and its counters.
//
// The seed runtime had exactly two communication shapes: the binomial
// tree that reduce/broadcast walk and the torus rotations gen_mult
// uses.  PR 9 adds ring and recursive-doubling families so each
// collective can pick the algorithm whose modeled cost (startup alpha,
// per-byte beta, per-hop fee -- see parix/cost_model.h) is lowest for
// the payload size and the topology's embedding dilation.
//
// SKIL_COLL selects the family:
//   tree  -- the seed algorithms (binomial reduce/broadcast, gather+
//            broadcast allgather).  Bit-identical to every pre-zoo
//            golden, message for message.
//   ring  -- ring allgather / chain and chunk-pipelined broadcast /
//            ring reduce-scatter + allgather for elementwise allreduce.
//   rd    -- recursive doubling: Bruck allgather, Rabenseifner
//            (halving + doubling) elementwise allreduce; broadcast
//            stays binomial (the tree *is* the recursive-doubling
//            shape for rooted one-to-all).
//   auto  -- per-call argmin over the modeled costs (the default).
//
// Array results are bit-identical across all modes: scalar allreduce
// replays the exact binomial-tree bracketing locally after an
// allgather of the raw contributions, and elementwise allreduce only
// uses reassociating algorithms when the caller declares the operator
// order-insensitive (CollOrder::kExact).  Virtual times differ by
// mode and are pinned by per-algorithm goldens.
#pragma once

#include <cstdint>
#include <string_view>

namespace skil::parix {

/// Which collective-algorithm family to use (SKIL_COLL).
enum class CollMode {
  kTree = 0,  ///< seed binomial-tree algorithms only
  kRing,      ///< ring family
  kRd,        ///< recursive-doubling family
  kAuto,      ///< pick per call from modeled cost (default)
};

/// Per-call default, initialised from SKIL_COLL and overridable with
/// set_default_coll_mode.  Unknown SKIL_COLL values fail loudly.
CollMode default_coll_mode();
void set_default_coll_mode(CollMode mode);
CollMode parse_coll_mode(std::string_view name);
std::string_view coll_mode_name(CollMode mode);

/// The collectives the counters distinguish.  Composite tree paths
/// count their building blocks too (a tree allreduce notes one
/// allreduce call plus the nested reduce and broadcast calls).
enum class CollOp {
  kBroadcast = 0,
  kReduce,
  kAllreduce,
  kAllgather,
};
inline constexpr int kNumCollOps = 4;
std::string_view coll_op_name(CollOp op);

/// The concrete algorithm a call resolved to.
enum class CollAlgo {
  kTree = 0,       ///< binomial tree (seed behaviour)
  kRing,           ///< ring chain / pipeline / reduce-scatter
  kRecDouble,      ///< recursive doubling (Bruck allgather)
  kRabenseifner,   ///< recursive halving + doubling elementwise allreduce
};
inline constexpr int kNumCollAlgos = 4;
std::string_view coll_algo_name(CollAlgo algo);

/// Whether an elementwise reduction operator's result may depend on
/// evaluation order.  kExact operators (integer ops, min/max, bitwise)
/// admit the reassociating algorithms; kChainOnly operators (FP sums
/// whose rounding is the scientific artefact) force the tree so the
/// combine bracketing never changes.
enum class CollOrder {
  kExact = 0,     ///< any bracketing yields identical bits
  kChainOnly,     ///< bracketing is part of the result; tree only
};

/// Per-processor collective statistics, summed into RunResult::coll.
/// Host-side diagnostics only -- never read by the cost model, so
/// recording them cannot perturb virtual time.
struct CollectiveCounters {
  /// calls[op][algo]: how many calls of `op` resolved to `algo`.
  std::uint64_t calls[kNumCollOps][kNumCollAlgos] = {};
  /// Payload bytes this processor sent inside `op` (wire size).
  std::uint64_t bytes[kNumCollOps] = {};
  /// Sum of mesh hop distances of those sends (embedding dilation).
  std::uint64_t hops[kNumCollOps] = {};
  /// Communication rounds this processor took part in.
  std::uint64_t steps[kNumCollOps] = {};
  /// Elementwise allreduces where a chain-only operator forced the
  /// tree although the mode asked for a reassociating algorithm.
  std::uint64_t order_fallbacks = 0;

  CollectiveCounters& operator+=(const CollectiveCounters& other) {
    for (int op = 0; op < kNumCollOps; ++op) {
      for (int algo = 0; algo < kNumCollAlgos; ++algo)
        calls[op][algo] += other.calls[op][algo];
      bytes[op] += other.bytes[op];
      hops[op] += other.hops[op];
      steps[op] += other.steps[op];
    }
    order_fallbacks += other.order_fallbacks;
    return *this;
  }

  bool operator==(const CollectiveCounters&) const = default;

  /// Total calls across ops that resolved to `algo`.
  std::uint64_t calls_for(CollAlgo algo) const {
    std::uint64_t n = 0;
    for (int op = 0; op < kNumCollOps; ++op)
      n += calls[op][static_cast<int>(algo)];
    return n;
  }

  /// Total calls across all ops and algorithms.
  std::uint64_t total_calls() const {
    std::uint64_t n = 0;
    for (int algo = 0; algo < kNumCollAlgos; ++algo)
      n += calls_for(static_cast<CollAlgo>(algo));
    return n;
  }
};

}  // namespace skil::parix
