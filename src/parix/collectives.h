// Collective operations over a virtual topology.
//
// These are the building blocks the paper's skeletons use internally:
// array_fold folds partition results "along the edges of a virtual tree
// topology, with the result finally collected at the root" and then
// broadcast back; array_broadcast_part broadcasts one partition along
// the same tree; array_gen_mult rotates partitions around torus rows
// and columns.
//
// All collectives are SPMD: every processor of the communicator must
// call them in the same order.  Each invocation draws one fresh tag on
// the communicator's tag stream (every member draws the same one) and
// derives per-step sub-tags from it.  Trees are binomial trees over
// *virtual* ranks, so the underlying hop costs honour the topology
// embedding.
//
// PR 9 adds the algorithm zoo (parix/coll.h, DESIGN.md section 15):
// besides the seed binomial tree, allgather can run as a ring or as
// Bruck's recursive-doubling dissemination, broadcast of large buffers
// can run chunk-pipelined around the ring (bandwidth ~beta*n instead
// of beta*n*log p), and elementwise allreduce can run Rabenseifner's
// recursive-halving reduce-scatter + recursive-doubling allgather or a
// ring reduce-scatter + allgather (both halving the bandwidth term).
// The family is picked per call from Proc::coll_mode(); kAuto compares
// modeled costs over the embedding's actual hop distances.  Array
// results are bit-identical in every mode: scalar allreduce replays
// the exact binomial-tree combine bracketing locally after gathering
// the raw contributions, and the reassociating elementwise algorithms
// only run when the caller declares the operator order-insensitive.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "parix/coll.h"
#include "parix/proc.h"
#include "parix/topology.h"

namespace skil::parix {

namespace coll_detail {

// --- shared binomial-tree walk (one copy of the vrank/mask math) ----

/// Root-relative rank arithmetic shared by every rooted collective:
/// `rel` is this processor's rank relative to the root and hw(r) maps
/// a root-relative rank back to its hardware processor.
struct TreeWalk {
  int p;
  int vroot;
  int rel;
  const Topology* topo;

  int hw(int r) const { return topo->hw_of((r + vroot) % p); }
};

inline TreeWalk walk_from_root(Proc& proc, const Topology& topo,
                               int root_hw) {
  const int p = topo.nprocs();
  const int vroot = topo.vrank_of(root_hw);
  const int rel = (topo.vrank_of(proc.id()) - vroot + p) % p;
  return TreeWalk{p, vroot, rel, &topo};
}

// --- counter plumbing -----------------------------------------------

inline void note_call(Proc& proc, CollOp op, CollAlgo algo) {
  proc.coll_counters().calls[static_cast<int>(op)][static_cast<int>(algo)] +=
      1;
}

inline void note_steps(Proc& proc, CollOp op, std::uint64_t n = 1) {
  proc.coll_counters().steps[static_cast<int>(op)] += n;
}

/// Send wrapper that books the payload's wire bytes and the physical
/// hop distance of the edge under `op` before posting the send.  The
/// counters are host-side only; the message itself is priced by the
/// cost model exactly as a plain proc.send would be.
template <class T>
void coll_send(Proc& proc, const Topology& topo, CollOp op, int dst, long tag,
               T value) {
  CollectiveCounters& c = proc.coll_counters();
  c.bytes[static_cast<int>(op)] += payload_bytes(value);
  c.hops[static_cast<int>(op)] +=
      static_cast<std::uint64_t>(topo.hops(proc.id(), dst));
  proc.send<T>(dst, tag, std::move(value));
}

// --- modeled-cost estimators for kAuto selection --------------------
//
// Pure functions of (topology, cost model, payload size): every
// member computes the same estimate, so selection is uniform across
// the communicator and cannot deadlock.  The estimates track each
// algorithm's critical path closely enough to rank them; the pinned
// per-algorithm vtime goldens are the ground truth.

/// Worst-case physical hop count over the edges {r -> r+d (mod p)}.
inline int max_hop_at_distance(const Topology& topo, int d) {
  const int p = topo.nprocs();
  int h = 1;
  for (int r = 0; r < p; ++r)
    h = std::max(h, topo.hops(topo.hw_of(r), topo.hw_of((r + d) % p)));
  return h;
}

/// Worst-case physical hop count over the edges {r -> r XOR m}
/// (recursive halving/doubling partners; p must be a power of two).
inline int max_hop_at_xor(const Topology& topo, int m) {
  const int p = topo.nprocs();
  int h = 1;
  for (int r = 0; r < p; ++r)
    h = std::max(h, topo.hops(topo.hw_of(r), topo.hw_of(r ^ m)));
  return h;
}

/// Critical path of a binomial tree carrying `nbytes` per edge: one
/// serialized transfer per doubling distance.
inline double est_tree_stages(const Topology& topo, const CostModel& cost,
                              std::size_t nbytes) {
  double t = 0.0;
  for (int mask = 1; mask < topo.nprocs(); mask <<= 1)
    t += cost.transfer_us(nbytes, max_hop_at_distance(topo, mask));
  return t;
}

inline double est_ring_allgather(const Topology& topo, const CostModel& cost,
                                 std::size_t item_bytes) {
  const int p = topo.nprocs();
  return static_cast<double>(p - 1) *
         cost.transfer_us(item_bytes, max_hop_at_distance(topo, 1));
}

inline double est_bruck_allgather(const Topology& topo, const CostModel& cost,
                                  std::size_t item_bytes) {
  const int p = topo.nprocs();
  double t = 0.0;
  int len = 1;
  while (len < p) {
    const int cnt = std::min(len, p - len);
    t += cost.transfer_us(static_cast<std::size_t>(cnt) * item_bytes + 8,
                          max_hop_at_distance(topo, len));
    len += cnt;
  }
  return t;
}

/// Seed allgather: gather onto vrank 0 (receives serialize on the
/// root) followed by a tree broadcast of the whole vector.
inline double est_tree_allgather(const Topology& topo, const CostModel& cost,
                                 std::size_t item_bytes) {
  const int p = topo.nprocs();
  const double gather = static_cast<double>(p - 1) *
                        (cost.recv_overhead_us +
                         cost.transfer_us(item_bytes, 1) / 4.0);
  return gather + est_tree_stages(
                      topo, cost,
                      static_cast<std::size_t>(p) * item_bytes + 8);
}

/// Number of chunks the ring-pipelined broadcast always splits into.
/// Fixed (not size-dependent) so non-root members need no header
/// round to learn the chunk count; empty chunks are legal.  Must not
/// exceed Proc::kTagStride (one sub-tag per chunk).
inline constexpr int kBcastChunks = 16;

/// Pipeline bound for the chunked ring chain: the first chunk fills
/// the whole chain link by link (each link priced at its own physical
/// hop distance -- a single long wrap edge is paid once, not p times),
/// then the remaining chunks drain behind it at the slowest link's
/// rate.
inline double est_ring_pipelined_bcast(const Topology& topo,
                                       const CostModel& cost,
                                       std::size_t nbytes) {
  const int p = topo.nprocs();
  const std::size_t chunk = nbytes / kBcastChunks + 8;
  double fill = 0.0;
  double bottleneck = 0.0;
  for (int r = 0; r + 1 < p; ++r) {
    const double t = cost.transfer_us(
        chunk, topo.hops(topo.hw_of(r), topo.hw_of(r + 1)));
    fill += t;
    bottleneck = std::max(bottleneck, t);
  }
  return fill + static_cast<double>(kBcastChunks - 1) * bottleneck;
}

inline double est_ring_chain_bcast(const Topology& topo,
                                   const CostModel& cost,
                                   std::size_t nbytes) {
  const int p = topo.nprocs();
  double t = 0.0;
  for (int r = 0; r + 1 < p; ++r)
    t += cost.transfer_us(nbytes,
                          topo.hops(topo.hw_of(r), topo.hw_of(r + 1)));
  return t;
}

/// Ring reduce-scatter + ring allgather over n/p-sized segments.
inline double est_ring_elems(const Topology& topo, const CostModel& cost,
                             std::size_t nbytes) {
  const int p = topo.nprocs();
  return 2.0 * static_cast<double>(p - 1) *
         cost.transfer_us(nbytes / static_cast<std::size_t>(p) + 8,
                          max_hop_at_distance(topo, 1));
}

/// Rabenseifner: recursive halving then recursive doubling; the
/// payload per stage halves/doubles with the partner distance.
inline double est_rabenseifner_elems(const Topology& topo,
                                     const CostModel& cost,
                                     std::size_t nbytes) {
  const int p = topo.nprocs();
  double t = 0.0;
  for (int mask = p / 2; mask >= 1; mask >>= 1)
    t += 2.0 * cost.transfer_us(
                   nbytes * static_cast<std::size_t>(mask) /
                           static_cast<std::size_t>(p) +
                       8,
                   max_hop_at_xor(topo, mask));
  return t;
}

/// Wire size of T when it is knowable from the type alone; 0 means
/// "unknown", which keeps kAuto on the seed tree algorithms.
template <class T>
constexpr std::size_t wire_size_hint() {
  if constexpr (std::is_trivially_copyable_v<T>)
    return sizeof(T);
  else
    return 0;
}

inline bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

// --- per-collective algorithm selection -----------------------------

template <class T>
CollAlgo pick_allgather(Proc& proc, const Topology& topo) {
  if (topo.nprocs() < 2) return CollAlgo::kTree;
  if constexpr (!std::is_copy_constructible_v<T>) return CollAlgo::kTree;
  switch (proc.coll_mode()) {
    case CollMode::kTree: return CollAlgo::kTree;
    case CollMode::kRing: return CollAlgo::kRing;
    case CollMode::kRd: return CollAlgo::kRecDouble;
    case CollMode::kAuto: break;
  }
  const std::size_t item = wire_size_hint<T>();
  if (item == 0) return CollAlgo::kTree;
  const CostModel& cost = proc.cost();
  const double tree = est_tree_allgather(topo, cost, item);
  const double ring = est_ring_allgather(topo, cost, item);
  const double rd = est_bruck_allgather(topo, cost, item);
  if (rd <= tree && rd <= ring) return CollAlgo::kRecDouble;
  if (ring <= tree) return CollAlgo::kRing;
  return CollAlgo::kTree;
}

template <class T>
CollAlgo pick_allreduce(Proc& proc, const Topology& topo) {
  if (topo.nprocs() < 2) return CollAlgo::kTree;
  if constexpr (!std::is_copy_constructible_v<T>) return CollAlgo::kTree;
  switch (proc.coll_mode()) {
    case CollMode::kTree: return CollAlgo::kTree;
    case CollMode::kRing: return CollAlgo::kRing;
    case CollMode::kRd: return CollAlgo::kRecDouble;
    case CollMode::kAuto: break;
  }
  const std::size_t item = wire_size_hint<T>();
  if (item == 0) return CollAlgo::kTree;
  const CostModel& cost = proc.cost();
  // Tree allreduce = reduce + broadcast, one payload per tree edge
  // each way; the gathering algorithms pay their allgather plus a
  // purely local fold (negligible next to message startup).
  const double tree = 2.0 * est_tree_stages(topo, cost, item);
  const double ring = est_ring_allgather(topo, cost, item);
  const double rd = est_bruck_allgather(topo, cost, item);
  if (rd <= tree && rd <= ring) return CollAlgo::kRecDouble;
  if (ring <= tree) return CollAlgo::kRing;
  return CollAlgo::kTree;
}

inline CollAlgo pick_broadcast(Proc& proc, const Topology& topo,
                               std::size_t nbytes_hint, bool chunked) {
  if (topo.nprocs() < 2) return CollAlgo::kTree;
  switch (proc.coll_mode()) {
    case CollMode::kTree: return CollAlgo::kTree;
    case CollMode::kRing: return CollAlgo::kRing;
    // The binomial tree *is* the recursive-doubling shape for rooted
    // one-to-all data movement, so kRd keeps it.
    case CollMode::kRd: return CollAlgo::kTree;
    case CollMode::kAuto: break;
  }
  if (nbytes_hint == 0) return CollAlgo::kTree;
  const CostModel& cost = proc.cost();
  const double tree = est_tree_stages(topo, cost, nbytes_hint);
  const double ring = chunked
                          ? est_ring_pipelined_bcast(topo, cost, nbytes_hint)
                          : est_ring_chain_bcast(topo, cost, nbytes_hint);
  return ring < tree ? CollAlgo::kRing : CollAlgo::kTree;
}

inline CollAlgo pick_allreduce_elems(Proc& proc, const Topology& topo,
                                     std::size_t nbytes, CollOrder order) {
  if (topo.nprocs() < 2) return CollAlgo::kTree;
  if (order == CollOrder::kChainOnly) {
    // The combine bracketing is part of the result; only the tree
    // preserves it.  Count the fallback when another family was asked
    // for (kAuto would at these sizes prefer a reassociating one).
    if (proc.coll_mode() != CollMode::kTree)
      proc.coll_counters().order_fallbacks += 1;
    return CollAlgo::kTree;
  }
  const int p = topo.nprocs();
  switch (proc.coll_mode()) {
    case CollMode::kTree: return CollAlgo::kTree;
    case CollMode::kRing: return CollAlgo::kRing;
    case CollMode::kRd:
      // Rabenseifner's halving/doubling needs a power of two.
      return is_pow2(p) ? CollAlgo::kRabenseifner : CollAlgo::kTree;
    case CollMode::kAuto: break;
  }
  const CostModel& cost = proc.cost();
  const double tree = 2.0 * est_tree_stages(topo, cost, nbytes + 8);
  const double ring = est_ring_elems(topo, cost, nbytes);
  const double raben = is_pow2(p)
                           ? est_rabenseifner_elems(topo, cost, nbytes)
                           : tree + 1.0;
  if (is_pow2(p) && raben <= tree && raben <= ring)
    return CollAlgo::kRabenseifner;
  if (ring <= tree) return CollAlgo::kRing;
  return CollAlgo::kTree;
}

// --- algorithm implementations --------------------------------------

/// Seed binomial-tree broadcast, message for message.
template <class T>
void broadcast_tree(Proc& proc, const Topology& topo, int root_hw, T& value,
                    CollOp ctx) {
  const long tag = topo.fresh_tag(proc);
  const TreeWalk w = walk_from_root(proc, topo, root_hw);

  int mask = 1;
  while (mask < w.p) {
    if (w.rel & mask) {
      value = proc.recv<T>(w.hw(w.rel - mask), tag);
      note_steps(proc, ctx);
      break;
    }
    mask <<= 1;
  }
  // After the loop, mask is the receiver's lowest set bit (or the first
  // power of two >= p at the root); children sit at rel + mask/2^k.
  mask >>= 1;
  while (mask > 0) {
    if (w.rel + mask < w.p) {
      coll_send<T>(proc, topo, ctx, w.hw(w.rel + mask), tag, value);
      note_steps(proc, ctx);
    }
    mask >>= 1;
  }
}

/// Ring chain broadcast: the value walks root-relative ranks
/// 0 -> 1 -> ... -> p-1.  Latency (p-1) stages, but every stage is one
/// ring edge, so on ring-friendly embeddings the per-stage hop cost is
/// minimal.  Used when the mode forces the ring family on an unchunked
/// payload.
template <class T>
void broadcast_ring_chain(Proc& proc, const Topology& topo, int root_hw,
                          T& value, CollOp ctx) {
  const long tag = topo.fresh_tag(proc);
  const TreeWalk w = walk_from_root(proc, topo, root_hw);
  if (w.p < 2) return;
  if (w.rel > 0) {
    value = proc.recv<T>(w.hw(w.rel - 1), tag);
    note_steps(proc, ctx);
  }
  if (w.rel + 1 < w.p) {
    coll_send<T>(proc, topo, ctx, w.hw(w.rel + 1), tag, value);
    note_steps(proc, ctx);
  }
}

/// Ring-pipelined broadcast for large vectors: the buffer is split
/// into kBcastChunks chunks which the root streams down the ring
/// chain; every member forwards chunk c before receiving chunk c+1,
/// so all ring edges carry data concurrently and the bandwidth term
/// is ~beta*n instead of beta*n*log p.  The chunk count is fixed, so
/// non-root members need no size header; empty chunks are legal.
template <class U>
void broadcast_ring_pipelined(Proc& proc, const Topology& topo, int root_hw,
                              std::vector<U>& value, CollOp ctx) {
  const long tag = topo.fresh_tag(proc);
  const TreeWalk w = walk_from_root(proc, topo, root_hw);
  if (w.p < 2) return;
  static_assert(kBcastChunks <= Proc::kTagStride,
                "one sub-tag per chunk must fit the tag stride");
  if (w.rel == 0) {
    const std::size_t n = value.size();
    for (int c = 0; c < kBcastChunks; ++c) {
      const std::size_t lo = n * static_cast<std::size_t>(c) / kBcastChunks;
      const std::size_t hi =
          n * (static_cast<std::size_t>(c) + 1) / kBcastChunks;
      std::vector<U> chunk(value.begin() + static_cast<std::ptrdiff_t>(lo),
                           value.begin() + static_cast<std::ptrdiff_t>(hi));
      coll_send<std::vector<U>>(proc, topo, ctx, w.hw(1), tag + c,
                                std::move(chunk));
    }
  } else {
    std::vector<U> assembled;
    for (int c = 0; c < kBcastChunks; ++c) {
      std::vector<U> chunk =
          proc.recv<std::vector<U>>(w.hw(w.rel - 1), tag + c);
      if (w.rel + 1 < w.p)
        coll_send<std::vector<U>>(proc, topo, ctx, w.hw(w.rel + 1), tag + c,
                                  chunk);
      assembled.insert(assembled.end(),
                       std::make_move_iterator(chunk.begin()),
                       std::make_move_iterator(chunk.end()));
    }
    value = std::move(assembled);
  }
  note_steps(proc, ctx, kBcastChunks);
}

/// Seed binomial-tree reduce, message for message.
template <class T, class BinOp>
T reduce_tree(Proc& proc, const Topology& topo, int root_hw, T local,
              BinOp op, CollOp ctx) {
  const long tag = topo.fresh_tag(proc);
  const TreeWalk w = walk_from_root(proc, topo, root_hw);

  for (int mask = 1; mask < w.p; mask <<= 1) {
    if (w.rel & mask) {
      coll_send<T>(proc, topo, ctx, w.hw(w.rel - mask), tag,
                   std::move(local));
      note_steps(proc, ctx);
      return local;
    }
    if (w.rel + mask < w.p) {
      T incoming = proc.recv<T>(w.hw(w.rel + mask), tag);
      note_steps(proc, ctx);
      local = op(std::move(local), std::move(incoming));
    }
  }
  return local;
}

/// Ring allgather: p-1 pass-around steps; step s forwards the item
/// received at step s-1.  All steps reuse one tag (the mailbox is
/// FIFO per (src, tag) and every step receives from the same ring
/// neighbour).
template <class T>
std::vector<T> allgather_ring(Proc& proc, const Topology& topo, T local,
                              CollOp ctx) {
  const long tag = topo.fresh_tag(proc);
  const int p = topo.nprocs();
  const int me = topo.vrank_of(proc.id());
  const int dst = topo.hw_of((me + 1) % p);
  const int src = topo.hw_of((me - 1 + p) % p);
  // v[j] holds the contribution of vrank (me - j + p) % p.
  std::vector<T> v;
  v.reserve(p);
  v.push_back(std::move(local));
  for (int s = 0; s + 1 < p; ++s) {
    coll_send<T>(proc, topo, ctx, dst, tag, T(v[static_cast<std::size_t>(s)]));
    v.push_back(proc.recv<T>(src, tag));
    note_steps(proc, ctx);
  }
  std::vector<T> result;
  result.reserve(p);
  for (int i = 0; i < p; ++i)
    result.push_back(std::move(v[static_cast<std::size_t>((me - i + p) % p)]));
  return result;
}

/// Bruck dissemination allgather: ceil(log2 p) rounds, round k sending
/// the min(2^k, p - 2^k) items collected so far to rank me - 2^k and
/// receiving as many from me + 2^k; works for any p.
template <class T>
std::vector<T> allgather_bruck(Proc& proc, const Topology& topo, T local,
                               CollOp ctx) {
  const long tag = topo.fresh_tag(proc);
  const int p = topo.nprocs();
  const int me = topo.vrank_of(proc.id());
  // v[j] holds the contribution of vrank (me + j) % p.
  std::vector<T> v;
  v.reserve(p);
  v.push_back(std::move(local));
  int len = 1;
  int step = 0;
  while (len < p) {
    SKIL_ASSERT(step < Proc::kTagStride, "allgather: too many Bruck rounds");
    const int cnt = std::min(len, p - len);
    const int dst = topo.hw_of((me - len + p) % p);
    const int src = topo.hw_of((me + len) % p);
    std::vector<T> block(v.begin(), v.begin() + cnt);
    coll_send<std::vector<T>>(proc, topo, ctx, dst, tag + step,
                              std::move(block));
    std::vector<T> incoming = proc.recv<std::vector<T>>(src, tag + step);
    for (T& x : incoming) v.push_back(std::move(x));
    note_steps(proc, ctx);
    len += cnt;
    ++step;
  }
  std::vector<T> result;
  result.reserve(p);
  for (int i = 0; i < p; ++i)
    result.push_back(std::move(v[static_cast<std::size_t>((i - me + p) % p)]));
  return result;
}

/// Folds the per-vrank contributions locally, replaying the *exact*
/// combine bracketing of the binomial-tree reduce rooted at vrank 0.
/// Every processor performs the identical fold on identical values, so
/// the result is bit-identical across processors AND across algorithm
/// families, for any operator -- associative, commutative, or neither.
template <class T, class BinOp>
T fold_tree_bracketing(std::vector<T> v, BinOp op) {
  const int p = static_cast<int>(v.size());
  for (int mask = 1; mask < p; mask <<= 1)
    for (int i = 0; i + mask < p; i += 2 * mask)
      v[static_cast<std::size_t>(i)] =
          op(std::move(v[static_cast<std::size_t>(i)]),
             std::move(v[static_cast<std::size_t>(i + mask)]));
  return std::move(v[0]);
}

}  // namespace coll_detail

/// Broadcasts `value` from the processor `root_hw` to all processors;
/// on return every processor holds the value.  Binomial tree by
/// default; SKIL_COLL=ring walks the ring chain instead.
template <class T>
void broadcast(Proc& proc, const Topology& topo, int root_hw, T& value) {
  const TraceSpan span(proc, "broadcast");
  const CollAlgo algo = coll_detail::pick_broadcast(
      proc, topo, coll_detail::wire_size_hint<T>(), /*chunked=*/false);
  coll_detail::note_call(proc, CollOp::kBroadcast, algo);
  if (algo == CollAlgo::kRing)
    coll_detail::broadcast_ring_chain(proc, topo, root_hw, value,
                                      CollOp::kBroadcast);
  else
    coll_detail::broadcast_tree(proc, topo, root_hw, value,
                                CollOp::kBroadcast);
}

/// Vector broadcast with a caller-supplied payload-size hint
/// (`nbytes_hint` must be computed identically on every member, e.g.
/// from a uniform partition size).  Large buffers on ring-friendly
/// embeddings take the chunk-pipelined ring; everything else takes the
/// binomial tree.  Only the root's `value` is read; non-root vectors
/// are overwritten with the broadcast content.
template <class U>
void broadcast(Proc& proc, const Topology& topo, int root_hw,
               std::vector<U>& value, std::size_t nbytes_hint) {
  const TraceSpan span(proc, "broadcast");
  const CollAlgo algo = coll_detail::pick_broadcast(proc, topo, nbytes_hint,
                                                    /*chunked=*/true);
  coll_detail::note_call(proc, CollOp::kBroadcast, algo);
  if (algo == CollAlgo::kRing)
    coll_detail::broadcast_ring_pipelined(proc, topo, root_hw, value,
                                          CollOp::kBroadcast);
  else
    coll_detail::broadcast_tree(proc, topo, root_hw, value,
                                CollOp::kBroadcast);
}

/// Reduces the `local` contributions with `op` onto `root_hw` along a
/// binomial tree.  Only the root's return value is meaningful; other
/// processors return their partial accumulation.  The combine
/// bracketing of this tree is the reference ordering every other
/// allreduce algorithm reproduces.
template <class T, class BinOp>
T reduce(Proc& proc, const Topology& topo, int root_hw, T local, BinOp op) {
  const TraceSpan span(proc, "reduce");
  coll_detail::note_call(proc, CollOp::kReduce, CollAlgo::kTree);
  return coll_detail::reduce_tree(proc, topo, root_hw, std::move(local), op,
                                  CollOp::kReduce);
}

/// Reduce-to-root followed by broadcast: the paper's array_fold
/// communication pattern.  Every processor returns the full result.
///
/// Under the ring/rd families the contributions are allgathered raw
/// and every processor folds them locally, replaying the exact
/// binomial-tree bracketing -- the returned value is bit-identical to
/// the tree result for ANY operator, while the communication drops
/// from 2 log p serialized tree stages to one dissemination.
template <class T, class BinOp>
T allreduce(Proc& proc, const Topology& topo, T local, BinOp op) {
  const TraceSpan span(proc, "allreduce");
  const CollAlgo algo = coll_detail::pick_allreduce<T>(proc, topo);
  coll_detail::note_call(proc, CollOp::kAllreduce, algo);
  if constexpr (std::is_copy_constructible_v<T>) {
    if (algo == CollAlgo::kRing)
      return coll_detail::fold_tree_bracketing(
          coll_detail::allgather_ring(proc, topo, std::move(local),
                                      CollOp::kAllreduce),
          op);
    if (algo == CollAlgo::kRecDouble)
      return coll_detail::fold_tree_bracketing(
          coll_detail::allgather_bruck(proc, topo, std::move(local),
                                       CollOp::kAllreduce),
          op);
  }
  const int root_hw = topo.hw_of(0);
  T result = reduce(proc, topo, root_hw, std::move(local), op);
  broadcast(proc, topo, root_hw, result);
  return result;
}

/// Elementwise allreduce over uniform-length vectors: on return every
/// processor holds r[j] = combine of all local[j].  `order` declares
/// whether the operator's result depends on combine bracketing:
/// kChainOnly (the safe default) forces the binomial tree so FP
/// rounding never moves; kExact admits Rabenseifner's recursive
/// halving/doubling and the ring reduce-scatter + allgather, which
/// halve the bandwidth term by moving n/p-sized segments.
template <class U, class EOp>
std::vector<U> allreduce_elems(Proc& proc, const Topology& topo,
                               std::vector<U> local, EOp elem_op,
                               CollOrder order = CollOrder::kChainOnly) {
  static_assert(std::is_trivially_copyable_v<U>,
                "allreduce_elems needs wire-transferable elements");
  const TraceSpan span(proc, "allreduce_elems");
  const Op kind = std::is_floating_point_v<U> ? Op::kFloatOp : Op::kIntOp;
  const CollAlgo algo = coll_detail::pick_allreduce_elems(
      proc, topo, local.size() * sizeof(U), order);
  coll_detail::note_call(proc, CollOp::kAllreduce, algo);
  const int p = topo.nprocs();
  if (p < 2) return local;
  const long tag = topo.fresh_tag(proc);
  const int me = topo.vrank_of(proc.id());
  const std::size_t n = local.size();
  // Segment j (0 <= j <= p) starts at element boundary b(j); b(p) = n.
  const auto b = [&](int j) {
    return n * static_cast<std::size_t>(j) / static_cast<std::size_t>(p);
  };
  const auto wrap = [&](int k) { return ((k % p) + p) % p; };

  if (algo == CollAlgo::kRing) {
    const int dst = topo.hw_of((me + 1) % p);
    const int src = topo.hw_of((me - 1 + p) % p);
    // Reduce-scatter: step s sends the running partial of segment
    // (me - s) and folds the received partial into segment
    // (me - s - 1); after p-1 steps this processor owns the full
    // combine of segment (me + 1), accumulated in ring order.
    for (int s = 0; s + 1 < p; ++s) {
      const int out_seg = wrap(me - s);
      std::vector<U> out(
          local.begin() + static_cast<std::ptrdiff_t>(b(out_seg)),
          local.begin() + static_cast<std::ptrdiff_t>(b(out_seg + 1)));
      coll_detail::coll_send<std::vector<U>>(proc, topo, CollOp::kAllreduce,
                                             dst, tag, std::move(out));
      std::vector<U> in = proc.recv<std::vector<U>>(src, tag);
      const std::size_t ilo = b(wrap(me - s - 1));
      for (std::size_t j = 0; j < in.size(); ++j)
        local[ilo + j] = elem_op(in[j], local[ilo + j]);
      proc.charge_elems(kind, in.size());
      coll_detail::note_steps(proc, CollOp::kAllreduce);
    }
    // Allgather the finished segments around the ring.
    for (int s = 0; s + 1 < p; ++s) {
      const int out_seg = wrap(me + 1 - s);
      std::vector<U> out(
          local.begin() + static_cast<std::ptrdiff_t>(b(out_seg)),
          local.begin() + static_cast<std::ptrdiff_t>(b(out_seg + 1)));
      coll_detail::coll_send<std::vector<U>>(proc, topo, CollOp::kAllreduce,
                                             dst, tag + 1, std::move(out));
      std::vector<U> in = proc.recv<std::vector<U>>(src, tag + 1);
      const std::size_t ilo = b(wrap(me - s));
      std::copy(in.begin(), in.end(),
                local.begin() + static_cast<std::ptrdiff_t>(ilo));
      coll_detail::note_steps(proc, CollOp::kAllreduce);
    }
    return local;
  }

  if (algo == CollAlgo::kRabenseifner) {
    // Recursive halving reduce-scatter: with partner me ^ mask, the
    // lower rank keeps the lower half of the current segment range.
    // The canonical combine order is op(lower-group, upper-group), so
    // the result is a fixed balanced bracketing independent of rank.
    for (int mask = p / 2; mask >= 1; mask >>= 1) {
      const int partner = me ^ mask;
      const int width = 2 * mask;          // segments in current range
      const int base = (me / width) * width;
      const bool lower = (me & mask) == 0;
      const int keep_lo = lower ? base : base + mask;
      const int send_lo = lower ? base + mask : base;
      const std::size_t slo = b(send_lo), shi = b(send_lo + mask);
      const std::size_t klo = b(keep_lo), khi = b(keep_lo + mask);
      std::vector<U> out(local.begin() + static_cast<std::ptrdiff_t>(slo),
                         local.begin() + static_cast<std::ptrdiff_t>(shi));
      coll_detail::coll_send<std::vector<U>>(proc, topo, CollOp::kAllreduce,
                                             topo.hw_of(partner), tag,
                                             std::move(out));
      std::vector<U> in =
          proc.recv<std::vector<U>>(topo.hw_of(partner), tag);
      SKIL_ASSERT(in.size() == khi - klo,
                  "allreduce_elems: partner segment size mismatch");
      for (std::size_t j = 0; j < in.size(); ++j)
        local[klo + j] = lower ? elem_op(local[klo + j], in[j])
                               : elem_op(in[j], local[klo + j]);
      proc.charge_elems(kind, in.size());
      coll_detail::note_steps(proc, CollOp::kAllreduce);
    }
    // Recursive doubling allgather, reversing the halving walk.
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = me ^ mask;
      const int have_lo = (me / mask) * mask;
      const int partner_lo = (partner / mask) * mask;
      const std::size_t olo = b(have_lo), ohi = b(have_lo + mask);
      const std::size_t ilo = b(partner_lo);
      std::vector<U> out(local.begin() + static_cast<std::ptrdiff_t>(olo),
                         local.begin() + static_cast<std::ptrdiff_t>(ohi));
      coll_detail::coll_send<std::vector<U>>(proc, topo, CollOp::kAllreduce,
                                             topo.hw_of(partner), tag + 1,
                                             std::move(out));
      std::vector<U> in =
          proc.recv<std::vector<U>>(topo.hw_of(partner), tag + 1);
      std::copy(in.begin(), in.end(),
                local.begin() + static_cast<std::ptrdiff_t>(ilo));
      coll_detail::note_steps(proc, CollOp::kAllreduce);
    }
    return local;
  }

  // Tree: binomial reduce of whole vectors onto vrank 0, broadcast
  // back.  The vector combine charges one op per element, exactly
  // like the segmented algorithms do in total.
  const auto vec_op = [&](std::vector<U> a, std::vector<U> b) {
    SKIL_ASSERT(a.size() == b.size(),
                "allreduce_elems: contribution length mismatch");
    for (std::size_t j = 0; j < a.size(); ++j)
      a[j] = elem_op(a[j], b[j]);
    proc.charge_elems(kind, a.size());
    return a;
  };
  const int root_hw = topo.hw_of(0);
  std::vector<U> result = coll_detail::reduce_tree(
      proc, topo, root_hw, std::move(local), vec_op, CollOp::kAllreduce);
  coll_detail::broadcast_tree(proc, topo, root_hw, result,
                              CollOp::kAllreduce);
  return result;
}

/// Inclusive prefix combination over virtual-rank order
/// (Hillis-Steele recursive doubling).  `op` must be associative.
template <class T, class BinOp>
T scan_inclusive(Proc& proc, const Topology& topo, T local, BinOp op) {
  const TraceSpan span(proc, "scan_inclusive");
  const long tag = topo.fresh_tag(proc);
  const int p = topo.nprocs();
  const int rel = topo.vrank_of(proc.id());
  T acc = std::move(local);
  int step = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++step) {
    if (rel + mask < p) proc.send<T>(topo.hw_of(rel + mask), tag + step, acc);
    if (rel >= mask) {
      T left = proc.recv<T>(topo.hw_of(rel - mask), tag + step);
      acc = op(std::move(left), std::move(acc));
    }
  }
  return acc;
}

/// Gathers one value per processor onto `root_hw` in virtual-rank
/// order.  The root returns the full vector; others return empty.
template <class T>
std::vector<T> gather(Proc& proc, const Topology& topo, int root_hw, T local) {
  const TraceSpan span(proc, "gather");
  const long tag = topo.fresh_tag(proc);
  const int p = topo.nprocs();
  if (proc.id() != root_hw) {
    proc.send<T>(root_hw, tag, std::move(local));
    return {};
  }
  std::vector<T> all;
  all.reserve(p);
  for (int vrank = 0; vrank < p; ++vrank) {
    const int hw = topo.hw_of(vrank);
    if (hw == root_hw)
      all.push_back(local);
    else
      all.push_back(proc.recv<T>(hw, tag));
  }
  return all;
}

/// Allgather: every processor ends with all contributions in
/// virtual-rank order.  Tree mode reproduces the seed gather+broadcast
/// exactly; the ring and Bruck dissemination variants avoid the
/// root-serialized gather entirely.
template <class T>
std::vector<T> allgather(Proc& proc, const Topology& topo, T local) {
  const TraceSpan span(proc, "allgather");
  const CollAlgo algo = coll_detail::pick_allgather<T>(proc, topo);
  coll_detail::note_call(proc, CollOp::kAllgather, algo);
  if constexpr (std::is_copy_constructible_v<T>) {
    if (algo == CollAlgo::kRing)
      return coll_detail::allgather_ring(proc, topo, std::move(local),
                                         CollOp::kAllgather);
    if (algo == CollAlgo::kRecDouble)
      return coll_detail::allgather_bruck(proc, topo, std::move(local),
                                          CollOp::kAllgather);
  }
  const int root_hw = topo.hw_of(0);
  std::vector<T> all = gather(proc, topo, root_hw, std::move(local));
  broadcast(proc, topo, root_hw, all);
  return all;
}

/// Personalised all-to-all: `outgoing[vrank]` is delivered to the
/// processor with that virtual rank; returns the vector received, with
/// `incoming[vrank]` coming from that virtual rank.
template <class T>
std::vector<T> all_to_all(Proc& proc, const Topology& topo,
                          std::vector<T> outgoing) {
  const TraceSpan span(proc, "all_to_all");
  const long tag = topo.fresh_tag(proc);
  const int p = topo.nprocs();
  SKIL_REQUIRE(static_cast<int>(outgoing.size()) == p,
               "all_to_all: need one payload per processor");
  const int self = topo.vrank_of(proc.id());
  for (int vrank = 0; vrank < p; ++vrank)
    if (vrank != self)
      proc.send<T>(topo.hw_of(vrank), tag, std::move(outgoing[vrank]));
  std::vector<T> incoming(p);
  incoming[self] = std::move(outgoing[self]);
  for (int vrank = 0; vrank < p; ++vrank)
    if (vrank != self) incoming[vrank] = proc.recv<T>(topo.hw_of(vrank), tag);
  return incoming;
}

/// Barrier: all processors synchronise; every virtual clock advances to
/// (at least) the time the slowest processor reached the barrier.
/// Every allreduce family synchronises transitively (each processor's
/// result causally depends on all contributions), so the barrier
/// property holds in every SKIL_COLL mode.
inline void barrier(Proc& proc, const Topology& topo) {
  allreduce<char>(proc, topo, 0, [](char a, char) { return a; });
}

/// Rotates a payload one step around the processors' torus row
/// (dcol = +1 sends to the right neighbour) or column.  Every processor
/// sends its payload and receives its new one; used by array_gen_mult's
/// Gentleman rotations.
template <class T>
T torus_rotate(Proc& proc, const Topology& topo, T payload, int drow,
               int dcol) {
  const TraceSpan span(proc, "torus_rotate");
  const long tag = topo.fresh_tag(proc);
  const int dst = topo.torus_neighbor(proc.id(), drow, dcol);
  const int src = topo.torus_neighbor(proc.id(), -drow, -dcol);
  if (dst == proc.id()) return payload;  // single-processor row/column
  proc.send<T>(dst, tag, std::move(payload));
  return proc.recv<T>(src, tag);
}

/// Ring shift by one position in virtual-rank order.
template <class T>
T ring_shift(Proc& proc, const Topology& topo, T payload) {
  const TraceSpan span(proc, "ring_shift");
  const long tag = topo.fresh_tag(proc);
  const int dst = topo.ring_next(proc.id());
  const int src = topo.ring_prev(proc.id());
  if (dst == proc.id()) return payload;
  proc.send<T>(dst, tag, std::move(payload));
  return proc.recv<T>(src, tag);
}

}  // namespace skil::parix
