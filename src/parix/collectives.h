// Collective operations over a virtual topology.
//
// These are the building blocks the paper's skeletons use internally:
// array_fold folds partition results "along the edges of a virtual tree
// topology, with the result finally collected at the root" and then
// broadcast back; array_broadcast_part broadcasts one partition along
// the same tree; array_gen_mult rotates partitions around torus rows
// and columns.
//
// All collectives are SPMD: every processor of the machine must call
// them in the same order.  Each invocation draws one fresh tag (every
// processor draws the same one) and derives per-step sub-tags from it.
// Trees are binomial trees over *virtual* ranks, so the underlying hop
// costs honour the topology embedding.
#pragma once

#include <utility>
#include <vector>

#include "parix/proc.h"
#include "parix/topology.h"

namespace skil::parix {

/// Broadcasts `value` from the processor `root_hw` to all processors
/// along a binomial tree; on return every processor holds the value.
template <class T>
void broadcast(Proc& proc, const Topology& topo, int root_hw, T& value) {
  const TraceSpan span(proc, "broadcast");
  const long tag = proc.fresh_tag();
  const int p = topo.nprocs();
  const int vroot = topo.vrank_of(root_hw);
  const int rel = (topo.vrank_of(proc.id()) - vroot + p) % p;
  auto hw_rel = [&](int r) { return topo.hw_of((r + vroot) % p); };

  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      value = proc.recv<T>(hw_rel(rel - mask), tag);
      break;
    }
    mask <<= 1;
  }
  // After the loop, mask is the receiver's lowest set bit (or the first
  // power of two >= p at the root); children sit at rel + mask/2^k.
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) proc.send<T>(hw_rel(rel + mask), tag, value);
    mask >>= 1;
  }
}

/// Reduces the `local` contributions with `op` onto `root_hw` along a
/// binomial tree.  Only the root's return value is meaningful; other
/// processors return their partial accumulation.
template <class T, class BinOp>
T reduce(Proc& proc, const Topology& topo, int root_hw, T local, BinOp op) {
  const TraceSpan span(proc, "reduce");
  const long tag = proc.fresh_tag();
  const int p = topo.nprocs();
  const int vroot = topo.vrank_of(root_hw);
  const int rel = (topo.vrank_of(proc.id()) - vroot + p) % p;
  auto hw_rel = [&](int r) { return topo.hw_of((r + vroot) % p); };

  for (int mask = 1; mask < p; mask <<= 1) {
    if (rel & mask) {
      proc.send<T>(hw_rel(rel - mask), tag, std::move(local));
      return local;
    }
    if (rel + mask < p) {
      T incoming = proc.recv<T>(hw_rel(rel + mask), tag);
      local = op(std::move(local), std::move(incoming));
    }
  }
  return local;
}

/// Reduce-to-root followed by broadcast: the paper's array_fold
/// communication pattern.  Every processor returns the full result.
template <class T, class BinOp>
T allreduce(Proc& proc, const Topology& topo, T local, BinOp op) {
  const TraceSpan span(proc, "allreduce");
  const int root_hw = topo.hw_of(0);
  T result = reduce(proc, topo, root_hw, std::move(local), op);
  broadcast(proc, topo, root_hw, result);
  return result;
}

/// Inclusive prefix combination over virtual-rank order
/// (Hillis-Steele recursive doubling).  `op` must be associative.
template <class T, class BinOp>
T scan_inclusive(Proc& proc, const Topology& topo, T local, BinOp op) {
  const TraceSpan span(proc, "scan_inclusive");
  const long tag = proc.fresh_tag();
  const int p = topo.nprocs();
  const int rel = topo.vrank_of(proc.id());
  T acc = std::move(local);
  int step = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++step) {
    if (rel + mask < p) proc.send<T>(topo.hw_of(rel + mask), tag + step, acc);
    if (rel >= mask) {
      T left = proc.recv<T>(topo.hw_of(rel - mask), tag + step);
      acc = op(std::move(left), std::move(acc));
    }
  }
  return acc;
}

/// Gathers one value per processor onto `root_hw` in virtual-rank
/// order.  The root returns the full vector; others return empty.
template <class T>
std::vector<T> gather(Proc& proc, const Topology& topo, int root_hw, T local) {
  const TraceSpan span(proc, "gather");
  const long tag = proc.fresh_tag();
  const int p = topo.nprocs();
  if (proc.id() != root_hw) {
    proc.send<T>(root_hw, tag, std::move(local));
    return {};
  }
  std::vector<T> all;
  all.reserve(p);
  for (int vrank = 0; vrank < p; ++vrank) {
    const int hw = topo.hw_of(vrank);
    if (hw == root_hw)
      all.push_back(local);
    else
      all.push_back(proc.recv<T>(hw, tag));
  }
  return all;
}

/// Gather followed by broadcast of the gathered vector.
template <class T>
std::vector<T> allgather(Proc& proc, const Topology& topo, T local) {
  const TraceSpan span(proc, "allgather");
  const int root_hw = topo.hw_of(0);
  std::vector<T> all = gather(proc, topo, root_hw, std::move(local));
  broadcast(proc, topo, root_hw, all);
  return all;
}

/// Personalised all-to-all: `outgoing[vrank]` is delivered to the
/// processor with that virtual rank; returns the vector received, with
/// `incoming[vrank]` coming from that virtual rank.
template <class T>
std::vector<T> all_to_all(Proc& proc, const Topology& topo,
                          std::vector<T> outgoing) {
  const TraceSpan span(proc, "all_to_all");
  const long tag = proc.fresh_tag();
  const int p = topo.nprocs();
  SKIL_REQUIRE(static_cast<int>(outgoing.size()) == p,
               "all_to_all: need one payload per processor");
  const int self = topo.vrank_of(proc.id());
  for (int vrank = 0; vrank < p; ++vrank)
    if (vrank != self)
      proc.send<T>(topo.hw_of(vrank), tag, std::move(outgoing[vrank]));
  std::vector<T> incoming(p);
  incoming[self] = std::move(outgoing[self]);
  for (int vrank = 0; vrank < p; ++vrank)
    if (vrank != self) incoming[vrank] = proc.recv<T>(topo.hw_of(vrank), tag);
  return incoming;
}

/// Barrier: all processors synchronise; every virtual clock advances to
/// (at least) the time the slowest processor reached the barrier.
inline void barrier(Proc& proc, const Topology& topo) {
  allreduce<char>(proc, topo, 0, [](char a, char) { return a; });
}

/// Rotates a payload one step around the processors' torus row
/// (dcol = +1 sends to the right neighbour) or column.  Every processor
/// sends its payload and receives its new one; used by array_gen_mult's
/// Gentleman rotations.
template <class T>
T torus_rotate(Proc& proc, const Topology& topo, T payload, int drow,
               int dcol) {
  const TraceSpan span(proc, "torus_rotate");
  const long tag = proc.fresh_tag();
  const int dst = topo.torus_neighbor(proc.id(), drow, dcol);
  const int src = topo.torus_neighbor(proc.id(), -drow, -dcol);
  if (dst == proc.id()) return payload;  // single-processor row/column
  proc.send<T>(dst, tag, std::move(payload));
  return proc.recv<T>(src, tag);
}

/// Ring shift by one position in virtual-rank order.
template <class T>
T ring_shift(Proc& proc, const Topology& topo, T payload) {
  const TraceSpan span(proc, "ring_shift");
  const long tag = proc.fresh_tag();
  const int dst = topo.ring_next(proc.id());
  const int src = topo.ring_prev(proc.id());
  if (dst == proc.id()) return payload;
  proc.send<T>(dst, tag, std::move(payload));
  return proc.recv<T>(src, tag);
}

}  // namespace skil::parix
