// Virtual-time cost model for the Parix-like runtime.
//
// The paper's measurements were taken on a Parsytec MC with 64 T800
// transputers (20 MHz, ~10 MIPS integer, on-chip FPU, 1 MB per node)
// connected as a 2-D mesh and running the Parix operating system
// (20 Mbit/s links, high software message startup).  The reproduction
// executes real SPMD code on host threads but *times* it with this
// deterministic model: each processor accumulates virtual microseconds
// from the operations it actually performs, and message timestamps carry
// transfer costs.  Total program time is the maximum virtual time over
// all processors.
//
// Determinism: virtual time depends only on operation counts and on the
// (structurally determined) communication pattern, never on host thread
// scheduling, so every run of a given program reproduces identical
// timings.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace skil::parix {

/// Abstract operation kinds charged by programs and skeletons.
/// The three language baselines differ in *which* operations they
/// perform per element (see DESIGN.md section 2): hand-written C charges
/// plain element ops; Skil's instantiated skeletons add one first-order
/// call per functional-argument application; the DPFL baseline adds
/// closure (indirect) calls, heap allocations for boxing/cons cells and
/// copies for immutable updates.
enum class Op : int {
  kIntOp = 0,      ///< integer load/op/store on an array element
  kFloatOp,        ///< floating-point element operation
  kCall,           ///< first-order function call (instantiated skeleton arg)
  kIndirectCall,   ///< call through a closure / function pointer
  kAlloc,          ///< heap allocation (box, cons cell, array copy header)
  kCopyWord,       ///< copy of one machine word (immutable-update traffic)
  kCount_          ///< number of kinds (internal)
};

inline constexpr int kOpKinds = static_cast<int>(Op::kCount_);

/// How a send interacts with the sender's virtual clock.
enum class SendMode {
  kAsync,  ///< sender pays startup only; transfer overlaps computation
  kSync,   ///< sender blocks until the message is delivered (old Parix-C)
};

/// Calibrated unit costs in microseconds.  See DESIGN.md section 5 for
/// the calibration rationale against the 20 MHz T800 + Parix links.
struct CostModel {
  /// One integer element operation through the array-access macros
  /// (load + op + store + index arithmetic): ~130 cycles of 1996
  /// compiler output on the 20 MHz T800.  This constant anchors the
  /// absolute scale: with it, the model reproduces the paper's
  /// absolute seconds within ~15% (e.g. 237s modeled vs 234.29s
  /// reported for shortest paths on 2x2, Table 1).
  double int_op_us = 6.5;
  double float_op_us = 9.0;
  /// Residual per-application overhead of an *instantiated* (inlined)
  /// functional argument: the paper's translation inlines skeleton
  /// arguments, so what remains versus hand-written C is only extra
  /// index arithmetic and weaker register allocation -- a fraction of
  /// a true call.
  double call_us = 0.9;
  /// One application through the lazy graph reducer's apply machinery
  /// (argument check, node update, indirect jump) -- tens of
  /// instructions on a cache-less 20 MHz machine.
  double indirect_call_us = 34.0;
  /// One reduction-graph node / heap cell: a nursery bump allocation
  /// plus amortised garbage collection.
  double alloc_us = 6.0;
  double copy_word_us = 0.6;

  double msg_startup_us = 400.0;   ///< Parix sender-side software setup
  double msg_per_byte_us = 0.7;    ///< ~1.4 MB/s effective link bandwidth
  /// Software forwarding cost per intermediate hop.  The T800 had no
  /// routing hardware: Parix forwarded messages through intermediate
  /// processors in software, so every extra hop repeats the per-byte
  /// transfer (see transfer_us) plus this handling cost.  This is why
  /// the paper's virtual topologies (which keep neighbours close) pay
  /// off, and what the old C version of Table 1 lost.
  double msg_per_hop_us = 200.0;
  double recv_overhead_us = 200.0; ///< receiver-side software overhead

  SendMode default_send_mode = SendMode::kAsync;

  /// Cost per operation kind.  This sits on the charging hot path (one
  /// call per skeleton loop and per element access), so it must not
  /// materialise a lookup table per call.
  double unit(Op kind) const {
    switch (kind) {
      case Op::kIntOp: return int_op_us;
      case Op::kFloatOp: return float_op_us;
      case Op::kCall: return call_us;
      case Op::kIndirectCall: return indirect_call_us;
      case Op::kAlloc: return alloc_us;
      case Op::kCopyWord: return copy_word_us;
      case Op::kCount_: break;
    }
    return 0.0;
  }

  /// Wire time of one message of `bytes` payload over `hops` mesh
  /// links: store-and-forward, so the byte cost repeats per hop and
  /// each intermediate processor adds software handling time.
  double transfer_us(std::size_t bytes, int hops) const {
    const int eff_hops = hops > 1 ? hops : 1;
    return msg_startup_us +
           msg_per_byte_us * static_cast<double>(bytes) * eff_hops +
           msg_per_hop_us * static_cast<double>(eff_hops - 1);
  }

  /// Default model: the paper's machine with Parix asynchronous links
  /// and virtual topologies available (the configuration Skil uses).
  static CostModel t800();

  /// The "older C version" configuration of paper section 5.1: no
  /// virtual topologies (callers must use Distr::kDefault) and
  /// synchronous communication.
  static CostModel t800_sync();
};

/// Per-processor operation statistics (also aggregated per run).
struct Stats {
  std::array<std::uint64_t, kOpKinds> ops{};
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  double compute_us = 0.0;  ///< virtual time spent in charged computation
  double comm_us = 0.0;     ///< virtual time spent in communication

  Stats& operator+=(const Stats& other);

  /// Bitwise comparison (the differential engine tests assert that the
  /// two execution engines produce identical accounting).
  bool operator==(const Stats&) const = default;
};

}  // namespace skil::parix
