#include "parix/proc.h"

#include "parix/executor.h"

namespace skil::parix {

void Proc::settle_pending() {
  // The gang hook parks the calling fiber and lets a carrier settle
  // several processors' ledgers in one fused batch; outside the pooled
  // engine (or when it declines -- one carrier, or a ledger too small
  // to be worth two context switches) the scalar settle runs inline.
  // Either way the addends fold in append order, so the clock cannot
  // tell the difference.
  if (executor_gang_settle(*this)) return;
  ledger_.settle(vtime_, stats_);
}

}  // namespace skil::parix
