#include "parix/proc.h"

#include "parix/executor.h"

namespace skil::parix {

namespace {

/// Zero-virtual-width span marking which settlement path retired the
/// ledger and how many chain adds it held (full trace mode only, so
/// Perfetto timelines show the path per batch without perturbing the
/// spans-mode skeleton summaries).  Settlement already observed the
/// clock, so this records at the settled vtime and cannot trigger a
/// recursive settle.
void trace_settle(ProcTrace* trace, double vtime, const char* path,
                  std::uint64_t pending) {
  if (trace != nullptr && trace->full()) [[unlikely]] {
    trace->span_begin(vtime, path, static_cast<std::int64_t>(pending));
    trace->span_end(vtime);
  }
}

}  // namespace

void Proc::settle_pending() {
  const std::uint64_t pending = ledger_.pending_adds();
  switch (settle_mode_) {
    case SettleMode::kGang:
      // PR 4 behaviour: the gang hook parks the calling fiber and lets
      // a carrier settle several processors' ledgers in one fused
      // batch; outside the pooled engine (or when it declines -- one
      // carrier, or a ledger too small to be worth two context
      // switches) the scalar settle runs inline.  Either way the
      // addends fold in append order, so the clock cannot tell the
      // difference.
      if (executor_gang_settle(*this)) {
        trace_settle(trace_, vtime_, "settle gang", pending);
        return;
      }
      ledger_.settle(vtime_, stats_);
      trace_settle(trace_, vtime_, "settle inline", pending);
      return;
    case SettleMode::kClosed:
      ledger_.settle_algebraic(vtime_, stats_);
      trace_settle(trace_, vtime_, "settle closed", pending);
      return;
    case SettleMode::kAuto:
      // Closed-form settlement beats the gang kernel wherever the ulp
      // walk applies, so the gang is worth a park only when the
      // ledger's chain-bound residue alone crosses the batching
      // threshold: settle the walkable prefix algebraically, then
      // offer the rest.  (Both paths walk the records in append
      // order; splitting the ledger between them cannot move the
      // clock.)
      if (ledger_.pending_chain_adds() >= kSettleChainParkThreshold) {
        ledger_.settle_algebraic_prefix(vtime_, stats_);
        if (!ledger_.empty() && executor_gang_settle(*this)) {
          note_gang_park();
          trace_settle(trace_, vtime_, "settle gang", pending);
          return;
        }
      }
      ledger_.settle_algebraic(vtime_, stats_);
      trace_settle(trace_, vtime_, "settle closed", pending);
      return;
  }
}

}  // namespace skil::parix
