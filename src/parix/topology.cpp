#include "parix/topology.h"

#include "parix/proc.h"
#include "support/error.h"

namespace skil::parix {

const char* distr_name(Distr d) {
  switch (d) {
    case Distr::kDefault:
      return "DISTR_DEFAULT";
    case Distr::kRing:
      return "DISTR_RING";
    case Distr::kTorus2D:
      return "DISTR_TORUS2D";
    case Distr::kHypercube:
      return "DISTR_HYPERCUBE";
  }
  return "?";
}

namespace {

/// Folded linear embedding: virtual index i in [0, n) is placed at
/// physical position 0,2,4,...,5,3,1 so that consecutive virtual
/// indices (including the n-1 -> 0 wrap) are at most 2 apart.
int folded_position(int i, int n) {
  const int half = (n + 1) / 2;
  return i < half ? 2 * i : 2 * (n - 1 - i) + 1;
}

/// Binary-reflected Gray code.
unsigned gray(unsigned x) { return x ^ (x >> 1); }

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

Topology::Topology(const Machine& machine, Distr kind)
    : machine_(&machine), kind_(kind), nprocs_(machine.nprocs()),
      vrank_of_(nprocs_), hw_of_(nprocs_) {
  const MeshShape mesh = machine.shape();
  grid_rows_ = mesh.rows;
  grid_cols_ = mesh.cols;

  switch (kind_) {
    case Distr::kDefault: {
      for (int p = 0; p < nprocs_; ++p) {
        vrank_of_[p] = p;
        hw_of_[p] = p;
      }
      break;
    }
    case Distr::kRing: {
      // Boustrophedon walk: even mesh rows left-to-right, odd rows
      // right-to-left; successive virtual ranks are physical
      // neighbours everywhere except the single wrap edge.
      for (int r = 0; r < mesh.rows; ++r)
        for (int c = 0; c < mesh.cols; ++c) {
          const int hw = r * mesh.cols + c;
          const int pos = r * mesh.cols + (r % 2 == 0 ? c : mesh.cols - 1 - c);
          vrank_of_[hw] = pos;
          hw_of_[pos] = hw;
        }
      break;
    }
    case Distr::kTorus2D: {
      // Fold both grid dimensions: every torus link (including the
      // wrap-around ones) has dilation at most 2 on the mesh.
      for (int vr = 0; vr < mesh.rows; ++vr)
        for (int vc = 0; vc < mesh.cols; ++vc) {
          const int hw = folded_position(vr, mesh.rows) * mesh.cols +
                         folded_position(vc, mesh.cols);
          const int vrank = vr * mesh.cols + vc;
          vrank_of_[hw] = vrank;
          hw_of_[vrank] = hw;
        }
      break;
    }
    case Distr::kHypercube: {
      SKIL_REQUIRE(is_power_of_two(nprocs_),
                   "hypercube topology needs a power-of-two processor count");
      while ((1 << cube_dims_) < nprocs_) ++cube_dims_;
      // The processor at snake position s carries hypercube rank
      // gray(s); Gray-code neighbours are then mesh-adjacent along the
      // snake for one of their dimensions.
      std::vector<int> snake(nprocs_);
      for (int r = 0; r < mesh.rows; ++r)
        for (int c = 0; c < mesh.cols; ++c)
          snake[r * mesh.cols + (r % 2 == 0 ? c : mesh.cols - 1 - c)] =
              r * mesh.cols + c;
      for (int s = 0; s < nprocs_; ++s) {
        const int hw = snake[s];
        const int vrank = static_cast<int>(gray(static_cast<unsigned>(s)));
        vrank_of_[hw] = vrank;
        hw_of_[vrank] = hw;
      }
      break;
    }
  }
}

int Topology::ring_next(int hw) const {
  return hw_of_[(vrank_of_[hw] + 1) % nprocs_];
}

int Topology::ring_prev(int hw) const {
  return hw_of_[(vrank_of_[hw] + nprocs_ - 1) % nprocs_];
}

int Topology::at_grid(int row, int col) const {
  const int r = ((row % grid_rows_) + grid_rows_) % grid_rows_;
  const int c = ((col % grid_cols_) + grid_cols_) % grid_cols_;
  return hw_of_[r * grid_cols_ + c];
}

int Topology::torus_neighbor(int hw, int drow, int dcol) const {
  return at_grid(grid_row(hw) + drow, grid_col(hw) + dcol);
}

int Topology::cube_neighbor(int hw, int dim) const {
  SKIL_REQUIRE(kind_ == Distr::kHypercube,
               "cube_neighbor requires a hypercube topology");
  SKIL_REQUIRE(dim >= 0 && dim < cube_dims_, "cube dimension out of range");
  return hw_of_[vrank_of_[hw] ^ (1 << dim)];
}

Topology Topology::split_rows(int hw) const {
  SKIL_REQUIRE(!is_subgroup(), "split_rows: cannot split a sub-communicator");
  SKIL_REQUIRE(hw >= 0 && hw < static_cast<int>(vrank_of_.size()),
               "split_rows: processor out of range");
  const int row = grid_row(hw);
  Topology sub;
  sub.machine_ = machine_;
  sub.kind_ = kind_;
  sub.nprocs_ = grid_cols_;
  sub.grid_rows_ = 1;
  sub.grid_cols_ = grid_cols_;
  sub.comm_id_ = 1 + row;
  sub.vrank_of_.assign(machine_->nprocs(), -1);
  sub.hw_of_.resize(grid_cols_);
  for (int c = 0; c < grid_cols_; ++c) {
    const int member = at_grid(row, c);
    sub.vrank_of_[member] = c;
    sub.hw_of_[c] = member;
  }
  return sub;
}

Topology Topology::split_cols(int hw) const {
  SKIL_REQUIRE(!is_subgroup(), "split_cols: cannot split a sub-communicator");
  SKIL_REQUIRE(hw >= 0 && hw < static_cast<int>(vrank_of_.size()),
               "split_cols: processor out of range");
  const int col = grid_col(hw);
  Topology sub;
  sub.machine_ = machine_;
  sub.kind_ = kind_;
  sub.nprocs_ = grid_rows_;
  sub.grid_rows_ = grid_rows_;
  sub.grid_cols_ = 1;
  sub.comm_id_ = 1 + grid_rows_ + col;
  sub.vrank_of_.assign(machine_->nprocs(), -1);
  sub.hw_of_.resize(grid_rows_);
  for (int r = 0; r < grid_rows_; ++r) {
    const int member = at_grid(r, col);
    sub.vrank_of_[member] = r;
    sub.hw_of_[r] = member;
  }
  return sub;
}

long Topology::fresh_tag(Proc& proc) const { return proc.fresh_tag(comm_id_); }

}  // namespace skil::parix
