// Text dashboard for the SKIL_PROF scheduler report.
//
// Renders the `scheduler` object of a metrics JSON file (plus the
// `settlement` object when present) as the skil-prof CLI's dashboard:
// per-carrier utilization, steal success rate, settlement coverage,
// pool hit rate and the widest gang batches.  The output is fully
// deterministic for a given input -- tests pin it byte-exactly
// against a fixture.
#pragma once

#include <ostream>

#include "support/json.h"

namespace skil::parix {

/// Renders the dashboard; throws ContractError when `metrics` carries
/// no scheduler object (the run was SKIL_PROF=off).  `top_n` bounds
/// the widest-gang-batches list.
void render_prof_report(const support::json::Value& metrics,
                        std::ostream& out, int top_n = 3);

}  // namespace skil::parix
