// Charge-tape specialization of the virtual-clock hot loops.
//
// The hot loops of the skeleton baselines charge a fixed sequence of
// operations per element (e.g. DPFL's boxed get_elem charges four ops
// per access, eleven per active elimination element).  Each charge is
// a dependent floating-point add into the processor's clock, and that
// chain order *is* the scientific artefact: FP addition does not
// reassociate, so the addends cannot be batched or reordered without
// moving golden values by rounding (DESIGN.md section 8).
//
// What CAN go is everything around the chain: closure dispatch, boxed
// element models, per-access geometry checks and per-charge stats
// bookkeeping.  A ChargeTape records one element's exact addend
// sequence (op kinds and counts, in program order); Proc::replay then
// re-executes that sequence `times` times as a tight flat loop over
// precomputed addends -- same multiplies, same adds, same order, so
// the clock lands on bit-identical values -- and books the per-op
// counts as one batched integer update per tape entry.
//
// Building tapes reuses the same charge-helper functions the
// interpretive path calls (they are templated over a "charge sink":
// a Proc or a ChargeTape), so the two paths cannot drift apart
// silently; tests/test_parix_charge_tape.cpp additionally pins them
// bit-for-bit against each other on every golden cell.
//
// The interpretive path stays compiled in as a differential oracle:
// SKIL_CHARGE=interp|tape (or set_default_charge_path) selects which
// one the applications' hot loops take.
//
// Since PR 6 settlement itself has three strategies
// (SKIL_SETTLE=gang|closed|auto, DESIGN.md section 12):
//
//  * gang   -- the PR 4 behaviour: park fibers and retire several
//              processors' chains in one fused SIMD batch, scalar
//              inline settle otherwise.  Every chain add executes.
//  * closed -- algebraic settlement: a replay record's per-period
//              clock delta, measured in ulps of the clock's current
//              binade, is a function of the clock's ulp *parity* only
//              (round-half-even is the sole data dependence), so one
//              probed period per (tape, binade, parity) lets the
//              remaining periods retire in exact integer arithmetic --
//              bit-identical by construction, without executing the
//              adds.  A cross-replay memo caches the probed deltas per
//              (tape identity, unit table, binade), so the sweep's
//              repeated replays settle as O(1) cached walks.
//  * auto   -- algebraic settlement inline, escalating to a gang park
//              only when the ledger's non-walkable (chain-bound)
//              residue alone crosses the gang batching threshold.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "parix/cost_model.h"

namespace skil::parix {

/// Which accounting path the skeleton/application hot loops take.
enum class ChargePath {
  kInterp,  ///< per-element charge() calls through the interpretive models
  kTape,    ///< recorded addend sequence replayed by Proc::replay
};

/// Process-wide default charge path: kTape, overridable with the
/// SKIL_CHARGE environment variable ("interp" / "tape") or
/// set_default_charge_path.  Unknown SKIL_CHARGE values fail loudly.
ChargePath default_charge_path();
void set_default_charge_path(ChargePath path);

/// Strict switch parsers (shared by the environment readers and unit
/// tests): unknown names raise ContractError listing the accepted
/// values instead of silently falling back to a default.
ChargePath parse_charge_path(std::string_view name);

/// How ChargeLedger settlement retires the dependent FP-add chain.
enum class SettleMode {
  kGang,    ///< PR 4: fused multi-lane SIMD batches, scalar inline otherwise
  kClosed,  ///< algebraic run settlement + cross-replay memo, always inline
  kAuto,    ///< algebraic inline; gang park for chain-bound residues
};

/// Process-wide default settlement mode: kAuto, overridable with the
/// SKIL_SETTLE environment variable ("gang" / "closed" / "auto") or
/// set_default_settle_mode.  Unknown SKIL_SETTLE values fail loudly.
SettleMode default_settle_mode();
void set_default_settle_mode(SettleMode mode);
SettleMode parse_settle_mode(std::string_view name);
std::string_view settle_mode_name(SettleMode mode);

/// In kAuto, a ledger whose *chain-bound* pending adds (records the
/// algebraic engine will not walk closed-form) reach this threshold is
/// offered to the gang scheduler after its walkable prefix settles
/// algebraically.  Matches the gang scheduler's own batching
/// threshold (executor.cpp kGangMinPendingAdds).
inline constexpr std::uint64_t kSettleChainParkThreshold = 2048;

/// Whether skeleton compositions may run fused (DESIGN.md section 13).
///
///  * off -- every skeleton invocation executes exactly as in PR 6:
///           its own pass, its own tape, its own collective round.
///           Virtual times stay bit-identical to the seed goldens.
///  * on  -- adjacent compositions the apps/combinators recognise
///           (copy|map, map|map, map|fold, scan|fold, map|broadcast,
///           create|gen_mult) collapse into one pass with one tape and
///           one collective round.  Array *results* stay bit-identical
///           (asserted differentially); virtual times are legitimately
///           lower -- the cost model rewarding fewer passes and
///           synchronizations, which is the paper's whole argument for
///           skeletons knowing more than their parts.
enum class FuseMode {
  kOff,  ///< PR 6 behaviour; the golden-sweep default
  kOn,   ///< fused taped variants where a composition is provably safe
};

/// Process-wide default fuse mode: kOff, overridable with the
/// SKIL_FUSE environment variable ("off" / "on") or
/// set_default_fuse_mode.  Unknown SKIL_FUSE values fail loudly.
FuseMode default_fuse_mode();
void set_default_fuse_mode(FuseMode mode);
FuseMode parse_fuse_mode(std::string_view name);
std::string_view fuse_mode_name(FuseMode mode);

/// Reasons a composition that *could* have fused ran unfused instead.
/// Counted per occurrence so a fused-mode run accounts for every
/// composition it saw, not just the ones it accelerated.
enum class FusionReject {
  kShape,  ///< runtime shape forbids it (e.g. a pivot step permutes rows,
           ///< so the in-place fused elimination would read moved data)
  kOrder,  ///< the combine is not order-exact (FP fold through a different
           ///< merge order would move result bits; ints/min/max are exact)
  kPath,   ///< the interpretive charge path is active (fused variants are
           ///< taped; SKIL_CHARGE=interp keeps the oracle unfused)
};

/// Cumulative fusion counters (process-wide), mirroring SettleCounters:
/// how many fusible compositions the fused paths saw, how many actually
/// fused, how many were rejected (by reason), and what the fused forms
/// eliminated -- whole tape passes and collective barrier rounds.
/// All zero under SKIL_FUSE=off (the off path never consults them), so
/// a differential test can assert the fused path really engaged.
struct FusionCounters {
  std::uint64_t seen = 0;
  std::uint64_t fused = 0;
  std::uint64_t rejected_shape = 0;
  std::uint64_t rejected_order = 0;
  std::uint64_t rejected_path = 0;
  std::uint64_t barriers_eliminated = 0;
  std::uint64_t tapes_eliminated = 0;

  std::uint64_t rejected() const {
    return rejected_shape + rejected_order + rejected_path;
  }
};
FusionCounters fusion_counters();

/// Notes one composition that fused, eliminating `barriers` collective
/// rounds and `tapes` whole tape/charge passes.  Increments seen too.
void note_fusion_fused(std::uint64_t barriers = 0, std::uint64_t tapes = 1);
/// Notes one composition that was recognised but ran unfused.
void note_fusion_rejected(FusionReject reason);

/// One element's recorded charge sequence: op kinds and counts in the
/// exact order the interpretive path would charge them.
///
/// Tapes carry a process-unique identity (`id()`): because a tape is
/// append-only, (id, entry count) names one immutable entry prefix for
/// the lifetime of the process, which is what the settlement memo
/// (DESIGN.md section 12) keys its cached period deltas on.  Copies
/// get a *fresh* id -- two tapes that share an id must never be able
/// to diverge in content -- and moving transfers the id while the
/// moved-from tape is re-armed with a fresh one.
class ChargeTape {
 public:
  struct Entry {
    Op kind;
    std::uint64_t count;
  };

  ChargeTape() : id_(next_tape_id()) {}
  ChargeTape(const ChargeTape& other)
      : entries_(other.entries_), id_(next_tape_id()) {}
  ChargeTape(ChargeTape&& other) noexcept
      : entries_(std::move(other.entries_)), id_(other.id_) {
    other.entries_.clear();
    other.id_ = next_tape_id();
  }
  ChargeTape& operator=(const ChargeTape& other) {
    entries_ = other.entries_;
    // id_ stays: this tape's content changed, but append_replay reads
    // the id at record time together with the *current* size, and an
    // assignment that shrinks or rewrites entries would break the
    // append-only contract -- so take a fresh identity.
    id_ = next_tape_id();
    return *this;
  }
  ChargeTape& operator=(ChargeTape&& other) noexcept {
    entries_ = std::move(other.entries_);
    id_ = other.id_;
    other.entries_.clear();
    other.id_ = next_tape_id();
    return *this;
  }

  /// Appends one charge to the tape.  Named `charge` so the sink
  /// interface matches Proc and the shared charge helpers (fn.h,
  /// farray.h) can record into a tape exactly what they would charge
  /// to a processor.
  void charge(Op kind, std::uint64_t count = 1) {
    entries_.push_back(Entry{kind, count});
  }

  /// Bulk-charge sink hook, mirroring Proc::charge_elems: one entry
  /// with the multiplied count (the charge_elems identity -- see
  /// proc.h -- makes this arithmetic-identical).
  void charge_elems(Op kind, std::uint64_t elems,
                    std::uint64_t ops_per_elem = 1) {
    charge(kind, elems * ops_per_elem);
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Process-unique tape identity (never 0; 0 marks untaped ledger
  /// records).  See the class comment for the immutability contract.
  std::uint64_t id() const { return id_; }

  /// Upper bound accepted by Proc::replay (hot-loop tapes are at most
  /// ~a dozen entries; the cap keeps replay's addend buffer on the
  /// stack).
  static constexpr std::size_t kMaxEntries = 32;

 private:
  static std::uint64_t next_tape_id();

  std::vector<Entry> entries_;
  std::uint64_t id_;
};

/// Bumps the inline-settle add counter (relaxed; called by
/// ChargeLedger::settle, defined out of line to keep the atomic out of
/// the header).
void note_inline_settle(std::uint64_t adds);

/// Cumulative algebraic-settlement counters (process-wide, relaxed
/// atomics underneath).  `closed_adds` / `memo_adds` are chain adds
/// the walk *skipped* (retired in closed form, the delta freshly
/// probed this settle vs served from the cross-replay memo);
/// `probe_adds` are real adds spent measuring period deltas;
/// `chain_adds` are real adds on records the algebraic engine
/// declined (chain-only flags, tiny repetition counts, binade-
/// boundary periods).  Together with the gang counters they account
/// for every pending chain add, which is how the bench proves its
/// closed-form coverage claim.
struct SettleCounters {
  std::uint64_t closed_runs = 0;     ///< records retired via closed-form walks
  std::uint64_t closed_adds = 0;     ///< adds skipped with freshly probed deltas
  std::uint64_t memo_hits = 0;       ///< memo lookups that found cached deltas
  std::uint64_t memo_misses = 0;     ///< memo lookups that had to initialize
  std::uint64_t memo_adds = 0;       ///< adds skipped with memoized deltas
  std::uint64_t probe_adds = 0;      ///< real adds spent learning period deltas
  std::uint64_t chain_records = 0;   ///< records plain-chained by the engine
  std::uint64_t chain_adds = 0;      ///< real adds plain-chained by the engine
  std::uint64_t gang_parks = 0;      ///< kAuto escalations to the gang kernel
};
SettleCounters settle_counters();

/// Bumps the kAuto-escalation counter (called by Proc::settle_pending
/// when a chain-bound ledger residue parks for the gang kernel).
void note_gang_park();

/// Deferred charge ledger: the queue of replay and bulk-charge records
/// a processor has accumulated but not yet folded into its clock.
///
/// Taped skeleton variants no longer advance the clock eagerly; they
/// append records here and settlement happens lazily at the first
/// point the vtime is observed (send, recv, fold combine, stats read,
/// trace flush -- see Proc::maybe_settle).  Because settlement walks
/// the records strictly in append order and each record replays the
/// exact addend sequence Proc::replay would have executed, *when* the
/// ledger settles cannot move the clock: the dependent FP-add chain is
/// the same adds in the same order, only executed later (this is the
/// interleaved-replay identity of DESIGN.md section 8, applied at the
/// ledger level).
///
/// The ledger owns copies of the tape entries and the precomputed
/// addends (one unit * count multiply per entry, performed at append
/// time exactly as replay performs it), so a recorded tape may die
/// before its settlement.
///
/// Records are consumed from a head cursor rather than cleared
/// wholesale, so the kAuto mode can settle a ledger's walkable prefix
/// algebraically and hand only the chain-bound remainder to the gang
/// scheduler (settle_algebraic_prefix).
class ChargeLedger {
 public:
  /// One deferred replay: `times` repetitions of the `n` entries
  /// starting at `first` in the entry/addend pools.  `tape_id` names
  /// the immutable (tape, n) entry prefix the record replays (0 for
  /// untaped charge records -- those never reach the memo);
  /// `chain_only` marks records whose addends the algebraic engine
  /// must not walk (negative or non-finite -- the ulp model assumes a
  /// monotone non-decreasing chain).
  struct Record {
    std::uint32_t first;
    std::uint32_t n;
    std::uint64_t times;
    std::uint64_t tape_id;
    bool chain_only;
  };

  /// Replay records repeated fewer than this many times are not worth
  /// probing (the probe alone replays one full period); the algebraic
  /// engine plain-chains them.
  static constexpr std::uint64_t kMinWalkTimes = 4;

  bool empty() const { return head_ >= records_.size(); }

  /// Number of dependent chain additions settlement will perform --
  /// the gang scheduler's batching heuristic.
  std::uint64_t pending_adds() const { return pending_adds_; }

  /// The subset of pending_adds() on records the algebraic engine
  /// will plain-chain rather than walk closed-form -- the kAuto
  /// escalation heuristic (only chain-bound work benefits from the
  /// gang kernel once closed-form settlement exists).
  std::uint64_t pending_chain_adds() const { return pending_chain_adds_; }

  /// Defers replay(tape, times): copies the entries and precomputes
  /// the addends from the processor's unit-cost table.
  void append_replay(const ChargeTape& tape, const double* unit,
                     std::uint64_t times) {
    const std::size_t n = tape.size();
    if (n == 0 || times == 0) return;
    units_ = unit;
    const std::uint32_t first = static_cast<std::uint32_t>(entries_.size());
    bool chain_only = false;
    for (const ChargeTape::Entry& e : tape.entries()) {
      entries_.push_back(e);
      const double addend =
          unit[static_cast<int>(e.kind)] * static_cast<double>(e.count);
      addends_.push_back(addend);
      // The ulp walk needs every addend >= +0.0 and finite (the chain
      // must be monotone within a binade); anything else pins the
      // record to the plain chain.  !(addend >= 0.0) also catches NaN.
      if (!(addend >= 0.0) || addend - addend != 0.0) chain_only = true;
    }
    records_.push_back(
        Record{first, static_cast<std::uint32_t>(n), times, tape.id(),
               chain_only});
    pending_adds_ += static_cast<std::uint64_t>(n) * times;
    if (chain_only || times < kMinWalkTimes)
      pending_chain_adds_ += static_cast<std::uint64_t>(n) * times;
  }

  /// Defers one charge(kind, count) with its precomputed addend.
  /// Consecutive deferred charges coalesce into the trailing record
  /// when it is a times==1 record (appending an entry to a once-played
  /// record is the same add sequence as a separate record), which
  /// keeps skeleton tail charges gang-uniform across processors.
  void append_charge(Op kind, std::uint64_t count, double addend) {
    entries_.push_back(ChargeTape::Entry{kind, count});
    addends_.push_back(addend);
    const bool irregular = !(addend >= 0.0) || addend - addend != 0.0;
    if (head_ < records_.size()) {
      Record& last = records_.back();
      if (last.times == 1 && last.n < ChargeTape::kMaxEntries &&
          last.first + last.n == entries_.size() - 1) {
        ++last.n;
        // The grown record no longer matches the (tape, n) prefix its
        // tape_id names; drop the identity so the memo can never serve
        // deltas probed for a different entry sequence.
        last.tape_id = 0;
        last.chain_only = last.chain_only || irregular;
        ++pending_adds_;
        ++pending_chain_adds_;
        return;
      }
    }
    records_.push_back(Record{static_cast<std::uint32_t>(entries_.size() - 1),
                              1, 1, 0, irregular});
    ++pending_adds_;
    ++pending_chain_adds_;
  }

  /// Settles every pending record into (vtime, stats), in append
  /// order.  Arithmetic-identical to having executed the deferred
  /// replays/charges eagerly: same addends, same dependent-chain
  /// order, with the per-op integer counters booked batched and exact.
  void settle(double& vtime, Stats& stats) {
    note_inline_settle(pending_adds_);
    double vt = vtime;
    double cu = stats.compute_us;
    for (std::size_t r = head_; r < records_.size(); ++r) {
      const Record& rec = records_[r];
      const double* a = addends_.data() + rec.first;
      for (std::uint64_t t = 0; t < rec.times; ++t)
        for (std::uint32_t i = 0; i < rec.n; ++i) {
          vt += a[i];
          cu += a[i];
        }
      const ChargeTape::Entry* e = entries_.data() + rec.first;
      for (std::uint32_t i = 0; i < rec.n; ++i)
        stats.ops[static_cast<int>(e[i].kind)] += e[i].count * rec.times;
    }
    vtime = vt;
    stats.compute_us = cu;
    clear();
  }

  /// Settles every pending record algebraically: walkable records
  /// retire via the closed-form ulp walk (bit-identical to settle()
  /// by the parity argument of DESIGN.md section 12), chain-only and
  /// tiny records via the plain chain.  Defined in charge_tape.cpp.
  void settle_algebraic(double& vtime, Stats& stats);

  /// Settles the leading *walkable* records algebraically and stops at
  /// the first chain-bound record, leaving it and everything after it
  /// pending (head() advances; pending counters shrink accordingly).
  /// The kAuto mode calls this before parking the chain-bound residue
  /// for the gang kernel.
  void settle_algebraic_prefix(double& vtime, Stats& stats);

  void clear() {
    entries_.clear();
    addends_.clear();
    records_.clear();
    head_ = 0;
    pending_adds_ = 0;
    pending_chain_adds_ = 0;
  }

  /// Index of the first unsettled record (everything before it was
  /// consumed by settle_algebraic_prefix).
  std::size_t head() const { return head_; }

  const std::vector<Record>& records() const { return records_; }
  const std::vector<ChargeTape::Entry>& entries() const { return entries_; }
  const std::vector<double>& addends() const { return addends_; }

 private:
  std::vector<ChargeTape::Entry> entries_;
  std::vector<double> addends_;
  std::vector<Record> records_;
  std::size_t head_ = 0;
  std::uint64_t pending_adds_ = 0;
  std::uint64_t pending_chain_adds_ = 0;
  /// The unit-cost table the addends were precomputed from (the
  /// owning Proc's table; stable for the ledger's lifetime).  Part of
  /// the settlement memo key: a cached period delta is only valid for
  /// the exact unit values that produced the addends.
  const double* units_ = nullptr;
};

/// One processor's view for the gang settlement kernel: the pending
/// ledger plus the clock and stats it settles into.
struct GangLane {
  ChargeLedger* ledger;
  double* vtime;
  Stats* stats;
};

/// Width of the gang settlement kernel: how many independent
/// accumulator chains one fused settle loop interleaves.  Eight double
/// lanes fill one 512-bit vector (or four SSE2 pairs) and comfortably
/// cover the ~4-cycle FP-add latency with independent work.
inline constexpr int kGangWidth = 8;

/// Settles up to kGangWidth processors' pending ledgers in one fused
/// loop that interleaves the lanes' independent accumulator chains.
/// Within each lane the addends are applied in exactly the order
/// ChargeLedger::settle applies them, and the vectorized path performs
/// per-lane IEEE adds (lane i of a vector add is the scalar add of
/// lane i's operands), so every lane's results are bit-identical to a
/// scalar settle -- asserted lane-vs-scalar in
/// tests/test_parix_charge_tape.cpp.
void gang_settle(GangLane* lanes, int k);

/// Cumulative gang settlement counters (process-wide): how many fused
/// batches ran, how many lanes they settled in total, and how many
/// dependent chain adds went through the gang kernel vs inline
/// ChargeLedger::settle.  Tests use them to prove the gang path really
/// engaged (a scheduler that always declines would still be
/// bit-identical); the bench records them so a speedup claim can be
/// traced to actual batching and coverage.
struct GangCounters {
  std::uint64_t batches = 0;
  std::uint64_t lanes = 0;
  std::uint64_t gang_adds = 0;
  std::uint64_t inline_adds = 0;
  std::uint64_t uniform_rounds = 0;
  std::uint64_t divergent_rounds = 0;
  std::uint64_t padded_slots = 0;
};
GangCounters gang_counters();

}  // namespace skil::parix
