// Charge-tape specialization of the virtual-clock hot loops.
//
// The hot loops of the skeleton baselines charge a fixed sequence of
// operations per element (e.g. DPFL's boxed get_elem charges four ops
// per access, eleven per active elimination element).  Each charge is
// a dependent floating-point add into the processor's clock, and that
// chain order *is* the scientific artefact: FP addition does not
// reassociate, so the addends cannot be batched or reordered without
// moving golden values by rounding (DESIGN.md section 8).
//
// What CAN go is everything around the chain: closure dispatch, boxed
// element models, per-access geometry checks and per-charge stats
// bookkeeping.  A ChargeTape records one element's exact addend
// sequence (op kinds and counts, in program order); Proc::replay then
// re-executes that sequence `times` times as a tight flat loop over
// precomputed addends -- same multiplies, same adds, same order, so
// the clock lands on bit-identical values -- and books the per-op
// counts as one batched integer update per tape entry.
//
// Building tapes reuses the same charge-helper functions the
// interpretive path calls (they are templated over a "charge sink":
// a Proc or a ChargeTape), so the two paths cannot drift apart
// silently; tests/test_parix_charge_tape.cpp additionally pins them
// bit-for-bit against each other on every golden cell.
//
// The interpretive path stays compiled in as a differential oracle:
// SKIL_CHARGE=interp|tape (or set_default_charge_path) selects which
// one the applications' hot loops take.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "parix/cost_model.h"

namespace skil::parix {

/// Which accounting path the skeleton/application hot loops take.
enum class ChargePath {
  kInterp,  ///< per-element charge() calls through the interpretive models
  kTape,    ///< recorded addend sequence replayed by Proc::replay
};

/// Process-wide default charge path: kTape, overridable with the
/// SKIL_CHARGE environment variable ("interp" / "tape") or
/// set_default_charge_path.  Unknown SKIL_CHARGE values fail loudly.
ChargePath default_charge_path();
void set_default_charge_path(ChargePath path);

/// Strict switch parsers (shared by the environment readers and unit
/// tests): unknown names raise ContractError listing the accepted
/// values instead of silently falling back to a default.
ChargePath parse_charge_path(std::string_view name);

/// One element's recorded charge sequence: op kinds and counts in the
/// exact order the interpretive path would charge them.
class ChargeTape {
 public:
  struct Entry {
    Op kind;
    std::uint64_t count;
  };

  /// Appends one charge to the tape.  Named `charge` so the sink
  /// interface matches Proc and the shared charge helpers (fn.h,
  /// farray.h) can record into a tape exactly what they would charge
  /// to a processor.
  void charge(Op kind, std::uint64_t count = 1) {
    entries_.push_back(Entry{kind, count});
  }

  /// Bulk-charge sink hook, mirroring Proc::charge_elems: one entry
  /// with the multiplied count (the charge_elems identity -- see
  /// proc.h -- makes this arithmetic-identical).
  void charge_elems(Op kind, std::uint64_t elems,
                    std::uint64_t ops_per_elem = 1) {
    charge(kind, elems * ops_per_elem);
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Upper bound accepted by Proc::replay (hot-loop tapes are at most
  /// ~a dozen entries; the cap keeps replay's addend buffer on the
  /// stack).
  static constexpr std::size_t kMaxEntries = 32;

 private:
  std::vector<Entry> entries_;
};

/// Bumps the inline-settle add counter (relaxed; called by
/// ChargeLedger::settle, defined out of line to keep the atomic out of
/// the header).
void note_inline_settle(std::uint64_t adds);

/// Deferred charge ledger: the queue of replay and bulk-charge records
/// a processor has accumulated but not yet folded into its clock.
///
/// Taped skeleton variants no longer advance the clock eagerly; they
/// append records here and settlement happens lazily at the first
/// point the vtime is observed (send, recv, fold combine, stats read,
/// trace flush -- see Proc::maybe_settle).  Because settlement walks
/// the records strictly in append order and each record replays the
/// exact addend sequence Proc::replay would have executed, *when* the
/// ledger settles cannot move the clock: the dependent FP-add chain is
/// the same adds in the same order, only executed later (this is the
/// interleaved-replay identity of DESIGN.md section 8, applied at the
/// ledger level).
///
/// The ledger owns copies of the tape entries and the precomputed
/// addends (one unit * count multiply per entry, performed at append
/// time exactly as replay performs it), so a recorded tape may die
/// before its settlement.
class ChargeLedger {
 public:
  /// One deferred replay: `times` repetitions of the `n` entries
  /// starting at `first` in the entry/addend pools.
  struct Record {
    std::uint32_t first;
    std::uint32_t n;
    std::uint64_t times;
  };

  bool empty() const { return records_.empty(); }

  /// Number of dependent chain additions settlement will perform --
  /// the gang scheduler's batching heuristic.
  std::uint64_t pending_adds() const { return pending_adds_; }

  /// Defers replay(tape, times): copies the entries and precomputes
  /// the addends from the processor's unit-cost table.
  void append_replay(const ChargeTape& tape, const double* unit,
                     std::uint64_t times) {
    const std::size_t n = tape.size();
    if (n == 0 || times == 0) return;
    const std::uint32_t first = static_cast<std::uint32_t>(entries_.size());
    for (const ChargeTape::Entry& e : tape.entries()) {
      entries_.push_back(e);
      addends_.push_back(unit[static_cast<int>(e.kind)] *
                         static_cast<double>(e.count));
    }
    records_.push_back(Record{first, static_cast<std::uint32_t>(n), times});
    pending_adds_ += static_cast<std::uint64_t>(n) * times;
  }

  /// Defers one charge(kind, count) with its precomputed addend.
  /// Consecutive deferred charges coalesce into the trailing record
  /// when it is a times==1 record (appending an entry to a once-played
  /// record is the same add sequence as a separate record), which
  /// keeps skeleton tail charges gang-uniform across processors.
  void append_charge(Op kind, std::uint64_t count, double addend) {
    entries_.push_back(ChargeTape::Entry{kind, count});
    addends_.push_back(addend);
    if (!records_.empty()) {
      Record& last = records_.back();
      if (last.times == 1 && last.n < ChargeTape::kMaxEntries &&
          last.first + last.n == entries_.size() - 1) {
        ++last.n;
        ++pending_adds_;
        return;
      }
    }
    records_.push_back(
        Record{static_cast<std::uint32_t>(entries_.size() - 1), 1, 1});
    ++pending_adds_;
  }

  /// Settles every pending record into (vtime, stats), in append
  /// order.  Arithmetic-identical to having executed the deferred
  /// replays/charges eagerly: same addends, same dependent-chain
  /// order, with the per-op integer counters booked batched and exact.
  void settle(double& vtime, Stats& stats) {
    note_inline_settle(pending_adds_);
    double vt = vtime;
    double cu = stats.compute_us;
    for (const Record& rec : records_) {
      const double* a = addends_.data() + rec.first;
      for (std::uint64_t t = 0; t < rec.times; ++t)
        for (std::uint32_t i = 0; i < rec.n; ++i) {
          vt += a[i];
          cu += a[i];
        }
      const ChargeTape::Entry* e = entries_.data() + rec.first;
      for (std::uint32_t i = 0; i < rec.n; ++i)
        stats.ops[static_cast<int>(e[i].kind)] += e[i].count * rec.times;
    }
    vtime = vt;
    stats.compute_us = cu;
    clear();
  }

  void clear() {
    entries_.clear();
    addends_.clear();
    records_.clear();
    pending_adds_ = 0;
  }

  const std::vector<Record>& records() const { return records_; }
  const std::vector<ChargeTape::Entry>& entries() const { return entries_; }
  const std::vector<double>& addends() const { return addends_; }

 private:
  std::vector<ChargeTape::Entry> entries_;
  std::vector<double> addends_;
  std::vector<Record> records_;
  std::uint64_t pending_adds_ = 0;
};

/// One processor's view for the gang settlement kernel: the pending
/// ledger plus the clock and stats it settles into.
struct GangLane {
  ChargeLedger* ledger;
  double* vtime;
  Stats* stats;
};

/// Width of the gang settlement kernel: how many independent
/// accumulator chains one fused settle loop interleaves.  Eight double
/// lanes fill one 512-bit vector (or four SSE2 pairs) and comfortably
/// cover the ~4-cycle FP-add latency with independent work.
inline constexpr int kGangWidth = 8;

/// Settles up to kGangWidth processors' pending ledgers in one fused
/// loop that interleaves the lanes' independent accumulator chains.
/// Within each lane the addends are applied in exactly the order
/// ChargeLedger::settle applies them, and the vectorized path performs
/// per-lane IEEE adds (lane i of a vector add is the scalar add of
/// lane i's operands), so every lane's results are bit-identical to a
/// scalar settle -- asserted lane-vs-scalar in
/// tests/test_parix_charge_tape.cpp.
void gang_settle(GangLane* lanes, int k);

/// Cumulative gang settlement counters (process-wide): how many fused
/// batches ran, how many lanes they settled in total, and how many
/// dependent chain adds went through the gang kernel vs inline
/// ChargeLedger::settle.  Tests use them to prove the gang path really
/// engaged (a scheduler that always declines would still be
/// bit-identical); the bench records them so a speedup claim can be
/// traced to actual batching and coverage.
struct GangCounters {
  std::uint64_t batches = 0;
  std::uint64_t lanes = 0;
  std::uint64_t gang_adds = 0;
  std::uint64_t inline_adds = 0;
  std::uint64_t uniform_rounds = 0;
  std::uint64_t divergent_rounds = 0;
  std::uint64_t padded_slots = 0;
};
GangCounters gang_counters();

}  // namespace skil::parix
