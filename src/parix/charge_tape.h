// Charge-tape specialization of the virtual-clock hot loops.
//
// The hot loops of the skeleton baselines charge a fixed sequence of
// operations per element (e.g. DPFL's boxed get_elem charges four ops
// per access, eleven per active elimination element).  Each charge is
// a dependent floating-point add into the processor's clock, and that
// chain order *is* the scientific artefact: FP addition does not
// reassociate, so the addends cannot be batched or reordered without
// moving golden values by rounding (DESIGN.md section 8).
//
// What CAN go is everything around the chain: closure dispatch, boxed
// element models, per-access geometry checks and per-charge stats
// bookkeeping.  A ChargeTape records one element's exact addend
// sequence (op kinds and counts, in program order); Proc::replay then
// re-executes that sequence `times` times as a tight flat loop over
// precomputed addends -- same multiplies, same adds, same order, so
// the clock lands on bit-identical values -- and books the per-op
// counts as one batched integer update per tape entry.
//
// Building tapes reuses the same charge-helper functions the
// interpretive path calls (they are templated over a "charge sink":
// a Proc or a ChargeTape), so the two paths cannot drift apart
// silently; tests/test_parix_charge_tape.cpp additionally pins them
// bit-for-bit against each other on every golden cell.
//
// The interpretive path stays compiled in as a differential oracle:
// SKIL_CHARGE=interp|tape (or set_default_charge_path) selects which
// one the applications' hot loops take.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "parix/cost_model.h"

namespace skil::parix {

/// Which accounting path the skeleton/application hot loops take.
enum class ChargePath {
  kInterp,  ///< per-element charge() calls through the interpretive models
  kTape,    ///< recorded addend sequence replayed by Proc::replay
};

/// Process-wide default charge path: kTape, overridable with the
/// SKIL_CHARGE environment variable ("interp" / "tape") or
/// set_default_charge_path.  Unknown SKIL_CHARGE values fail loudly.
ChargePath default_charge_path();
void set_default_charge_path(ChargePath path);

/// Strict switch parsers (shared by the environment readers and unit
/// tests): unknown names raise ContractError listing the accepted
/// values instead of silently falling back to a default.
ChargePath parse_charge_path(std::string_view name);

/// One element's recorded charge sequence: op kinds and counts in the
/// exact order the interpretive path would charge them.
class ChargeTape {
 public:
  struct Entry {
    Op kind;
    std::uint64_t count;
  };

  /// Appends one charge to the tape.  Named `charge` so the sink
  /// interface matches Proc and the shared charge helpers (fn.h,
  /// farray.h) can record into a tape exactly what they would charge
  /// to a processor.
  void charge(Op kind, std::uint64_t count = 1) {
    entries_.push_back(Entry{kind, count});
  }

  /// Bulk-charge sink hook, mirroring Proc::charge_elems: one entry
  /// with the multiplied count (the charge_elems identity -- see
  /// proc.h -- makes this arithmetic-identical).
  void charge_elems(Op kind, std::uint64_t elems,
                    std::uint64_t ops_per_elem = 1) {
    charge(kind, elems * ops_per_elem);
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Upper bound accepted by Proc::replay (hot-loop tapes are at most
  /// ~a dozen entries; the cap keeps replay's addend buffer on the
  /// stack).
  static constexpr std::size_t kMaxEntries = 32;

 private:
  std::vector<Entry> entries_;
};

}  // namespace skil::parix
