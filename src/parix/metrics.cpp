#include "parix/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"

namespace skil::parix {

namespace {

/// %.17g round-trips every finite double bit-exactly, so a consumer
/// re-parsing the metrics JSON recovers compute_us / comm_us equal to
/// Proc::Stats to the last ulp.
std::string fmt_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

const char* op_name(int kind) {
  switch (static_cast<Op>(kind)) {
    case Op::kIntOp: return "int_op";
    case Op::kFloatOp: return "float_op";
    case Op::kCall: return "call";
    case Op::kIndirectCall: return "indirect_call";
    case Op::kAlloc: return "alloc";
    case Op::kCopyWord: return "copy_word";
    case Op::kCount_: break;
  }
  return "unknown";
}

/// Histogram label for a message tag: app tags by value, collective
/// tags by their sub-tag offset (invocation sequence numbers stripped,
/// so all rounds of one collective aggregate into one bucket).
std::string tag_label(long tag) {
  if (tag < Proc::kCollectiveTagBase) return "app:" + std::to_string(tag);
  const long off = (tag - Proc::kCollectiveTagBase) % Proc::kTagStride;
  return "collective:+" + std::to_string(off);
}

/// Flow-arrow identity of one message: unique per (sender, seq).
std::uint64_t flow_id(int sender, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender))
          << 32) |
         seq;
}

const char* bound_name(RecvBound bound) {
  switch (bound) {
    case RecvBound::kLocal: return "local";
    case RecvBound::kArrival: return "arrival";
    case RecvBound::kChannel: return "channel";
  }
  return "local";
}

/// One timeline slice (events that occupy virtual time, i.e. every
/// kind except the zero-width span points).  Per proc, slices tile
/// [0, final vtime] with no gaps -- flush_compute guarantees it.
struct Slice {
  double vt0 = 0.0;
  double vt1 = 0.0;
  TraceEventKind kind = TraceEventKind::kCompute;
  RecvBound bound = RecvBound::kLocal;
  int peer = -1;
  std::uint32_t seq = 0;       ///< send slices
  std::uint32_t peer_seq = 0;  ///< recv slices
};

struct ProcTimeline {
  std::vector<Slice> slices;
  std::vector<std::size_t> send_by_seq;  ///< seq -> index into slices
  double final_vtime = 0.0;
};

std::vector<ProcTimeline> build_timelines(const Trace& trace) {
  std::vector<ProcTimeline> lanes(trace.procs.size());
  for (std::size_t p = 0; p < trace.procs.size(); ++p) {
    ProcTimeline& lane = lanes[p];
    for (const TraceEvent& e : trace.procs[p].events()) {
      if (e.kind == TraceEventKind::kSpanBegin ||
          e.kind == TraceEventKind::kSpanEnd)
        continue;
      Slice s;
      s.vt0 = e.vt0;
      s.vt1 = e.vt1;
      s.kind = e.kind;
      s.bound = e.bound;
      s.peer = e.peer;
      s.seq = e.seq;
      s.peer_seq = e.peer_seq;
      if (e.kind == TraceEventKind::kSend) {
        SKIL_ASSERT(e.seq == lane.send_by_seq.size(),
                    "trace: send sequence numbers out of order");
        lane.send_by_seq.push_back(lane.slices.size());
      }
      lane.slices.push_back(s);
    }
    if (!lane.slices.empty()) lane.final_vtime = lane.slices.back().vt1;
  }
  return lanes;
}

/// Index of the slice whose interval ends at (or covers) time `t`.
/// Returns npos when t precedes the timeline.
std::size_t slice_ending_at(const ProcTimeline& lane, double t) {
  const auto& s = lane.slices;
  // First slice with vt1 >= t; the walk only queries boundary times,
  // so this is the slice whose interval (vt0, vt1] contains t.
  const auto it = std::lower_bound(
      s.begin(), s.end(), t,
      [](const Slice& slice, double time) { return slice.vt1 < time; });
  if (it == s.end()) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - s.begin());
}

}  // namespace

std::vector<SpanTotal> span_summary(const Trace& trace) {
  std::map<std::string, SpanTotal> totals;
  for (const ProcTrace& proc : trace.procs) {
    std::vector<const TraceEvent*> stack;
    for (const TraceEvent& e : proc.events()) {
      if (e.kind == TraceEventKind::kSpanBegin) {
        stack.push_back(&e);
      } else if (e.kind == TraceEventKind::kSpanEnd) {
        SKIL_REQUIRE(!stack.empty(),
                     "trace: span end without matching begin on proc " +
                         std::to_string(proc.proc_id()));
        const TraceEvent* begin = stack.back();
        stack.pop_back();
        SpanTotal& total = totals[begin->name];
        total.name = begin->name;
        total.count += 1;
        total.vtime_us += e.vt0 - begin->vt0;
      }
    }
    SKIL_REQUIRE(stack.empty(), "trace: unclosed span on proc " +
                                    std::to_string(proc.proc_id()));
  }
  std::vector<SpanTotal> out;
  out.reserve(totals.size());
  for (auto& [name, total] : totals) out.push_back(total);
  return out;
}

CriticalPath analyze_critical_path(const Trace& trace) {
  SKIL_REQUIRE(trace.mode == TraceMode::kFull,
               "analyze_critical_path: needs a full trace "
               "(SKIL_TRACE=full); spans mode lacks compute slices and "
               "message links");
  const std::vector<ProcTimeline> lanes = build_timelines(trace);

  CriticalPath path;
  path.proc_path_us.assign(lanes.size(), 0.0);
  path.proc_slack_us.assign(lanes.size(), 0.0);
  if (lanes.empty()) return path;

  std::size_t proc = 0;
  for (std::size_t p = 1; p < lanes.size(); ++p)
    if (lanes[p].final_vtime > lanes[proc].final_vtime) proc = p;
  path.total_us = lanes[proc].final_vtime;
  for (std::size_t p = 0; p < lanes.size(); ++p)
    path.proc_slack_us[p] = path.total_us - lanes[p].final_vtime;

  // Backward walk.  `t` is always a slice boundary of the current
  // processor (slice vt0/vt1 values are copied exactly, so the FP
  // comparisons in slice_ending_at are exact).  Each step emits one
  // segment abutting the previous one, so the segments telescope:
  // their summed duration is exactly total_us.
  double t = path.total_us;
  // Every step consumes at least one slice or crosses one message, so
  // the walk terminates; the cap is a defensive backstop.
  std::size_t budget = 0;
  for (const ProcTimeline& lane : lanes) budget += lane.slices.size();
  budget = 2 * budget + 16;
  while (t > 0.0 && budget-- > 0) {
    const std::size_t idx = slice_ending_at(lanes[proc], t);
    if (idx == static_cast<std::size_t>(-1)) break;
    const Slice& s = lanes[proc].slices[idx];
    CriticalSegment seg;
    seg.proc = static_cast<int>(proc);
    if (s.kind == TraceEventKind::kRecv &&
        s.bound == RecvBound::kArrival && s.peer >= 0 &&
        static_cast<std::size_t>(s.peer) < lanes.size() &&
        s.peer_seq < lanes[s.peer].send_by_seq.size()) {
      // Sender-bound edge: the receive's end time *is* the arrival,
      // so charge [send end, recv end] to the wire and resume on the
      // sender at the moment its send slice ended.
      const ProcTimeline& sender = lanes[s.peer];
      const Slice& send = sender.slices[sender.send_by_seq[s.peer_seq]];
      seg.kind = CriticalSegment::Kind::kWire;
      seg.peer = s.peer;
      seg.vt0 = send.vt1;
      seg.vt1 = s.vt1;
      path.wire_us += seg.duration_us();
      proc = static_cast<std::size_t>(s.peer);
      t = send.vt1;
    } else {
      seg.vt0 = s.vt0;
      seg.vt1 = s.vt1;
      switch (s.kind) {
        case TraceEventKind::kCompute:
          seg.kind = CriticalSegment::Kind::kCompute;
          path.compute_us += seg.duration_us();
          break;
        case TraceEventKind::kSend:
          seg.kind = CriticalSegment::Kind::kSend;
          path.send_us += seg.duration_us();
          break;
        default:
          seg.kind = CriticalSegment::Kind::kRecv;
          path.recv_us += seg.duration_us();
          break;
      }
      path.proc_path_us[proc] += seg.duration_us();
      t = s.vt0;
    }
    path.segments.push_back(seg);
  }
  std::reverse(path.segments.begin(), path.segments.end());
  return path;
}

void write_chrome_trace(const Trace& trace, std::ostream& out) {
  write_chrome_trace(trace, nullptr, out);
}

void write_chrome_trace(const Trace& trace, const ProfTimeline* prof,
                        std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"timeline\":"
         "\"virtual microseconds\",\"trace_mode\":\""
      << trace_mode_name(trace.mode) << "\"},\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  sep() << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\"skil virtual machine\"}}";
  for (int p = 0; p < trace.nprocs; ++p) {
    sep() << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << p
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"vproc " << p
          << "\"}}";
    sep() << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << p
          << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << p
          << "}}";
  }

  for (const ProcTrace& proc : trace.procs) {
    const int tid = proc.proc_id();
    for (const TraceEvent& e : proc.events()) {
      switch (e.kind) {
        case TraceEventKind::kSpanBegin:
          sep() << "{\"ph\":\"B\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << fmt_double(e.vt0) << ",\"cat\":\"span\","
                << "\"name\":\"" << json_escape(e.name) << "\",\"args\":{";
          if (e.arg >= 0) out << "\"arg\":" << e.arg << ",";
          out << "\"wall_ns\":" << e.wall_ns << "}}";
          break;
        case TraceEventKind::kSpanEnd:
          sep() << "{\"ph\":\"E\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << fmt_double(e.vt0) << "}";
          break;
        case TraceEventKind::kCompute:
          sep() << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << fmt_double(e.vt0)
                << ",\"dur\":" << fmt_double(e.vt1 - e.vt0)
                << ",\"cat\":\"compute\",\"name\":\"compute\","
                << "\"args\":{\"wall_ns\":" << e.wall_ns << "}}";
          break;
        case TraceEventKind::kSend:
          sep() << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << fmt_double(e.vt0)
                << ",\"dur\":" << fmt_double(e.vt1 - e.vt0)
                << ",\"cat\":\"comm\",\"name\":\"send\",\"args\":{\"dst\":"
                << e.peer << ",\"tag\":" << e.tag << ",\"bytes\":" << e.bytes
                << ",\"wall_ns\":" << e.wall_ns << "}}";
          sep() << "{\"ph\":\"s\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << fmt_double(e.vt1)
                << ",\"cat\":\"msg\",\"name\":\"msg\",\"id\":"
                << flow_id(tid, e.seq) << "}";
          break;
        case TraceEventKind::kRecv:
          sep() << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << fmt_double(e.vt0)
                << ",\"dur\":" << fmt_double(e.vt1 - e.vt0)
                << ",\"cat\":\"comm\",\"name\":\"recv\",\"args\":{\"src\":"
                << e.peer << ",\"tag\":" << e.tag << ",\"bytes\":" << e.bytes
                << ",\"bound\":\"" << bound_name(e.bound)
                << "\",\"wall_ns\":" << e.wall_ns << "}}";
          sep() << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << fmt_double(e.vt1)
                << ",\"cat\":\"msg\",\"name\":\"msg\",\"id\":"
                << flow_id(e.peer, e.peer_seq) << "}";
          break;
      }
    }
  }

  // SKIL_PROF=sampled host timeline: a second Perfetto process (pid 1)
  // with one lane per carrier thread.  Timestamps are *wall*
  // microseconds on the same epoch as the virtual lanes' wall_ns args
  // (ProfSampler shares the trace recorder's wall epoch), so host and
  // virtual activity line up when both are loaded.  Occupancy ("which
  // vproc is this carrier running") becomes X slices spanning
  // consecutive samples that observed the same fiber; cumulative
  // counters become per-tick deltas on "ph":"C" counter tracks.
  if (prof != nullptr && !prof->samples.empty() && prof->carriers > 0) {
    sep() << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
             "\"args\":{\"name\":\"host carriers\"}}";
    sep() << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_sort_index\","
             "\"args\":{\"sort_index\":1}}";
    for (int c = 0; c < prof->carriers; ++c) {
      sep() << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << c
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"carrier " << c
            << "\"}}";
      sep() << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << c
            << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << c
            << "}}";
    }

    struct LaneState {
      bool open = false;        // an occupancy slice is in progress
      int proc = -1;            // vproc of the open slice
      double start_us = 0.0;    // open slice start
      double last_us = 0.0;     // most recent sample on this lane
      bool has_prev = false;    // cumulative counters seeded
      std::uint64_t fibers_run = 0;
      std::uint64_t steal_successes = 0;
    };
    std::vector<LaneState> lanes(static_cast<std::size_t>(prof->carriers));

    const auto close_slice = [&](int c, LaneState& lane, double end_us) {
      if (lane.open && end_us > lane.start_us) {
        sep() << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << c
              << ",\"ts\":" << fmt_double(lane.start_us)
              << ",\"dur\":" << fmt_double(end_us - lane.start_us)
              << ",\"cat\":\"host\",\"name\":\"vproc " << lane.proc << "\"}";
      }
      lane.open = false;
    };

    for (const ProfSample& s : prof->samples) {
      if (s.carrier < 0 || s.carrier >= prof->carriers) continue;
      LaneState& lane = lanes[static_cast<std::size_t>(s.carrier)];
      const double ts_us = static_cast<double>(s.wall_ns) / 1000.0;

      if (lane.open && lane.proc != s.running_proc)
        close_slice(s.carrier, lane, ts_us);
      if (!lane.open && s.running_proc >= 0) {
        lane.open = true;
        lane.proc = s.running_proc;
        lane.start_us = ts_us;
      }

      sep() << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << s.carrier
            << ",\"ts\":" << fmt_double(ts_us) << ",\"name\":\"carrier "
            << s.carrier << " ready\",\"args\":{\"fibers\":" << s.queue_depth
            << "}}";
      if (lane.has_prev) {
        sep() << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << s.carrier
              << ",\"ts\":" << fmt_double(ts_us) << ",\"name\":\"carrier "
              << s.carrier << " activity\",\"args\":{\"dispatched\":"
              << (s.fibers_run - lane.fibers_run) << ",\"stolen\":"
              << (s.steal_successes - lane.steal_successes) << "}}";
      }
      lane.fibers_run = s.fibers_run;
      lane.steal_successes = s.steal_successes;
      lane.has_prev = true;

      // The settle queue is global; carrier 0's ticks carry it.
      if (s.carrier == 0) {
        sep() << "{\"ph\":\"C\",\"pid\":1,\"ts\":" << fmt_double(ts_us)
              << ",\"name\":\"settle queue\",\"args\":{\"waiting\":"
              << s.settle_queue_depth << "}}";
      }
      lane.last_us = ts_us;
    }
    for (int c = 0; c < prof->carriers; ++c) {
      LaneState& lane = lanes[static_cast<std::size_t>(c)];
      close_slice(c, lane, lane.last_us);
    }
  }

  out << "\n]}\n";
}

namespace {

void write_stats(std::ostream& out, const Stats& stats) {
  out << "{\"compute_us\":" << fmt_double(stats.compute_us)
      << ",\"comm_us\":" << fmt_double(stats.comm_us)
      << ",\"messages_sent\":" << stats.messages_sent
      << ",\"bytes_sent\":" << stats.bytes_sent
      << ",\"messages_received\":" << stats.messages_received
      << ",\"bytes_received\":" << stats.bytes_received << ",\"ops\":{";
  for (int k = 0; k < kOpKinds; ++k) {
    if (k > 0) out << ",";
    out << "\"" << op_name(k) << "\":" << stats.ops[k];
  }
  out << "}}";
}

}  // namespace

void write_metrics_json(const RunResult& result, std::ostream& out) {
  const Trace* trace = result.trace.get();
  out << "{\"schema_version\":1,\"trace_mode\":\""
      << trace_mode_name(trace != nullptr ? trace->mode : TraceMode::kOff)
      << "\",\"nprocs\":" << result.proc_stats.size()
      << ",\"vtime_us\":" << fmt_double(result.vtime_us)
      << ",\"wall_seconds\":" << fmt_double(result.wall_seconds)
      << ",\"total\":";
  write_stats(out, result.total);

  // Settlement accounting (charge_tape.h): how this run's dependent
  // chain adds were retired -- closed-form walks, memoized walks,
  // probes, plain chains, gang/inline settles -- plus the derived
  // closed-form coverage fraction the perf claims are gated on.
  {
    const SettleCounters& s = result.settle;
    const std::uint64_t total_adds = s.closed_adds + s.memo_adds +
                                     s.probe_adds + s.chain_adds +
                                     result.gang.gang_adds +
                                     result.gang.inline_adds;
    const double coverage =
        total_adds > 0
            ? static_cast<double>(s.closed_adds + s.memo_adds) /
                  static_cast<double>(total_adds)
            : 0.0;
    out << ",\"settlement\":{\"closed_runs\":" << s.closed_runs
        << ",\"closed_adds\":" << s.closed_adds
        << ",\"memo_hits\":" << s.memo_hits
        << ",\"memo_misses\":" << s.memo_misses
        << ",\"memo_adds\":" << s.memo_adds
        << ",\"probe_adds\":" << s.probe_adds
        << ",\"chain_records\":" << s.chain_records
        << ",\"chain_adds\":" << s.chain_adds
        << ",\"gang_parks\":" << s.gang_parks
        << ",\"gang_batches\":" << result.gang.batches
        << ",\"gang_adds\":" << result.gang.gang_adds
        << ",\"inline_adds\":" << result.gang.inline_adds
        << ",\"closed_coverage\":" << fmt_double(coverage) << "}";
  }

  // Fusion accounting (charge_tape.h): how many skeleton compositions
  // this run saw, fused, or rejected (by reason), and what the fused
  // forms eliminated.  All zero under SKIL_FUSE=off.
  {
    const FusionCounters& f = result.fusion;
    out << ",\"fusion\":{\"seen\":" << f.seen << ",\"fused\":" << f.fused
        << ",\"rejected_shape\":" << f.rejected_shape
        << ",\"rejected_order\":" << f.rejected_order
        << ",\"rejected_path\":" << f.rejected_path
        << ",\"barriers_eliminated\":" << f.barriers_eliminated
        << ",\"tapes_eliminated\":" << f.tapes_eliminated << "}";
  }

  // Collective accounting (parix/coll.h): which algorithm every
  // collective call resolved to, plus the wire bytes, physical hop
  // distances and communication rounds per op.  Summed over the
  // per-proc counters, so exact even with concurrent runs.
  {
    const CollectiveCounters& c = result.coll;
    out << ",\"collectives\":{";
    for (int op = 0; op < kNumCollOps; ++op) {
      if (op > 0) out << ",";
      out << "\"" << coll_op_name(static_cast<CollOp>(op))
          << "\":{\"calls\":{";
      for (int algo = 0; algo < kNumCollAlgos; ++algo) {
        if (algo > 0) out << ",";
        out << "\"" << coll_algo_name(static_cast<CollAlgo>(algo))
            << "\":" << c.calls[op][algo];
      }
      out << "},\"bytes\":" << c.bytes[op] << ",\"hops\":" << c.hops[op]
          << ",\"steps\":" << c.steps[op] << "}";
    }
    out << ",\"order_fallbacks\":" << c.order_fallbacks << "}";
  }

  // Host scheduler observatory (prof.h): present only when the run was
  // profiled (SKIL_PROF=counters|sampled).  Everything in this block is
  // *host* measurement -- wall nanoseconds and scheduler event counts
  // -- and never feeds the virtual timeline; an unprofiled run of the
  // same workload produces bit-identical vtimes with no block at all.
  if (result.scheduler.mode != ProfMode::kOff) {
    const SchedulerReport& sr = result.scheduler;
    out << ",\"scheduler\":{\"prof\":\"" << prof_mode_name(sr.mode)
        << "\",\"carriers\":" << sr.carriers << ",\"wall_ns\":" << sr.wall_ns
        << ",\"samples\":" << sr.samples << ",\"per_carrier\":[";
    for (std::size_t c = 0; c < sr.per_carrier.size(); ++c) {
      const CarrierReport& lane = sr.per_carrier[c];
      const double util =
          sr.wall_ns > 0 ? 100.0 * static_cast<double>(lane.run_ns) /
                               static_cast<double>(sr.wall_ns)
                         : 0.0;
      if (c > 0) out << ",";
      out << "{\"carrier\":" << c << ",\"fibers_run\":" << lane.fibers_run
          << ",\"fibers_resumed\":" << lane.fibers_resumed
          << ",\"steal_attempts\":" << lane.steal_attempts
          << ",\"steal_successes\":" << lane.steal_successes
          << ",\"steal_failed_rounds\":" << lane.steal_failed_rounds
          << ",\"settle_enqueues\":" << lane.settle_enqueues
          << ",\"parks\":" << lane.parks << ",\"unparks\":" << lane.unparks
          << ",\"run_ns\":" << lane.run_ns
          << ",\"settle_ns\":" << lane.settle_ns
          << ",\"utilization_pct\":" << fmt_double(util) << "}";
    }
    out << "],\"gang_batches\":" << sr.gang_batches << ",\"gang_lane_hist\":[";
    for (int k = 0; k < kProfGangLanes; ++k) {
      if (k > 0) out << ",";
      out << sr.gang_lane_hist[k];
    }
    const std::uint64_t pool_acquires = sr.pool.acquires;
    const double pool_hit_rate =
        pool_acquires > 0 ? static_cast<double>(sr.pool.hits) /
                                static_cast<double>(pool_acquires)
                          : 0.0;
    out << "],\"settle_queue_max\":" << sr.settle_queue_max
        << ",\"pool\":{\"acquires\":" << sr.pool.acquires
        << ",\"hits\":" << sr.pool.hits << ",\"misses\":" << sr.pool.misses
        << ",\"bytes\":" << sr.pool.bytes
        << ",\"hit_rate\":" << fmt_double(pool_hit_rate) << "}"
        << ",\"memo_hits\":" << sr.memo_hits
        << ",\"memo_misses\":" << sr.memo_misses << "}";
  }

  out << ",\"procs\":[";
  for (std::size_t p = 0; p < result.proc_stats.size(); ++p) {
    if (p > 0) out << ",";
    out << "{\"proc\":" << p
        << ",\"vtime_us\":" << fmt_double(result.proc_vtimes[p])
        << ",\"stats\":";
    write_stats(out, result.proc_stats[p]);
    out << "}";
  }
  out << "]";

  if (trace != nullptr) {
    out << ",\"skeletons\":[";
    bool first = true;
    for (const SpanTotal& span : span_summary(*trace)) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << json_escape(span.name)
          << "\",\"count\":" << span.count
          << ",\"vtime_us\":" << fmt_double(span.vtime_us) << "}";
    }
    out << "]";
  }

  if (trace != nullptr && trace->mode == TraceMode::kFull) {
    struct TagBucket {
      std::uint64_t count = 0;
      std::uint64_t bytes = 0;
    };
    std::map<std::string, TagBucket> by_tag;
    std::map<std::pair<int, int>, TagBucket> by_link;
    for (const ProcTrace& proc : trace->procs)
      for (const TraceEvent& e : proc.events()) {
        if (e.kind != TraceEventKind::kSend) continue;
        TagBucket& tag = by_tag[tag_label(e.tag)];
        tag.count += 1;
        tag.bytes += e.bytes;
        TagBucket& link = by_link[{proc.proc_id(), e.peer}];
        link.count += 1;
        link.bytes += e.bytes;
      }

    out << ",\"messages_by_tag\":[";
    bool first = true;
    for (const auto& [label, bucket] : by_tag) {
      if (!first) out << ",";
      first = false;
      out << "{\"tag\":\"" << json_escape(label.c_str())
          << "\",\"count\":" << bucket.count << ",\"bytes\":" << bucket.bytes
          << "}";
    }
    out << "],\"bytes_by_link\":[";
    first = true;
    for (const auto& [link, bucket] : by_link) {
      if (!first) out << ",";
      first = false;
      out << "{\"src\":" << link.first << ",\"dst\":" << link.second
          << ",\"messages\":" << bucket.count << ",\"bytes\":" << bucket.bytes
          << "}";
    }
    out << "]";

    const CriticalPath path = analyze_critical_path(*trace);
    out << ",\"critical_path\":{\"total_us\":" << fmt_double(path.total_us)
        << ",\"compute_us\":" << fmt_double(path.compute_us)
        << ",\"send_us\":" << fmt_double(path.send_us)
        << ",\"recv_us\":" << fmt_double(path.recv_us)
        << ",\"wire_us\":" << fmt_double(path.wire_us)
        << ",\"segments\":" << path.segments.size() << ",\"proc_path_us\":[";
    for (std::size_t p = 0; p < path.proc_path_us.size(); ++p) {
      if (p > 0) out << ",";
      out << fmt_double(path.proc_path_us[p]);
    }
    out << "],\"proc_slack_us\":[";
    for (std::size_t p = 0; p < path.proc_slack_us.size(); ++p) {
      if (p > 0) out << ",";
      out << fmt_double(path.proc_slack_us[p]);
    }
    double max_slack = 0.0;
    for (const double slack : path.proc_slack_us)
      max_slack = std::max(max_slack, slack);
    out << "],\"max_slack_us\":" << fmt_double(max_slack)
        << ",\"imbalance_pct\":"
        << fmt_double(path.total_us > 0.0 ? 100.0 * max_slack / path.total_us
                                          : 0.0)
        << "}";
  }
  out << "}\n";
}

}  // namespace skil::parix
