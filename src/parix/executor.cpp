#include "parix/executor.h"

#include <ucontext.h>

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "parix/machine.h"
#include "parix/mailbox.h"
#include "parix/proc.h"
#include "support/error.h"

namespace skil::parix {
namespace {

// Fiber stacks are touched lazily (plain new[] without value-init),
// so a 64-processor run commits only the pages it actually uses.
constexpr std::size_t kFiberStackBytes = std::size_t{1} << 20;

// Park/unpark protocol (all transitions under Scheduler::mutex_):
//
//   kReady    in the ready queue, waiting for a worker
//   kRunning  executing on a worker thread
//   kParking  asked to park; its worker has not yet swapped off the
//             fiber stack, so it cannot be enqueued yet
//   kParked   off-stack, waiting for a wake()
//   kFinished body returned; the worker recycles the fiber object
//
// A wake() that catches the fiber kRunning (the waiter was already
// deregistered, but the fiber has not reached park_current yet) sets
// notify_pending, which park_current consumes instead of parking --
// the classic missed-wakeup race, resolved without spinning.
enum class FiberState { kReady, kRunning, kParking, kParked, kFinished };

struct RunState;

struct Fiber {
  ucontext_t context;
  std::unique_ptr<char[]> stack;
  FiberState state = FiberState::kReady;
  bool notify_pending = false;
  RunState* run = nullptr;
  Proc* proc = nullptr;
};

struct RunState {
  Machine* machine = nullptr;
  const detail::BodyRef* body = nullptr;
  bool deadlock_poisoned = false;  // guarded by Scheduler::mutex_

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
};

thread_local Fiber* tl_fiber = nullptr;
thread_local ucontext_t* tl_worker_context = nullptr;

class Scheduler {
 public:
  static Scheduler& instance() {
    static Scheduler scheduler;
    return scheduler;
  }

  std::exception_ptr run(Machine& machine,
                         const std::vector<std::unique_ptr<Proc>>& procs,
                         const detail::BodyRef& body);

  /// Parks the calling fiber until wake(); returns immediately when a
  /// wake already raced ahead.
  void park_current();

  /// Makes `fiber` runnable again (called from Mailbox::put/poison via
  /// the fiber's registered waiter, possibly on another worker).
  void wake(Fiber* fiber);

  /// Marks the calling fiber finished and swaps back to its worker for
  /// good.  Signals run completion when it is the last one.
  [[noreturn]] void finish_current();

 private:
  Scheduler() = default;
  ~Scheduler();

  void worker_main();
  void enqueue_locked(Fiber* fiber);
  void detect_deadlock_locked(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Fiber*> ready_;
  std::vector<std::unique_ptr<Fiber>> all_fibers_;  // ownership
  std::vector<Fiber*> free_fibers_;                 // recycled, off-stack
  std::vector<std::thread> workers_;
  int running_ = 0;
  int parked_ = 0;
  int live_ = 0;
  RunState* current_run_ = nullptr;
  bool shutdown_ = false;

  /// One spmd run owns the pool at a time; concurrent host callers
  /// queue here.
  std::mutex run_serial_;
};

void fiber_trampoline() {
  Fiber* fiber = tl_fiber;
  RunState* run = fiber->run;
  try {
    (*run->body)(*fiber->proc);
  } catch (...) {
    {
      const std::scoped_lock lock(run->failure_mutex);
      if (!run->first_failure) run->first_failure = std::current_exception();
    }
    run->machine->poison_all("processor " + std::to_string(fiber->proc->id()) +
                             " terminated with an error");
  }
  Scheduler::instance().finish_current();
}

void Scheduler::enqueue_locked(Fiber* fiber) {
  ready_.push_back(fiber);
  work_cv_.notify_one();
}

void Scheduler::detect_deadlock_locked(std::unique_lock<std::mutex>& lock) {
  if (!ready_.empty() || running_ > 0 || live_ == 0 || parked_ != live_)
    return;
  RunState* run = current_run_;
  if (run == nullptr || run->deadlock_poisoned) return;
  run->deadlock_poisoned = true;
  // poison_all wakes the parked fibers through their mailbox waiters,
  // which re-enters wake() -> mutex_, so release the lock first.
  lock.unlock();
  run->machine->poison_all(
      "deadlock: every virtual processor is blocked in recv");
  lock.lock();
}

void Scheduler::worker_main() {
  ucontext_t worker_context;
  tl_worker_context = &worker_context;
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || !ready_.empty(); });
    if (shutdown_) return;
    Fiber* fiber = ready_.front();
    ready_.pop_front();
    fiber->state = FiberState::kRunning;
    ++running_;
    lock.unlock();

    tl_fiber = fiber;
    swapcontext(&worker_context, &fiber->context);
    tl_fiber = nullptr;

    lock.lock();
    --running_;
    switch (fiber->state) {
      case FiberState::kFinished:
        // Safe to recycle: the fiber has left its stack for good.
        free_fibers_.push_back(fiber);
        break;
      case FiberState::kParking:
        if (fiber->notify_pending) {
          fiber->notify_pending = false;
          fiber->state = FiberState::kReady;
          enqueue_locked(fiber);
        } else {
          fiber->state = FiberState::kParked;
          ++parked_;
          detect_deadlock_locked(lock);
        }
        break;
      case FiberState::kReady:
        // A wake() arrived while the fiber was mid-park; it could not
        // enqueue (we were still on the fiber's stack), so we do.
        enqueue_locked(fiber);
        break;
      default:
        SKIL_ASSERT(false, "executor: fiber yielded in impossible state");
    }
  }
}

void Scheduler::park_current() {
  Fiber* fiber = tl_fiber;
  SKIL_ASSERT(fiber != nullptr, "executor: park outside a fiber");
  {
    const std::scoped_lock lock(mutex_);
    if (fiber->notify_pending) {
      fiber->notify_pending = false;
      return;
    }
    fiber->state = FiberState::kParking;
  }
  swapcontext(&fiber->context, tl_worker_context);
}

void Scheduler::wake(Fiber* fiber) {
  const std::scoped_lock lock(mutex_);
  switch (fiber->state) {
    case FiberState::kParked:
      fiber->state = FiberState::kReady;
      --parked_;
      enqueue_locked(fiber);
      break;
    case FiberState::kParking:
      // Its worker is still swapping off the fiber stack and will
      // enqueue when it observes the state change.
      fiber->state = FiberState::kReady;
      break;
    default:
      fiber->notify_pending = true;
      break;
  }
}

void Scheduler::finish_current() {
  Fiber* fiber = tl_fiber;
  RunState* run = fiber->run;
  bool last = false;
  {
    const std::scoped_lock lock(mutex_);
    fiber->state = FiberState::kFinished;
    --live_;
    last = live_ == 0;
  }
  if (last) {
    const std::scoped_lock lock(run->done_mutex);
    run->done = true;
    run->done_cv.notify_one();
  }
  // From here the fiber touches nothing of the run (the caller may
  // already be tearing it down); it only leaves its stack.
  swapcontext(&fiber->context, tl_worker_context);
  SKIL_ASSERT(false, "executor: finished fiber resumed");
  std::abort();
}

std::exception_ptr Scheduler::run(
    Machine& machine, const std::vector<std::unique_ptr<Proc>>& procs,
    const detail::BodyRef& body) {
  const std::scoped_lock serial(run_serial_);
  RunState run;
  run.machine = &machine;
  run.body = &body;

  {
    std::unique_lock lock(mutex_);
    if (workers_.empty()) {
      unsigned n = std::thread::hardware_concurrency();
      n = std::clamp(n, 1u, 16u);
      workers_.reserve(n);
      for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_main(); });
    }
    live_ = static_cast<int>(procs.size());
    current_run_ = &run;
    for (const auto& proc : procs) {
      Fiber* fiber;
      if (!free_fibers_.empty()) {
        fiber = free_fibers_.back();
        free_fibers_.pop_back();
      } else {
        all_fibers_.push_back(std::make_unique<Fiber>());
        fiber = all_fibers_.back().get();
        fiber->stack.reset(new char[kFiberStackBytes]);
      }
      fiber->run = &run;
      fiber->proc = proc.get();
      fiber->state = FiberState::kReady;
      fiber->notify_pending = false;
      getcontext(&fiber->context);
      fiber->context.uc_stack.ss_sp = fiber->stack.get();
      fiber->context.uc_stack.ss_size = kFiberStackBytes;
      fiber->context.uc_link = nullptr;
      makecontext(&fiber->context, fiber_trampoline, 0);
      ready_.push_back(fiber);
    }
    work_cv_.notify_all();
  }

  {
    std::unique_lock done_lock(run.done_mutex);
    run.done_cv.wait(done_lock, [&] { return run.done; });
  }
  {
    const std::scoped_lock lock(mutex_);
    current_run_ = nullptr;
  }
  const std::scoped_lock lock(run.failure_mutex);
  return run.first_failure;
}

Scheduler::~Scheduler() {
  {
    const std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

/// The pooled engine's mailbox waiter: wakes its fiber on notify.
struct FiberWaiter final : Mailbox::Waiter {
  Fiber* fiber = nullptr;
  void notify() override { Scheduler::instance().wake(fiber); }
};

}  // namespace

bool executor_in_fiber() { return tl_fiber != nullptr; }

std::exception_ptr executor_run(Machine& machine,
                                const std::vector<std::unique_ptr<Proc>>& procs,
                                const detail::BodyRef& body) {
  return Scheduler::instance().run(machine, procs, body);
}

Message executor_fiber_get(Mailbox& box, int src, long tag) {
  FiberWaiter waiter;
  waiter.fiber = tl_fiber;
  SKIL_ASSERT(waiter.fiber != nullptr,
              "executor: fiber receive outside the pooled engine");
  for (;;) {
    // take_or_wait either hands over the message or registers the
    // waiter; the matching put() deregisters it and wakes the fiber.
    if (auto msg = box.take_or_wait(src, tag, waiter))
      return std::move(*msg);
    Scheduler::instance().park_current();
  }
}

}  // namespace skil::parix
