#include "parix/executor.h"

#include <ucontext.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "parix/charge_tape.h"
#include "parix/machine.h"
#include "parix/mailbox.h"
#include "parix/proc.h"
#include "parix/prof.h"
#include "support/error.h"

// Fiber switches are invisible to the sanitizers unless announced:
// ASan tracks which stack region is live (and its fake-stack state),
// TSan models each fiber as its own logical thread.  With the
// annotations below the pooled engine runs cleanly under both, which
// is what lets CI exercise the multi-carrier scheduler and gang
// settlement sanitized instead of falling back to the threads engine.
#if defined(__SANITIZE_ADDRESS__) && __has_include(<sanitizer/common_interface_defs.h>)
#define SKIL_ASAN_FIBERS 1
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(__SANITIZE_THREAD__) && __has_include(<sanitizer/tsan_interface.h>)
#define SKIL_TSAN_FIBERS 1
#include <sanitizer/tsan_interface.h>
#endif
#if SKIL_ASAN_FIBERS
#include <pthread.h>
#endif

namespace skil::parix {
namespace {

// Fiber stacks are touched lazily (plain new[] without value-init),
// so a 64-processor run commits only the pages it actually uses.
constexpr std::size_t kFiberStackBytes = std::size_t{1} << 20;

// A pending ledger below this many chain adds settles inline: parking
// costs two context switches (~1us), and a gang batch can at best
// hide seven eighths of the chain latency, so short chains lose.
constexpr std::uint64_t kGangMinPendingAdds = 2048;

// Park/unpark protocol (all transitions under Scheduler::mutex_):
//
//   kReady       in a carrier run queue, waiting for a carrier
//   kRunning     executing on a carrier thread
//   kParking     asked to park; its carrier has not yet swapped off
//                the fiber stack, so it cannot be enqueued yet
//   kParked      off-stack, waiting for a wake()
//   kSettleWait  off-stack in the settle queue, waiting for a carrier
//                to gang-settle its processor's charge ledger
//   kFinished    body returned; the carrier recycles the fiber object
//
// A wake() that catches the fiber kRunning (the waiter was already
// deregistered, but the fiber has not reached park_current yet) sets
// notify_pending, which park_current consumes instead of parking --
// the classic missed-wakeup race, resolved without spinning.
// Settle-waiting fibers have no registered mailbox waiter, so wake()
// never races them; only the carrier that collected the batch may
// requeue them.
enum class FiberState {
  kReady,
  kRunning,
  kParking,
  kParked,
  kSettleWait,
  kFinished
};

struct RunState;

struct Fiber {
  ucontext_t context;
  std::unique_ptr<char[]> stack;
  FiberState state = FiberState::kReady;
  bool notify_pending = false;
  /// Set between settle_current() and the carrier's state transition
  /// so the post-switch handler can tell a settle park from a mailbox
  /// park.
  bool settle_wait = false;
  /// Carrier whose run queue this fiber calls home (affinity; idle
  /// carriers steal from the others).
  int home = 0;
  /// Whether this fiber has been dispatched before in the current run
  /// (distinguishes first dispatch from a resume in the profiler's
  /// fibers_run / fibers_resumed counters).
  bool ran_before = false;
  RunState* run = nullptr;
  Proc* proc = nullptr;
  /// ASan fake-stack save slot for switches *off* this fiber (unused
  /// outside ASan builds).
  void* asan_fake_stack = nullptr;
  /// TSan logical-thread context for this fiber (unused outside TSan
  /// builds).
  void* tsan_fiber = nullptr;
};

struct RunState {
  Machine* machine = nullptr;
  const detail::BodyRef* body = nullptr;
  bool deadlock_poisoned = false;  // guarded by Scheduler::mutex_

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  /// Set by detect_deadlock_locked (guarded by done_mutex): asks the
  /// thread waiting in Scheduler::run to poison the machine.  The
  /// waiter owns the machine, so poisoning from there cannot race run
  /// teardown; a carrier poisoning directly could still be walking the
  /// mailboxes when the woken fibers finish the run and the caller
  /// destroys the machine.
  bool deadlock_detected = false;
};

thread_local Fiber* tl_fiber = nullptr;
thread_local ucontext_t* tl_worker_context = nullptr;
#if SKIL_ASAN_FIBERS
thread_local const void* tl_worker_stack_bottom = nullptr;
thread_local std::size_t tl_worker_stack_size = 0;
#endif
#if SKIL_TSAN_FIBERS
thread_local void* tl_worker_tsan_fiber = nullptr;
#endif

// Work stealing migrates fibers between carrier threads, but the
// compiler compiles every function as if its thread could never change
// underneath it: with local-exec TLS it materialises the thread
// pointer once and may reuse the derived addresses across a
// swapcontext that in fact moved the fiber to another carrier (GCC
// does exactly this when it inlines finish_current into
// fiber_trampoline, leaving the finished fiber reading the *original*
// carrier's slot).  Every TLS slot fiber-side code may read therefore
// goes through these opaque accessors: noinline forces a fresh
// thread-pointer load per call, and the volatile asm keeps IPA from
// proving the functions pure and CSE-ing the calls.  Carrier-side code
// (worker_main) accesses its own slots directly -- a worker thread
// never migrates.
__attribute__((noinline)) Fiber*& current_fiber_slot() {
  asm volatile("");
  return tl_fiber;
}
__attribute__((noinline)) ucontext_t* current_worker_context() {
  asm volatile("");
  return tl_worker_context;
}
#if SKIL_ASAN_FIBERS
__attribute__((noinline)) const void* current_worker_stack_bottom() {
  asm volatile("");
  return tl_worker_stack_bottom;
}
__attribute__((noinline)) std::size_t current_worker_stack_size() {
  asm volatile("");
  return tl_worker_stack_size;
}
#endif
#if SKIL_TSAN_FIBERS
__attribute__((noinline)) void* current_worker_tsan_fiber() {
  asm volatile("");
  return tl_worker_tsan_fiber;
}
#endif

/// Announces an upcoming switch from the current context onto
/// `fiber`'s stack.
inline void sanitizer_switch_to_fiber(Fiber* fiber, void** fake_stack_save) {
#if SKIL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, fiber->stack.get(),
                                 kFiberStackBytes);
#else
  (void)fake_stack_save;
#endif
#if SKIL_TSAN_FIBERS
  __tsan_switch_to_fiber(fiber->tsan_fiber, 0);
#else
  (void)fiber;
#endif
}

/// Announces an upcoming switch from the current fiber back onto its
/// carrier's thread stack.  `fake_stack_save` is null on the final
/// switch of a finished fiber (ASan then releases its fake stack).
inline void sanitizer_switch_to_worker(void** fake_stack_save) {
#if SKIL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, current_worker_stack_bottom(),
                                 current_worker_stack_size());
#else
  (void)fake_stack_save;
#endif
#if SKIL_TSAN_FIBERS
  __tsan_switch_to_fiber(current_worker_tsan_fiber(), 0);
#endif
}

/// Completes the switch after landing on a new stack; `fake_stack` is
/// the save slot written when this context last switched away.
inline void sanitizer_finish_switch(void* fake_stack) {
#if SKIL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
#else
  (void)fake_stack;
#endif
}

class Scheduler {
 public:
  static Scheduler& instance() {
    static Scheduler scheduler;
    return scheduler;
  }

  std::exception_ptr run(Machine& machine,
                         const std::vector<std::unique_ptr<Proc>>& procs,
                         const detail::BodyRef& body);

  /// Parks the calling fiber until wake(); returns immediately when a
  /// wake already raced ahead.
  void park_current();

  /// Makes `fiber` runnable again (called from Mailbox::put/poison via
  /// the fiber's registered waiter, possibly on another carrier).
  void wake(Fiber* fiber);

  /// Marks the calling fiber finished and swaps back to its carrier
  /// for good.  Signals run completion when it is the last one.
  [[noreturn]] void finish_current();

  /// Parks the calling fiber into the settle queue; a carrier settles
  /// its processor's ledger in a gang batch and requeues it.  Returns
  /// false when gang settlement is off (single carrier) -- the caller
  /// settles inline.
  bool settle_current();

  /// Number of carrier threads the next pooled run will use.
  int carriers();

  /// Overrides the carrier count (0 = resolve SKIL_CARRIERS /
  /// hardware_concurrency again).  Stops the current pool; the next
  /// run respawns it at the new width.  Must not be called from
  /// inside a run.
  void set_carriers(int n);

  /// Spawns the pool (if needed) and sizes the profiling registry to
  /// cover every carrier, so the hot-path counter sites never index
  /// past the registry during a profiled run.
  void prof_prepare();

 private:
  Scheduler() = default;
  ~Scheduler();

  void worker_main(int index);
  void spawn_workers_locked();
  void stop_workers(std::unique_lock<std::mutex>& lock);
  void enqueue_locked(Fiber* fiber);
  Fiber* pop_ready_locked(int index);
  bool settle_due_locked() const;
  void gang_settle_batch_locked(std::unique_lock<std::mutex>& lock);
  void detect_deadlock_locked(std::unique_lock<std::mutex>& lock);
  int resolve_carriers_locked();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  /// One run queue per carrier (fiber->home indexes it); idle carriers
  /// steal from the other queues, so ready_count_ is the global count.
  std::vector<std::deque<Fiber*>> queues_;
  int ready_count_ = 0;
  /// Fibers parked for gang settlement.  settle_ready_ counts the ones
  /// that have fully left their stack (state kSettleWait); entries
  /// still kParking are skipped until their carrier finishes the swap.
  std::vector<Fiber*> settle_queue_;
  int settle_ready_ = 0;
  bool gang_enabled_ = false;
  std::vector<std::unique_ptr<Fiber>> all_fibers_;  // ownership
  std::vector<Fiber*> free_fibers_;                 // recycled, off-stack
  std::vector<std::thread> workers_;
  int desired_carriers_ = 0;  // 0 = auto (SKIL_CARRIERS / hw concurrency)
  /// Admission cap: at most this many carriers execute fibers (or gang
  /// batches) concurrently; the rest stand by in the cv wait.  Set to
  /// min(carriers, hardware_concurrency).  Oversubscribing physical
  /// cores is pure loss here -- every suppressed slot would otherwise
  /// turn scheduler wakeups into kernel context switches and the
  /// global mutex into a lock convoy -- while SKIL_CARRIERS above the
  /// core count still buys gang settlement and, on larger hosts, the
  /// standby carriers engage as soon as the cap allows.
  int active_cap_ = 1;
  int running_ = 0;
  int parked_ = 0;
  int live_ = 0;
  RunState* current_run_ = nullptr;
  bool shutdown_ = false;

  /// One spmd run owns the pool at a time; concurrent host callers
  /// queue here.
  std::mutex run_serial_;
};

void fiber_trampoline() {
  sanitizer_finish_switch(nullptr);
  Fiber* fiber = current_fiber_slot();
  RunState* run = fiber->run;
  try {
    (*run->body)(*fiber->proc);
  } catch (...) {
    {
      const std::scoped_lock lock(run->failure_mutex);
      if (!run->first_failure) run->first_failure = std::current_exception();
    }
    run->machine->poison_all("processor " + std::to_string(fiber->proc->id()) +
                             " terminated with an error");
  }
  Scheduler::instance().finish_current();
}

int Scheduler::resolve_carriers_locked() {
  if (desired_carriers_ > 0) return desired_carriers_;
  if (const char* env = std::getenv("SKIL_CARRIERS")) {
    const std::string_view value(env);
    if (value != "auto") {
      char* end = nullptr;
      const long n = std::strtol(env, &end, 10);
      SKIL_REQUIRE(end != env && *end == '\0' && n >= 1 && n <= 256,
                   "SKIL_CARRIERS: expected 'auto' or an integer in [1, 256], "
                   "got '" + std::string(env) + "'");
      return static_cast<int>(n);
    }
  }
  unsigned n = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(n, 1u, 16u));
}

int Scheduler::carriers() {
  const std::scoped_lock lock(mutex_);
  return workers_.empty() ? resolve_carriers_locked()
                          : static_cast<int>(workers_.size());
}

void Scheduler::spawn_workers_locked() {
  const int n = resolve_carriers_locked();
  // Keep an existing profiling registry wide enough for the new pool
  // (prof_prepare creates it in the first place): an active registry
  // must always cover every live carrier index.
  if (prof_detail::g_registry.load(std::memory_order_relaxed) != nullptr)
    prof_ensure_registry(n);
  gang_enabled_ = n > 1;
  const unsigned hc = std::thread::hardware_concurrency();
  active_cap_ = hc == 0 ? n : std::max(1, std::min(n, static_cast<int>(hc)));
  queues_.assign(static_cast<std::size_t>(n), {});
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

void Scheduler::stop_workers(std::unique_lock<std::mutex>& lock) {
  if (workers_.empty()) return;
  shutdown_ = true;
  work_cv_.notify_all();
  lock.unlock();
  for (auto& worker : workers_) worker.join();
  lock.lock();
  workers_.clear();
  queues_.clear();
  shutdown_ = false;
}

void Scheduler::set_carriers(int n) {
  SKIL_REQUIRE(current_fiber_slot() == nullptr,
               "executor: set_carriers from inside a pooled run");
  SKIL_REQUIRE(n >= 0 && n <= 256, "executor: carrier count out of range");
  const std::scoped_lock serial(run_serial_);
  std::unique_lock lock(mutex_);
  desired_carriers_ = n;
  stop_workers(lock);
}

void Scheduler::prof_prepare() {
  const std::scoped_lock serial(run_serial_);
  const std::scoped_lock lock(mutex_);
  if (workers_.empty()) spawn_workers_locked();
  prof_ensure_registry(static_cast<int>(workers_.size()));
}

void Scheduler::enqueue_locked(Fiber* fiber) {
  auto& queue = queues_[static_cast<std::size_t>(fiber->home)];
  queue.push_back(fiber);
  ++ready_count_;
  if (ProfRegistry* const prof = prof_registry();
      prof != nullptr && fiber->home < prof->n) [[unlikely]]
    prof->carriers[fiber->home].queue_depth.store(
        static_cast<std::int32_t>(queue.size()), std::memory_order_relaxed);
  // Wake a standby carrier only when the admission cap has room for
  // it; at the cap, the carriers already executing drain the queue
  // themselves when they next return to their loop.
  if (running_ < active_cap_) work_cv_.notify_one();
}

Fiber* Scheduler::pop_ready_locked(int index) {
  ProfRegistry* const prof = prof_registry();
  if (ready_count_ == 0) {
    if (prof != nullptr && index < prof->n) [[unlikely]]
      prof->carriers[index].steal_failed_rounds.fetch_add(
          1, std::memory_order_relaxed);
    return nullptr;
  }
  const int n = static_cast<int>(queues_.size());
  // Own queue first (affinity), then steal round-robin from the rest.
  for (int i = 0; i < n; ++i) {
    const int owner = (index + i) % n;
    auto& queue = queues_[static_cast<std::size_t>(owner)];
    if (queue.empty()) {
      if (prof != nullptr && i > 0 && index < prof->n) [[unlikely]]
        prof->carriers[index].steal_attempts.fetch_add(
            1, std::memory_order_relaxed);
      continue;
    }
    Fiber* fiber = queue.front();
    queue.pop_front();
    --ready_count_;
    if (prof != nullptr) [[unlikely]] {
      if (i > 0 && index < prof->n) {
        CarrierCounters& pc = prof->carriers[index];
        pc.steal_attempts.fetch_add(1, std::memory_order_relaxed);
        pc.steal_successes.fetch_add(1, std::memory_order_relaxed);
      }
      if (owner < prof->n)
        prof->carriers[owner].queue_depth.store(
            static_cast<std::int32_t>(queue.size()),
            std::memory_order_relaxed);
    }
    return fiber;
  }
  SKIL_ASSERT(false, "executor: ready_count_ out of sync");
  return nullptr;
}

bool Scheduler::settle_due_locked() const {
  // Settle when a full gang is waiting, or when nothing else is
  // runnable (running fibers elsewhere may still join the batch, but
  // waiting on them could wait forever -- they might themselves need
  // one of the queued settlements to make progress).
  return settle_ready_ >= kGangWidth ||
         (settle_ready_ > 0 && ready_count_ == 0);
}

void Scheduler::gang_settle_batch_locked(std::unique_lock<std::mutex>& lock) {
  Fiber* batch[kGangWidth];
  GangLane lanes[kGangWidth];
  int k = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < settle_queue_.size(); ++i) {
    Fiber* fiber = settle_queue_[i];
    if (k < kGangWidth && fiber->state == FiberState::kSettleWait) {
      batch[k++] = fiber;
    } else {
      settle_queue_[kept++] = fiber;  // still kParking, or batch full
    }
  }
  settle_queue_.resize(kept);
  settle_ready_ -= k;
  if (ProfRegistry* const prof = prof_registry(); prof != nullptr)
      [[unlikely]] {
    prof->globals.settle_queue_depth.store(
        static_cast<std::int32_t>(settle_queue_.size()),
        std::memory_order_relaxed);
    if (k > 0) {
      prof->globals.gang_batches.fetch_add(1, std::memory_order_relaxed);
      prof->globals.gang_lane_hist[k - 1].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  if (k == 0) return;
  for (int i = 0; i < k; ++i) lanes[i] = batch[i]->proc->gang_lane();
  // The fused settle runs outside the scheduler lock: the fibers are
  // off their stacks and unreachable by wake() (no mailbox waiter), so
  // this carrier owns their processors exclusively; the lock handoff
  // (enqueue under mutex_ -> collect under mutex_) orders the memory.
  lock.unlock();
  gang_settle(lanes, k);
  lock.lock();
  for (int i = 0; i < k; ++i) {
    batch[i]->settle_wait = false;
    batch[i]->state = FiberState::kReady;
    enqueue_locked(batch[i]);
  }
}

void Scheduler::detect_deadlock_locked(std::unique_lock<std::mutex>& lock) {
  if (!settle_queue_.empty()) return;  // settlement work pending
  if (ready_count_ > 0 || running_ > 0 || live_ == 0 || parked_ != live_)
    return;
  RunState* run = current_run_;
  if (run == nullptr || run->deadlock_poisoned) return;
  run->deadlock_poisoned = true;
  // Hand the poisoning to the thread waiting in Scheduler::run rather
  // than doing it here: that thread owns the machine, so it cannot be
  // destroyed under the poisoner's feet (a carrier walking the
  // mailboxes races run teardown once the woken fibers finish).  The
  // deadlock state itself cannot change meanwhile -- every live fiber
  // is parked with no wake in flight, by the checks above.
  lock.unlock();
  {
    const std::scoped_lock done_lock(run->done_mutex);
    run->deadlock_detected = true;
  }
  run->done_cv.notify_one();
  lock.lock();
}

void Scheduler::worker_main(int index) {
  ucontext_t worker_context;
  tl_worker_context = &worker_context;
#if SKIL_ASAN_FIBERS
  {
    pthread_attr_t attr;
    void* bottom = nullptr;
    std::size_t size = 0;
    pthread_getattr_np(pthread_self(), &attr);
    pthread_attr_getstack(&attr, &bottom, &size);
    pthread_attr_destroy(&attr);
    tl_worker_stack_bottom = bottom;
    tl_worker_stack_size = size;
  }
#endif
#if SKIL_TSAN_FIBERS
  tl_worker_tsan_fiber = __tsan_get_current_fiber();
#endif
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || ((ready_count_ > 0 || settle_due_locked()) &&
                           running_ < active_cap_);
    });
    if (shutdown_) return;
    if (settle_due_locked()) {
      // The batch occupies an admission slot like a fiber would: its
      // settled fibers re-enqueue at the end, and the slot keeps
      // standby carriers from piling onto the queue mid-batch.
      ++running_;
      if (ProfRegistry* const prof = prof_registry();
          prof != nullptr && index < prof->n) [[unlikely]] {
        const auto t0 = std::chrono::steady_clock::now();
        gang_settle_batch_locked(lock);
        prof->carriers[index].settle_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
      } else {
        gang_settle_batch_locked(lock);
      }
      --running_;
      // Enqueues during the batch saw its admission slot occupied and
      // may have suppressed their wakeups; hand one on now that the
      // slot is free (this carrier takes another item itself on the
      // next iteration).
      if (ready_count_ > 0 && running_ < active_cap_) work_cv_.notify_one();
      continue;
    }
    Fiber* fiber = pop_ready_locked(index);
    if (fiber == nullptr) continue;  // settle batch raced us
    fiber->state = FiberState::kRunning;
    fiber->home = index;
    ++running_;
    const bool resumed = fiber->ran_before;
    fiber->ran_before = true;
    lock.unlock();

    ProfRegistry* const prof = prof_registry();
    std::chrono::steady_clock::time_point prof_t0;
    if (prof != nullptr && index < prof->n) [[unlikely]] {
      CarrierCounters& pc = prof->carriers[index];
      pc.fibers_run.fetch_add(1, std::memory_order_relaxed);
      if (resumed) pc.fibers_resumed.fetch_add(1, std::memory_order_relaxed);
      pc.running_proc.store(fiber->proc->id(), std::memory_order_relaxed);
      prof_t0 = std::chrono::steady_clock::now();
    }

    tl_fiber = fiber;
    void* fake_stack = nullptr;
    sanitizer_switch_to_fiber(fiber, &fake_stack);
    swapcontext(&worker_context, &fiber->context);
    sanitizer_finish_switch(fake_stack);
    tl_fiber = nullptr;

    if (prof != nullptr && index < prof->n) [[unlikely]] {
      CarrierCounters& pc = prof->carriers[index];
      pc.run_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - prof_t0)
                  .count()),
          std::memory_order_relaxed);
      pc.running_proc.store(-1, std::memory_order_relaxed);
    }

    lock.lock();
    --running_;
    switch (fiber->state) {
      case FiberState::kFinished:
        // Safe to recycle: the fiber has left its stack for good.
        free_fibers_.push_back(fiber);
        break;
      case FiberState::kParking:
        if (fiber->settle_wait) {
          // Now off-stack: eligible for a gang batch.  The cv wake
          // lets an idle carrier run the batch even if this one goes
          // on to execute ready fibers first.
          fiber->state = FiberState::kSettleWait;
          ++settle_ready_;
          if (settle_due_locked()) work_cv_.notify_one();
        } else if (fiber->notify_pending) {
          fiber->notify_pending = false;
          fiber->state = FiberState::kReady;
          enqueue_locked(fiber);
        } else {
          fiber->state = FiberState::kParked;
          ++parked_;
          if (ProfRegistry* const prof_park = prof_registry();
              prof_park != nullptr && index < prof_park->n) [[unlikely]]
            prof_park->carriers[index].parks.fetch_add(
                1, std::memory_order_relaxed);
          detect_deadlock_locked(lock);
        }
        break;
      case FiberState::kReady:
        // A wake() arrived while the fiber was mid-park; it could not
        // enqueue (we were still on the fiber's stack), so we do.
        enqueue_locked(fiber);
        break;
      default:
        SKIL_ASSERT(false, "executor: fiber yielded in impossible state");
    }
  }
}

void Scheduler::park_current() {
  Fiber* fiber = current_fiber_slot();
  SKIL_ASSERT(fiber != nullptr, "executor: park outside a fiber");
  {
    const std::scoped_lock lock(mutex_);
    if (fiber->notify_pending) {
      fiber->notify_pending = false;
      return;
    }
    fiber->state = FiberState::kParking;
  }
  sanitizer_switch_to_worker(&fiber->asan_fake_stack);
  swapcontext(&fiber->context, current_worker_context());
  sanitizer_finish_switch(fiber->asan_fake_stack);
}

bool Scheduler::settle_current() {
  Fiber* fiber = current_fiber_slot();
  SKIL_ASSERT(fiber != nullptr, "executor: settle park outside a fiber");
  {
    const std::scoped_lock lock(mutex_);
    if (!gang_enabled_) return false;
    fiber->state = FiberState::kParking;
    fiber->settle_wait = true;
    settle_queue_.push_back(fiber);
    if (ProfRegistry* const prof = prof_registry(); prof != nullptr)
        [[unlikely]] {
      if (fiber->home < prof->n)
        prof->carriers[fiber->home].settle_enqueues.fetch_add(
            1, std::memory_order_relaxed);
      const auto depth = static_cast<std::int32_t>(settle_queue_.size());
      prof->globals.settle_queue_depth.store(depth, std::memory_order_relaxed);
      // Writers hold mutex_, so the load/store max update cannot race.
      if (static_cast<std::uint64_t>(depth) >
          prof->globals.settle_queue_max.load(std::memory_order_relaxed))
        prof->globals.settle_queue_max.store(
            static_cast<std::uint64_t>(depth), std::memory_order_relaxed);
    }
  }
  sanitizer_switch_to_worker(&fiber->asan_fake_stack);
  swapcontext(&fiber->context, current_worker_context());
  sanitizer_finish_switch(fiber->asan_fake_stack);
  return true;
}

void Scheduler::wake(Fiber* fiber) {
  const std::scoped_lock lock(mutex_);
  switch (fiber->state) {
    case FiberState::kParked:
      fiber->state = FiberState::kReady;
      --parked_;
      if (ProfRegistry* const prof = prof_registry();
          prof != nullptr && fiber->home < prof->n) [[unlikely]]
        prof->carriers[fiber->home].unparks.fetch_add(
            1, std::memory_order_relaxed);
      enqueue_locked(fiber);
      break;
    case FiberState::kParking:
      // Its carrier is still swapping off the fiber stack and will
      // enqueue when it observes the state change.  (Never a settle
      // park: those have no registered mailbox waiter to fire.)
      SKIL_ASSERT(!fiber->settle_wait, "executor: wake raced a settle park");
      fiber->state = FiberState::kReady;
      break;
    default:
      fiber->notify_pending = true;
      break;
  }
}

void Scheduler::finish_current() {
  Fiber* fiber = current_fiber_slot();
  RunState* run = fiber->run;
  bool last = false;
  {
    const std::scoped_lock lock(mutex_);
    fiber->state = FiberState::kFinished;
    --live_;
    last = live_ == 0;
  }
  if (last) {
    const std::scoped_lock lock(run->done_mutex);
    run->done = true;
    run->done_cv.notify_one();
  }
  // From here the fiber touches nothing of the run (the caller may
  // already be tearing it down); it only leaves its stack -- for good,
  // so ASan releases its fake stack (null save slot).
  sanitizer_switch_to_worker(nullptr);
  swapcontext(&fiber->context, current_worker_context());
  SKIL_ASSERT(false, "executor: finished fiber resumed");
  std::abort();
}

std::exception_ptr Scheduler::run(
    Machine& machine, const std::vector<std::unique_ptr<Proc>>& procs,
    const detail::BodyRef& body) {
  const std::scoped_lock serial(run_serial_);
  RunState run;
  run.machine = &machine;
  run.body = &body;

  {
    std::unique_lock lock(mutex_);
    if (workers_.empty()) spawn_workers_locked();
    const int carriers = static_cast<int>(workers_.size());
    live_ = static_cast<int>(procs.size());
    current_run_ = &run;
    for (const auto& proc : procs) {
      Fiber* fiber;
      if (!free_fibers_.empty()) {
        fiber = free_fibers_.back();
        free_fibers_.pop_back();
      } else {
        all_fibers_.push_back(std::make_unique<Fiber>());
        fiber = all_fibers_.back().get();
        fiber->stack.reset(new char[kFiberStackBytes]);
#if SKIL_TSAN_FIBERS
        fiber->tsan_fiber = __tsan_create_fiber(0);
#endif
      }
      fiber->run = &run;
      fiber->proc = proc.get();
      fiber->state = FiberState::kReady;
      fiber->notify_pending = false;
      fiber->settle_wait = false;
      fiber->ran_before = false;
      fiber->home = proc->id() % carriers;
      fiber->asan_fake_stack = nullptr;
      getcontext(&fiber->context);
      fiber->context.uc_stack.ss_sp = fiber->stack.get();
      fiber->context.uc_stack.ss_size = kFiberStackBytes;
      fiber->context.uc_link = nullptr;
      makecontext(&fiber->context, fiber_trampoline, 0);
      queues_[static_cast<std::size_t>(fiber->home)].push_back(fiber);
      ++ready_count_;
    }
    if (ProfRegistry* const prof = prof_registry(); prof != nullptr)
        [[unlikely]] {
      const int lanes = std::min(carriers, prof->n);
      for (int i = 0; i < lanes; ++i)
        prof->carriers[i].queue_depth.store(
            static_cast<std::int32_t>(
                queues_[static_cast<std::size_t>(i)].size()),
            std::memory_order_relaxed);
    }
    work_cv_.notify_all();
  }

  {
    std::unique_lock done_lock(run.done_mutex);
    for (;;) {
      run.done_cv.wait(done_lock,
                       [&] { return run.done || run.deadlock_detected; });
      if (run.done) break;
      // A carrier found every live fiber parked in recv; poison from
      // here, where the machine is owned, then resume waiting for the
      // woken fibers to finish with their faults.
      run.deadlock_detected = false;
      done_lock.unlock();
      machine.poison_all("deadlock: every virtual processor is blocked in recv");
      done_lock.lock();
    }
  }
  {
    const std::scoped_lock lock(mutex_);
    current_run_ = nullptr;
  }
  const std::scoped_lock lock(run.failure_mutex);
  return run.first_failure;
}

Scheduler::~Scheduler() {
  {
    const std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

/// The pooled engine's mailbox waiter: wakes its fiber on notify.
struct FiberWaiter final : Mailbox::Waiter {
  Fiber* fiber = nullptr;
  void notify() override { Scheduler::instance().wake(fiber); }
};

}  // namespace

bool executor_in_fiber() { return current_fiber_slot() != nullptr; }

int executor_carriers() { return Scheduler::instance().carriers(); }

void executor_set_carriers(int n) { Scheduler::instance().set_carriers(n); }

void executor_prof_prepare() { Scheduler::instance().prof_prepare(); }

bool executor_gang_settle(Proc& proc) {
  Fiber* fiber = current_fiber_slot();
  if (fiber == nullptr || fiber->proc != &proc) return false;
  if (proc.gang_lane().ledger->pending_adds() < kGangMinPendingAdds)
    return false;
  return Scheduler::instance().settle_current();
}

std::exception_ptr executor_run(Machine& machine,
                                const std::vector<std::unique_ptr<Proc>>& procs,
                                const detail::BodyRef& body) {
  return Scheduler::instance().run(machine, procs, body);
}

Message executor_fiber_get(Mailbox& box, int src, long tag) {
  FiberWaiter waiter;
  waiter.fiber = current_fiber_slot();
  SKIL_ASSERT(waiter.fiber != nullptr,
              "executor: fiber receive outside the pooled engine");
  for (;;) {
    // take_or_wait either hands over the message or registers the
    // waiter; the matching put() deregisters it and wakes the fiber.
    if (auto msg = box.take_or_wait(src, tag, waiter))
      return std::move(*msg);
    Scheduler::instance().park_current();
  }
}

}  // namespace skil::parix
