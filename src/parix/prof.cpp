#include "parix/prof.h"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "parix/charge_tape.h"
#include "support/env.h"

namespace skil::parix {

// The gang histogram is indexed by lanes-1, so the registry layout is
// wrong the moment the settle kernel's width changes.
static_assert(kProfGangLanes == kGangWidth,
              "prof gang histogram width must match the settle kernel");

namespace {

constexpr std::string_view kProfModeNames[] = {"off", "counters", "sampled"};

ProfMode initial_default_mode() {
  if (const char* env = std::getenv("SKIL_PROF"))
    return parse_prof_mode(env);
  return ProfMode::kOff;
}

ProfMode& default_mode_slot() {
  static ProfMode mode = initial_default_mode();
  return mode;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// Old registries are parked here forever instead of being freed: a
// carrier or sampler may hold a pointer loaded before a resize, and a
// few retained KiB beat reasoning about concurrent reclamation.
// "Forever" includes process exit -- the vectors are intentionally
// leaked, never static-destructed.  A carrier charging run_ns after
// its last fiber yields races main()'s return (the run completes the
// moment the fiber finishes, not when the carrier's accounting tail
// does), and under CPU contention that tail can still be pending when
// exit() runs static destructors: freeing the counter arrays there is
// a use-after-free in the parked carrier, seen as a rare exit-time
// segfault under --prof on a loaded host.
std::vector<std::unique_ptr<ProfRegistry>>& retired_registries() {
  static auto* retired = new std::vector<std::unique_ptr<ProfRegistry>>();
  return *retired;
}

std::vector<std::unique_ptr<CarrierCounters[]>>& retired_lanes() {
  static auto* retired = new std::vector<std::unique_ptr<CarrierCounters[]>>();
  return *retired;
}

std::mutex& pool_mutex() {
  static std::mutex m;
  return m;
}

PoolCounters& pool_counters_slot() {
  static PoolCounters counters;
  return counters;
}

}  // namespace

namespace prof_detail {
std::atomic<ProfRegistry*> g_registry{nullptr};
std::atomic<int> g_active_runs{0};
}  // namespace prof_detail

ProfMode parse_prof_mode(std::string_view name) {
  return support::parse_knob<ProfMode>("SKIL_PROF", "profiler mode", name,
                                       kProfModeNames);
}

std::string_view prof_mode_name(ProfMode mode) {
  return kProfModeNames[static_cast<std::size_t>(mode)];
}

ProfMode default_prof_mode() { return default_mode_slot(); }

void set_default_prof_mode(ProfMode mode) { default_mode_slot() = mode; }

void prof_ensure_registry(int carriers) {
  if (carriers <= 0) return;
  std::scoped_lock lock(registry_mutex());
  ProfRegistry* current =
      prof_detail::g_registry.load(std::memory_order_relaxed);
  if (current != nullptr && current->n >= carriers) return;
  auto grown = std::make_unique<ProfRegistry>();
  auto lanes = std::make_unique<CarrierCounters[]>(
      static_cast<std::size_t>(carriers));
  if (current != nullptr) {
    // Carry the cumulative counts over so before/after deltas spanning
    // a resize stay exact.  Writers are quiescent here: the executor
    // only resizes between runs.
    for (int i = 0; i < current->n; ++i) {
      const CarrierCounters& src = current->carriers[i];
      CarrierCounters& dst = lanes[i];
      dst.fibers_run.store(src.fibers_run.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      dst.fibers_resumed.store(
          src.fibers_resumed.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      dst.steal_attempts.store(
          src.steal_attempts.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      dst.steal_successes.store(
          src.steal_successes.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      dst.steal_failed_rounds.store(
          src.steal_failed_rounds.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      dst.settle_enqueues.store(
          src.settle_enqueues.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      dst.parks.store(src.parks.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      dst.unparks.store(src.unparks.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      dst.run_ns.store(src.run_ns.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      dst.settle_ns.store(src.settle_ns.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    grown->globals.gang_batches.store(
        current->globals.gang_batches.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    for (int i = 0; i < kProfGangLanes; ++i)
      grown->globals.gang_lane_hist[i].store(
          current->globals.gang_lane_hist[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    grown->globals.settle_queue_max.store(
        current->globals.settle_queue_max.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  grown->carriers = lanes.get();
  grown->n = carriers;
  retired_lanes().push_back(std::move(lanes));
  ProfRegistry* published = grown.get();
  retired_registries().push_back(std::move(grown));
  prof_detail::g_registry.store(published, std::memory_order_release);
}

void prof_activate() {
  prof_detail::g_active_runs.fetch_add(1, std::memory_order_relaxed);
}

void prof_deactivate() {
  prof_detail::g_active_runs.fetch_sub(1, std::memory_order_relaxed);
}

void prof_note_pool_acquire(bool hit, std::uint64_t bytes) {
  std::scoped_lock lock(pool_mutex());
  PoolCounters& counters = pool_counters_slot();
  ++counters.acquires;
  if (hit)
    ++counters.hits;
  else
    ++counters.misses;
  counters.bytes += bytes;
}

PoolCounters prof_pool_counters() {
  std::scoped_lock lock(pool_mutex());
  return pool_counters_slot();
}

void prof_reset_watermarks() {
  ProfRegistry* registry =
      prof_detail::g_registry.load(std::memory_order_relaxed);
  if (registry == nullptr) return;
  registry->globals.settle_queue_max.store(0, std::memory_order_relaxed);
}

RegistrySnapshot prof_snapshot() {
  RegistrySnapshot snapshot;
  ProfRegistry* registry =
      prof_detail::g_registry.load(std::memory_order_acquire);
  if (registry == nullptr) return snapshot;
  snapshot.lanes.reserve(static_cast<std::size_t>(registry->n));
  for (int i = 0; i < registry->n; ++i) {
    const CarrierCounters& c = registry->carriers[i];
    RegistrySnapshot::Lane lane;
    lane.fibers_run = c.fibers_run.load(std::memory_order_relaxed);
    lane.fibers_resumed = c.fibers_resumed.load(std::memory_order_relaxed);
    lane.steal_attempts = c.steal_attempts.load(std::memory_order_relaxed);
    lane.steal_successes = c.steal_successes.load(std::memory_order_relaxed);
    lane.steal_failed_rounds =
        c.steal_failed_rounds.load(std::memory_order_relaxed);
    lane.settle_enqueues = c.settle_enqueues.load(std::memory_order_relaxed);
    lane.parks = c.parks.load(std::memory_order_relaxed);
    lane.unparks = c.unparks.load(std::memory_order_relaxed);
    lane.run_ns = c.run_ns.load(std::memory_order_relaxed);
    lane.settle_ns = c.settle_ns.load(std::memory_order_relaxed);
    snapshot.lanes.push_back(lane);
  }
  snapshot.gang_batches =
      registry->globals.gang_batches.load(std::memory_order_relaxed);
  for (int i = 0; i < kProfGangLanes; ++i)
    snapshot.gang_lane_hist[i] =
        registry->globals.gang_lane_hist[i].load(std::memory_order_relaxed);
  snapshot.settle_queue_max =
      registry->globals.settle_queue_max.load(std::memory_order_relaxed);
  return snapshot;
}

void SchedulerTotals::add(const SchedulerReport& report) {
  for (const CarrierReport& c : report.per_carrier) {
    fibers_run += c.fibers_run;
    fibers_resumed += c.fibers_resumed;
    steal_attempts += c.steal_attempts;
    steal_successes += c.steal_successes;
    steal_failed_rounds += c.steal_failed_rounds;
    settle_enqueues += c.settle_enqueues;
    parks += c.parks;
    unparks += c.unparks;
    run_ns += c.run_ns;
    settle_ns += c.settle_ns;
  }
  gang_batches += report.gang_batches;
  for (int i = 0; i < kProfGangLanes; ++i)
    gang_lane_hist[i] += report.gang_lane_hist[i];
  if (report.settle_queue_max > settle_queue_max)
    settle_queue_max = report.settle_queue_max;
  pool_acquires += report.pool.acquires;
  pool_hits += report.pool.hits;
  pool_misses += report.pool.misses;
  pool_bytes += report.pool.bytes;
}

void SchedulerTotals::add(const SchedulerTotals& other) {
  fibers_run += other.fibers_run;
  fibers_resumed += other.fibers_resumed;
  steal_attempts += other.steal_attempts;
  steal_successes += other.steal_successes;
  steal_failed_rounds += other.steal_failed_rounds;
  settle_enqueues += other.settle_enqueues;
  parks += other.parks;
  unparks += other.unparks;
  run_ns += other.run_ns;
  settle_ns += other.settle_ns;
  gang_batches += other.gang_batches;
  for (int i = 0; i < kProfGangLanes; ++i)
    gang_lane_hist[i] += other.gang_lane_hist[i];
  if (other.settle_queue_max > settle_queue_max)
    settle_queue_max = other.settle_queue_max;
  pool_acquires += other.pool_acquires;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
  pool_bytes += other.pool_bytes;
}

namespace {
// A runaway run cannot grow the timeline without bound: at the default
// 1 ms period this is ~17 min of samples on 1 carrier.  The period is
// deliberately coarse: every tick preempts a carrier on a saturated
// host (the reference box exposes one hardware thread), and at 4 kHz
// that disruption alone cost ~14 % wall on the quick grid where 1 kHz
// stays inside W7's <=5 % budget.
constexpr std::size_t kMaxSamples = std::size_t{1} << 20;
}  // namespace

// One process-wide sampler thread, lazily started on the first sampled
// run and then parked on a condition variable between runs.  Spawning a
// thread per run (and eating up to one full sleep period at stop) costs
// ~250 us per spmd_run -- on the quick benchmark grid, whose runs last
// single-digit milliseconds, that alone blows the <=5 % overhead budget.
// A parked worker makes attach/detach two mutex+cv operations.  The
// worker is never torn down: like the retired counter registries above,
// one parked thread for the life of the process beats reasoning about
// static-destruction order against a detaching sampler.
class SamplerWorker {
 public:
  static SamplerWorker& instance() {
    static SamplerWorker* w = new SamplerWorker();  // intentionally leaked
    return *w;
  }

  void attach(ProfSampler* session) {
    std::unique_lock<std::mutex> lock(mutex_);
    // Runs are serialized, but be defensive: wait out a session that is
    // still detaching.
    cv_.wait(lock, [this] { return active_ == nullptr; });
    active_ = session;
    cv_.notify_all();
  }

  void detach(ProfSampler* session) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (active_ != session) return;
    active_ = nullptr;
    cv_.notify_all();
    // The worker samples under the lock, so once we hold it with
    // active_ cleared there is no in-flight tick against this session.
  }

 private:
  SamplerWorker() {
    std::thread([this] { loop(); }).detach();
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] { return active_ != nullptr; });
      ProfSampler* session = active_;
      while (active_ == session) {
        cv_.wait_for(lock, session->period_);
        if (active_ != session) break;
        session->sample_once(std::chrono::steady_clock::now());
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  ProfSampler* active_ = nullptr;
};

ProfSampler::ProfSampler(std::chrono::steady_clock::time_point epoch,
                         int carriers, std::chrono::nanoseconds period)
    : epoch_(epoch),
      period_(period),
      timeline_(std::make_shared<ProfTimeline>()) {
  timeline_->carriers = carriers;
  timeline_->period_ns = static_cast<std::uint64_t>(period.count());
  // First tick synchronously, before the run body starts: even a run
  // shorter than one period gets one sample per carrier.
  sample_once(std::chrono::steady_clock::now());
  SamplerWorker::instance().attach(this);
}

ProfSampler::~ProfSampler() { SamplerWorker::instance().detach(this); }

std::shared_ptr<const ProfTimeline> ProfSampler::stop() {
  SamplerWorker::instance().detach(this);
  if (!stopped_) {
    stopped_ = true;
    // One closing tick so every lane's last state is recorded at the
    // run's end rather than up to one period earlier.
    sample_once(std::chrono::steady_clock::now());
  }
  return timeline_;
}

void ProfSampler::sample_once(std::chrono::steady_clock::time_point now) {
  ProfRegistry* registry =
      prof_detail::g_registry.load(std::memory_order_acquire);
  if (registry == nullptr) return;
  if (timeline_->samples.size() >= kMaxSamples) return;
  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  const int lanes = std::min(timeline_->carriers, registry->n);
  const std::int32_t settle_depth =
      registry->globals.settle_queue_depth.load(std::memory_order_relaxed);
  for (int i = 0; i < lanes; ++i) {
    const CarrierCounters& c = registry->carriers[i];
    ProfSample sample;
    sample.wall_ns = wall_ns;
    sample.carrier = i;
    sample.running_proc = c.running_proc.load(std::memory_order_relaxed);
    sample.queue_depth = c.queue_depth.load(std::memory_order_relaxed);
    sample.settle_queue_depth = settle_depth;
    sample.fibers_run = c.fibers_run.load(std::memory_order_relaxed);
    sample.steal_successes = c.steal_successes.load(std::memory_order_relaxed);
    timeline_->samples.push_back(sample);
  }
}

}  // namespace skil::parix
