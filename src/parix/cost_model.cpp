#include "parix/cost_model.h"

namespace skil::parix {

CostModel CostModel::t800() { return CostModel{}; }

CostModel CostModel::t800_sync() {
  CostModel cm;
  cm.default_send_mode = SendMode::kSync;
  return cm;
}

Stats& Stats::operator+=(const Stats& other) {
  for (int k = 0; k < kOpKinds; ++k) ops[k] += other.ops[k];
  messages_sent += other.messages_sent;
  bytes_sent += other.bytes_sent;
  messages_received += other.messages_received;
  bytes_received += other.bytes_received;
  compute_us += other.compute_us;
  comm_us += other.comm_us;
  return *this;
}

}  // namespace skil::parix
