#include "parix/charge_tape.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "support/error.h"

namespace skil::parix {

namespace {

ChargePath initial_default_charge_path() {
  if (const char* env = std::getenv("SKIL_CHARGE"))
    return parse_charge_path(env);
  return ChargePath::kTape;
}

ChargePath& default_charge_path_slot() {
  static ChargePath path = initial_default_charge_path();
  return path;
}

}  // namespace

ChargePath parse_charge_path(std::string_view name) {
  if (name == "interp") return ChargePath::kInterp;
  if (name == "tape") return ChargePath::kTape;
  SKIL_REQUIRE(false, "SKIL_CHARGE: unknown charge path '" +
                          std::string(name) +
                          "' (accepted values: interp, tape)");
  return ChargePath::kTape;  // unreachable
}

ChargePath default_charge_path() { return default_charge_path_slot(); }

void set_default_charge_path(ChargePath path) {
  default_charge_path_slot() = path;
}

namespace {

// Eight double lanes in one GCC vector.  The extension lowers to
// whatever the target offers (AVX-512, AVX2 pairs, SSE2 quads); in
// every case lane i of a vector add is the IEEE add of lane i's
// operands, so the packed clocks round exactly as their scalar chains
// would.  No fast-math anywhere in the tree, so the compiler cannot
// reassociate either.
typedef double GangVec __attribute__((vector_size(kGangWidth * sizeof(double))));

/// Per-lane settlement cursor: which record the lane is on, how many
/// repetitions of it remain, and the lane's in-flight accumulators.
struct LaneCursor {
  const ChargeLedger* ledger = nullptr;
  Stats* stats = nullptr;
  std::size_t rec = 0;
  std::uint64_t left = 0;
  double vt = 0.0;
  double cu = 0.0;
  bool active = false;
};

/// Books the integer op counters of the lane's current record (exact,
/// order-insensitive) and steps the cursor to the next record.
/// Returns false when the lane's ledger is exhausted.
bool advance_record(LaneCursor& lane) {
  const ChargeLedger::Record& rec = lane.ledger->records()[lane.rec];
  const ChargeTape::Entry* e = lane.ledger->entries().data() + rec.first;
  for (std::uint32_t i = 0; i < rec.n; ++i)
    lane.stats->ops[static_cast<int>(e[i].kind)] += e[i].count * rec.times;
  ++lane.rec;
  if (lane.rec == lane.ledger->records().size()) {
    lane.active = false;
    return false;
  }
  lane.left = lane.ledger->records()[lane.rec].times;
  return true;
}

std::atomic<std::uint64_t> g_gang_batches{0};
std::atomic<std::uint64_t> g_gang_lanes{0};
std::atomic<std::uint64_t> g_gang_adds{0};
std::atomic<std::uint64_t> g_inline_adds{0};
std::atomic<std::uint64_t> g_uniform_rounds{0};
std::atomic<std::uint64_t> g_divergent_rounds{0};
std::atomic<std::uint64_t> g_padded_slots{0};

}  // namespace

GangCounters gang_counters() {
  return GangCounters{g_gang_batches.load(std::memory_order_relaxed),
                      g_gang_lanes.load(std::memory_order_relaxed),
                      g_gang_adds.load(std::memory_order_relaxed),
                      g_inline_adds.load(std::memory_order_relaxed),
                      g_uniform_rounds.load(std::memory_order_relaxed),
                      g_divergent_rounds.load(std::memory_order_relaxed),
                      g_padded_slots.load(std::memory_order_relaxed)};
}

void note_inline_settle(std::uint64_t adds) {
  g_inline_adds.fetch_add(adds, std::memory_order_relaxed);
}

// The fused loops are dominated by GangVec (8-double) adds.  The tree
// builds for baseline x86-64, where a 64-byte vector lowers to four
// SSE2 pairs -- and the sixteen xmm registers cannot hold both
// accumulator vectors plus the addend row, so the chains spill to the
// stack and the kernel loses its ILP advantage.  Function
// multiversioning compiles the whole kernel additionally for AVX2 and
// AVX-512F and dispatches by cpuid at load time (ifunc).  This cannot
// move a single bit: vector addition is per-lane exact-rounded IEEE
// addition on every x86 vector ISA, and no fast-math flag is in play,
// so lane i's chain performs the same adds in the same order
// regardless of which clone runs (asserted lane-vs-scalar in
// tests/test_parix_charge_tape.cpp, which runs under whichever clone
// the host dispatches).
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
#define SKIL_GANG_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#ifndef SKIL_GANG_CLONES
#define SKIL_GANG_CLONES
#endif

SKIL_GANG_CLONES void gang_settle(GangLane* lanes, int k) {
  SKIL_ASSERT(k >= 1 && k <= kGangWidth, "gang_settle: bad lane count");
  g_gang_batches.fetch_add(1, std::memory_order_relaxed);
  g_gang_lanes.fetch_add(static_cast<std::uint64_t>(k),
                         std::memory_order_relaxed);
  {
    std::uint64_t adds = 0;
    for (int l = 0; l < k; ++l) adds += lanes[l].ledger->pending_adds();
    g_gang_adds.fetch_add(adds, std::memory_order_relaxed);
  }
  LaneCursor cur[kGangWidth];
  int active = 0;
  for (int l = 0; l < k; ++l) {
    LaneCursor& lane = cur[l];
    lane.ledger = lanes[l].ledger;
    lane.stats = lanes[l].stats;
    lane.vt = *lanes[l].vtime;
    lane.cu = lanes[l].stats->compute_us;
    if (!lane.ledger->records().empty()) {
      lane.left = lane.ledger->records()[0].times;
      lane.active = true;
      ++active;
    }
  }

  while (active > 1) {
    // Vector round: pack the active lanes' current records transposed
    // (A[i][l] = lane l's i-th addend) and run the fused chunk for the
    // smallest remaining repetition count.  Lanes need NOT sit on
    // records of one length: shorter records are padded to the round
    // width P with 0.0 addends, and x + 0.0 is the IEEE identity for
    // every x >= +0.0 -- which virtual clocks and compute_us always
    // are (costs are non-negative and both start at +0.0) -- so the
    // padded adds cannot move a lane's chain by a bit.  SPMD
    // supersteps make equal lengths the common case; the padding is
    // what keeps lanes fused when data distribution drifts their
    // record sequences apart (per-repetition scalar fallbacks spend
    // more on round bookkeeping than the adds they perform).
    std::uint32_t P = 0;
    std::uint64_t chunk = 0;
    bool uniform = true;
    for (int l = 0; l < k; ++l) {
      if (!cur[l].active) continue;
      const std::uint32_t rn = cur[l].ledger->records()[cur[l].rec].n;
      if (P != 0 && rn != P) uniform = false;
      if (rn > P) P = rn;
      if (chunk == 0 || cur[l].left < chunk) chunk = cur[l].left;
    }
    (uniform ? g_uniform_rounds : g_divergent_rounds)
        .fetch_add(1, std::memory_order_relaxed);
    if (!uniform) {
      std::uint64_t pads = 0;
      for (int l = 0; l < k; ++l)
        if (cur[l].active)
          pads += (P - cur[l].ledger->records()[cur[l].rec].n) * chunk;
      g_padded_slots.fetch_add(pads, std::memory_order_relaxed);
    }

    GangVec a_mat[ChargeTape::kMaxEntries];
    GangVec vvt = {};
    GangVec vcu = {};
    for (std::uint32_t i = 0; i < P; ++i)
      for (int l = 0; l < kGangWidth; ++l) {
        const bool live = l < k && cur[l].active &&
                          i < cur[l].ledger->records()[cur[l].rec].n;
        a_mat[i][l] =
            live ? cur[l].ledger->addends()[cur[l].ledger->records()[cur[l].rec]
                                                .first +
                                            i]
                 : 0.0;
      }
    for (int l = 0; l < k; ++l) {
      vvt[l] = cur[l].vt;
      vcu[l] = cur[l].cu;
    }
    for (std::uint64_t t = 0; t < chunk; ++t)
      for (std::uint32_t i = 0; i < P; ++i) {
        vvt += a_mat[i];
        vcu += a_mat[i];
      }
    for (int l = 0; l < k; ++l) {
      if (!cur[l].active) continue;
      cur[l].vt = vvt[l];
      cur[l].cu = vcu[l];
      cur[l].left -= chunk;
      if (cur[l].left == 0 && !advance_record(cur[l])) --active;
    }
  }

  // One lane left: no cross-lane ILP to mine, so finish its remaining
  // records with the plain scalar chain.
  for (int l = 0; l < k && active > 0; ++l) {
    if (!cur[l].active) continue;
    do {
      const ChargeLedger::Record& rec = cur[l].ledger->records()[cur[l].rec];
      const double* a = cur[l].ledger->addends().data() + rec.first;
      double vt = cur[l].vt;
      double cu = cur[l].cu;
      for (std::uint64_t t = 0; t < cur[l].left; ++t)
        for (std::uint32_t i = 0; i < rec.n; ++i) {
          vt += a[i];
          cu += a[i];
        }
      cur[l].vt = vt;
      cur[l].cu = cu;
      cur[l].left = 0;
    } while (advance_record(cur[l]));
    --active;
  }

  for (int l = 0; l < k; ++l) {
    *lanes[l].vtime = cur[l].vt;
    lanes[l].stats->compute_us = cur[l].cu;
    lanes[l].ledger->clear();
  }
}

}  // namespace skil::parix
