#include "parix/charge_tape.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/env.h"
#include "support/error.h"

namespace skil::parix {

namespace {

ChargePath initial_default_charge_path() {
  if (const char* env = std::getenv("SKIL_CHARGE"))
    return parse_charge_path(env);
  return ChargePath::kTape;
}

ChargePath& default_charge_path_slot() {
  static ChargePath path = initial_default_charge_path();
  return path;
}

SettleMode initial_default_settle_mode() {
  if (const char* env = std::getenv("SKIL_SETTLE"))
    return parse_settle_mode(env);
  return SettleMode::kAuto;
}

SettleMode& default_settle_mode_slot() {
  static SettleMode mode = initial_default_settle_mode();
  return mode;
}

FuseMode initial_default_fuse_mode() {
  if (const char* env = std::getenv("SKIL_FUSE"))
    return parse_fuse_mode(env);
  return FuseMode::kOff;
}

FuseMode& default_fuse_mode_slot() {
  static FuseMode mode = initial_default_fuse_mode();
  return mode;
}

}  // namespace

ChargePath parse_charge_path(std::string_view name) {
  static constexpr std::string_view kNames[] = {"interp", "tape"};
  static_assert(static_cast<int>(ChargePath::kInterp) == 0 &&
                static_cast<int>(ChargePath::kTape) == 1);
  return support::parse_knob<ChargePath>("SKIL_CHARGE", "charge path", name,
                                         kNames);
}

ChargePath default_charge_path() { return default_charge_path_slot(); }

void set_default_charge_path(ChargePath path) {
  default_charge_path_slot() = path;
}

SettleMode parse_settle_mode(std::string_view name) {
  static constexpr std::string_view kNames[] = {"gang", "closed", "auto"};
  static_assert(static_cast<int>(SettleMode::kGang) == 0 &&
                static_cast<int>(SettleMode::kClosed) == 1 &&
                static_cast<int>(SettleMode::kAuto) == 2);
  return support::parse_knob<SettleMode>("SKIL_SETTLE", "settlement mode",
                                         name, kNames);
}

std::string_view settle_mode_name(SettleMode mode) {
  switch (mode) {
    case SettleMode::kGang: return "gang";
    case SettleMode::kClosed: return "closed";
    case SettleMode::kAuto: return "auto";
  }
  return "?";
}

SettleMode default_settle_mode() { return default_settle_mode_slot(); }

void set_default_settle_mode(SettleMode mode) {
  default_settle_mode_slot() = mode;
}

FuseMode parse_fuse_mode(std::string_view name) {
  static constexpr std::string_view kNames[] = {"off", "on"};
  static_assert(static_cast<int>(FuseMode::kOff) == 0 &&
                static_cast<int>(FuseMode::kOn) == 1);
  return support::parse_knob<FuseMode>("SKIL_FUSE", "fuse mode", name, kNames);
}

std::string_view fuse_mode_name(FuseMode mode) {
  switch (mode) {
    case FuseMode::kOff: return "off";
    case FuseMode::kOn: return "on";
  }
  return "?";
}

FuseMode default_fuse_mode() { return default_fuse_mode_slot(); }

void set_default_fuse_mode(FuseMode mode) {
  default_fuse_mode_slot() = mode;
}

std::uint64_t ChargeTape::next_tape_id() {
  // Starts at 1: id 0 marks untaped ledger records, which the
  // settlement memo must never serve.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Algebraic settlement (DESIGN.md section 12).
//
// Within one binade of a non-negative accumulator x every
// representable double is an integer multiple of the binade's ulp u:
// write x = m * u with the "ulp integer" m in [2^52, 2^53) (normals)
// or [0, 2^52) (subnormals; u = 2^-1074 there).  Adding a >= 0 gives
// the exact sum (m + a/u) * u; rounding to nearest picks the integer
// next to m + a/u, and the only data dependence on m is the
// round-half-even choice when a/u lands exactly on .5 -- which
// depends on the *parity* of m, nothing else (the fractional part of
// a/u is a property of the addend and the binade alone).  By
// induction over a record's addend sequence, one replay period
// advances m by a delta that is a pure function of the starting
// parity, per (addend sequence, binade), as long as every
// intermediate stays inside the binade.
//
// So: chain ONE period for real to *measure* the delta ("probe"),
// then retire the remaining periods in exact uint64 arithmetic --
// bit-identical by construction, without executing the adds.  The
// probed deltas are memoized across replays keyed on the tape's
// process-unique identity, the unit-cost table and the binade, so
// steady-state sweeps settle each record with one memo lookup and a
// handful of integer operations.
//
// Boundary cases, all proven in DESIGN.md section 12:
//  * walks are capped so m never exceeds the binade top `cap`; a walk
//    that lands exactly on cap materializes the next binade's bottom
//    (or +inf from the topmost binade, matching IEEE overflow), and
//    the loop re-keys on the new binade;
//  * a period that would cross the boundary mid-way is chained for
//    real (its adds count as chain adds) and the loop re-extracts;
//  * a measured delta of zero is a fixed point -- per-step deltas are
//    non-negative and sum to zero, so every step leaves the value
//    untouched and all remaining periods retire at once;
//  * negative or non-finite accumulators fall back to real chaining
//    with a bitwise fixed-point check per period (the chain is
//    deterministic, so an unchanged period proves all remaining
//    periods identical);
//  * records with negative/non-finite addends never get here at all
//    (ChargeLedger flags them chain_only at append time).
// ---------------------------------------------------------------------------

namespace {

/// Delta value marking "not yet probed" in the memo (an impossible
/// per-period advance: it would overflow any binade).
inline constexpr std::uint64_t kUnknownDelta = ~0ull;

/// Binade key of the subnormal range (ulp 2^-1074); normal binades use
/// their unbiased exponent.
inline constexpr int kSubnormalKey = -1075;

/// Sentinel "no binade cached" key for the per-record walk state.
inline constexpr int kNoBinade = 0x7fffffff;

struct UlpDomain {
  std::uint64_t m = 0;    ///< ulp integer of x within its binade
  std::uint64_t cap = 0;  ///< m == cap means x left the binade upward
  int key = kNoBinade;    ///< binade identity (memo key component)
};

/// Decomposes x into its ulp domain.  Returns false for negative,
/// infinite or NaN values (the walk model needs x >= +0.0).
inline bool ulp_extract(double x, UlpDomain* d) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  if (bits >> 63) return false;
  const std::uint64_t ebits = bits >> 52;
  if (ebits == 0x7ff) return false;
  if (ebits == 0) {
    d->m = bits;
    d->cap = std::uint64_t{1} << 52;
    d->key = kSubnormalKey;
    return true;
  }
  d->m = (std::uint64_t{1} << 52) | (bits & ((std::uint64_t{1} << 52) - 1));
  d->cap = std::uint64_t{1} << 53;
  d->key = static_cast<int>(ebits) - 1023;
  return true;
}

/// Rebuilds the double from a (binade, ulp integer) pair.  m == cap is
/// legal and yields the next binade's bottom value: 2^(e+1) when a
/// normal binade tops out (for the topmost binade that is 2^1024,
/// which IEEE round-to-nearest overflows to +inf -- exactly what the
/// real chain would have produced), DBL_MIN when the subnormals do
/// (the bit patterns are contiguous there, so the raw cast already
/// lands on it).
inline double ulp_materialize(int key, std::uint64_t m) {
  if (key == kSubnormalKey) return std::bit_cast<double>(m);
  std::uint64_t e = static_cast<std::uint64_t>(key + 1023);
  if (m == std::uint64_t{1} << 53) {
    ++e;
    m = std::uint64_t{1} << 52;
  }
  if (e >= 0x7ff) return std::bit_cast<double>(std::uint64_t{0x7ff} << 52);
  return std::bit_cast<double>((e << 52) |
                               (m & ((std::uint64_t{1} << 52) - 1)));
}

/// Per-settle counter accumulation; flushed to the process-wide
/// atomics once per settle call.
struct SettleLocal {
  std::uint64_t closed_runs = 0;
  std::uint64_t closed_adds = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_adds = 0;
  std::uint64_t probe_adds = 0;
  std::uint64_t chain_records = 0;
  std::uint64_t chain_adds = 0;
};

/// One cross-replay memo entry: the two parity deltas probed for a
/// (tape identity, entry count, unit table, binade) combination.  The
/// key is collision-free by construction -- (tape id, n) names one
/// immutable entry prefix for the process lifetime (ChargeTape ids
/// are never reused and tapes are append-only; copies take fresh
/// ids), and the unit values are compared outright -- so a verified
/// hit is *proof* the cached deltas describe this record's addend
/// sequence, independent of the clock values of the replay that
/// probed them.
struct MemoEntry {
  std::uint64_t tape_id = 0;  ///< 0 = empty slot
  std::uint32_t n = 0;
  std::int32_t key = 0;
  double units[kOpKinds] = {};
  std::uint64_t d[2] = {kUnknownDelta, kUnknownDelta};
};

/// Direct-mapped per-thread memo (~180 KB).  Collisions simply
/// overwrite: the memo is a performance cache, never a correctness
/// dependency, and the sweep's working set (a handful of live tapes x
/// a few binades) sits far below the slot count.
struct MemoTable {
  static constexpr std::size_t kSlots = 2048;
  MemoEntry slots[kSlots];
};

/// Carrier threads resume fibers that may have parked on *other*
/// carriers, and GCC caches TLS addresses across calls it cannot see
/// through -- the same trap executor.cpp documents for its fiber
/// slot.  Settlement never parks between taking this reference and
/// finishing with it, but the accessor still goes through a noinline
/// call with a compiler barrier so a resumed fiber can never keep a
/// pre-park table address in a register.
__attribute__((noinline)) MemoTable& settle_memo_table() {
  thread_local MemoTable table;
  asm volatile("");
  return table;
}

/// Finds (or initializes) the memo slot for this record/binade.  On a
/// verified hit, `cached[p]` reports whether parity p's delta was
/// already known -- the walk uses it to attribute skipped adds to the
/// memo vs to this settle's own probes.
MemoEntry* memo_lookup(std::uint64_t tape_id, std::uint32_t n, int key,
                       const double* units, SettleLocal* c, bool cached[2]) {
  MemoTable& table = settle_memo_table();
  std::uint64_t h = tape_id * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key)) << 32) | n;
  h *= 0x9E3779B97F4A7C15ull;
  MemoEntry& slot = table.slots[(h >> 40) & (MemoTable::kSlots - 1)];
  if (slot.tape_id == tape_id && slot.n == n &&
      slot.key == static_cast<std::int32_t>(key) &&
      std::memcmp(slot.units, units, sizeof(slot.units)) == 0) {
    if (c != nullptr) ++c->memo_hits;
    cached[0] = slot.d[0] != kUnknownDelta;
    cached[1] = slot.d[1] != kUnknownDelta;
    return &slot;
  }
  if (c != nullptr) ++c->memo_misses;
  slot.tape_id = tape_id;
  slot.n = n;
  slot.key = static_cast<std::int32_t>(key);
  std::memcpy(slot.units, units, sizeof(slot.units));
  slot.d[0] = kUnknownDelta;
  slot.d[1] = kUnknownDelta;
  cached[0] = false;
  cached[1] = false;
  return &slot;
}

/// Advances one accumulator through `times` replay periods of the
/// `n` addends at `a`, bit-identical to chaining every add, probing
/// and walking per the header comment.  `c` may be null (the
/// compute_us twin chain advances through the same walk but is not
/// double-counted: the counters track the vtime chain, matching the
/// gang/inline counters' pending_adds semantics).
void advance_chain(double& acc, const double* a, std::uint32_t n,
                   std::uint64_t times, std::uint64_t tape_id,
                   const double* units, SettleLocal* c) {
  double x = acc;
  std::uint64_t T = times;
  UlpDomain dom;
  int cur_key = kNoBinade;
  MemoEntry* slot = nullptr;
  bool cached[2] = {false, false};

  while (T > 0) {
    if (!ulp_extract(x, &dom)) {
      // Negative / inf / NaN accumulator: outside the ulp model.
      // Chain one period for real; the chain is deterministic, so an
      // unchanged period proves every remaining period identical.
      const double before = x;
      for (std::uint32_t i = 0; i < n; ++i) x += a[i];
      --T;
      if (c != nullptr) c->chain_adds += n;
      if (T > 0 && std::bit_cast<std::uint64_t>(x) ==
                       std::bit_cast<std::uint64_t>(before)) {
        if (c != nullptr) c->closed_adds += T * n;
        T = 0;
      }
      cur_key = kNoBinade;
      slot = nullptr;
      continue;
    }
    if (dom.key != cur_key || slot == nullptr) {
      cur_key = dom.key;
      slot = memo_lookup(tape_id, n, cur_key, units, c, cached);
    }
    const unsigned p = static_cast<unsigned>(dom.m & 1);
    const std::uint64_t dp = slot->d[p];
    if (dp == kUnknownDelta) {
      // Probe: chain one period for real and measure the ulp delta.
      // A probe that crossed the binade mixes two ulp scales and is
      // discarded; the loop re-keys on the new binade.
      const std::uint64_t m0 = dom.m;
      for (std::uint32_t i = 0; i < n; ++i) x += a[i];
      --T;
      if (c != nullptr) c->probe_adds += n;
      UlpDomain end;
      if (ulp_extract(x, &end) && end.key == cur_key) {
        slot->d[p] = end.m - m0;
      } else {
        slot = nullptr;  // force a re-key next iteration
      }
      continue;
    }
    const bool from_memo = cached[p];
    const std::uint64_t budget = dom.cap - dom.m;
    std::uint64_t retired = 0;
    std::uint64_t delta = 0;
    if (dp == 0) {
      // Fixed point: per-step deltas are non-negative and sum to
      // zero, so every step leaves the value untouched.
      retired = T;
    } else if ((dp & 1) == 0) {
      // Even delta preserves the parity: every following period
      // advances by the same dp.
      retired = budget / dp;
      if (retired > T) retired = T;
      delta = retired * dp;
    } else {
      const std::uint64_t dq = slot->d[p ^ 1];
      if (dq != kUnknownDelta && (dq & 1) == 1) {
        // Odd/odd: a pair of periods restores the parity and advances
        // by dp + dq (dq >= 1 keeps every intra-pair intermediate
        // strictly inside the binade).
        std::uint64_t pairs = budget / (dp + dq);
        const std::uint64_t half = T / 2;
        if (pairs > half) pairs = half;
        retired = 2 * pairs;
        delta = pairs * (dp + dq);
      }
      if (retired == 0 && dp <= budget) {
        // Single closed period: flips the parity; the partner delta
        // is even or still unknown, so the loop re-dispatches (and
        // probes the other parity at most once per binade).
        retired = 1;
        delta = dp;
      }
    }
    if (retired == 0) {
      // The next period would cross the binade boundary mid-way:
      // chain it for real and re-extract in the new binade.
      for (std::uint32_t i = 0; i < n; ++i) x += a[i];
      --T;
      if (c != nullptr) c->chain_adds += n;
      slot = nullptr;
      continue;
    }
    T -= retired;
    x = ulp_materialize(cur_key, dom.m + delta);
    if (c != nullptr)
      (from_memo ? c->memo_adds : c->closed_adds) +=
          retired * static_cast<std::uint64_t>(n);
  }
  acc = x;
}

std::atomic<std::uint64_t> g_closed_runs{0};
std::atomic<std::uint64_t> g_closed_adds{0};
std::atomic<std::uint64_t> g_memo_hits{0};
std::atomic<std::uint64_t> g_memo_misses{0};
std::atomic<std::uint64_t> g_memo_adds{0};
std::atomic<std::uint64_t> g_probe_adds{0};
std::atomic<std::uint64_t> g_chain_records{0};
std::atomic<std::uint64_t> g_chain_adds{0};
std::atomic<std::uint64_t> g_gang_parks{0};

void flush_settle_counters(const SettleLocal& local) {
  const auto add = [](std::atomic<std::uint64_t>& counter, std::uint64_t v) {
    if (v != 0) counter.fetch_add(v, std::memory_order_relaxed);
  };
  add(g_closed_runs, local.closed_runs);
  add(g_closed_adds, local.closed_adds);
  add(g_memo_hits, local.memo_hits);
  add(g_memo_misses, local.memo_misses);
  add(g_memo_adds, local.memo_adds);
  add(g_probe_adds, local.probe_adds);
  add(g_chain_records, local.chain_records);
  add(g_chain_adds, local.chain_adds);
}

}  // namespace

SettleCounters settle_counters() {
  SettleCounters counters;
  counters.closed_runs = g_closed_runs.load(std::memory_order_relaxed);
  counters.closed_adds = g_closed_adds.load(std::memory_order_relaxed);
  counters.memo_hits = g_memo_hits.load(std::memory_order_relaxed);
  counters.memo_misses = g_memo_misses.load(std::memory_order_relaxed);
  counters.memo_adds = g_memo_adds.load(std::memory_order_relaxed);
  counters.probe_adds = g_probe_adds.load(std::memory_order_relaxed);
  counters.chain_records = g_chain_records.load(std::memory_order_relaxed);
  counters.chain_adds = g_chain_adds.load(std::memory_order_relaxed);
  counters.gang_parks = g_gang_parks.load(std::memory_order_relaxed);
  return counters;
}

void note_gang_park() {
  g_gang_parks.fetch_add(1, std::memory_order_relaxed);
}

// Fusion counters live on plain relaxed atomics (no thread-local
// staging): fused paths note at most once per skeleton composition,
// not per element, so contention is negligible.
namespace {
std::atomic<std::uint64_t> g_fusion_seen{0};
std::atomic<std::uint64_t> g_fusion_fused{0};
std::atomic<std::uint64_t> g_fusion_rejected_shape{0};
std::atomic<std::uint64_t> g_fusion_rejected_order{0};
std::atomic<std::uint64_t> g_fusion_rejected_path{0};
std::atomic<std::uint64_t> g_fusion_barriers{0};
std::atomic<std::uint64_t> g_fusion_tapes{0};
}  // namespace

FusionCounters fusion_counters() {
  FusionCounters counters;
  counters.seen = g_fusion_seen.load(std::memory_order_relaxed);
  counters.fused = g_fusion_fused.load(std::memory_order_relaxed);
  counters.rejected_shape =
      g_fusion_rejected_shape.load(std::memory_order_relaxed);
  counters.rejected_order =
      g_fusion_rejected_order.load(std::memory_order_relaxed);
  counters.rejected_path =
      g_fusion_rejected_path.load(std::memory_order_relaxed);
  counters.barriers_eliminated =
      g_fusion_barriers.load(std::memory_order_relaxed);
  counters.tapes_eliminated = g_fusion_tapes.load(std::memory_order_relaxed);
  return counters;
}

void note_fusion_fused(std::uint64_t barriers, std::uint64_t tapes) {
  g_fusion_seen.fetch_add(1, std::memory_order_relaxed);
  g_fusion_fused.fetch_add(1, std::memory_order_relaxed);
  if (barriers != 0)
    g_fusion_barriers.fetch_add(barriers, std::memory_order_relaxed);
  if (tapes != 0) g_fusion_tapes.fetch_add(tapes, std::memory_order_relaxed);
}

void note_fusion_rejected(FusionReject reason) {
  g_fusion_seen.fetch_add(1, std::memory_order_relaxed);
  switch (reason) {
    case FusionReject::kShape:
      g_fusion_rejected_shape.fetch_add(1, std::memory_order_relaxed);
      break;
    case FusionReject::kOrder:
      g_fusion_rejected_order.fetch_add(1, std::memory_order_relaxed);
      break;
    case FusionReject::kPath:
      g_fusion_rejected_path.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void ChargeLedger::settle_algebraic(double& vtime, Stats& stats) {
  SettleLocal local;
  double vt = vtime;
  double cu = stats.compute_us;
  for (std::size_t r = head_; r < records_.size(); ++r) {
    const Record& rec = records_[r];
    const double* a = addends_.data() + rec.first;
    const ChargeTape::Entry* e = entries_.data() + rec.first;
    for (std::uint32_t i = 0; i < rec.n; ++i)
      stats.ops[static_cast<int>(e[i].kind)] += e[i].count * rec.times;
    if (rec.chain_only || rec.tape_id == 0 || rec.times < kMinWalkTimes) {
      for (std::uint64_t t = 0; t < rec.times; ++t)
        for (std::uint32_t i = 0; i < rec.n; ++i) {
          vt += a[i];
          cu += a[i];
        }
      ++local.chain_records;
      local.chain_adds += static_cast<std::uint64_t>(rec.n) * rec.times;
      continue;
    }
    const std::uint64_t skipped = local.closed_adds + local.memo_adds;
    advance_chain(vt, a, rec.n, rec.times, rec.tape_id, units_, &local);
    advance_chain(cu, a, rec.n, rec.times, rec.tape_id, units_, nullptr);
    if (local.closed_adds + local.memo_adds > skipped) ++local.closed_runs;
  }
  vtime = vt;
  stats.compute_us = cu;
  flush_settle_counters(local);
  clear();
}

void ChargeLedger::settle_algebraic_prefix(double& vtime, Stats& stats) {
  SettleLocal local;
  double vt = vtime;
  double cu = stats.compute_us;
  std::size_t r = head_;
  for (; r < records_.size(); ++r) {
    const Record& rec = records_[r];
    if (rec.chain_only || rec.tape_id == 0 || rec.times < kMinWalkTimes) break;
    const double* a = addends_.data() + rec.first;
    const ChargeTape::Entry* e = entries_.data() + rec.first;
    for (std::uint32_t i = 0; i < rec.n; ++i)
      stats.ops[static_cast<int>(e[i].kind)] += e[i].count * rec.times;
    const std::uint64_t skipped = local.closed_adds + local.memo_adds;
    advance_chain(vt, a, rec.n, rec.times, rec.tape_id, units_, &local);
    advance_chain(cu, a, rec.n, rec.times, rec.tape_id, units_, nullptr);
    if (local.closed_adds + local.memo_adds > skipped) ++local.closed_runs;
    pending_adds_ -= static_cast<std::uint64_t>(rec.n) * rec.times;
  }
  head_ = r;
  vtime = vt;
  stats.compute_us = cu;
  flush_settle_counters(local);
  if (head_ >= records_.size()) clear();
}

namespace {

// Eight double lanes in one GCC vector.  The extension lowers to
// whatever the target offers (AVX-512, AVX2 pairs, SSE2 quads); in
// every case lane i of a vector add is the IEEE add of lane i's
// operands, so the packed clocks round exactly as their scalar chains
// would.  No fast-math anywhere in the tree, so the compiler cannot
// reassociate either.
typedef double GangVec __attribute__((vector_size(kGangWidth * sizeof(double))));

/// Per-lane settlement cursor: which record the lane is on, how many
/// repetitions of it remain, and the lane's in-flight accumulators.
struct LaneCursor {
  const ChargeLedger* ledger = nullptr;
  Stats* stats = nullptr;
  std::size_t rec = 0;
  std::uint64_t left = 0;
  double vt = 0.0;
  double cu = 0.0;
  bool active = false;
};

/// Books the integer op counters of the lane's current record (exact,
/// order-insensitive) and steps the cursor to the next record.
/// Returns false when the lane's ledger is exhausted.
bool advance_record(LaneCursor& lane) {
  const ChargeLedger::Record& rec = lane.ledger->records()[lane.rec];
  const ChargeTape::Entry* e = lane.ledger->entries().data() + rec.first;
  for (std::uint32_t i = 0; i < rec.n; ++i)
    lane.stats->ops[static_cast<int>(e[i].kind)] += e[i].count * rec.times;
  ++lane.rec;
  if (lane.rec == lane.ledger->records().size()) {
    lane.active = false;
    return false;
  }
  lane.left = lane.ledger->records()[lane.rec].times;
  return true;
}

std::atomic<std::uint64_t> g_gang_batches{0};
std::atomic<std::uint64_t> g_gang_lanes{0};
std::atomic<std::uint64_t> g_gang_adds{0};
std::atomic<std::uint64_t> g_inline_adds{0};
std::atomic<std::uint64_t> g_uniform_rounds{0};
std::atomic<std::uint64_t> g_divergent_rounds{0};
std::atomic<std::uint64_t> g_padded_slots{0};

}  // namespace

GangCounters gang_counters() {
  return GangCounters{g_gang_batches.load(std::memory_order_relaxed),
                      g_gang_lanes.load(std::memory_order_relaxed),
                      g_gang_adds.load(std::memory_order_relaxed),
                      g_inline_adds.load(std::memory_order_relaxed),
                      g_uniform_rounds.load(std::memory_order_relaxed),
                      g_divergent_rounds.load(std::memory_order_relaxed),
                      g_padded_slots.load(std::memory_order_relaxed)};
}

void note_inline_settle(std::uint64_t adds) {
  g_inline_adds.fetch_add(adds, std::memory_order_relaxed);
}

// The fused loops are dominated by GangVec (8-double) adds.  The tree
// builds for baseline x86-64, where a 64-byte vector lowers to four
// SSE2 pairs -- and the sixteen xmm registers cannot hold both
// accumulator vectors plus the addend row, so the chains spill to the
// stack and the kernel loses its ILP advantage.  Function
// multiversioning compiles the whole kernel additionally for AVX2 and
// AVX-512F and dispatches by cpuid at load time (ifunc).  This cannot
// move a single bit: vector addition is per-lane exact-rounded IEEE
// addition on every x86 vector ISA, and no fast-math flag is in play,
// so lane i's chain performs the same adds in the same order
// regardless of which clone runs (asserted lane-vs-scalar in
// tests/test_parix_charge_tape.cpp, which runs under whichever clone
// the host dispatches).
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
#define SKIL_GANG_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#ifndef SKIL_GANG_CLONES
#define SKIL_GANG_CLONES
#endif

SKIL_GANG_CLONES void gang_settle(GangLane* lanes, int k) {
  SKIL_ASSERT(k >= 1 && k <= kGangWidth, "gang_settle: bad lane count");
  g_gang_batches.fetch_add(1, std::memory_order_relaxed);
  g_gang_lanes.fetch_add(static_cast<std::uint64_t>(k),
                         std::memory_order_relaxed);
  {
    std::uint64_t adds = 0;
    for (int l = 0; l < k; ++l) adds += lanes[l].ledger->pending_adds();
    g_gang_adds.fetch_add(adds, std::memory_order_relaxed);
  }
  LaneCursor cur[kGangWidth];
  int active = 0;
  for (int l = 0; l < k; ++l) {
    LaneCursor& lane = cur[l];
    lane.ledger = lanes[l].ledger;
    lane.stats = lanes[l].stats;
    lane.vt = *lanes[l].vtime;
    lane.cu = lanes[l].stats->compute_us;
    // Cursors start at the ledger head: in kAuto, the walkable prefix
    // may already have settled algebraically before the park.
    lane.rec = lane.ledger->head();
    if (lane.rec < lane.ledger->records().size()) {
      lane.left = lane.ledger->records()[lane.rec].times;
      lane.active = true;
      ++active;
    }
  }

  while (active > 1) {
    // Vector round: pack the active lanes' current records transposed
    // (A[i][l] = lane l's i-th addend) and run the fused chunk for the
    // smallest remaining repetition count.  Lanes need NOT sit on
    // records of one length: shorter records are padded to the round
    // width P with 0.0 addends, and x + 0.0 is the IEEE identity for
    // every x >= +0.0 -- which virtual clocks and compute_us always
    // are (costs are non-negative and both start at +0.0) -- so the
    // padded adds cannot move a lane's chain by a bit.  SPMD
    // supersteps make equal lengths the common case; the padding is
    // what keeps lanes fused when data distribution drifts their
    // record sequences apart (per-repetition scalar fallbacks spend
    // more on round bookkeeping than the adds they perform).
    std::uint32_t P = 0;
    std::uint64_t chunk = 0;
    bool uniform = true;
    for (int l = 0; l < k; ++l) {
      if (!cur[l].active) continue;
      const std::uint32_t rn = cur[l].ledger->records()[cur[l].rec].n;
      if (P != 0 && rn != P) uniform = false;
      if (rn > P) P = rn;
      if (chunk == 0 || cur[l].left < chunk) chunk = cur[l].left;
    }
    (uniform ? g_uniform_rounds : g_divergent_rounds)
        .fetch_add(1, std::memory_order_relaxed);
    if (!uniform) {
      std::uint64_t pads = 0;
      for (int l = 0; l < k; ++l)
        if (cur[l].active)
          pads += (P - cur[l].ledger->records()[cur[l].rec].n) * chunk;
      g_padded_slots.fetch_add(pads, std::memory_order_relaxed);
    }

    GangVec a_mat[ChargeTape::kMaxEntries];
    GangVec vvt = {};
    GangVec vcu = {};
    for (std::uint32_t i = 0; i < P; ++i)
      for (int l = 0; l < kGangWidth; ++l) {
        const bool live = l < k && cur[l].active &&
                          i < cur[l].ledger->records()[cur[l].rec].n;
        a_mat[i][l] =
            live ? cur[l].ledger->addends()[cur[l].ledger->records()[cur[l].rec]
                                                .first +
                                            i]
                 : 0.0;
      }
    for (int l = 0; l < k; ++l) {
      vvt[l] = cur[l].vt;
      vcu[l] = cur[l].cu;
    }
    for (std::uint64_t t = 0; t < chunk; ++t)
      for (std::uint32_t i = 0; i < P; ++i) {
        vvt += a_mat[i];
        vcu += a_mat[i];
      }
    for (int l = 0; l < k; ++l) {
      if (!cur[l].active) continue;
      cur[l].vt = vvt[l];
      cur[l].cu = vcu[l];
      cur[l].left -= chunk;
      if (cur[l].left == 0 && !advance_record(cur[l])) --active;
    }
  }

  // One lane left: no cross-lane ILP to mine, so finish its remaining
  // records with the plain scalar chain.
  for (int l = 0; l < k && active > 0; ++l) {
    if (!cur[l].active) continue;
    do {
      const ChargeLedger::Record& rec = cur[l].ledger->records()[cur[l].rec];
      const double* a = cur[l].ledger->addends().data() + rec.first;
      double vt = cur[l].vt;
      double cu = cur[l].cu;
      for (std::uint64_t t = 0; t < cur[l].left; ++t)
        for (std::uint32_t i = 0; i < rec.n; ++i) {
          vt += a[i];
          cu += a[i];
        }
      cur[l].vt = vt;
      cur[l].cu = cu;
      cur[l].left = 0;
    } while (advance_record(cur[l]));
    --active;
  }

  for (int l = 0; l < k; ++l) {
    *lanes[l].vtime = cur[l].vt;
    lanes[l].stats->compute_us = cur[l].cu;
    lanes[l].ledger->clear();
  }
}

}  // namespace skil::parix
