#include "parix/charge_tape.h"

#include <cstdlib>
#include <string>

#include "support/error.h"

namespace skil::parix {

namespace {

ChargePath initial_default_charge_path() {
  if (const char* env = std::getenv("SKIL_CHARGE"))
    return parse_charge_path(env);
  return ChargePath::kTape;
}

ChargePath& default_charge_path_slot() {
  static ChargePath path = initial_default_charge_path();
  return path;
}

}  // namespace

ChargePath parse_charge_path(std::string_view name) {
  if (name == "interp") return ChargePath::kInterp;
  if (name == "tape") return ChargePath::kTape;
  SKIL_REQUIRE(false, "SKIL_CHARGE: unknown charge path '" +
                          std::string(name) +
                          "' (accepted values: interp, tape)");
  return ChargePath::kTape;  // unreachable
}

ChargePath default_charge_path() { return default_charge_path_slot(); }

void set_default_charge_path(ChargePath path) {
  default_charge_path_slot() = path;
}

}  // namespace skil::parix
