// Minimal JSON reader for the tools that consume our own exporters'
// output (metrics JSON, bench reports).
//
// The repo deliberately carries no third-party JSON dependency: the
// writers (parix/metrics.cpp, bench_engine_wall.cpp) emit JSON by
// hand, and this is the matching hand-rolled reader -- a small
// recursive-descent parser over the full JSON grammar, returning a
// tagged tree.  It favours clarity over speed; the inputs are
// kilobyte-scale reports, not data planes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skil::support::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered (objects round-trip in writer order).
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Object member access; throws ContractError when absent.
  const Value& at(std::string_view key) const;

  /// Numeric member with a default for absent keys; throws when the
  /// member exists but is not a number.
  double num(std::string_view key, double fallback = 0.0) const;
};

/// Parses one JSON document (throws ContractError on malformed input
/// or trailing garbage).
Value parse(std::string_view text);

}  // namespace skil::support::json
