#include "support/json.h"

#include <cstdlib>

#include "support/error.h"

namespace skil::support::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value();
    skip_ws();
    SKIL_REQUIRE(pos_ == text_.size(),
                 "json: trailing characters after the document (offset " +
                     std::to_string(pos_) + ")");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    SKIL_REQUIRE(false,
                 "json: " + what + " at offset " + std::to_string(pos_));
    std::abort();  // unreachable
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(std::string_view word) {
    for (const char c : word)
      if (take() != c) {
        --pos_;
        fail("invalid literal");
      }
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': {
        expect_word("true");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_word("false");
        Value v;
        v.kind = Value::Kind::kBool;
        return v;
      }
      case 'n': {
        expect_word("null");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      Value key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.string), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  Value parse_string() {
    expect('"');
    Value v;
    v.kind = Value::Kind::kString;
    for (;;) {
      const char c = take();
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              --pos_;
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (our writers only escape
          // control characters, so surrogate pairs do not occur).
          if (code < 0x80) {
            v.string += static_cast<char>(code);
          } else if (code < 0x800) {
            v.string += static_cast<char>(0xC0 | (code >> 6));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.string += static_cast<char>(0xE0 | (code >> 12));
            v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: {
          --pos_;
          fail("invalid escape");
        }
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  SKIL_REQUIRE(value != nullptr,
               "json: missing object member '" + std::string(key) + "'");
  return *value;
}

double Value::num(std::string_view key, double fallback) const {
  const Value* value = find(key);
  if (value == nullptr) return fallback;
  SKIL_REQUIRE(value->kind == Kind::kNumber,
               "json: member '" + std::string(key) + "' is not a number");
  return value->number;
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace skil::support::json
