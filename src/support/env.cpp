#include "support/env.h"

#include <string>

#include "support/error.h"

namespace skil::support {

std::size_t parse_knob_choice(std::string_view var, std::string_view what,
                              std::string_view name,
                              const std::string_view* accepted,
                              std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    if (name == accepted[i]) return i;
  std::string message;
  message.append(var);
  message += ": unknown ";
  message.append(what);
  message += " '";
  message.append(name);
  message += "' (accepted values: ";
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) message += ", ";
    message.append(accepted[i]);
  }
  message += ")";
  SKIL_REQUIRE(false, message);
  return 0;  // unreachable
}

}  // namespace skil::support
