#include "support/matrix.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace skil::support {

std::uint32_t dist_add(std::uint32_t a, std::uint32_t b) {
  if (a == kDistInf || b == kDistInf) return kDistInf;
  const std::uint64_t sum = static_cast<std::uint64_t>(a) + b;
  return sum >= kDistInf ? kDistInf : static_cast<std::uint32_t>(sum);
}

std::uint32_t distance_entry(int n, std::uint64_t seed, int i, int j,
                             double density, int max_weight) {
  (void)n;
  if (i == j) return 0;
  const std::uint64_t h = hash_mix(seed, static_cast<std::uint64_t>(i),
                                   static_cast<std::uint64_t>(j));
  const double coin = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (coin >= density) return kDistInf;
  const std::uint64_t h2 = hash_mix(h, 0x77aa55cc33ee1100ULL, seed);
  return 1 + static_cast<std::uint32_t>(h2 % static_cast<std::uint64_t>(
                                                 max_weight));
}

Matrix<std::uint32_t> random_distance_matrix(int n, std::uint64_t seed,
                                             double density, int max_weight) {
  Matrix<std::uint32_t> m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      m(i, j) = distance_entry(n, seed, i, j, density, max_weight);
  return m;
}

double linear_system_entry(int n, std::uint64_t seed, int i, int j) {
  const std::uint64_t h = hash_mix(seed, static_cast<std::uint64_t>(i),
                                   static_cast<std::uint64_t>(j));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  if (j == i) {
    // Diagonal dominance: strictly larger than the sum of n off-diagonal
    // magnitudes (each below 1) plus the right-hand side contribution.
    return static_cast<double>(n) + 1.0 + u;
  }
  return 2.0 * u - 1.0;  // off-diagonal and right-hand side in [-1, 1)
}

Matrix<double> random_linear_system(int n, std::uint64_t seed) {
  Matrix<double> m(n, n + 1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= n; ++j) m(i, j) = linear_system_entry(n, seed, i, j);
  return m;
}

double pivoting_system_entry(int n, std::uint64_t seed, int i, int j) {
  // Apply a deterministic row rotation to the dominant system: the
  // rotated system is still nonsingular (rotation is a bijection for
  // every n) but the element on the naive pivot position is usually
  // tiny, forcing partial pivoting to engage.
  const int shift = n > 2 ? n / 2 + 1 : 1;
  const int rotated = (i + shift) % n;
  return linear_system_entry(n, seed, rotated, j);
}

Matrix<double> random_pivoting_system(int n, std::uint64_t seed) {
  Matrix<double> m(n, n + 1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= n; ++j) m(i, j) = pivoting_system_entry(n, seed, i, j);
  return m;
}

double dense_entry(std::uint64_t seed, int i, int j) {
  const std::uint64_t h = hash_mix(seed, static_cast<std::uint64_t>(i),
                                   static_cast<std::uint64_t>(j) + 0x51ULL);
  return 2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0;
}

Matrix<double> random_dense(int rows, int cols, std::uint64_t seed) {
  Matrix<double> m(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) m(i, j) = dense_entry(seed, i, j);
  return m;
}

Matrix<double> seq_matmul(const Matrix<double>& a, const Matrix<double>& b) {
  SKIL_REQUIRE(a.cols() == b.rows(), "seq_matmul: inner dimensions differ");
  Matrix<double> c(a.rows(), b.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i)
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  return c;
}

Matrix<std::uint32_t> seq_minplus(const Matrix<std::uint32_t>& a,
                                  const Matrix<std::uint32_t>& b) {
  SKIL_REQUIRE(a.cols() == b.rows(), "seq_minplus: inner dimensions differ");
  Matrix<std::uint32_t> c(a.rows(), b.cols(), kDistInf);
  for (int i = 0; i < a.rows(); ++i)
    for (int k = 0; k < a.cols(); ++k) {
      const std::uint32_t aik = a(i, k);
      if (aik == kDistInf) continue;
      for (int j = 0; j < b.cols(); ++j)
        c(i, j) = std::min(c(i, j), dist_add(aik, b(k, j)));
    }
  return c;
}

Matrix<std::uint32_t> seq_shortest_paths(Matrix<std::uint32_t> dist) {
  const int n = dist.rows();
  int iterations = 0;
  for (int span = 1; span < n; span *= 2) ++iterations;
  for (int it = 0; it < iterations; ++it) dist = seq_minplus(dist, dist);
  return dist;
}

namespace {
std::vector<double> back_substitute_free(const Matrix<double>& ab) {
  // The paper's elimination zeroes the full column (rows above and
  // below the pivot), so after n steps the matrix is diagonal and the
  // solution is simply the normalised last column.
  const int n = ab.rows();
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) x[i] = ab(i, n) / ab(i, i);
  return x;
}
}  // namespace

std::vector<double> seq_gauss_nopivot(Matrix<double> ab) {
  const int n = ab.rows();
  SKIL_REQUIRE(ab.cols() == n + 1, "seq_gauss: matrix must be n x (n+1)");
  for (int k = 0; k < n; ++k) {
    if (ab(k, k) == 0.0) throw AppError("Matrix is singular");
    for (int i = 0; i < n; ++i) {
      if (i == k) continue;
      const double factor = ab(i, k) / ab(k, k);
      // Innermost loop runs downward, exactly like the paper's
      // pseudo-code, so the pivot column element is consumed last.
      for (int j = n; j >= k; --j) ab(i, j) -= factor * ab(k, j);
    }
  }
  return back_substitute_free(ab);
}

std::vector<double> seq_gauss_pivot(Matrix<double> ab) {
  const int n = ab.rows();
  SKIL_REQUIRE(ab.cols() == n + 1, "seq_gauss: matrix must be n x (n+1)");
  for (int k = 0; k < n; ++k) {
    int pivot_row = k;
    double best = std::abs(ab(k, k));
    for (int r = 0; r < n; ++r) {
      // The paper's fold searches the whole column (it later skips rows
      // already used as pivots via the elimination mask); searching rows
      // >= k is the standard equivalent for the masked variant.
      if (r < k) continue;
      if (std::abs(ab(r, k)) > best) {
        best = std::abs(ab(r, k));
        pivot_row = r;
      }
    }
    if (best == 0.0) throw AppError("Matrix is singular");
    if (pivot_row != k)
      for (int j = 0; j <= n; ++j) std::swap(ab(k, j), ab(pivot_row, j));
    for (int i = 0; i < n; ++i) {
      if (i == k) continue;
      const double factor = ab(i, k) / ab(k, k);
      for (int j = n; j >= k; --j) ab(i, j) -= factor * ab(k, j);
    }
  }
  return back_substitute_free(ab);
}

double residual_inf(const Matrix<double>& ab, const std::vector<double>& x) {
  const int n = ab.rows();
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    double acc = -ab(i, n);
    for (int j = 0; j < n; ++j) acc += ab(i, j) * x[j];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  SKIL_REQUIRE(a.size() == b.size(), "max_abs_diff: length mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

}  // namespace skil::support
