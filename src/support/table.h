// Console table rendering for the benchmark harness.
//
// The paper reports its evaluation as two tables and one figure; the
// bench binaries print the reproduced rows with this helper so the
// output can be compared side by side with the paper.
#pragma once

#include <string>
#include <vector>

namespace skil::support {

/// A simple left/right-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row may be shorter than the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table with aligned columns.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string fmt_fixed(double value, int digits = 2);

/// Formats a ratio such as the paper's "6.51" speedup entries; returns
/// "-" for non-finite values (matching the paper's empty cells).
std::string fmt_ratio(double value, int digits = 2);

/// Renders a crude ASCII scatter/line plot: one series per label, values
/// plotted against x positions.  Used by bench_figure1 to mirror the
/// paper's two graphics in terminal output.
std::string ascii_plot(const std::vector<std::string>& series_labels,
                       const std::vector<double>& xs,
                       const std::vector<std::vector<double>>& ys,
                       const std::string& x_label, const std::string& y_label,
                       int width = 64, int height = 20);

}  // namespace skil::support
