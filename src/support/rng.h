// Deterministic pseudo-random number generation.
//
// Benchmarks and tests must be reproducible across runs and across the
// three language baselines (Skil / DPFL / Parix-C), so all workload
// generators derive their streams from this splitmix64-seeded
// xoshiro256** generator rather than from std::random_device.
#pragma once

#include <cstdint>

namespace skil::support {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** -- fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound) for bound >= 1.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform int in the inclusive range [lo, hi].
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p = 0.5);

 private:
  std::uint64_t s_[4];
};

/// Stateless mixing hash: maps (seed, index...) to a 64-bit value.
/// Used by index-driven array initialisers so that every language
/// baseline initialises identical data without sharing generator state.
std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                       std::uint64_t c = 0xbf58476d1ce4e5b9ULL);

}  // namespace skil::support
