// Strict parsing for the SKIL_* environment knobs.
//
// Every runtime knob (SKIL_ENGINE, SKIL_CHARGE, SKIL_TRACE, SKIL_SETTLE,
// SKIL_FUSE, SKIL_PROF) follows the same contract: a closed set of
// accepted spellings, and a ContractError on anything else that names
// the variable, echoes the offending value, and lists every accepted
// value.  A typo'd knob must never silently fall back to a default --
// the caller asked for a specific configuration and would otherwise
// benchmark the wrong one.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <optional>
#include <string_view>

namespace skil::support {

/// Returns the index of `name` in `accepted[0..count)`, or throws
/// ContractError with the canonical message
/// `"<var>: unknown <what> '<name>' (accepted values: a, b, c)"`.
std::size_t parse_knob_choice(std::string_view var, std::string_view what,
                              std::string_view name,
                              const std::string_view* accepted,
                              std::size_t count);

/// Enum-typed wrapper: the enum's values must be 0..count-1 in the
/// same order as `accepted` (each knob's header pins this with a
/// static_assert next to its name table).
template <class Enum, std::size_t N>
Enum parse_knob(std::string_view var, std::string_view what,
                std::string_view name,
                const std::string_view (&accepted)[N]) {
  return static_cast<Enum>(parse_knob_choice(var, what, name, accepted, N));
}

/// Reads `var` from the environment; empty optional when unset,
/// otherwise the strictly parsed value (throws on junk, same as
/// parse_knob).
template <class Enum, std::size_t N>
std::optional<Enum> env_knob(const char* var, std::string_view what,
                             const std::string_view (&accepted)[N]) {
  if (const char* value = std::getenv(var))
    return parse_knob<Enum>(var, what, value, accepted);
  return std::nullopt;
}

}  // namespace skil::support
