#include "support/csv.h"

#include "support/error.h"

namespace skil::support {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path) {
  SKIL_ASSERT(out_.good(), "cannot open CSV output file: " + path);
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace skil::support
