#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace skil::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_)
    for (std::size_t c = 0; c < row.cells.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());

  std::ostringstream os;
  auto emit_line = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  emit_line();
  emit_row(header_);
  emit_line();
  for (const Row& row : rows_) {
    if (row.separator)
      emit_line();
    else
      emit_row(row.cells);
  }
  emit_line();
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt_ratio(double value, int digits) {
  if (!std::isfinite(value)) return "-";
  return fmt_fixed(value, digits);
}

std::string ascii_plot(const std::vector<std::string>& series_labels,
                       const std::vector<double>& xs,
                       const std::vector<std::vector<double>>& ys,
                       const std::string& x_label, const std::string& y_label,
                       int width, int height) {
  double ymin = 0.0, ymax = 1.0, xmin = 0.0, xmax = 1.0;
  bool first = true;
  for (const auto& series : ys)
    for (std::size_t i = 0; i < series.size() && i < xs.size(); ++i) {
      if (!std::isfinite(series[i])) continue;
      if (first) {
        ymin = ymax = series[i];
        xmin = xmax = xs[i];
        first = false;
      } else {
        ymin = std::min(ymin, series[i]);
        ymax = std::max(ymax, series[i]);
        xmin = std::min(xmin, xs[i]);
        xmax = std::max(xmax, xs[i]);
      }
    }
  if (ymax == ymin) ymax = ymin + 1.0;
  if (xmax == xmin) xmax = xmin + 1.0;
  ymin = std::min(ymin, 0.0);  // anchor the axis at zero like the paper

  std::vector<std::string> grid(height, std::string(width, ' '));
  const char* marks = "*o+x#@%&";
  for (std::size_t s = 0; s < ys.size(); ++s) {
    const char mark = marks[s % 8];
    for (std::size_t i = 0; i < ys[s].size() && i < xs.size(); ++i) {
      if (!std::isfinite(ys[s][i])) continue;
      const int col = static_cast<int>(
          std::lround((xs[i] - xmin) / (xmax - xmin) * (width - 1)));
      const int row = static_cast<int>(
          std::lround((ys[s][i] - ymin) / (ymax - ymin) * (height - 1)));
      grid[height - 1 - row][col] = mark;
    }
  }

  std::ostringstream os;
  os << y_label << '\n';
  for (int r = 0; r < height; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (height - 1);
    char axis[32];
    std::snprintf(axis, sizeof axis, "%8.2f |", yv);
    os << axis << grid[r] << '\n';
  }
  os << std::string(10, ' ') << std::string(width, '-') << '\n';
  char xinfo[128];
  std::snprintf(xinfo, sizeof xinfo, "%10s%-.0f%*s%.0f   (%s)", "", xmin,
                width - 6, "", xmax, x_label.c_str());
  os << xinfo << '\n';
  for (std::size_t s = 0; s < series_labels.size(); ++s)
    os << "  " << marks[s % 8] << " = " << series_labels[s] << '\n';
  return os.str();
}

}  // namespace skil::support
