#include "support/cli.h"

#include <algorithm>
#include <cstdlib>

#include "support/error.h"

namespace skil::support {

Cli::Cli(int argc, char** argv, std::vector<std::string> allowed)
    : program_(argc > 0 ? argv[0] : "") {
  auto permitted = [&](const std::string& name) {
    return std::find(allowed.begin(), allowed.end(), name) != allowed.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name = arg, value = "true";
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
               permitted(name)) {
      // "--name value" form: consume the next token as the value unless
      // the flag is boolean-style (heuristic: a known flag always takes
      // the following token when one is present).
      value = argv[++i];
    }
    SKIL_REQUIRE(permitted(name), "unknown command-line flag: --" + name);
    values_[name] = value;
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Cli::get_int(const std::string& name, int fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atoi(it->second.c_str());
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace skil::support
