#include "support/error.h"

#include <sstream>

namespace skil::support {

namespace {
std::string decorate(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  const std::string path(file);
  const auto slash = path.find_last_of('/');
  os << (slash == std::string::npos ? path : path.substr(slash + 1)) << ':'
     << line << ": " << message;
  return os.str();
}
}  // namespace

void raise_contract(const char* file, int line, const std::string& message) {
  throw ContractError(decorate(file, line, message));
}

void raise_fault(const char* file, int line, const std::string& message) {
  throw RuntimeFault(decorate(file, line, message));
}

}  // namespace skil::support
