// CSV emission for benchmark results.
//
// Every bench binary writes its reproduced table/figure data both to the
// console (support/table.h) and to a CSV file so the series can be
// re-plotted and diffed against the paper's numbers.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace skil::support {

/// Streaming CSV writer with minimal quoting.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one data row (sizes may differ from the header).
  void add_row(const std::vector<std::string>& cells);

  /// Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void write_row(const std::vector<std::string>& cells);
  std::ofstream out_;
};

/// Quotes a CSV field if needed.
std::string csv_escape(const std::string& field);

}  // namespace skil::support
