// Error handling for the Skil reproduction.
//
// The paper specifies several run-time errors (non-bijective permutation
// functions, singular matrices, aliased gen_mult arguments, non-local
// element access).  All of them are reported through the exception
// hierarchy below so that tests can assert on the precise failure class.
#pragma once

#include <stdexcept>
#include <string>

namespace skil::support {

/// Base class of every error raised by the Skil runtime and skeletons.
/// Errors raised while processing Skil *source* (lexer, parser, type
/// checker, instantiation) additionally carry the 1-based line/column
/// of the offending construct so tools can render structured
/// diagnostics instead of re-parsing the message text.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(const std::string& what, int line, int column)
      : std::runtime_error(what), line_(line), column_(column) {}

  /// Source position, when known (0 means "no location").
  int line() const { return line_; }
  int column() const { return column_; }
  bool has_location() const { return line_ > 0; }

 private:
  int line_ = 0;
  int column_ = 0;
};

/// A program violated a skeleton precondition (paper section 3), e.g.
/// calling array_gen_mult with aliased arguments or passing a
/// non-bijective permutation function to array_permute_rows.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
  ContractError(const std::string& what, int line, int column)
      : Error(what, line, column) {}
};

/// Access to a distributed-array element that is not stored on the
/// calling processor (the paper forbids remote single-element access).
class NonLocalAccessError : public ContractError {
 public:
  explicit NonLocalAccessError(const std::string& what)
      : ContractError(what) {}
};

/// Failure inside the message-passing substrate (bad processor id,
/// type-mismatched receive, topology construction failure, ...).
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error(what) {}
};

/// Application-level error, e.g. "Matrix is singular" in the paper's
/// Gaussian elimination example.
class AppError : public Error {
 public:
  explicit AppError(const std::string& what) : Error(what) {}
};

/// Throws ContractError with a formatted location prefix.
[[noreturn]] void raise_contract(const char* file, int line,
                                 const std::string& message);

/// Throws RuntimeFault with a formatted location prefix.
[[noreturn]] void raise_fault(const char* file, int line,
                              const std::string& message);

}  // namespace skil::support

/// Precondition check used throughout skeletons; raises ContractError.
#define SKIL_REQUIRE(cond, message)                                 \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::skil::support::raise_contract(__FILE__, __LINE__, message); \
    }                                                               \
  } while (0)

/// Internal-consistency check; raises RuntimeFault.
#define SKIL_ASSERT(cond, message)                               \
  do {                                                           \
    if (!(cond)) {                                               \
      ::skil::support::raise_fault(__FILE__, __LINE__, message); \
    }                                                            \
  } while (0)
