// Sequential dense matrices and reference oracles.
//
// Every distributed application in this repository (shortest paths,
// Gaussian elimination, generic matrix multiplication) is validated
// against the straightforward sequential implementations in this file.
// The workload generators here are shared by all three language
// baselines so that Skil, DPFL and Parix-C runs operate on identical
// inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.h"

namespace skil::support {

/// Minimal row-major dense matrix.
template <class T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, T fill = T{})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {
    SKIL_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  T& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  T* row_ptr(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const T* row_ptr(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  int rows_;
  int cols_;
  std::vector<T> data_;
};

/// "Infinity" used by the shortest-paths application.  The paper uses
/// the maximal unsigned integer value so that min() treats it as +inf;
/// additions saturate instead of wrapping.
inline constexpr std::uint32_t kDistInf = 0xffffffffu;

/// Saturating addition over path lengths: inf + x == inf.
std::uint32_t dist_add(std::uint32_t a, std::uint32_t b);

// ---------------------------------------------------------------------------
// Workload generators (deterministic in `seed`).
// ---------------------------------------------------------------------------

/// Distance matrix of a random directed graph with n nodes: zero
/// diagonal, edge weights in [1, max_weight] with density `density`,
/// kDistInf for absent edges.
Matrix<std::uint32_t> random_distance_matrix(int n, std::uint64_t seed,
                                             double density = 0.25,
                                             int max_weight = 1000);

/// Deterministic per-index distance-matrix entry; equals
/// random_distance_matrix(n, seed)(i, j).  Exposed so distributed
/// initialiser functions can build partitions without materialising the
/// global matrix on every processor.
std::uint32_t distance_entry(int n, std::uint64_t seed, int i, int j,
                             double density = 0.25, int max_weight = 1000);

/// Random diagonally-dominant n x n system [A | b] stored as an
/// n x (n+1) matrix; diagonal dominance guarantees no pivoting is
/// required, matching the paper's first (pivot-free) gauss variant.
Matrix<double> random_linear_system(int n, std::uint64_t seed);

/// Deterministic per-index entry of random_linear_system(n, seed).
double linear_system_entry(int n, std::uint64_t seed, int i, int j);

/// Random system that *does* need partial pivoting: rows are scrambled
/// so that the naive (pivot-free) elimination hits small or zero pivots.
Matrix<double> random_pivoting_system(int n, std::uint64_t seed);

/// Deterministic per-index entry of random_pivoting_system(n, seed).
double pivoting_system_entry(int n, std::uint64_t seed, int i, int j);

/// Random dense matrix with entries in [-1, 1].
Matrix<double> random_dense(int rows, int cols, std::uint64_t seed);

/// Deterministic per-index entry of random_dense(rows, cols, seed).
double dense_entry(std::uint64_t seed, int i, int j);

// ---------------------------------------------------------------------------
// Sequential oracles.
// ---------------------------------------------------------------------------

/// Classical matrix product c = a * b.
Matrix<double> seq_matmul(const Matrix<double>& a, const Matrix<double>& b);

/// One min-plus "multiplication" step c(i,j) = min_k a(i,k) + b(k,j).
Matrix<std::uint32_t> seq_minplus(const Matrix<std::uint32_t>& a,
                                  const Matrix<std::uint32_t>& b);

/// All-pairs shortest paths by repeated squaring of the distance matrix
/// (the algorithm of paper section 4.1): ceil(log2 n) min-plus squarings.
Matrix<std::uint32_t> seq_shortest_paths(Matrix<std::uint32_t> dist);

/// Gaussian elimination without pivot search (paper's first variant).
/// `ab` is the n x (n+1) extended matrix; returns the solution vector x.
/// Throws AppError("Matrix is singular") when a zero pivot appears.
std::vector<double> seq_gauss_nopivot(Matrix<double> ab);

/// Gaussian elimination with partial pivoting (paper's complete variant).
std::vector<double> seq_gauss_pivot(Matrix<double> ab);

/// Max-norm residual ||A x - b||_inf for an n x (n+1) system.
double residual_inf(const Matrix<double>& ab, const std::vector<double>& x);

/// Max-norm distance between two vectors of equal length.
double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace skil::support
