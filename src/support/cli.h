// Minimal command-line flag parsing for bench and example binaries.
//
// Accepted syntax: --name=value, --name value, --flag (boolean true).
// Unknown flags raise an error so typos in benchmark invocations are
// caught instead of silently running the default configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace skil::support {

/// Parsed command line.
class Cli {
 public:
  /// `spec` lists the allowed flag names (without leading dashes).
  Cli(int argc, char** argv, std::vector<std::string> allowed);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace skil::support
