#include "apps/stencil_jacobi.h"

#include <algorithm>
#include <utility>

#include "skil/skil.h"

namespace skil::apps {

int stencil_round_up(int cells, int nprocs) {
  return ((cells + nprocs - 1) / nprocs) * nprocs;
}

StencilResult stencil_jacobi(int nprocs, int cells, int steps,
                             parix::CostModel cost) {
  const int padded = stencil_round_up(cells, nprocs);
  const int rows_per_proc = padded / nprocs;
  StencilResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    auto temp = array_create<double>(
        proc, 2, Size{padded, 1}, Size{rows_per_proc, 1}, Index{-1, -1},
        [&](Index ix) {
          // A hot band in the middle third of the rod.
          return (ix[0] >= padded / 3 && ix[0] < 2 * padded / 3) ? 100.0
                                                                 : 0.0;
        },
        parix::Distr::kDefault);
    auto next = array_create<double>(proc, 2, Size{padded, 1},
                                     Size{rows_per_proc, 1}, Index{-1, -1},
                                     [](Index) { return 0.0; },
                                     parix::Distr::kDefault);

    auto kernel = [padded](const StencilView<double>& view, Index ix) {
      const int i = ix[0];
      const double up = view.get(i > 0 ? i - 1 : i, 0);
      const double down = view.get(i < padded - 1 ? i + 1 : i, 0);
      return 0.25 * up + 0.5 * view.get(i, 0) + 0.25 * down;
    };

    for (int step = 0; step < steps; ++step) {
      array_map_stencil(kernel, temp, next, /*halo=*/1);
      array_copy(next, temp);
    }

    // Conservation check and peak temperature; the allreduce behind
    // array_fold resolves per SKIL_COLL, with bit-identical values in
    // every mode.
    const double total = array_fold([](double v, Index) { return v; },
                                    fn::plus, temp);
    const double peak = array_fold([](double v, Index) { return v; },
                                   fn::max, temp);

    std::vector<double> profile = array_gather_root(temp);
    if (proc.id() == 0) {
      result.total = total;
      result.peak = peak;
      result.temps = std::move(profile);
    }

    array_destroy(temp);
    array_destroy(next);
  });
  return result;
}

}  // namespace skil::apps
