// All-pairs shortest paths (paper section 4.1).
//
// The length of the shortest path between nodes i and j of a weighted
// graph equals entry (i,j) of A^n, where A is the distance matrix and
// the matrix "product" uses (min, +) instead of (+, *).  A^n is
// computed by ceil(log2 n) squarings.
//
// Three implementations, matching the paper's evaluation:
//  * shpaths_skil -- the skeleton program of section 4.1 (array_create,
//    array_copy, array_gen_mult on a 2-D torus);
//  * shpaths_dpfl -- the same skeletons in the DPFL functional
//    baseline;
//  * shpaths_c    -- hand-written message-passing "Parix-C", in the
//    two variants of section 5.1: `optimized == false` reproduces the
//    "older version, which does not use virtual topologies or
//    asynchronous communication" that Table 1's Skil beats, and
//    `optimized == true` the equally optimized version that is about
//    20% faster than Skil.
//
// All variants operate on the same deterministic random graph
// (support::distance_entry) and return the gathered distance matrix
// plus the run accounting.
#pragma once

#include <cstdint>

#include "parix/runtime.h"
#include "support/matrix.h"

namespace skil::apps {

struct ShpathsResult {
  support::Matrix<std::uint32_t> distances;  ///< gathered A^n
  parix::RunResult run;
};

/// Rounds n up to the next multiple of the processor-grid side, as the
/// paper does ("the next highest value divisible by sqrt(p) was
/// taken, e.g. n = 201 for sqrt(p) = 3").
int shpaths_round_up(int n, int nprocs);

ShpathsResult shpaths_skil(int nprocs, int n, std::uint64_t seed,
                           parix::CostModel cost = parix::CostModel::t800());

ShpathsResult shpaths_dpfl(int nprocs, int n, std::uint64_t seed,
                           parix::CostModel cost = parix::CostModel::t800());

ShpathsResult shpaths_c(int nprocs, int n, std::uint64_t seed, bool optimized,
                        parix::CostModel cost = parix::CostModel::t800());

/// The two ingredients the paper credits for Skil beating the old C
/// version, separately toggleable (bench_ablation_topology).
struct CImplOptions {
  bool virtual_topology = true;  ///< folded torus vs raw row-major grid
  bool async_overlap = true;     ///< overlap rotations with computation
  bool tuned_loop = true;        ///< hand-tuned inner loop (no residual)
};

ShpathsResult shpaths_c_custom(int nprocs, int n, std::uint64_t seed,
                               CImplOptions options,
                               parix::CostModel cost =
                                   parix::CostModel::t800());

}  // namespace skil::apps
