#include "apps/shortest_paths.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "dpfl/dpfl.h"
#include "parix/charge_tape.h"
#include "parix/collectives.h"
#include "skil/skil.h"

namespace skil::apps {

namespace {

using support::dist_add;
using support::distance_entry;
using support::kDistInf;

/// Number of squarings: A^(2^iters) with 2^iters >= n.
int squaring_iterations(int n) {
  int iterations = 0;
  for (int span = 1; span < n; span *= 2) ++iterations;
  return iterations;
}

/// Distance-matrix initialiser including the paper's padding: indices
/// beyond the original n behave as isolated nodes.
std::uint32_t padded_entry(int n_orig, std::uint64_t seed, int i, int j) {
  if (i >= n_orig || j >= n_orig) return i == j ? 0u : kDistInf;
  return distance_entry(n_orig, seed, i, j);
}

}  // namespace

int shpaths_round_up(int n, int nprocs) {
  const parix::MeshShape mesh = parix::near_square_mesh(nprocs);
  SKIL_REQUIRE(mesh.rows == mesh.cols,
               "shortest paths needs a square processor grid");
  const int q = mesh.rows;
  return ((n + q - 1) / q) * q;
}

ShpathsResult shpaths_skil(int nprocs, int n, std::uint64_t seed,
                           parix::CostModel cost) {
  const int size = shpaths_round_up(n, nprocs);
  ShpathsResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    // The paper's shpaths procedure, verbatim in library form.
    auto init_f = [&](Index ix) { return padded_entry(n, seed, ix[0], ix[1]); };
    auto zero = [](Index) { return std::uint32_t{0}; };
    auto int_max = [](Index) { return kDistInf; };

    DistArray<std::uint32_t> a = array_create<std::uint32_t>(
        proc, 2, Size{size, size}, Size{0, 0}, Index{-1, -1}, init_f,
        parix::Distr::kTorus2D);
    DistArray<std::uint32_t> b = array_create<std::uint32_t>(
        proc, 2, Size{size, size}, Size{0, 0}, Index{-1, -1}, zero,
        parix::Distr::kTorus2D);
    DistArray<std::uint32_t> c = array_create<std::uint32_t>(
        proc, 2, Size{size, size}, Size{0, 0}, Index{-1, -1}, int_max,
        parix::Distr::kTorus2D);

    // Each squaring is the fusible composition copy|gen_mult|copy:
    // under SKIL_FUSE=on both full-matrix copies are elided (the
    // operand blocks are built straight from `a`, the result copy
    // becomes a handle swap) and the restoring unskew disappears.
    // The stale previous iterate left in `c` folds away under min
    // exactly like kDistInf -- distances only shrink -- so the
    // distance matrix is bit-identical (DESIGN.md section 13).
    const int iterations = squaring_iterations(size);
    for (int i = 0; i < iterations; ++i) {
      const parix::TraceSpan step(proc, "shpaths squaring", i);
      if (array_gen_mult_squared(
              a, fn::min,
              [](std::uint32_t x, std::uint32_t y) { return dist_add(x, y); },
              c, b))
        std::swap(a, c);
    }

    // Unfused, the loop's trailing copy leaves `a == c` bitwise; fused,
    // the final swap leaves the newest iterate in `a`.  Gathering `a`
    // is charge-identical to gathering `c` (the gather walks the
    // distribution, not the values).  A degenerate 1x1 instance runs
    // zero iterations and keeps the paper's behaviour of returning `c`.
    std::vector<std::uint32_t> flat =
        array_gather_root(iterations > 0 ? a : c);
    if (proc.id() == 0) {
      result.distances = support::Matrix<std::uint32_t>(size, size);
      result.distances.storage() = std::move(flat);
    }

    array_destroy(a);
    array_destroy(b);
    array_destroy(c);
  });
  return result;
}

ShpathsResult shpaths_dpfl(int nprocs, int n, std::uint64_t seed,
                           parix::CostModel cost) {
  const int size = shpaths_round_up(n, nprocs);
  ShpathsResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    using dpfl::Closure;
    using dpfl::FArray;
    const Closure<std::uint32_t(Index)> init_f(
        proc, [&](Index ix) { return padded_entry(n, seed, ix[0], ix[1]); });
    const Closure<std::uint32_t(std::uint32_t, std::uint32_t)> gen_add(
        proc,
        [](std::uint32_t x, std::uint32_t y) { return std::min(x, y); });
    const Closure<std::uint32_t(std::uint32_t, std::uint32_t)> gen_mult(
        proc, [](std::uint32_t x, std::uint32_t y) { return dist_add(x, y); });

    FArray<std::uint32_t> a = dpfl::fa_create<std::uint32_t>(
        proc, 2, Size{size, size}, init_f, parix::Distr::kTorus2D);

    const int iterations = squaring_iterations(size);
    const bool taped =
        parix::default_charge_path() == parix::ChargePath::kTape;
    for (int i = 0; i < iterations; ++i) {
      const parix::TraceSpan step(proc, "shpaths squaring", i);
      // Immutability: the functional version squares a directly into a
      // fresh array (no copy-to-b dance, but every round allocates).
      // The tape path inlines the combines into the multiply loop; the
      // gen_add/gen_mult Closures above are still constructed, so the
      // closure-record allocations charge identically, and the
      // skeleton's bulk per-round charges are unchanged.
      if (taped)
        a = dpfl::fa_gen_mult_taped(
            a, a,
            [](std::uint32_t x, std::uint32_t y) { return std::min(x, y); },
            [](std::uint32_t x, std::uint32_t y) { return dist_add(x, y); });
      else
        a = dpfl::fa_gen_mult(a, a, gen_add, gen_mult);
    }

    std::vector<std::uint32_t> flat = dpfl::fa_gather_root(a);
    if (proc.id() == 0) {
      result.distances = support::Matrix<std::uint32_t>(size, size);
      result.distances.storage() = std::move(flat);
    }
  });
  return result;
}

ShpathsResult shpaths_c(int nprocs, int n, std::uint64_t seed, bool optimized,
                        parix::CostModel cost) {
  // Paper section 5.1: the "older version" lacks virtual topologies and
  // asynchronous communication (its generated compute code is
  // comparable to Skil's); the equally optimized version has all three
  // improvements.
  CImplOptions options;
  options.virtual_topology = optimized;
  options.async_overlap = optimized;
  options.tuned_loop = optimized;
  return shpaths_c_custom(nprocs, n, seed, options, cost);
}

ShpathsResult shpaths_c_custom(int nprocs, int n, std::uint64_t seed,
                               CImplOptions options, parix::CostModel cost) {
  const int size = shpaths_round_up(n, nprocs);
  const bool optimized = options.async_overlap;
  cost.default_send_mode =
      optimized ? parix::SendMode::kAsync : parix::SendMode::kSync;
  ShpathsResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    // Hand-written message-passing C: raw blocks, explicit Cannon
    // rotations, pointer swaps instead of copies, fused (min,+) inner
    // loop with no per-element call overhead.
    const parix::Topology topo(proc.machine(),
                               options.virtual_topology
                                   ? parix::Distr::kTorus2D
                                   : parix::Distr::kDefault);
    const int q = topo.grid_rows();
    SKIL_REQUIRE(q == topo.grid_cols(), "square grid required");
    const int block = size / q;
    const int my_row = topo.grid_row(proc.id());
    const int my_col = topo.grid_col(proc.id());

    auto rotate = [&](std::vector<std::uint32_t> payload, int drow,
                      int dcol) {
      const long tag = proc.fresh_tag();
      const int dst = topo.at_grid(my_row + drow, my_col + dcol);
      const int src = topo.at_grid(my_row - drow, my_col - dcol);
      if (dst == proc.id()) return payload;
      proc.send<std::vector<std::uint32_t>>(dst, tag, std::move(payload));
      return proc.recv<std::vector<std::uint32_t>>(src, tag);
    };

    // Local block of the distance matrix.
    const std::size_t cells = static_cast<std::size_t>(block) * block;
    std::vector<std::uint32_t> dist(cells);
    for (int i = 0; i < block; ++i)
      for (int j = 0; j < block; ++j)
        dist[static_cast<std::size_t>(i) * block + j] = padded_entry(
            n, seed, my_row * block + i, my_col * block + j);
    proc.charge(parix::Op::kIntOp, cells);

    const int iterations = squaring_iterations(size);
    for (int it = 0; it < iterations; ++it) {
      const parix::TraceSpan step(proc, "shpaths squaring", it);
      // Square `dist` into `next` with Cannon's algorithm.  Both
      // operand buffers start as copies of the current matrix.
      std::vector<std::uint32_t> a_block = dist;
      std::vector<std::uint32_t> b_block = dist;
      proc.charge(parix::Op::kCopyWord, 2 * (cells / 2 + 1));
      a_block = rotate(std::move(a_block), 0, -my_row);
      b_block = rotate(std::move(b_block), -my_col, 0);

      std::vector<std::uint32_t> next(cells, kDistInf);
      const int a_dst = topo.at_grid(my_row, my_col - 1);
      const int a_src = topo.at_grid(my_row, my_col + 1);
      const int b_dst = topo.at_grid(my_row - 1, my_col);
      const int b_src = topo.at_grid(my_row + 1, my_col);
      for (int round = 0; round < q; ++round) {
        const bool last = round + 1 == q;
        const long tag = proc.fresh_tag();
        if (optimized && !last && q > 1) {
          // The optimized version posts the rotations first and
          // overlaps the transfers with the block multiplication.
          proc.send_mode<std::vector<std::uint32_t>>(
              a_dst, tag, a_block, parix::SendMode::kAsync);
          proc.send_mode<std::vector<std::uint32_t>>(
              b_dst, tag + 1, b_block, parix::SendMode::kAsync);
          proc.charge(parix::Op::kCopyWord, cells + 2);
        }
        for (int i = 0; i < block; ++i)
          for (int k = 0; k < block; ++k) {
            const std::uint32_t aik =
                a_block[static_cast<std::size_t>(i) * block + k];
            if (aik == kDistInf) continue;
            const std::uint32_t* brow =
                &b_block[static_cast<std::size_t>(k) * block];
            std::uint32_t* nrow = &next[static_cast<std::size_t>(i) * block];
            for (int j = 0; j < block; ++j) {
              const std::uint32_t via = dist_add(aik, brow[j]);
              if (via < nrow[j]) nrow[j] = via;
            }
          }
        // A hand-tuned inner loop charges bare element operations.  The
        // "older version" of section 5.1 predates that tuning: its
        // compute code carries roughly twice the per-element residual
        // of Skil's instantiated skeletons (Table 1 shows it ~10%
        // slower than Skil even on the 2x2 network, where communication
        // is a negligible share -- so part of its deficit had to be
        // compute).
        proc.charge(parix::Op::kIntOp,
                    2 * static_cast<std::uint64_t>(cells) * block);
        if (!options.tuned_loop)
          proc.charge(parix::Op::kCall,
                      4 * static_cast<std::uint64_t>(cells) * block);
        if (!last && q > 1) {
          if (optimized) {
            a_block = proc.recv<std::vector<std::uint32_t>>(a_src, tag);
            b_block = proc.recv<std::vector<std::uint32_t>>(b_src, tag + 1);
          } else {
            // The old version communicates synchronously after the
            // multiplication, with no overlap.
            a_block = rotate(std::move(a_block), 0, -1);
            b_block = rotate(std::move(b_block), -1, 0);
          }
        }
      }
      // (Two integer operations per fused multiply-add were charged per
      // round; no call residual -- this is the hand-inlined loop.)
      dist = std::move(next);  // pointer swap, no copy
    }

    // Gather the result on processor 0.
    const parix::Topology gather_topo(proc.machine(), parix::Distr::kDefault);
    std::vector<std::vector<std::uint32_t>> parts =
        parix::gather(proc, gather_topo, 0, std::move(dist));
    if (proc.id() == 0) {
      result.distances = support::Matrix<std::uint32_t>(size, size);
      for (int p = 0; p < nprocs; ++p) {
        const int pr = topo.grid_row(p);
        const int pc = topo.grid_col(p);
        for (int i = 0; i < block; ++i)
          for (int j = 0; j < block; ++j)
            result.distances(pr * block + i, pc * block + j) =
                parts[p][static_cast<std::size_t>(i) * block + j];
      }
    }
  });
  return result;
}

}  // namespace skil::apps
