#include "apps/gauss.h"

#include <cmath>
#include <utility>

#include "dpfl/dpfl.h"
#include "parix/charge_tape.h"
#include "parix/collectives.h"
#include "skil/skil.h"

namespace skil::apps {

namespace {

using support::linear_system_entry;
using support::pivoting_system_entry;

/// Extended-system entry with padding: rows/columns beyond the
/// original n form an identity block with zero right-hand side, so the
/// first n solution components match the unpadded system.
double gauss_entry(int n, int n_eff, std::uint64_t seed, bool pivoting,
                   int i, int j) {
  if (i >= n) {
    if (j == i) return 1.0;
    return 0.0;
  }
  if (j >= n && j < n_eff) return 0.0;
  const int jj = j == n_eff ? n : j;  // right-hand side column
  return pivoting ? pivoting_system_entry(n, seed, i, jj)
                  : linear_system_entry(n, seed, i, jj);
}

}  // namespace

int gauss_round_up(int n, int nprocs) {
  return ((n + nprocs - 1) / nprocs) * nprocs;
}

namespace {

/// Shared implementation: the entry function supplies the padded
/// size x (size+1) extended matrix.
template <class EntryFn>
GaussResult gauss_skil_impl(int nprocs, int size, EntryFn&& entry,
                            bool pivoting, parix::CostModel cost) {
  const int rows_per_proc = size / nprocs;
  GaussResult result;
  parix::RunConfig config{nprocs, cost};

  // The paper's customizing argument functions, written as the
  // free-standing functions the Skil program uses and supplied to the
  // skeletons via partial application.
  auto make_elemrec = [](double v, Index ix) {
    return ElemRec{v, ix[0], ix[1]};
  };
  auto max_abs_in_col = [](int k, ElemRec e1, ElemRec e2) {
    // Maximum over the elements of column k only; other elements act
    // as the identity.  The row tie-break keeps the fold commutative.
    if (e1.col != k) return e2;
    if (e2.col != k) return e1;
    const double a1 = std::fabs(e1.val);
    const double a2 = std::fabs(e2.val);
    if (a1 != a2) return a1 > a2 ? e1 : e2;
    return e1.row <= e2.row ? e1 : e2;
  };
  auto switch_rows = [](int r1, int r2, int row) {
    if (row == r1) return r2;
    if (row == r2) return r1;
    return row;
  };
  auto copy_pivot = [](const DistArray<double>& b, int k, double v,
                       Index ix) {
    // If this processor's partition of b contains the pivot row,
    // return its (normalised) element for the piv row; otherwise keep
    // the old value.
    const Bounds bds = b.part_bounds();
    if (bds.lower[0] <= k && k < bds.upper[0]) {
      b.proc().charge(parix::Op::kFloatOp);  // the division
      return b.get_elem(Index{k, ix[1]}) / b.get_elem(Index{k, k});
    }
    return v;
  };
  auto eliminate = [](int k, const DistArray<double>& b,
                      const DistArray<double>& piv, double v, Index ix) {
    if (ix[0] == k || ix[1] < k) return v;
    const int my_piv_row = piv.part_bounds().lower[0];
    b.proc().charge(parix::Op::kFloatOp, 2);  // multiply and subtract
    return v - b.get_elem(Index{ix[0], k}) *
                   piv.get_elem(Index{my_piv_row, ix[1]});
  };
  auto normalize = [](const DistArray<double>& a, int last_col, double v,
                      Index ix) {
    if (ix[1] != last_col) return v;
    a.proc().charge(parix::Op::kFloatOp);
    return v / a.get_elem(Index{ix[0], ix[0]});
  };

  // Charge tapes of the three customizing functions above: the exact
  // per-active-element charge sequence each interpretive body books
  // (tests/test_parix_charge_tape.cpp pins the two paths bit-for-bit).
  // Both operands of the interp bodies' binary expressions charge the
  // identical (kFloatOp, 1), so their unspecified evaluation order
  // cannot move the chain.
  //
  // Built once here and never mutated, each tape keeps one stable
  // identity (ChargeTape::id) across every elimination step's replay
  // -- which is what lets the settlement memo (DESIGN.md section 12)
  // reuse one probed period delta for the whole sweep instead of
  // re-probing per replay.  Rebuilding a tape inside the step loop
  // would still be bit-exact, just memo-cold (fresh id per replay).
  const bool taped =
      parix::default_charge_path() == parix::ChargePath::kTape;
  parix::ChargeTape pivot_tape;   // the division, then two get_elem reads
  pivot_tape.charge(parix::Op::kFloatOp);
  pivot_tape.charge(parix::Op::kFloatOp);
  pivot_tape.charge(parix::Op::kFloatOp);
  parix::ChargeTape elim_tape;    // multiply+subtract, then two reads
  elim_tape.charge(parix::Op::kFloatOp, 2);
  elim_tape.charge(parix::Op::kFloatOp);
  elim_tape.charge(parix::Op::kFloatOp);
  parix::ChargeTape norm_tape;    // the division, then one read
  norm_tape.charge(parix::Op::kFloatOp);
  norm_tape.charge(parix::Op::kFloatOp);

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    auto init_f = [&](Index ix) { return entry(ix[0], ix[1]); };
    auto zero = [](Index) { return 0.0; };

    // a, b: size x (size+1); piv: p x (size+1), one row per processor.
    DistArray<double> a = array_create<double>(
        proc, 2, Size{size, size + 1}, Size{rows_per_proc, size + 1},
        Index{-1, -1}, init_f, parix::Distr::kDefault);
    DistArray<double> b = array_create<double>(
        proc, 2, Size{size, size + 1}, Size{rows_per_proc, size + 1},
        Index{-1, -1}, zero, parix::Distr::kDefault);
    DistArray<double> piv = array_create<double>(
        proc, 2, Size{nprocs, size + 1}, Size{1, size + 1}, Index{-1, -1},
        zero, parix::Distr::kDefault);

    // Fusion (DESIGN.md section 13): the step's copy|pivot|eliminate
    // composition collapses into one in-place region pass over `a`,
    // eliding the full-matrix copy into `b`, the non-owner pivot-map
    // traversals, and the inactive-region elimination tail.  Requires
    // the tape charge path (the interpretive bodies charge element by
    // element and cannot be re-associated).
    const bool fuse_on = proc.fuse_mode() == parix::FuseMode::kOn;
    const bool fusing = proc.fusing();

    for (int k = 0; k < size; ++k) {
      const parix::TraceSpan step(proc, "gauss pivot round", k);
      if (fuse_on && !fusing)
        parix::note_fusion_rejected(parix::FusionReject::kPath);
      bool step_fused = fusing;
      if (pivoting) {
        const ElemRec e =
            array_fold(make_elemrec, partial(max_abs_in_col, k), a);
        if (std::fabs(e.val) == 0.0)
          throw support::AppError("Matrix is singular");
        if (e.row != k) {
          // A permuting step re-shapes the data flow: the fused
          // in-place elimination assumes source and target rows
          // coincide, which the row swap breaks.  Reject (kShape)
          // and run the step through the ordinary two-array path.
          if (fusing)
            parix::note_fusion_rejected(parix::FusionReject::kShape);
          step_fused = false;
          array_permute_rows(a, partial(switch_rows, e.row, k), b);
        } else if (!step_fused) {
          array_copy(a, b);
        }
      } else if (!step_fused) {
        array_copy(a, b);
      }
      if (step_fused) {
        // Fused pivot map: only the owner of row k computes anything
        // (non-owner writes were dead -- the broadcast below
        // overwrites every other partition of piv), and it reads the
        // pivot row from `a` directly since the copy was elided.
        const Bounds ab = a.part_bounds();
        const int arow0 = ab.lower[0];
        const int aw = ab.extent(1);
        if (arow0 <= k && k < ab.upper[0]) {
          const double* krow =
              a.local().data() + static_cast<std::size_t>(k - arow0) * aw;
          double* prow = piv.local().data();  // one row, col0 = 0
          for (int j = 0; j <= size; ++j) prow[j] = krow[j] / krow[k];
          proc.replay(pivot_tape, static_cast<std::uint64_t>(size + 1));
          parix::DeferredCharges deferred(proc);
          detail::array_map_charge_tail<double>(
              deferred, static_cast<std::uint64_t>(size + 1));
        }
      } else if (taped) {
        // Flat replay kernel: the reads the interp body performs
        // through the charged get_elem macro become raw partition
        // loads (the tape carries the charges).  The owner test and
        // the pivot-row base resolve once per step, not per element.
        const Bounds bb = b.part_bounds();
        const bool owner = bb.lower[0] <= k && k < bb.upper[0];
        const double* krow =
            owner ? b.local().data() +
                        static_cast<std::size_t>(k - bb.lower[0]) *
                            bb.extent(1)
                  : nullptr;
        array_map_taped(
            [owner, krow, k](double v, Index ix, std::uint64_t& tapped) {
              if (!owner) return v;
              ++tapped;
              return krow[ix[1]] / krow[k];
            },
            pivot_tape, piv, piv);
      } else {
        array_map(partial(copy_pivot, std::cref(b), k), piv, piv);
      }
      array_broadcast_part(piv, Index{k / rows_per_proc, 0});
      if (step_fused) {
        // Fused elimination: in place on `a` over the active region
        // only (rows != k, columns >= k), with the column-k factor
        // hoisted per row before the sweep.  Bit-identity with the
        // two-array path: the factor is the pre-update a[i][k] (the
        // value the unfused kernel reads from the `b` copy), and
        // prow[k] == krow[k]/krow[k] == 1.0 exactly, so the j == k
        // update lands on the identical bits.
        const Bounds ab = a.part_bounds();
        const int arow0 = ab.lower[0];
        const int aw = ab.extent(1);
        double* ad = a.local().data();
        const double* prow = piv.local().data();
        std::uint64_t active = 0;
        for (int i = arow0; i < ab.upper[0]; ++i) {
          if (i == k) continue;
          double* row = ad + static_cast<std::size_t>(i - arow0) * aw;
          const double factor = row[k];
          for (int j = k; j <= size; ++j) row[j] -= factor * prow[j];
          active += static_cast<std::uint64_t>(size + 1 - k);
        }
        proc.replay(elim_tape, active);
        parix::DeferredCharges deferred(proc);
        detail::array_map_charge_tail<double>(deferred, active);
        parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
      } else if (taped) {
        const Bounds bb = b.part_bounds();
        const int brow0 = bb.lower[0];
        const int bw = bb.extent(1);
        const double* bd = b.local().data();
        const double* prow = piv.local().data();  // one row, col0 = 0
        array_map_taped(
            [bd, prow, brow0, bw, k](double v, Index ix,
                                     std::uint64_t& tapped) {
              if (ix[0] == k || ix[1] < k) return v;
              ++tapped;
              return v - bd[static_cast<std::size_t>(ix[0] - brow0) * bw + k] *
                             prow[ix[1]];
            },
            elim_tape, b, a);
      } else {
        array_map(partial(eliminate, k, std::cref(b), std::cref(piv)), b, a);
      }
    }
    if (fuse_on && !fusing)
      parix::note_fusion_rejected(parix::FusionReject::kPath);
    if (fusing) {
      // Fused normalize|gather: divide the right-hand-side column in
      // place (the diagonal read is never clobbered -- it sits left
      // of the written column) and gather from `a`, eliding the full
      // normalize pass into `b` and its inactive-element tail.
      const Bounds ab = a.part_bounds();
      const int arow0 = ab.lower[0];
      const int aw = ab.extent(1);
      double* ad = a.local().data();
      std::uint64_t active = 0;
      for (int i = arow0; i < ab.upper[0]; ++i) {
        double* row = ad + static_cast<std::size_t>(i - arow0) * aw;
        row[size] /= row[i];
        ++active;
      }
      proc.replay(norm_tape, active);
      parix::DeferredCharges deferred(proc);
      detail::array_map_charge_tail<double>(deferred, active);
      parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
    } else if (taped) {
      const Bounds ab = a.part_bounds();
      const int arow0 = ab.lower[0];
      const int aw = ab.extent(1);
      const double* ad = a.local().data();
      array_map_taped(
          [ad, arow0, aw, size](double v, Index ix, std::uint64_t& tapped) {
            if (ix[1] != size) return v;
            ++tapped;
            return v / ad[static_cast<std::size_t>(ix[0] - arow0) * aw +
                          ix[0]];
          },
          norm_tape, a, b);
    } else {
      array_map(partial(normalize, std::cref(a), size), a, b);
    }

    const std::vector<double> solved = array_gather_root(fusing ? a : b);
    if (proc.id() == 0) {
      result.x.resize(size);
      for (int i = 0; i < size; ++i)
        result.x[i] = solved[static_cast<std::size_t>(i) * (size + 1) + size];
    }

    array_destroy(a);
    array_destroy(b);
    array_destroy(piv);
  });
  return result;
}

}  // namespace

GaussResult gauss_skil(int nprocs, int n, std::uint64_t seed, bool pivoting,
                       parix::CostModel cost) {
  const int size = gauss_round_up(n, nprocs);
  return gauss_skil_impl(
      nprocs, size,
      [&](int i, int j) { return gauss_entry(n, size, seed, pivoting, i, j); },
      pivoting, cost);
}

GaussResult gauss_skil_matrix(int nprocs, const support::Matrix<double>& ab,
                              bool pivoting, parix::CostModel cost) {
  const int n = ab.rows();
  SKIL_REQUIRE(ab.cols() == n + 1,
               "gauss_skil_matrix: the system must be n x (n+1)");
  SKIL_REQUIRE(n % nprocs == 0,
               "gauss_skil_matrix: nprocs must divide the matrix size");
  return gauss_skil_impl(
      nprocs, n, [&](int i, int j) { return ab(i, j); }, pivoting, cost);
}

GaussResult gauss_dpfl(int nprocs, int n, std::uint64_t seed,
                       parix::CostModel cost) {
  const int size = gauss_round_up(n, nprocs);
  const int rows_per_proc = size / nprocs;
  GaussResult result;
  parix::RunConfig config{nprocs, cost};

  // DPFL charge tapes, recorded through the same sink-templated
  // helpers the interpretive closure bodies charge through (fn.h,
  // farray.h), so the sequences cannot drift apart.
  const bool taped =
      parix::default_charge_path() == parix::ChargePath::kTape;
  using DArray = dpfl::FArray<double>;
  parix::ChargeTape pivot_tape;  // boxed division + two boxed reads
  dpfl::charge_boxed_arith(pivot_tape, 1);
  DArray::append_get_elem_charges(pivot_tape);
  DArray::append_get_elem_charges(pivot_tape);
  parix::ChargeTape elim_tape;   // boxed multiply+subtract + two reads
  dpfl::charge_boxed_arith(elim_tape, 2);
  DArray::append_get_elem_charges(elim_tape);
  DArray::append_get_elem_charges(elim_tape);
  parix::ChargeTape norm_tape;   // boxed division + one boxed read
  dpfl::charge_boxed_arith(norm_tape, 1);
  DArray::append_get_elem_charges(norm_tape);

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    using dpfl::Closure;
    using dpfl::FArray;

    const Closure<double(Index)> init_f(proc, [&](Index ix) {
      return gauss_entry(n, size, seed, /*pivoting=*/false, ix[0], ix[1]);
    });
    const Closure<double(Index)> zero(proc, [](Index) { return 0.0; });

    FArray<double> a = dpfl::fa_create<double>(
        proc, 2, Size{size, size + 1}, init_f, parix::Distr::kDefault,
        Size{rows_per_proc, size + 1});
    FArray<double> piv = dpfl::fa_create<double>(
        proc, 2, Size{nprocs, size + 1}, zero, parix::Distr::kDefault,
        Size{1, size + 1});

    // Fusion (DESIGN.md section 13): DPFL's persistent-update
    // discipline makes every step allocate a fresh partition; under
    // fusing the intermediate provably has no other observer
    // (use_count == 1), so the update happens in place over the
    // active region -- functional deforestation, with the eliminated
    // stage's boxing and allocation charges gone from the chain.
    const bool fuse_on = proc.fuse_mode() == parix::FuseMode::kOn;
    const bool fusing = proc.fusing();

    for (int k = 0; k < size; ++k) {
      const parix::TraceSpan step(proc, "gauss pivot round", k);
      if (fuse_on && !fusing)
        parix::note_fusion_rejected(parix::FusionReject::kPath);
      // copy_pivot: normalised pivot-row elements into this
      // processor's piv row when it owns the pivot row.
      std::vector<double>* pmut =
          fusing ? piv.mutable_local_if_unique() : nullptr;
      if (pmut != nullptr) {
        // Fused pivot map: owner-only, in place in the uniquely owned
        // partition (non-owner writes were dead -- the broadcast
        // overwrites them).  The closure record is still built.
        proc.charge(parix::Op::kAlloc);
        const Bounds ab = a.part_bounds();
        if (ab.lower[0] <= k && k < ab.upper[0]) {
          const double* krow =
              a.local().data() +
              static_cast<std::size_t>(k - ab.lower[0]) * ab.extent(1);
          double* prow = pmut->data();  // one row, col0 = 0
          for (int j = 0; j <= size; ++j) prow[j] = krow[j] / krow[k];
          proc.replay(pivot_tape, static_cast<std::uint64_t>(size + 1));
          dpfl::charge_apply(proc, static_cast<std::uint64_t>(size + 1));
          proc.charge(dpfl::op_kind<double>(),
                      static_cast<std::uint64_t>(size + 1));
        }
        parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
      } else if (taped) {
        // The closure record the interp path allocates when it
        // constructs the copy_pivot Closure, charged at the same
        // program point.  As in gauss_skil_impl, the kernel reads the
        // partition raw -- the tape carries the boxed-access charges.
        proc.charge(parix::Op::kAlloc);
        const Bounds ab = a.part_bounds();
        const bool owner = ab.lower[0] <= k && k < ab.upper[0];
        const double* krow =
            owner ? a.local().data() +
                        static_cast<std::size_t>(k - ab.lower[0]) *
                            ab.extent(1)
                  : nullptr;
        piv = dpfl::fa_map_taped(
            [owner, krow, k](double v, Index ix, std::uint64_t& tapped) {
              if (!owner) return v;
              ++tapped;
              return krow[ix[1]] / krow[k];
            },
            pivot_tape, piv);
      } else {
        const Closure<double(double, Index)> copy_pivot(
            proc, [&a, k, &proc](double v, Index ix) {
              const Bounds bds = a.part_bounds();
              if (bds.lower[0] <= k && k < bds.upper[0]) {
                dpfl::charge_boxed_arith(proc, 1);
                return a.get_elem(Index{k, ix[1]}) / a.get_elem(Index{k, k});
              }
              return v;
            });
        piv = dpfl::fa_map(copy_pivot, piv);
      }
      piv = dpfl::fa_broadcast_part(piv, Index{k / rows_per_proc, 0});

      std::vector<double>* amut =
          fusing ? a.mutable_local_if_unique() : nullptr;
      if (amut != nullptr) {
        // Fused elimination: the fresh partition the persistent
        // update would build has no observer but `a` itself, so the
        // update happens in place over the active region with the
        // column-k factor hoisted per row (bit-identity as in
        // gauss_skil_impl: prow[k] == 1.0 exactly).  The `source`
        // alias is deliberately not created -- it would pin the old
        // partition alive and force the copy.
        proc.charge(parix::Op::kAlloc);  // eliminate closure record
        const Bounds sb = a.part_bounds();
        const int srow0 = sb.lower[0];
        const int sw = sb.extent(1);
        double* ad = amut->data();
        const double* prow = piv.local().data();
        std::uint64_t active = 0;
        for (int i = srow0; i < sb.upper[0]; ++i) {
          if (i == k) continue;
          double* row = ad + static_cast<std::size_t>(i - srow0) * sw;
          const double factor = row[k];
          for (int j = k; j <= size; ++j) row[j] -= factor * prow[j];
          active += static_cast<std::uint64_t>(size + 1 - k);
        }
        proc.replay(elim_tape, active);
        dpfl::charge_apply(proc, active);
        proc.charge(dpfl::op_kind<double>(), active);
        parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
        continue;
      }
      if (fusing)  // shared storage: cannot deforest in place
        parix::note_fusion_rejected(parix::FusionReject::kShape);
      const FArray<double> source = a;
      const FArray<double> pivot_rows = piv;
      if (taped) {
        proc.charge(parix::Op::kAlloc);  // eliminate closure record
        const Bounds sb = source.part_bounds();
        const int srow0 = sb.lower[0];
        const int sw = sb.extent(1);
        const double* sd = source.local().data();
        const double* prow = pivot_rows.local().data();  // one row
        a = dpfl::fa_map_taped(
            [sd, prow, srow0, sw, k](double v, Index ix,
                                     std::uint64_t& tapped) {
              if (ix[0] == k || ix[1] < k) return v;
              ++tapped;
              return v - sd[static_cast<std::size_t>(ix[0] - srow0) * sw + k] *
                             prow[ix[1]];
            },
            elim_tape, a);
      } else {
        const Closure<double(double, Index)> eliminate(
            proc, [source, pivot_rows, k, &proc](double v, Index ix) {
              if (ix[0] == k || ix[1] < k) return v;
              const int my_piv_row = pivot_rows.part_bounds().lower[0];
              dpfl::charge_boxed_arith(proc, 2);
              return v - source.get_elem(Index{ix[0], k}) *
                             pivot_rows.get_elem(Index{my_piv_row, ix[1]});
            });
        a = dpfl::fa_map(eliminate, a);
      }
    }

    if (fuse_on && !fusing)
      parix::note_fusion_rejected(parix::FusionReject::kPath);
    std::vector<double>* amut =
        fusing ? a.mutable_local_if_unique() : nullptr;
    if (amut != nullptr) {
      // Fused normalize: right-hand-side column divided in place (the
      // diagonal read sits left of the written column), active
      // elements only.
      proc.charge(parix::Op::kAlloc);  // normalize closure record
      const Bounds fb = a.part_bounds();
      const int frow0 = fb.lower[0];
      const int fw = fb.extent(1);
      double* ad = amut->data();
      std::uint64_t active = 0;
      for (int i = frow0; i < fb.upper[0]; ++i) {
        double* row = ad + static_cast<std::size_t>(i - frow0) * fw;
        row[size] /= row[i];
        ++active;
      }
      proc.replay(norm_tape, active);
      dpfl::charge_apply(proc, active);
      proc.charge(dpfl::op_kind<double>(), active);
      parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
    } else if (taped) {
      if (fusing)
        parix::note_fusion_rejected(parix::FusionReject::kShape);
      const FArray<double> final_a = a;
      proc.charge(parix::Op::kAlloc);  // normalize closure record
      const Bounds fb = final_a.part_bounds();
      const int frow0 = fb.lower[0];
      const int fw = fb.extent(1);
      const double* fd = final_a.local().data();
      a = dpfl::fa_map_taped(
          [fd, frow0, fw, size](double v, Index ix, std::uint64_t& tapped) {
            if (ix[1] != size) return v;
            ++tapped;
            return v / fd[static_cast<std::size_t>(ix[0] - frow0) * fw +
                          ix[0]];
          },
          norm_tape, a);
    } else {
      const FArray<double> final_a = a;
      const Closure<double(double, Index)> normalize(
          proc, [final_a, size, &proc](double v, Index ix) {
            if (ix[1] != size) return v;
            dpfl::charge_boxed_arith(proc, 1);
            return v / final_a.get_elem(Index{ix[0], ix[0]});
          });
      a = dpfl::fa_map(normalize, a);
    }

    std::vector<double> flat = dpfl::fa_gather_root(a);
    if (proc.id() == 0) {
      result.x.resize(size);
      for (int i = 0; i < size; ++i)
        result.x[i] = flat[static_cast<std::size_t>(i) * (size + 1) + size];
    }
  });
  return result;
}

GaussResult gauss_c(int nprocs, int n, std::uint64_t seed,
                    parix::CostModel cost) {
  const int size = gauss_round_up(n, nprocs);
  const int rows_per_proc = size / nprocs;
  const int width = size + 1;
  GaussResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    // Hand-written message-passing C: in-place elimination over the
    // active region only, one tree broadcast of the (normalised) pivot
    // row per step, no copies and no per-element dispatch.
    const parix::Topology topo(proc.machine(), parix::Distr::kDefault);
    const int me = proc.id();
    const int row0 = me * rows_per_proc;

    std::vector<double> local(static_cast<std::size_t>(rows_per_proc) *
                              width);
    for (int i = 0; i < rows_per_proc; ++i)
      for (int j = 0; j < width; ++j)
        local[static_cast<std::size_t>(i) * width + j] =
            gauss_entry(n, size, seed, /*pivoting=*/false, row0 + i, j);
    proc.charge(parix::Op::kFloatOp, local.size());

    for (int k = 0; k < size; ++k) {
      const parix::TraceSpan step(proc, "gauss pivot round", k);
      const int owner = k / rows_per_proc;
      // The broadcast ships the full normalised row (columns below k
      // are already zero); restricting it to the active columns would
      // complicate the code for little gain, so the hand-written
      // program -- like the skeleton's array_broadcast_part -- moves
      // whole rows.
      std::vector<double> pivrow(width);
      if (me == owner) {
        const double* row =
            &local[static_cast<std::size_t>(k - row0) * width];
        const double inv = 1.0 / row[k];
        for (int j = 0; j < width; ++j) pivrow[j] = row[j] * inv;
        proc.charge(parix::Op::kFloatOp,
                    static_cast<std::uint64_t>(width) + 1);
      }
      // The baseline uses the communication library's broadcast, like
      // the skeleton does (Parix shipped broadcast primitives; a flat
      // owner-sends-to-everyone loop would serialise 63 sends'
      // software startup and is slower than the paper's reported C
      // times at small n, so their C cannot have used one).  The row
      // width is uniform, so the size hint lets SKIL_COLL=auto take
      // the pipelined ring for large rows.
      parix::broadcast(proc, topo, owner, pivrow,
                       pivrow.size() * sizeof(double));

      for (int i = 0; i < rows_per_proc; ++i) {
        if (row0 + i == k) {
          // The pivot row itself is only normalised.
          double* row = &local[static_cast<std::size_t>(i) * width];
          for (int j = k; j < width; ++j) row[j] = pivrow[j];
          continue;
        }
        double* row = &local[static_cast<std::size_t>(i) * width];
        const double factor = row[k];
        for (int j = k; j < width; ++j) row[j] -= factor * pivrow[j];
      }
      // Three element operations (load, fused multiply-subtract,
      // store) per active element.
      proc.charge(parix::Op::kFloatOp,
                  3 * static_cast<std::uint64_t>(rows_per_proc) *
                      (width - k));
    }

    // x_i = a(i, n) / a(i, i); with the normalised pivot rows the
    // diagonal is already 1.
    std::vector<double> x_local(rows_per_proc);
    for (int i = 0; i < rows_per_proc; ++i)
      x_local[i] = local[static_cast<std::size_t>(i) * width + size] /
                   local[static_cast<std::size_t>(i) * width + row0 + i];
    proc.charge(parix::Op::kFloatOp, static_cast<std::uint64_t>(rows_per_proc));

    std::vector<std::vector<double>> parts =
        parix::gather(proc, topo, 0, std::move(x_local));
    if (me == 0) {
      result.x.reserve(size);
      for (auto& part : parts)
        result.x.insert(result.x.end(), part.begin(), part.end());
    }
  });
  return result;
}

}  // namespace skil::apps
