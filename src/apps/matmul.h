// Classical dense matrix multiplication.
//
// The paper's section 5.1 notes: "We have done the comparison between
// equally optimized C and Skil versions of the matrix multiplication
// algorithm, and obtained Skil times around 20% slower than direct C
// times [3]."  This module provides those two versions (the Skil one
// is a one-line use of array_gen_mult with (+) and (*)), plus the DPFL
// variant for completeness; bench_s1_matmul_opt reproduces the claim.
#pragma once

#include <cstdint>

#include "parix/runtime.h"
#include "support/matrix.h"

namespace skil::apps {

struct MatmulResult {
  support::Matrix<double> product;
  parix::RunResult run;
};

/// Rounds n up to a multiple of the processor-grid side.
int matmul_round_up(int n, int nprocs);

MatmulResult matmul_skil(int nprocs, int n, std::uint64_t seed,
                         parix::CostModel cost = parix::CostModel::t800());

MatmulResult matmul_dpfl(int nprocs, int n, std::uint64_t seed,
                         parix::CostModel cost = parix::CostModel::t800());

/// Equally optimized hand-written C (torus + asynchronous rotations).
MatmulResult matmul_c(int nprocs, int n, std::uint64_t seed,
                      parix::CostModel cost = parix::CostModel::t800());

/// SUMMA (Scalable Universal Matrix Multiplication): per-step panel
/// broadcasts along split row/column communicators instead of Cannon
/// rotations.  Exercises Topology::split_rows/split_cols and the
/// size-adaptive broadcast zoo (large panels ride the chunk-pipelined
/// ring under SKIL_COLL=auto).  The fixed k order makes the product
/// bit-identical across every SKIL_COLL mode (broadcasts only move
/// bits); it matches matmul_c up to FP summation order, since Cannon
/// visits the k panels in a per-processor rotated order.
MatmulResult matmul_summa(int nprocs, int n, std::uint64_t seed,
                          parix::CostModel cost = parix::CostModel::t800());

}  // namespace skil::apps
