#include "apps/matmul.h"

#include <utility>
#include <vector>

#include "dpfl/dpfl.h"
#include "parix/collectives.h"
#include "skil/skil.h"

namespace skil::apps {

namespace {

using support::dense_entry;

/// Operand entries: matrix A from `seed`, matrix B from `seed ^ flip`;
/// padded indices multiply as zero.
double operand_entry(int n, std::uint64_t seed, bool second, int i, int j) {
  if (i >= n || j >= n) return 0.0;
  return dense_entry(second ? seed ^ 0x5a5a5a5aULL : seed, i, j);
}

}  // namespace

int matmul_round_up(int n, int nprocs) {
  const parix::MeshShape mesh = parix::near_square_mesh(nprocs);
  SKIL_REQUIRE(mesh.rows == mesh.cols,
               "matmul needs a square processor grid");
  return ((n + mesh.rows - 1) / mesh.rows) * mesh.rows;
}

MatmulResult matmul_skil(int nprocs, int n, std::uint64_t seed,
                         parix::CostModel cost) {
  const int size = matmul_round_up(n, nprocs);
  MatmulResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    auto init_a = [&](Index ix) {
      return operand_entry(n, seed, false, ix[0], ix[1]);
    };
    auto init_b = [&](Index ix) {
      return operand_entry(n, seed, true, ix[0], ix[1]);
    };
    DistArray<double> a = array_create<double>(
        proc, 2, Size{size, size}, init_a, parix::Distr::kTorus2D);
    DistArray<double> b = array_create<double>(
        proc, 2, Size{size, size}, init_b, parix::Distr::kTorus2D);
    // Fusible create|gen_mult composition: `c` is created with the
    // fold identity, so under SKIL_FUSE=on the fill pass is elided
    // (the fresh partition already holds those bits) and gen_mult
    // skips its restoring unskew (DESIGN.md section 13).  Unfused
    // this is bit-identical to array_create with a `zero` closure.
    DistArray<double> c = array_create_const<double>(
        proc, 2, Size{size, size}, 0.0, parix::Distr::kTorus2D);

    // "If the actual multiplication and addition are used, then we
    // obtain the classical matrix multiplication."
    array_gen_mult(a, b, fn::plus, fn::times, c);

    std::vector<double> flat = array_gather_root(c);
    if (proc.id() == 0) {
      result.product = support::Matrix<double>(size, size);
      result.product.storage() = std::move(flat);
    }

    array_destroy(a);
    array_destroy(b);
    array_destroy(c);
  });
  return result;
}

MatmulResult matmul_dpfl(int nprocs, int n, std::uint64_t seed,
                         parix::CostModel cost) {
  const int size = matmul_round_up(n, nprocs);
  MatmulResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    using dpfl::Closure;
    using dpfl::FArray;
    const Closure<double(Index)> init_a(proc, [&](Index ix) {
      return operand_entry(n, seed, false, ix[0], ix[1]);
    });
    const Closure<double(Index)> init_b(proc, [&](Index ix) {
      return operand_entry(n, seed, true, ix[0], ix[1]);
    });
    const Closure<double(double, double)> add(
        proc, [](double x, double y) { return x + y; });
    const Closure<double(double, double)> mult(
        proc, [](double x, double y) { return x * y; });

    FArray<double> a = dpfl::fa_create<double>(proc, 2, Size{size, size},
                                               init_a, parix::Distr::kTorus2D);
    FArray<double> b = dpfl::fa_create<double>(proc, 2, Size{size, size},
                                               init_b, parix::Distr::kTorus2D);
    FArray<double> c = dpfl::fa_gen_mult(a, b, add, mult);

    std::vector<double> flat = dpfl::fa_gather_root(c);
    if (proc.id() == 0) {
      result.product = support::Matrix<double>(size, size);
      result.product.storage() = std::move(flat);
    }
  });
  return result;
}

MatmulResult matmul_c(int nprocs, int n, std::uint64_t seed,
                      parix::CostModel cost) {
  const int size = matmul_round_up(n, nprocs);
  MatmulResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    const parix::Topology topo(proc.machine(), parix::Distr::kTorus2D);
    const int q = topo.grid_rows();
    const int block = size / q;
    const int my_row = topo.grid_row(proc.id());
    const int my_col = topo.grid_col(proc.id());
    const std::size_t cells = static_cast<std::size_t>(block) * block;

    auto rotate = [&](std::vector<double> payload, int drow, int dcol) {
      const long tag = proc.fresh_tag();
      const int dst = topo.at_grid(my_row + drow, my_col + dcol);
      const int src = topo.at_grid(my_row - drow, my_col - dcol);
      if (dst == proc.id()) return payload;
      proc.send<std::vector<double>>(dst, tag, std::move(payload));
      return proc.recv<std::vector<double>>(src, tag);
    };

    std::vector<double> a_block(cells);
    std::vector<double> b_block(cells);
    for (int i = 0; i < block; ++i)
      for (int j = 0; j < block; ++j) {
        const int gi = my_row * block + i;
        const int gj = my_col * block + j;
        a_block[static_cast<std::size_t>(i) * block + j] =
            operand_entry(n, seed, false, gi, gj);
        b_block[static_cast<std::size_t>(i) * block + j] =
            operand_entry(n, seed, true, gi, gj);
      }
    proc.charge(parix::Op::kFloatOp, 2 * cells);

    a_block = rotate(std::move(a_block), 0, -my_row);
    b_block = rotate(std::move(b_block), -my_col, 0);

    std::vector<double> c_block(cells, 0.0);
    const int a_dst = topo.at_grid(my_row, my_col - 1);
    const int a_src = topo.at_grid(my_row, my_col + 1);
    const int b_dst = topo.at_grid(my_row - 1, my_col);
    const int b_src = topo.at_grid(my_row + 1, my_col);
    for (int round = 0; round < q; ++round) {
      const bool last = round + 1 == q;
      const long tag = proc.fresh_tag();
      if (!last && q > 1) {
        // Equally optimized: asynchronous rotations overlap the local
        // block product, like the skeleton implementation.
        proc.send_mode<std::vector<double>>(a_dst, tag, a_block,
                                            parix::SendMode::kAsync);
        proc.send_mode<std::vector<double>>(b_dst, tag + 1, b_block,
                                            parix::SendMode::kAsync);
        proc.charge(parix::Op::kCopyWord, 2 * cells);
      }
      for (int i = 0; i < block; ++i)
        for (int k = 0; k < block; ++k) {
          const double aik = a_block[static_cast<std::size_t>(i) * block + k];
          const double* brow = &b_block[static_cast<std::size_t>(k) * block];
          double* crow = &c_block[static_cast<std::size_t>(i) * block];
          for (int j = 0; j < block; ++j) crow[j] += aik * brow[j];
        }
      proc.charge(parix::Op::kFloatOp,
                  2 * static_cast<std::uint64_t>(cells) * block);
      if (!last && q > 1) {
        a_block = proc.recv<std::vector<double>>(a_src, tag);
        b_block = proc.recv<std::vector<double>>(b_src, tag + 1);
      }
    }

    const parix::Topology gather_topo(proc.machine(), parix::Distr::kDefault);
    std::vector<std::vector<double>> parts =
        parix::gather(proc, gather_topo, 0, std::move(c_block));
    if (proc.id() == 0) {
      result.product = support::Matrix<double>(size, size);
      for (int p = 0; p < nprocs; ++p) {
        const int pr = topo.grid_row(p);
        const int pc = topo.grid_col(p);
        for (int i = 0; i < block; ++i)
          for (int j = 0; j < block; ++j)
            result.product(pr * block + i, pc * block + j) =
                parts[p][static_cast<std::size_t>(i) * block + j];
      }
    }
  });
  return result;
}

MatmulResult matmul_summa(int nprocs, int n, std::uint64_t seed,
                          parix::CostModel cost) {
  const int size = matmul_round_up(n, nprocs);
  MatmulResult result;
  parix::RunConfig config{nprocs, cost};

  result.run = parix::spmd_run(config, [&](parix::Proc& proc) {
    const parix::Topology topo(proc.machine(), parix::Distr::kTorus2D);
    const int q = topo.grid_rows();
    const int block = size / q;
    const int my_row = topo.grid_row(proc.id());
    const int my_col = topo.grid_col(proc.id());
    const std::size_t cells = static_cast<std::size_t>(block) * block;
    const std::size_t panel_bytes = cells * sizeof(double);

    // Row and column communicators with disjoint tag streams: the
    // k-step panel broadcasts below run on them concurrently without
    // any cross-matching (DESIGN.md section 15).
    const parix::Topology row_comm = topo.split_rows(proc.id());
    const parix::Topology col_comm = topo.split_cols(proc.id());

    std::vector<double> a_block(cells);
    std::vector<double> b_block(cells);
    for (int i = 0; i < block; ++i)
      for (int j = 0; j < block; ++j) {
        const int gi = my_row * block + i;
        const int gj = my_col * block + j;
        a_block[static_cast<std::size_t>(i) * block + j] =
            operand_entry(n, seed, false, gi, gj);
        b_block[static_cast<std::size_t>(i) * block + j] =
            operand_entry(n, seed, true, gi, gj);
      }
    proc.charge(parix::Op::kFloatOp, 2 * cells);

    // SUMMA: for every panel step k, the column-k owner broadcasts
    // A(i,k) along its grid row and the row-k owner broadcasts B(k,j)
    // down its grid column; every processor then accumulates the
    // block outer product.  The k order is fixed, so the C summation
    // order -- and hence the product bits -- never depends on the
    // broadcast algorithm the zoo picks.
    std::vector<double> c_block(cells, 0.0);
    for (int k = 0; k < q; ++k) {
      std::vector<double> a_panel;
      if (my_col == k) a_panel = a_block;
      parix::broadcast(proc, row_comm, topo.at_grid(my_row, k), a_panel,
                       panel_bytes);
      std::vector<double> b_panel;
      if (my_row == k) b_panel = b_block;
      parix::broadcast(proc, col_comm, topo.at_grid(k, my_col), b_panel,
                       panel_bytes);

      for (int i = 0; i < block; ++i)
        for (int kk = 0; kk < block; ++kk) {
          const double aik = a_panel[static_cast<std::size_t>(i) * block + kk];
          const double* brow = &b_panel[static_cast<std::size_t>(kk) * block];
          double* crow = &c_block[static_cast<std::size_t>(i) * block];
          for (int j = 0; j < block; ++j) crow[j] += aik * brow[j];
        }
      proc.charge(parix::Op::kFloatOp,
                  2 * static_cast<std::uint64_t>(cells) * block);
    }

    const parix::Topology gather_topo(proc.machine(), parix::Distr::kDefault);
    std::vector<std::vector<double>> parts =
        parix::gather(proc, gather_topo, 0, std::move(c_block));
    if (proc.id() == 0) {
      result.product = support::Matrix<double>(size, size);
      for (int p = 0; p < nprocs; ++p) {
        const int pr = topo.grid_row(p);
        const int pc = topo.grid_col(p);
        for (int i = 0; i < block; ++i)
          for (int j = 0; j < block; ++j)
            result.product(pr * block + i, pc * block + j) =
                parts[p][static_cast<std::size_t>(i) * block + j];
      }
    }
  });
  return result;
}

}  // namespace skil::apps
