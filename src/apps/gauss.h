// Gaussian elimination (paper section 4.2).
//
// Solves A x = b via the extended n x (n+1) matrix, using the paper's
// full-column elimination: step k zeroes column k in every row except
// the pivot row, so after n steps the matrix is diagonal and a final
// normalisation map yields x.
//
// Two algorithm variants, as in the evaluation:
//  * no-pivot (Table 2 / Figure 1): no pivot search or row exchange --
//    "this version had been implemented in DPFL and we wanted to make
//    a fair comparison"; inputs are diagonally dominant so the naive
//    pivots are safe;
//  * pivot (section 5.2's "complete" version, ~2x slower): per step an
//    array_fold locates the row with the maximal |a(r,k)| (raising
//    "Matrix is singular" if it is zero) and array_permute_rows swaps
//    it into place.
//
// Three language implementations: gauss_skil (skeletons: copy, map,
// fold, broadcast_part, permute_rows), gauss_dpfl (functional
// baseline; no-pivot only, matching the paper's DPFL comparison), and
// gauss_c (hand-written message passing: in-place elimination over the
// active region only, pivot row broadcast along a tree).
#pragma once

#include <cstdint>
#include <vector>

#include "parix/runtime.h"
#include "support/matrix.h"

namespace skil::apps {

struct GaussResult {
  std::vector<double> x;  ///< the solution vector
  parix::RunResult run;
};

/// Rounds n up so the processor count divides it (the paper assumes
/// "for simplicity that p divides n").
int gauss_round_up(int n, int nprocs);

/// The paper's elemrec: per-element value plus position, the fold
/// domain of the pivot search.
struct ElemRec {
  double val = 0.0;
  int row = 0;
  int col = 0;
};

GaussResult gauss_skil(int nprocs, int n, std::uint64_t seed, bool pivoting,
                       parix::CostModel cost = parix::CostModel::t800());

/// Solves an explicitly given n x (n+1) extended system (n must be a
/// multiple of nprocs).  Used to exercise inputs the seeded generators
/// cannot produce -- e.g. a singular matrix, for which the pivoting
/// variant raises the paper's run-time error "Matrix is singular".
GaussResult gauss_skil_matrix(int nprocs, const support::Matrix<double>& ab,
                              bool pivoting,
                              parix::CostModel cost =
                                  parix::CostModel::t800());

GaussResult gauss_dpfl(int nprocs, int n, std::uint64_t seed,
                       parix::CostModel cost = parix::CostModel::t800());

GaussResult gauss_c(int nprocs, int n, std::uint64_t seed,
                    parix::CostModel cost = parix::CostModel::t800());

}  // namespace skil::apps
