// Jacobi heat-diffusion stencil with overlapping partition borders
// (paper section 6, future work) -- the library-grade promotion of
// examples/heat_stencil.cpp.
//
// A 1-D rod (an n x 1 row-block distributed array) starts hot in the
// middle; each time step applies the explicit three-point heat kernel
// through array_map_stencil, which exchanges one halo row per
// neighbour per step.  The per-step halo messages plus the two final
// array_fold reductions make this the canonical nearest-neighbour +
// collective workload for the topology and collective-zoo benches.
#pragma once

#include <vector>

#include "parix/runtime.h"

namespace skil::apps {

struct StencilResult {
  std::vector<double> temps;  ///< final rod profile (padded cells), root only
  double total = 0.0;         ///< conserved heat, array_fold(+)
  double peak = 0.0;          ///< hottest cell, array_fold(max)
  parix::RunResult run;
};

/// Number of rod cells after padding to a multiple of nprocs.
int stencil_round_up(int cells, int nprocs);

StencilResult stencil_jacobi(int nprocs, int cells, int steps,
                             parix::CostModel cost = parix::CostModel::t800());

}  // namespace skil::apps
