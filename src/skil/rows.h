// Row-oriented skeletons (extensions in the spirit of section 3).
//
// For row-block distributed 2-D arrays (full-width rows), whole rows
// are local, so per-row reductions and cyclic row rotations have
// natural skeleton forms:
//
//  * array_fold_rows: folds each row to one value, producing a
//    1-D distributed array with the same row partitioning -- purely
//    local, no communication (the dual of array_fold's global fold);
//  * array_rotate_rows: rotates the rows cyclically by k positions, a
//    special case of array_permute_rows exposed for convenience.
#pragma once

#include <memory>
#include <optional>

#include "skil/dist_array.h"
#include "skil/skeleton_comm.h"
#include "skil/skeleton_fold.h"

namespace skil {

/// Folds every row of the row-block distributed 2-D array `a` with
/// `conv_f` ($t1, Index) -> $t2 and `fold_f` ($t2, $t2) -> $t2,
/// writing row i's result into element i of the 1-D array `to`, which
/// must be block-distributed with the same row boundaries.
template <class Conv, class Fold, class T1, class T2>
void array_fold_rows(Conv conv_f, Fold fold_f, const DistArray<T1>& a,
                     DistArray<T2>& to) {
  SKIL_REQUIRE(a.valid() && to.valid(), "array_fold_rows: invalid array");
  const Distribution& dist = a.dist();
  SKIL_REQUIRE(dist.dims() == 2 && dist.layout() == Layout::kBlock &&
                   dist.block_grid_cols() == 1,
               "array_fold_rows requires a row-block distributed 2-D array");
  const Distribution& target = to.dist();
  SKIL_REQUIRE(target.dims() == 1 &&
                   target.global_rows() == dist.global_rows() &&
                   target.layout() == Layout::kBlock,
               "array_fold_rows: target must be a 1-D array with one "
               "element per source row");
  SKIL_REQUIRE(target.partition_bounds(to.my_vrank()).lower[0] ==
                       dist.partition_bounds(a.my_vrank()).lower[0] &&
                   target.partition_bounds(to.my_vrank()).upper[0] ==
                       dist.partition_bounds(a.my_vrank()).upper[0],
               "array_fold_rows: target rows must be partitioned like the "
               "source rows");

  const auto& src = a.local();
  auto& dst = to.local();
  const int width = dist.global_cols();
  const Bounds bounds = a.part_bounds();
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (int row = bounds.lower[0]; row < bounds.upper[0]; ++row) {
    std::optional<T2> acc;
    for (int c = 0; c < width; ++c) {
      T2 converted =
          detail::apply_conv_f(conv_f, src[offset], Index{row, c});
      acc = acc.has_value() ? fold_f(std::move(*acc), std::move(converted))
                            : std::move(converted);
      ++offset;
      ++elems;
    }
    dst[row - bounds.lower[0]] = std::move(*acc);
  }
  a.proc().charge(parix::Op::kCall, 2 * elems);
  a.proc().charge(op_kind<T1>(), elems);
}

/// Rotates the rows of `from` cyclically by `shift` positions (row i
/// moves to row (i + shift) mod n) into `to`.
template <class T>
void array_rotate_rows(const DistArray<T>& from, int shift,
                       DistArray<T>& to) {
  SKIL_REQUIRE(from.valid(), "array_rotate_rows: invalid array");
  const int n = from.dist().global_rows();
  const int k = ((shift % n) + n) % n;
  array_permute_rows(from, [n, k](int row) { return (row + k) % n; }, to);
}

}  // namespace skil
