#include "skil/distribution.h"

#include <algorithm>

#include "support/error.h"

namespace skil {

const char* layout_name(Layout layout) {
  switch (layout) {
    case Layout::kBlock:
      return "block";
    case Layout::kCyclic:
      return "cyclic";
    case Layout::kBlockCyclic:
      return "block-cyclic";
  }
  return "?";
}

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

/// Segment starts for cutting `extent` into `nblocks` pieces of
/// `blocksize` (the last piece takes the remainder).
std::vector<int> segment_starts(int extent, int blocksize, int nblocks) {
  std::vector<int> starts(nblocks + 1);
  for (int i = 0; i <= nblocks; ++i)
    starts[i] = std::min(extent, i * blocksize);
  return starts;
}

}  // namespace

Distribution Distribution::block(std::shared_ptr<const parix::Topology> topo,
                                 int dims, Size size, Size blocksize,
                                 Index lowerbd) {
  SKIL_REQUIRE(dims == 1 || dims == 2, "arrays have 1 or 2 dimensions");
  for (int d = 0; d < dims; ++d)
    SKIL_REQUIRE(size[d] >= 1, "array extents must be positive");

  Distribution dist;
  dist.topo_ = std::move(topo);
  dist.dims_ = dims;
  dist.size_ = size;
  dist.layout_ = Layout::kBlock;

  const int p = dist.topo_->nprocs();
  const int rows = dist.global_rows();
  const int cols = dist.global_cols();

  // Default block sizes "depending on the network topology": a 2-D
  // array follows the topology's processor grid; a 1-D array is cut
  // into p row blocks.  With defaulted sizes the block grid *is* the
  // processor grid and trailing partitions of an array smaller than
  // the machine come out empty; explicit sizes determine the grid and
  // must yield exactly one block per processor.
  const int default_grid_rows = dims == 2 ? dist.topo_->grid_rows() : p;
  const int default_grid_cols = dims == 2 ? dist.topo_->grid_cols() : 1;
  int block_rows, block_cols;
  if (blocksize[0] > 0) {
    block_rows = blocksize[0];
    dist.block_grid_rows_ = ceil_div(rows, block_rows);
  } else {
    dist.block_grid_rows_ = default_grid_rows;
    block_rows = ceil_div(rows, dist.block_grid_rows_);
  }
  if (dims == 2 && blocksize[1] > 0) {
    block_cols = blocksize[1];
    dist.block_grid_cols_ = ceil_div(cols, block_cols);
  } else {
    dist.block_grid_cols_ = default_grid_cols;
    block_cols = ceil_div(cols, dist.block_grid_cols_);
  }
  SKIL_REQUIRE(dist.block_grid_rows_ * dist.block_grid_cols_ == p,
               "block distribution must give exactly one block per "
               "processor (blocks=" +
                   std::to_string(dist.block_grid_rows_) + "x" +
                   std::to_string(dist.block_grid_cols_) +
                   ", procs=" + std::to_string(p) + ")");

  dist.row_starts_ = segment_starts(rows, block_rows, dist.block_grid_rows_);
  dist.col_starts_ = segment_starts(cols, block_cols, dist.block_grid_cols_);

  // The paper lets each processor pass its partition's lower bound
  // explicitly (negative components request the default).  We accept
  // the parameter but require consistency with the derived uniform
  // partitioning, which is the only placement the global index
  // arithmetic supports.
  for (int d = 0; d < dims; ++d) {
    if (lowerbd[d] < 0) continue;
    // lowerbd describes the calling processor's partition, but the
    // distribution is identical on every processor; validate that the
    // requested bound is a partition boundary at all.
    const auto& starts = d == 0 ? dist.row_starts_ : dist.col_starts_;
    SKIL_REQUIRE(std::find(starts.begin(), starts.end(), lowerbd[d]) !=
                     starts.end(),
                 "explicit lower bound " + std::to_string(lowerbd[d]) +
                     " does not match the uniform block partitioning");
  }

  dist.build_runs();
  return dist;
}

Distribution Distribution::cyclic(std::shared_ptr<const parix::Topology> topo,
                                  int dims, Size size) {
  return block_cyclic(std::move(topo), dims, size, 1);
}

Distribution Distribution::block_cyclic(
    std::shared_ptr<const parix::Topology> topo, int dims, Size size,
    int block_rows) {
  SKIL_REQUIRE(dims == 1 || dims == 2, "arrays have 1 or 2 dimensions");
  SKIL_REQUIRE(block_rows >= 1, "cyclic block size must be >= 1");
  for (int d = 0; d < dims; ++d)
    SKIL_REQUIRE(size[d] >= 1, "array extents must be positive");

  Distribution dist;
  dist.topo_ = std::move(topo);
  dist.dims_ = dims;
  dist.size_ = size;
  dist.layout_ = block_rows == 1 ? Layout::kCyclic : Layout::kBlockCyclic;
  dist.cyclic_block_ = block_rows;
  dist.block_grid_rows_ = dist.topo_->nprocs();
  dist.block_grid_cols_ = 1;
  dist.build_runs();
  return dist;
}

void Distribution::build_runs() {
  const int p = topo_->nprocs();
  const int cols = global_cols();
  runs_.assign(p, {});
  counts_.assign(p, 0);

  if (layout_ == Layout::kBlock) {
    for (int br = 0; br < block_grid_rows_; ++br)
      for (int bc = 0; bc < block_grid_cols_; ++bc) {
        const int vrank = br * block_grid_cols_ + bc;
        const int col_begin = col_starts_[bc];
        const int col_count = col_starts_[bc + 1] - col_begin;
        // Empty partitions (array smaller than the machine) get no
        // runs at all -- a zero-width run would carry an out-of-range
        // column index.
        if (col_count > 0)
          for (int row = row_starts_[br]; row < row_starts_[br + 1]; ++row)
            runs_[vrank].push_back(RowRun{row, col_begin, col_count});
        counts_[vrank] = static_cast<long>(row_starts_[br + 1] -
                                           row_starts_[br]) *
                         col_count;
      }
    return;
  }

  // Cyclic layouts: deal blocks of rows round-robin; columns unsplit.
  const int rows = global_rows();
  const int b = cyclic_block_;
  for (int row = 0; row < rows; ++row) {
    const int vrank = (row / b) % p;
    runs_[vrank].push_back(RowRun{row, 0, cols});
    counts_[vrank] += cols;
  }
}

int Distribution::owner_vrank(const Index& ix) const {
  const int row = ix[0];
  const int col = dims_ >= 2 ? ix[1] : 0;
  SKIL_REQUIRE(row >= 0 && row < global_rows() && col >= 0 &&
                   col < global_cols(),
               "index " + to_string(ix, dims_) + " outside the array");
  if (layout_ == Layout::kBlock) {
    const auto row_it =
        std::upper_bound(row_starts_.begin(), row_starts_.end(), row);
    const auto col_it =
        std::upper_bound(col_starts_.begin(), col_starts_.end(), col);
    const int br = static_cast<int>(row_it - row_starts_.begin()) - 1;
    const int bc = static_cast<int>(col_it - col_starts_.begin()) - 1;
    return br * block_grid_cols_ + bc;
  }
  return (row / cyclic_block_) % topo_->nprocs();
}

Bounds Distribution::partition_bounds(int vrank) const {
  SKIL_REQUIRE(layout_ == Layout::kBlock,
               "partition bounds are defined for block distributions only");
  const int br = vrank / block_grid_cols_;
  const int bc = vrank % block_grid_cols_;
  Bounds bounds;
  bounds.lower = Index{row_starts_[br], col_starts_[bc]};
  bounds.upper = Index{row_starts_[br + 1], col_starts_[bc + 1]};
  if (dims_ == 1) {
    bounds.lower = Index{row_starts_[br]};
    bounds.upper = Index{row_starts_[br + 1]};
  }
  return bounds;
}

long Distribution::local_count(int vrank) const { return counts_[vrank]; }

const std::vector<RowRun>& Distribution::local_runs(int vrank) const {
  return runs_[vrank];
}

long Distribution::local_offset(int vrank, const Index& ix) const {
  const int row = ix[0];
  const int col = dims_ >= 2 ? ix[1] : 0;
  if (layout_ == Layout::kBlock) {
    const int br = vrank / block_grid_cols_;
    const int bc = vrank % block_grid_cols_;
    const int local_row = row - row_starts_[br];
    const int local_col = col - col_starts_[bc];
    const int width = col_starts_[bc + 1] - col_starts_[bc];
    return static_cast<long>(local_row) * width + local_col;
  }
  const int p = topo_->nprocs();
  const int b = cyclic_block_;
  const long local_row =
      static_cast<long>(row / (b * p)) * b + row % b;
  return local_row * global_cols() + col;
}

bool Distribution::uniform_partitions() const {
  for (int v = 1; v < nprocs(); ++v)
    if (counts_[v] != counts_[0]) return false;
  return true;
}

bool Distribution::same_placement(const Distribution& other) const {
  return dims_ == other.dims_ && size_ == other.size_ &&
         layout_ == other.layout_ && cyclic_block_ == other.cyclic_block_ &&
         block_grid_rows_ == other.block_grid_rows_ &&
         block_grid_cols_ == other.block_grid_cols_ &&
         row_starts_ == other.row_starts_ &&
         col_starts_ == other.col_starts_ &&
         topo_->kind() == other.topo_->kind() &&
         topo_->nprocs() == other.topo_->nprocs();
}

}  // namespace skil
